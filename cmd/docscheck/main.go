// Command docscheck verifies that the repository's documentation does not
// rot: every package or file path named in the given markdown documents
// (README.md, ARCHITECTURE.md and docs/PHYSICS.md by default) must exist in
// the tree. It is the docs step of the CI workflow, next to `go vet ./...`.
//
// Usage:
//
//	docscheck [-root dir] [file.md ...]
//
// A reference is any token starting with internal/, cmd/, examples/ or
// docs/; wildcard suffixes ("...", "*", "<name>") are trimmed before the
// existence check. Exit status 1 lists every dangling reference with its
// file and line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// refPattern matches repository path references in prose: a known top-level
// directory followed by path characters (no hyphens/angle brackets, so
// "internal/ising/<name>" stops at the placeholder).
var refPattern = regexp.MustCompile(`(?:internal|cmd|examples|docs)/[A-Za-z0-9_./]*`)

// defaultDocs are the documents checked when no arguments are given.
var defaultDocs = []string{"README.md", "ARCHITECTURE.md", "docs/PHYSICS.md"}

func main() {
	root := flag.String("root", ".", "repository root the references resolve against")
	flag.Parse()
	docs := flag.Args()
	if len(docs) == 0 {
		docs = defaultDocs
	}
	checked, missing, err := checkDocs(*root, docs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, m := range missing {
		fmt.Fprintln(os.Stderr, m)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d dangling reference(s)\n", len(missing))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d references in %d documents all resolve\n", checked, len(docs))
}

// checkDocs scans the documents and returns the number of references checked
// and a list of "file:line: reference does not exist" findings.
func checkDocs(root string, docs []string) (checked int, missing []string, err error) {
	for _, doc := range docs {
		f, err := os.Open(filepath.Join(root, doc))
		if err != nil {
			return checked, missing, err
		}
		scanner := bufio.NewScanner(f)
		for line := 1; scanner.Scan(); line++ {
			for _, raw := range refPattern.FindAllString(scanner.Text(), -1) {
				ref := normalize(raw)
				if ref == "" {
					continue
				}
				checked++
				if _, statErr := os.Stat(filepath.Join(root, ref)); statErr != nil {
					missing = append(missing, fmt.Sprintf("%s:%d: %q does not exist in the tree", doc, line, ref))
				}
			}
		}
		closeErr := f.Close()
		if err := scanner.Err(); err != nil {
			return checked, missing, fmt.Errorf("reading %s: %w", doc, err)
		}
		if closeErr != nil {
			return checked, missing, closeErr
		}
	}
	return checked, missing, nil
}

// normalize trims the prose around a matched reference: trailing sentence
// punctuation, wildcard suffixes ("internal/ising/...", "cmd/*") and the
// trailing slash of directory mentions.
func normalize(ref string) string {
	ref = strings.TrimRight(ref, ".,;:")
	ref = strings.TrimSuffix(ref, "*")
	return strings.TrimRight(ref, "/")
}
