package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"internal/ising":        "internal/ising",
		"internal/ising/":       "internal/ising",
		"internal/ising/...":    "internal/ising",
		"cmd/*":                 "cmd",
		"internal/perf),":       "internal/perf)", // ')' inside the token never matches the pattern
		"docs/PHYSICS.md":       "docs/PHYSICS.md",
		"internal/rng.":         "internal/rng",
		"internal/ising/cubic,": "internal/ising/cubic",
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckDocsFindsDanglingReferences(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "internal", "real"), 0o755); err != nil {
		t.Fatal(err)
	}
	doc := "The `internal/real` package exists, but internal/ghost does not.\n" +
		"Run `go doc tpuising/internal/real/...` and see cmd/missing too.\n"
	if err := os.WriteFile(filepath.Join(root, "doc.md"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	checked, missing, err := checkDocs(root, []string{"doc.md"})
	if err != nil {
		t.Fatal(err)
	}
	if checked != 4 {
		t.Errorf("checked %d references, want 4", checked)
	}
	if len(missing) != 2 {
		t.Fatalf("missing = %v, want 2 findings", missing)
	}
	for _, want := range []string{"internal/ghost", "cmd/missing"} {
		found := false
		for _, m := range missing {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("findings %v lack %q", missing, want)
		}
	}
}

// TestRepositoryDocsResolve runs the checker against the real repository
// documents, so a dangling reference fails the test suite even before CI's
// dedicated docs step.
func TestRepositoryDocsResolve(t *testing.T) {
	root := filepath.Join("..", "..")
	checked, missing, err := checkDocs(root, defaultDocs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("dangling documentation references:\n%s", strings.Join(missing, "\n"))
	}
	if checked == 0 {
		t.Fatal("checked no references; the scanner is broken")
	}
}
