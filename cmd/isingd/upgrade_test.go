package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"tpuising/internal/service"
	"tpuising/internal/service/encode"
)

// upgradeSpecs is the mixed fleet for the graceful-upgrade e2e: eight jobs
// spanning the snapshot path (checkerboard/multispin singles), a tempering
// ladder and a batched ensemble — the two job kinds with no engine snapshot,
// which survive the restart through their durable intent records instead.
var upgradeSpecs = []service.JobSpec{
	{Backend: "checkerboard", Rows: 32, Sweeps: 3000, BurnIn: 100, Temperature: 2.3, Seed: 1, SampleInterval: 100},
	{Backend: "checkerboard", Rows: 32, Sweeps: 3000, BurnIn: 100, Temperature: 2.5, Seed: 2, SampleInterval: 100},
	{Backend: "multispin", Rows: 32, Cols: 64, Sweeps: 6000, BurnIn: 200, Temperature: 2.3, Seed: 3, SampleInterval: 500, Workers: 1},
	{Backend: "checkerboard", Rows: 24, Sweeps: 2500, Temperature: 2.2, Seed: 4, SampleInterval: 100},
	{Backend: "checkerboard", Rows: 24, Sweeps: 2500, Temperature: 2.4, Seed: 5, SampleInterval: 100},
	{Backend: "checkerboard", Rows: 16, Sweeps: 2000, Temperatures: []float64{2.0, 2.3, 2.6}, Seed: 6, SampleInterval: 100, SwapInterval: 10},
	{Backend: "multispin", Rows: 16, Cols: 64, Sweeps: 2000, Temperature: 2.3, Seed: 7, SampleInterval: 200, Replicas: 4, Workers: 1},
	{Backend: "checkerboard", Rows: 32, Sweeps: 2800, Temperature: 2.35, Seed: 8, SampleInterval: 100},
}

// buildDaemon compiles the isingd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "isingd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building isingd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running isingd process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches the binary against a checkpoint directory and waits
// until its API answers.
func startDaemon(t *testing.T, bin, ckptDir string) *daemon {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-workers", "2",
		"-checkpoint-dir", ckptDir,
		"-checkpoint-interval", "256")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.base + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("daemon at %s never came up", d.base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// terminate sends SIGTERM and waits for a clean exit.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(60 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

func (d *daemon) submit(t *testing.T, spec service.JobSpec) string {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// awaitResult polls until the job's result is ready and returns it
// canonicalized: the wall-clock fields (the only nondeterministic ones)
// cleared, the rest marshaled back to comparable bytes.
func (d *daemon) awaitResult(t *testing.T, id string) string {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(d.base + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var r encode.Result
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			r.ElapsedSec, r.FlipsPerNs = 0, 0
			blob, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			return string(blob)
		}
		var st service.JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("result of %s returned %d: %+v", id, resp.StatusCode, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (d *daemon) stats(t *testing.T) service.Stats {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGracefulUpgradeSIGTERM is the end-to-end graceful-upgrade proof with a
// real process and a real signal: a daemon loaded with eight in-flight jobs
// — including a tempering ladder and a batched ensemble — is SIGTERMed
// mid-run, a fresh daemon restarts over the same checkpoint directory, and
// every job's final result is byte-identical to an uninterrupted daemon's.
func TestGracefulUpgradeSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons")
	}
	bin := buildDaemon(t)

	// Reference: an uninterrupted daemon computes every result.
	ref := startDaemon(t, bin, t.TempDir())
	want := make(map[int]string, len(upgradeSpecs))
	refIDs := make([]string, len(upgradeSpecs))
	for i, spec := range upgradeSpecs {
		refIDs[i] = ref.submit(t, spec)
	}
	for i, id := range refIDs {
		want[i] = ref.awaitResult(t, id)
	}
	ref.terminate(t)

	// The "old" daemon: all eight jobs in flight, then SIGTERM mid-run.
	ckptDir := t.TempDir()
	old := startDaemon(t, bin, ckptDir)
	ids := make([]string, len(upgradeSpecs))
	for i, spec := range upgradeSpecs {
		ids[i] = old.submit(t, spec)
	}
	if st := old.stats(t); st.Queued+st.Running < len(upgradeSpecs) {
		t.Fatalf("want >=%d in-flight jobs at SIGTERM, have %d queued + %d running",
			len(upgradeSpecs), st.Queued, st.Running)
	}
	old.terminate(t)

	// The "new" daemon over the same checkpoint directory: every job resumes
	// under its original ID and finishes with the reference bytes.
	neu := startDaemon(t, bin, ckptDir)
	defer neu.terminate(t)
	if st := neu.stats(t); int(st.JobsResumed) != len(upgradeSpecs) {
		t.Fatalf("jobs_resumed = %d after restart, want %d", st.JobsResumed, len(upgradeSpecs))
	}
	for i, id := range ids {
		if got := neu.awaitResult(t, id); got != want[i] {
			t.Errorf("job %s (spec %d) differs after upgrade:\n got %s\nwant %s", id, i, got, want[i])
		}
	}
	// Every checkpoint was consumed: nothing left to resume.
	leftovers, err := filepath.Glob(filepath.Join(ckptDir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("checkpoint dir not empty after all jobs finished: %v", leftovers)
	}
}
