package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tpuising/internal/service"
	"tpuising/internal/service/encode"
)

// kill delivers SIGKILL — no handler, no flush, no goodbye — and reaps the
// process. The daemon gets zero opportunity to clean up; whatever recovery
// happens next is carried entirely by the durable state on disk.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	// Wait returns an error for a killed process; that is the point.
	_ = d.cmd.Wait()
}

// awaitResultOrGone polls for the job's result like awaitResult, but reports
// ok=false instead of failing when the daemon answers 404 or 410 — the fate
// of a job that finished (or was admitted) only in the killed process's
// memory.
func (d *daemon) awaitResultOrGone(t *testing.T, id string) (string, bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(d.base + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var r encode.Result
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			r.ElapsedSec, r.FlipsPerNs = 0, 0
			blob, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			return string(blob), true
		case http.StatusNotFound, http.StatusGone:
			resp.Body.Close()
			return "", false
		case http.StatusAccepted:
			resp.Body.Close()
		default:
			resp.Body.Close()
			t.Fatalf("result of %s returned %d", id, resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// trace fetches a job's lifecycle timeline; ok=false when the daemon never
// heard of the job (it lived only in a killed predecessor's memory).
func (d *daemon) trace(t *testing.T, id string) (service.JobTrace, bool) {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var tr service.JobTrace
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		return tr, true
	case http.StatusNotFound, http.StatusGone:
		return service.JobTrace{}, false
	default:
		t.Fatalf("trace of %s returned %d", id, resp.StatusCode)
		panic("unreachable")
	}
}

// TestCrashRecoveryKill9 is the crash-only proof with a real process and the
// one signal that cannot be handled: a daemon loaded with the mixed
// eight-job fleet is SIGKILLed mid-run — at least one periodic snapshot past
// the admission records, a stale .tmp dropping planted as the mid-write
// casualty — and a fresh daemon over the same directory must sweep the
// dropping, resume every checkpointed job, and deliver results
// byte-identical to an uninterrupted daemon's. Jobs that lived only in the
// killed process's memory (completed before the kill, result never read) are
// recomputed by resubmission: determinism makes that the same bytes.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons")
	}
	bin := buildDaemon(t)

	// Reference: an uninterrupted daemon computes every result.
	ref := startDaemon(t, bin, t.TempDir())
	want := make(map[int]string, len(upgradeSpecs))
	refIDs := make([]string, len(upgradeSpecs))
	for i, spec := range upgradeSpecs {
		refIDs[i] = ref.submit(t, spec)
	}
	for i, id := range refIDs {
		want[i] = ref.awaitResult(t, id)
	}
	ref.terminate(t)

	// The victim: all eight jobs in flight, killed once the stats show at
	// least one periodic snapshot checkpoint beyond the eight admission
	// records — so the restart exercises a genuine mid-run resume, not just
	// intent-record reruns.
	ckptDir := t.TempDir()
	victim := startDaemon(t, bin, ckptDir)
	ids := make([]string, len(upgradeSpecs))
	for i, spec := range upgradeSpecs {
		ids[i] = victim.submit(t, spec)
	}
	deadline := time.Now().Add(60 * time.Second)
	for victim.stats(t).CheckpointsWritten <= int64(len(upgradeSpecs)) {
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint beyond the admission records")
		}
		time.Sleep(time.Millisecond)
	}
	victim.kill(t)

	// Plant the dropping a kill between write and rename would leave, so the
	// sweep is deterministically exercised even if the real kill landed
	// between checkpoints.
	tmp := filepath.Join(ckptDir, "job-999999.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("torn mid-write by SIGKILL"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The replacement daemon over the same directory.
	neu := startDaemon(t, bin, ckptDir)
	defer neu.terminate(t)
	st := neu.stats(t)
	if st.JobsResumed < 1 || st.JobsResumed > int64(len(upgradeSpecs)) {
		t.Fatalf("jobs_resumed = %d after kill -9, want 1..%d", st.JobsResumed, len(upgradeSpecs))
	}
	if st.CheckpointCorrupt != 0 {
		t.Fatalf("checkpoint_corrupt = %d: atomic-replace writes must never leave a torn .ckpt", st.CheckpointCorrupt)
	}
	if st.CheckpointTmpSwept < 1 {
		t.Fatalf("checkpoint_tmp_swept = %d, want >=1", st.CheckpointTmpSwept)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived the restart scan: %v", err)
	}

	// Every job the replacement daemon knows about must carry a `resumed`
	// trace event — the timeline survives SIGKILL because it is rebuilt from
	// the durable checkpoint, not replayed from the dead process's memory —
	// and the resumed-trace count must agree with the jobs_resumed counter.
	tracedResumes := 0
	for _, id := range ids {
		tr, ok := neu.trace(t, id)
		if !ok {
			continue
		}
		hasResumed := false
		for _, ev := range tr.Events {
			hasResumed = hasResumed || ev.Event == service.EventResumed
		}
		if !hasResumed {
			t.Errorf("job %s survived the kill without a resumed trace event: %+v", id, tr.Events)
		}
		if tr.Events[0].Event != service.EventSubmitted {
			t.Errorf("job %s trace opens with %s, want submitted", id, tr.Events[0].Event)
		}
		tracedResumes++
	}
	if int64(tracedResumes) != st.JobsResumed {
		t.Errorf("%d resumed traces vs jobs_resumed %d", tracedResumes, st.JobsResumed)
	}

	resumed, recomputed := 0, 0
	for i, id := range ids {
		got, ok := neu.awaitResultOrGone(t, id)
		if ok {
			resumed++
		} else {
			// The job died with the process's memory; resubmitting the spec
			// must recompute the identical bytes.
			recomputed++
			got = neu.awaitResult(t, neu.submit(t, upgradeSpecs[i]))
		}
		if got != want[i] {
			t.Errorf("job %s (spec %d) differs after kill -9:\n got %s\nwant %s", id, i, got, want[i])
		}
	}
	t.Logf("kill -9 recovery: %d resumed, %d recomputed", resumed, recomputed)

	// Nothing left to resume once every job finished.
	leftovers, err := filepath.Glob(filepath.Join(ckptDir, "*.ckpt*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("checkpoint files left after all jobs finished: %v", leftovers)
	}
}
