package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tpuising/internal/service"
	"tpuising/internal/service/encode"
)

// TestDaemonEndpointSmoke is the CI endpoint smoke: it mounts the daemon's
// handler on a test listener and performs the canonical client loop —
// submit a job, poll its status, read the NDJSON stream, fetch the result —
// asserting each hop speaks the documented wire format.
func TestDaemonEndpointSmoke(t *testing.T) {
	srv, skipped := service.New(service.Config{Workers: 2})
	if len(skipped) != 0 {
		t.Fatalf("service.New skipped: %v", skipped)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit.
	spec := []byte(`{"backend":"multispin","rows":16,"cols":64,"sweeps":40,"seed":3,"sample_interval":10}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var submitted service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	if submitted.ID == "" {
		t.Fatalf("submit status has no job ID: %+v", submitted)
	}

	// Poll.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st service.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == service.StateDone {
			break
		}
		if st.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// Stream: a finished job still replays its full sample history.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + submitted.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var sm encode.Sample
		if err := json.Unmarshal(scanner.Bytes(), &sm); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		lines++
	}
	resp.Body.Close()
	if lines != 4 {
		t.Fatalf("stream replayed %d samples, want 4", lines)
	}

	// Fetch the result.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + submitted.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result encode.Result
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result returned %d", resp.StatusCode)
	}
	if result.Backend != "multispin" || result.Rows != 16 || result.Cols != 64 ||
		result.Sweeps != 40 || result.Samples != 4 || result.Step != 80 {
		t.Fatalf("result: %+v", result)
	}
}
