// Command isingd is the long-running simulation daemon: a REST service over
// the backend registry that queues JSON job specs on a bounded worker pool,
// streams observables as NDJSON while jobs run, deduplicates identical
// queries through a result cache, and checkpoints snapshottable jobs so a
// restarted daemon resumes them bit-identically (internal/service).
//
// Endpoints (see internal/service/http.go):
//
//	POST   /v1/jobs             submit a job spec
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/result final result (202 until done)
//	GET    /v1/jobs/{id}/stream NDJSON observable stream
//	GET    /v1/stats            server counters (JSON)
//	GET    /metrics             Prometheus text exposition of the counters
//
// Example session:
//
//	isingd -addr localhost:8765 -checkpoint-dir /var/lib/isingd &
//	curl -s localhost:8765/v1/jobs -d '{"backend":"multispin","rows":256,"cols":256,"sweeps":10000,"seed":7}'
//	curl -s localhost:8765/v1/jobs/job-000001/stream      # NDJSON while it runs
//	curl -s localhost:8765/v1/jobs/job-000001/result      # encode.Result when done
//
// On SIGINT/SIGTERM the daemon stops accepting work, writes a final
// checkpoint for every running snapshottable job and exits; restarting over
// the same -checkpoint-dir resumes those jobs where they stopped. With a
// checkpoint directory every accepted job is durable: jobs without an engine
// snapshot (tempering ladders, batched ensembles) rerun from sweep zero
// after a restart, which the deterministic engines turn into the identical
// result.
//
// The -max-queued-per-client / -max-running-per-client flags turn on
// per-client quotas keyed by the X-Client-ID submission header (or the
// spec's client field); -cache-bytes, -cache-ttl, -job-ttl and -history
// bound the result cache and the finished-job table.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tpuising/internal/service"
)

func main() {
	addr := flag.String("addr", "localhost:8765", "listen address")
	workers := flag.Int("workers", 2, "worker pool size (concurrent jobs)")
	queue := flag.Int("queue", 64, "queued-job bound; submissions beyond it are rejected")
	ckptDir := flag.String("checkpoint-dir", "", "directory for job checkpoints (empty = no checkpointing)")
	ckptInterval := flag.Int("checkpoint-interval", 1000, "default sweeps between checkpoints for snapshottable backends")
	cacheSize := flag.Int("cache", 256, "result cache entries (negative = disable caching)")
	cacheBytes := flag.Int64("cache-bytes", 32<<20, "result cache byte bound (negative = no byte bound)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry lifetime (0 = never expire)")
	history := flag.Int("history", 1024, "finished jobs kept queryable (negative = keep forever)")
	jobTTL := flag.Duration("job-ttl", 0, "finished-job retention age (0 = only the -history count bound)")
	maxQueued := flag.Int("max-queued-per-client", 0, "per-client queued-job quota (0 = no quota; X-Client-ID keys it)")
	maxRunning := flag.Int("max-running-per-client", 0, "per-client running-job cap (0 = no cap)")
	flag.Parse()

	srv, skipped := service.New(service.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CheckpointDir:       *ckptDir,
		CheckpointInterval:  *ckptInterval,
		CacheSize:           *cacheSize,
		CacheBytes:          *cacheBytes,
		CacheTTL:            *cacheTTL,
		JobHistory:          *history,
		JobTTL:              *jobTTL,
		MaxQueuedPerClient:  *maxQueued,
		MaxRunningPerClient: *maxRunning,
	})
	for _, err := range skipped {
		log.Printf("isingd: skipping checkpoint: %v", err)
	}
	if resumed := srv.Stats().JobsResumed; resumed > 0 {
		log.Printf("isingd: resumed %d checkpointed job(s) from %s", resumed, *ckptDir)
	}

	// ReadHeaderTimeout bounds how long a client may dribble its request
	// headers (slow-loris defence: without it one never-finishing client
	// holds a connection goroutine forever) and IdleTimeout reaps idle
	// keep-alive connections. Deliberately no WriteTimeout: the /stream
	// endpoint writes NDJSON for the whole life of a job, and a blanket
	// write deadline would sever every long-lived stream.
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	log.Printf("isingd: serving on %s (%d workers, queue %d)", *addr, srv.Workers(), *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("isingd: %v, shutting down", sig)
	case err := <-errc:
		log.Fatalf("isingd: %v", err)
	}
	// Close the service first: it checkpoints running snapshottable jobs for
	// the next daemon and ends open NDJSON streams, so the HTTP drain below
	// finishes promptly.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpServer.Shutdown(ctx)
	log.Print("isingd: stopped")
}
