// Command isingd is the long-running simulation daemon: a REST service over
// the backend registry that queues JSON job specs on a bounded worker pool,
// streams observables as NDJSON while jobs run, deduplicates identical
// queries through a result cache, and checkpoints snapshottable jobs so a
// restarted daemon resumes them bit-identically (internal/service).
//
// Endpoints (see internal/service/http.go):
//
//	POST   /v1/jobs             submit a job spec
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/result final result (202 until done)
//	GET    /v1/jobs/{id}/stream NDJSON observable stream
//	GET    /v1/jobs/{id}/trace  lifecycle timeline with stage durations
//	GET    /v1/stats            server counters (JSON)
//	GET    /metrics             Prometheus text exposition (counters, gauges
//	                            and stage-latency histograms)
//
// Example session:
//
//	isingd -addr localhost:8765 -checkpoint-dir /var/lib/isingd &
//	curl -s localhost:8765/v1/jobs -d '{"backend":"multispin","rows":256,"cols":256,"sweeps":10000,"seed":7}'
//	curl -s localhost:8765/v1/jobs/job-000001/stream      # NDJSON while it runs
//	curl -s localhost:8765/v1/jobs/job-000001/result      # encode.Result when done
//
// On SIGINT/SIGTERM the daemon stops accepting work, writes a final
// checkpoint for every running snapshottable job and exits; restarting over
// the same -checkpoint-dir resumes those jobs where they stopped. With a
// checkpoint directory every accepted job is durable: jobs without an engine
// snapshot (tempering ladders, batched ensembles) rerun from sweep zero
// after a restart, which the deterministic engines turn into the identical
// result.
//
// The -max-queued-per-client / -max-running-per-client flags turn on
// per-client quotas keyed by the X-Client-ID submission header (or the
// spec's client field); -cache-bytes, -cache-ttl, -job-ttl and -history
// bound the result cache and the finished-job table.
//
// Observability: the daemon logs structured lines (log/slog) — -log-format
// picks text or json, -log-level the floor (debug logs every admission and
// HTTP request). -debug-addr opens a SEPARATE listener serving net/http/pprof
// under /debug/pprof/; it is never mounted on the public mux, so profiling
// stays reachable only where the operator pointed it (typically a loopback
// port).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"tpuising/internal/service"
)

func main() {
	addr := flag.String("addr", "localhost:8765", "listen address")
	debugAddr := flag.String("debug-addr", "", "separate listener for /debug/pprof/ (empty = no profiling endpoint; never on the public mux)")
	workers := flag.Int("workers", 2, "worker pool size (concurrent jobs)")
	queue := flag.Int("queue", 64, "queued-job bound; submissions beyond it are rejected")
	ckptDir := flag.String("checkpoint-dir", "", "directory for job checkpoints (empty = no checkpointing)")
	ckptInterval := flag.Int("checkpoint-interval", 1000, "default sweeps between checkpoints for snapshottable backends")
	cacheSize := flag.Int("cache", 256, "result cache entries (negative = disable caching)")
	cacheBytes := flag.Int64("cache-bytes", 32<<20, "result cache byte bound (negative = no byte bound)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry lifetime (0 = never expire)")
	history := flag.Int("history", 1024, "finished jobs kept queryable (negative = keep forever)")
	jobTTL := flag.Duration("job-ttl", 0, "finished-job retention age (0 = only the -history count bound)")
	maxQueued := flag.Int("max-queued-per-client", 0, "per-client queued-job quota (0 = no quota; X-Client-ID keys it)")
	maxRunning := flag.Int("max-running-per-client", 0, "per-client running-job cap (0 = no cap)")
	logLevel := flag.String("log-level", "info", "log floor: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	logger, err := newLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "isingd: %v\n", err)
		os.Exit(2)
	}

	srv, skipped := service.New(service.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CheckpointDir:       *ckptDir,
		CheckpointInterval:  *ckptInterval,
		CacheSize:           *cacheSize,
		CacheBytes:          *cacheBytes,
		CacheTTL:            *cacheTTL,
		JobHistory:          *history,
		JobTTL:              *jobTTL,
		MaxQueuedPerClient:  *maxQueued,
		MaxRunningPerClient: *maxRunning,
		Logger:              logger,
		Version:             buildVersion(),
	})
	for _, err := range skipped {
		logger.Warn("skipping checkpoint", "error", err)
	}
	if resumed := srv.Stats().JobsResumed; resumed > 0 {
		logger.Info("resumed checkpointed jobs", "jobs", resumed, "dir", *ckptDir)
	}

	// Requests log at info through RequestLog; operators who find that
	// chatty raise -log-level to warn.
	handler := service.RequestLog(logger, srv.Handler())

	// ReadHeaderTimeout bounds how long a client may dribble its request
	// headers (slow-loris defence: without it one never-finishing client
	// holds a connection goroutine forever) and IdleTimeout reaps idle
	// keep-alive connections. Deliberately no WriteTimeout: the /stream
	// endpoint writes NDJSON for the whole life of a job, and a blanket
	// write deadline would sever every long-lived stream.
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()

	var debugServer *http.Server
	if *debugAddr != "" {
		debugServer = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			// A dead debug listener is an operator problem, not a daemon
			// problem: log it and keep serving jobs.
			if err := debugServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err)
			}
		}()
		logger.Info("pprof listening", "addr", *debugAddr)
	}

	logger.Info("serving", "addr", *addr, "workers", srv.Workers(), "queue", *queue, "version", buildVersion())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
	case err := <-errc:
		logger.Error("listener failed", "error", err)
		os.Exit(1)
	}
	// Close the service first: it checkpoints running snapshottable jobs for
	// the next daemon and ends open NDJSON streams, so the HTTP drain below
	// finishes promptly.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpServer.Shutdown(ctx)
	if debugServer != nil {
		_ = debugServer.Shutdown(ctx)
	}
	logger.Info("stopped")
}

// newLogger builds the daemon logger from the -log-level / -log-format flags.
func newLogger(w *os.File, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// debugMux registers the pprof handlers explicitly on a fresh mux instead of
// importing net/http/pprof for its DefaultServeMux side effect — the public
// handler must never inherit profiling routes by accident.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// buildVersion is the isingd_build_info version label: the module version
// when built with one (go install tpuising/cmd/isingd@vX), the VCS revision
// otherwise, "dev" when neither is stamped.
func buildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
			return kv.Value[:12]
		}
	}
	return "dev"
}
