// Command correctness regenerates the paper's correctness study (Figures 4
// and 7): the average magnetisation and Binder parameter as functions of
// T/Tc for several lattice sizes, in float32 and bfloat16, using Algorithm 2
// (Figure 4) and the conv-based update (Figure 7). It also runs the paired
// precision comparison.
//
// Usage:
//
//	correctness [-out results] [-sizes 32,64,128] [-burnin 1000] [-samples 2000] [-quick]
//
// The defaults take a few minutes on a workstation; -quick reduces the chains
// to a smoke-test length.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tpuising/internal/harness"
	"tpuising/internal/sweep"
)

func main() {
	out := flag.String("out", "results", "directory for the generated .txt and .csv files")
	sizes := flag.String("sizes", "32,64,128", "comma-separated square lattice sides")
	burnin := flag.Int("burnin", 1000, "sweeps discarded before measuring")
	samples := flag.Int("samples", 2000, "measurements per temperature")
	temps := flag.Int("temps", 13, "number of temperatures in the T/Tc window [0.8, 1.2]")
	quick := flag.Bool("quick", false, "shrink everything to a fast smoke test")
	seed := flag.Uint64("seed", 2019, "random seed")
	flag.Parse()

	cfg := harness.CorrectnessConfig{
		TileSize:     16,
		Temperatures: sweep.CriticalWindow(0.2, *temps),
		BurnIn:       *burnin,
		Samples:      *samples,
		Seed:         *seed,
	}
	for _, s := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -sizes entry %q: %v", s, err)
		}
		cfg.Sizes = append(cfg.Sizes, v)
	}
	if *quick {
		cfg.Sizes = []int{16, 32}
		cfg.TileSize = 8
		cfg.Temperatures = sweep.CriticalWindow(0.2, 5)
		cfg.BurnIn = 200
		cfg.Samples = 300
	}

	if err := run(*out, cfg); err != nil {
		log.Fatal(err)
	}
}

func run(outDir string, cfg harness.CorrectnessConfig) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", outDir, err)
	}
	tables := []*harness.Table{
		harness.Figure4(cfg),
		harness.Figure7(cfg),
		harness.PrecisionComparison(cfg.Sizes[len(cfg.Sizes)-1], cfg.TileSize, cfg.BurnIn, cfg.Samples, cfg.Seed),
		// The Onsager checks also cover the lane-packed ensemble engine: 64
		// independent chains per temperature, the mean over lanes converging
		// on the exact values.
		harness.EnsembleOnsager(64, 64, cfg.BurnIn, cfg.Samples/4+1, cfg.Seed),
	}
	for _, tab := range tables {
		fmt.Println(tab.Text())
		if err := os.WriteFile(filepath.Join(outDir, tab.ID+".txt"), []byte(tab.Text()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, tab.ID+".csv"), []byte(tab.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
