package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising/backend"
	"tpuising/internal/ising/tpu"
	"tpuising/internal/perf"
	"tpuising/internal/service"
	"tpuising/internal/service/encode"
	"tpuising/internal/tensor"
)

func TestParseSize(t *testing.T) {
	if r, c, err := parseSize("256"); err != nil || r != 256 || c != 256 {
		t.Fatalf("parseSize(256) = %d,%d,%v", r, c, err)
	}
	if r, c, err := parseSize("128x64"); err != nil || r != 128 || c != 64 {
		t.Fatalf("parseSize(128x64) = %d,%d,%v", r, c, err)
	}
	for _, bad := range []string{"", "abc", "12xq"} {
		if _, _, err := parseSize(bad); err == nil {
			t.Fatalf("parseSize(%q) should fail", bad)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]struct {
		alg  tpu.Algorithm
		perf perf.Algorithm
	}{
		"optim": {tpu.AlgOptim, perf.AlgOptim},
		"2":     {tpu.AlgOptim, perf.AlgOptim},
		"naive": {tpu.AlgNaive, perf.AlgNaive},
		"conv":  {tpu.AlgConv, perf.AlgConv},
	}
	for in, want := range cases {
		alg, pa, err := parseAlgorithm(in)
		if err != nil || alg != want.alg || pa != want.perf {
			t.Fatalf("parseAlgorithm(%q) = %v,%v,%v", in, alg, pa, err)
		}
	}
	if _, _, err := parseAlgorithm("quantum"); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestParseDTypeAndPod(t *testing.T) {
	if d, err := parseDType("bf16"); err != nil || d != tensor.BFloat16 {
		t.Fatalf("parseDType(bf16) = %v,%v", d, err)
	}
	if d, err := parseDType("float32"); err != nil || d != tensor.Float32 {
		t.Fatalf("parseDType(float32) = %v,%v", d, err)
	}
	if _, err := parseDType("fp8"); err == nil {
		t.Fatal("unknown dtype should fail")
	}
	if x, y, err := parsePod(""); err != nil || x != 1 || y != 1 {
		t.Fatalf("parsePod('') = %d,%d,%v", x, y, err)
	}
	if x, y, err := parsePod("4x2"); err != nil || x != 4 || y != 2 {
		t.Fatalf("parsePod(4x2) = %d,%d,%v", x, y, err)
	}
	for _, bad := range []string{"4", "0x2", "ax2"} {
		if _, _, err := parsePod(bad); err == nil {
			t.Fatalf("parsePod(%q) should fail", bad)
		}
	}
}

func TestParseShards(t *testing.T) {
	if r, c, err := parseShards(""); err != nil || r != 1 || c != 1 {
		t.Fatalf("parseShards('') = %d,%d,%v", r, c, err)
	}
	if r, c, err := parseShards("2x4"); err != nil || r != 2 || c != 4 {
		t.Fatalf("parseShards(2x4) = %d,%d,%v", r, c, err)
	}
	for _, bad := range []string{"2", "0x2", "2x0", "ax2", "-1x2"} {
		if _, _, err := parseShards(bad); err == nil {
			t.Fatalf("parseShards(%q) should fail", bad)
		}
	}
}

func TestParseTemper(t *testing.T) {
	if n, lo, hi, err := parseTemper("8"); err != nil || n != 8 || lo != 0 || hi != 0 {
		t.Fatalf("parseTemper(8) = %d,%g,%g,%v (no window should defer to the default)", n, lo, hi, err)
	}
	if n, lo, hi, err := parseTemper("4:2.0,2.6"); err != nil || n != 4 || lo != 2.0 || hi != 2.6 {
		t.Fatalf("parseTemper(4:2.0,2.6) = %d,%g,%g,%v", n, lo, hi, err)
	}
	for _, bad := range []string{"", "1", "x", "4:2.6,2.0", "4:2.0", "4:-1,2.0", "4:0,2.0"} {
		if _, _, _, err := parseTemper(bad); err == nil {
			t.Errorf("parseTemper(%q) should fail", bad)
		}
	}
}

// TestTemperOutputDeterministicAcrossWorkers is the end-to-end acceptance
// check: the temper-mode report contains no wall-clock numbers, so the full
// stdout must be byte-identical for -workers 1 and -workers 8.
func TestTemperOutputDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "isingtpu")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	build.Env = append(os.Environ(), "CGO_ENABLED=0")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building isingtpu: %v\n%s", err, out)
	}
	run := func(workers string) string {
		out, err := exec.Command(bin, "-temper", "8", "-backend", "multispin",
			"-size", "64", "-sweeps", "100", "-workers", workers, "-profile").CombinedOutput()
		if err != nil {
			t.Fatalf("isingtpu -temper (workers=%s): %v\n%s", workers, err, out)
		}
		return string(out)
	}
	w1, w8 := run("1"), run("8")
	if w1 != w8 {
		t.Fatalf("temper output differs between -workers 1 and -workers 8:\n--- w1\n%s\n--- w8\n%s", w1, w8)
	}
	for _, want := range []string{"parallel tempering", "swap acc", "round trips", "U4", "swap traffic"} {
		if !strings.Contains(w1, want) {
			t.Errorf("temper output lacks %q:\n%s", want, w1)
		}
	}
}

// TestJSONOutputSharesServiceEncoding builds the CLI and checks that -json
// emits one internal/service/encode.Result line whose deterministic fields
// are byte-identical to what the simulation service computes for the same
// spec — the CLI and isingd share a single machine-readable encoding.
func TestJSONOutputSharesServiceEncoding(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "isingtpu")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	build.Env = append(os.Environ(), "CGO_ENABLED=0")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building isingtpu: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-json", "-backend", "multispin",
		"-size", "16x64", "-temp", "2.4", "-sweeps", "50", "-burnin", "10", "-seed", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("isingtpu -json: %v\n%s", err, out)
	}
	var r encode.Result
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatalf("-json output is not one JSON line: %v\n%s", err, out)
	}
	if r.Backend != "multispin" || r.Rows != 16 || r.Cols != 64 || r.Seed != 3 ||
		r.Sweeps != 50 || r.BurnIn != 10 || r.Step != 120 {
		t.Fatalf("-json result: %+v", r)
	}

	srv, _ := service.New(service.Config{Workers: 1})
	defer srv.Close()
	j, err := srv.Submit(service.JobSpec{Backend: "multispin", Rows: 16, Cols: 64,
		Temperature: 2.4, Sweeps: 50, BurnIn: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	sr, err := j.Result()
	if err != nil || sr == nil {
		t.Fatalf("service job: %v", err)
	}
	if r.Magnetization != sr.Magnetization || r.AbsMagnetization != sr.AbsMagnetization ||
		r.Energy != sr.Energy || r.Step != sr.Step || r.Ops != sr.Ops {
		t.Fatalf("CLI result %+v and service result %+v disagree on deterministic fields", r, sr)
	}

	// -json also covers replica exchange, with the per-temperature rows.
	out, err = exec.Command(bin, "-json", "-temper", "4", "-backend", "checkerboard",
		"-size", "16", "-sweeps", "40", "-seed", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("isingtpu -json -temper: %v\n%s", err, out)
	}
	var tr encode.Result
	if err := json.Unmarshal(out, &tr); err != nil {
		t.Fatalf("-json -temper output: %v\n%s", err, out)
	}
	if len(tr.Replicas) != 4 || tr.Backend != "checkerboard" {
		t.Fatalf("-json -temper result: %+v", tr)
	}

	// -json refuses the prose-only modes.
	if out, err := exec.Command(bin, "-json", "-profile", "-backend", "multispin", "-size", "16x64", "-sweeps", "1").CombinedOutput(); err == nil {
		t.Fatalf("-json -profile should fail:\n%s", out)
	}
	if out, err := exec.Command(bin, "-json", "-estimate", "-size", "256").CombinedOutput(); err == nil {
		t.Fatalf("-json -estimate should fail:\n%s", out)
	}
}

// TestBackendErrorListsNames: a bad -backend value must name every valid
// engine from the factory registry, not fail bare.
func TestBackendErrorListsNames(t *testing.T) {
	_, err := backend.Canonical("warp-drive")
	if err == nil {
		t.Fatal("unknown backend should fail")
	}
	for _, name := range backend.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list backend %q", err, name)
		}
	}
}

func TestDefaultTile(t *testing.T) {
	if got := backend.DefaultTile(256, 256); got != 128 {
		t.Fatalf("DefaultTile(256,256) = %d", got)
	}
	if got := backend.DefaultTile(64, 96); got != 16 {
		t.Fatalf("DefaultTile(64,96) = %d", got)
	}
	if got := backend.DefaultTile(10, 10); got != 2 {
		t.Fatalf("DefaultTile(10,10) = %d", got)
	}
}

func TestPerSweepCounts(t *testing.T) {
	c := metrics.Counts{MXUMacs: 100, VPUOps: 50, FormatBytes: 40, HBMBytes: 30, CommBytes: 20, CommEvents: 10, CommHops: 8, Ops: 6}
	half := perSweepCounts(c, 2)
	if half.MXUMacs != 50 || half.Ops != 3 || half.CommEvents != 5 {
		t.Fatalf("perSweepCounts halved wrong: %+v", half)
	}
	if perSweepCounts(c, 1) != c || perSweepCounts(c, 0) != c {
		t.Fatal("sweeps <= 1 should return the counts unchanged")
	}
}

func TestHelpers(t *testing.T) {
	if abs(-2) != 2 || abs(3) != 3 {
		t.Fatal("abs")
	}
	if pct(1, 4) != 25 || pct(1, 0) != 0 {
		t.Fatal("pct")
	}
	if dtName(tensor.BFloat16) != "bfloat16" || dtName(tensor.Float32) != "float32" {
		t.Fatal("dtName")
	}
}

// TestReplicasModeSharesServiceEncoding builds the CLI and checks the
// batched-ensemble mode end to end: -replicas B -json emits one
// encode.Result with B per-lane rows whose deterministic fields match what a
// service batch job of the same spec computes, and the flag conflicts are
// refused with clear errors.
func TestReplicasModeSharesServiceEncoding(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "isingtpu")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	build.Env = append(os.Environ(), "CGO_ENABLED=0")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building isingtpu: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-json", "-replicas", "3", "-backend", "multispin",
		"-size", "16x64", "-temp", "2.4", "-sweeps", "30", "-seed", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("isingtpu -replicas -json: %v\n%s", err, out)
	}
	var r encode.Result
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatalf("-replicas -json output is not one JSON line: %v\n%s", err, out)
	}
	// The result names the selected registry backend, exactly like the
	// service's batch jobs — the lane-packed execution engine is invisible.
	if len(r.Lanes) != 3 || r.Backend != "multispin" || r.Step != 60 {
		t.Fatalf("-replicas result: %+v", r)
	}

	srv, _ := service.New(service.Config{Workers: 1})
	defer srv.Close()
	j, err := srv.Submit(service.JobSpec{Backend: "multispin", Rows: 16, Cols: 64,
		Temperature: 2.4, Sweeps: 30, Seed: 7, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	sr, err := j.Result()
	if err != nil || sr == nil {
		t.Fatalf("service batch job: %v", err)
	}
	if len(sr.Lanes) != len(r.Lanes) {
		t.Fatalf("CLI has %d lanes, service %d", len(r.Lanes), len(sr.Lanes))
	}
	for i := range r.Lanes {
		cl, sl := r.Lanes[i], sr.Lanes[i]
		if cl.Seed != sl.Seed || cl.Magnetization != sl.Magnetization || cl.Energy != sl.Energy {
			t.Fatalf("lane %d: CLI %+v and service %+v disagree on deterministic fields", i, cl, sl)
		}
	}
	if r.Magnetization != sr.Magnetization || r.Energy != sr.Energy || r.Ops != sr.Ops ||
		r.Backend != sr.Backend {
		t.Fatalf("CLI batch result %+v and service result %+v disagree", r, sr)
	}

	// The batched temper ladder also keeps the registry backend name.
	out, err = exec.Command(bin, "-json", "-temper", "4", "-backend", "multispin",
		"-size", "16x64", "-sweeps", "20", "-seed", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("isingtpu -json -temper multispin: %v\n%s", err, out)
	}
	var tr encode.Result
	if err := json.Unmarshal(out, &tr); err != nil {
		t.Fatalf("-json -temper output: %v\n%s", err, out)
	}
	if tr.Backend != "multispin" || len(tr.Replicas) != 4 {
		t.Fatalf("-json -temper multispin result names backend %q with %d replicas", tr.Backend, len(tr.Replicas))
	}

	// Conflicting and invalid flag combinations are refused.
	if out, err := exec.Command(bin, "-replicas", "4", "-temper", "4", "-backend", "multispin",
		"-size", "16x64", "-sweeps", "1").CombinedOutput(); err == nil {
		t.Fatalf("-replicas with -temper should fail:\n%s", out)
	}
	if out, err := exec.Command(bin, "-replicas", "0", "-size", "16x64", "-sweeps", "1").CombinedOutput(); err == nil {
		t.Fatalf("-replicas 0 should fail:\n%s", out)
	}
	if out, err := exec.Command(bin, "-replicas", "2", "-estimate", "-size", "256").CombinedOutput(); err == nil {
		t.Fatalf("-replicas with -estimate should fail:\n%s", out)
	}
}
