// Command isingtpu runs one Ising simulation on any of the repository's
// engines -- the simulated TPU backend by default -- and reports its
// observables, step-time profile and (for the TPU backend) modelled
// performance. It is the general-purpose CLI over the library.
//
// Examples:
//
//	isingtpu -size 256 -temp 2.269 -sweeps 2000
//	isingtpu -size 512 -algorithm conv -dtype float32 -sweeps 500
//	isingtpu -size 256 -pod 2x2 -sweeps 1000 -profile
//	isingtpu -size 114688x57344 -tile 128 -estimate      # model-only, paper scale
//	isingtpu -backend multispin -size 4096 -sweeps 200   # bit-packed host engine
//	isingtpu -backend gpusim -size 1024 -workers 8
//	isingtpu -backend sharded -shards 2x4 -size 4096     # multispin over a simulated mesh
//	isingtpu -temper 8 -backend multispin -size 256      # replica exchange over 8 temperatures
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"tpuising/internal/device/metrics"
	"tpuising/internal/interconnect"
	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/ising/tpu"
	"tpuising/internal/perf"
	"tpuising/internal/service/encode"
	"tpuising/internal/sweep"
	"tpuising/internal/tempering"
	"tpuising/internal/tensor"
)

func main() {
	size := flag.String("size", "256", "lattice size: side or ROWSxCOLS")
	temp := flag.Float64("temp", ising.CriticalTemperature(), "temperature in units of J/kB")
	sweeps := flag.Int("sweeps", 1000, "number of whole-lattice updates")
	burnin := flag.Int("burnin", 0, "sweeps discarded before the profile/observable report")
	tile := flag.Int("tile", 0, "MXU tile size (default 128, smaller for small lattices)")
	algorithm := flag.String("algorithm", "optim", "update kernel: optim, naive or conv")
	dtype := flag.String("dtype", "bfloat16", "storage precision: bfloat16 or float32")
	pod := flag.String("pod", "", "pod core grid as NXxNY (empty = single core)")
	seed := flag.Uint64("seed", 1, "random seed")
	engine := flag.String("backend", "tpu",
		"engine from the internal/ising/backend registry: "+backend.List()+
			" (aliases: serial/cpu = checkerboard, parallel/gpu = gpusim); see the backend-choice table in README.md")
	workers := flag.Int("workers", 0, "worker goroutines of the host backends (0 = GOMAXPROCS)")
	shards := flag.String("shards", "",
		"shard grid of the sharded and sharded-ensemble backends as RxC (R shards along rows x C along columns); the other registry backends ("+
			backend.List()+") reject it — see the backend-choice table in README.md")
	temper := flag.String("temper", "",
		"replica exchange: N temperature replicas of the selected -backend, as N or N:Tmin,Tmax (default window sized for healthy swap acceptance)")
	replicas := flag.Int("replicas", 1,
		"batched ensemble: B independent chains of the selected -backend at -temp, lane-packed for multispin (64 chains per machine word), lane-parallel otherwise; per-lane results are reported")
	swapint := flag.Int("swapint", 10, "sweeps between replica-exchange swap attempts (with -temper)")
	profile := flag.Bool("profile", false, "print the work counters and the modelled step breakdown")
	estimate := flag.Bool("estimate", false, "do not run: report the modelled performance for this configuration")
	jsonOut := flag.Bool("json", false,
		"print the run's result as one JSON line (internal/service/encode.Result, the isingd wire format) instead of prose")
	flag.Parse()

	rows, cols, err := parseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	alg, perfAlg, err := parseAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}
	dt, err := parseDType(*dtype)
	if err != nil {
		log.Fatal(err)
	}
	podX, podY, err := parsePod(*pod)
	if err != nil {
		log.Fatal(err)
	}
	gridR, gridC, err := parseShards(*shards)
	if err != nil {
		log.Fatal(err)
	}
	// backend.Canonical's error already lists every registered engine name,
	// so a typo in -backend tells the user what the valid choices are.
	name, err := backend.Canonical(*engine)
	if err != nil {
		log.Fatal(err)
	}
	tileSize := *tile
	if tileSize == 0 {
		tileSize = backend.DefaultTile(rows, cols)
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if set["shards"] && name != "sharded" && name != "sharded-ensemble" {
		log.Fatalf("-shards selects the shard grid of the sharded backends; it does not apply to the %s backend (valid backends: %s)",
			name, backend.List())
	}
	// The TPU kernel options only make sense when the engine is the tpu
	// simulator — in single-chain and temper mode alike.
	if name != "tpu" {
		for _, tpuOnly := range []string{"algorithm", "dtype", "tile"} {
			if set[tpuOnly] {
				log.Fatalf("-%s selects a TPU kernel option; it does not apply to the %s backend (valid backends: %s)",
					tpuOnly, name, backend.List())
			}
		}
	}
	if *jsonOut {
		if *profile {
			log.Fatal("-profile prints a prose report; it does not combine with -json")
		}
		if *estimate || podX*podY > 1 {
			log.Fatal("-json prints a run result; it does not apply to -estimate or -pod")
		}
	}
	if *replicas < 1 {
		log.Fatalf("-replicas needs at least 1 chain, got %d", *replicas)
	}
	if *temper != "" {
		rungs, tmin, tmax, err := parseTemper(*temper)
		if err != nil {
			log.Fatal(err)
		}
		if *estimate || podX*podY > 1 {
			log.Fatal("-estimate and -pod model a single TPU chain; they do not apply to -temper")
		}
		if set["temp"] {
			log.Fatal("-temp sets the single-chain temperature; with -temper the ladder window is -temper N:Tmin,Tmax")
		}
		if set["replicas"] {
			log.Fatal("-replicas runs B chains at one temperature; the -temper ladder already defines its replica count")
		}
		runTemper(name, rows, cols, gridR, gridC, tileSize, dt, alg, rungs, tmin, tmax,
			*swapint, *seed, *workers, *sweeps, *burnin, *profile, *jsonOut)
		return
	}
	if set["swapint"] {
		log.Fatal("-swapint sets the replica-exchange swap interval; it only applies with -temper")
	}
	if set["workers"] && (name == "sharded" || name == "sharded-ensemble") {
		log.Fatal("-workers controls the band parallelism of the other host backends; the sharded backends' parallelism is their shard grid (use -shards RxC)")
	}
	if *replicas > 1 {
		if *estimate || podX*podY > 1 {
			log.Fatal("-estimate and -pod model a single TPU chain; they do not apply to -replicas")
		}
		runReplicas(name, rows, cols, gridR, gridC, tileSize, dt, alg, *replicas,
			*temp, *seed, *workers, *sweeps, *burnin, *profile, *jsonOut)
		return
	}
	if name != "tpu" {
		if *estimate || podX*podY > 1 {
			log.Fatalf("-estimate and -pod model the TPU; they do not apply to the %s backend (valid backends: %s)",
				name, backend.List())
		}
		runBackend(name, rows, cols, gridR, gridC, *temp, *seed, *workers, *sweeps, *burnin, *profile, *jsonOut)
		return
	}
	if set["workers"] {
		log.Fatal("-workers controls the host backends; the tpu backend ignores it")
	}
	if *estimate {
		runEstimate(rows, cols, tileSize, dt, perfAlg, podX, podY)
		return
	}
	if podX*podY > 1 {
		runPod(rows, cols, tileSize, dt, podX, podY, *temp, *seed, *sweeps, *burnin, *profile)
		return
	}
	runSingle(rows, cols, tileSize, dt, alg, perfAlg, *temp, *seed, *sweeps, *burnin, *profile, *jsonOut)
}

// runBackend runs a host engine selected through the backend factory and
// reports its observables and measured wall-clock throughput (as prose, or
// as one encode.Result JSON line with -json — the isingd wire format).
func runBackend(name string, rows, cols, gridR, gridC int, temp float64, seed uint64, workers, sweeps, burnin int, profile, jsonOut bool) {
	eng, err := backend.New(name, backend.Config{
		Rows: rows, Cols: cols, Temperature: temp, Seed: seed, Workers: workers,
		GridR: gridR, GridC: gridC,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !jsonOut {
		if name == "sharded" {
			fmt.Printf("backend %s: %dx%d lattice over a %dx%d shard mesh (%d cores), T=%.4f (T/Tc=%.3f)\n",
				eng.Name(), rows, cols, gridR, gridC, gridR*gridC, temp, temp/ising.CriticalTemperature())
		} else {
			fmt.Printf("backend %s: %dx%d lattice, T=%.4f (T/Tc=%.3f)\n",
				eng.Name(), rows, cols, temp, temp/ising.CriticalTemperature())
		}
	}
	for i := 0; i < burnin; i++ {
		eng.Sweep()
	}
	start := time.Now()
	for i := 0; i < sweeps; i++ {
		eng.Sweep()
	}
	elapsed := time.Since(start)
	if jsonOut {
		r := encode.Result{Backend: eng.Name(), Rows: rows, Cols: cols,
			Temperature: temp, Seed: seed, Sweeps: sweeps, BurnIn: burnin}
		encode.Observables(&r, eng)
		r.ElapsedSec = elapsed.Seconds()
		if sweeps > 0 && elapsed > 0 {
			r.FlipsPerNs = float64(rows) * float64(cols) * float64(sweeps) / float64(elapsed.Nanoseconds())
		}
		if err := encode.WriteLine(os.Stdout, r); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("after %d sweeps: m = %+.5f, |m| = %.5f, E/spin = %.5f\n",
		burnin+sweeps, eng.Magnetization(), abs(eng.Magnetization()), eng.Energy())
	if sweeps > 0 && elapsed > 0 {
		spins := float64(rows) * float64(cols) * float64(sweeps)
		fmt.Printf("measured host throughput: %.4f flips/ns (%.3f ms/sweep)\n",
			spins/float64(elapsed.Nanoseconds()),
			elapsed.Seconds()*1e3/float64(sweeps))
	}
	if profile {
		fmt.Printf("work counters: %v\n", eng.Counts())
		switch name {
		case "sharded":
			rep := perf.ShardTraffic(perf.ShardSpec{Rows: rows, Cols: cols, GridR: gridR, GridC: gridC},
				interconnect.DefaultLinkParams())
			fmt.Printf("modelled interconnect: %d B/link/sweep (rows), %d B/link/sweep (cols), permute %.2f us/sweep\n",
				rep.RowLinkBytes, rep.ColLinkBytes, rep.PermuteSec*1e6)
		case "sharded-ensemble":
			rep := perf.ShardedEnsembleTraffic(perf.ShardedEnsembleSpec{
				Rows: rows, Cols: cols, GridR: gridR, GridC: gridC, Lanes: 1,
			}, interconnect.DefaultLinkParams())
			fmt.Printf("modelled interconnect: %d B/link/sweep (rows), %d B/link/sweep (cols), permute %.2f us/sweep\n",
				rep.RowLinkBytes, rep.ColLinkBytes, rep.PermuteSec*1e6)
		}
	}
}

// runReplicas runs the batched-ensemble mode: B independent chains of the
// selected backend at one temperature behind ising.BatchBackend — one
// lane-packed internal/ising/ensemble engine for multispin, the generic
// lane-parallel adapter for every other backend (backend.NewBatch picks).
// Lane L is seeded ising.LaneSeed(seed, L), so its chain is exactly the
// single-chain run `-backend <name> -seed <laneseed>` would produce; the
// report fans out one row per lane plus the across-lane means.
func runReplicas(name string, rows, cols, gridR, gridC, tile int, dt tensor.DType, alg tpu.Algorithm,
	lanes int, temp float64, seed uint64, workers, sweeps, burnin int, profile, jsonOut bool) {
	b, err := backend.NewBatch(name, backend.Config{
		Rows: rows, Cols: cols, Temperature: temp, Seed: seed, Workers: workers,
		GridR: gridR, GridC: gridC, TileSize: tile, DType: dt, Algorithm: alg,
	}, lanes)
	if err != nil {
		log.Fatal(err)
	}
	if !jsonOut {
		// Named by the selected registry backend (like isingd's batch jobs);
		// the executing batch engine — the lane-packed "ensemble" for
		// multispin, the lane-parallel adapter otherwise — is reported as an
		// execution detail.
		fmt.Printf("batched ensemble: %d lanes of backend %s (engine %s), %dx%d lattice, T=%.4f (T/Tc=%.3f)\n",
			b.Lanes(), name, b.Name(), rows, cols, temp, temp/ising.CriticalTemperature())
	}
	for i := 0; i < burnin; i++ {
		b.Sweep()
	}
	start := time.Now()
	for i := 0; i < sweeps; i++ {
		b.Sweep()
	}
	elapsed := time.Since(start)
	if jsonOut {
		r := encode.Result{Backend: name, Rows: rows, Cols: cols,
			Temperature: temp, Seed: seed, Sweeps: sweeps, BurnIn: burnin}
		encode.BatchObservables(&r, b, seed)
		r.ElapsedSec = elapsed.Seconds()
		if sweeps > 0 && elapsed > 0 {
			r.FlipsPerNs = float64(rows) * float64(cols) * float64(sweeps) * float64(b.Lanes()) /
				float64(elapsed.Nanoseconds())
		}
		if err := encode.WriteLine(os.Stdout, r); err != nil {
			log.Fatal(err)
		}
		return
	}
	ms, es := b.Magnetizations(), b.Energies()
	var mSum, absSum, eSum float64
	fmt.Println("lane  seed                  m         |m|       E/spin")
	for lane := range ms {
		fmt.Printf("%4d  %-20d  %+.5f  %.5f  %+.5f\n",
			lane, ising.LaneSeed(seed, lane), ms[lane], abs(ms[lane]), es[lane])
		mSum += ms[lane]
		absSum += abs(ms[lane])
		eSum += es[lane]
	}
	n := float64(len(ms))
	fmt.Printf("after %d sweeps over %d lanes: mean m = %+.5f, mean |m| = %.5f, mean E/spin = %.5f\n",
		burnin+sweeps, b.Lanes(), mSum/n, absSum/n, eSum/n)
	if sweeps > 0 && elapsed > 0 {
		spins := float64(rows) * float64(cols) * float64(sweeps) * n
		fmt.Printf("measured aggregate host throughput: %.4f flips/ns (%.3f ms/sweep for all lanes)\n",
			spins/float64(elapsed.Nanoseconds()),
			elapsed.Seconds()*1e3/float64(sweeps))
	}
	if profile {
		fmt.Printf("ensemble work counters: %v\n", b.Counts())
	}
}

// parseTemper parses the -temper value: "N" or "N:Tmin,Tmax". With no
// explicit window it returns tmin = tmax = 0, and runTemper sizes the window
// around Tc for healthy swap acceptance (tempering.DefaultWindow).
func parseTemper(s string) (replicas int, tmin, tmax float64, err error) {
	spec, window, hasWindow := strings.Cut(s, ":")
	replicas, err = strconv.Atoi(spec)
	if err != nil || replicas < 2 {
		return 0, 0, 0, fmt.Errorf("bad -temper %q: want at least 2 replicas as N or N:Tmin,Tmax", s)
	}
	if hasWindow {
		lo, hi, ok := strings.Cut(window, ",")
		if ok {
			tmin, err = strconv.ParseFloat(lo, 64)
			if err == nil {
				tmax, err = strconv.ParseFloat(hi, 64)
			}
		}
		if !ok || err != nil || tmin <= 0 || tmax <= tmin {
			return 0, 0, 0, fmt.Errorf("bad -temper %q: want N:Tmin,Tmax with 0 < Tmin < Tmax", s)
		}
	}
	return replicas, tmin, tmax, nil
}

// runTemper runs the replica-exchange mode: a ladder of `replicas` evenly
// spaced temperatures in [tmin, tmax], one rung per lane of a batched
// backend (backend.NewBatchLadder — the lane-packed ensemble engine for
// multispin, the lane-parallel adapter otherwise), coupled by Metropolis
// swaps every swapInterval sweeps (internal/tempering). Batched execution is
// bit-identical to per-replica execution, and every printed number is a pure
// function of the configuration and seed — no wall-clock measurements — so
// the output is identical for every -workers value (asserted by tests).
func runTemper(name string, rows, cols, gridR, gridC, tile int, dt tensor.DType, alg tpu.Algorithm,
	replicas int, tmin, tmax float64,
	swapInterval int, seed uint64, workers, sweeps, burnin int, profile, jsonOut bool) {
	if tmin == 0 && tmax == 0 {
		tc := ising.CriticalTemperature()
		w := tempering.DefaultWindow(rows*cols, replicas)
		tmin, tmax = tc*(1-w), tc*(1+w)
	}
	ladder, err := backend.NewBatchLadder(name, backend.Config{
		Rows: rows, Cols: cols, Seed: seed, Workers: workers,
		GridR: gridR, GridC: gridC,
		TileSize: tile, DType: dt, Algorithm: alg,
	}, sweep.TemperatureGrid(tmin, tmax, replicas))
	if err != nil {
		log.Fatal(err)
	}
	ens, err := tempering.NewBatch(tempering.Config{
		Temperatures: sweep.TemperatureGrid(tmin, tmax, replicas),
		SwapInterval: swapInterval,
		Seed:         seed,
		Workers:      workers,
	}, ladder)
	if err != nil {
		log.Fatal(err)
	}
	tc := ising.CriticalTemperature()
	if !jsonOut {
		// The report names the selected registry backend, not the batch
		// engine executing the ladder (ladder.Name() — e.g. the lane-packed
		// "ensemble" for multispin): batching is an execution strategy, and
		// the CLI and isingd must name the same logical job identically.
		fmt.Printf("parallel tempering: %d replicas of backend %s, %dx%d lattice, T in [%.4f, %.4f], swap attempt every %d sweeps\n",
			replicas, name, rows, cols, tmin, tmax, swapInterval)
	}
	burnRounds := (burnin + swapInterval - 1) / swapInterval
	rounds := sweeps / swapInterval
	if rounds < 1 {
		rounds = 1
	}
	ens.RunRounds(burnRounds)
	ens.Sample(rounds)
	rep := ens.Report()
	if jsonOut {
		// Deliberately no elapsed_sec/flips_per_ns here: temper output stays
		// free of wall-clock numbers so it is byte-identical for every
		// -workers value, matching the prose report's contract.
		r := encode.Result{Backend: name, Rows: rows, Cols: cols,
			Temperature: tmin, Seed: seed, Sweeps: sweeps, BurnIn: burnin}
		encode.Observables(&r, ens.Backend(0))
		encode.Tempering(&r, rep)
		r.Ops = ens.Counts().Ops
		if err := encode.WriteLine(os.Stdout, r); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("after %d burn-in + %d measured rounds: %d round trips, overall swap acceptance %.3f (%d/%d)\n",
		burnRounds, rounds, rep.RoundTrips, rep.Acceptance(), rep.SwapAccepts, rep.SwapAttempts)
	fmt.Println("slot  T        T/Tc    |m|       +-        U4        E/spin    tau     swap acc")
	for t, rr := range rep.Replicas {
		acc := "    -"
		if t < len(rep.Replicas)-1 {
			acc = fmt.Sprintf("%.3f", rr.PairAcceptance)
		}
		fmt.Printf("%4d  %.4f  %.4f  %.5f  %.5f  %+.5f  %+.5f  %6.2f  %s\n",
			t, rr.Temperature, rr.Temperature/tc, rr.AbsMagnetization, rr.AbsMagnetizationErr,
			rr.Binder, rr.Energy, rr.AutocorrTime, acc)
	}
	if profile {
		counts := ens.SwapCounts()
		model := perf.ExchangeTraffic(perf.ExchangeSpec{Replicas: replicas, Rounds: int(ens.Rounds())},
			interconnect.DefaultLinkParams())
		fmt.Printf("swap traffic: %d B in %d messages (model: %d B, %d messages, %.2f us total exchange time)\n",
			counts.CommBytes, counts.CommEvents, model.TotalBytes, model.Events, model.ExchangeSec*1e6)
		fmt.Printf("ensemble work counters: %v\n", ens.Counts())
	}
}

func parseSize(s string) (rows, cols int, err error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	rows, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad -size %q: %v", s, err)
	}
	cols = rows
	if len(parts) == 2 {
		cols, err = strconv.Atoi(parts[1])
		if err != nil {
			return 0, 0, fmt.Errorf("bad -size %q: %v", s, err)
		}
	}
	return rows, cols, nil
}

func parseAlgorithm(s string) (tpu.Algorithm, perf.Algorithm, error) {
	switch strings.ToLower(s) {
	case "optim", "algorithm2", "2":
		return tpu.AlgOptim, perf.AlgOptim, nil
	case "naive", "algorithm1", "1":
		return tpu.AlgNaive, perf.AlgNaive, nil
	case "conv":
		return tpu.AlgConv, perf.AlgConv, nil
	}
	return 0, 0, fmt.Errorf("unknown -algorithm %q (want optim, naive or conv)", s)
}

func parseDType(s string) (tensor.DType, error) {
	switch strings.ToLower(s) {
	case "bfloat16", "bf16":
		return tensor.BFloat16, nil
	case "float32", "f32":
		return tensor.Float32, nil
	}
	return 0, fmt.Errorf("unknown -dtype %q (want bfloat16 or float32)", s)
}

func parsePod(s string) (x, y int, err error) {
	if s == "" {
		return 1, 1, nil
	}
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -pod %q: want NXxNY", s)
	}
	x, err = strconv.Atoi(parts[0])
	if err == nil {
		y, err = strconv.Atoi(parts[1])
	}
	if err != nil || x <= 0 || y <= 0 {
		return 0, 0, fmt.Errorf("bad -pod %q: want positive NXxNY", s)
	}
	return x, y, nil
}

// parseShards parses the -shards grid as RxC (shards along the rows first,
// matching how lattice sizes are written).
func parseShards(s string) (gridR, gridC int, err error) {
	if s == "" {
		return 1, 1, nil
	}
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -shards %q: want RxC (e.g. 2x4)", s)
	}
	gridR, err = strconv.Atoi(parts[0])
	if err == nil {
		gridC, err = strconv.Atoi(parts[1])
	}
	if err != nil || gridR <= 0 || gridC <= 0 {
		return 0, 0, fmt.Errorf("bad -shards %q: want positive RxC (e.g. 2x4)", s)
	}
	return gridR, gridC, nil
}

func runSingle(rows, cols, tile int, dt tensor.DType, alg tpu.Algorithm, perfAlg perf.Algorithm,
	temp float64, seed uint64, sweeps, burnin int, profile, jsonOut bool) {
	sim := tpu.NewSimulator(tpu.Config{
		Rows: rows, Cols: cols, Temperature: temp, TileSize: tile,
		DType: dt, Algorithm: alg, Seed: seed,
	})
	if !jsonOut {
		fmt.Printf("single core: %dx%d lattice, T=%.4f (T/Tc=%.3f), %v, tile %d\n",
			rows, cols, temp, temp/ising.CriticalTemperature(), alg, tile)
	}
	sim.Run(burnin)
	sim.ResetCounts()
	start := time.Now()
	sim.Run(sweeps)
	if jsonOut {
		r := encode.Result{Backend: sim.Name(), Rows: rows, Cols: cols,
			Temperature: temp, Seed: seed, Sweeps: sweeps, BurnIn: burnin}
		encode.Observables(&r, sim)
		elapsed := time.Since(start)
		r.ElapsedSec = elapsed.Seconds()
		if sweeps > 0 && elapsed > 0 {
			// Wall-clock speed of the simulator on this host, like the other
			// backends — NOT the modelled TPU throughput (-profile/-estimate
			// report that).
			r.FlipsPerNs = float64(rows) * float64(cols) * float64(sweeps) / float64(elapsed.Nanoseconds())
		}
		if err := encode.WriteLine(os.Stdout, r); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("after %d sweeps: m = %+.5f, |m| = %.5f, E/spin = %.5f\n",
		burnin+sweeps, sim.Magnetization(), abs(sim.Magnetization()), sim.Energy())
	if profile {
		perSweep := perSweepCounts(sim.Counts(), sweeps)
		model := perf.DefaultModel()
		if perfAlg == perf.AlgConv {
			model = model.ForConv()
		}
		b := model.StepBreakdown(perSweep, 1)
		fmt.Printf("device work per sweep: %v\n", perSweep)
		fmt.Printf("modelled TPU v3 step: %.3f ms (MXU %.1f%%, VPU %.1f%%, format %.1f%%)\n",
			b.StepSec()*1e3, pct(b.MXUSec, b.StepSec()), pct(b.VPUSec, b.StepSec()), pct(b.FormatSec, b.StepSec()))
		fmt.Printf("modelled throughput: %.2f flips/ns\n",
			perf.Throughput(float64(rows)*float64(cols), b.StepSec()))
	}
}

func runPod(rows, cols, tile int, dt tensor.DType, podX, podY int,
	temp float64, seed uint64, sweeps, burnin int, profile bool) {
	cfg := tpu.DistConfig{
		PodX: podX, PodY: podY,
		CoreRows: rows / podY, CoreCols: cols / podX,
		Temperature: temp, TileSize: tile, DType: dt, Seed: seed,
	}
	if cfg.CoreRows*podY != rows || cfg.CoreCols*podX != cols {
		log.Fatalf("lattice %dx%d does not decompose over a %dx%d pod", rows, cols, podX, podY)
	}
	d := tpu.NewDistSimulator(cfg)
	fmt.Printf("pod %dx%d (%d cores): global %dx%d lattice, per-core %dx%d, T=%.4f\n",
		podX, podY, d.NumCores(), rows, cols, cfg.CoreRows, cfg.CoreCols, temp)
	d.Run(burnin)
	d.ResetCounts()
	d.Run(sweeps)
	fmt.Printf("after %d sweeps: m = %+.5f, E/spin = %.5f\n", burnin+sweeps, d.Magnetization(), d.Energy())
	if profile {
		perCore, total := d.Counts()
		perSweep := perSweepCounts(perCore, sweeps)
		b := perf.DefaultModel().StepBreakdown(perSweep, d.NumCores())
		fmt.Printf("per-core work per sweep: %v\n", perSweep)
		fmt.Printf("pod-total ops: %d\n", total.Ops)
		fmt.Printf("modelled step: %.3f ms, collective permute %.3f ms, throughput %.2f flips/ns\n",
			b.StepSec()*1e3, b.CommSec*1e3,
			perf.Throughput(float64(rows)*float64(cols), b.StepSec()))
	}
}

func runEstimate(rows, cols, tile int, dt tensor.DType, alg perf.Algorithm, podX, podY int) {
	halo := podX*podY > 1
	counts := perf.EstimateSweepCounts(perf.SweepSpec{
		Rows: rows, Cols: cols, Tile: tile, DType: dt, Algorithm: alg,
		Halo: halo, PodX: podX, PodY: podY,
	})
	model := perf.DefaultModel()
	if alg == perf.AlgConv {
		model = model.ForConv()
	}
	cores := podX * podY
	b := model.StepBreakdown(counts, cores)
	spins := float64(rows) * float64(cols) * float64(cores)
	tput := perf.Throughput(spins, b.StepSec())
	fmt.Printf("estimate for %v on %d core(s), per-core %dx%d %s:\n", alg, cores, rows, cols, dtName(dt))
	fmt.Printf("  per-core work per sweep: %v\n", counts)
	fmt.Printf("  step time: %.3f ms (MXU %.1f%%, VPU %.1f%%, format %.1f%%, comm %.3f%%)\n",
		b.StepSec()*1e3, pct(b.MXUSec, b.StepSec()), pct(b.VPUSec, b.StepSec()),
		pct(b.FormatSec, b.StepSec()), pct(b.CommSec, b.StepSec()))
	fmt.Printf("  throughput: %.2f flips/ns  (%.2f per core)\n", tput, tput/float64(cores))
	fmt.Printf("  energy: %.2f nJ/flip\n", model.EnergyPerFlip(tput/float64(cores)))
	r := model.RooflineAnalysis(counts, b.StepSec())
	fmt.Printf("  roofline: %.2f TFLOPS achieved, %.1f%% of roofline, %.1f%% of peak\n",
		r.AchievedFLOPS/1e12, r.PctOfRoofline, r.PctOfPeak)
}

func dtName(d tensor.DType) string {
	if d == tensor.BFloat16 {
		return "bfloat16"
	}
	return "float32"
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}

// perSweepCounts divides the accumulated counters of a run by the number of
// sweeps, giving the per-sweep work the performance model expects.
func perSweepCounts(c metrics.Counts, sweeps int) metrics.Counts {
	if sweeps <= 1 {
		return c
	}
	n := int64(sweeps)
	return metrics.Counts{
		MXUMacs:     c.MXUMacs / n,
		VPUOps:      c.VPUOps / n,
		FormatBytes: c.FormatBytes / n,
		HBMBytes:    c.HBMBytes / n,
		CommBytes:   c.CommBytes / n,
		CommEvents:  c.CommEvents / n,
		CommHops:    c.CommHops / n,
		Ops:         c.Ops / n,
	}
}
