// Command isingload is the k6-style load harness of the isingd daemon: it
// drives the REST API with concurrent job submitters and NDJSON stream
// subscribers, reports p50/p95/p99 request latency, error/queue-full and
// cache-hit rates plus server-side counter deltas (sweeps/s, stream wakeups
// per sweep), checks them against declared thresholds, and writes the
// machine-readable BENCH_*.json perf snapshot the repository's trajectory
// is built from (internal/load).
//
// Usage:
//
//	isingload [-addr http://localhost:8765] [-duration 5s]
//	          [-submitters 16] [-subscribers 8] [-cancel-every 0] [-clients 0]
//	          [-backend multispin] [-rows 64] [-sweeps 400] [-interval 50]
//	          [-seeds 0] [-thresholds "submit_p95_ms<250,queue_wait_p95_ms<100"]
//	          [-bench 6] [-out BENCH_6.json] [-host] [-hostsize 256] [-hostsweeps 5]
//	          [-profile cpu.pprof] [-profile-seconds 0] [-debug-addr localhost:6060]
//
// Thresholds may also gate the server-side stage quantiles (queue_wait_p95_ms,
// run_p95_ms, checkpoint_write_p95_ms, stream_write_p95_ms), reconstructed
// from the daemon's Prometheus histogram bucket deltas. -profile captures a
// CPU profile of the daemon during the run: in-process when self-hosting,
// via the daemon's -debug-addr pprof listener when driving a remote one.
//
// With no -addr, isingload boots an in-process daemon on a loopback port
// (flags -workers and -queue shape it) and load-tests that — the same
// service code cmd/isingd serves, so a laptop run needs no separate daemon.
// With -host, the snapshot also carries the measured `benchtables -host`
// flips/ns of every CPU engine, the row-kernel reference/optimized delta
// (with the binary's AVX2 status), the lane-packed ensemble aggregate and
// the composed sharded-ensemble aggregate.
//
// The exit status is the threshold verdict: 0 when every declared check
// passes, 1 otherwise — CI gates on it, k6 style.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tpuising/internal/harness"
	"tpuising/internal/load"
	"tpuising/internal/rng"
	"tpuising/internal/service"
)

// defaultThresholds is the declared pass/fail bar of a default run: submits
// answer fast at the 95th percentile, hard errors are rare, at least one
// job completes end to end, and no accepted job fails server-side (a bad
// spec fails every job while every request around it still succeeds).
const defaultThresholds = "submit_p95_ms<250,error_rate<0.01,jobs_done>=1,jobs_failed<=0"

// hostBackends are the engines measured into the snapshot's host section —
// the same set as the harness HostBaselines table.
var hostBackends = []string{"checkerboard", "gpusim", "multispin", "multispin-shared"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("isingload: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// errThresholds marks a run that completed but failed its declared checks.
type errThresholds struct{ failed []load.Check }

func (e errThresholds) Error() string {
	names := make([]string, 0, len(e.failed))
	for _, c := range e.failed {
		names = append(names, c.Threshold.String())
	}
	return fmt.Sprintf("%d threshold(s) failed: %s", len(e.failed), strings.Join(names, ", "))
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("isingload", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://localhost:8765); empty boots an in-process daemon")
	duration := fs.Duration("duration", 5*time.Second, "load-generation wall clock")
	submitters := fs.Int("submitters", 16, "concurrent submit→poll→result users")
	subscribers := fs.Int("subscribers", 8, "concurrent NDJSON stream subscribers")
	cancelEvery := fs.Int("cancel-every", 0, "cancel every Nth accepted job right after submit (0 = never)")
	clients := fs.Int("clients", 0, "distinct X-Client-ID identities spread across submitters (0 = anonymous); exercises per-client quotas")
	backendName := fs.String("backend", "multispin", "job backend (registry name)")
	rows := fs.Int("rows", 64, "job lattice side")
	sweeps := fs.Int("sweeps", 400, "measured sweeps per job")
	interval := fs.Int("interval", 50, "sweeps between streamed samples")
	seeds := fs.Int("seeds", 0, "distinct-seed window; repeats hit the result cache (0 = 2x submitters)")
	thresholds := fs.String("thresholds", defaultThresholds, "comma-separated pass/fail gates over report metrics")
	bench := fs.String("bench", "", "trajectory index: write the snapshot as BENCH_<bench>.json fields")
	outPath := fs.String("out", "", "snapshot file to write (e.g. BENCH_6.json; empty = no snapshot)")
	hostBench := fs.Bool("host", false, "also measure host engine flips/ns (benchtables -host style) into the snapshot")
	hostSize := fs.Int("hostsize", 256, "host-measurement lattice side")
	hostSweeps := fs.Int("hostsweeps", 5, "host-measurement timed sweeps per engine")
	workers := fs.Int("workers", runtime.NumCPU(), "in-process daemon worker pool (only without -addr)")
	queue := fs.Int("queue", 256, "in-process daemon queue depth (only without -addr)")
	profilePath := fs.String("profile", "", "capture a CPU profile of the daemon during the run into this file (pprof format)")
	profileSecs := fs.Int("profile-seconds", 0, "remote profile capture length in seconds (0 = the -duration, rounded up; only with -addr)")
	debugURL := fs.String("debug-addr", "", "the daemon's -debug-addr (host:port or URL) to fetch remote profiles from (required for -profile with -addr)")
	fs.Parse(args)

	ths, err := load.ParseThresholds(*thresholds)
	if err != nil {
		return err
	}

	baseURL := *addr
	if baseURL == "" {
		url, stop, err := selfHost(service.Config{Workers: *workers, QueueDepth: *queue})
		if err != nil {
			return err
		}
		defer stop()
		baseURL = url
		log.Printf("no -addr: booted in-process daemon on %s (%d workers, queue %d)", url, *workers, *queue)
	}

	sc := load.Scenario{
		BaseURL:     baseURL,
		Submitters:  *submitters,
		Subscribers: *subscribers,
		Duration:    *duration,
		Seeds:       *seeds,
		CancelEvery: *cancelEvery,
		Clients:     *clients,
		Spec: service.JobSpec{
			Backend: *backendName, Rows: *rows,
			Sweeps: *sweeps, SampleInterval: *interval, Seed: 1,
		},
	}
	// -profile captures the DAEMON's CPU during the load run: in-process for
	// a self-hosted daemon (same process, runtime/pprof), over the daemon's
	// -debug-addr pprof listener for a remote one — concurrent with the
	// scenario, so the profile covers the loaded interval.
	var finishProfile func() error
	if *profilePath != "" {
		secs := *profileSecs
		if secs <= 0 {
			secs = int((*duration + time.Second - 1) / time.Second)
		}
		if *addr == "" {
			f, err := os.Create(*profilePath)
			if err != nil {
				return err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return err
			}
			finishProfile = func() error {
				pprof.StopCPUProfile()
				return f.Close()
			}
		} else {
			if *debugURL == "" {
				return fmt.Errorf("-profile with -addr needs -debug-addr (the daemon's pprof listener)")
			}
			profc := make(chan error, 1)
			go func() { profc <- fetchProfile(*debugURL, *profilePath, secs) }()
			finishProfile = func() error { return <-profc }
		}
		log.Printf("capturing CPU profile (%ds) into %s", secs, *profilePath)
	}

	log.Printf("driving %s: %d submitters + %d subscribers for %v", baseURL, *submitters, *subscribers, *duration)
	report, err := sc.Run(context.Background())
	if err != nil {
		return err
	}
	if finishProfile != nil {
		if err := finishProfile(); err != nil {
			return fmt.Errorf("capturing CPU profile: %w", err)
		}
		log.Printf("wrote %s", *profilePath)
	}
	fmt.Fprint(out, report.Text())

	checks, passed := load.EvaluateThresholds(ths, report.Metrics())
	var failed []load.Check
	for _, c := range checks {
		verdict := "pass"
		if !c.OK {
			verdict = "FAIL"
			failed = append(failed, c)
		}
		detail := fmt.Sprintf("actual %g", c.Actual)
		if c.Missing {
			detail = fmt.Sprintf("no such metric (have: %s)", strings.Join(load.MetricNames(report.Metrics()), " "))
		}
		fmt.Fprintf(out, "threshold %-28s %s (%s)\n", c.Threshold.String(), verdict, detail)
	}

	snap := &load.Snapshot{
		Bench:      *bench,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Service:    report,
		Checks:     checks,
		Passed:     passed,
	}
	if *hostBench {
		log.Printf("measuring host engines (%dx%d, %d sweeps per cell)", *hostSize, *hostSize, *hostSweeps)
		hb := &load.HostBench{
			Lattice:    *hostSize,
			Sweeps:     *hostSweeps,
			FlipsPerNs: make(map[string]float64, len(hostBackends)),
		}
		for _, name := range hostBackends {
			hb.FlipsPerNs[name] = harness.MeasureBackend(name, *hostSize, *hostSweeps)
		}
		hb.EnsembleLanes = 64
		hb.EnsembleAggregate = harness.MeasureEnsembleAggregate(*hostSize, hb.EnsembleLanes, *hostSweeps, true)
		hb.AVX2 = rng.HasAVX2()
		hb.KernelRef, hb.KernelOpt = harness.MeasureKernelDelta(*hostSize, *hostSweeps)
		hb.ShardedEnsembleGrid = "2x2"
		hb.ShardedEnsembleAggregate = harness.MeasureShardedEnsembleAggregate(
			*hostSize, hb.EnsembleLanes, 2, 2, *hostSweeps, false)
		snap.Host = hb
	}
	if *outPath != "" {
		if err := snap.Write(*outPath); err != nil {
			return err
		}
		log.Printf("wrote %s", *outPath)
	}
	if !passed {
		return errThresholds{failed: failed}
	}
	return nil
}

// fetchProfile downloads a CPU profile from a daemon's -debug-addr pprof
// listener into path. The server itself runs the capture for secs seconds, so
// the HTTP client allows that long plus slack.
func fetchProfile(debugAddr, path string, secs int) error {
	base := debugAddr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", strings.TrimRight(base, "/"), secs)
	client := &http.Client{Timeout: time.Duration(secs+30) * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s returned %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// selfHost boots the service behind a real loopback HTTP listener and
// returns its base URL and a shutdown func — the in-process stand-in for a
// separately started isingd, sharing its timeout posture (header timeout,
// no blanket write timeout: streams are long-lived).
func selfHost(cfg service.Config) (url string, stop func(), err error) {
	srv, skipped := service.New(cfg)
	for _, e := range skipped {
		log.Printf("skipping checkpoint: %v", e)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go hs.Serve(ln)
	stop = func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}
