// Command isingload is the k6-style load harness of the isingd daemon: it
// drives the REST API with concurrent job submitters and NDJSON stream
// subscribers, reports p50/p95/p99 request latency, error/queue-full and
// cache-hit rates plus server-side counter deltas (sweeps/s, stream wakeups
// per sweep), checks them against declared thresholds, and writes the
// machine-readable BENCH_*.json perf snapshot the repository's trajectory
// is built from (internal/load).
//
// Usage:
//
//	isingload [-addr http://localhost:8765] [-duration 5s]
//	          [-submitters 16] [-subscribers 8] [-cancel-every 0] [-clients 0]
//	          [-backend multispin] [-rows 64] [-sweeps 400] [-interval 50]
//	          [-seeds 0] [-thresholds "submit_p95_ms<250,error_rate<0.01"]
//	          [-bench 6] [-out BENCH_6.json] [-host] [-hostsize 256] [-hostsweeps 5]
//
// With no -addr, isingload boots an in-process daemon on a loopback port
// (flags -workers and -queue shape it) and load-tests that — the same
// service code cmd/isingd serves, so a laptop run needs no separate daemon.
// With -host, the snapshot also carries the measured `benchtables -host`
// flips/ns of every CPU engine and the lane-packed ensemble aggregate.
//
// The exit status is the threshold verdict: 0 when every declared check
// passes, 1 otherwise — CI gates on it, k6 style.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"tpuising/internal/harness"
	"tpuising/internal/load"
	"tpuising/internal/service"
)

// defaultThresholds is the declared pass/fail bar of a default run: submits
// answer fast at the 95th percentile, hard errors are rare, at least one
// job completes end to end, and no accepted job fails server-side (a bad
// spec fails every job while every request around it still succeeds).
const defaultThresholds = "submit_p95_ms<250,error_rate<0.01,jobs_done>=1,jobs_failed<=0"

// hostBackends are the engines measured into the snapshot's host section —
// the same set as the harness HostBaselines table.
var hostBackends = []string{"checkerboard", "gpusim", "multispin", "multispin-shared"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("isingload: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// errThresholds marks a run that completed but failed its declared checks.
type errThresholds struct{ failed []load.Check }

func (e errThresholds) Error() string {
	names := make([]string, 0, len(e.failed))
	for _, c := range e.failed {
		names = append(names, c.Threshold.String())
	}
	return fmt.Sprintf("%d threshold(s) failed: %s", len(e.failed), strings.Join(names, ", "))
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("isingload", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://localhost:8765); empty boots an in-process daemon")
	duration := fs.Duration("duration", 5*time.Second, "load-generation wall clock")
	submitters := fs.Int("submitters", 16, "concurrent submit→poll→result users")
	subscribers := fs.Int("subscribers", 8, "concurrent NDJSON stream subscribers")
	cancelEvery := fs.Int("cancel-every", 0, "cancel every Nth accepted job right after submit (0 = never)")
	clients := fs.Int("clients", 0, "distinct X-Client-ID identities spread across submitters (0 = anonymous); exercises per-client quotas")
	backendName := fs.String("backend", "multispin", "job backend (registry name)")
	rows := fs.Int("rows", 64, "job lattice side")
	sweeps := fs.Int("sweeps", 400, "measured sweeps per job")
	interval := fs.Int("interval", 50, "sweeps between streamed samples")
	seeds := fs.Int("seeds", 0, "distinct-seed window; repeats hit the result cache (0 = 2x submitters)")
	thresholds := fs.String("thresholds", defaultThresholds, "comma-separated pass/fail gates over report metrics")
	bench := fs.String("bench", "", "trajectory index: write the snapshot as BENCH_<bench>.json fields")
	outPath := fs.String("out", "", "snapshot file to write (e.g. BENCH_6.json; empty = no snapshot)")
	hostBench := fs.Bool("host", false, "also measure host engine flips/ns (benchtables -host style) into the snapshot")
	hostSize := fs.Int("hostsize", 256, "host-measurement lattice side")
	hostSweeps := fs.Int("hostsweeps", 5, "host-measurement timed sweeps per engine")
	workers := fs.Int("workers", runtime.NumCPU(), "in-process daemon worker pool (only without -addr)")
	queue := fs.Int("queue", 256, "in-process daemon queue depth (only without -addr)")
	fs.Parse(args)

	ths, err := load.ParseThresholds(*thresholds)
	if err != nil {
		return err
	}

	baseURL := *addr
	if baseURL == "" {
		url, stop, err := selfHost(service.Config{Workers: *workers, QueueDepth: *queue})
		if err != nil {
			return err
		}
		defer stop()
		baseURL = url
		log.Printf("no -addr: booted in-process daemon on %s (%d workers, queue %d)", url, *workers, *queue)
	}

	sc := load.Scenario{
		BaseURL:     baseURL,
		Submitters:  *submitters,
		Subscribers: *subscribers,
		Duration:    *duration,
		Seeds:       *seeds,
		CancelEvery: *cancelEvery,
		Clients:     *clients,
		Spec: service.JobSpec{
			Backend: *backendName, Rows: *rows,
			Sweeps: *sweeps, SampleInterval: *interval, Seed: 1,
		},
	}
	log.Printf("driving %s: %d submitters + %d subscribers for %v", baseURL, *submitters, *subscribers, *duration)
	report, err := sc.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Text())

	checks, passed := load.EvaluateThresholds(ths, report.Metrics())
	var failed []load.Check
	for _, c := range checks {
		verdict := "pass"
		if !c.OK {
			verdict = "FAIL"
			failed = append(failed, c)
		}
		detail := fmt.Sprintf("actual %g", c.Actual)
		if c.Missing {
			detail = fmt.Sprintf("no such metric (have: %s)", strings.Join(load.MetricNames(report.Metrics()), " "))
		}
		fmt.Fprintf(out, "threshold %-28s %s (%s)\n", c.Threshold.String(), verdict, detail)
	}

	snap := &load.Snapshot{
		Bench:      *bench,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Service:    report,
		Checks:     checks,
		Passed:     passed,
	}
	if *hostBench {
		log.Printf("measuring host engines (%dx%d, %d sweeps per cell)", *hostSize, *hostSize, *hostSweeps)
		hb := &load.HostBench{
			Lattice:    *hostSize,
			Sweeps:     *hostSweeps,
			FlipsPerNs: make(map[string]float64, len(hostBackends)),
		}
		for _, name := range hostBackends {
			hb.FlipsPerNs[name] = harness.MeasureBackend(name, *hostSize, *hostSweeps)
		}
		hb.EnsembleLanes = 64
		hb.EnsembleAggregate = harness.MeasureEnsembleAggregate(*hostSize, hb.EnsembleLanes, *hostSweeps, true)
		snap.Host = hb
	}
	if *outPath != "" {
		if err := snap.Write(*outPath); err != nil {
			return err
		}
		log.Printf("wrote %s", *outPath)
	}
	if !passed {
		return errThresholds{failed: failed}
	}
	return nil
}

// selfHost boots the service behind a real loopback HTTP listener and
// returns its base URL and a shutdown func — the in-process stand-in for a
// separately started isingd, sharing its timeout posture (header timeout,
// no blanket write timeout: streams are long-lived).
func selfHost(cfg service.Config) (url string, stop func(), err error) {
	srv, skipped := service.New(cfg)
	for _, e := range skipped {
		log.Printf("skipping checkpoint: %v", e)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go hs.Serve(ln)
	stop = func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}
