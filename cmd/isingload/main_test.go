package main

import (
	"os"
	"path/filepath"
	"testing"

	"tpuising/internal/load"
)

// TestRunSelfHostedSmoke runs the whole CLI path end to end: boot the
// in-process daemon, drive a tiny scenario, check the default thresholds,
// and write a snapshot — then read the snapshot back and make sure it is
// the run we just made.
func TestRunSelfHostedSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	err := run([]string{
		"-duration", "800ms",
		"-submitters", "2",
		"-subscribers", "2",
		"-backend", "checkerboard",
		"-rows", "16",
		"-sweeps", "40",
		"-interval", "10",
		"-workers", "2",
		"-bench", "smoke",
		"-out", out,
	}, os.Stdout)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	snap, err := load.ReadSnapshot(out)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	if snap.Bench != "smoke" || !snap.Passed || snap.Service == nil {
		t.Fatalf("snapshot: bench=%q passed=%v service=%v", snap.Bench, snap.Passed, snap.Service)
	}
	if snap.Service.JobsDone == 0 || snap.Service.Requests == 0 {
		t.Fatalf("snapshot shows no traffic: %+v", snap.Service)
	}
	if len(snap.Checks) == 0 {
		t.Fatal("snapshot carries no threshold checks")
	}
	if snap.GoVersion == "" || snap.GOMAXPROCS == 0 {
		t.Fatalf("snapshot missing runtime info: %+v", snap)
	}
}

// TestRunFailedThresholdIsAnError asserts the CLI's k6-style exit contract:
// an impossible threshold makes run return an errThresholds naming it.
func TestRunFailedThresholdIsAnError(t *testing.T) {
	err := run([]string{
		"-duration", "300ms",
		"-submitters", "1",
		"-subscribers", "0",
		"-backend", "checkerboard",
		"-rows", "16",
		"-sweeps", "20",
		"-workers", "1",
		"-thresholds", "requests>=1,jobs_done>=1000000",
	}, os.Stdout)
	if err == nil {
		t.Fatal("run passed an impossible threshold")
	}
	te, ok := err.(errThresholds)
	if !ok {
		t.Fatalf("error is %T (%v), want errThresholds", err, err)
	}
	if len(te.failed) != 1 || te.failed[0].Threshold.Metric != "jobs_done" {
		t.Fatalf("failed checks: %+v", te.failed)
	}
}
