// Precision: the paper's bfloat16 claim. Two chains with identical seeds are
// run side by side, one storing the spins, acceptance ratios and random
// numbers in float32 and one in bfloat16, at a temperature below, at, and
// above the critical point. The observables must agree within statistical
// error even though bfloat16 carries only 8 bits of mantissa.
package main

import (
	"fmt"
	"math"

	"tpuising/internal/ising"
	"tpuising/internal/ising/tpu"
	"tpuising/internal/stats"
	"tpuising/internal/tensor"
)

func run(size int, dtype tensor.DType, temperature float64, burnin, samples int) (absM, binder float64) {
	sim := tpu.NewSimulator(tpu.Config{
		Rows: size, Cols: size, Temperature: temperature,
		TileSize: 16, DType: dtype, Algorithm: tpu.AlgOptim, Seed: 99,
	})
	sim.Run(burnin)
	ms := make([]float64, 0, samples)
	abs := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		sim.Sweep()
		m := sim.Magnetization()
		ms = append(ms, m)
		abs = append(abs, math.Abs(m))
	}
	return stats.Mean(abs), stats.Binder(ms)
}

func main() {
	const (
		size    = 64
		burnin  = 800
		samples = 1500
	)
	tc := ising.CriticalTemperature()
	fmt.Printf("%dx%d lattice, %d samples per point, identical seeds for both precisions\n\n",
		size, size, samples)
	fmt.Println("  T/Tc      |m| f32    |m| bf16    delta      U4 f32    U4 bf16    delta")
	for _, frac := range []float64{0.85, 1.0, 1.15} {
		temperature := frac * tc
		mF32, uF32 := run(size, tensor.Float32, temperature, burnin, samples)
		mBF16, uBF16 := run(size, tensor.BFloat16, temperature, burnin, samples)
		fmt.Printf("%6.2f   %9.4f  %9.4f  %+8.4f   %8.4f   %8.4f  %+8.4f\n",
			frac, mF32, mBF16, mF32-mBF16, uF32, uBF16, uF32-uBF16)
	}
	fmt.Println("\nbfloat16 halves the memory footprint (larger lattices per core) and feeds the")
	fmt.Println("MXU at full rate, while leaving the physics unchanged — the paper's Section 4.1 claim.")
}
