// Quickstart: simulate a 256x256 two-dimensional Ising model at the critical
// temperature on one simulated TPU TensorCore using the paper's Algorithm 2
// (the compact checkerboard update), and print the magnetisation as the
// lattice relaxes from a cold start.
package main

import (
	"fmt"

	"tpuising/internal/ising"
	"tpuising/internal/ising/tpu"
	"tpuising/internal/tensor"
)

func main() {
	const size = 256

	sim := tpu.NewSimulator(tpu.Config{
		Rows:        size,
		Cols:        size,
		Temperature: ising.CriticalTemperature(),
		TileSize:    32,              // 128 on real hardware; smaller keeps the demo fast
		DType:       tensor.BFloat16, // the precision the paper's benchmarks use
		Algorithm:   tpu.AlgOptim,    // Algorithm 2
		Seed:        42,
	})

	fmt.Printf("2-D Ising model, %dx%d lattice at T = Tc = %.4f J/kB\n",
		size, size, ising.CriticalTemperature())
	fmt.Println("sweep   magnetisation   energy/spin")
	for step := 0; step <= 500; step += 50 {
		if step > 0 {
			sim.Run(50)
		}
		fmt.Printf("%5d   %+12.5f   %+11.5f\n", step, sim.Magnetization(), sim.Energy())
	}

	// The device work counters show where a real TPU would spend its time.
	counts := sim.Counts()
	fmt.Printf("\ndevice work for the whole run: %v\n", counts)
	fmt.Printf("matrix-unit share of FLOPs: %.1f%%\n",
		100*float64(2*counts.MXUMacs)/float64(counts.FLOPs()))
}
