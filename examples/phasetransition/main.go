// Phase transition: reproduce the physics behind the paper's Figure 4 at
// laptop scale. The example sweeps a window of temperatures around the exact
// critical point for two lattice sizes, measures the average magnetisation
// and the Binder parameter, and locates the crossing of the Binder curves —
// which should land on Tc = 2/ln(1+sqrt(2)).
package main

import (
	"fmt"

	"tpuising/internal/ising"
	"tpuising/internal/ising/tpu"
	"tpuising/internal/sweep"
	"tpuising/internal/tensor"
)

// chain adapts the TPU simulator to the sweep driver.
type chain struct{ sim *tpu.Simulator }

func (c chain) Sweep()                 { c.sim.Sweep() }
func (c chain) Magnetization() float64 { return c.sim.Magnetization() }
func (c chain) Energy() float64        { return c.sim.Energy() }

func main() {
	tc := ising.CriticalTemperature()
	temperatures := sweep.CriticalWindow(0.15, 9)
	cfg := sweep.Config{
		Temperatures: temperatures,
		BurnIn:       800,
		Samples:      1500,
	}

	sizes := []int{16, 48}
	curves := make(map[int][]sweep.Point)
	for _, size := range sizes {
		size := size
		fmt.Printf("sweeping %d temperatures on the %dx%d lattice...\n", len(temperatures), size, size)
		curves[size] = sweep.Run(cfg, func(temperature float64) sweep.Chain {
			return chain{tpu.NewSimulator(tpu.Config{
				Rows: size, Cols: size, Temperature: temperature,
				TileSize: 8, DType: tensor.BFloat16, Algorithm: tpu.AlgOptim,
				Seed: uint64(1000 + size),
			})}
		})
	}

	fmt.Println("\n  T/Tc    |m| (16)   U4 (16)   |m| (48)   U4 (48)   Onsager |m|")
	for i, temp := range temperatures {
		a, b := curves[sizes[0]][i], curves[sizes[1]][i]
		fmt.Printf("%7.4f  %9.4f  %8.4f  %9.4f  %8.4f  %12.4f\n",
			temp/tc, a.AbsMagnetization, a.Binder, b.AbsMagnetization, b.Binder,
			ising.OnsagerMagnetization(temp))
	}

	if cross, err := sweep.BinderCrossing(curves[sizes[0]], curves[sizes[1]]); err == nil {
		fmt.Printf("\nBinder curves cross at T = %.4f (exact Tc = %.4f, %.2f%% off)\n",
			cross, tc, 100*(cross-tc)/tc)
	} else {
		fmt.Printf("\nno Binder crossing found: %v\n", err)
	}
}
