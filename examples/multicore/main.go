// Multicore: run the distributed simulation across a pod of simulated
// TensorCores, exactly as the paper's Section 5 describes — the global
// lattice is domain-decomposed over the 2-D toroidal core grid, each core
// updates its sub-lattice with Algorithm 2 and exchanges boundary spins with
// collective-permute. The example verifies that the distributed chain is
// bit-identical to a single-core chain on the same lattice and then reports
// the modelled weak-scaling behaviour.
package main

import (
	"fmt"

	"tpuising/internal/ising/tpu"
	"tpuising/internal/perf"
	"tpuising/internal/tensor"
)

func main() {
	const (
		coreRows = 64
		coreCols = 64
		sweeps   = 100
	)

	// A 2x2 pod holding a 128x128 global lattice.
	dist := tpu.NewDistSimulator(tpu.DistConfig{
		PodX: 2, PodY: 2,
		CoreRows: coreRows, CoreCols: coreCols,
		Temperature: 2.0, TileSize: 16, DType: tensor.Float32, Seed: 7,
	})
	single := tpu.NewSimulator(tpu.Config{
		Rows: 2 * coreRows, Cols: 2 * coreCols,
		Temperature: 2.0, TileSize: 16, DType: tensor.Float32,
		Algorithm: tpu.AlgOptim, Seed: 7,
	})

	fmt.Printf("running %d sweeps on a 2x2 pod (4 cores) and on a single core...\n", sweeps)
	dist.Run(sweeps)
	single.Run(sweeps)
	fmt.Printf("pod magnetisation:    %+.6f\n", dist.Magnetization())
	fmt.Printf("single magnetisation: %+.6f\n", single.Magnetization())
	if dist.GlobalLattice().AsType(tensor.Float32).Equal(single.LatticeTensor().AsType(tensor.Float32)) {
		fmt.Println("the distributed chain is bit-identical to the single-core chain (site-keyed RNG + halo exchange)")
	} else {
		fmt.Println("WARNING: chains diverged")
	}

	// What the same program costs at paper scale, from the performance model:
	// per-core [896x128, 448x128] lattices on growing pod slices (Table 2).
	perCore, total := dist.Counts()
	fmt.Printf("\nper-core device work for the run: %v\n", perCore)
	fmt.Printf("pod-wide collective permutes: %d\n", total.CommEvents)

	model := perf.DefaultModel()
	fmt.Println("\nmodelled weak scaling at paper scale (per-core [896x128, 448x128], Table 2):")
	fmt.Println("  cores   lattice side      step (ms)   flips/ns")
	for _, n := range []int{1, 2, 4, 8, 16} {
		cores := n * n * 2
		counts := perf.EstimateSweepCounts(perf.SweepSpec{
			Rows: 896 * 128, Cols: 448 * 128, Tile: 128,
			DType: tensor.BFloat16, Algorithm: perf.AlgOptim,
			Halo: true, PodX: 2 * n, PodY: n,
		})
		b := model.StepBreakdown(counts, cores)
		spins := float64(896*128) * float64(448*128) * float64(cores)
		fmt.Printf("  %5d   (%5dx128)^2   %10.1f   %8.1f\n",
			cores, 512*n, b.StepSec()*1e3, perf.Throughput(spins, b.StepSec()))
	}
}
