// Service quickstart: run the isingd simulation service in-process, submit
// a job over its real HTTP API, read the NDJSON observable stream while the
// chain runs, fetch the final result, and show the result cache answering a
// repeated query without re-simulating. Everything here works identically
// against a standalone daemon (`go run ./cmd/isingd`) — the in-process
// test server just keeps the example self-contained.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"tpuising/internal/service"
	"tpuising/internal/service/encode"
)

func main() {
	// An isingd core: two workers, a bounded queue, a result cache.
	srv, skipped := service.New(service.Config{Workers: 2})
	if len(skipped) != 0 {
		log.Fatalf("service.New skipped checkpoints: %v", skipped)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("isingd service listening (in-process) at %s\n", ts.URL)

	// Submit a job: the JSON body is a service.JobSpec, the same document
	// you would POST to a real daemon with curl.
	spec := []byte(`{"backend":"multispin","rows":128,"cols":128,"temperature":2.4,` +
		`"sweeps":300,"burnin":50,"seed":7,"sample_interval":30}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var job service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s: %s on a %dx%d lattice, %d sweeps\n",
		job.ID, job.Spec.Backend, job.Spec.Rows, job.Spec.Cols, job.Spec.Sweeps)

	// Stream the observables as NDJSON while the job runs: one JSON sample
	// per line, flushed as the chain produces it.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNDJSON stream (sweep, magnetisation, energy/spin):")
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var s encode.Sample
		if err := json.Unmarshal(scanner.Bytes(), &s); err != nil {
			log.Fatalf("bad sample line %q: %v", scanner.Text(), err)
		}
		fmt.Printf("  %5d   %+8.5f   %+8.5f\n", s.Sweep, s.Magnetization, s.Energy)
	}
	resp.Body.Close()

	// The stream ends when the job does; fetch the result.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	var result encode.Result
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nresult: <|m|> = %.5f +- %.5f over %d samples, mean E/spin = %+.5f\n",
		result.MeanAbsMagnetization, result.MeanAbsMagnetizationErr, result.Samples, result.MeanEnergy)

	// Resubmit the identical spec: the result cache answers without
	// stepping any backend (the sweep counter proves it).
	before := srv.Stats().SweepsRun
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var again service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nresubmitted the same spec: cached=%v, sweeps run %d -> %d (no re-simulation)\n",
		again.Cached, before, srv.Stats().SweepsRun)
}
