package harness

import (
	"fmt"
	"time"

	"tpuising/internal/interconnect"
	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/perf"
	"tpuising/internal/sweep"
	"tpuising/internal/tempering"
)

// temperSwapInterval is the sweeps-between-swaps of the scaling table: short
// enough that the exchange layer is exercised, long enough to be
// representative of production ladders.
const temperSwapInterval = 5

// HostTemperingScaling measures the replica-exchange layer
// (internal/tempering) on one lattice size across replica counts: every cell
// runs a multispin ladder spanning the critical window, times `rounds`
// tempering rounds of temperSwapInterval sweeps each, and pairs the measured
// aggregate host_flips/ns with the tempering diagnostics (mean swap
// acceptance, walker round trips) and the modelled swap traffic of
// perf.ExchangeTraffic — which the orchestrator's swap counters reproduce
// exactly, so the traffic columns read like ShardTraffic's but for the
// ensemble axis instead of the shard axis.
func HostTemperingScaling(size int, replicaCounts []int, rounds int) *Table {
	t := &Table{
		ID: "host_tempering_scaling",
		Title: fmt.Sprintf(
			"Measured parallel-tempering throughput on %dx%d multispin replicas vs modelled swap traffic", size, size),
		Columns: []string{
			"replicas", "host_flips/ns", "scaling", "swap acc", "round trips", "model swap B/round", "model swap us/round",
		},
	}
	link := interconnect.DefaultLinkParams()
	var base float64
	for _, n := range replicaCounts {
		ens, err := tempering.New(tempering.Config{
			Temperatures: sweep.CriticalWindow(tempering.DefaultWindow(size*size, n), n),
			SwapInterval: temperSwapInterval,
			Seed:         1,
		}, func(slot int, temperature float64) (ising.Backend, error) {
			return backend.New("multispin", backend.Config{
				Rows: size, Cols: size, Temperature: temperature,
				Seed: tempering.ReplicaSeed(1, slot),
			})
		})
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		ens.RunRounds(1) // warm up caches and goroutine pools
		start := time.Now()
		ens.RunRounds(rounds)
		elapsed := time.Since(start)
		var tput float64
		if elapsed > 0 {
			tput = float64(size) * float64(size) * float64(n) *
				float64(temperSwapInterval) * float64(rounds) / float64(elapsed.Nanoseconds())
		}
		if base == 0 {
			base = tput / float64(n)
		}
		scaling := 0.0
		if base > 0 {
			scaling = tput / (base * float64(n))
		}
		rep := ens.Report()
		// Model every swap phase the ensemble performed — warm-up round
		// included — so the traffic columns stay an exact mirror of its swap
		// counters (the pairing parity alternates round by round, so
		// modelling only the timed rounds would drift for odd counts).
		allRounds := rounds + 1
		model := perf.ExchangeTraffic(perf.ExchangeSpec{Replicas: n, Rounds: allRounds}, link)
		t.AddRow(
			n,
			fmt.Sprintf("%.4f", tput),
			fmt.Sprintf("%.2f", scaling),
			fmt.Sprintf("%.2f", rep.Acceptance()),
			rep.RoundTrips,
			fmt.Sprintf("%.1f", float64(model.TotalBytes)/float64(allRounds)),
			fmt.Sprintf("%.2f", model.ExchangeSec/float64(allRounds)*1e6),
		)
	}
	t.Notes = append(t.Notes,
		"host_flips/ns is measured aggregate wall clock over all replicas on this machine; swap traffic is modelled",
		fmt.Sprintf("ladder spans Tc +- tempering.DefaultWindow (sized for healthy swap acceptance); %d timed rounds of %d sweeps per cell after 1 warm-up round", rounds, temperSwapInterval),
		"swap acc / round trips / traffic columns cover every swap phase the ensemble ran (warm-up included)",
		"scaling is per-replica throughput relative to the first row (1.00 = replicas cost nothing extra)",
		"an accepted swap re-labels temperatures in place, so swap traffic is two 8-byte energies per attempted pair",
	)
	return t
}
