// Package harness regenerates every table and figure of the paper's
// evaluation section. Each experiment is one exported function returning a
// *Table (rows of formatted cells plus notes), which the cmd/benchtables
// binary renders to text and CSV and the repository-level benchmarks time.
//
// The performance tables (1-7) and the system-comparison figures (8, 9) are
// produced by the calibrated performance model in internal/perf driven by the
// analytic work estimator, because the paper-scale lattices and pods cannot
// be materialised on a workstation; the correctness figures (4, 7) run the
// real Markov chains on the TensorCore simulator at laptop scale. The mapping
// from experiment to modules, and the paper-vs-measured comparison, is
// recorded in DESIGN.md and EXPERIMENTS.md.
package harness
