package harness

import (
	"strconv"
	"strings"
	"testing"
)

// TestHostBaselinesShape runs the measured host-baseline table at a small
// size and checks its shape and that every throughput cell is positive.
func TestHostBaselinesShape(t *testing.T) {
	tab := HostBaselines([]int{64, 128}, 2)
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	if len(tab.Columns) != 6 {
		t.Fatalf("got %d columns, want 6", len(tab.Columns))
	}
	for _, row := range tab.Rows {
		for i := 1; i < 5; i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || v <= 0 {
				t.Fatalf("cell %q of row %v is not a positive throughput", row[i], row)
			}
		}
		if !strings.HasSuffix(row[5], "x") {
			t.Fatalf("speedup cell %q is not formatted as a multiple", row[5])
		}
	}
}
