package harness

import (
	"strconv"
	"strings"
	"testing"
)

// TestHostBaselinesShape runs the measured host-baseline table at a small
// size and checks its shape and that every throughput cell is positive.
func TestHostBaselinesShape(t *testing.T) {
	tab := HostBaselines([]int{64, 128}, 2)
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	if len(tab.Columns) != 6 {
		t.Fatalf("got %d columns, want 6", len(tab.Columns))
	}
	for _, row := range tab.Rows {
		for i := 1; i < 5; i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || v <= 0 {
				t.Fatalf("cell %q of row %v is not a positive throughput", row[i], row)
			}
		}
		if !strings.HasSuffix(row[5], "x") {
			t.Fatalf("speedup cell %q is not formatted as a multiple", row[5])
		}
	}
}

// TestHostShardScalingShape runs the sharded scaling table at a small size
// and checks that the measured and modelled columns are populated sensibly.
func TestHostShardScalingShape(t *testing.T) {
	tab := HostShardScaling(128, [][2]int{{1, 1}, {2, 1}}, 2)
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	if len(tab.Columns) != 6 {
		t.Fatalf("got %d columns, want 6", len(tab.Columns))
	}
	for _, row := range tab.Rows {
		if v, err := strconv.ParseFloat(row[1], 64); err != nil || v <= 0 {
			t.Fatalf("throughput cell %q of row %v is not positive", row[1], row)
		}
		if !strings.HasSuffix(row[2], "x") {
			t.Fatalf("speedup cell %q is not formatted as a multiple", row[2])
		}
		for i := 3; i < 6; i++ {
			if v, err := strconv.ParseFloat(row[i], 64); err != nil || v <= 0 {
				t.Fatalf("modelled cell %q of row %v is not positive", row[i], row)
			}
		}
	}
	// The packed row halo of a 128-wide shard is 128 bits = 16 bytes, four
	// messages per link per sweep.
	if tab.Rows[0][3] != "64" {
		t.Fatalf("row link bytes = %s, want 64", tab.Rows[0][3])
	}
}
