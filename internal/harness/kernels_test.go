package harness

import (
	"strconv"
	"strings"
	"testing"
)

// TestHostKernelVariantsShape: the before/after kernel table at smoke scale
// has one row per kernel, positive throughputs, and the optimized column must
// not fall behind the reference by more than measurement noise allows — the
// point of the restructuring is that the optimized loop wins.
func TestHostKernelVariantsShape(t *testing.T) {
	tab := HostKernelVariants(64, 2)
	if len(tab.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4", len(tab.Rows))
	}
	for i := range tab.Rows {
		for col := 1; col <= 2; col++ {
			v, err := strconv.ParseFloat(tab.Cell(i, col), 64)
			if err != nil || v <= 0 {
				t.Fatalf("row %d col %d: %q is not a positive throughput (%v)", i, col, tab.Cell(i, col), err)
			}
		}
		if !strings.HasSuffix(tab.Cell(i, 3), "x") {
			t.Fatalf("row %d speedup %q is not a ratio", i, tab.Cell(i, 3))
		}
	}
}

// TestMeasureKernelDeltaPositive: the exported single-pair measurement that
// feeds BENCH snapshots returns positive numbers for both variants.
func TestMeasureKernelDeltaPositive(t *testing.T) {
	ref, opt := MeasureKernelDelta(64, 2)
	if ref <= 0 || opt <= 0 {
		t.Fatalf("kernel delta (%g, %g) not positive", ref, opt)
	}
}

// TestHostShardedEnsembleScalingShape: the composed-engine table has one row
// per grid, positive aggregate throughput and positive modelled traffic.
func TestHostShardedEnsembleScalingShape(t *testing.T) {
	grids := [][2]int{{1, 1}, {2, 2}}
	tab := HostShardedEnsembleScaling(64, 16, grids, 2)
	if len(tab.Rows) != len(grids) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(grids))
	}
	for i, g := range grids {
		if got, want := tab.Cell(i, 0), strconv.Itoa(g[0])+"x"+strconv.Itoa(g[1]); got != want {
			t.Fatalf("row %d grid = %s, want %s", i, got, want)
		}
		v, err := strconv.ParseFloat(tab.Cell(i, 1), 64)
		if err != nil || v <= 0 {
			t.Fatalf("row %d aggregate %q is not positive (%v)", i, tab.Cell(i, 1), err)
		}
		for col := 3; col <= 4; col++ {
			b, err := strconv.Atoi(tab.Cell(i, col))
			if err != nil || b <= 0 {
				t.Fatalf("row %d col %d: %q is not positive traffic (%v)", i, col, tab.Cell(i, col), err)
			}
		}
	}
}
