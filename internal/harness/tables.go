package harness

import (
	"fmt"
	"math"

	"tpuising/internal/device/spec"
	"tpuising/internal/ising/gpusim"
	"tpuising/internal/perf"
	"tpuising/internal/tensor"
)

// anchor per-core lattice of Tables 2-5 (in units of 128-site tiles).
const (
	superdenseRowTiles = 896
	superdenseColTiles = 448
	denseTiles         = 448
	looseTiles         = 224
)

// podCounts estimates one core's per-sweep work for the Algorithm 2
// distributed configuration.
func podCounts(rowTiles, colTiles, podX, podY int) (c perf.SweepSpec) {
	return perf.SweepSpec{
		Rows: rowTiles * 128, Cols: colTiles * 128, Tile: 128,
		DType: tensor.BFloat16, Algorithm: perf.AlgOptim,
		Halo: true, PodX: podX, PodY: podY,
	}
}

// Table1 regenerates the single-core throughput and energy table: Algorithm 2
// in bfloat16 on one TPU v3 TensorCore for square lattices from (20x128)^2 to
// (640x128)^2, with the published GPU, V100 and FPGA baselines as reference
// rows.
func Table1(m perf.Model) *Table {
	t := &Table{
		ID:    "table1",
		Title: "Single TPU v3 core throughput (flips/ns) and energy (nJ/flip) vs lattice size",
		Columns: []string{
			"lattice size", "flips/ns", "nJ/flip",
		},
	}
	for _, tiles := range []int{20, 40, 80, 160, 320, 640} {
		side := tiles * 128
		counts := perf.EstimateSweepCounts(perf.SweepSpec{
			Rows: side, Cols: side, Tile: 128,
			DType: tensor.BFloat16, Algorithm: perf.AlgOptim,
		})
		step := m.StepBreakdown(counts, 1).StepSec()
		tput := perf.Throughput(float64(side)*float64(side), step)
		t.AddRow(fmt.Sprintf("(%dx128)^2", tiles), tput, m.EnergyPerFlip(tput))
	}
	for _, ref := range []gpusim.DeviceModel{gpusim.PreisGPU(), gpusim.TeslaV100(), gpusim.FPGA()} {
		t.AddRow(ref.Name, ref.FlipsPerNs, ref.EnergyPerFlip())
	}
	t.Notes = append(t.Notes,
		"TPU rows from the calibrated performance model (single core, Algorithm 2, bfloat16)",
		"reference rows are published numbers, as in the paper")
	return t
}

// Table2 regenerates the weak-scaling table: per-core [896x128, 448x128]
// lattices on n x n x 2 core pods from 2 to 512 cores, plus the published
// 64-GPU MPI cluster as a reference row.
func Table2(m perf.Model) *Table {
	t := &Table{
		ID:    "table2",
		Title: "Weak scaling of Algorithm 2 on TPU v3 pods (per-core lattice [896x128, 448x128])",
		Columns: []string{
			"#cores", "lattice size", "step time (ms)", "flips/ns", "nJ/flip",
		},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		cores := n * n * 2
		sp := podCounts(superdenseRowTiles, superdenseColTiles, 2*n, n)
		counts := perf.EstimateSweepCounts(sp)
		step := m.StepBreakdown(counts, cores).StepSec()
		globalSpins := float64(sp.Rows) * float64(sp.Cols) * float64(cores)
		tput := perf.Throughput(globalSpins, step)
		perCore := tput / float64(cores)
		t.AddRow(
			fmt.Sprintf("%dx%dx2", n, n),
			fmt.Sprintf("(%dx128)^2", 512*n),
			step*1e3, tput, m.EnergyPerFlip(perCore),
		)
	}
	blocks := gpusim.NewCluster(gpusim.PreisGPU(), 64, 800000)
	t.AddRow("64 GPUs + MPI [3]",
		fmt.Sprintf("%d^2", blocks.LatticeSide),
		blocks.StepTime()*1e3, blocks.Throughput(), blocks.Device.EnergyPerFlip())
	t.Notes = append(t.Notes,
		"each n x n x 2 pod holds a (512*128*n)^2 global lattice",
		"the GPU reference row is the host-mediated MPI cluster model calibrated to Block et al.")
	return t
}

// Table3 regenerates the step-time breakdown percentages (MXU, VPU, data
// formatting, collective permute) across pod sizes.
func Table3(m perf.Model) *Table {
	t := &Table{
		ID:    "table3",
		Title: "Percentage time breakdown of the computation (per-core lattice [896x128, 448x128])",
		Columns: []string{
			"#cores", "MXU %", "VPU %", "data formatting %", "collective permute %",
		},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		cores := n * n * 2
		counts := perf.EstimateSweepCounts(podCounts(superdenseRowTiles, superdenseColTiles, 2*n, n))
		b := m.StepBreakdown(counts, cores)
		mxu, vpu, format, comm := b.Fractions()
		t.AddRow(fmt.Sprintf("%dx%dx2", n, n),
			100*mxu, 100*vpu, 100*format, fmt.Sprintf("%.3f", 100*comm))
	}
	return t
}

// Table4 regenerates the step-time and collective-permute-time table across
// per-core lattice sizes and pod sizes.
func Table4(m perf.Model) *Table {
	t := &Table{
		ID:    "table4",
		Title: "Step time and collective-permute time (ms) vs per-core lattice size and pod size",
		Columns: []string{
			"#cores", "per-core lattice", "step time (ms)", "collective permute (ms)",
		},
	}
	perCore := []struct {
		rows, cols int
		label      string
	}{
		{896, 448, "[896x128, 448x128]"},
		{448, 224, "[448x128, 224x128]"},
		{224, 112, "[224x128, 112x128]"},
	}
	for _, n := range []int{4, 8, 16} {
		cores := n * n * 2
		for _, pc := range perCore {
			counts := perf.EstimateSweepCounts(podCounts(pc.rows, pc.cols, 2*n, n))
			b := m.StepBreakdown(counts, cores)
			t.AddRow(fmt.Sprintf("%dx%dx2", n, n), pc.label,
				b.StepSec()*1e3, fmt.Sprintf("%.3f", b.CommSec*1e3))
		}
	}
	t.Notes = append(t.Notes,
		"the collective-permute time is dominated by synchronisation, not bandwidth, as in the paper")
	return t
}

// Table5 regenerates the roofline/FLOPS-utilisation table.
func Table5(m perf.Model) *Table {
	t := &Table{
		ID:    "table5",
		Title: "Achieved FLOPS as % of the roofline optimum and of the hardware peak",
		Columns: []string{
			"#cores", "achieved TFLOPS", "% of roofline", "% of HW peak", "memory bound",
		},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		cores := n * n * 2
		counts := perf.EstimateSweepCounts(podCounts(superdenseRowTiles, superdenseColTiles, 2*n, n))
		b := m.StepBreakdown(counts, cores)
		r := m.RooflineAnalysis(counts, b.StepSec())
		t.AddRow(fmt.Sprintf("%dx%dx2", n, n),
			r.AchievedFLOPS/1e12, r.PctOfRoofline, r.PctOfPeak, fmt.Sprintf("%v", r.MemoryBound))
	}
	return t
}

// convTopologies lists the core grids of the appendix weak-scaling table.
var convTopologies = []struct{ x, y int }{
	{2, 2}, {3, 3}, {4, 4}, {6, 6}, {8, 8}, {11, 11}, {16, 16}, {23, 23}, {32, 32}, {45, 45},
}

// Table6 regenerates the weak-scaling table of the conv-based implementation
// at the three packing densities of the appendix.
func Table6(m perf.Model) *Table {
	t := &Table{
		ID:    "table6",
		Title: "Weak scaling of the conv-based implementation (TensorFlow r1.15 equivalent)",
		Columns: []string{
			"core topology", "per-core lattice", "whole lattice", "step time (ms)", "flips/ns",
		},
	}
	conv := m.ForConv()
	type density struct {
		rows, cols int
		label      string
	}
	densities := []density{
		{looseTiles, looseTiles, "[224, 224] x 128"},
		{denseTiles, denseTiles, "[448, 448] x 128"},
		{superdenseRowTiles, superdenseColTiles, "[896, 448] x 128"},
	}
	for di, d := range densities {
		topos := convTopologies
		if di == 2 {
			// The superdense section of the appendix uses rectangular grids.
			topos = []struct{ x, y int }{{2, 4}, {4, 8}, {8, 16}, {16, 32}, {32, 64}}
		}
		for _, topo := range topos {
			cores := topo.x * topo.y
			counts := perf.EstimateSweepCounts(perf.SweepSpec{
				Rows: d.rows * 128, Cols: d.cols * 128, Tile: 128,
				DType: tensor.BFloat16, Algorithm: perf.AlgConv,
				Halo: true, PodX: topo.x, PodY: topo.y,
			})
			b := conv.StepBreakdown(counts, cores)
			globalSpins := float64(d.rows*128) * float64(d.cols*128) * float64(cores)
			side := int(math.Round(math.Sqrt(globalSpins)))
			t.AddRow(fmt.Sprintf("[%d, %d]", topo.x, topo.y), d.label,
				fmt.Sprintf("(%d)^2", side), b.StepSec()*1e3,
				perf.Throughput(globalSpins, b.StepSec()))
		}
	}
	return t
}

// Table7 regenerates the strong-scaling table of the conv-based
// implementation on the fixed (128x1792)^2 lattice.
func Table7(m perf.Model) *Table {
	t := &Table{
		ID:    "table7",
		Title: "Strong scaling of the conv-based implementation on the (128x1792)^2 lattice",
		Columns: []string{
			"core topology", "per-core lattice", "step time (ms)", "flips/ns", "parallel efficiency",
		},
	}
	conv := m.ForConv()
	rows := strongScalingRows(conv)
	base := 0.0
	for i, r := range rows {
		perCore := r.throughput / float64(r.cores)
		if i == 0 {
			base = perCore
		}
		t.AddRow(fmt.Sprintf("[%d, %d]", r.podX, r.podY),
			fmt.Sprintf("[%d, %d] x 128", r.rowTiles, r.colTiles),
			r.stepSec*1e3, r.throughput, perCore/base)
	}
	t.Notes = append(t.Notes,
		"scaling departs from linear beyond ~1000 cores as the collective-permute overhead grows")
	return t
}

// strongRow is one row of the strong-scaling experiment, shared by Table 7
// and Figure 9.
type strongRow struct {
	podX, podY         int
	rowTiles, colTiles int
	cores              int
	stepSec            float64
	throughput         float64
}

// strongScalingRows computes the Table 7 / Figure 9 data points.
func strongScalingRows(conv perf.Model) []strongRow {
	const sideTiles = 1792
	configs := []struct {
		podX, podY         int
		rowTiles, colTiles int
	}{
		{2, 4, 896, 448},
		{4, 4, 448, 448},
		{4, 8, 448, 224},
		{8, 8, 224, 224},
		{8, 16, 224, 112},
		{16, 16, 112, 112},
		{16, 32, 112, 56},
		{32, 32, 56, 56},
		{32, 64, 56, 28},
	}
	globalSpins := float64(sideTiles*128) * float64(sideTiles*128)
	rows := make([]strongRow, 0, len(configs))
	for _, cfg := range configs {
		cores := cfg.podX * cfg.podY
		counts := perf.EstimateSweepCounts(perf.SweepSpec{
			Rows: cfg.rowTiles * 128, Cols: cfg.colTiles * 128, Tile: 128,
			DType: tensor.BFloat16, Algorithm: perf.AlgConv,
			Halo: true, PodX: cfg.podX, PodY: cfg.podY,
		})
		b := conv.StepBreakdown(counts, cores)
		rows = append(rows, strongRow{
			podX: cfg.podX, podY: cfg.podY,
			rowTiles: cfg.rowTiles, colTiles: cfg.colTiles,
			cores:      cores,
			stepSec:    b.StepSec(),
			throughput: perf.Throughput(globalSpins, b.StepSec()),
		})
	}
	return rows
}

// TableHBM is an extension table (not in the paper's numbered set) recording
// the memory-capacity claim of Section 4.2.1: the largest single-core lattice
// in each precision.
func TableHBM(m perf.Model) *Table {
	t := &Table{
		ID:    "table_hbm",
		Title: "Largest single-core square lattice fitting in 16 GB HBM",
		Columns: []string{
			"precision", "max lattice side", "in 128-tiles", "HBM utilisation %",
		},
	}
	for _, d := range []tensor.DType{tensor.BFloat16, tensor.Float32} {
		side := m.MaxSquareLattice(128, d)
		util := 100 * float64(perf.HBMFootprintBytes(side, side, 128, d)) / float64(m.Chip.HBMBytes)
		name := "bfloat16"
		if d == tensor.Float32 {
			name = "float32"
		}
		t.AddRow(name, side, fmt.Sprintf("%dx128", side/128), util)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("the paper reports (656x128)^2 = 83968^2 for bfloat16 at 96%% utilisation; see EXPERIMENTS.md"),
		fmt.Sprintf("TPU v3 core HBM capacity: %d GiB", spec.TPUv3Core().HBMBytes>>30))
	return t
}
