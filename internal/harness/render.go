package harness

import (
	"fmt"
	"strings"
)

// Table is one regenerated table or figure data set.
type Table struct {
	// ID is the experiment identifier, e.g. "table1" or "figure8".
	ID string
	// Title is a human-readable description.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the formatted cells, one slice per row.
	Rows [][]string
	// Notes are free-form remarks rendered below the table.
	Notes []string
}

// AddRow appends a formatted row built from arbitrary values.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders a float with a precision appropriate to its magnitude.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.4g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Text renders the table as aligned monospaced text.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Cell returns the cell at (row, col) for tests and downstream consumers.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }
