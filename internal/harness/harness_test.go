package harness

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"tpuising/internal/perf"
)

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestTable1ShapeAndWinners(t *testing.T) {
	tab := Table1(perf.DefaultModel())
	if len(tab.Rows) != 9 {
		t.Fatalf("Table 1 should have 6 TPU rows + 3 reference rows, got %d", len(tab.Rows))
	}
	// Throughput must be monotone non-decreasing over the TPU rows
	// (Table 1's shape) and the largest lattice must beat the V100 and the
	// Preis GPU baselines (the paper's headline single-core comparison).
	prev := 0.0
	for i := 0; i < 6; i++ {
		v := parseFloat(t, tab.Cell(i, 1))
		if v < prev {
			t.Fatalf("row %d: throughput %v decreased from %v", i, v, prev)
		}
		prev = v
	}
	saturated := parseFloat(t, tab.Cell(5, 1))
	v100 := parseFloat(t, tab.Cell(7, 1))
	gpu := parseFloat(t, tab.Cell(6, 1))
	fpga := parseFloat(t, tab.Cell(8, 1))
	if saturated <= v100 {
		t.Fatalf("TPU core (%.2f) should beat the V100 (%.2f)", saturated, v100)
	}
	if saturated <= gpu {
		t.Fatalf("TPU core (%.2f) should beat the Preis GPU (%.2f)", saturated, gpu)
	}
	if saturated >= fpga {
		t.Fatalf("the FPGA (%.1f) should remain faster than a TPU core (%.2f), as in the paper", fpga, saturated)
	}
	// Energy: the TPU core should be more efficient than the V100 row.
	if tpuE, v100E := parseFloat(t, tab.Cell(5, 2)), parseFloat(t, tab.Cell(7, 2)); tpuE >= v100E {
		t.Fatalf("TPU energy %.2f nJ/flip should be below the V100's %.2f", tpuE, v100E)
	}
}

func TestTable2WeakScalingLinear(t *testing.T) {
	tab := Table2(perf.DefaultModel())
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 2 should have 5 TPU rows + 1 GPU reference, got %d", len(tab.Rows))
	}
	// Step time roughly constant (weak scaling), throughput growing ~4x per
	// row (cores quadruple each row).
	firstStep := parseFloat(t, tab.Cell(0, 2))
	prevTput := 0.0
	for i := 0; i < 5; i++ {
		step := parseFloat(t, tab.Cell(i, 2))
		if math.Abs(step-firstStep)/firstStep > 0.01 {
			t.Fatalf("row %d: step time %.2f ms deviates from %.2f ms", i, step, firstStep)
		}
		tput := parseFloat(t, tab.Cell(i, 3))
		if i > 0 {
			ratio := tput / prevTput
			if ratio < 3.9 || ratio > 4.1 {
				t.Fatalf("row %d: throughput ratio %.2f, want ~4 (linear scaling)", i, ratio)
			}
		}
		prevTput = tput
	}
	// Step time in the paper's regime (~575 ms).
	if firstStep < 540 || firstStep > 610 {
		t.Fatalf("step time %.1f ms, paper reports ~575 ms", firstStep)
	}
	// Per-core speedup vs the per-GPU rate of the 64-GPU cluster: the paper
	// reports ~3.5x (250% speedup).
	tputLargest := parseFloat(t, tab.Cell(4, 3))
	perCore := tputLargest / 512
	gpuCluster := parseFloat(t, tab.Cell(5, 3))
	perGPU := gpuCluster / 64
	if ratio := perCore / perGPU; ratio < 2.5 || ratio > 5 {
		t.Fatalf("per-core vs per-GPU ratio %.2f, paper reports ~3.5", ratio)
	}
}

func TestTable3BreakdownStable(t *testing.T) {
	tab := Table3(perf.DefaultModel())
	for i := range tab.Rows {
		mxu := parseFloat(t, tab.Cell(i, 1))
		vpu := parseFloat(t, tab.Cell(i, 2))
		format := parseFloat(t, tab.Cell(i, 3))
		comm := parseFloat(t, tab.Cell(i, 4))
		if math.Abs(mxu-59.6) > 1.5 || math.Abs(vpu-12) > 1.0 || math.Abs(format-28.2) > 1.5 {
			t.Fatalf("row %d breakdown %.1f/%.1f/%.1f deviates from the paper's 59.6/12/28.2", i, mxu, vpu, format)
		}
		if comm > 0.2 {
			t.Fatalf("row %d: collective permute %.3f%% should be well below 1%%", i, comm)
		}
		total := mxu + vpu + format + comm
		if math.Abs(total-100) > 0.5 {
			t.Fatalf("row %d: breakdown sums to %.2f%%", i, total)
		}
	}
}

func TestTable4CommGrowsWithCoresNotSize(t *testing.T) {
	tab := Table4(perf.DefaultModel())
	if len(tab.Rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(tab.Rows))
	}
	// Communication time is a sub-millisecond quantity that grows with the
	// pod size and only weakly with the per-core lattice size.
	commAt := func(row int) float64 { return parseFloat(t, tab.Cell(row, 3)) }
	stepAt := func(row int) float64 { return parseFloat(t, tab.Cell(row, 2)) }
	for i := 0; i < 9; i++ {
		if commAt(i) <= 0 || commAt(i) > 1.5 {
			t.Fatalf("row %d: comm time %.3f ms outside the paper's 0.18-0.65 ms regime", i, commAt(i))
		}
		if commAt(i) > 0.02*stepAt(i) {
			t.Fatalf("row %d: comm is %.1f%% of the step, should be negligible",
				i, 100*commAt(i)/stepAt(i))
		}
	}
	// Rows are grouped by pod size (3 per-core sizes each); compare the same
	// per-core size across pod sizes.
	for k := 0; k < 3; k++ {
		if !(commAt(k) < commAt(k+3) && commAt(k+3) < commAt(k+6)) {
			t.Fatalf("comm time should grow with the pod size for per-core config %d", k)
		}
	}
	// For a fixed total lattice (the diagonal), the step time drops roughly
	// 4x per step down the diagonal, as in the paper's two-regime discussion.
	d0, d1, d2 := stepAt(0), stepAt(4), stepAt(8)
	if !(d0 > 3.5*d1 && d1 > 3.5*d2) {
		t.Fatalf("diagonal step times %.1f/%.1f/%.1f ms do not show the ~4x strong-scaling drop", d0, d1, d2)
	}
}

func TestTable5RooflineRegime(t *testing.T) {
	tab := Table5(perf.DefaultModel())
	for i := range tab.Rows {
		tflops := parseFloat(t, tab.Cell(i, 1))
		roofPct := parseFloat(t, tab.Cell(i, 2))
		peakPct := parseFloat(t, tab.Cell(i, 3))
		if tflops < 5 || tflops > 7 {
			t.Fatalf("row %d: %.2f TFLOPS, paper reports ~5.9", i, tflops)
		}
		if roofPct < 60 || roofPct > 95 {
			t.Fatalf("row %d: %.1f%% of roofline, paper reports ~76%%", i, roofPct)
		}
		if peakPct < 8 || peakPct > 11 {
			t.Fatalf("row %d: %.1f%% of peak, paper reports ~9.3%%", i, peakPct)
		}
		if tab.Cell(i, 4) != "true" {
			t.Fatalf("row %d should be memory bound", i)
		}
	}
}

func TestTable6WeakScalingConv(t *testing.T) {
	tab := Table6(perf.DefaultModel())
	if len(tab.Rows) != 25 {
		t.Fatalf("expected 10+10+5 rows, got %d", len(tab.Rows))
	}
	// Within each density section the step time stays nearly constant and
	// the throughput grows with the core count.
	sections := [][2]int{{0, 10}, {10, 20}, {20, 25}}
	wantStep := []float64{41, 164, 332} // ms, paper's three densities
	for s, sec := range sections {
		first := parseFloat(t, tab.Cell(sec[0], 3))
		if math.Abs(first-wantStep[s])/wantStep[s] > 0.15 {
			t.Fatalf("section %d: step %.1f ms, paper reports ~%.0f ms", s, first, wantStep[s])
		}
		prevTput := 0.0
		for i := sec[0]; i < sec[1]; i++ {
			step := parseFloat(t, tab.Cell(i, 3))
			if math.Abs(step-first)/first > 0.02 {
				t.Fatalf("section %d row %d: step %.1f ms deviates from %.1f (weak scaling broken)",
					s, i, step, first)
			}
			tput := parseFloat(t, tab.Cell(i, 4))
			if tput <= prevTput {
				t.Fatalf("section %d row %d: throughput %.1f did not grow", s, i, tput)
			}
			prevTput = tput
		}
	}
	// The largest configuration sustains tens of thousands of flips/ns
	// (paper: ~40,000 at [45,45] dense / [32,64] superdense).
	last := parseFloat(t, tab.Cell(19, 4))
	if last < 20000 || last > 80000 {
		t.Fatalf("largest dense configuration %.0f flips/ns, paper reports ~40,000", last)
	}
}

func TestTable7AndFigure9StrongScaling(t *testing.T) {
	m := perf.DefaultModel()
	tab := Table7(m)
	if len(tab.Rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(tab.Rows))
	}
	// Throughput grows monotonically with cores, step time shrinks, and the
	// parallel efficiency at 2048 cores is clearly below the 64-core value
	// but not collapsed.
	prevTput := 0.0
	for i := range tab.Rows {
		tput := parseFloat(t, tab.Cell(i, 3))
		if tput <= prevTput {
			t.Fatalf("row %d: throughput %.1f did not grow", i, tput)
		}
		prevTput = tput
	}
	effMid := parseFloat(t, tab.Cell(3, 4))  // 64 cores
	effLast := parseFloat(t, tab.Cell(8, 4)) // 2048 cores
	if effMid < 0.8 {
		t.Fatalf("64-core efficiency %.2f should still be near-linear", effMid)
	}
	if effLast >= effMid {
		t.Fatal("2048-core efficiency should be below the 64-core efficiency")
	}
	if effLast < 0.2 {
		t.Fatalf("2048-core efficiency %.2f collapsed", effLast)
	}

	fig := Figure9(m)
	if len(fig.Rows) != 9 {
		t.Fatalf("Figure 9 should mirror Table 7's rows")
	}
	for i := range fig.Rows {
		actual := parseFloat(t, fig.Cell(i, 1))
		ideal := parseFloat(t, fig.Cell(i, 2))
		if actual > ideal*1.0001 {
			t.Fatalf("row %d: actual %.1f exceeds ideal %.1f", i, actual, ideal)
		}
	}
}

func TestTableHBM(t *testing.T) {
	tab := TableHBM(perf.DefaultModel())
	bf16 := parseFloat(t, tab.Cell(0, 1))
	f32 := parseFloat(t, tab.Cell(1, 1))
	if bf16 <= f32 {
		t.Fatal("bfloat16 should allow a larger lattice than float32")
	}
	if bf16 < 70000 || bf16 > 95000 {
		t.Fatalf("bf16 max side %v, paper reports 83968", bf16)
	}
}

func TestFigure8Winners(t *testing.T) {
	tab := Figure8(perf.DefaultModel())
	// Collect throughput by system substring.
	get := func(substr string) float64 {
		t.Helper()
		best := -1.0
		for i := range tab.Rows {
			if strings.Contains(tab.Cell(i, 0), substr) {
				if v := parseFloat(t, tab.Cell(i, 3)); v > best {
					best = v
				}
			}
		}
		if best < 0 {
			t.Fatalf("no row matching %q", substr)
		}
		return best
	}
	tpuCore := get("TPU v3 core")
	v100 := get("Tesla V100")
	fpga := get("FPGA")
	pod := get("pod slice 16x16x2")
	convPod := get("[45,45]")
	dgx2h := get("DGX-2H")
	if tpuCore <= v100 {
		t.Fatal("TPU core should beat the V100")
	}
	if fpga <= tpuCore {
		t.Fatal("the FPGA should beat a single TPU core")
	}
	if pod <= fpga || pod <= dgx2h {
		t.Fatal("a 512-core pod slice should beat every single-device and DGX system")
	}
	if convPod <= pod {
		t.Fatal("the 2025-core conv pod should be the fastest configuration")
	}
}

func TestCorrectnessFiguresSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("correctness figures run real Monte-Carlo chains")
	}
	cfg := CorrectnessConfig{
		Sizes:        []int{16},
		TileSize:     4,
		Temperatures: []float64{1.6, 3.2},
		BurnIn:       150,
		Samples:      150,
		Seed:         7,
	}
	for _, tab := range []*Table{Figure4(cfg), Figure7(cfg)} {
		// 1 size x 2 precisions x 2 temperatures = 4 rows.
		if len(tab.Rows) != 4 {
			t.Fatalf("%s: expected 4 rows, got %d", tab.ID, len(tab.Rows))
		}
		for i := range tab.Rows {
			tOverTc := parseFloat(t, tab.Cell(i, 2))
			absM := parseFloat(t, tab.Cell(i, 3))
			u4 := parseFloat(t, tab.Cell(i, 5))
			if tOverTc < 1 && absM < 0.85 {
				t.Fatalf("%s row %d: ordered phase |m| = %.3f", tab.ID, i, absM)
			}
			if tOverTc > 1.3 && absM > 0.45 {
				t.Fatalf("%s row %d: disordered phase |m| = %.3f", tab.ID, i, absM)
			}
			// U4 is 2/3 in the ordered phase and tends to 0 above Tc; with a
			// small lattice and few samples it can fluctuate slightly negative.
			if u4 < -0.3 || u4 > 0.7 {
				t.Fatalf("%s row %d: Binder parameter %.3f outside the physical range", tab.ID, i, u4)
			}
		}
	}
}

func TestPrecisionComparisonSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("precision comparison runs real Monte-Carlo chains")
	}
	tab := PrecisionComparison(16, 4, 150, 200, 3)
	if len(tab.Rows) != 3 {
		t.Fatalf("expected 3 temperatures, got %d", len(tab.Rows))
	}
	// Below Tc the two precisions must agree closely on |m| (the paper's
	// claim); at and above Tc small lattices fluctuate more, so only bound
	// the difference loosely.
	if d := math.Abs(parseFloat(t, tab.Cell(0, 3))); d > 0.05 {
		t.Fatalf("ordered-phase |m| difference %.3f between precisions", d)
	}
	for i := range tab.Rows {
		if d := math.Abs(parseFloat(t, tab.Cell(i, 6))); d > 0.35 {
			t.Fatalf("row %d: Binder difference %.3f too large", i, d)
		}
	}
}

func TestRenderingHelpers(t *testing.T) {
	tab := &Table{
		ID:      "demo",
		Title:   "demo table",
		Columns: []string{"a", "b,comma", "c"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", 1.5, 42)
	tab.AddRow("y", int64(7), "has \"quotes\", and commas")
	text := tab.Text()
	if !strings.Contains(text, "DEMO") || !strings.Contains(text, "a note") {
		t.Fatalf("text rendering missing pieces:\n%s", text)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"b,comma"`) {
		t.Fatalf("CSV did not quote the comma header:\n%s", csv)
	}
	if !strings.Contains(csv, `"has ""quotes"", and commas"`) {
		t.Fatalf("CSV did not escape quotes:\n%s", csv)
	}
	if tab.Cell(0, 2) != "42" {
		t.Fatalf("Cell = %q", tab.Cell(0, 2))
	}
}

func TestAllPerformanceTables(t *testing.T) {
	tabs := AllPerformanceTables(perf.DefaultModel())
	if len(tabs) != 11 {
		t.Fatalf("expected 11 tables, got %d", len(tabs))
	}
	seen := map[string]bool{}
	for _, tab := range tabs {
		if tab.ID == "" || len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Fatalf("table %q is empty", tab.ID)
		}
		if seen[tab.ID] {
			t.Fatalf("duplicate table id %q", tab.ID)
		}
		seen[tab.ID] = true
		for i, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Fatalf("%s row %d has %d cells for %d columns", tab.ID, i, len(row), len(tab.Columns))
			}
		}
	}
}
