package harness

import (
	"fmt"

	"tpuising/internal/perf"
	"tpuising/internal/tensor"
)

// AlgorithmAblation is an ablation study over the design choices Section 3
// motivates: Algorithm 1 (full lattice + mask), Algorithm 2 (compact colour
// planes) and the appendix conv-based update, all at the same per-core
// lattice, in both precisions. It quantifies the paper's statements that
// Algorithm 2 is "about 3x faster" than Algorithm 1 with a smaller memory
// footprint, that the conv lowering buys a further ~1.7x, and that bfloat16
// halves the footprint relative to float32.
func AlgorithmAblation(m perf.Model, rowTiles, colTiles int) *Table {
	t := &Table{
		ID: "ablation_algorithms",
		Title: fmt.Sprintf("Update-kernel ablation at per-core lattice [%dx128, %dx128]",
			rowTiles, colTiles),
		Columns: []string{
			"kernel", "precision", "step time (ms)", "flips/ns", "MXU MACs / sweep", "HBM footprint (GiB)",
		},
	}
	rows, cols := rowTiles*128, colTiles*128
	spins := float64(rows) * float64(cols)
	for _, alg := range []perf.Algorithm{perf.AlgNaive, perf.AlgOptim, perf.AlgConv} {
		for _, dtype := range []tensor.DType{tensor.BFloat16, tensor.Float32} {
			counts := perf.EstimateSweepCounts(perf.SweepSpec{
				Rows: rows, Cols: cols, Tile: 128, DType: dtype, Algorithm: alg,
			})
			model := m
			if alg == perf.AlgConv {
				model = m.ForConv()
			}
			b := model.StepBreakdown(counts, 1)
			name := map[perf.Algorithm]string{
				perf.AlgNaive: "Algorithm 1 (naive)",
				perf.AlgOptim: "Algorithm 2 (compact)",
				perf.AlgConv:  "conv (appendix)",
			}[alg]
			dtypeName := "bfloat16"
			if dtype == tensor.Float32 {
				dtypeName = "float32"
			}
			footprint := float64(perf.HBMFootprintBytes(rows, cols, 128, dtype)) / float64(1<<30)
			t.AddRow(name, dtypeName,
				b.StepSec()*1e3, perf.Throughput(spins, b.StepSec()), counts.MXUMacs, footprint)
		}
	}
	t.Notes = append(t.Notes,
		"the HBM footprint column uses the Algorithm 2 state layout for all kernels (4 colour planes + working set)",
		"the paper reports Algorithm 2 ~3x faster than Algorithm 1 and the conv variant a further ~1.7x")
	return t
}
