package harness

import (
	"fmt"
	"math"
	"time"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/ising/ensemble"
	"tpuising/internal/perf"
)

// HostEnsembleScaling measures the lane-packed ensemble engine on one
// lattice size across lane counts: every row times `sweeps` whole-ensemble
// sweeps of the exact (per-lane random) and shared (per-ΔE-class random)
// modes against the same replicas run as B sequential single-chain multispin
// engines, and pairs the measured aggregate host_flips/ns with the modelled
// footprint and random-stream cost of perf.EnsembleFootprint — whose packed
// bytes the engine reproduces exactly. The speedup columns are the batch
// axis's headline: the exact mode holds parity per lane while opening
// per-lane temperatures, and the shared mode's class-shared draws cut the
// Philox work by lanes/2, which is where the large aggregate speedup over
// sequential chains comes from.
func HostEnsembleScaling(size int, laneCounts []int, sweeps int) *Table {
	t := &Table{
		ID: "host_ensemble_scaling",
		Title: fmt.Sprintf(
			"Measured lane-packed ensemble throughput on a %dx%d lattice vs sequential multispin chains", size, size),
		Columns: []string{
			"lanes", "ensemble flips/ns", "shared flips/ns", "sequential flips/ns",
			"ensemble speedup", "shared speedup", "packed KiB", "model rng savings",
		},
	}
	for _, lanes := range laneCounts {
		exact := measureEnsemble(size, lanes, sweeps, false)
		shared := measureEnsemble(size, lanes, sweeps, true)
		sequential := measureSequentialChains(size, lanes, sweeps)
		model := perf.EnsembleFootprint(perf.EnsembleSpec{Rows: size, Cols: size, Lanes: lanes, Shared: true})
		t.AddRow(
			lanes,
			fmt.Sprintf("%.4f", exact),
			fmt.Sprintf("%.4f", shared),
			fmt.Sprintf("%.4f", sequential),
			fmt.Sprintf("%.2fx", ratio(exact, sequential)),
			fmt.Sprintf("%.2fx", ratio(shared, sequential)),
			fmt.Sprintf("%d", model.PackedBytes>>10),
			fmt.Sprintf("%.0fx", model.RNGSavings),
		)
	}
	t.Notes = append(t.Notes,
		"aggregate measured wall clock on this machine: lattice spins x lanes x sweeps / elapsed ns",
		"sequential = the same lanes as separate per-site multispin engines, swept one after another",
		"ensemble (exact) mode draws per lane and is bit-identical to the sequential chains; shared mode draws once per ΔE class per site (Block/Virnau/Preis), trading weak cross-lane correlations for the modelled rng savings",
		fmt.Sprintf("%d timed sweeps per cell after 2 warm-up sweeps", sweeps),
	)
	return t
}

// ratio guards the speedup columns against a zero-time baseline.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// MeasureEnsembleAggregate measures the lane-packed ensemble engine's
// aggregate host throughput (flips/ns over all lanes) — the single-cell
// version of the HostEnsembleScaling table, exported so cmd/isingload can
// embed the batch axis's headline number in its BENCH_*.json snapshots.
func MeasureEnsembleAggregate(size, lanes, sweeps int, shared bool) float64 {
	return measureEnsemble(size, lanes, sweeps, shared)
}

// measureEnsemble times sweeps of one packed ensemble and returns aggregate
// flips/ns over all lanes.
func measureEnsemble(size, lanes, sweeps int, shared bool) float64 {
	e, err := ensemble.New(ensemble.Config{
		Rows: size, Cols: size, Lanes: lanes, Temperature: 2.5, Seed: 1, SharedRandom: shared,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	e.Run(2) // warm up caches and goroutine pools
	start := time.Now()
	e.Run(sweeps)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(size) * float64(size) * float64(lanes) * float64(sweeps) / float64(elapsed.Nanoseconds())
}

// measureSequentialChains times the baseline the ensemble replaces: the same
// lanes as separate per-site multispin engines (lane-derived seeds), swept
// one after another, returning aggregate flips/ns.
func measureSequentialChains(size, lanes, sweeps int) float64 {
	engines := make([]ising.Backend, lanes)
	for l := range engines {
		eng, err := backend.New("multispin", backend.Config{
			Rows: size, Cols: size, Temperature: 2.5, Seed: ising.LaneSeed(1, l),
		})
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		eng.Sweep() // warm up
		eng.Sweep()
		engines[l] = eng
	}
	start := time.Now()
	for _, eng := range engines {
		for i := 0; i < sweeps; i++ {
			eng.Sweep()
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(size) * float64(size) * float64(lanes) * float64(sweeps) / float64(elapsed.Nanoseconds())
}

// EnsembleOnsager runs the physics validation of the lane-packed engine: at
// each temperature every lane is an independent chain at that temperature,
// so the mean over lanes (and samples) converges fast to the exact Onsager
// values below Tc — the same check cmd/correctness applies to the TPU
// kernels, now covering the ensemble backend. Each row reports the
// lane-and-sample mean of |m| and E/spin against the exact results and
// their deviations.
func EnsembleOnsager(size, lanes, burnIn, samples int, seed uint64) *Table {
	t := &Table{
		ID: "ensemble_onsager",
		Title: fmt.Sprintf(
			"Lane-packed ensemble (%d lanes, %dx%d) vs exact Onsager results", lanes, size, size),
		Columns: []string{
			"T", "T/Tc", "|m| (lanes mean)", "Onsager |m|", "delta |m|", "E/spin", "exact E/spin", "delta E",
		},
	}
	tc := ising.CriticalTemperature()
	for _, temp := range []float64{1.8, 2.0, 2.1} {
		e, err := ensemble.New(ensemble.Config{
			Rows: size, Cols: size, Lanes: lanes, Temperature: temp, Seed: seed,
		})
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		e.Run(burnIn)
		var absSum, eSum float64
		for s := 0; s < samples; s++ {
			e.Sweep()
			for _, m := range e.Magnetizations() {
				absSum += math.Abs(m)
			}
			for _, en := range e.Energies() {
				eSum += en
			}
		}
		n := float64(lanes) * float64(samples)
		absM := absSum / n
		energy := eSum / n
		exactM := ising.OnsagerMagnetization(temp)
		exactE := ising.ExactEnergyPerSpin(temp)
		t.AddRow(
			fmt.Sprintf("%.2f", temp),
			fmt.Sprintf("%.4f", temp/tc),
			fmt.Sprintf("%.5f", absM),
			fmt.Sprintf("%.5f", exactM),
			fmt.Sprintf("%+.5f", absM-exactM),
			fmt.Sprintf("%.5f", energy),
			fmt.Sprintf("%.5f", exactE),
			fmt.Sprintf("%+.5f", energy-exactE),
		)
	}
	t.Notes = append(t.Notes,
		"each row averages over all lanes and samples; lanes are independent chains at the row's temperature",
		fmt.Sprintf("%d burn-in sweeps, %d measured sweeps, per-lane seeds derived from seed %d", burnIn, samples, seed),
		"exact values: Onsager spontaneous magnetisation and the exact internal energy of the infinite lattice",
	)
	return t
}
