package harness

import (
	"fmt"
	"time"

	"tpuising/internal/ising/backend"
)

// hostBaselineBackends are the CPU engines measured by HostBaselines, in
// table-column order: the serial reference, the GPU-style parallel baseline,
// and the two bit-packed multispin variants.
var hostBaselineBackends = []string{"checkerboard", "gpusim", "multispin", "multispin-shared"}

// HostBaselines measures the real host-side throughput of the CPU engines on
// the machine running the harness, one lattice size per row and one engine
// per column. Unlike the model-driven tables (whose flips/ns are modelled
// TPU numbers), every cell here is a wall-clock measurement, giving the
// paper's tables a measured CPU anchor; the last column is the speedup of
// the bit-packed multispin engine over the parallel checkerboard baseline.
func HostBaselines(sizes []int, sweeps int) *Table {
	t := &Table{
		ID:    "host_baselines",
		Title: "Measured host throughput (flips/ns) of the CPU engines vs lattice size",
		Columns: []string{
			"lattice", "checkerboard", "gpusim", "multispin", "multispin-shared", "multispin speedup",
		},
	}
	for _, size := range sizes {
		row := []interface{}{fmt.Sprintf("%dx%d", size, size)}
		var parallel, multispin float64
		for _, name := range hostBaselineBackends {
			tput := measureHostThroughput(name, size, sweeps)
			switch name {
			case "gpusim":
				parallel = tput
			case "multispin":
				multispin = tput
			}
			row = append(row, fmt.Sprintf("%.4f", tput))
		}
		speedup := 0.0
		if parallel > 0 {
			speedup = multispin / parallel
		}
		row = append(row, fmt.Sprintf("%.1fx", speedup))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"measured wall-clock host throughput on this machine, not modelled TPU throughput",
		fmt.Sprintf("%d timed sweeps per cell after 2 warm-up sweeps; speedup is multispin over gpusim", sweeps),
	)
	return t
}

// measureHostThroughput times sweeps of one engine and returns flips/ns.
func measureHostThroughput(name string, size, sweeps int) float64 {
	eng, err := backend.New(name, backend.Config{Rows: size, Cols: size, Temperature: 2.5, Seed: 1})
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	eng.Sweep() // warm up caches and goroutine pools
	eng.Sweep()
	start := time.Now()
	for i := 0; i < sweeps; i++ {
		eng.Sweep()
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(size) * float64(size) * float64(sweeps) / float64(elapsed.Nanoseconds())
}
