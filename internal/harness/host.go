package harness

import (
	"fmt"
	"time"

	"tpuising/internal/interconnect"
	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/perf"
)

// hostBaselineBackends are the CPU engines measured by HostBaselines, in
// table-column order: the serial reference, the GPU-style parallel baseline,
// and the two bit-packed multispin variants.
var hostBaselineBackends = []string{"checkerboard", "gpusim", "multispin", "multispin-shared"}

// HostBaselines measures the real host-side throughput of the CPU engines on
// the machine running the harness, one lattice size per row and one engine
// per column. Unlike the model-driven tables (whose flips/ns are modelled
// TPU numbers), every cell here is a wall-clock measurement, giving the
// paper's tables a measured CPU anchor; the last column is the speedup of
// the bit-packed multispin engine over the parallel checkerboard baseline.
func HostBaselines(sizes []int, sweeps int) *Table {
	t := &Table{
		ID:    "host_baselines",
		Title: "Measured host throughput (flips/ns) of the CPU engines vs lattice size",
		Columns: []string{
			"lattice", "checkerboard", "gpusim", "multispin", "multispin-shared", "multispin speedup",
		},
	}
	for _, size := range sizes {
		row := []interface{}{fmt.Sprintf("%dx%d", size, size)}
		var parallel, multispin float64
		for _, name := range hostBaselineBackends {
			tput := measureHostThroughput(name, size, sweeps)
			switch name {
			case "gpusim":
				parallel = tput
			case "multispin":
				multispin = tput
			}
			row = append(row, fmt.Sprintf("%.4f", tput))
		}
		speedup := 0.0
		if parallel > 0 {
			speedup = multispin / parallel
		}
		row = append(row, fmt.Sprintf("%.1fx", speedup))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"measured wall-clock host throughput on this machine, not modelled TPU throughput",
		fmt.Sprintf("%d timed sweeps per cell after 2 warm-up sweeps; speedup is multispin over gpusim", sweeps),
	)
	return t
}

// HostShardScaling measures the sharded multispin engine on one lattice size
// across shard grids, pairing every measured host_flips/ns cell with the
// modelled interconnect traffic of its halo exchanges (perf.ShardTraffic):
// packed bytes per link per sweep and the modelled collective-permute time on
// the TPU v3 link parameters. The byte counts are exact — the engine's
// measured comm counters reproduce them — so the table reads like the
// paper's Table 4 with a measured host column.
func HostShardScaling(size int, grids [][2]int, sweeps int) *Table {
	t := &Table{
		ID: "host_shard_scaling",
		Title: fmt.Sprintf(
			"Measured sharded-multispin throughput on a %dx%d lattice vs modelled interconnect traffic", size, size),
		Columns: []string{
			"shards", "host_flips/ns", "speedup", "row link B/sweep", "col link B/sweep", "model permute us/sweep",
		},
	}
	link := interconnect.DefaultLinkParams()
	var base float64
	for _, g := range grids {
		eng, err := backend.New("sharded", backend.Config{
			Rows: size, Cols: size, Temperature: 2.5, Seed: 1, GridR: g[0], GridC: g[1],
		})
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		tput := measureThroughput(eng, size, sweeps)
		if base == 0 {
			base = tput
		}
		rep := perf.ShardTraffic(perf.ShardSpec{Rows: size, Cols: size, GridR: g[0], GridC: g[1]}, link)
		t.AddRow(
			fmt.Sprintf("%dx%d", g[0], g[1]),
			fmt.Sprintf("%.4f", tput),
			fmt.Sprintf("%.2fx", tput/base),
			fmt.Sprintf("%d", rep.RowLinkBytes),
			fmt.Sprintf("%d", rep.ColLinkBytes),
			fmt.Sprintf("%.2f", rep.PermuteSec*1e6),
		)
	}
	t.Notes = append(t.Notes,
		"host_flips/ns is measured wall clock on this machine; traffic and permute time are modelled",
		"halos are bit-packed (1 bit/spin): a link moves 4 halo messages per sweep (2 colours x 2 directions)",
		fmt.Sprintf("%d timed sweeps per cell after 2 warm-up sweeps; speedup is relative to the first grid", sweeps),
	)
	return t
}

// MeasureBackend measures one registered engine's host throughput
// (flips/ns) at a square lattice size: the single-cell version of the
// HostBaselines table, exported so cmd/isingload can embed `benchtables
// -host`-style measurements in its BENCH_*.json snapshots.
func MeasureBackend(name string, size, sweeps int) float64 {
	return measureHostThroughput(name, size, sweeps)
}

// measureHostThroughput times sweeps of one engine and returns flips/ns.
func measureHostThroughput(name string, size, sweeps int) float64 {
	eng, err := backend.New(name, backend.Config{Rows: size, Cols: size, Temperature: 2.5, Seed: 1})
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return measureThroughput(eng, size, sweeps)
}

// measureThroughput times sweeps of an already-built engine (after two
// warm-up sweeps) and returns flips/ns.
func measureThroughput(eng ising.Backend, size, sweeps int) float64 {
	eng.Sweep() // warm up caches and goroutine pools
	eng.Sweep()
	start := time.Now()
	for i := 0; i < sweeps; i++ {
		eng.Sweep()
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(size) * float64(size) * float64(sweeps) / float64(elapsed.Nanoseconds())
}
