package harness

import (
	"fmt"
	"time"

	"tpuising/internal/interconnect"
	"tpuising/internal/ising/ensemble"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/ising/shardedensemble"
	"tpuising/internal/perf"
	"tpuising/internal/rng"
)

// HostKernelVariants measures the before/after rows of the hot-loop kernel
// work: for each bit-packed row kernel — multispin per-site and shared, the
// lane-packed ensemble in per-lane and shared mode — it times the retained
// naive reference (UpdateRowRef, word-at-a-time with inline Philox draws)
// against the optimized loop the engines run (batched Philox rows into a
// reusable scratch, tiled column blocking, hoisted word-boundary handling,
// and the AVX2 rng batch kernel when this binary was built with the avx2
// tag). Both variants are bit-identical by construction — the golden
// equivalence property tests pin that — so the speedup column is pure
// throughput, no physics change.
func HostKernelVariants(size, sweeps int) *Table {
	t := &Table{
		ID: "host_kernel_variants",
		Title: fmt.Sprintf(
			"Measured row-kernel throughput on a %dx%d lattice: naive reference vs optimized loop", size, size),
		Columns: []string{"kernel", "reference flips/ns", "optimized flips/ns", "speedup"},
	}
	const lanes = ensemble.MaxLanes
	rows := []struct {
		name     string
		ref, opt func() float64
	}{
		{"multispin per-site",
			func() float64 { return measureMultispinKernel(size, sweeps, false, true) },
			func() float64 { return measureMultispinKernel(size, sweeps, false, false) }},
		{"multispin shared",
			func() float64 { return measureMultispinKernel(size, sweeps, true, true) },
			func() float64 { return measureMultispinKernel(size, sweeps, true, false) }},
		{fmt.Sprintf("ensemble per-lane (%d lanes)", lanes),
			func() float64 { return measureEnsembleKernel(size, lanes, sweeps, false, true) },
			func() float64 { return measureEnsembleKernel(size, lanes, sweeps, false, false) }},
		{fmt.Sprintf("ensemble shared (%d lanes)", lanes),
			func() float64 { return measureEnsembleKernel(size, lanes, sweeps, true, true) },
			func() float64 { return measureEnsembleKernel(size, lanes, sweeps, true, false) }},
	}
	for _, r := range rows {
		ref, opt := r.ref(), r.opt()
		t.AddRow(r.name,
			fmt.Sprintf("%.4f", ref),
			fmt.Sprintf("%.4f", opt),
			fmt.Sprintf("%.2fx", ratio(opt, ref)))
	}
	t.Notes = append(t.Notes,
		"reference = retained naive UpdateRowRef; optimized = the engines' batched+tiled loop; both bit-identical (golden equivalence tests)",
		fmt.Sprintf("avx2 batch rng active in this binary: %v (build with -tags avx2 on amd64 to enable)", rng.HasAVX2()),
		fmt.Sprintf("%d timed sweeps per cell after 2 warm-up sweeps", sweeps),
	)
	return t
}

// MeasureKernelDelta measures the per-site multispin row kernel before/after
// pair (reference, optimized flips/ns) — the single-row version of the
// HostKernelVariants table, exported so cmd/isingload can embed the kernel
// delta in its BENCH_*.json snapshots.
func MeasureKernelDelta(size, sweeps int) (ref, opt float64) {
	return measureMultispinKernel(size, sweeps, false, true),
		measureMultispinKernel(size, sweeps, false, false)
}

// measureMultispinKernel times whole-lattice passes driven straight through
// the multispin row kernel (no engine around it) and returns flips/ns.
func measureMultispinKernel(size, sweeps int, shared, ref bool) float64 {
	W := size / multispin.WordBits
	if W < 1 {
		W = 1
	}
	k := multispin.NewKernel(2.5, 1, shared)
	rows := randomWords(size, W)
	var sc multispin.Scratch
	var step uint64
	pass := func(n int) {
		for s := 0; s < n; s++ {
			for parity := 0; parity < 2; parity++ {
				for r := 0; r < size; r++ {
					row := rows[r]
					north := rows[(r+size-1)%size]
					south := rows[(r+1)%size]
					west, east := row[W-1], row[0]
					if ref {
						k.UpdateRowRef(row, north, south, west, east, r, 0, parity, step)
					} else {
						k.UpdateRowScratch(row, north, south, west, east, r, 0, parity, step, &sc)
					}
				}
				step++
			}
		}
	}
	pass(2) // warm up caches and the scratch buffer
	start := time.Now()
	pass(sweeps)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(size) * float64(W*multispin.WordBits) * float64(sweeps) / float64(elapsed.Nanoseconds())
}

// measureEnsembleKernel is the lane-packed analogue: one word per site
// carrying all lanes, aggregate flips/ns over the lanes.
func measureEnsembleKernel(size, lanes, sweeps int, shared, ref bool) float64 {
	temps := make([]float64, lanes)
	for i := range temps {
		temps[i] = 2.5
	}
	k, err := ensemble.NewKernel(1, temps, shared)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	rows := randomWords(size, size)
	var sc ensemble.Scratch
	var step uint64
	pass := func(n int) {
		for s := 0; s < n; s++ {
			for parity := 0; parity < 2; parity++ {
				for r := 0; r < size; r++ {
					row := rows[r]
					north := rows[(r+size-1)%size]
					south := rows[(r+1)%size]
					west, east := row[size-1], row[0]
					if ref {
						k.UpdateRowRef(row, north, south, west, east, r, 0, parity, step)
					} else {
						k.UpdateRow(row, north, south, west, east, r, 0, parity, step, &sc)
					}
				}
				step++
			}
		}
	}
	pass(2)
	start := time.Now()
	pass(sweeps)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(size) * float64(size) * float64(lanes) * float64(sweeps) / float64(elapsed.Nanoseconds())
}

// randomWords builds a rows x words packed lattice with random content, so
// the kernels see realistic acceptance-class mixes rather than the all-equal
// cold start.
func randomWords(rows, words int) [][]uint64 {
	g := rng.New(1)
	out := make([][]uint64, rows)
	for r := range out {
		out[r] = make([]uint64, words)
		for w := range out[r] {
			out[r][w] = g.Uint64()
		}
	}
	return out
}

// HostShardedEnsembleScaling measures the composed batched×sharded engine on
// one lattice size across shard grids, pairing every measured aggregate
// host_flips/ns cell (all lanes of all shards) with the modelled interconnect
// traffic of its lane-packed halo exchanges (perf.ShardedEnsembleTraffic) —
// whose byte counts the engine's comm counters reproduce exactly. This is the
// paper's actual per-core workload: every mesh core advances a full batch of
// lane-packed replicas between halo exchanges.
func HostShardedEnsembleScaling(size, lanes int, grids [][2]int, sweeps int) *Table {
	t := &Table{
		ID: "host_sharded_ensemble_scaling",
		Title: fmt.Sprintf(
			"Measured sharded-ensemble throughput (%d lanes, %dx%d) vs modelled interconnect traffic", lanes, size, size),
		Columns: []string{
			"shards", "aggregate flips/ns", "speedup", "row link B/sweep", "col link B/sweep", "model permute us/sweep",
		},
	}
	link := interconnect.DefaultLinkParams()
	var base float64
	for _, g := range grids {
		tput := measureShardedEnsemble(size, lanes, g[0], g[1], sweeps, false)
		if base == 0 {
			base = tput
		}
		rep := perf.ShardedEnsembleTraffic(perf.ShardedEnsembleSpec{
			Rows: size, Cols: size, GridR: g[0], GridC: g[1], Lanes: lanes,
		}, link)
		t.AddRow(
			fmt.Sprintf("%dx%d", g[0], g[1]),
			fmt.Sprintf("%.4f", tput),
			fmt.Sprintf("%.2fx", ratio(tput, base)),
			fmt.Sprintf("%d", rep.RowLinkBytes),
			fmt.Sprintf("%d", rep.ColLinkBytes),
			fmt.Sprintf("%.2f", rep.PermuteSec*1e6),
		)
	}
	t.Notes = append(t.Notes,
		"aggregate measured wall clock on this machine: lattice spins x lanes x sweeps / elapsed ns",
		"halo words are lane-packed (64 chains per word), so the traffic is independent of the lane count — per replica it shrinks by the lanes",
		fmt.Sprintf("%d timed sweeps per cell after 2 warm-up sweeps; speedup is relative to the first grid", sweeps),
	)
	return t
}

// MeasureShardedEnsembleAggregate measures the composed engine's aggregate
// host throughput (flips/ns over all lanes of all shards) — the single-cell
// version of the HostShardedEnsembleScaling table, exported so cmd/isingload
// can embed the composed number in its BENCH_*.json snapshots.
func MeasureShardedEnsembleAggregate(size, lanes, gridR, gridC, sweeps int, shared bool) float64 {
	return measureShardedEnsemble(size, lanes, gridR, gridC, sweeps, shared)
}

// measureShardedEnsemble times sweeps of one composed engine and returns
// aggregate flips/ns over all lanes.
func measureShardedEnsemble(size, lanes, gridR, gridC, sweeps int, shared bool) float64 {
	e, err := shardedensemble.New(shardedensemble.Config{
		Rows: size, Cols: size, GridR: gridR, GridC: gridC,
		Lanes: lanes, Temperature: 2.5, Seed: 1, SharedRandom: shared,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	e.Run(2) // warm up caches and the pod goroutines
	start := time.Now()
	e.Run(sweeps)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(size) * float64(size) * float64(lanes) * float64(sweeps) / float64(elapsed.Nanoseconds())
}
