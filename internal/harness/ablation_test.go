package harness

import (
	"testing"

	"tpuising/internal/perf"
)

func TestAlgorithmAblation(t *testing.T) {
	tab := AlgorithmAblation(perf.DefaultModel(), 160, 160)
	if len(tab.Rows) != 6 {
		t.Fatalf("expected 3 kernels x 2 precisions, got %d rows", len(tab.Rows))
	}
	step := func(row int) float64 { return parseFloat(t, tab.Cell(row, 2)) }
	macs := func(row int) float64 { return parseFloat(t, tab.Cell(row, 4)) }
	footprint := func(row int) float64 { return parseFloat(t, tab.Cell(row, 5)) }

	// Row layout: 0-1 naive (bf16, f32), 2-3 optim, 4-5 conv.
	naive, optim, conv := step(0), step(2), step(4)
	if !(naive > optim && optim > conv) {
		t.Fatalf("expected naive > optim > conv step times, got %.1f / %.1f / %.1f", naive, optim, conv)
	}
	// The paper: Algorithm 2 is ~3x faster than Algorithm 1; the conv variant
	// a further ~1.7x. Accept a generous band around both.
	if r := naive / optim; r < 1.8 || r > 4.5 {
		t.Fatalf("Algorithm 2 speedup over Algorithm 1 = %.2fx, paper reports ~3x", r)
	}
	if r := optim / conv; r < 1.3 || r > 2.3 {
		t.Fatalf("conv speedup over Algorithm 2 = %.2fx, paper reports ~1.7x", r)
	}
	// Algorithm 2 issues fewer MACs than Algorithm 1; the conv lowering far
	// fewer than either (its slowness per MAC is the efficiency difference).
	if !(macs(0) > macs(2) && macs(2) > macs(4)) {
		t.Fatal("MAC ordering wrong")
	}
	// bfloat16 halves the footprint relative to float32 for every kernel.
	for r := 0; r < 6; r += 2 {
		ratio := footprint(r+1) / footprint(r)
		if ratio < 1.9 || ratio > 2.1 {
			t.Fatalf("row %d: float32/bfloat16 footprint ratio %.2f, want ~2", r, ratio)
		}
	}
	// Same-precision rows share the footprint column (it describes the state,
	// not the kernel).
	if footprint(0) != footprint(2) {
		t.Fatal("footprint should not depend on the kernel")
	}
}
