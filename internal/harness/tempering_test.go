package harness

import (
	"strconv"
	"testing"
)

// TestHostTemperingScalingShape runs the tempering scaling table at a small
// size and checks that the measured and modelled columns are populated
// sensibly.
func TestHostTemperingScalingShape(t *testing.T) {
	tab := HostTemperingScaling(64, []int{2, 4}, 2)
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	if len(tab.Columns) != 7 {
		t.Fatalf("got %d columns, want 7", len(tab.Columns))
	}
	for _, row := range tab.Rows {
		if v, err := strconv.ParseFloat(row[1], 64); err != nil || v <= 0 {
			t.Fatalf("throughput cell %q of row %v is not positive", row[1], row)
		}
		if acc, err := strconv.ParseFloat(row[3], 64); err != nil || acc < 0 || acc > 1 {
			t.Fatalf("acceptance cell %q of row %v is not a ratio", row[3], row)
		}
		if _, err := strconv.Atoi(row[4]); err != nil {
			t.Fatalf("round-trip cell %q of row %v is not an integer", row[4], row)
		}
		for i := 5; i < 7; i++ {
			if v, err := strconv.ParseFloat(row[i], 64); err != nil || v <= 0 {
				t.Fatalf("modelled cell %q of row %v is not positive", row[i], row)
			}
		}
	}
	// Two replicas attempt one swap on even rounds only. The cell covers all
	// three swap phases the ensemble ran (warm-up + 2 timed): rounds 0 and 2
	// attempt one 16-byte exchange each, so 32 bytes over 3 rounds = 10.7.
	if tab.Rows[0][5] != "10.7" {
		t.Fatalf("model swap B/round = %s, want 10.7", tab.Rows[0][5])
	}
}
