package harness

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestHostEnsembleScalingShape: the measured ensemble table builds without
// error at smoke scale, carries one row per lane count with positive
// throughputs, and its model columns match perf.EnsembleFootprint's
// arithmetic (rng savings = lanes/2 in shared mode).
func TestHostEnsembleScalingShape(t *testing.T) {
	lanes := []int{2, 8}
	tab := HostEnsembleScaling(64, lanes, 2)
	if len(tab.Rows) != len(lanes) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(lanes))
	}
	for i, want := range lanes {
		if got := tab.Cell(i, 0); got != strconv.Itoa(want) {
			t.Fatalf("row %d lanes = %s, want %d", i, got, want)
		}
		for col := 1; col <= 3; col++ {
			v, err := strconv.ParseFloat(tab.Cell(i, col), 64)
			if err != nil || v <= 0 {
				t.Fatalf("row %d col %d: %q is not a positive throughput (%v)", i, col, tab.Cell(i, col), err)
			}
		}
		if got, want := tab.Cell(i, 7), strconv.Itoa(want/2)+"x"; got != want {
			t.Fatalf("row %d rng savings = %s, want %s", i, got, want)
		}
	}
}

// TestEnsembleOnsagerAgreesWithExact: the ensemble physics table at smoke
// scale must land near the exact Onsager values in the ordered phase — the
// same tolerance band the cross-backend physics tests use.
func TestEnsembleOnsagerAgreesWithExact(t *testing.T) {
	tab := EnsembleOnsager(64, 16, 150, 150, 2026)
	if len(tab.Rows) != 3 {
		t.Fatalf("table has %d rows, want 3", len(tab.Rows))
	}
	for i := range tab.Rows {
		for _, col := range []int{4, 7} { // delta |m|, delta E
			cell := strings.TrimPrefix(tab.Cell(i, col), "+")
			d, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("row %d col %d: %q not numeric (%v)", i, col, tab.Cell(i, col), err)
			}
			if math.Abs(d) > 0.05 {
				t.Errorf("row %d (%s): deviation %v from exact value exceeds 0.05", i, tab.Cell(i, 0), d)
			}
		}
	}
}
