package harness

import (
	"fmt"

	"tpuising/internal/ising"
	"tpuising/internal/ising/gpusim"
	"tpuising/internal/ising/tpu"
	"tpuising/internal/perf"
	"tpuising/internal/sweep"
	"tpuising/internal/tensor"
)

// CorrectnessConfig controls the real Monte-Carlo runs behind Figures 4 and
// 7. The paper uses chains of 10^6 samples on lattices up to 2048^2; the
// defaults here are laptop-scale but keep the same structure (several lattice
// sizes, both precisions, a temperature window around Tc).
type CorrectnessConfig struct {
	// Sizes are the square lattice sides to simulate.
	Sizes []int
	// TileSize is the MXU tile edge used by the simulator.
	TileSize int
	// Temperatures is the grid of temperatures; defaults to a window of
	// T/Tc in [0.8, 1.2].
	Temperatures []float64
	// BurnIn and Samples control each chain's length.
	BurnIn, Samples int
	// Seed seeds every chain (combined with the size and precision).
	Seed uint64
}

// DefaultCorrectnessConfig returns the configuration used by the
// cmd/correctness binary: three lattice sizes, 13 temperatures around Tc.
func DefaultCorrectnessConfig() CorrectnessConfig {
	return CorrectnessConfig{
		Sizes:        []int{32, 64, 128},
		TileSize:     16,
		Temperatures: sweep.CriticalWindow(0.2, 13),
		BurnIn:       1000,
		Samples:      2000,
		Seed:         2019,
	}
}

func (c CorrectnessConfig) withDefaults() CorrectnessConfig {
	out := c
	if len(out.Sizes) == 0 {
		out.Sizes = []int{32, 64}
	}
	if out.TileSize == 0 {
		out.TileSize = 16
	}
	if len(out.Temperatures) == 0 {
		out.Temperatures = sweep.CriticalWindow(0.2, 9)
	}
	if out.BurnIn == 0 {
		out.BurnIn = 200
	}
	if out.Samples == 0 {
		out.Samples = 400
	}
	return out
}

// tpuChain adapts the single-core TPU simulator to the sweep.Chain interface.
type tpuChain struct{ sim *tpu.Simulator }

func (c tpuChain) Sweep()                 { c.sim.Sweep() }
func (c tpuChain) Magnetization() float64 { return c.sim.Magnetization() }
func (c tpuChain) Energy() float64        { return c.sim.Energy() }

// correctnessFigure runs the magnetisation/Binder study with the given update
// algorithm (Algorithm 2 for Figure 4, the conv variant for Figure 7).
func correctnessFigure(id, title string, alg tpu.Algorithm, cfg CorrectnessConfig) *Table {
	c := cfg.withDefaults()
	t := &Table{
		ID:    id,
		Title: title,
		Columns: []string{
			"lattice", "precision", "T/Tc", "|m|", "|m| err", "U4",
		},
	}
	tc := ising.CriticalTemperature()
	for _, size := range c.Sizes {
		for _, dtype := range []tensor.DType{tensor.Float32, tensor.BFloat16} {
			dtypeName := "float32"
			if dtype == tensor.BFloat16 {
				dtypeName = "bfloat16"
			}
			points := sweep.Run(sweep.Config{
				Temperatures: c.Temperatures,
				BurnIn:       c.BurnIn,
				Samples:      c.Samples,
			}, func(temperature float64) sweep.Chain {
				return tpuChain{tpu.NewSimulator(tpu.Config{
					Rows: size, Cols: size, Temperature: temperature,
					TileSize: c.TileSize, DType: dtype, Algorithm: alg,
					Seed: c.Seed + uint64(size),
				})}
			})
			for _, p := range points {
				t.AddRow(fmt.Sprintf("%dx%d", size, size), dtypeName,
					p.Temperature/tc, p.AbsMagnetization, p.AbsMagnetizationErr, p.Binder)
			}
		}
	}
	t.Notes = append(t.Notes,
		"each row is one Markov chain at one temperature; the Binder curves of different sizes cross near T/Tc = 1",
		"float32 and bfloat16 series use the same seeds and should overlap within statistical error")
	return t
}

// Figure4 regenerates the correctness study of Section 4.1: average
// magnetisation and Binder parameter vs T/Tc for several lattice sizes in
// float32 and bfloat16, using Algorithm 2.
func Figure4(cfg CorrectnessConfig) *Table {
	return correctnessFigure("figure4",
		"Binder parameter U4(T) and magnetisation m(T) vs T/Tc (Algorithm 2)", tpu.AlgOptim, cfg)
}

// Figure7 regenerates the appendix correctness study using the conv-based
// update.
func Figure7(cfg CorrectnessConfig) *Table {
	return correctnessFigure("figure7",
		"Binder parameter U4(T) and magnetisation m(T) vs T/Tc (conv-based update)", tpu.AlgConv, cfg)
}

// Figure8 regenerates the cross-system throughput comparison: flips/ns vs
// problem size for the TPU core and pod slices of this work, the published
// GPU/FPGA single devices and the DGX-2/2H systems of Romero et al.
func Figure8(m perf.Model) *Table {
	t := &Table{
		ID:    "figure8",
		Title: "Throughput comparison over problem sizes and systems",
		Columns: []string{
			"system", "devices", "lattice side", "flips/ns",
		},
	}
	// TPU v3 single core across Table 1 sizes.
	for _, tiles := range []int{20, 160, 640} {
		side := tiles * 128
		counts := perf.EstimateSweepCounts(perf.SweepSpec{
			Rows: side, Cols: side, Tile: 128, DType: tensor.BFloat16, Algorithm: perf.AlgOptim,
		})
		step := m.StepBreakdown(counts, 1).StepSec()
		t.AddRow("TPU v3 core (this work)", 1, side,
			perf.Throughput(float64(side)*float64(side), step))
	}
	// TPU v3 pod slices across Table 2 sizes.
	for _, n := range []int{2, 8, 16} {
		cores := n * n * 2
		sp := podCounts(superdenseRowTiles, superdenseColTiles, 2*n, n)
		counts := perf.EstimateSweepCounts(sp)
		step := m.StepBreakdown(counts, cores).StepSec()
		globalSpins := float64(sp.Rows) * float64(sp.Cols) * float64(cores)
		t.AddRow(fmt.Sprintf("TPU v3 pod slice %dx%dx2 (this work)", n, n), cores, 512*128*n,
			perf.Throughput(globalSpins, step))
	}
	// Conv-based full pod (appendix).
	conv := m.ForConv()
	counts := perf.EstimateSweepCounts(perf.SweepSpec{
		Rows: denseTiles * 128, Cols: denseTiles * 128, Tile: 128,
		DType: tensor.BFloat16, Algorithm: perf.AlgConv, Halo: true, PodX: 45, PodY: 45,
	})
	step := conv.StepBreakdown(counts, 2025).StepSec()
	global := float64(denseTiles*128) * float64(denseTiles*128) * 2025
	t.AddRow("TPU v3 pod [45,45] conv (this work)", 2025, 128*20160,
		perf.Throughput(global, step))
	// Published baselines.
	for _, ref := range []gpusim.DeviceModel{
		gpusim.PreisGPU(), gpusim.TeslaV100(), gpusim.FPGA(), gpusim.DGX2(), gpusim.DGX2H(),
	} {
		t.AddRow(ref.Name+" (published)", 1, 0, ref.FlipsPerNs)
	}
	blocks := gpusim.NewCluster(gpusim.PreisGPU(), 64, 800000)
	t.AddRow("64 GPUs + MPI (published)", 64, 800000, blocks.Throughput())
	t.Notes = append(t.Notes, "lattice side 0 means the source does not specify the problem size")
	return t
}

// Figure9 regenerates the strong-scaling curve of the conv-based
// implementation against ideal linear scaling.
func Figure9(m perf.Model) *Table {
	t := &Table{
		ID:    "figure9",
		Title: "Strong scaling on the (128x1792)^2 lattice vs ideal linear scaling",
		Columns: []string{
			"#cores", "flips/ns", "ideal flips/ns", "efficiency",
		},
	}
	rows := strongScalingRows(m.ForConv())
	if len(rows) == 0 {
		return t
	}
	base := rows[0]
	for _, r := range rows {
		ideal := base.throughput * float64(r.cores) / float64(base.cores)
		t.AddRow(r.cores, r.throughput, ideal, r.throughput/ideal)
	}
	return t
}

// PrecisionComparison is an extension experiment quantifying the bfloat16 vs
// float32 claim (Section 4.1): it runs paired chains at the given size and a
// few temperatures and reports the difference in |m| and U4.
func PrecisionComparison(size, tile, burnIn, samples int, seed uint64) *Table {
	t := &Table{
		ID:    "precision",
		Title: "bfloat16 vs float32: paired-chain differences in |m| and U4",
		Columns: []string{
			"T/Tc", "|m| f32", "|m| bf16", "delta |m|", "U4 f32", "U4 bf16", "delta U4",
		},
	}
	tc := ising.CriticalTemperature()
	temps := []float64{0.85 * tc, tc, 1.15 * tc}
	run := func(dtype tensor.DType) []sweep.Point {
		return sweep.Run(sweep.Config{Temperatures: temps, BurnIn: burnIn, Samples: samples},
			func(temperature float64) sweep.Chain {
				return tpuChain{tpu.NewSimulator(tpu.Config{
					Rows: size, Cols: size, Temperature: temperature,
					TileSize: tile, DType: dtype, Algorithm: tpu.AlgOptim, Seed: seed,
				})}
			})
	}
	f32 := run(tensor.Float32)
	bf16 := run(tensor.BFloat16)
	for i := range f32 {
		t.AddRow(f32[i].Temperature/tc,
			f32[i].AbsMagnetization, bf16[i].AbsMagnetization,
			f32[i].AbsMagnetization-bf16[i].AbsMagnetization,
			f32[i].Binder, bf16[i].Binder,
			f32[i].Binder-bf16[i].Binder)
	}
	return t
}

// AllPerformanceTables returns every model-driven table (1-7, HBM, Figures 8
// and 9, and the kernel ablation) in order; the correctness figures are
// excluded because they run real Monte-Carlo chains and are generated
// separately.
func AllPerformanceTables(m perf.Model) []*Table {
	return []*Table{
		Table1(m), Table2(m), Table3(m), Table4(m), Table5(m),
		Table6(m), Table7(m), TableHBM(m), Figure8(m), Figure9(m),
		AlgorithmAblation(m, superdenseRowTiles, superdenseColTiles),
	}
}
