// Package bf16 implements the bfloat16 floating-point format used by the TPU
// matrix unit (MXU): 1 sign bit, 8 exponent bits, 7 mantissa bits.
//
// The TPU stores activations and MXU inputs in bfloat16 and accumulates in
// float32.  This package provides the conversion (round-to-nearest-even, the
// hardware behaviour), and helpers to round float32 values and slices
// "through" bfloat16, which is how the tensor package emulates bfloat16
// storage on top of float32 host arithmetic.
package bf16
