package bf16

import "math"

// BF16 is a bfloat16 value stored in its 16-bit wire format (the upper half
// of the equivalent IEEE-754 float32 bit pattern).
type BF16 uint16

// FromFloat32 converts a float32 to bfloat16 using round-to-nearest-even,
// matching TPU hardware and the TensorFlow bfloat16 conversion.
// NaN inputs are canonicalised to a quiet NaN so that they never round to
// infinity.
func FromFloat32(f float32) BF16 {
	bits := math.Float32bits(f)
	if isNaN32(bits) {
		// Quiet NaN with the sign preserved.
		return BF16(uint16(bits>>16) | 0x0040)
	}
	// Round to nearest even: add half of a ULP of the low 16 bits, plus the
	// LSB of the retained part to break ties toward even.
	lsb := (bits >> 16) & 1
	rounded := bits + 0x7FFF + lsb
	return BF16(rounded >> 16)
}

// Truncate converts a float32 to bfloat16 by truncation (round toward zero).
// The MXU documentation describes input rounding as "rounds down to
// bfloat16"; Truncate is provided so both behaviours can be compared, but
// FromFloat32 (round-to-nearest-even) is the default used by the tensor
// package because it matches the TensorFlow cast used in the paper's code.
func Truncate(f float32) BF16 {
	bits := math.Float32bits(f)
	if isNaN32(bits) {
		return BF16(uint16(bits>>16) | 0x0040)
	}
	return BF16(bits >> 16)
}

// Float32 converts a bfloat16 value back to float32 (exact).
func (b BF16) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// Round rounds a float32 through bfloat16 and back, i.e. it returns the
// nearest representable bfloat16 value as a float32.
func Round(f float32) float32 {
	return FromFloat32(f).Float32()
}

// RoundSlice rounds every element of dst through bfloat16 in place.
func RoundSlice(dst []float32) {
	for i, v := range dst {
		dst[i] = Round(v)
	}
}

// FromSlice converts a float32 slice into a newly allocated bfloat16 slice.
func FromSlice(src []float32) []BF16 {
	out := make([]BF16, len(src))
	for i, v := range src {
		out[i] = FromFloat32(v)
	}
	return out
}

// ToSlice converts a bfloat16 slice into a newly allocated float32 slice.
func ToSlice(src []BF16) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = v.Float32()
	}
	return out
}

// Add returns the bfloat16 rounding of a+b computed in float32, which is the
// behaviour of a bf16 vector add with float32 internal precision.
func Add(a, b BF16) BF16 { return FromFloat32(a.Float32() + b.Float32()) }

// Mul returns the bfloat16 rounding of a*b computed in float32.
func Mul(a, b BF16) BF16 { return FromFloat32(a.Float32() * b.Float32()) }

// IsNaN reports whether b is a NaN.
func (b BF16) IsNaN() bool {
	return b&0x7F80 == 0x7F80 && b&0x007F != 0
}

// IsInf reports whether b is an infinity.
func (b BF16) IsInf() bool {
	return b&0x7FFF == 0x7F80
}

// Epsilon is the machine epsilon of bfloat16 (2^-7): the difference between
// 1.0 and the next larger representable value.
const Epsilon float32 = 0.0078125

// MaxValue is the largest finite bfloat16 value.
var MaxValue = BF16(0x7F7F).Float32()

// SmallestNormal is the smallest positive normal bfloat16 value (2^-126).
var SmallestNormal = BF16(0x0080).Float32()

func isNaN32(bits uint32) bool {
	return bits&0x7F800000 == 0x7F800000 && bits&0x007FFFFF != 0
}

// Bits returns the raw 16-bit representation.
func (b BF16) Bits() uint16 { return uint16(b) }

// FromBits builds a BF16 from a raw 16-bit representation.
func FromBits(u uint16) BF16 { return BF16(u) }
