package bf16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactSmallIntegers(t *testing.T) {
	// All integers up to 256 are exactly representable in bfloat16
	// (8-bit significand including the hidden bit).
	for i := -256; i <= 256; i++ {
		f := float32(i)
		if got := Round(f); got != f {
			t.Fatalf("Round(%v) = %v, want exact", f, got)
		}
	}
}

func TestSpinValuesExact(t *testing.T) {
	// The paper's claim: binary spin values are encoded in bfloat16 without
	// loss. Check +-1, 0, +-2, +-4 (nearest-neighbour sums are in [-4, 4]).
	for _, f := range []float32{-4, -3, -2, -1, 0, 1, 2, 3, 4} {
		if got := Round(f); got != f {
			t.Fatalf("Round(%v) = %v, want exact", f, got)
		}
	}
}

func TestRoundTripIdempotent(t *testing.T) {
	f := func(u uint32) bool {
		x := math.Float32frombits(u)
		if math.IsNaN(float64(x)) {
			// NaN handled separately.
			return true
		}
		once := Round(x)
		twice := Round(once)
		return once == twice || (math.IsNaN(float64(once)) && math.IsNaN(float64(twice)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	// For normal values the relative rounding error is at most 2^-8.
	f := func(u uint32) bool {
		x := math.Float32frombits(u&0x007FFFFF | 0x3F800000) // force exponent so x in [1,2)
		r := Round(x)
		rel := math.Abs(float64(r-x)) / math.Abs(float64(x))
		return rel <= 1.0/256.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	cases := []struct {
		in   uint32
		want uint16
	}{
		// 1.0 + exactly half a bf16 ULP rounds to even (stays 1.0).
		{0x3F808000, 0x3F80},
		// 1.0 + half ULP + 1 rounds up.
		{0x3F808001, 0x3F81},
		// 1.0078125 (one bf16 ULP above 1) + half ULP rounds up to even.
		{0x3F818000, 0x3F82},
		// Just below half ULP rounds down.
		{0x3F807FFF, 0x3F80},
	}
	for _, c := range cases {
		got := FromFloat32(math.Float32frombits(c.in)).Bits()
		if got != c.want {
			t.Errorf("FromFloat32(%#08x) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestNaNPreserved(t *testing.T) {
	n := float32(math.NaN())
	b := FromFloat32(n)
	if !b.IsNaN() {
		t.Fatalf("FromFloat32(NaN) = %#04x, not NaN", b.Bits())
	}
	if !math.IsNaN(float64(b.Float32())) {
		t.Fatal("round-trip of NaN is not NaN")
	}
	if Truncate(n).IsNaN() == false {
		t.Fatal("Truncate(NaN) is not NaN")
	}
}

func TestInfinities(t *testing.T) {
	pinf := float32(math.Inf(1))
	ninf := float32(math.Inf(-1))
	if got := Round(pinf); !math.IsInf(float64(got), 1) {
		t.Errorf("Round(+Inf) = %v", got)
	}
	if got := Round(ninf); !math.IsInf(float64(got), -1) {
		t.Errorf("Round(-Inf) = %v", got)
	}
	if !FromFloat32(pinf).IsInf() {
		t.Error("IsInf(+Inf) = false")
	}
	// Overflow: values beyond MaxValue round to infinity.
	if got := Round(math.MaxFloat32); !math.IsInf(float64(got), 1) {
		t.Errorf("Round(MaxFloat32) = %v, want +Inf", got)
	}
}

func TestTruncateNeverIncreasesMagnitude(t *testing.T) {
	f := func(u uint32) bool {
		x := math.Float32frombits(u)
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		tr := Truncate(x).Float32()
		return math.Abs(float64(tr)) <= math.Abs(float64(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundIsNearest(t *testing.T) {
	// Round must never be farther from x than Truncate's neighbour pair.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := float32(rng.NormFloat64())
		r := Round(x)
		lo := Truncate(x).Float32()
		// next representable above lo
		hi := FromBits(Truncate(x).Bits() + 1).Float32()
		if x >= 0 {
			if r != lo && r != hi {
				t.Fatalf("Round(%v)=%v not one of neighbours %v,%v", x, r, lo, hi)
			}
			dr := math.Abs(float64(r - x))
			dn := math.Min(math.Abs(float64(lo-x)), math.Abs(float64(hi-x)))
			if dr > dn+1e-12 {
				t.Fatalf("Round(%v)=%v not nearest (%v vs %v)", x, r, dr, dn)
			}
		}
	}
}

func TestSliceHelpers(t *testing.T) {
	src := []float32{1, 2.00390625, -3.5, 0.1}
	b := FromSlice(src)
	back := ToSlice(b)
	if len(back) != len(src) {
		t.Fatal("length mismatch")
	}
	for i := range src {
		if back[i] != Round(src[i]) {
			t.Errorf("ToSlice[%d] = %v, want %v", i, back[i], Round(src[i]))
		}
	}
	cp := append([]float32(nil), src...)
	RoundSlice(cp)
	for i := range cp {
		if cp[i] != Round(src[i]) {
			t.Errorf("RoundSlice[%d] = %v, want %v", i, cp[i], Round(src[i]))
		}
	}
}

func TestAddMul(t *testing.T) {
	a, b := FromFloat32(1.5), FromFloat32(2.25)
	if got := Add(a, b).Float32(); got != 3.75 {
		t.Errorf("Add = %v, want 3.75", got)
	}
	if got := Mul(a, b).Float32(); got != Round(3.375) {
		t.Errorf("Mul = %v, want %v", got, Round(3.375))
	}
}

func TestConstants(t *testing.T) {
	if Round(1+Epsilon) == 1 {
		t.Error("Epsilon too small: 1+eps rounds to 1")
	}
	if Round(1+Epsilon/4) != 1 {
		t.Error("Epsilon too large: 1+eps/4 does not round to 1")
	}
	if MaxValue <= 3e38 || math.IsInf(float64(MaxValue), 1) {
		t.Errorf("MaxValue = %v out of expected range", MaxValue)
	}
	if SmallestNormal <= 0 {
		t.Errorf("SmallestNormal = %v", SmallestNormal)
	}
}

func TestUniformRandomPrecision(t *testing.T) {
	// The acceptance-ratio comparison uses uniforms in [0,1). In bfloat16
	// these have only 7 mantissa bits; check the quantisation step near 1 is
	// 2^-8..2^-7 as expected (relevant to the precision study in the paper).
	x := float32(0.99609375) // largest bf16 value below 1
	if Round(x) != x {
		t.Errorf("%v not representable", x)
	}
	if Round(0.998) != 1.0 && Round(0.998) != x {
		t.Errorf("Round(0.998) = %v", Round(0.998))
	}
}

func BenchmarkRound(b *testing.B) {
	x := float32(1.2345)
	var s float32
	for i := 0; i < b.N; i++ {
		s += Round(x)
	}
	_ = s
}

func BenchmarkRoundSlice(b *testing.B) {
	buf := make([]float32, 16384)
	for i := range buf {
		buf[i] = float32(i) * 0.001
	}
	b.SetBytes(int64(len(buf) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoundSlice(buf)
	}
}
