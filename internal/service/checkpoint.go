package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tpuising/internal/ising"
	"tpuising/internal/stats"
)

// checkpointState is one checkpoint file: everything a fresh daemon needs to
// resume the job bit-identically — the job identity, how far it got, the
// running observable accumulators and the engine snapshot. It is JSON with
// the snapshot embedded in ising's binary snapshot codec (base64 under
// encoding/json); the accumulator floats round-trip exactly, and the
// snapshot carries the spins, RNG key and step counter, so the resumed chain
// and its emission schedule continue exactly where they stopped.
//
// A checkpoint with an empty Snapshot and DoneSweeps 0 is a durable intent
// record: Submit writes one for every accepted job before acknowledging it,
// so an accepted job that never reached (or cannot reach) an engine snapshot
// — tempering and batched jobs have none — still survives a daemon restart
// by rerunning from sweep zero, which the deterministic engines turn into
// the byte-identical result.
type checkpointState struct {
	Version    int                    `json:"version"`
	Job        string                 `json:"job"`
	Spec       JobSpec                `json:"spec"`
	DoneSweeps int                    `json:"done_sweeps"`
	AbsM       stats.AccumulatorState `json:"abs_m"`
	Energy     stats.AccumulatorState `json:"energy"`
	Snapshot   []byte                 `json:"snapshot"`
}

// checkpointVersion versions the file layout.
const checkpointVersion = 1

// checkpointExt is the checkpoint file suffix; files are named <jobID>.ckpt.
const checkpointExt = ".ckpt"

// checkpointPath returns the job's checkpoint file path.
func (s *Server) checkpointPath(jobID string) string {
	return filepath.Join(s.cfg.CheckpointDir, jobID+checkpointExt)
}

// writeCheckpoint captures the engine state and atomically replaces the
// job's checkpoint file (write to a temp file, then rename), so a crash
// mid-write leaves the previous checkpoint intact.
func (s *Server) writeCheckpoint(j *Job, snapper ising.Snapshotter, done int, absM, energy stats.AccumulatorState) error {
	snap, err := snapper.Snapshot()
	if err != nil {
		return err
	}
	return s.writeCheckpointState(&checkpointState{
		Version: checkpointVersion, Job: j.id, Spec: j.spec,
		DoneSweeps: done, AbsM: absM, Energy: energy,
		Snapshot: ising.EncodeSnapshot(snap),
	})
}

// writeSpecCheckpoint records a just-accepted job's spec durably — a
// checkpoint with no snapshot and zero progress. It never overwrites a real
// snapshot: only Submit calls it, before the job has run.
func (s *Server) writeSpecCheckpoint(j *Job) error {
	return s.writeCheckpointState(&checkpointState{
		Version: checkpointVersion, Job: j.id, Spec: j.spec,
	})
}

// writeCheckpointState serializes a checkpoint and atomically replaces the
// job's file through the configured CheckpointFS: write a temp file (synced),
// rename over the target, sync the directory. A failure anywhere removes the
// temp file — a failed write must not leave droppings that a later scan
// would trip on — and moves the checkpoint_failures counter, so a full disk
// is loud in the stats even before the job fails.
func (s *Server) writeCheckpointState(cs *checkpointState) (err error) {
	defer func() {
		if err != nil {
			s.checkpointFailures.Add(1)
		}
	}()
	blob, err := json.Marshal(cs)
	if err != nil {
		return err
	}
	fs := s.cfg.CheckpointFS
	path := s.checkpointPath(cs.Job)
	tmp := path + ".tmp"
	if err := fs.WriteFile(tmp, blob); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	_ = fs.SyncDir(s.cfg.CheckpointDir)
	s.checkpointsWritten.Add(1)
	s.checkpointBytes.Add(int64(len(blob)))
	return nil
}

// removeCheckpoint deletes the job's checkpoint file (job completed, failed
// or was canceled by a client).
func (s *Server) removeCheckpoint(j *Job) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	_ = s.cfg.CheckpointFS.Remove(s.checkpointPath(j.id))
}

// loadCheckpoint parses and validates one checkpoint file.
func loadCheckpoint(path string) (*checkpointState, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cs checkpointState
	if err := json.Unmarshal(blob, &cs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if cs.Version != checkpointVersion {
		return nil, fmt.Errorf("%s: checkpoint version %d, want %d", path, cs.Version, checkpointVersion)
	}
	if cs.Job == "" || !strings.HasPrefix(filepath.Base(path), cs.Job+checkpointExt) {
		return nil, fmt.Errorf("%s: checkpoint names job %q", path, cs.Job)
	}
	spec, err := cs.Spec.Normalize()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	cs.Spec = spec
	if cs.DoneSweeps < 0 || cs.DoneSweeps > spec.totalSweeps() {
		return nil, fmt.Errorf("%s: done_sweeps %d out of range", path, cs.DoneSweeps)
	}
	if len(cs.Snapshot) == 0 {
		// A durable intent record: valid only at zero progress — the job
		// reruns from sweep zero. Progress without a snapshot is rot.
		if cs.DoneSweeps != 0 {
			return nil, fmt.Errorf("%s: done_sweeps %d but no snapshot", path, cs.DoneSweeps)
		}
		return &cs, nil
	}
	if _, err := ising.DecodeSnapshot(cs.Snapshot); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &cs, nil
}

// scanCheckpoints loads every readable checkpoint in the directory, sorted
// by job ID so resumption order is deterministic. Unreadable files are
// skipped (and reported), never fatal: a daemon must come back up even if
// one checkpoint rotted.
func scanCheckpoints(dir string) (states []*checkpointState, skipped []error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, []error{err}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), checkpointExt) {
			continue
		}
		cs, err := loadCheckpoint(filepath.Join(dir, e.Name()))
		if err != nil {
			skipped = append(skipped, err)
			continue
		}
		states = append(states, cs)
	}
	sort.Slice(states, func(i, k int) bool { return states[i].Job < states[k].Job })
	return states, skipped
}
