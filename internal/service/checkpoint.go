package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tpuising/internal/ising"
	"tpuising/internal/stats"
)

// checkpointState is one checkpoint file: everything a fresh daemon needs to
// resume the job bit-identically — the job identity, how far it got, the
// running observable accumulators and the engine snapshot. It is JSON with
// the snapshot embedded in ising's binary snapshot codec (base64 under
// encoding/json); the accumulator floats round-trip exactly, and the
// snapshot carries the spins, RNG key and step counter, so the resumed chain
// and its emission schedule continue exactly where they stopped.
type checkpointState struct {
	Version    int                    `json:"version"`
	Job        string                 `json:"job"`
	Spec       JobSpec                `json:"spec"`
	DoneSweeps int                    `json:"done_sweeps"`
	AbsM       stats.AccumulatorState `json:"abs_m"`
	Energy     stats.AccumulatorState `json:"energy"`
	Snapshot   []byte                 `json:"snapshot"`
}

// checkpointVersion versions the file layout.
const checkpointVersion = 1

// checkpointExt is the checkpoint file suffix; files are named <jobID>.ckpt.
const checkpointExt = ".ckpt"

// checkpointPath returns the job's checkpoint file path.
func (s *Server) checkpointPath(jobID string) string {
	return filepath.Join(s.cfg.CheckpointDir, jobID+checkpointExt)
}

// writeCheckpoint captures the engine state and atomically replaces the
// job's checkpoint file (write to a temp file, then rename), so a crash
// mid-write leaves the previous checkpoint intact.
func (s *Server) writeCheckpoint(j *Job, snapper ising.Snapshotter, done int, absM, energy stats.AccumulatorState) error {
	snap, err := snapper.Snapshot()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(checkpointState{
		Version: checkpointVersion, Job: j.id, Spec: j.spec,
		DoneSweeps: done, AbsM: absM, Energy: energy,
		Snapshot: ising.EncodeSnapshot(snap),
	})
	if err != nil {
		return err
	}
	path := s.checkpointPath(j.id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(blob)
	if err == nil {
		// Flush the data before the rename makes it visible: without this a
		// power loss could persist the rename but not the contents, replacing
		// the previous good checkpoint with a truncated one.
		err = f.Sync()
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(s.cfg.CheckpointDir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	s.checkpointsWritten.Add(1)
	s.checkpointBytes.Add(int64(len(blob)))
	return nil
}

// removeCheckpoint deletes the job's checkpoint file (job completed, failed
// or was canceled by a client).
func (s *Server) removeCheckpoint(j *Job) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	_ = os.Remove(s.checkpointPath(j.id))
}

// loadCheckpoint parses and validates one checkpoint file.
func loadCheckpoint(path string) (*checkpointState, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cs checkpointState
	if err := json.Unmarshal(blob, &cs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if cs.Version != checkpointVersion {
		return nil, fmt.Errorf("%s: checkpoint version %d, want %d", path, cs.Version, checkpointVersion)
	}
	if cs.Job == "" || !strings.HasPrefix(filepath.Base(path), cs.Job+checkpointExt) {
		return nil, fmt.Errorf("%s: checkpoint names job %q", path, cs.Job)
	}
	spec, err := cs.Spec.Normalize()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	cs.Spec = spec
	if cs.DoneSweeps < 0 || cs.DoneSweeps > spec.totalSweeps() {
		return nil, fmt.Errorf("%s: done_sweeps %d out of range", path, cs.DoneSweeps)
	}
	if _, err := ising.DecodeSnapshot(cs.Snapshot); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &cs, nil
}

// scanCheckpoints loads every readable checkpoint in the directory, sorted
// by job ID so resumption order is deterministic. Unreadable files are
// skipped (and reported), never fatal: a daemon must come back up even if
// one checkpoint rotted.
func scanCheckpoints(dir string) (states []*checkpointState, skipped []error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, []error{err}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), checkpointExt) {
			continue
		}
		cs, err := loadCheckpoint(filepath.Join(dir, e.Name()))
		if err != nil {
			skipped = append(skipped, err)
			continue
		}
		states = append(states, cs)
	}
	sort.Slice(states, func(i, k int) bool { return states[i].Job < states[k].Job })
	return states, skipped
}
