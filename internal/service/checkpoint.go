package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tpuising/internal/ising"
	"tpuising/internal/stats"
)

// checkpointState is one checkpoint file: everything a fresh daemon needs to
// resume the job bit-identically — the job identity, how far it got, the
// running observable accumulators and the engine snapshot. It is JSON with
// the snapshot embedded in ising's binary snapshot codec (base64 under
// encoding/json); the accumulator floats round-trip exactly, and the
// snapshot carries the spins, RNG key and step counter, so the resumed chain
// and its emission schedule continue exactly where they stopped.
//
// A checkpoint with an empty Snapshot and DoneSweeps 0 is a durable intent
// record: Submit writes one for every accepted job before acknowledging it,
// so an accepted job that never reached (or cannot reach) an engine snapshot
// — tempering and batched jobs have none — still survives a daemon restart
// by rerunning from sweep zero, which the deterministic engines turn into
// the byte-identical result.
type checkpointState struct {
	Version    int                    `json:"version"`
	Job        string                 `json:"job"`
	Spec       JobSpec                `json:"spec"`
	DoneSweeps int                    `json:"done_sweeps"`
	AbsM       stats.AccumulatorState `json:"abs_m"`
	Energy     stats.AccumulatorState `json:"energy"`
	Snapshot   []byte                 `json:"snapshot"`
	// AdmittedAt is the job's admission wall-clock time in Unix nanoseconds
	// (0 in v1 files, which predate it). A restarted daemon folds it into its
	// monotonic clock floor, so a host whose wall clock went backwards across
	// the restart cannot compute negative job ages or revive expired state.
	AdmittedAt int64 `json:"admitted_at_unix_nano,omitempty"`
}

// Checkpoint codec versions. Version 2 wraps the JSON payload in a
// checksummed header (see encodeCheckpoint); version 1 files — bare JSON,
// written by older daemons — remain readable and are upgraded to v2 the next
// time the job checkpoints.
const (
	checkpointVersion   = 2
	checkpointVersionV1 = 1
)

// checkpointHeaderPrefix opens every v2 checkpoint file. The full header is
// one line, `ISCKPT2 crc32c=<hex> len=<payload bytes>\n`, followed by the
// JSON payload: the length detects torn (truncated or doubled) files, the
// CRC-32C detects bit rot, and a v1 reader that expects bare JSON fails
// loudly instead of misparsing.
const checkpointHeaderPrefix = "ISCKPT2 "

// checkpointExt is the checkpoint file suffix; files are named <jobID>.ckpt.
const checkpointExt = ".ckpt"

// checkpointTmpExt suffixes the atomic-write staging files (<jobID>.ckpt.tmp).
// A crash between write and rename strands one; the startup scan sweeps them.
const checkpointTmpExt = ".tmp"

// quarantineDir is the subdirectory of the checkpoint directory that the
// startup scan moves corrupt checkpoint files into. Quarantined files are
// evidence — never deleted by the service — and the subdirectory is excluded
// from later scans (CheckpointFS.ReadDir lists plain files only).
const quarantineDir = "quarantine"

// crc32c is the Castagnoli polynomial table for the v2 whole-file checksum.
var crc32c = crc32.MakeTable(crc32.Castagnoli)

// checkpointPath returns the job's checkpoint file path.
func (s *Server) checkpointPath(jobID string) string {
	return filepath.Join(s.cfg.CheckpointDir, jobID+checkpointExt)
}

// writeCheckpoint captures the engine state and atomically replaces the
// job's checkpoint file (write to a temp file, then rename), so a crash
// mid-write leaves the previous checkpoint intact.
func (s *Server) writeCheckpoint(j *Job, snapper ising.Snapshotter, done int, absM, energy stats.AccumulatorState) error {
	snap, err := snapper.Snapshot()
	if err != nil {
		return err
	}
	if err := s.writeCheckpointState(&checkpointState{
		Job: j.id, Spec: j.spec,
		DoneSweeps: done, AbsM: absM, Energy: energy,
		Snapshot:   ising.EncodeSnapshot(snap),
		AdmittedAt: j.admittedAt.UnixNano(),
	}); err != nil {
		return err
	}
	j.addEvent(EventCheckpointed, done)
	return nil
}

// writeSpecCheckpoint records a just-accepted job's spec durably — a
// checkpoint with no snapshot and zero progress. It never overwrites a real
// snapshot: only Submit calls it, before the job has run.
func (s *Server) writeSpecCheckpoint(j *Job) error {
	return s.writeCheckpointState(&checkpointState{
		Job: j.id, Spec: j.spec, AdmittedAt: j.admittedAt.UnixNano(),
	})
}

// encodeCheckpoint serializes a checkpoint in the v2 layout: a one-line
// checksummed header followed by the JSON payload.
func encodeCheckpoint(cs *checkpointState) ([]byte, error) {
	cs.Version = checkpointVersion
	payload, err := json.Marshal(cs)
	if err != nil {
		return nil, err
	}
	header := fmt.Sprintf("%scrc32c=%08x len=%d\n",
		checkpointHeaderPrefix, crc32.Checksum(payload, crc32c), len(payload))
	return append([]byte(header), payload...), nil
}

// writeCheckpointState serializes a checkpoint and atomically replaces the
// job's file through the configured CheckpointFS: write a temp file (synced),
// rename over the target, sync the directory. A failure anywhere removes the
// temp file — a failed write must not leave droppings that a later scan
// would trip on — and moves the checkpoint_failures counter, so a full disk
// is loud in the stats even before the job fails. (A kill -9 mid-write still
// strands the temp file; the next daemon's startup scan sweeps it.)
func (s *Server) writeCheckpointState(cs *checkpointState) (err error) {
	start := s.now()
	defer func() {
		if err != nil {
			s.checkpointFailures.Add(1)
			s.logger.Error("checkpoint write failed", "job", cs.Job, "error", err)
		}
	}()
	blob, err := encodeCheckpoint(cs)
	if err != nil {
		return err
	}
	fs := s.cfg.CheckpointFS
	path := s.checkpointPath(cs.Job)
	tmp := path + checkpointTmpExt
	if err := fs.WriteFile(tmp, blob); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	_ = fs.SyncDir(s.cfg.CheckpointDir)
	s.checkpointsWritten.Add(1)
	s.checkpointBytes.Add(int64(len(blob)))
	s.checkpointWriteH.Observe(s.now().Sub(start))
	return nil
}

// removeCheckpoint deletes the job's checkpoint file (job completed, failed
// or was canceled by a client).
func (s *Server) removeCheckpoint(j *Job) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	_ = s.cfg.CheckpointFS.Remove(s.checkpointPath(j.id))
}

// loadCheckpoint reads one checkpoint file through the configured
// CheckpointFS — the injectable read path the crash suite targets — and
// parses it.
func (s *Server) loadCheckpoint(path string) (*checkpointState, error) {
	blob, err := s.cfg.CheckpointFS.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseCheckpoint(blob, path)
}

// parseCheckpoint parses and validates one checkpoint file image. It accepts
// both codec versions — a v2 checksummed envelope and a bare-JSON v1 file —
// and returns an error (never panics, however mangled the bytes: the
// FuzzLoadCheckpoint target holds it to that) for anything torn, corrupt or
// inconsistent. path is used for error text and the job-name cross-check.
func parseCheckpoint(blob []byte, path string) (*checkpointState, error) {
	payload := blob
	wantVersion := checkpointVersionV1
	if bytes.HasPrefix(blob, []byte(checkpointHeaderPrefix)) {
		nl := bytes.IndexByte(blob, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("%s: checkpoint header is unterminated (torn write)", path)
		}
		var sum uint32
		var n int
		if _, err := fmt.Sscanf(string(blob[len(checkpointHeaderPrefix):nl]), "crc32c=%x len=%d", &sum, &n); err != nil {
			return nil, fmt.Errorf("%s: malformed checkpoint header %q", path, blob[:nl])
		}
		payload = blob[nl+1:]
		if n < 0 || len(payload) != n {
			return nil, fmt.Errorf("%s: checkpoint payload is %d bytes, header says %d (torn write)", path, len(payload), n)
		}
		if got := crc32.Checksum(payload, crc32c); got != sum {
			return nil, fmt.Errorf("%s: checkpoint checksum %08x, header says %08x (corrupt)", path, got, sum)
		}
		wantVersion = checkpointVersion
	}
	var cs checkpointState
	if err := json.Unmarshal(payload, &cs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if cs.Version != wantVersion {
		return nil, fmt.Errorf("%s: checkpoint version %d, want %d", path, cs.Version, wantVersion)
	}
	if cs.Job == "" || !strings.HasPrefix(filepath.Base(path), cs.Job+checkpointExt) {
		return nil, fmt.Errorf("%s: checkpoint names job %q", path, cs.Job)
	}
	spec, err := cs.Spec.Normalize()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	cs.Spec = spec
	if cs.AdmittedAt < 0 {
		return nil, fmt.Errorf("%s: negative admission time %d", path, cs.AdmittedAt)
	}
	if cs.DoneSweeps < 0 || cs.DoneSweeps > spec.totalSweeps() {
		return nil, fmt.Errorf("%s: done_sweeps %d out of range", path, cs.DoneSweeps)
	}
	if len(cs.Snapshot) == 0 {
		// A durable intent record: valid only at zero progress — the job
		// reruns from sweep zero. Progress without a snapshot is rot.
		if cs.DoneSweeps != 0 {
			return nil, fmt.Errorf("%s: done_sweeps %d but no snapshot", path, cs.DoneSweeps)
		}
		return &cs, nil
	}
	if _, err := ising.DecodeSnapshot(cs.Snapshot); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &cs, nil
}

// scanCheckpoints loads every readable checkpoint in the directory, sorted
// by job ID so resumption order is deterministic. The scan is crash-only
// recovery, so it is also the self-defence pass: stale .tmp droppings from a
// kill mid-write are swept (counted in checkpoint_tmp_swept), and any file
// that is unreadable, torn or checksum-failing is moved — never deleted:
// quarantined files are evidence — into the quarantine/ subdirectory,
// counted in checkpoint_corrupt, with its job registered as lost to
// corruption (Get answers ErrJobCorrupt, HTTP 410). Problems are reported,
// never fatal: a daemon must come back up even if every checkpoint rotted.
func (s *Server) scanCheckpoints() (states []*checkpointState, skipped []error) {
	fs := s.cfg.CheckpointFS
	dir := s.cfg.CheckpointDir
	if err := fs.MkdirAll(dir); err != nil {
		return nil, []error{err}
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, []error{err}
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		if strings.HasSuffix(name, checkpointTmpExt) {
			// An atomic-replace staging file stranded by a crash between
			// write and rename. Its target either holds the previous good
			// checkpoint or never existed; the dropping itself is garbage.
			if err := fs.Remove(path); err != nil {
				skipped = append(skipped, fmt.Errorf("sweeping stale temp file %s: %w", path, err))
				continue
			}
			s.checkpointTmpSwept.Add(1)
			continue
		}
		if !strings.HasSuffix(name, checkpointExt) {
			continue
		}
		cs, err := s.loadCheckpoint(path)
		if err != nil {
			skipped = append(skipped, err)
			s.quarantineCheckpoint(path, name)
			continue
		}
		states = append(states, cs)
	}
	sort.Slice(states, func(i, k int) bool { return states[i].Job < states[k].Job })
	return states, skipped
}

// quarantineCheckpoint moves a corrupt checkpoint file into the quarantine
// subdirectory (preserving it as evidence), counts it, and registers its job
// — named by the file, since the contents are untrustworthy — as lost to
// corruption so clients polling the ID get the corruption taxonomy instead
// of a bare not-found.
func (s *Server) quarantineCheckpoint(path, name string) {
	fs := s.cfg.CheckpointFS
	qdir := filepath.Join(s.cfg.CheckpointDir, quarantineDir)
	if err := fs.MkdirAll(qdir); err == nil {
		_ = fs.Rename(path, filepath.Join(qdir, name))
		_ = fs.SyncDir(s.cfg.CheckpointDir)
	}
	s.checkpointCorrupt.Add(1)
	s.logger.Warn("checkpoint quarantined", "file", name)
	jobID := strings.TrimSuffix(name, checkpointExt)
	s.mu.Lock()
	s.corruptJobs[jobID] = true
	// Never reissue a corrupt job's ID: a fresh job under it would shadow
	// the corruption verdict.
	s.advanceIDLocked(jobID)
	s.mu.Unlock()
}

// admittedAtOrNow converts a persisted admission timestamp back to a
// time.Time, falling back to now for v1 checkpoints that predate the field.
func admittedAtOrNow(unixNano int64, now func() time.Time) time.Time {
	if unixNano > 0 {
		return time.Unix(0, unixNano)
	}
	return now()
}
