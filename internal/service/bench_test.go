package service

import (
	"errors"
	"fmt"
	"testing"
)

// submitWindowed submits n jobs with distinct seeds, keeping at most window
// jobs in flight, and waits for all of them. It returns the last result's
// job for sanity checks.
func submitWindowed(b *testing.B, srv *Server, base JobSpec, n, window int) {
	b.Helper()
	inflight := make([]*Job, 0, window)
	drainOne := func() {
		j := inflight[0]
		inflight = inflight[1:]
		<-j.Done()
		if st := j.Status(); st.State != StateDone {
			b.Fatalf("benchmark job %s: %+v", j.ID(), st)
		}
	}
	for i := 0; i < n; i++ {
		spec := base
		spec.Seed = uint64(i + 1)
		for {
			j, err := srv.Submit(spec)
			if errors.Is(err, ErrQueueFull) {
				drainOne()
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
			inflight = append(inflight, j)
			break
		}
		if len(inflight) >= window {
			drainOne()
		}
	}
	for len(inflight) > 0 {
		drainOne()
	}
}

// BenchmarkServiceJobs measures end-to-end jobs/sec through the worker pool
// for small lattices: submission, scheduling, the chain itself, sampling and
// result assembly. One iteration is one completed job.
func BenchmarkServiceJobs(b *testing.B) {
	for _, bc := range []struct {
		backend string
		rows    int
		cols    int
	}{
		{"checkerboard", 16, 16},
		{"multispin", 16, 64},
	} {
		b.Run(fmt.Sprintf("%s/%dx%d", bc.backend, bc.rows, bc.cols), func(b *testing.B) {
			srv, _ := New(Config{Workers: 4, QueueDepth: 64, CacheSize: -1})
			defer srv.Close()
			base := JobSpec{Backend: bc.backend, Rows: bc.rows, Cols: bc.cols,
				Temperature: 2.4, Sweeps: 32, SampleInterval: 8}
			b.ReportAllocs()
			b.ResetTimer()
			submitWindowed(b, srv, base, b.N, 32)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServiceCachedJobs measures the cache-hit path: every submission
// after the first is served from the result cache without touching a
// backend, which is the service's answer to repeated identical queries.
func BenchmarkServiceCachedJobs(b *testing.B) {
	srv, _ := New(Config{Workers: 2})
	defer srv.Close()
	spec := JobSpec{Backend: "multispin", Rows: 16, Cols: 64,
		Temperature: 2.4, Seed: 1, Sweeps: 32, SampleInterval: 8}
	warm, err := srv.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	<-warm.Done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := srv.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
		if !j.Status().Cached {
			b.Fatal("benchmark submission missed the cache")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
