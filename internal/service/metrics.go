package service

import (
	"fmt"
	"net/http"
	"strings"
)

// promMetric is one exposed metric: its Prometheus name, type and help text,
// plus how to read it from a Stats snapshot. The exposition is hand-rolled
// (no client library dependency): every metric is an unlabelled counter or
// gauge, which is exactly the subset the text format makes trivial.
type promMetric struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value func(Stats) int64
}

// promMetrics is the /metrics catalogue, all prefixed isingd_. Counters carry
// the conventional _total suffix; gauges are instantaneous. isingload scrapes
// these (internal/load) and the CI load-smoke gate thresholds them, so a
// rename here is a breaking change to the perf trajectory.
var promMetrics = []promMetric{
	{"isingd_jobs_submitted_total", "counter", "Jobs accepted by Submit (including cache hits).", func(s Stats) int64 { return s.JobsSubmitted }},
	{"isingd_jobs_completed_total", "counter", "Jobs that finished with a result (excluding cache hits).", func(s Stats) int64 { return s.JobsCompleted }},
	{"isingd_jobs_failed_total", "counter", "Jobs that stopped with an error.", func(s Stats) int64 { return s.JobsFailed }},
	{"isingd_jobs_canceled_total", "counter", "Jobs canceled by clients or lost to shutdown.", func(s Stats) int64 { return s.JobsCanceled }},
	{"isingd_jobs_cached_total", "counter", "Cache hits: submissions served without sweeping.", func(s Stats) int64 { return s.JobsCached }},
	{"isingd_jobs_resumed_total", "counter", "Jobs re-queued from checkpoints at startup.", func(s Stats) int64 { return s.JobsResumed }},
	{"isingd_jobs_evicted_total", "counter", "Terminal jobs dropped by the history retention (JobHistory/JobTTL).", func(s Stats) int64 { return s.JobsEvicted }},
	{"isingd_sweeps_run_total", "counter", "Whole-lattice updates executed by workers.", func(s Stats) int64 { return s.SweepsRun }},
	{"isingd_checkpoints_written_total", "counter", "Checkpoint files written (snapshots and intent records).", func(s Stats) int64 { return s.CheckpointsWritten }},
	{"isingd_checkpoint_bytes_total", "counter", "Bytes of checkpoint data written.", func(s Stats) int64 { return s.CheckpointBytes }},
	{"isingd_checkpoint_failures_total", "counter", "Checkpoint writes that failed (the job fails loudly with them).", func(s Stats) int64 { return s.CheckpointFailures }},
	{"isingd_checkpoint_corrupt_total", "counter", "Checkpoint files quarantined by the startup scan (unreadable, torn or checksum-failing).", func(s Stats) int64 { return s.CheckpointCorrupt }},
	{"isingd_checkpoint_tmp_swept_total", "counter", "Stale checkpoint temp files swept by the startup scan (kill mid-write droppings).", func(s Stats) int64 { return s.CheckpointTmpSwept }},
	{"isingd_stream_wakeups_total", "counter", "NDJSON stream loop iterations across all subscribers.", func(s Stats) int64 { return s.StreamWakeups }},
	{"isingd_cache_misses_total", "counter", "Result-cache lookups that found nothing.", func(s Stats) int64 { return s.CacheMisses }},
	{"isingd_cache_evictions_total", "counter", "Result-cache entries evicted by the size, byte or TTL bounds.", func(s Stats) int64 { return s.CacheEvictions }},
	{"isingd_quota_rejections_total", "counter", "Submissions rejected by the per-client quota (HTTP 429).", func(s Stats) int64 { return s.QuotaRejections }},
	{"isingd_queue_full_rejections_total", "counter", "Submissions rejected by the queue-depth bound (HTTP 503).", func(s Stats) int64 { return s.QueueFullRejections }},
	{"isingd_worker_panics_total", "counter", "Worker panics converted into failed jobs.", func(s Stats) int64 { return s.WorkerPanics }},
	{"isingd_cache_bytes", "gauge", "Current encoded bytes held by the result cache (bounded by CacheBytes).", func(s Stats) int64 { return s.CacheBytes }},
	{"isingd_cache_entries", "gauge", "Current result-cache entries (bounded by CacheSize).", func(s Stats) int64 { return int64(s.CacheEntries) }},
	{"isingd_jobs_queued", "gauge", "Jobs waiting for a worker.", func(s Stats) int64 { return int64(s.Queued) }},
	{"isingd_jobs_running", "gauge", "Jobs occupying workers.", func(s Stats) int64 { return int64(s.Running) }},
	{"isingd_workers", "gauge", "Worker-pool size.", func(s Stats) int64 { return int64(s.Workers) }},
}

// writeMetrics renders the Prometheus text exposition of a Stats snapshot.
func writeMetrics(w *strings.Builder, st Stats) {
	for _, m := range promMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
		fmt.Fprintf(w, "%s %d\n", m.name, m.value(st))
	}
}

// handleMetrics serves GET /metrics: the server counters in the Prometheus
// text exposition format (version 0.0.4), scrape-ready for any Prometheus
// and parsed by isingload's threshold gate.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	writeMetrics(&b, s.Stats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, b.String())
}
