package service

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"tpuising/internal/hist"
)

// promMetric is one exposed scalar metric: its Prometheus name, type and help
// text, plus how to read it from a Stats snapshot. The exposition is
// hand-rolled (no client library dependency): unlabelled counters and gauges
// come from this catalogue, and the stage-latency histograms and the labelled
// build-info gauge are rendered by renderMetrics directly — still nothing but
// fmt over the text format.
type promMetric struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value func(Stats) int64
}

// promMetrics is the /metrics catalogue, all prefixed isingd_. Counters carry
// the conventional _total suffix; gauges are instantaneous. isingload scrapes
// these (internal/load) and the CI load-smoke gate thresholds them, so a
// rename here is a breaking change to the perf trajectory.
var promMetrics = []promMetric{
	{"isingd_jobs_submitted_total", "counter", "Jobs accepted by Submit (including cache hits).", func(s Stats) int64 { return s.JobsSubmitted }},
	{"isingd_jobs_completed_total", "counter", "Jobs that finished with a result (excluding cache hits).", func(s Stats) int64 { return s.JobsCompleted }},
	{"isingd_jobs_failed_total", "counter", "Jobs that stopped with an error.", func(s Stats) int64 { return s.JobsFailed }},
	{"isingd_jobs_canceled_total", "counter", "Jobs canceled by clients or lost to shutdown.", func(s Stats) int64 { return s.JobsCanceled }},
	{"isingd_jobs_cached_total", "counter", "Cache hits: submissions served without sweeping.", func(s Stats) int64 { return s.JobsCached }},
	{"isingd_jobs_resumed_total", "counter", "Jobs re-queued from checkpoints at startup.", func(s Stats) int64 { return s.JobsResumed }},
	{"isingd_jobs_evicted_total", "counter", "Terminal jobs dropped by the history retention (JobHistory/JobTTL).", func(s Stats) int64 { return s.JobsEvicted }},
	{"isingd_sweeps_run_total", "counter", "Whole-lattice updates executed by workers.", func(s Stats) int64 { return s.SweepsRun }},
	{"isingd_checkpoints_written_total", "counter", "Checkpoint files written (snapshots and intent records).", func(s Stats) int64 { return s.CheckpointsWritten }},
	{"isingd_checkpoint_bytes_total", "counter", "Bytes of checkpoint data written.", func(s Stats) int64 { return s.CheckpointBytes }},
	{"isingd_checkpoint_failures_total", "counter", "Checkpoint writes that failed (the job fails loudly with them).", func(s Stats) int64 { return s.CheckpointFailures }},
	{"isingd_checkpoint_corrupt_total", "counter", "Checkpoint files quarantined by the startup scan (unreadable, torn or checksum-failing).", func(s Stats) int64 { return s.CheckpointCorrupt }},
	{"isingd_checkpoint_tmp_swept_total", "counter", "Stale checkpoint temp files swept by the startup scan (kill mid-write droppings).", func(s Stats) int64 { return s.CheckpointTmpSwept }},
	{"isingd_stream_wakeups_total", "counter", "NDJSON stream loop iterations across all subscribers.", func(s Stats) int64 { return s.StreamWakeups }},
	{"isingd_cache_misses_total", "counter", "Result-cache lookups that found nothing.", func(s Stats) int64 { return s.CacheMisses }},
	{"isingd_cache_evictions_total", "counter", "Result-cache entries evicted by the size, byte or TTL bounds.", func(s Stats) int64 { return s.CacheEvictions }},
	{"isingd_quota_rejections_total", "counter", "Submissions rejected by the per-client quota (HTTP 429).", func(s Stats) int64 { return s.QuotaRejections }},
	{"isingd_queue_full_rejections_total", "counter", "Submissions rejected by the queue-depth bound (HTTP 503).", func(s Stats) int64 { return s.QueueFullRejections }},
	{"isingd_worker_panics_total", "counter", "Worker panics converted into failed jobs.", func(s Stats) int64 { return s.WorkerPanics }},
	{"isingd_cache_bytes", "gauge", "Current encoded bytes held by the result cache (bounded by CacheBytes).", func(s Stats) int64 { return s.CacheBytes }},
	{"isingd_cache_entries", "gauge", "Current result-cache entries (bounded by CacheSize).", func(s Stats) int64 { return int64(s.CacheEntries) }},
	{"isingd_jobs_queued", "gauge", "Jobs waiting for a worker.", func(s Stats) int64 { return int64(s.Queued) }},
	{"isingd_jobs_running", "gauge", "Jobs occupying workers.", func(s Stats) int64 { return int64(s.Running) }},
	{"isingd_workers", "gauge", "Worker-pool size.", func(s Stats) int64 { return int64(s.Workers) }},
}

// promHistogram names one exposed stage-latency histogram and where it lives
// on the server.
type promHistogram struct {
	name string
	help string
	h    func(*Server) *hist.Histogram
}

// promHistograms is the /metrics histogram catalogue: the four stages a job's
// server-side time goes to. Each renders as a real Prometheus histogram type
// (_bucket series over hist.DefaultBuckets plus +Inf, _sum, _count), which
// isingload reconstructs into interval quantiles by differencing two scrapes.
var promHistograms = []promHistogram{
	{"isingd_queue_wait_seconds", "Time jobs spent queued before a worker admitted them.", func(s *Server) *hist.Histogram { return s.queueWaitH }},
	{"isingd_run_seconds", "Worker occupancy per job, admission to terminal state.", func(s *Server) *hist.Histogram { return s.runH }},
	{"isingd_checkpoint_write_seconds", "Checkpoint file writes (intent records and snapshots), encode through fsync and rename.", func(s *Server) *hist.Histogram { return s.checkpointWriteH }},
	{"isingd_stream_write_seconds", "NDJSON stream write batches, encode through flush.", func(s *Server) *hist.Histogram { return s.streamWriteH }},
}

// renderMetrics renders the full Prometheus text exposition: the scalar
// catalogue, the build-info and uptime gauges, then the stage-latency
// histograms.
func (s *Server) renderMetrics() string {
	var b strings.Builder
	st := s.Stats()
	for _, m := range promMetrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		fmt.Fprintf(&b, "%s %d\n", m.name, m.value(st))
	}
	fmt.Fprintf(&b, "# HELP isingd_build_info Build metadata; the value is always 1.\n")
	fmt.Fprintf(&b, "# TYPE isingd_build_info gauge\n")
	fmt.Fprintf(&b, "isingd_build_info{version=%q,goversion=%q} 1\n", s.cfg.Version, runtime.Version())
	fmt.Fprintf(&b, "# HELP isingd_uptime_seconds Server age on its own clock.\n")
	fmt.Fprintf(&b, "# TYPE isingd_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "isingd_uptime_seconds %s\n", formatFloat(st.UptimeSeconds))
	for _, m := range promHistograms {
		counts, count, sum := m.h(s).Cumulative(hist.DefaultBuckets)
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m.name)
		for i, bound := range hist.DefaultBuckets {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), counts[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, count)
		fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(sum))
		fmt.Fprintf(&b, "%s_count %d\n", m.name, count)
	}
	return b.String()
}

// formatFloat renders a float sample value the shortest way that round-trips,
// matching how Prometheus clients print bounds (0.25, not 0.250000).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// handleMetrics serves GET (and HEAD) /metrics: the server counters, gauges
// and stage-latency histograms in the Prometheus text exposition format
// (version 0.0.4), scrape-ready for any Prometheus and parsed by isingload's
// threshold gate. The body is rendered up front so Content-Length is always
// set — strict scrapers and `curl -I` probes see the real size — and a HEAD
// request gets the headers alone.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := s.renderMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodHead {
		return
	}
	_, _ = fmt.Fprint(w, body)
}
