package service

import "time"

// Trace event names: the stages of a job's lifecycle, in the order a
// well-behaved job visits them. A fresh job records submitted → queued →
// admitted → running → checkpointed×N → completed (or failed/canceled); a
// job resumed from a checkpoint opens with submitted (its original admission
// stamp) → resumed → queued instead, and a job parked at shutdown for the
// next daemon records a second queued. A cache hit records submitted →
// cached → completed without ever touching the queue. Every timestamp comes
// from the server's injectable clock (Config.Now, monotonic-clamped), so
// fake-clock tests assert exact stage durations.
const (
	EventSubmitted    = "submitted"    // Submit accepted the spec
	EventQueued       = "queued"       // the job entered (or re-entered) the queue
	EventAdmitted     = "admitted"     // a worker claimed the job off the queue
	EventRunning      = "running"      // the worker started sweeping
	EventCheckpointed = "checkpointed" // an engine snapshot reached disk (Sweep = progress)
	EventResumed      = "resumed"      // a restarted daemon re-queued the job (Sweep = resumed progress)
	EventCached       = "cached"       // the submission was served from the result cache
	EventCompleted    = "completed"    // terminal: result available
	EventFailed       = "failed"       // terminal: stopped with an error
	EventCanceled     = "canceled"     // terminal: canceled by a client or lost to shutdown
)

// stateEvent maps a state transition onto its trace event name.
var stateEvent = map[JobState]string{
	StateQueued:   EventQueued,
	StateRunning:  EventRunning,
	StateDone:     EventCompleted,
	StateFailed:   EventFailed,
	StateCanceled: EventCanceled,
}

// maxTraceEvents bounds one job's timeline. Lifecycle transitions are O(1)
// per job; only checkpointed events repeat, so the bound is effectively "the
// first ~250 checkpoints are recorded, the rest are counted". The set of
// retained timelines is bounded alongside the jobs themselves by the
// JobHistory/JobTTL retention — an evicted job's trace goes with it (410).
const maxTraceEvents = 256

// TraceEvent is one entry in a job's lifecycle timeline.
type TraceEvent struct {
	// Event is one of the Event* names.
	Event string `json:"event"`
	// At is the server-clock timestamp of the event.
	At time.Time `json:"at"`
	// Sweep carries the job's sweep progress for checkpointed and resumed
	// events (0 otherwise).
	Sweep int `json:"sweep,omitempty"`
}

// JobTrace is the JSON answer of GET /v1/jobs/{id}/trace: the recorded
// timeline plus the stage durations derived from it. Durations are computed
// from the event timestamps, so on a fake clock they are exact.
type JobTrace struct {
	ID     string       `json:"id"`
	State  JobState     `json:"state"`
	Events []TraceEvent `json:"events"`
	// DroppedEvents counts events beyond the maxTraceEvents bound (0 in any
	// sane run: only checkpoint storms get there).
	DroppedEvents int `json:"dropped_events,omitempty"`
	// QueueWaitMs is the span from the job's first queued event to its
	// admission; RunMs from running to the terminal event; TotalMs from the
	// first event to the last. Each is 0 until its closing event exists.
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	RunMs       float64 `json:"run_ms,omitempty"`
	TotalMs     float64 `json:"total_ms,omitempty"`
}

// addEventLocked appends a trace event at the job clock's current time; the
// caller holds j.mu.
func (j *Job) addEventLocked(event string, sweep int) {
	j.addEventAtLocked(event, j.now(), sweep)
}

// addEventAtLocked appends a trace event with an explicit timestamp (resume
// backdates the submitted event to the original admission); the caller holds
// j.mu.
func (j *Job) addEventAtLocked(event string, at time.Time, sweep int) {
	if len(j.trace) >= maxTraceEvents {
		j.traceDropped++
		return
	}
	j.trace = append(j.trace, TraceEvent{Event: event, At: at, Sweep: sweep})
}

// addEvent appends a trace event, taking the job lock.
func (j *Job) addEvent(event string, sweep int) {
	j.mu.Lock()
	j.addEventLocked(event, sweep)
	j.mu.Unlock()
}

// Trace snapshots the job's timeline and derives the stage durations.
func (j *Job) Trace() JobTrace {
	j.mu.Lock()
	defer j.mu.Unlock()
	tr := JobTrace{
		ID:            j.id,
		State:         j.state,
		Events:        append([]TraceEvent(nil), j.trace...),
		DroppedEvents: j.traceDropped,
	}
	var queuedAt, runningAt time.Time
	for _, ev := range tr.Events {
		switch ev.Event {
		case EventQueued:
			if queuedAt.IsZero() {
				queuedAt = ev.At
			}
		case EventAdmitted:
			if !queuedAt.IsZero() && tr.QueueWaitMs == 0 {
				tr.QueueWaitMs = msBetween(queuedAt, ev.At)
			}
		case EventRunning:
			if runningAt.IsZero() {
				runningAt = ev.At
			}
		case EventCompleted, EventFailed, EventCanceled:
			if !runningAt.IsZero() {
				tr.RunMs = msBetween(runningAt, ev.At)
			}
		}
	}
	if n := len(tr.Events); n > 1 {
		tr.TotalMs = msBetween(tr.Events[0].At, tr.Events[n-1].At)
	}
	return tr
}

// msBetween is the span between two event stamps in float milliseconds,
// clamped at zero (the monotonic server clock never runs backwards, but a
// backdated submitted stamp could precede the floor).
func msBetween(from, to time.Time) float64 {
	d := to.Sub(from)
	if d < 0 {
		return 0
	}
	return float64(d) / float64(time.Millisecond)
}
