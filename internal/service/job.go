package service

import (
	"context"
	"sync"
	"time"

	"tpuising/internal/service/encode"
)

// JobState is the lifecycle state of a job.
type JobState string

const (
	// StateQueued means the job waits for a worker (or, after a daemon
	// shutdown, for the next daemon to resume it from its checkpoint).
	StateQueued JobState = "queued"
	// StateRunning means a worker is sweeping the job's chain.
	StateRunning JobState = "running"
	// StateDone means the job finished and its Result is available.
	StateDone JobState = "done"
	// StateFailed means the job stopped with an error.
	StateFailed JobState = "failed"
	// StateCanceled means the job was canceled by a client.
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// maxSampleHistory is the default bound on the per-job sample history
// (Config.SampleHistory overrides it). Samples beyond it are counted but not
// retained — a stream reports the loss with one final truncation line
// (encode.Sample.Truncated) instead of silently ending short. Jobs that need
// every observation should raise SampleInterval so the run fits the bound.
const maxSampleHistory = 1 << 16

// Job is one scheduled simulation. All exported methods are safe for
// concurrent use.
type Job struct {
	id      string
	spec    JobSpec // normalized
	key     string  // spec.CacheKey()
	history int     // sample-history bound (Config.SampleHistory)

	ctx    context.Context
	cancel context.CancelCauseFunc
	now    func() time.Time // the server's clock, for finishedAt

	// admittedAt is the job's admission wall-clock stamp. It is persisted in
	// every checkpoint and restored on resume, so age accounting survives a
	// restart even when the host's wall clock does not move forward with it.
	// Written at construction/resume only, before the job is visible.
	admittedAt time.Time

	// enqueuedAt stamps when the job (re-)entered the queue — the opening
	// edge of the queue-wait histogram, read by the dequeue. Written at
	// construction, before the job is visible.
	enqueuedAt time.Time

	// resume carries the checkpoint the job restarts from (nil for fresh
	// jobs); it is read once by the worker.
	resume *checkpointState

	// held parks the job in the queue until Submit finishes writing its
	// durable intent record: a job must never run — let alone finish —
	// before the daemon could survive a restart with it. Guarded by the
	// SERVER's mu (it is scheduler state), not j.mu.
	held bool

	mu         sync.Mutex
	state      JobState
	cached     bool
	err        error
	result     *encode.Result
	finishedAt time.Time // terminal-transition timestamp, for Config.JobTTL
	// runStartedAt stamps the StateRunning transition — the opening edge of
	// the run-duration histogram (zero for jobs that never ran).
	runStartedAt time.Time
	sweepsDone   int
	samples      []encode.Sample
	dropped      int // samples beyond the history bound
	// trace is the job's lifecycle timeline (see trace.go), bounded at
	// maxTraceEvents with the overflow counted in traceDropped.
	trace        []TraceEvent
	traceDropped int
	// streamed is closed and replaced only when a stream gains something to
	// write: a sample append or a terminal transition. Progress updates
	// (setSweepsDone) deliberately do NOT touch it — waking every open
	// stream once per sweep with nothing new to send is the wake-storm the
	// service's stream_wakeups counter measures.
	streamed chan struct{}
	done     chan struct{} // closed when the state turns terminal
}

// JobStatus is the JSON status representation of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Cached bool     `json:"cached,omitempty"`
	Spec   JobSpec  `json:"spec"`
	// SweepsDone counts completed whole-lattice updates including burn-in
	// (per replica, for tempering jobs); TotalSweeps is the job's end.
	SweepsDone  int `json:"sweeps_done"`
	TotalSweeps int `json:"total_sweeps"`
	// Samples is the number of observations streamed so far.
	Samples int            `json:"samples"`
	Error   string         `json:"error,omitempty"`
	Result  *encode.Result `json:"result,omitempty"`
}

func newJob(id string, spec JobSpec, history int, now func() time.Time) *Job {
	ctx, cancel := context.WithCancelCause(context.Background())
	if history <= 0 {
		history = maxSampleHistory
	}
	if now == nil {
		now = time.Now
	}
	at := now()
	return &Job{
		id: id, spec: spec, key: spec.CacheKey(), history: history,
		ctx: ctx, cancel: cancel, now: now, admittedAt: at, enqueuedAt: at,
		state:    StateQueued,
		streamed: make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's normalized spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns a snapshot of the job's state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Cached: j.cached, Spec: j.spec,
		SweepsDone: j.sweepsDone, TotalSweeps: j.spec.totalSweeps(),
		Samples: len(j.samples) + j.dropped, Result: j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Result returns the job's result once done (nil, error otherwise).
func (j *Job) Result() (*encode.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// notifyStream wakes every stream watcher; the caller must hold j.mu. Only
// sample appends and terminal transitions call it — those are the only
// events that give a stream something new to write.
func (j *Job) notifyStream() {
	close(j.streamed)
	j.streamed = make(chan struct{})
}

// setState transitions the job, reporting whether the transition happened
// (false once the job is already terminal — callers use this to keep the
// server counters exact when a cancel races a completion). Terminal
// transitions close done exactly once and wake stream watchers so open
// streams end promptly.
func (j *Job) setState(state JobState, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state = state
	j.err = err
	if state == StateRunning {
		j.runStartedAt = j.now()
	}
	if ev, ok := stateEvent[state]; ok {
		j.addEventLocked(ev, 0)
	}
	if state.terminal() {
		j.finishedAt = j.now()
		j.notifyStream()
		close(j.done)
	}
	return true
}

// finish marks the job done with its result, reporting whether it was still
// live to finish.
func (j *Job) finish(result *encode.Result, cached bool) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state = StateDone
	j.result = result
	j.cached = cached
	j.addEventLocked(EventCompleted, 0)
	j.finishedAt = j.now()
	j.notifyStream()
	close(j.done)
	return true
}

// runStarted returns the StateRunning transition stamp (zero for a job that
// never reached a worker).
func (j *Job) runStarted() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.runStartedAt
}

// setSweepsDone publishes progress. It does not wake stream watchers: a
// sweep without a new sample gives a stream nothing to write, and waking
// every subscriber per sweep is O(subscribers x sweeps) spurious wakeups.
func (j *Job) setSweepsDone(n int) {
	j.mu.Lock()
	j.sweepsDone = n
	j.mu.Unlock()
}

// appendSample records one streamed observation.
func (j *Job) appendSample(s encode.Sample) {
	j.mu.Lock()
	if len(j.samples) < j.history {
		j.samples = append(j.samples, s)
	} else {
		j.dropped++
	}
	j.notifyStream()
	j.mu.Unlock()
}

// watch returns the sample history (append-only: the prefix a caller has
// already consumed stays valid), the count of samples dropped beyond the
// history bound, whether the job is terminal, and a channel closed at the
// next sample append or terminal transition. Stream writers loop on it;
// per-sweep progress updates never fire it.
func (j *Job) watch() (samples []encode.Sample, dropped int, terminal bool, updated <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.samples, j.dropped, j.state.terminal(), j.streamed
}
