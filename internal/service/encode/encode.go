// Package encode defines the machine-readable result and sample types shared
// by the isingd simulation service and `isingtpu -json`: one run, one
// Result; one streamed observation, one Sample NDJSON line. Keeping the CLI
// and the daemon on a single wire type means a script that parses one parses
// the other, and the service's result cache stores exactly what the CLI
// would have printed.
package encode

import (
	"encoding/json"
	"io"

	"tpuising/internal/ising"
	"tpuising/internal/tempering"
)

// Result is the machine-readable outcome of one simulation run.
//
// The final-state observables (Magnetization, AbsMagnetization, Energy,
// Step, Ops) are pure functions of the configuration and seed, so two runs
// of the same spec produce identical values — the service's cache and the
// checkpoint/resume determinism tests rely on this. ElapsedSec and
// FlipsPerNs are wall-clock measurements and are excluded from every
// determinism comparison.
type Result struct {
	// Backend is the canonical registry name of the engine.
	Backend string `json:"backend"`
	// Rows and Cols are the lattice dimensions.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Temperature is the simulation temperature in J/kB (the ladder minimum
	// for tempering runs).
	Temperature float64 `json:"temperature"`
	// Seed is the random seed of the run.
	Seed uint64 `json:"seed"`
	// Sweeps and BurnIn are the measured and discarded whole-lattice updates.
	Sweeps int `json:"sweeps"`
	BurnIn int `json:"burnin,omitempty"`
	// Step is the engine's colour-update counter after the run and Ops its
	// attempted spin updates.
	Step uint64 `json:"step"`
	Ops  int64  `json:"ops"`
	// Magnetization, AbsMagnetization and Energy are the final-state
	// observables per spin.
	Magnetization    float64 `json:"m"`
	AbsMagnetization float64 `json:"abs_m"`
	Energy           float64 `json:"e"`
	// MeanAbsMagnetization, MeanAbsMagnetizationErr, MeanEnergy and Samples
	// summarise the measured samples (absent when the run took none).
	MeanAbsMagnetization    float64 `json:"mean_abs_m,omitempty"`
	MeanAbsMagnetizationErr float64 `json:"mean_abs_m_err,omitempty"`
	MeanEnergy              float64 `json:"mean_e,omitempty"`
	Samples                 int     `json:"samples,omitempty"`
	// ElapsedSec and FlipsPerNs are wall-clock throughput measurements
	// (never part of determinism comparisons or the cache key).
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
	FlipsPerNs float64 `json:"flips_per_ns,omitempty"`
	// Replicas, RoundTrips and SwapAcceptance describe replica-exchange runs
	// (empty for single-chain runs).
	Replicas       []Replica `json:"replicas,omitempty"`
	RoundTrips     int       `json:"round_trips,omitempty"`
	SwapAcceptance float64   `json:"swap_acceptance,omitempty"`
	// Lanes holds the per-lane rows of a batched run (JobSpec.Replicas > 1 /
	// isingtpu -replicas): one row per independent chain, lane order. For
	// batched runs the top-level final-state observables are the means over
	// lanes, and the top-level sample means pool every lane's samples.
	Lanes []Lane `json:"lanes,omitempty"`
}

// Lane is the per-chain row of a batched (many-replica) Result.
type Lane struct {
	// Lane is the chain's index; Seed its derived chain seed
	// (ising.LaneSeed of the run seed).
	Lane int    `json:"lane"`
	Seed uint64 `json:"seed"`
	// Magnetization, AbsMagnetization and Energy are the lane's final-state
	// observables per spin.
	Magnetization    float64 `json:"m"`
	AbsMagnetization float64 `json:"abs_m"`
	Energy           float64 `json:"e"`
	// MeanAbsMagnetization, MeanAbsMagnetizationErr, MeanEnergy and Samples
	// summarise the lane's measured samples (absent when the run took none).
	MeanAbsMagnetization    float64 `json:"mean_abs_m,omitempty"`
	MeanAbsMagnetizationErr float64 `json:"mean_abs_m_err,omitempty"`
	MeanEnergy              float64 `json:"mean_e,omitempty"`
	Samples                 int     `json:"samples,omitempty"`
}

// Replica is the per-temperature row of a replica-exchange Result.
type Replica struct {
	Temperature         float64 `json:"temperature"`
	AbsMagnetization    float64 `json:"abs_m"`
	AbsMagnetizationErr float64 `json:"abs_m_err"`
	Binder              float64 `json:"binder"`
	Energy              float64 `json:"e"`
	AutocorrTime        float64 `json:"tau"`
	PairAcceptance      float64 `json:"pair_acceptance,omitempty"`
	Samples             int     `json:"samples"`
}

// Sample is one streamed observation of a running job: the NDJSON line type
// of the service's /stream endpoint.
type Sample struct {
	// Job is the job ID the sample belongs to (empty in single-run CLI use).
	Job string `json:"job,omitempty"`
	// Sweep is the number of measured whole-lattice updates completed when
	// the sample was taken (burn-in excluded).
	Sweep int `json:"sweep"`
	// Magnetization, AbsMagnetization and Energy are per-spin observables.
	Magnetization    float64 `json:"m"`
	AbsMagnetization float64 `json:"abs_m"`
	Energy           float64 `json:"e"`
	// Truncated, when non-zero, marks a bookkeeping line (not an
	// observation): the server did not retain this many samples beyond its
	// per-job history bound, and the stream is missing them. It is only ever
	// set on the final line of a stream.
	Truncated int `json:"truncated,omitempty"`
	// Lane is the chain index of a batched job's sample (omitted for lane 0
	// and for single-chain jobs). A batched job emits one sample line per
	// lane at every sample interval.
	Lane int `json:"lane,omitempty"`
}

// Observables fills r's final-state observable fields from the backend.
func Observables(r *Result, b ising.Backend) {
	m := b.Magnetization()
	r.Magnetization = m
	if m < 0 {
		m = -m
	}
	r.AbsMagnetization = m
	r.Energy = b.Energy()
	r.Step = b.Step()
	r.Ops = b.Counts().Ops
}

// BatchObservables fills r's final-state observable fields — top-level and
// per-lane rows — from a batched backend: the single conversion both
// `isingtpu -replicas` and the service's batched jobs go through, so the two
// emit identical lane rows. The top-level final-state observables are the
// means over lanes; seed is the run seed the lane seeds derive from.
func BatchObservables(r *Result, b ising.BatchBackend, seed uint64) {
	ms, es := b.Magnetizations(), b.Energies()
	r.Lanes = make([]Lane, b.Lanes())
	var mSum, absSum, eSum float64
	for lane := range r.Lanes {
		m := ms[lane]
		abs := m
		if abs < 0 {
			abs = -abs
		}
		r.Lanes[lane] = Lane{
			Lane: lane, Seed: ising.LaneSeed(seed, lane),
			Magnetization: m, AbsMagnetization: abs, Energy: es[lane],
		}
		mSum += m
		absSum += abs
		eSum += es[lane]
	}
	n := float64(b.Lanes())
	r.Magnetization = mSum / n
	r.AbsMagnetization = absSum / n
	r.Energy = eSum / n
	r.Step = b.Step()
	r.Ops = b.Counts().Ops
}

// Tempering fills r's replica-exchange fields from a tempering report — the
// single conversion both `isingtpu -json -temper` and the service's
// tempering jobs go through, so the two emit identical replica rows.
func Tempering(r *Result, rep tempering.Report) {
	r.RoundTrips = rep.RoundTrips
	r.SwapAcceptance = rep.Acceptance()
	r.Samples = rep.Samples
	r.Replicas = make([]Replica, 0, len(rep.Replicas))
	for _, rr := range rep.Replicas {
		r.Replicas = append(r.Replicas, Replica{
			Temperature:         rr.Temperature,
			AbsMagnetization:    rr.AbsMagnetization,
			AbsMagnetizationErr: rr.AbsMagnetizationErr,
			Binder:              rr.Binder,
			Energy:              rr.Energy,
			AutocorrTime:        rr.AutocorrTime,
			PairAcceptance:      rr.PairAcceptance,
			Samples:             rr.Samples,
		})
	}
}

// WriteLine writes v as one NDJSON line: its JSON encoding followed by a
// newline.
func WriteLine(w io.Writer, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}
