package encode

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
)

func TestObservables(t *testing.T) {
	s := checkerboard.NewSampler(ising.NewLattice(8, 8), 2.5, 3)
	s.Run(5)
	var r Result
	Observables(&r, s)
	if r.Step != 10 || r.Magnetization != s.Magnetization() || r.Energy != s.Energy() {
		t.Fatalf("Observables: %+v", r)
	}
	if r.AbsMagnetization < 0 || r.AbsMagnetization != abs(s.Magnetization()) {
		t.Fatalf("AbsMagnetization = %v for m = %v", r.AbsMagnetization, s.Magnetization())
	}
	if r.Ops != s.Counts().Ops {
		t.Fatalf("Ops = %d, want %d", r.Ops, s.Counts().Ops)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestWriteLineNDJSON checks that WriteLine emits exactly one parseable JSON
// line per value — the NDJSON framing both the CLI and the daemon rely on.
func TestWriteLineNDJSON(t *testing.T) {
	var buf bytes.Buffer
	for i := 1; i <= 3; i++ {
		if err := WriteLine(&buf, Sample{Job: "job-000001", Sweep: i * 10, Magnetization: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var s Sample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		if s.Sweep != (i+1)*10 || s.Job != "job-000001" {
			t.Fatalf("line %d decoded to %+v", i, s)
		}
	}
}

// TestResultJSONRoundTrip pins the wire format: wall-clock fields are
// omitempty (so deterministic comparisons can zero them and compare
// encodings), and a single-chain result carries no replica rows.
func TestResultJSONRoundTrip(t *testing.T) {
	r := Result{Backend: "multispin", Rows: 16, Cols: 64, Temperature: 2.4,
		Seed: 7, Sweeps: 100, Step: 200, Ops: 102400,
		Magnetization: -0.25, AbsMagnetization: 0.25, Energy: -1.1}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"elapsed_sec", "flips_per_ns", "replicas", "mean_abs_m", "burnin"} {
		if bytes.Contains(blob, []byte(absent)) {
			t.Fatalf("zero field %q serialized: %s", absent, blob)
		}
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("round trip changed the encoding:\n%s\n%s", blob, blob2)
	}
}
