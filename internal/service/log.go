package service

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// noopHandler is the discard slog handler the server falls back to when
// Config.Logger is nil, so every log call site stays unconditional.
// (slog.DiscardHandler arrived after this module's Go baseline.)
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }

// nopLogger returns a logger that drops everything.
func nopLogger() *slog.Logger { return slog.New(noopHandler{}) }

// jobLogger scopes the server's logger to one job: every line carries the
// job ID, client, backend and priority, so `grep job-000123` (or a json
// field match) reconstructs the job's story from the daemon log.
func (s *Server) jobLogger(j *Job) *slog.Logger {
	return s.logger.With(
		"job", j.id,
		"client", j.spec.Client,
		"backend", j.spec.Backend,
		"priority", j.spec.Priority,
	)
}

// statusWriter captures the response status for the request log. It forwards
// Flush so NDJSON streams keep flushing through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RequestLog wraps an HTTP handler with a structured request log: one line
// per request with method, path, status, duration and the submitting client
// (the X-Client-ID header, when the caller sets one). cmd/isingd wraps the
// public mux with it; the debug listener stays unwrapped.
func RequestLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(start)) / float64(time.Millisecond),
		}
		if c := r.Header.Get("X-Client-ID"); c != "" {
			attrs = append(attrs, "client", c)
		}
		logger.Info("http request", attrs...)
	})
}
