package service

// The trace timeline under a fake clock: every event stamp comes from
// Config.Now, and checkpoint I/O is the only thing that moves time (one
// second per write, via a CheckpointFS wrapper), so the full timeline of a
// job — and every derived stage duration — is asserted EXACTLY, not within
// tolerances. This is the determinism contract of the trace subsystem: what
// the injectable clock records is what /v1/jobs/{id}/trace replays.

import (
	"testing"
	"time"
)

// advanceFS delegates to the real filesystem but advances the fake clock one
// second per checkpoint write, turning checkpoint I/O into deterministic
// simulated time.
type advanceFS struct {
	clock *fakeClock
}

func (f advanceFS) WriteFile(path string, data []byte) error {
	f.clock.Advance(time.Second)
	return osFS{}.WriteFile(path, data)
}
func (f advanceFS) ReadFile(path string) ([]byte, error) { return osFS{}.ReadFile(path) }
func (f advanceFS) Rename(o, n string) error             { return osFS{}.Rename(o, n) }
func (f advanceFS) ReadDir(dir string) ([]string, error) { return osFS{}.ReadDir(dir) }
func (f advanceFS) MkdirAll(dir string) error            { return osFS{}.MkdirAll(dir) }
func (f advanceFS) Remove(path string) error             { return osFS{}.Remove(path) }
func (f advanceFS) SyncDir(dir string) error             { return osFS{}.SyncDir(dir) }

// wantEvent is one expected timeline entry: the event, its exact fake-clock
// offset from t0 in seconds, and the sweep annotation.
type wantEvent struct {
	event string
	atSec int
	sweep int
}

func assertTrace(t *testing.T, tr JobTrace, t0 time.Time, want []wantEvent) {
	t.Helper()
	if len(tr.Events) != len(want) {
		t.Fatalf("job %s: %d events, want %d: %+v", tr.ID, len(tr.Events), len(want), tr.Events)
	}
	for i, w := range want {
		got := tr.Events[i]
		at := t0.Add(time.Duration(w.atSec) * time.Second)
		if got.Event != w.event || !got.At.Equal(at) || got.Sweep != w.sweep {
			t.Fatalf("job %s event %d: got {%s at=+%ds sweep=%d}, want {%s at=+%ds sweep=%d}",
				tr.ID, i, got.Event, int(got.At.Sub(t0)/time.Second), got.Sweep,
				w.event, w.atSec, w.sweep)
		}
	}
	if tr.DroppedEvents != 0 {
		t.Fatalf("job %s: %d dropped events", tr.ID, tr.DroppedEvents)
	}
}

// TestTraceTimelineFakeClock runs two jobs through a one-worker server on a
// fake clock and asserts both full timelines and the aggregate stage-latency
// summary to the millisecond.
//
// Choreography (t0 = fake epoch; every checkpoint write advances 1s):
//
//	t0  job A submitted+queued; its intent record write moves the clock to t1
//	t1  the worker admits A and parks in the test hook (queue wait: 1s)
//	t1  job B submitted+queued; its intent write moves the clock to t2
//	t7  the test advances the clock 5s and releases the hook
//	t7  A runs and completes instantly (no checkpoints; run: 0s)
//	t7  the worker admits B (queue wait: 6s); B checkpoints at sweeps 2 and 4,
//	    each write advancing 1s, and completes at t9 (run: 2s)
func TestTraceTimelineFakeClock(t *testing.T) {
	clock := newFakeClock()
	t0 := clock.Now()
	dir := t.TempDir()
	srv, errs := New(Config{
		Workers:       1,
		CheckpointDir: dir,
		CheckpointFS:  advanceFS{clock: clock},
		Now:           clock.Now,
	})
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	defer srv.Close()

	entered := make(chan string, 8)
	gate := make(chan struct{})
	srv.testHookRun = func(j *Job) {
		entered <- j.ID()
		<-gate
	}

	a, err := srv.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := <-entered; got != a.ID() {
		t.Fatalf("worker picked %s first, want %s", got, a.ID())
	}

	specB := JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 6, Seed: 2, CheckpointInterval: 2}
	b, err := srv.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}

	clock.Advance(5 * time.Second)
	close(gate)
	waitDone(t, a)
	waitDone(t, b)
	<-entered // B's hook entry

	trA := a.Trace()
	assertTrace(t, trA, t0, []wantEvent{
		{EventSubmitted, 0, 0},
		{EventQueued, 0, 0},
		{EventAdmitted, 1, 0},
		{EventRunning, 7, 0},
		{EventCompleted, 7, 0},
	})
	if trA.QueueWaitMs != 1000 || trA.RunMs != 0 || trA.TotalMs != 7000 {
		t.Fatalf("job A durations: queue_wait=%v run=%v total=%v, want 1000/0/7000",
			trA.QueueWaitMs, trA.RunMs, trA.TotalMs)
	}

	trB := b.Trace()
	assertTrace(t, trB, t0, []wantEvent{
		{EventSubmitted, 1, 0},
		{EventQueued, 1, 0},
		{EventAdmitted, 7, 0},
		{EventRunning, 7, 0},
		{EventCheckpointed, 8, 2},
		{EventCheckpointed, 9, 4},
		{EventCompleted, 9, 0},
	})
	if trB.QueueWaitMs != 6000 || trB.RunMs != 2000 || trB.TotalMs != 8000 {
		t.Fatalf("job B durations: queue_wait=%v run=%v total=%v, want 6000/2000/8000",
			trB.QueueWaitMs, trB.RunMs, trB.TotalMs)
	}

	// The aggregate stage summary in Stats agrees: two queue waits (1s and
	// 6s), two runs (0s and 2s), four checkpoint writes (two intent records,
	// two snapshots) of exactly one fake second each.
	lat := srv.Stats().Latency
	if lat.QueueWait.Count != 2 || lat.QueueWait.MaxMs != 6000 {
		t.Fatalf("queue-wait summary %+v, want count 2 max 6000ms", lat.QueueWait)
	}
	if lat.Run.Count != 2 || lat.Run.MaxMs != 2000 {
		t.Fatalf("run summary %+v, want count 2 max 2000ms", lat.Run)
	}
	if lat.CheckpointWrite.Count != 4 || lat.CheckpointWrite.MaxMs != 1000 {
		t.Fatalf("checkpoint-write summary %+v, want count 4 max 1000ms", lat.CheckpointWrite)
	}
}

// TestTraceCachedAndResumed covers the two non-linear timelines: a cache-hit
// submission records submitted → cached → completed without ever queuing, and
// a job resumed from a checkpoint opens its trace with the ORIGINAL admission
// stamp followed by a resumed event carrying the checkpointed progress.
func TestTraceCachedAndResumed(t *testing.T) {
	clock := newFakeClock()
	t0 := clock.Now()
	srv, _ := New(Config{Workers: 1, Now: clock.Now})
	j, err := srv.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	clock.Advance(3 * time.Second)
	hit, err := srv.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, hit)
	tr := hit.Trace()
	assertTrace(t, tr, t0, []wantEvent{
		{EventSubmitted, 3, 0},
		{EventCached, 3, 0},
		{EventCompleted, 3, 0},
	})
	if tr.QueueWaitMs != 0 || tr.RunMs != 0 {
		t.Fatalf("cache hit recorded stage durations: %+v", tr)
	}
	srv.Close()

	// Resume: shut a daemon down with a job parked on a worker (the hook
	// blocks on the job context, so Close interrupts it before a single
	// sweep), then restart over the same checkpoint directory an hour of
	// fake time later. The resumed trace must open with the ORIGINAL
	// admission stamp, then record resumed (at the intent record's zero
	// progress) and a fresh queued — every stamp exact.
	dir := t.TempDir()
	clock2 := newFakeClock()
	srv1, _ := New(Config{Workers: 1, CheckpointDir: dir, Now: clock2.Now})
	entered := make(chan string, 2)
	srv1.testHookRun = func(j *Job) { entered <- j.ID(); <-j.ctx.Done() }
	long, err := srv1.Submit(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	srv1.Close()

	clock3 := newFakeClock()
	clock3.Advance(time.Hour)
	t1h := clock3.Now()
	srv2, errs := New(Config{Workers: 1, CheckpointDir: dir, Now: clock3.Now})
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	defer srv2.Close()
	resumed, err := srv2.Get(long.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, resumed)
	tr = resumed.Trace()
	want := []struct {
		event string
		at    time.Time
	}{
		{EventSubmitted, t0}, // the original admission, an hour before this daemon
		{EventResumed, t1h},
		{EventQueued, t1h},
		{EventAdmitted, t1h},
		{EventRunning, t1h},
		{EventCompleted, t1h},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("resumed trace has %d events, want %d: %+v", len(tr.Events), len(want), tr.Events)
	}
	for i, w := range want {
		got := tr.Events[i]
		if got.Event != w.event || !got.At.Equal(w.at) {
			t.Fatalf("resumed trace event %d = {%s %v}, want {%s %v}", i, got.Event, got.At, w.event, w.at)
		}
	}
	if tr.TotalMs != 3600_000 {
		t.Fatalf("resumed trace total %vms, want the hour across the restart", tr.TotalMs)
	}
}

// TestTraceBound floods one job's timeline past maxTraceEvents and asserts
// the bound holds with the overflow counted, not silently dropped.
func TestTraceBound(t *testing.T) {
	j := newJob("job-000001", JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: 1}, 0, nil)
	for i := 0; i < maxTraceEvents+44; i++ {
		j.addEvent(EventCheckpointed, i)
	}
	tr := j.Trace()
	if len(tr.Events) != maxTraceEvents {
		t.Fatalf("trace grew to %d events, bound is %d", len(tr.Events), maxTraceEvents)
	}
	if tr.DroppedEvents != 44 {
		t.Fatalf("dropped %d events, want 44", tr.DroppedEvents)
	}
}
