package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
)

// fuzzCheckpointBytes builds a genuine v2 checkpoint image (real engine
// snapshot, valid checksum header) for the fuzz seed corpus.
func fuzzCheckpointBytes(t interface{ Fatal(...any) }) []byte {
	spec, err := (JobSpec{Backend: "checkerboard", Rows: 8, Sweeps: 40, Temperature: 2.5, Seed: 3}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := backend.New(spec.Backend, backendConfig(spec, spec.Temperature, spec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := eng.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := encodeCheckpoint(&checkpointState{
		Job: "job-000001", Spec: spec, DoneSweeps: 0,
		Snapshot: ising.EncodeSnapshot(snap), AdmittedAt: 1_700_000_000_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// FuzzLoadCheckpoint holds the checkpoint parser — the code that fronts
// every daemon restart — to "error or valid, never panic" on arbitrary file
// bytes: v2 envelopes with mangled headers, torn payloads, flipped bits,
// legacy v1 JSON, and garbage. A successful parse must satisfy the
// invariants the scheduler relies on.
func FuzzLoadCheckpoint(f *testing.F) {
	for _, seed := range fuzzLoadCheckpointSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cs, err := parseCheckpoint(data, "job-000001.ckpt")
		if err != nil {
			return
		}
		if cs.Job != "job-000001" {
			t.Fatalf("parser accepted a checkpoint naming job %q from a file named job-000001.ckpt", cs.Job)
		}
		if cs.DoneSweeps < 0 || cs.DoneSweeps > cs.Spec.totalSweeps() {
			t.Fatalf("parser accepted out-of-range done_sweeps %d", cs.DoneSweeps)
		}
		if cs.DoneSweeps != 0 && len(cs.Snapshot) == 0 {
			t.Fatal("parser accepted progress without a snapshot")
		}
		if len(cs.Snapshot) > 0 {
			if _, err := ising.DecodeSnapshot(cs.Snapshot); err != nil {
				t.Fatalf("parser accepted an undecodable snapshot: %v", err)
			}
		}
		if _, err := cs.Spec.Normalize(); err != nil {
			t.Fatalf("parser accepted a spec that fails normalization: %v", err)
		}
	})
}

// fuzzLoadCheckpointSeeds is the committed seed corpus for FuzzLoadCheckpoint
// (mirrored into testdata/fuzz by TestWriteFuzzCorpus): a genuine v2 file,
// its torn and doubled variants, a legacy v1 intent record, and headers
// forged to claim absurd or unparseable lengths.
func fuzzLoadCheckpointSeeds(t interface{ Fatal(...any) }) [][]byte {
	valid := fuzzCheckpointBytes(t)
	return [][]byte{
		valid,
		valid[:len(valid)/2],
		append(append([]byte(nil), valid...), valid...),
		[]byte(`{"version":1,"job":"job-000001","spec":{"backend":"checkerboard","rows":4,"sweeps":2}}`),
		[]byte("ISCKPT2 crc32c=deadbeef len=999999999\n{}"),
		[]byte("ISCKPT2 crc32c=zz len=-1\n{}"),
		[]byte("ISCKPT2 "),
		[]byte("{"),
	}
}

// fuzzJobSpecSeeds is the committed seed corpus for FuzzJobSpecNormalize:
// one valid spec per backend family plus shapes that probe each rejection
// branch of Normalize.
func fuzzJobSpecSeeds() [][]byte {
	return [][]byte{
		[]byte(`{"backend":"checkerboard","rows":8,"sweeps":4}`),
		[]byte(`{"backend":"multispin","rows":16,"cols":64,"sweeps":10,"replicas":4,"workers":1}`),
		[]byte(`{"backend":"checkerboard","rows":8,"sweeps":4,"temperatures":[2.0,2.3,2.6],"swap_interval":5}`),
		[]byte(`{"backend":"checkerboard","rows":-1,"sweeps":0,"priority":99}`),
		[]byte(`{"backend":"","rows":1e9,"sweeps":1,"temperature":-3}`),
	}
}

// TestWriteFuzzCorpus regenerates the committed seed corpora under
// testdata/fuzz when run with WRITE_FUZZ_CORPUS=1; otherwise it verifies the
// committed files are exactly the in-code seeds, so the two can never drift.
func TestWriteFuzzCorpus(t *testing.T) {
	corpora := map[string][][]byte{
		"FuzzLoadCheckpoint":   fuzzLoadCheckpointSeeds(t),
		"FuzzJobSpecNormalize": fuzzJobSpecSeeds(),
	}
	for name, seeds := range corpora {
		checkFuzzCorpus(t, filepath.Join("testdata", "fuzz", name), seeds)
	}
}

// checkFuzzCorpus writes (under WRITE_FUZZ_CORPUS=1) or verifies one corpus
// directory in the `go test fuzz v1` file format.
func checkFuzzCorpus(t *testing.T, dir string, seeds [][]byte) {
	t.Helper()
	write := os.Getenv("WRITE_FUZZ_CORPUS") != ""
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range seeds {
		path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if write {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing committed corpus entry (regenerate with WRITE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("%s drifted from the in-code seed (regenerate with WRITE_FUZZ_CORPUS=1)", path)
		}
	}
}

// FuzzJobSpecNormalize holds spec validation — the public POST /v1/jobs
// parsing surface — to "error or valid, never panic" on arbitrary JSON, and
// pins normalization as a fixed point: a spec that passes must pass again
// unchanged, with a stable cache key (otherwise resubmitting a normalized
// spec could miss its own cache entry).
func FuzzJobSpecNormalize(f *testing.F) {
	for _, seed := range fuzzJobSpecSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		if json.Unmarshal(data, &spec) != nil {
			return
		}
		norm, err := spec.Normalize()
		if err != nil {
			return
		}
		key := norm.CacheKey()
		again, err := norm.Normalize()
		if err != nil {
			t.Fatalf("normalized spec %+v failed re-normalization: %v", norm, err)
		}
		if again.CacheKey() != key {
			t.Fatalf("normalization is not a fixed point: key %q became %q", key, again.CacheKey())
		}
		if norm.Sweeps <= 0 || norm.Rows <= 0 || norm.Cols <= 0 || norm.SampleInterval <= 0 {
			t.Fatalf("normalization let an invalid shape through: %+v", norm)
		}
	})
}
