package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/service/encode"
	"tpuising/internal/stats"
	"tpuising/internal/sweep"
	"tpuising/internal/tempering"
)

// waitDone blocks until the job is terminal or the test times out.
func waitDone(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish: %+v", j.ID(), j.Status())
	}
	return j.Status()
}

func TestJobSpecNormalize(t *testing.T) {
	spec, err := JobSpec{Backend: "CPU", Rows: 32, Sweeps: 10}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Backend != "checkerboard" || spec.Cols != 32 || spec.SampleInterval != 1 {
		t.Fatalf("normalized spec: %+v", spec)
	}
	if spec.Temperature != ising.CriticalTemperature() {
		t.Fatalf("temperature default = %g, want Tc", spec.Temperature)
	}
	bad := []JobSpec{
		{Backend: "checkerboard", Rows: 0, Sweeps: 1},
		{Backend: "checkerboard", Rows: 8, Sweeps: 0},
		{Backend: "checkerboard", Rows: 8, Sweeps: 1, BurnIn: -1},
		{Backend: "checkerboard", Rows: 8, Sweeps: 1, Temperature: -2},
		{Backend: "checkerboard", Rows: 8, Sweeps: 1, CheckpointInterval: -1},
		{Backend: "checkerboard", Rows: 8, Sweeps: 1, SwapInterval: 5},
		{Backend: "checkerboard", Rows: 8, Sweeps: 1, Temperatures: []float64{2.0}},
		{Backend: "checkerboard", Rows: 8, Sweeps: 1, Temperatures: []float64{2.4, 2.0}},
		{Backend: "checkerboard", Rows: 8, Sweeps: 1, Temperatures: []float64{2.0, 2.4}, Temperature: 2.2},
		{Backend: "checkerboard", Rows: 8, Sweeps: 1, Temperatures: []float64{2.0, 2.4}, CheckpointInterval: 5},
	}
	for i, s := range bad {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("bad spec %d (%+v) passed validation", i, s)
		}
	}
}

// TestSpecErrorListsRegistry checks the shared-helper contract: a job spec
// with an unknown backend produces exactly the registry listing the CLI's
// -backend flag error produces.
func TestSpecErrorListsRegistry(t *testing.T) {
	_, err := JobSpec{Backend: "nope", Rows: 8, Sweeps: 1}.Normalize()
	if err == nil {
		t.Fatal("unknown backend passed validation")
	}
	if !strings.Contains(err.Error(), backend.List()) {
		t.Fatalf("spec error %q does not list the registry %q", err, backend.List())
	}
	_, cliErr := backend.Canonical("nope")
	if err.Error() != cliErr.Error() {
		t.Fatalf("spec error %q differs from the -backend flag error %q", err, cliErr)
	}
}

func TestCacheKeyIdentity(t *testing.T) {
	base := JobSpec{Backend: "multispin", Rows: 16, Cols: 64, Temperature: 2.4,
		Sweeps: 100, BurnIn: 10, Seed: 7, SampleInterval: 5}
	norm := func(s JobSpec) JobSpec {
		t.Helper()
		n, err := s.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	key := norm(base).CacheKey()
	// Workers and CheckpointInterval never change a result: same key.
	withWorkers := base
	withWorkers.Workers = 8
	withWorkers.CheckpointInterval = 50
	if norm(withWorkers).CacheKey() != key {
		t.Fatal("workers/checkpoint_interval must not change the cache key")
	}
	// Physics fields do.
	for name, mut := range map[string]func(*JobSpec){
		"seed":        func(s *JobSpec) { s.Seed = 8 },
		"temperature": func(s *JobSpec) { s.Temperature = 2.5 },
		"sweeps":      func(s *JobSpec) { s.Sweeps = 101 },
		"burnin":      func(s *JobSpec) { s.BurnIn = 11 },
		"sample":      func(s *JobSpec) { s.SampleInterval = 10 },
		"rows":        func(s *JobSpec) { s.Rows = 32 },
		"hot":         func(s *JobSpec) { s.Hot = true },
		"backend":     func(s *JobSpec) { s.Backend = "checkerboard"; s.Cols = 16 },
	} {
		changed := base
		mut(&changed)
		if norm(changed).CacheKey() == key {
			t.Errorf("changing %s must change the cache key", name)
		}
	}
}

func TestSubmitRunsJobAndStreamsSamples(t *testing.T) {
	srv, _ := New(Config{Workers: 2})
	defer srv.Close()
	spec := JobSpec{Backend: "checkerboard", Rows: 16, Sweeps: 40, BurnIn: 4,
		Temperature: 2.5, Seed: 11, SampleInterval: 4}
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job did not complete: %+v", st)
	}
	samples, _, _, _ := j.watch()
	if len(samples) != 10 {
		t.Fatalf("streamed %d samples, want 10", len(samples))
	}
	var meanAbs, meanE float64
	for i, sm := range samples {
		if sm.Sweep != (i+1)*4 {
			t.Fatalf("sample %d at sweep %d, want %d", i, sm.Sweep, (i+1)*4)
		}
		if sm.Job != j.ID() {
			t.Fatalf("sample carries job %q, want %q", sm.Job, j.ID())
		}
		meanAbs += sm.AbsMagnetization
		meanE += sm.Energy
	}
	r := st.Result
	if got, want := r.MeanAbsMagnetization, meanAbs/10; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean |m| = %v, recomputed %v", got, want)
	}
	if got, want := r.MeanEnergy, meanE/10; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean E = %v, recomputed %v", got, want)
	}
	if r.Samples != 10 || r.Sweeps != 40 || r.BurnIn != 4 || r.Backend != "checkerboard" {
		t.Fatalf("result header: %+v", r)
	}
	if r.Step != uint64(2*(40+4)) {
		t.Fatalf("result step %d, want %d", r.Step, 2*(40+4))
	}
	if st.SweepsDone != 44 || st.TotalSweeps != 44 {
		t.Fatalf("progress: %+v", st)
	}
}

// TestCacheHitSkipsBackend is the cache acceptance test: resubmitting an
// identical spec returns the stored result without stepping any backend
// (asserted via the server's sweep counter), and a changed seed misses.
func TestCacheHitSkipsBackend(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	spec := JobSpec{Backend: "multispin", Rows: 8, Cols: 64, Sweeps: 30,
		Temperature: 2.2, Seed: 5, SampleInterval: 3}
	first, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitDone(t, first)
	ranSweeps := srv.Stats().SweepsRun
	if ranSweeps != 30 {
		t.Fatalf("first job ran %d sweeps, want 30", ranSweeps)
	}

	// Identical spec, different workers/checkpoint knobs: cache hit.
	dup := spec
	dup.Workers = 4
	second, err := srv.Submit(dup)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitDone(t, second)
	if !st2.Cached {
		t.Fatalf("identical resubmission was not served from cache: %+v", st2)
	}
	if got := srv.Stats(); got.SweepsRun != ranSweeps {
		t.Fatalf("cache hit stepped a backend: sweeps %d -> %d", ranSweeps, got.SweepsRun)
	}
	if srv.Stats().JobsCached != 1 {
		t.Fatalf("jobs_cached = %d, want 1", srv.Stats().JobsCached)
	}
	b1, _ := json.Marshal(st1.Result)
	b2, _ := json.Marshal(st2.Result)
	if string(b1) != string(b2) {
		t.Fatalf("cached result differs:\n%s\n%s", b1, b2)
	}

	// A changed seed is a different simulation: cache miss, backend runs.
	miss := spec
	miss.Seed = 6
	third, err := srv.Submit(miss)
	if err != nil {
		t.Fatal(err)
	}
	st3 := waitDone(t, third)
	if st3.Cached {
		t.Fatal("changed seed must miss the cache")
	}
	if got := srv.Stats().SweepsRun; got != ranSweeps+30 {
		t.Fatalf("cache miss ran %d sweeps total, want %d", got, ranSweeps+30)
	}
}

func TestCacheEviction(t *testing.T) {
	srv, _ := New(Config{Workers: 1, CacheSize: 2})
	defer srv.Close()
	spec := JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: 1}
	for seed := uint64(1); seed <= 3; seed++ {
		s := spec
		s.Seed = seed
		j, err := srv.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	if got := srv.Stats().CacheEntries; got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	// Seed 1 was evicted (oldest); seed 3 is still cached.
	oldest := spec
	j, _ := srv.Submit(oldest)
	if st := waitDone(t, j); st.Cached {
		t.Fatal("evicted entry served from cache")
	}
	newest := spec
	newest.Seed = 3
	j, _ = srv.Submit(newest)
	if st := waitDone(t, j); !st.Cached {
		t.Fatal("retained entry not served from cache")
	}
}

// TestCheckpointResumeByteIdentical is the checkpoint/resume acceptance
// test, run for checkerboard, multispin and both mesh-sharded engines: a job
// interrupted by a daemon shutdown and resumed by a fresh server over the
// same checkpoint directory produces a result and a sample stream
// byte-identical to an uninterrupted run of the same spec.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	specs := map[string]JobSpec{
		"checkerboard": {Backend: "checkerboard", Rows: 32, Cols: 32, Sweeps: 3000,
			BurnIn: 100, Temperature: 2.3, Seed: 42, SampleInterval: 50},
		"multispin": {Backend: "multispin", Rows: 64, Cols: 128, Sweeps: 20000,
			BurnIn: 500, Temperature: 2.3, Seed: 42, SampleInterval: 500, Workers: 1},
		"sharded": {Backend: "sharded", Rows: 64, Cols: 128, GridR: 2, GridC: 2, Sweeps: 8000,
			BurnIn: 200, Temperature: 2.3, Seed: 42, SampleInterval: 200},
		"sharded-ensemble": {Backend: "sharded-ensemble", Rows: 64, Cols: 128, GridR: 2, GridC: 2,
			Sweeps: 8000, BurnIn: 200, Temperature: 2.3, Seed: 42, SampleInterval: 200},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			// Reference: uninterrupted run (no checkpointing at all).
			ref, _ := New(Config{Workers: 1})
			refJob, err := ref.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			refStatus := waitDone(t, refJob)
			refSamples, _, _, _ := refJob.watch()
			ref.Close()

			// Interrupted run: shut the daemon down mid-job, after at least
			// one periodic checkpoint has been written.
			dir := t.TempDir()
			srvA, _ := New(Config{Workers: 1, CheckpointDir: dir, CheckpointInterval: 256})
			jobA, err := srvA.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			ckptPath := srvA.checkpointPath(jobA.ID())
			deadline := time.Now().Add(55 * time.Second)
			for {
				if _, err := os.Stat(ckptPath); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("no checkpoint appeared: %+v", jobA.Status())
				}
				time.Sleep(time.Millisecond)
			}
			srvA.Close()
			stA := jobA.Status()
			if stA.State != StateQueued {
				t.Fatalf("interrupted job state %q (done before shutdown? raise Sweeps): %+v", stA.State, stA)
			}
			samplesA, _, _, _ := jobA.watch()

			// Fresh daemon over the same directory: the job resumes by ID
			// and finishes.
			srvB, skipped := New(Config{Workers: 1, CheckpointDir: dir, CheckpointInterval: 256})
			defer srvB.Close()
			if len(skipped) != 0 {
				t.Fatalf("resume skipped checkpoints: %v", skipped)
			}
			if srvB.Stats().JobsResumed != 1 {
				t.Fatalf("jobs_resumed = %d, want 1", srvB.Stats().JobsResumed)
			}
			jobB, err := srvB.Get(jobA.ID())
			if err != nil {
				t.Fatalf("resumed job lost its ID: %v", err)
			}
			stB := waitDone(t, jobB)
			if stB.State != StateDone {
				t.Fatalf("resumed job: %+v", stB)
			}
			samplesB, _, _, _ := jobB.watch()

			// Observables must be byte-identical once the wall-clock fields
			// (the only nondeterministic ones) are cleared.
			canon := func(r encode.Result) string {
				r.ElapsedSec, r.FlipsPerNs = 0, 0
				blob, err := json.Marshal(r)
				if err != nil {
					t.Fatal(err)
				}
				return string(blob)
			}
			if canon(*refStatus.Result) != canon(*stB.Result) {
				t.Fatalf("resumed result differs from uninterrupted:\n%s\n%s",
					canon(*refStatus.Result), canon(*stB.Result))
			}
			// The interrupted stream's samples plus the resumed stream's
			// samples must be exactly the uninterrupted stream.
			joined := append(append([]encode.Sample(nil), samplesA...), samplesB...)
			if len(joined) != len(refSamples) {
				t.Fatalf("joined stream has %d samples, uninterrupted %d (split %d+%d)",
					len(joined), len(refSamples), len(samplesA), len(samplesB))
			}
			for i := range joined {
				got, want := joined[i], refSamples[i]
				got.Job, want.Job = "", ""
				if got != want {
					t.Fatalf("sample %d: resumed %+v, uninterrupted %+v", i, got, want)
				}
			}
			// Completion removes the checkpoint: nothing left to resume.
			if _, err := os.Stat(ckptPath); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("checkpoint survived completion: %v", err)
			}
		})
	}
}

func TestCancelRemovesCheckpointAndStops(t *testing.T) {
	dir := t.TempDir()
	srv, _ := New(Config{Workers: 1, CheckpointDir: dir, CheckpointInterval: 256})
	defer srv.Close()
	spec := JobSpec{Backend: "checkerboard", Rows: 48, Cols: 48, Sweeps: 500000,
		Temperature: 2.3, Seed: 1, SampleInterval: 100}
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := srv.checkpointPath(j.ID())
	deadline := time.Now().Add(55 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared: %+v", j.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateCanceled {
		t.Fatalf("state %q, want canceled", st.State)
	}
	// The worker has noticed the cancel once another submit can run.
	j2, err := srv.Submit(JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if _, err := os.Stat(ckptPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("canceled job left a checkpoint: %v", err)
	}
	if srv.Stats().JobsCanceled != 1 {
		t.Fatalf("jobs_canceled = %d, want 1", srv.Stats().JobsCanceled)
	}
}

func TestQueueFullRejects(t *testing.T) {
	srv, _ := New(Config{Workers: 1, QueueDepth: 1})
	defer srv.Close()
	long := JobSpec{Backend: "checkerboard", Rows: 64, Cols: 64, Sweeps: 500000,
		Temperature: 2.3, SampleInterval: 1000}
	var ok int
	var sawFull bool
	for seed := uint64(1); seed <= 4; seed++ {
		s := long
		s.Seed = seed
		_, err := srv.Submit(s)
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrQueueFull):
			sawFull = true
		default:
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatalf("submitting 4 long jobs to a depth-1 queue never reported ErrQueueFull (%d accepted)", ok)
	}
}

// TestCheckpointRequestOnUnsupportedBackendFails checks the explicit-error
// path: a spec that asks for checkpoints on a non-snapshottable engine fails
// with a clear message instead of silently losing durability.
func TestCheckpointRequestOnUnsupportedBackendFails(t *testing.T) {
	dir := t.TempDir()
	srv, _ := New(Config{Workers: 1, CheckpointDir: dir})
	defer srv.Close()
	j, err := srv.Submit(JobSpec{Backend: "tpu", Rows: 16, Sweeps: 4, CheckpointInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateFailed || !strings.Contains(st.Error, "Snapshotter") {
		t.Fatalf("expected a snapshot-support failure, got %+v", st)
	}
}

// TestTemperingJobMatchesDirectEnsemble runs a replica-exchange job through
// the service and checks the per-temperature report equals a direct
// tempering run of the same configuration (same seeds, same rounds).
func TestTemperingJobMatchesDirectEnsemble(t *testing.T) {
	spec := JobSpec{Backend: "checkerboard", Rows: 8, Sweeps: 20, BurnIn: 10,
		Seed: 3, Temperatures: []float64{2.0, 2.4}, SwapInterval: 5}
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("tempering job: %+v", st)
	}
	r := st.Result
	if len(r.Replicas) != 2 || r.Temperature != 2.0 {
		t.Fatalf("tempering result: %+v", r)
	}

	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ens, err := tempering.New(tempering.Config{
		Temperatures: norm.Temperatures, SwapInterval: norm.SwapInterval, Seed: norm.Seed, Workers: 1,
	}, func(slot int, temperature float64) (ising.Backend, error) {
		return backend.New(norm.Backend, backendConfig(norm, temperature, tempering.ReplicaSeed(norm.Seed, slot)))
	})
	if err != nil {
		t.Fatal(err)
	}
	ens.RunRounds(2) // burnin 10 / swap 5
	ens.Sample(4)    // sweeps 20 / swap 5
	rep := ens.Report()
	for i, rr := range rep.Replicas {
		got := r.Replicas[i]
		if got.AbsMagnetization != rr.AbsMagnetization || got.Energy != rr.Energy ||
			got.Binder != rr.Binder || got.Samples != rr.Samples {
			t.Fatalf("replica %d: service %+v, direct %+v", i, got, rr)
		}
	}
	if r.RoundTrips != rep.RoundTrips || r.SwapAcceptance != rep.Acceptance() {
		t.Fatalf("swap stats: service (%d, %g), direct (%d, %g)",
			r.RoundTrips, r.SwapAcceptance, rep.RoundTrips, rep.Acceptance())
	}
}

// TestJobHistoryPruning checks that terminal jobs are evicted oldest-first
// beyond Config.JobHistory while their results stay reachable via the cache.
func TestJobHistoryPruning(t *testing.T) {
	srv, _ := New(Config{Workers: 1, JobHistory: 2})
	defer srv.Close()
	spec := JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2}
	var ids []string
	for seed := uint64(1); seed <= 4; seed++ {
		s := spec
		s.Seed = seed
		j, err := srv.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID())
	}
	if got := len(srv.Jobs()); got != 2 {
		t.Fatalf("retained %d jobs, want 2", got)
	}
	if _, err := srv.Get(ids[0]); !errors.Is(err, ErrJobExpired) {
		t.Fatalf("oldest job should answer expired, got %v", err)
	}
	if _, err := srv.Get(ids[3]); err != nil {
		t.Fatalf("newest job should be retained: %v", err)
	}
	// The evicted job's result is still one cache hit away.
	first := spec
	first.Seed = 1
	j, err := srv.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, j); !st.Cached {
		t.Fatal("evicted job's result should be served from the cache")
	}
}

// TestResumeBurstBeyondQueueDepth checks that New never blocks on a restart
// burst: a checkpoint directory holding more jobs than QueueDepth must
// resume them all.
func TestResumeBurstBeyondQueueDepth(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft three consistent checkpoints the way the daemon writes them.
	for i := 1; i <= 3; i++ {
		spec, err := (JobSpec{Backend: "checkerboard", Rows: 8, Sweeps: 40,
			Temperature: 2.5, Seed: uint64(i)}).Normalize()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := backend.New(spec.Backend, backendConfig(spec, spec.Temperature, spec.Seed))
		if err != nil {
			t.Fatal(err)
		}
		var absAcc, eAcc stats.Accumulator
		done := sweep.Stream(eng.(sweep.EnergyChain), 0, 10, spec.SampleInterval, func(sm sweep.Sample) {
			absAcc.Add(math.Abs(sm.Magnetization))
			eAcc.Add(sm.Energy)
		})
		snap, err := eng.(ising.Snapshotter).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("job-%06d", i)
		blob, err := encodeCheckpoint(&checkpointState{
			Job: id, Spec: spec, DoneSweeps: done,
			AbsM: absAcc.State(), Energy: eAcc.State(),
			Snapshot: ising.EncodeSnapshot(snap),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, id+checkpointExt), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	srv, skipped := New(Config{Workers: 1, QueueDepth: 1, CheckpointDir: dir, CheckpointInterval: 20})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("New blocked for %v on the resume burst", elapsed)
	}
	defer srv.Close()
	if len(skipped) != 0 {
		t.Fatalf("skipped: %v", skipped)
	}
	if got := srv.Stats().JobsResumed; got != 3 {
		t.Fatalf("jobs_resumed = %d, want 3", got)
	}
	for i := 1; i <= 3; i++ {
		j, err := srv.Get(fmt.Sprintf("job-%06d", i))
		if err != nil {
			t.Fatal(err)
		}
		if st := waitDone(t, j); st.State != StateDone || st.SweepsDone != 40 {
			t.Fatalf("resumed job %d: %+v", i, st)
		}
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	srv.Close()
	if _, err := srv.Submit(JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}
