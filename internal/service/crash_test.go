package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tpuising/internal/service/encode"
)

// This file is the crash-only recovery suite: every test here interrupts,
// mangles or time-warps the durable state a restarted daemon recovers from,
// and asserts the documented contract — corrupt files are quarantined (never
// deleted, never resumed, never fatal), torn writes are swept, legacy files
// stay readable, and a skewed wall clock cannot corrupt job ages. The
// process-level half of the suite (kill -9 against a real daemon) lives in
// cmd/isingd.

// harvestLiveCheckpoint runs a long job until its first periodic snapshot
// checkpoint lands, then shuts the daemon down and returns the file bytes —
// a genuine mid-run v2 checkpoint for the corruption matrix to mutilate. The
// job is always job-000001 (fresh server).
func harvestLiveCheckpoint(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	srv, _ := New(Config{Workers: 1, CheckpointDir: dir, CheckpointInterval: 256})
	defer srv.Close()
	spec := JobSpec{Backend: "checkerboard", Rows: 32, Cols: 32, Sweeps: 2_000_000,
		Temperature: 2.3, Seed: 7, SampleInterval: 1000}
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-000001" {
		t.Fatalf("fresh server issued %q, want job-000001", j.ID())
	}
	path := srv.checkpointPath(j.ID())
	deadline := time.Now().Add(55 * time.Second)
	for {
		// Atomic-replace writes mean this read sees either the intent record
		// or a complete snapshot checkpoint, never a torn one.
		if blob, err := os.ReadFile(path); err == nil {
			if cs, err := parseCheckpoint(blob, path); err == nil && cs.DoneSweeps > 0 {
				return blob
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot checkpoint appeared: %+v", j.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCorruptCheckpointMatrix is the crash-point matrix: one genuine mid-run
// checkpoint, mutilated at every structural boundary — truncations on either
// side of the header, doubled and trailing-garbage files, single bit flips in
// header and payload — each restarted over in a fresh daemon. Every mutation
// must take the same path: reported in the scan's skip list, counted in
// checkpoint_corrupt, moved byte-for-byte into quarantine/ (evidence, never
// deleted), its job answering ErrJobCorrupt, and its ID never reissued.
func TestCorruptCheckpointMatrix(t *testing.T) {
	blob := harvestLiveCheckpoint(t)
	nl := bytes.IndexByte(blob, '\n')
	if nl < 0 {
		t.Fatal("harvested checkpoint has no header line")
	}
	flip := func(off int) []byte {
		out := append([]byte(nil), blob...)
		out[off] ^= 0x01
		return out
	}
	mutations := map[string][]byte{
		"empty":             {},
		"truncated-header":  blob[:nl/2],
		"truncated-payload": blob[:nl+1+(len(blob)-nl-1)/2],
		"truncated-tail":    blob[:len(blob)-1],
		"doubled":           append(append([]byte(nil), blob...), blob...),
		"trailing-garbage":  append(append([]byte(nil), blob...), "garbage"...),
		"bitflip-header":    flip(len(checkpointHeaderPrefix) + len("crc32c=")),
		"bitflip-payload":   flip(nl + 1 + (len(blob)-nl-1)/2),
	}
	for name, mutated := range mutations {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "job-000001"+checkpointExt)
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			srv, skipped := New(Config{Workers: 1, CheckpointDir: dir})
			defer srv.Close()
			if len(skipped) != 1 {
				t.Fatalf("scan skipped %d files, want 1: %v", len(skipped), skipped)
			}
			st := srv.Stats()
			if st.CheckpointCorrupt != 1 || st.JobsResumed != 0 {
				t.Fatalf("checkpoint_corrupt = %d, jobs_resumed = %d, want 1, 0",
					st.CheckpointCorrupt, st.JobsResumed)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt file left in the scan path: %v", err)
			}
			evidence, err := os.ReadFile(filepath.Join(dir, quarantineDir, "job-000001"+checkpointExt))
			if err != nil {
				t.Fatalf("corrupt file not quarantined: %v", err)
			}
			if !bytes.Equal(evidence, mutated) {
				t.Fatal("quarantined evidence is not byte-identical to the corrupt file")
			}
			if _, err := srv.Get("job-000001"); !errors.Is(err, ErrJobCorrupt) {
				t.Fatalf("corrupt job's ID answered %v, want ErrJobCorrupt", err)
			}
			// The verdict is not shadowed: a fresh job never reuses the ID.
			j, err := srv.Submit(tinySpec(3))
			if err != nil {
				t.Fatal(err)
			}
			if j.ID() == "job-000001" {
				t.Fatal("corrupt job's ID was reissued to a fresh job")
			}
		})
	}
	// Control: an unmutated copy of the same bytes resumes cleanly — the
	// quarantine path triggers on corruption, not on this file's shape. (Byte
	// identity of the resumed observables is pinned separately by
	// TestCheckpointResumeByteIdentical and the cmd/isingd kill -9 e2e.)
	t.Run("valid-control", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "job-000001"+checkpointExt), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		srv, skipped := New(Config{Workers: 1, CheckpointDir: dir})
		defer srv.Close()
		if len(skipped) != 0 {
			t.Fatalf("clean checkpoint skipped: %v", skipped)
		}
		st := srv.Stats()
		if st.JobsResumed != 1 || st.CheckpointCorrupt != 0 {
			t.Fatalf("jobs_resumed = %d, checkpoint_corrupt = %d, want 1, 0",
				st.JobsResumed, st.CheckpointCorrupt)
		}
		if _, err := srv.Get("job-000001"); err != nil {
			t.Fatalf("resumed job lost its ID: %v", err)
		}
	})
}

// TestCheckpointV1ReadCompat pins the upgrade path: a bare-JSON version-1
// file written by an older daemon (no checksum header, no admission time)
// must resume on today's daemon and produce the byte-identical result of a
// direct run — old durable state survives the codec bump.
func TestCheckpointV1ReadCompat(t *testing.T) {
	spec := JobSpec{Backend: "checkerboard", Rows: 16, Sweeps: 200,
		Temperature: 2.3, Seed: 11, SampleInterval: 50}

	ref, _ := New(Config{Workers: 1})
	refJob, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refStatus := waitDone(t, refJob)
	ref.Close()

	v1, err := json.Marshal(&checkpointState{Version: checkpointVersionV1, Job: "job-000001", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000001"+checkpointExt), v1, 0o644); err != nil {
		t.Fatal(err)
	}
	srv, skipped := New(Config{Workers: 1, CheckpointDir: dir})
	defer srv.Close()
	if len(skipped) != 0 {
		t.Fatalf("v1 checkpoint skipped: %v", skipped)
	}
	if srv.Stats().JobsResumed != 1 {
		t.Fatalf("jobs_resumed = %d, want 1", srv.Stats().JobsResumed)
	}
	j, err := srv.Get("job-000001")
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("v1-resumed job: %+v", st)
	}
	canon := func(r encode.Result) string {
		r.ElapsedSec, r.FlipsPerNs = 0, 0
		blob, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	if canon(*refStatus.Result) != canon(*st.Result) {
		t.Fatalf("v1-resumed result differs from direct run:\n%s\n%s",
			canon(*refStatus.Result), canon(*st.Result))
	}
}

// TestStartupSweepsStaleTempFiles plants the dropping a kill -9 between
// write and rename leaves behind — a .ckpt.tmp staging file — next to a
// valid checkpoint, and asserts the startup scan sweeps the one (counted)
// while resuming the other untouched.
func TestStartupSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "job-000003"+checkpointExt+checkpointTmpExt)
	if err := os.WriteFile(tmp, []byte("half a checkpoint, interrupted mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	blob, err := encodeCheckpoint(&checkpointState{Job: "job-000001", Spec: tinySpec(4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-000001"+checkpointExt), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	srv, skipped := New(Config{Workers: 1, CheckpointDir: dir})
	defer srv.Close()
	if len(skipped) != 0 {
		t.Fatalf("scan skipped: %v", skipped)
	}
	st := srv.Stats()
	if st.CheckpointTmpSwept != 1 || st.JobsResumed != 1 || st.CheckpointCorrupt != 0 {
		t.Fatalf("tmp_swept = %d, resumed = %d, corrupt = %d, want 1, 1, 0",
			st.CheckpointTmpSwept, st.JobsResumed, st.CheckpointCorrupt)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived the sweep: %v", err)
	}
}

// TestHTTPCorruptVsExpiredTaxonomy pins the client-visible 410 taxonomy:
// a job lost to checkpoint corruption and a job evicted by TTL both answer
// Gone — the ID is known but will never answer again — with distinct error
// text naming which fate it was.
func TestHTTPCorruptVsExpiredTaxonomy(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000001"+checkpointExt), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	srv, skipped := New(Config{Workers: 1, CheckpointDir: dir, JobTTL: time.Minute, Now: clock.Now})
	defer srv.Close()
	if len(skipped) != 1 {
		t.Fatalf("scan skipped %d files, want 1", len(skipped))
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fetch := func(id string) (int, string) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := fetch("job-000001"); code != http.StatusGone || !strings.Contains(body, "corrupt") {
		t.Fatalf("corrupt job answered %d %q, want 410 naming corruption", code, body)
	}

	j, err := srv.Submit(tinySpec(6))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	clock.Advance(2 * time.Minute)
	srv.pruneJobs()
	if code, body := fetch(j.ID()); code != http.StatusGone || !strings.Contains(body, "expired") {
		t.Fatalf("expired job answered %d %q, want 410 naming expiry", code, body)
	}
}

// TestClockSkewPausesNotRewinds drives Config.Now backwards and asserts the
// server's internal clock pauses at its high-water mark instead of following:
// observed time never decreases, TTL ages stop growing during the skew
// (nothing is evicted early or revived), and eviction resumes once the wall
// clock passes the floor again.
func TestClockSkewPausesNotRewinds(t *testing.T) {
	clock := newFakeClock()
	srv, _ := New(Config{Workers: 1, JobTTL: time.Minute, Now: clock.Now})
	defer srv.Close()
	j, err := srv.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	before := srv.now()
	clock.Rewind(time.Hour)
	if got := srv.now(); got.Before(before) {
		t.Fatalf("server time went backwards: %v then %v", before, got)
	}
	// Time is paused at the floor: the finished job does not age, however
	// long the wall clock spends in the past.
	clock.Advance(30 * time.Minute) // still 30m behind the floor
	srv.pruneJobs()
	if _, err := srv.Get(j.ID()); err != nil {
		t.Fatalf("job evicted while the clock was rewound: %v", err)
	}
	// Once the wall clock passes the floor, ages grow again and the TTL
	// applies as documented.
	clock.Advance(30*time.Minute + 2*time.Minute)
	srv.pruneJobs()
	if _, err := srv.Get(j.ID()); !errors.Is(err, ErrJobExpired) {
		t.Fatalf("TTL stopped working after skew recovery: %v", err)
	}
}

// TestClockSkewAcrossRestart is the restart half of the skew contract: a
// daemon restarted on a host whose wall clock stepped backwards (NTP
// correction, VM migration) folds the persisted admission times into its
// clock floor, so resumed jobs never have negative ages and the pre-crash
// timeline cannot be re-entered.
func TestClockSkewAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clockA := newFakeClock()
	t0 := clockA.Now()
	srvA, _ := New(Config{Workers: 1, CheckpointDir: dir, CheckpointInterval: 256, Now: clockA.Now})
	spec := JobSpec{Backend: "checkerboard", Rows: 32, Cols: 32, Sweeps: 2_000_000,
		Temperature: 2.3, Seed: 9, SampleInterval: 1000}
	jA, err := srvA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	srvA.Close()

	// The replacement daemon boots an hour in the past.
	clockB := newFakeClock()
	clockB.Set(t0.Add(-time.Hour))
	srvB, skipped := New(Config{Workers: 1, CheckpointDir: dir, CheckpointInterval: 256, Now: clockB.Now})
	defer srvB.Close()
	if len(skipped) != 0 {
		t.Fatalf("resume skipped: %v", skipped)
	}
	jB, err := srvB.Get(jA.ID())
	if err != nil {
		t.Fatalf("job lost across skewed restart: %v", err)
	}
	if !jB.admittedAt.Equal(t0) {
		t.Fatalf("admission time not persisted: got %v, want %v", jB.admittedAt, t0)
	}
	// The persisted admission time advanced the floor past the skewed wall
	// clock: the server observes no time before the job was admitted.
	if now := srvB.now(); now.Before(t0) {
		t.Fatalf("restarted server observes %v, before the job's admission %v", now, t0)
	}
	if age := srvB.now().Sub(jB.admittedAt); age < 0 {
		t.Fatalf("resumed job has negative age %v", age)
	}
}

// TestQuotaFairnessUnderStarvationFlood documents the fairness contract the
// per-client running cap buys: one client flooding the queue with
// highest-priority jobs cannot monopolize the pool, because the dequeue
// skips clients at their MaxRunningPerClient cap — a low-priority job from a
// quiet client runs on the remaining worker while the flood waits.
func TestQuotaFairnessUnderStarvationFlood(t *testing.T) {
	srv, _ := New(Config{Workers: 2, MaxRunningPerClient: 1})
	defer srv.Close()
	release := make(chan struct{})
	released := false
	// Unblock the hooked worker before srv.Close waits on it (LIFO: this
	// deferred func runs first), whatever path the test exits by.
	defer func() {
		if !released {
			close(release)
		}
	}()
	started := make(chan struct{}, 8)
	srv.testHookRun = func(j *Job) {
		if j.Spec().Client == "flood" {
			started <- struct{}{}
			<-release
		}
	}
	floodSpec := func(seed uint64) JobSpec {
		s := tinySpec(seed)
		s.Client, s.Priority = "flood", 9
		return s
	}
	first, err := srv.Submit(floodSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the flood's first job occupies a worker (and the cap).
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatalf("flood job never started: %+v", first.Status())
	}
	var flood []*Job
	for seed := uint64(101); seed < 105; seed++ {
		j, err := srv.Submit(floodSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, j)
	}
	victim := tinySpec(1)
	victim.Client, victim.Priority = "victim", 0
	v, err := srv.Submit(victim)
	if err != nil {
		t.Fatal(err)
	}
	// The victim completes while the flood still holds its one slot: the
	// second worker skipped four queued priority-9 jobs to reach it.
	if st := waitDone(t, v); st.State != StateDone {
		t.Fatalf("victim job: %+v", st)
	}
	// The flood's first job still occupies its worker (blocked in the hook,
	// so not yet marked running) and the backlog has not moved.
	if st := first.Status().State; st == StateDone {
		t.Fatalf("flood's blocked job should not have finished, state %q", st)
	}
	for _, j := range flood {
		if st := j.Status().State; st != StateQueued {
			t.Fatalf("flood backlog should still be queued, state %q", st)
		}
	}
	released = true
	close(release)
	for _, j := range append(flood, first) {
		if st := waitDone(t, j); st.State != StateDone {
			t.Fatalf("flood job after release: %+v", st)
		}
	}
}
