package service

import "os"

// CheckpointFS is the filesystem the checkpoint store writes through. The
// server performs its atomic-replace discipline (write a temp file, rename
// over the target, sync the directory) in terms of these four primitives, so
// a test can inject a filesystem that fails mid-write — a full disk, a
// read-only volume — and assert the service fails the job loudly and cleans
// up its temp file instead of silently dropping resume data. Production code
// always runs on the real osFS.
type CheckpointFS interface {
	// WriteFile creates or truncates path, writes data and syncs it to
	// stable storage before returning.
	WriteFile(path string, data []byte) error
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes path (missing files are not an error for callers that
	// ignore the return).
	Remove(path string) error
	// SyncDir flushes the directory entry metadata, making a preceding
	// Rename durable. Best-effort: callers ignore its error.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		// Flush the data before any rename makes it visible: without this a
		// power loss could persist the rename but not the contents, replacing
		// the previous good checkpoint with a truncated one.
		err = f.Sync()
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if closeErr := d.Close(); syncErr == nil {
		syncErr = closeErr
	}
	return syncErr
}
