package service

import "os"

// CheckpointFS is the filesystem the checkpoint store runs on — both the
// write path and, since the crash-recovery work, the read/scan path. The
// server performs its atomic-replace discipline (write a temp file, rename
// over the target, sync the directory) and its startup recovery scan (read
// the directory, load each file, quarantine the corrupt ones) in terms of
// these primitives, so a test can inject a filesystem that fails mid-write
// — a full disk, a read-only volume — or serves torn/corrupt bytes on read,
// and assert the service degrades the documented way: loud failures on
// write, quarantine-never-panic on read. Production code always runs on the
// real osFS.
type CheckpointFS interface {
	// WriteFile creates or truncates path, writes data and syncs it to
	// stable storage before returning.
	WriteFile(path string, data []byte) error
	// ReadFile returns the file's contents.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists the names of the plain files in dir (subdirectories —
	// the quarantine — are not files to recover, so they are omitted).
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents (a no-op when it exists).
	MkdirAll(dir string) error
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes path (missing files are not an error for callers that
	// ignore the return).
	Remove(path string) error
	// SyncDir flushes the directory entry metadata, making a preceding
	// Rename durable. Best-effort: callers ignore its error.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		// Flush the data before any rename makes it visible: without this a
		// power loss could persist the rename but not the contents, replacing
		// the previous good checkpoint with a truncated one.
		err = f.Sync()
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if closeErr := d.Close(); syncErr == nil {
		syncErr = closeErr
	}
	return syncErr
}
