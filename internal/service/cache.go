package service

import (
	"container/list"
	"encoding/json"
	"time"

	"tpuising/internal/service/encode"
)

// resultCache is the deduplicating result store: a size-bounded LRU keyed by
// JobSpec.CacheKey, bounded both in entries (Config.CacheSize) and in bytes
// (Config.CacheBytes), with optional age expiry (Config.CacheTTL). It
// replaces the unbounded map the service grew up with: a long-running daemon
// cycling through distinct seeds used to accumulate every result it ever
// computed; now the cache provably holds at most maxBytes of encoded results
// and evicts least-recently-used entries first, counting every eviction.
//
// The cache is NOT internally locked — every method is called with the
// server's mu held, which also makes the hit/miss/eviction counters exact
// against the job counters taken under the same lock.
type resultCache struct {
	maxEntries int           // <0 disables the cache entirely
	maxBytes   int64         // <=0 means no byte bound
	ttl        time.Duration // <=0 means no age expiry

	bytes int64 // current sum of entry sizes
	ll    *list.List
	index map[string]*list.Element

	misses    int64
	evictions int64
}

// cacheEntry is one stored result. size is the entry's accounting weight:
// the key plus the JSON-encoded result, the same bytes a client would
// receive — so the byte bound reads as "at most N bytes of cached results".
type cacheEntry struct {
	key      string
	result   *encode.Result
	size     int64
	storedAt time.Time
}

func newResultCache(maxEntries int, maxBytes int64, ttl time.Duration) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ttl:        ttl,
		ll:         list.New(),
		index:      make(map[string]*list.Element),
	}
}

// resultSize is the accounting size of one entry.
func resultSize(key string, r *encode.Result) int64 {
	blob, err := json.Marshal(r)
	if err != nil {
		// encode.Result contains only marshalable fields; this cannot happen.
		panic(err)
	}
	return int64(len(key) + len(blob))
}

// get returns the cached result for the key, promoting it to
// most-recently-used. An entry past its TTL is removed and counted as both a
// miss and an eviction — an expired result must never be served.
func (c *resultCache) get(key string, now time.Time) (*encode.Result, bool) {
	if c.maxEntries < 0 {
		return nil, false
	}
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && now.Sub(e.storedAt) > c.ttl {
		c.removeElement(el)
		c.evictions++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.result, true
}

// put stores a result and evicts least-recently-used entries until both
// bounds hold again. An entry larger than the whole byte budget is simply
// not cached (storing it would immediately evict everything else for a
// result nobody has re-asked for yet).
func (c *resultCache) put(key string, r *encode.Result, now time.Time) {
	if c.maxEntries < 0 {
		return
	}
	size := resultSize(key, r)
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	if el, ok := c.index[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.result, e.size, e.storedAt = r, size, now
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, result: r, size: size, storedAt: now})
		c.index[key] = el
		c.bytes += size
	}
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeElement(oldest)
		c.evictions++
	}
}

// pruneExpired drops every entry past the TTL (the janitor's path; get
// handles the lazy case).
func (c *resultCache) pruneExpired(now time.Time) {
	if c.ttl <= 0 || c.maxEntries < 0 {
		return
	}
	for el := c.ll.Back(); el != nil; {
		prev := el.Prev()
		if e := el.Value.(*cacheEntry); now.Sub(e.storedAt) > c.ttl {
			c.removeElement(el)
			c.evictions++
		}
		el = prev
	}
}

func (c *resultCache) removeElement(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size
}

// len and size report the cache gauges (entries, bytes).
func (c *resultCache) len() int    { return c.ll.Len() }
func (c *resultCache) size() int64 { return c.bytes }
