package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tpuising/internal/hist"
	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/service/encode"
	"tpuising/internal/stats"
	"tpuising/internal/sweep"
	"tpuising/internal/tempering"
)

// Config describes a simulation server.
type Config struct {
	// Workers is the worker-pool size: how many jobs sweep concurrently
	// (default 2). Each worker runs one job at a time; a job's own engine
	// parallelism is the spec's Workers field.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker (default 64); Submit
	// fails with ErrQueueFull beyond it, so a traffic burst degrades into
	// fast rejections instead of unbounded memory growth.
	QueueDepth int
	// CheckpointDir is where job checkpoints live ("" disables
	// checkpointing). A server constructed over a directory with leftover
	// checkpoints resumes those jobs immediately.
	CheckpointDir string
	// CheckpointInterval is the default number of sweeps between checkpoints
	// for engines that implement ising.Snapshotter (0 = only jobs that set
	// their own checkpoint_interval are checkpointed).
	CheckpointInterval int
	// CacheSize bounds the result cache entries (default 256, least recently
	// used evicted first; negative disables caching).
	CacheSize int
	// CacheBytes bounds the result cache's total encoded-result bytes
	// (default 32 MiB; negative removes the byte bound). Whichever of
	// CacheSize and CacheBytes is hit first evicts, LRU order, counted in
	// the cache_evictions stat.
	CacheBytes int64
	// CacheTTL expires cache entries by age (0 = never): an entry older than
	// it is a miss and is evicted on sight.
	CacheTTL time.Duration
	// JobHistory bounds the retained *terminal* jobs (default 1024, evicted
	// oldest first; negative retains forever). Active jobs are never
	// evicted. An evicted job's status is gone (GET answers "expired", 410),
	// but its result stays reachable through the cache by resubmitting its
	// spec.
	JobHistory int
	// JobTTL evicts terminal jobs from the history by age (0 = only the
	// JobHistory count bound applies): a job finished longer than JobTTL ago
	// is evicted even when the history is not full, so an idle daemon sheds
	// its job table too.
	JobTTL time.Duration
	// MaxQueuedPerClient and MaxRunningPerClient are the per-client quotas,
	// keyed by JobSpec.Client (empty Client = one shared anonymous bucket).
	// MaxRunningPerClient caps how many of one client's jobs occupy workers
	// at once — jobs beyond it stay queued until one finishes.
	// MaxQueuedPerClient (0 = no quota) caps the client's backlog: a
	// submission is rejected with ErrQuotaExceeded once the client has
	// MaxQueuedPerClient+MaxRunningPerClient non-terminal jobs in the
	// scheduler. The admission count is queued+running TOGETHER on purpose:
	// the queued/running split depends on worker-drain timing, so counting
	// them jointly is what makes admission decisions deterministic for any
	// worker count — the quota determinism contract, asserted by tests.
	MaxQueuedPerClient  int
	MaxRunningPerClient int
	// SampleHistory bounds the retained samples per job (default 65536).
	// Samples beyond it are counted, not stored; a stream of such a job ends
	// with exactly one Truncated bookkeeping line.
	SampleHistory int
	// CheckpointFS is the filesystem all checkpoint I/O goes through — writes
	// AND the startup recovery scan (nil = the real one). Tests inject
	// failing filesystems to exercise the full-disk paths and corrupt-read
	// recovery.
	CheckpointFS CheckpointFS
	// Now is the server's clock (nil = time.Now). Tests inject fake clocks
	// to drive the TTL and skew paths deterministically. The server clamps
	// it monotonic: if Now jumps backwards, server time holds still until
	// the wall clock catches up, so TTLs pause rather than rewind.
	Now func() time.Time
	// Logger receives the server's structured log (nil = discard). The
	// scheduler logs through job-scoped children carrying the job ID, client,
	// backend and priority attrs.
	Logger *slog.Logger
	// Version is the daemon build version reported by the isingd_build_info
	// metric ("" = "dev").
	Version string
}

func (c Config) withDefaults() Config {
	out := c
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 64
	}
	if out.CacheSize == 0 {
		out.CacheSize = 256
	}
	if out.CacheBytes == 0 {
		out.CacheBytes = 32 << 20
	}
	if out.JobHistory == 0 {
		out.JobHistory = 1024
	}
	if out.SampleHistory <= 0 {
		out.SampleHistory = maxSampleHistory
	}
	if out.CheckpointFS == nil {
		out.CheckpointFS = osFS{}
	}
	if out.Now == nil {
		out.Now = time.Now
	}
	if out.Logger == nil {
		out.Logger = nopLogger()
	}
	if out.Version == "" {
		out.Version = "dev"
	}
	return out
}

// Sentinel errors of the submission path.
var (
	// ErrQueueFull means the job queue is at QueueDepth.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrQuotaExceeded means the submitting client is at its per-client
	// quota (Config.MaxQueuedPerClient); the HTTP layer maps it to 429.
	ErrQuotaExceeded = errors.New("service: client quota exceeded")
	// ErrClosed means the server is shutting down.
	ErrClosed = errors.New("service: server is closed")
	// ErrUnknownJob means no job ever had the requested ID.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrJobExpired means the job existed but its status was evicted by the
	// history retention (Config.JobHistory / JobTTL) — distinguished from
	// ErrUnknownJob so a client can tell "poll less lazily" (410) from
	// "wrong ID" (404). The job's result may still be one cache hit away.
	ErrJobExpired = errors.New("service: job status expired (evicted by history retention)")
	// ErrJobCorrupt means the job's checkpoint failed validation during the
	// startup recovery scan and was quarantined: the job is lost to
	// corruption. Deliberately distinct from ErrJobExpired — "the daemon shed
	// old state on schedule" and "the disk ate your job" demand different
	// reactions — though both answer 410: the ID is gone for good, and
	// resubmitting the spec recomputes the result deterministically.
	ErrJobCorrupt = errors.New("service: job lost to checkpoint corruption (file quarantined)")
)

// Cancellation causes distinguishing a client cancel from a daemon shutdown.
var (
	errCanceled = errors.New("service: job canceled")
	errClosing  = errors.New("service: server closing")
)

// maxChunk bounds the sweeps a worker runs between cancellation checks.
const maxChunk = 256

// Server is a long-running simulation service over the backend registry: a
// bounded worker pool draining a job queue, a deduplicating result cache
// keyed by the job spec, and a checkpoint store that lets a restarted server
// resume interrupted jobs bit-identically. cmd/isingd serves its Handler
// over HTTP; tests and examples drive it in-process.
type Server struct {
	cfg    Config
	logger *slog.Logger

	// started is the server-clock construction stamp behind
	// isingd_uptime_seconds.
	started time.Time

	// The server-side stage latency histograms, exposed as Prometheus
	// histogram types on /metrics and summarized in /v1/stats: where a job's
	// wall-clock time goes — waiting for a worker, sweeping, fsyncing
	// checkpoints, or writing stream lines.
	queueWaitH       *hist.Histogram
	runH             *hist.Histogram
	checkpointWriteH *hist.Histogram
	streamWriteH     *hist.Histogram

	mu     sync.Mutex
	closed bool
	nextID int
	jobs   map[string]*Job
	order  []string // submission order, for listing
	cache  *resultCache

	// queue holds the jobs waiting for a worker, in submission order, guarded
	// by mu; workers wait on queueCond. A slice (not a channel) so Cancel can
	// remove a queued job immediately — a canceled job must free its queue
	// slot instead of pinning it until a worker drains it, or cancel-heavy
	// traffic makes Submit return ErrQueueFull while workers sit idle — and
	// so the dequeue can scan for the highest-priority job whose client is
	// under its running cap instead of popping strictly FIFO.
	queue     []*Job
	queueCond *sync.Cond // signalled on enqueue, on running-slot release and on Close

	// clientQueued and clientRunning count each client's jobs waiting in the
	// queue and occupying workers, guarded by mu. Their sum is the quota
	// admission count (see Config.MaxQueuedPerClient); clientRunning alone
	// gates the priority dequeue. Zero entries are deleted so the maps stay
	// proportional to the set of active clients.
	clientQueued  map[string]int
	clientRunning map[string]int

	// corruptJobs holds the IDs of jobs whose checkpoint files failed the
	// startup scan and were quarantined, guarded by mu. Get answers
	// ErrJobCorrupt for them — the corruption taxonomy, distinct from TTL
	// eviction. Bounded by the number of corrupt files found at startup.
	corruptJobs map[string]bool

	// nowFloor is the monotonic clock floor in Unix nanoseconds: the largest
	// timestamp now() has returned (or resumed from a checkpoint's persisted
	// admission time). When Config.Now jumps backwards — NTP step, a restart
	// on a skewed host — now() holds at the floor instead of following, so
	// ages never go negative, expired state is never revived, and TTLs
	// simply pause until the wall clock catches up.
	nowFloor atomic.Int64

	closing chan struct{} // closed by Close; ends long-lived streams and the janitor
	wg      sync.WaitGroup

	// testHookRun, when set by a test, runs on the worker goroutine right
	// before a job executes — the injection point for induced worker panics.
	testHookRun func(*Job)

	jobsSubmitted       atomic.Int64
	jobsCompleted       atomic.Int64
	jobsFailed          atomic.Int64
	jobsCanceled        atomic.Int64
	jobsCached          atomic.Int64
	jobsResumed         atomic.Int64
	jobsEvicted         atomic.Int64
	sweepsRun           atomic.Int64
	checkpointsWritten  atomic.Int64
	checkpointBytes     atomic.Int64
	checkpointFailures  atomic.Int64
	checkpointCorrupt   atomic.Int64
	checkpointTmpSwept  atomic.Int64
	streamWakeups       atomic.Int64
	quotaRejections     atomic.Int64
	queueFullRejections atomic.Int64
	workerPanics        atomic.Int64
}

// now is the server's clock: Config.Now clamped to never run backwards (see
// nowFloor). Every time-accounting path — TTLs, admission stamps, janitor
// sweeps — reads it instead of Config.Now directly.
func (s *Server) now() time.Time {
	t := s.cfg.Now()
	n := t.UnixNano()
	for {
		prev := s.nowFloor.Load()
		if n <= prev {
			return time.Unix(0, prev)
		}
		if s.nowFloor.CompareAndSwap(prev, n) {
			return t
		}
	}
}

// advanceNowFloor raises the monotonic clock floor to at least the given
// Unix-nanosecond timestamp (no-op for older ones). Resume calls it with
// persisted admission times so clock skew across a restart cannot rewind
// the daemon behind state it already holds.
func (s *Server) advanceNowFloor(unixNano int64) {
	for {
		prev := s.nowFloor.Load()
		if unixNano <= prev || s.nowFloor.CompareAndSwap(prev, unixNano) {
			return
		}
	}
}

// Stats is the server's counter snapshot (GET /v1/stats). SweepsRun counts
// whole-lattice updates actually executed by workers — a cache hit does not
// move it, which is exactly what the cache tests assert. StreamWakeups
// counts iterations of open NDJSON stream loops: how often any subscriber
// woke to look for new samples. Dividing its delta by the SweepsRun delta is
// the load harness's wake-storm gauge — with the sample-only notification
// channel it stays near samples-per-sweep instead of subscribers-per-sweep.
type Stats struct {
	JobsSubmitted      int64 `json:"jobs_submitted"`
	JobsCompleted      int64 `json:"jobs_completed"`
	JobsFailed         int64 `json:"jobs_failed"`
	JobsCanceled       int64 `json:"jobs_canceled"`
	JobsCached         int64 `json:"jobs_cached"` // cache hits: submissions served without sweeping
	JobsResumed        int64 `json:"jobs_resumed"`
	JobsEvicted        int64 `json:"jobs_evicted"` // terminal jobs dropped by JobHistory/JobTTL
	SweepsRun          int64 `json:"sweeps_run"`
	CheckpointsWritten int64 `json:"checkpoints_written"`
	CheckpointBytes    int64 `json:"checkpoint_bytes"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	// CheckpointCorrupt counts checkpoint files quarantined by the startup
	// scan (unreadable, torn or checksum-failing); CheckpointTmpSwept counts
	// stale atomic-write temp files swept by it.
	CheckpointCorrupt  int64 `json:"checkpoint_corrupt"`
	CheckpointTmpSwept int64 `json:"checkpoint_tmp_swept"`
	StreamWakeups      int64 `json:"stream_wakeups"`
	// CacheMisses and CacheEvictions complete the cache picture next to the
	// JobsCached hit counter; CacheBytes is the current encoded size of every
	// retained result — provably bounded by Config.CacheBytes.
	CacheMisses         int64 `json:"cache_misses"`
	CacheEvictions      int64 `json:"cache_evictions"`
	CacheBytes          int64 `json:"cache_bytes"`
	QuotaRejections     int64 `json:"quota_rejections"`
	QueueFullRejections int64 `json:"queue_full_rejections"`
	WorkerPanics        int64 `json:"worker_panics"`
	CacheEntries        int   `json:"cache_entries"`
	Queued              int   `json:"queued"`
	Running             int   `json:"running"`
	Workers             int   `json:"workers"`
	// UptimeSeconds is the server-clock age of this Server.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Latency is the aggregate stage-duration summary: the same four
	// histograms /metrics exposes, rendered as quantiles.
	Latency StageLatencies `json:"latency"`
}

// StageLatencies summarizes the server-side stage histograms for /v1/stats:
// queue wait (enqueue → worker admission), run (worker occupancy per job),
// checkpoint write (intent records and snapshots, through fsync+rename), and
// stream write (one NDJSON flush batch per observation).
type StageLatencies struct {
	QueueWait       hist.LatencySummary `json:"queue_wait"`
	Run             hist.LatencySummary `json:"run"`
	CheckpointWrite hist.LatencySummary `json:"checkpoint_write"`
	StreamWrite     hist.LatencySummary `json:"stream_write"`
}

// New starts a server: Workers goroutines draining the queue. If the
// checkpoint directory holds checkpoints from a previous daemon, their jobs
// are re-queued immediately (keeping their IDs) and continue from their
// snapshots. Skipped (unreadable) checkpoint files are returned as a
// non-fatal second value.
func New(cfg Config) (*Server, []error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:              cfg,
		logger:           cfg.Logger,
		queueWaitH:       hist.New(),
		runH:             hist.New(),
		checkpointWriteH: hist.New(),
		streamWriteH:     hist.New(),
		jobs:             make(map[string]*Job),
		cache:            newResultCache(cfg.CacheSize, cfg.CacheBytes, cfg.CacheTTL),
		clientQueued:     make(map[string]int),
		clientRunning:    make(map[string]int),
		corruptJobs:      make(map[string]bool),
		closing:          make(chan struct{}),
	}
	s.started = s.now()
	s.queueCond = sync.NewCond(&s.mu)
	var states []*checkpointState
	var skipped []error
	if s.cfg.CheckpointDir != "" {
		states, skipped = s.scanCheckpoints()
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.nextQueued()
				if !ok {
					return
				}
				s.runProtected(j)
				s.releaseRunning(j)
			}
		}()
	}
	if s.cfg.JobTTL > 0 || s.cfg.CacheTTL > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	for _, cs := range states {
		if err := s.resume(cs); err != nil {
			skipped = append(skipped, err)
		}
	}
	return s, skipped
}

// janitor periodically applies the age bounds (JobTTL, CacheTTL) so an idle
// daemon still sheds expired history and cache entries; the terminal-event
// and lookup paths apply them lazily as well.
func (s *Server) janitor() {
	defer s.wg.Done()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-s.closing:
			return
		case <-ticker.C:
			s.pruneJobs()
			s.mu.Lock()
			s.cache.pruneExpired(s.now())
			s.mu.Unlock()
		}
	}
}

// Submit validates and schedules a job. A spec whose cache key matches a
// completed job returns immediately as a done job carrying the cached result
// — no backend is constructed or stepped (a cache hit also bypasses the
// queue, so it costs no quota). The returned job is retrievable by ID until
// the history retention evicts it. When the server has a checkpoint
// directory, every accepted job writes a durable intent record before the
// submission returns, so a daemon restart loses no accepted job — jobs
// without an engine snapshot simply rerun from sweep zero, which the
// deterministic engines turn into the identical result.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	j := newJob(s.newIDLocked(), norm, s.cfg.SampleHistory, s.now)
	j.addEvent(EventSubmitted, 0)
	if cached, ok := s.cache.get(j.key, s.now()); ok {
		j.addEvent(EventCached, 0)
		s.addJobLocked(j)
		s.mu.Unlock()
		s.jobsSubmitted.Add(1)
		s.jobsCached.Add(1)
		j.finish(cached, true)
		s.jobLogger(j).Debug("cache hit")
		s.pruneJobs()
		return j, nil
	}
	if q := s.cfg.MaxQueuedPerClient; q > 0 {
		c := norm.Client
		if s.clientQueued[c]+s.clientRunning[c] >= q+max(s.cfg.MaxRunningPerClient, 0) {
			s.mu.Unlock()
			s.quotaRejections.Add(1)
			return nil, fmt.Errorf("%w: client %q already has %d jobs queued or running",
				ErrQuotaExceeded, c, q+max(s.cfg.MaxRunningPerClient, 0))
		}
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.queueFullRejections.Add(1)
		return nil, ErrQueueFull
	}
	// Durable admission: the job takes its queue slot now (so capacity and
	// quota stay exact) but stays held — invisible to the dequeue — until
	// its intent record is on disk. Without the hold a fast job could run,
	// even finish, before it was ever durable.
	j.held = s.cfg.CheckpointDir != ""
	j.addEvent(EventQueued, 0)
	s.queue = append(s.queue, j)
	s.clientQueued[norm.Client]++
	s.addJobLocked(j)
	s.queueCond.Signal()
	s.mu.Unlock()
	s.jobsSubmitted.Add(1)
	s.jobLogger(j).Debug("job submitted")
	if s.cfg.CheckpointDir != "" {
		// A failure is loud — the job the daemon cannot make durable fails
		// immediately instead of silently losing upgrade coverage — and the
		// queue slot is freed the same way a cancel frees it.
		if err := s.writeSpecCheckpoint(j); err != nil {
			s.dequeue(j)
			s.fail(j, fmt.Errorf("service: recording job %s for restart durability: %w", j.id, err))
			return j, nil
		}
		s.mu.Lock()
		j.held = false
		s.queueCond.Signal()
		s.mu.Unlock()
	}
	return j, nil
}

// resume re-queues a checkpointed job from a previous daemon run. It appends
// past the QueueDepth bound (and the per-client quotas) on purpose: a daemon
// must never drop (or stall on) a checkpointed job during startup, however
// large the restart burst. A checkpoint without an engine snapshot — the
// durable intent record every accepted job writes — restarts the job from
// sweep zero; the deterministic engines make the rerun byte-identical.
func (s *Server) resume(cs *checkpointState) error {
	s.mu.Lock()
	if _, exists := s.jobs[cs.Job]; exists {
		s.mu.Unlock()
		return fmt.Errorf("service: duplicate checkpoint for job %s", cs.Job)
	}
	j := newJob(cs.Job, cs.Spec, s.cfg.SampleHistory, s.now)
	// Keep the original admission stamp across the restart and fold it into
	// the clock floor: a wall clock that went backwards over the restart must
	// not make resumed state look younger than work admitted after it.
	j.admittedAt = admittedAtOrNow(cs.AdmittedAt, s.now)
	s.advanceNowFloor(cs.AdmittedAt)
	if len(cs.Snapshot) > 0 {
		j.resume = cs
		j.sweepsDone = cs.DoneSweeps
	}
	// The resumed timeline opens with the ORIGINAL admission stamp: the trace
	// shows when the job first entered the system, then that this daemon
	// picked it back up at its checkpointed progress.
	j.mu.Lock()
	j.addEventAtLocked(EventSubmitted, j.admittedAt, 0)
	j.addEventLocked(EventResumed, cs.DoneSweeps)
	j.addEventLocked(EventQueued, 0)
	j.mu.Unlock()
	s.queue = append(s.queue, j)
	s.clientQueued[cs.Spec.Client]++
	s.addJobLocked(j)
	s.advanceIDLocked(cs.Job)
	s.queueCond.Signal()
	s.mu.Unlock()
	s.jobsResumed.Add(1)
	s.jobLogger(j).Info("job resumed from checkpoint", "done_sweeps", cs.DoneSweeps)
	return nil
}

// nextQueued blocks until a runnable job is queued (returning it) or the
// server is closed (returning false). "Runnable" folds in the scheduling
// policy: the highest-priority queued job, FIFO within a priority, whose
// client is under its MaxRunningPerClient cap. A queue holding only
// over-cap clients parks the worker until a running slot frees. Jobs left
// queued at close stay queued — their checkpoints, if any, are the
// durability mechanism, exactly as before.
func (s *Server) nextQueued() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, false
		}
		if i := s.eligibleLocked(); i >= 0 {
			j := s.queue[i]
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.dropClientQueuedLocked(j.spec.Client)
			s.clientRunning[j.spec.Client]++
			at := s.now()
			j.mu.Lock()
			j.addEventAtLocked(EventAdmitted, at, 0)
			wait := at.Sub(j.enqueuedAt)
			j.mu.Unlock()
			s.queueWaitH.Observe(wait)
			s.jobLogger(j).Debug("job admitted", "queue_wait_ms", float64(wait)/float64(time.Millisecond))
			return j, true
		}
		s.queueCond.Wait()
	}
}

// eligibleLocked returns the queue index of the job to run next — the first
// (oldest) job of the highest priority whose client is under its running cap
// — or -1 when nothing is runnable; the caller holds s.mu.
func (s *Server) eligibleLocked() int {
	best := -1
	for i, j := range s.queue {
		if j.held {
			continue // durable-admission write still in flight
		}
		if s.cfg.MaxRunningPerClient > 0 && s.clientRunning[j.spec.Client] >= s.cfg.MaxRunningPerClient {
			continue
		}
		if best < 0 || j.spec.Priority > s.queue[best].spec.Priority {
			best = i
		}
	}
	return best
}

// releaseRunning returns a worker's running slot after a job ends (or is
// parked for the next daemon at shutdown) and wakes the workers: a queued
// job of the same client may have been waiting on the running cap.
func (s *Server) releaseRunning(j *Job) {
	s.mu.Lock()
	c := j.spec.Client
	if s.clientRunning[c]--; s.clientRunning[c] <= 0 {
		delete(s.clientRunning, c)
	}
	s.queueCond.Broadcast()
	s.mu.Unlock()
}

// dropClientQueuedLocked decrements a client's queued count, deleting the
// zero entry; the caller holds s.mu.
func (s *Server) dropClientQueuedLocked(client string) {
	if s.clientQueued[client]--; s.clientQueued[client] <= 0 {
		delete(s.clientQueued, client)
	}
}

// dequeue removes a job from the waiting queue if it is still there,
// reporting whether it was. Cancel uses it to free the job's queue slot
// (and its quota share) immediately instead of leaving a dead job pinning
// queue capacity.
func (s *Server) dequeue(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.dropClientQueuedLocked(j.spec.Client)
			return true
		}
	}
	return false
}

// Get returns the job with the given ID. A miss distinguishes a job that was
// evicted by the history retention (ErrJobExpired — the ID is within the
// range this server has issued) from one that never existed (ErrUnknownJob),
// so a lazy poller gets "your job finished and aged out; resubmit the spec
// for a cache hit" instead of a bare not-found.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		if s.corruptJobs[id] {
			return nil, fmt.Errorf("%w: %s", ErrJobCorrupt, id)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil &&
			strings.HasPrefix(id, "job-") && n >= 1 && n <= s.nextID {
			return nil, fmt.Errorf("%w: %s", ErrJobExpired, id)
		}
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Jobs returns every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel stops a job: a queued job never runs (and releases its queue slot
// immediately, so cancel-heavy traffic cannot fill the queue with dead
// jobs), a running job stops at its next chunk boundary, and the job's
// checkpoint (if any) is removed. Canceling a terminal job is a no-op.
func (s *Server) Cancel(id string) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	j.cancel(errCanceled)
	s.dequeue(j)
	if j.setState(StateCanceled, errCanceled) {
		s.jobsCanceled.Add(1)
		s.removeCheckpoint(j)
		s.jobLogger(j).Info("job canceled")
		s.pruneJobs()
	}
	return j, nil
}

// Stats returns the server's counter snapshot.
func (s *Server) Stats() Stats {
	st := Stats{
		JobsSubmitted:       s.jobsSubmitted.Load(),
		JobsCompleted:       s.jobsCompleted.Load(),
		JobsFailed:          s.jobsFailed.Load(),
		JobsCanceled:        s.jobsCanceled.Load(),
		JobsCached:          s.jobsCached.Load(),
		JobsResumed:         s.jobsResumed.Load(),
		JobsEvicted:         s.jobsEvicted.Load(),
		SweepsRun:           s.sweepsRun.Load(),
		CheckpointsWritten:  s.checkpointsWritten.Load(),
		CheckpointBytes:     s.checkpointBytes.Load(),
		CheckpointFailures:  s.checkpointFailures.Load(),
		CheckpointCorrupt:   s.checkpointCorrupt.Load(),
		CheckpointTmpSwept:  s.checkpointTmpSwept.Load(),
		StreamWakeups:       s.streamWakeups.Load(),
		QuotaRejections:     s.quotaRejections.Load(),
		QueueFullRejections: s.queueFullRejections.Load(),
		WorkerPanics:        s.workerPanics.Load(),
		Workers:             s.cfg.Workers,
		UptimeSeconds:       s.now().Sub(s.started).Seconds(),
		Latency: StageLatencies{
			QueueWait:       s.queueWaitH.Summary(),
			Run:             s.runH.Summary(),
			CheckpointWrite: s.checkpointWriteH.Summary(),
			StreamWrite:     s.streamWriteH.Summary(),
		},
	}
	s.mu.Lock()
	st.CacheEntries = s.cache.len()
	st.CacheBytes = s.cache.size()
	st.CacheMisses = s.cache.misses
	st.CacheEvictions = s.cache.evictions
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return st
}

// Close shuts the server down: no new submissions, every running
// checkpointable job writes a final checkpoint (so the next daemon resumes
// it), and the workers drain. Jobs that cannot checkpoint are lost at
// shutdown, exactly like a crash — the checkpoint store, not the shutdown
// path, is the durability mechanism.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.closing)
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.queueCond.Broadcast()
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel(errClosing)
	}
	s.wg.Wait()
}

// newIDLocked allocates the next job ID; the caller holds s.mu.
func (s *Server) newIDLocked() string {
	s.nextID++
	return fmt.Sprintf("job-%06d", s.nextID)
}

// advanceIDLocked moves the ID counter past a resumed job's ID so fresh jobs
// never collide with it; the caller holds s.mu.
func (s *Server) advanceIDLocked(id string) {
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// addJobLocked registers a job; the caller holds s.mu.
func (s *Server) addJobLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}

// pruneJobs evicts terminal jobs past the retention bounds — older than
// Config.JobTTL (when set), then the oldest beyond the Config.JobHistory
// count — so a long-running daemon's job table stays bounded no matter how
// much traffic it serves and an idle daemon sheds its table by age too.
// Active (queued/running) jobs are never evicted; an evicted job's result
// remains reachable through the cache, and its ID answers "expired" (410),
// not "unknown" (404). Every eviction moves the jobs_evicted counter.
func (s *Server) pruneJobs() {
	limit := s.cfg.JobHistory
	ttl := s.cfg.JobTTL
	if limit < 0 && ttl <= 0 {
		return
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	expired := func(j *Job) bool {
		j.mu.Lock()
		defer j.mu.Unlock()
		return ttl > 0 && j.state.terminal() && now.Sub(j.finishedAt) > ttl
	}
	terminal := 0
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		if j.state.terminal() {
			terminal++
		}
		j.mu.Unlock()
	}
	overCount := 0
	if limit >= 0 && terminal > limit {
		overCount = terminal - limit
	}
	kept := s.order[:0]
	evicted := 0
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		dead := j.state.terminal()
		j.mu.Unlock()
		if dead && (overCount > 0 || expired(j)) {
			delete(s.jobs, id)
			evicted++
			if overCount > 0 {
				overCount--
			}
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	if evicted > 0 {
		s.jobsEvicted.Add(int64(evicted))
	}
}

// storeResult caches a completed result (the LRU applies its own bounds).
func (s *Server) storeResult(key string, r *encode.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.put(key, r, s.now())
}

// runProtected executes one job, converting a worker panic — a backend bug,
// an induced chaos-test fault — into a loudly failed job instead of a dead
// daemon: the worker goroutine survives, the panic is counted, and the job
// reports the panic value as its error.
func (s *Server) runProtected(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.workerPanics.Add(1)
			s.jobLogger(j).Error("worker panic", "panic", fmt.Sprint(r))
			s.fail(j, fmt.Errorf("service: job %s panicked: %v", j.id, r))
		}
	}()
	if s.testHookRun != nil {
		s.testHookRun(j)
	}
	s.run(j)
}

// run executes one job on a worker goroutine.
func (s *Server) run(j *Job) {
	if j.ctx.Err() != nil {
		// Canceled before it started. A shutdown leaves the job queued (its
		// checkpoint, if any, survives for the next daemon); a client cancel
		// has already marked it canceled.
		return
	}
	if !j.setState(StateRunning, nil) {
		return
	}
	if len(j.spec.Temperatures) > 0 {
		s.runTempering(j)
		return
	}
	if j.spec.Replicas > 1 {
		s.runBatch(j)
		return
	}
	s.runSingle(j)
}

// observeRun folds the job's worker occupancy into the run-duration
// histogram (a job that never reached a worker observes nothing) and returns
// it for the log line.
func (s *Server) observeRun(j *Job) time.Duration {
	started := j.runStarted()
	if started.IsZero() {
		return 0
	}
	d := s.now().Sub(started)
	s.runH.Observe(d)
	return d
}

// fail marks the job failed.
func (s *Server) fail(j *Job, err error) {
	s.removeCheckpoint(j)
	if j.setState(StateFailed, err) {
		s.jobsFailed.Add(1)
		d := s.observeRun(j)
		s.jobLogger(j).Warn("job failed", "error", err, "run_ms", float64(d)/float64(time.Millisecond))
	}
	s.pruneJobs()
}

// complete stores the result in the cache and marks the job done. The result
// is cached even if a cancel won the race to the job's terminal state — it
// is a fully computed, valid result.
func (s *Server) complete(j *Job, r *encode.Result) {
	s.storeResult(j.key, r)
	s.removeCheckpoint(j)
	if j.finish(r, false) {
		s.jobsCompleted.Add(1)
		d := s.observeRun(j)
		s.jobLogger(j).Info("job completed", "run_ms", float64(d)/float64(time.Millisecond),
			"sweeps", j.spec.totalSweeps())
	}
	s.pruneJobs()
}

// interrupted handles a cancellation noticed mid-run. On shutdown a
// checkpointable job writes a final checkpoint at the exact sweep it
// stopped, so the next daemon resumes it bit-identically; a client cancel
// discards the job.
func (s *Server) interrupted(j *Job, snapper ising.Snapshotter, canCkpt bool, done int, absM, energy stats.AccumulatorState) {
	if context.Cause(j.ctx) == errClosing {
		if canCkpt {
			if err := s.writeCheckpoint(j, snapper, done, absM, energy); err == nil {
				j.setState(StateQueued, nil)
				return
			}
		}
		if s.cfg.CheckpointDir != "" {
			// No engine snapshot (or the final write failed), but the job's
			// durable intent record from Submit is still on disk: the next
			// daemon reruns it from sweep zero, byte-identically. Park it
			// queued rather than canceling it.
			j.setState(StateQueued, nil)
			return
		}
		if j.setState(StateCanceled, errClosing) {
			s.jobsCanceled.Add(1)
		}
		return
	}
	// Client cancel: Cancel already set the state; make sure no checkpoint
	// survives (the worker may have written one after Cancel removed it).
	s.removeCheckpoint(j)
	if j.setState(StateCanceled, errCanceled) {
		s.jobsCanceled.Add(1)
	}
}

// backendConfig maps a job spec onto the registry's engine configuration.
func backendConfig(spec JobSpec, temperature float64, seed uint64) backend.Config {
	return backend.Config{
		Rows: spec.Rows, Cols: spec.Cols, Temperature: temperature,
		Seed: seed, Workers: spec.Workers,
		GridR: spec.GridR, GridC: spec.GridC, Hot: spec.Hot,
	}
}

// runSingle runs a single-chain job: burn-in, then measured sweeps with
// samples streamed every SampleInterval, checkpointing every
// CheckpointInterval sweeps when enabled.
func (s *Server) runSingle(j *Job) {
	spec := j.spec
	eng, err := backend.New(spec.Backend, backendConfig(spec, spec.Temperature, spec.Seed))
	if err != nil {
		s.fail(j, err)
		return
	}
	snapper, canSnap := eng.(ising.Snapshotter)
	ckptEvery := spec.CheckpointInterval
	if ckptEvery == 0 {
		ckptEvery = s.cfg.CheckpointInterval
	}
	if spec.CheckpointInterval > 0 {
		if !canSnap {
			s.fail(j, fmt.Errorf("service: backend %q does not support checkpointing (no ising.Snapshotter); pick a snapshottable engine or drop checkpoint_interval", spec.Backend))
			return
		}
		if s.cfg.CheckpointDir == "" {
			s.fail(j, fmt.Errorf("service: job asks for checkpoints but the server has no checkpoint directory"))
			return
		}
	}
	canCkpt := canSnap && s.cfg.CheckpointDir != "" && ckptEvery > 0

	var absAcc, eAcc stats.Accumulator
	done := 0
	if j.resume != nil {
		if !canSnap {
			s.fail(j, fmt.Errorf("service: checkpointed job %s uses backend %q, which cannot restore", j.id, spec.Backend))
			return
		}
		snap, err := ising.DecodeSnapshot(j.resume.Snapshot)
		if err == nil {
			err = snapper.Restore(snap)
		}
		if err != nil {
			s.fail(j, fmt.Errorf("service: resuming job %s: %w", j.id, err))
			return
		}
		done = j.resume.DoneSweeps
		absAcc.SetState(j.resume.AbsM)
		eAcc.SetState(j.resume.Energy)
	}

	total := spec.BurnIn + spec.Sweeps
	emit := func(sm sweep.Sample) {
		absM := math.Abs(sm.Magnetization)
		absAcc.Add(absM)
		eAcc.Add(sm.Energy)
		j.appendSample(encode.Sample{
			Job: j.id, Sweep: sm.Sweep,
			Magnetization: sm.Magnetization, AbsMagnetization: absM, Energy: sm.Energy,
		})
	}
	start := time.Now()
	ranHere := 0
	for done < total {
		if j.ctx.Err() != nil {
			s.interrupted(j, snapper, canCkpt, done, absAcc.State(), eAcc.State())
			return
		}
		limit := total
		if canCkpt {
			if next := (done/ckptEvery + 1) * ckptEvery; next < limit {
				limit = next
			}
		}
		n := limit - done
		if n > maxChunk {
			n = maxChunk
		}
		// Burn-in advances without measuring; the measured phase streams in
		// its own sweep coordinates so a resumed run keeps the emission
		// schedule of an uninterrupted one.
		chunk := n
		if done < spec.BurnIn {
			bn := spec.BurnIn - done
			if bn > n {
				bn = n
			}
			done = sweep.Stream(eng, done, bn, 1, nil)
			n -= bn
		}
		if n > 0 {
			done = spec.BurnIn + sweep.Stream(eng, done-spec.BurnIn, n, spec.SampleInterval, emit)
		}
		ranHere += chunk
		s.sweepsRun.Add(int64(chunk))
		j.setSweepsDone(done)
		if canCkpt && done < total && done%ckptEvery == 0 && j.ctx.Err() == nil {
			if err := s.writeCheckpoint(j, snapper, done, absAcc.State(), eAcc.State()); err != nil {
				s.fail(j, fmt.Errorf("service: checkpointing job %s: %w", j.id, err))
				return
			}
		}
	}

	elapsed := time.Since(start)
	r := &encode.Result{
		Backend: spec.Backend, Rows: spec.Rows, Cols: spec.Cols,
		Temperature: spec.Temperature, Seed: spec.Seed,
		Sweeps: spec.Sweeps, BurnIn: spec.BurnIn,
	}
	encode.Observables(r, eng)
	if absAcc.N() > 0 {
		r.MeanAbsMagnetization = absAcc.Mean()
		r.MeanAbsMagnetizationErr = absAcc.StdErr()
		r.MeanEnergy = eAcc.Mean()
		r.Samples = absAcc.N()
	}
	r.ElapsedSec = elapsed.Seconds()
	if ns := float64(elapsed.Nanoseconds()); ns > 0 && ranHere > 0 {
		r.FlipsPerNs = float64(spec.Rows) * float64(spec.Cols) * float64(ranHere) / ns
	}
	s.complete(j, r)
}

// runBatch runs a batched-ensemble job: Replicas independent chains of the
// spec's backend at one temperature, advanced together in this worker slot
// (one lane-packed engine for multispin, the lane-parallel adapter
// otherwise — backend.NewBatch picks). Every SampleInterval the job streams
// one sample per lane, and the result fans out into per-lane rows; lane L is
// exactly the single chain a separate job with seed ising.LaneSeed(seed, L)
// would run. Batched jobs do not checkpoint.
func (s *Server) runBatch(j *Job) {
	spec := j.spec
	b, err := backend.NewBatch(spec.Backend, backendConfig(spec, spec.Temperature, spec.Seed), spec.Replicas)
	if err != nil {
		s.fail(j, err)
		return
	}
	lanes := b.Lanes()
	absAcc := make([]stats.Accumulator, lanes)
	eAcc := make([]stats.Accumulator, lanes)
	var absAll stats.Accumulator
	total := spec.BurnIn + spec.Sweeps
	start := time.Now()
	done := 0
	for done < total {
		if j.ctx.Err() != nil {
			s.interrupted(j, nil, false, done, stats.AccumulatorState{}, stats.AccumulatorState{})
			return
		}
		n := total - done
		if n > maxChunk {
			n = maxChunk
		}
		for i := 0; i < n; i++ {
			b.Sweep()
			done++
			measured := done - spec.BurnIn
			if measured > 0 && measured%spec.SampleInterval == 0 {
				ms, es := b.Magnetizations(), b.Energies()
				for lane := 0; lane < lanes; lane++ {
					absM := math.Abs(ms[lane])
					absAcc[lane].Add(absM)
					eAcc[lane].Add(es[lane])
					absAll.Add(absM)
					j.appendSample(encode.Sample{
						Job: j.id, Sweep: measured, Lane: lane,
						Magnetization: ms[lane], AbsMagnetization: absM, Energy: es[lane],
					})
				}
			}
		}
		s.sweepsRun.Add(int64(n) * int64(lanes))
		j.setSweepsDone(done)
	}
	elapsed := time.Since(start)
	r := &encode.Result{
		Backend: spec.Backend, Rows: spec.Rows, Cols: spec.Cols,
		Temperature: spec.Temperature, Seed: spec.Seed,
		Sweeps: spec.Sweeps, BurnIn: spec.BurnIn,
	}
	encode.BatchObservables(r, b, spec.Seed)
	var eAll float64
	for lane := range r.Lanes {
		if absAcc[lane].N() == 0 {
			continue
		}
		r.Lanes[lane].MeanAbsMagnetization = absAcc[lane].Mean()
		r.Lanes[lane].MeanAbsMagnetizationErr = absAcc[lane].StdErr()
		r.Lanes[lane].MeanEnergy = eAcc[lane].Mean()
		r.Lanes[lane].Samples = absAcc[lane].N()
		eAll += eAcc[lane].Mean()
	}
	if absAll.N() > 0 {
		r.MeanAbsMagnetization = absAll.Mean()
		r.MeanAbsMagnetizationErr = absAll.StdErr()
		r.MeanEnergy = eAll / float64(lanes)
		r.Samples = absAll.N()
	}
	r.ElapsedSec = elapsed.Seconds()
	if ns := float64(elapsed.Nanoseconds()); ns > 0 && done > 0 {
		r.FlipsPerNs = float64(spec.Rows) * float64(spec.Cols) * float64(done) * float64(lanes) / ns
	}
	s.complete(j, r)
}

// runTempering runs a replica-exchange job: a ladder of replicas of the
// spec's backend coupled by Metropolis swaps every SwapInterval sweeps
// (internal/tempering), executed as one batched ensemble — one lane per rung
// (lane-packed for multispin, lane-parallel otherwise), bit-identical to the
// classic per-replica ladder. Samples stream from the coldest rung; the
// result carries the full per-temperature report. Tempering jobs do not
// checkpoint.
func (s *Server) runTempering(j *Job) {
	spec := j.spec
	ladder, err := backend.NewBatchLadder(spec.Backend,
		backendConfig(spec, 0, spec.Seed), spec.Temperatures)
	if err != nil {
		s.fail(j, err)
		return
	}
	ens, err := tempering.NewBatch(tempering.Config{
		Temperatures: spec.Temperatures,
		SwapInterval: spec.SwapInterval,
		Seed:         spec.Seed,
		Workers:      spec.Workers,
	}, ladder)
	if err != nil {
		s.fail(j, err)
		return
	}
	burnRounds := (spec.BurnIn + spec.SwapInterval - 1) / spec.SwapInterval
	rounds := spec.Sweeps / spec.SwapInterval
	if rounds < 1 {
		rounds = 1
	}
	start := time.Now()
	sweepsPerRound := spec.SwapInterval
	progress := 0
	step := func(measure bool, round int) bool {
		if j.ctx.Err() != nil {
			s.interrupted(j, nil, false, progress, stats.AccumulatorState{}, stats.AccumulatorState{})
			return false
		}
		ens.Round()
		if measure {
			ens.Measure()
			cold := ens.Backend(0)
			m := cold.Magnetization()
			j.appendSample(encode.Sample{
				Job: j.id, Sweep: (round + 1) * sweepsPerRound,
				Magnetization: m, AbsMagnetization: math.Abs(m), Energy: cold.Energy(),
			})
		}
		progress += sweepsPerRound
		s.sweepsRun.Add(int64(sweepsPerRound) * int64(ens.Replicas()))
		j.setSweepsDone(progress)
		return true
	}
	for i := 0; i < burnRounds; i++ {
		if !step(false, i) {
			return
		}
	}
	for i := 0; i < rounds; i++ {
		if !step(true, i) {
			return
		}
	}
	rep := ens.Report()
	elapsed := time.Since(start)
	r := &encode.Result{
		Backend: spec.Backend, Rows: spec.Rows, Cols: spec.Cols,
		Temperature: spec.Temperatures[0], Seed: spec.Seed,
		Sweeps: spec.Sweeps, BurnIn: spec.BurnIn,
	}
	encode.Observables(r, ens.Backend(0))
	encode.Tempering(r, rep)
	r.Ops = ens.Counts().Ops
	r.ElapsedSec = elapsed.Seconds()
	if ns := float64(elapsed.Nanoseconds()); ns > 0 {
		r.FlipsPerNs = float64(spec.Rows) * float64(spec.Cols) * float64(progress) * float64(ens.Replicas()) / ns
	}
	s.complete(j, r)
}

// Workers returns the worker-pool size (for reporting).
func (s *Server) Workers() int { return s.cfg.Workers }
