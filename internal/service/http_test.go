package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tpuising/internal/service/encode"
)

// postJob submits a spec over HTTP and decodes the returned status.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (JobStatus, int) {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestHTTPEndpoints is the endpoint smoke: submit, poll, stream, fetch the
// result, list, cancel, stats — the loop a daemon client performs.
func TestHTTPEndpoints(t *testing.T) {
	srv, _ := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := JobSpec{Backend: "multispin", Rows: 8, Cols: 64, Sweeps: 24,
		Temperature: 2.4, Seed: 2, SampleInterval: 2}
	st, code := postJob(t, ts, spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit returned %d", code)
	}
	if st.ID == "" || st.Spec.Backend != "multispin" {
		t.Fatalf("submit status: %+v", st)
	}

	// The stream endpoint delivers every sample as an NDJSON line and ends
	// when the job does.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var streamed []encode.Sample
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var sm encode.Sample
		if err := json.Unmarshal(scanner.Bytes(), &sm); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		streamed = append(streamed, sm)
	}
	resp.Body.Close()
	if len(streamed) != 12 {
		t.Fatalf("streamed %d samples, want 12", len(streamed))
	}
	if streamed[0].Job != st.ID || streamed[11].Sweep != 24 {
		t.Fatalf("stream contents: first %+v, last %+v", streamed[0], streamed[11])
	}

	// Poll the job until done, then fetch the result.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var got JobStatus
		if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &got); code != http.StatusOK {
			t.Fatalf("poll returned %d", code)
		} else if got.State == StateDone {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", got)
		}
		time.Sleep(time.Millisecond)
	}
	var result encode.Result
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", &result); code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	if result.Backend != "multispin" || result.Samples != 12 || result.Step != 48 {
		t.Fatalf("result: %+v", result)
	}

	// Cached resubmission answers 200 immediately with the result inline.
	st2, code := postJob(t, ts, spec)
	if code != http.StatusOK || !st2.Cached || st2.Result == nil {
		t.Fatalf("cached submit: code %d, status %+v", code, st2)
	}

	// List shows both jobs; stats count the cache hit.
	var list []JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: code %d, %d jobs", code, len(list))
	}
	var stats Stats
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if stats.JobsSubmitted != 2 || stats.JobsCached != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Unknown job: 404 with a JSON error body.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || apiErr.Error == "" {
		t.Fatalf("unknown job: %d %+v", resp.StatusCode, apiErr)
	}

	// Invalid spec: 400, and the unknown-backend message lists the registry.
	for body, wantFragment := range map[string]string{
		`{"backend":"nope","rows":8,"sweeps":1}`:                   "want one of",
		`{"backend":"cpu","rows":8}`:                               "sweeps",
		`{"backend":"cpu","rows":8,"sweeps":1,"bogus_field":true}`: "bogus_field",
		`not json at all`:                                          "bad job spec",
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr apiError
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(apiErr.Error, wantFragment) {
			t.Fatalf("body %q: %d %q (want fragment %q)", body, resp.StatusCode, apiErr.Error, wantFragment)
		}
	}
}

func TestHTTPCancel(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := JobSpec{Backend: "checkerboard", Rows: 64, Cols: 64, Sweeps: 500000,
		Temperature: 2.3, Seed: 1, SampleInterval: 1000}
	st, _ := postJob(t, ts, spec)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.State != StateCanceled {
		t.Fatalf("cancel: %d %+v", resp.StatusCode, got)
	}
	// The result endpoint reports the cancellation as a conflict.
	if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, st.ID), nil); code != http.StatusConflict {
		t.Fatalf("result of canceled job returned %d, want 409", code)
	}
}

// TestHTTPExpiredVsUnknown pins the wire-level error taxonomy: a job ID the
// server issued and then evicted answers 410 Gone with "expired" in the
// body; an ID it never issued answers 404.
func TestHTTPExpiredVsUnknown(t *testing.T) {
	srv, _ := New(Config{Workers: 1, JobHistory: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var first string
	for seed := uint64(1); seed <= 3; seed++ {
		st, code := postJob(t, ts, JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: seed})
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit returned %d", code)
		}
		if first == "" {
			first = st.ID
		}
		j, err := srv.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	for _, path := range []string{"/v1/jobs/" + first, "/v1/jobs/" + first + "/result", "/v1/jobs/" + first + "/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var apiErr apiError
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone || !strings.Contains(apiErr.Error, "expired") {
			t.Fatalf("GET %s for evicted job: %d %q, want 410 with \"expired\"", path, resp.StatusCode, apiErr.Error)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Fatalf("never-issued ID returned %d, want 404", code)
	}
}

// TestHTTPClientQuota checks the HTTP quota surface: the X-Client-ID header
// keys the quota, an over-budget submission answers 429, and a different
// header value is a different budget.
func TestHTTPClientQuota(t *testing.T) {
	srv, _ := New(Config{Workers: 1, MaxQueuedPerClient: 1})
	defer srv.Close()
	release := make(chan struct{})
	srv.testHookRun = func(*Job) { <-release }
	defer close(release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func(client string, seed uint64) int {
		blob, err := json.Marshal(JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var apiErr apiError
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && !strings.Contains(apiErr.Error, "quota") {
			t.Fatalf("429 body should name the quota, got %q", apiErr.Error)
		}
		return resp.StatusCode
	}
	if code := submit("alice", 1); code != http.StatusAccepted {
		t.Fatalf("first submission returned %d", code)
	}
	if code := submit("alice", 2); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission returned %d, want 429", code)
	}
	if code := submit("bob", 3); code != http.StatusAccepted {
		t.Fatalf("bob throttled by alice's quota: %d", code)
	}
}

// TestHTTPMetrics checks the Prometheus exposition: text format, HELP/TYPE
// lines, and values agreeing with the /v1/stats snapshot they mirror.
func TestHTTPMetrics(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, _ := postJob(t, ts, JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: 1})
	j, err := srv.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		"# TYPE isingd_jobs_submitted_total counter",
		"# TYPE isingd_cache_bytes gauge",
		"isingd_jobs_submitted_total 1",
		"isingd_jobs_completed_total 1",
		"isingd_workers 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
	stats := srv.Stats()
	if !strings.Contains(text, fmt.Sprintf("isingd_sweeps_run_total %d", stats.SweepsRun)) {
		t.Fatalf("metrics disagree with stats (sweeps_run %d):\n%s", stats.SweepsRun, text)
	}
}

// TestHTTPMetricsHistograms checks the histogram families, build-info gauge
// and HEAD support of /metrics: after one job runs, every stage histogram is
// declared with its bucket/sum/count series, the build labels surface, and a
// HEAD probe answers the exact Content-Length with no body.
func TestHTTPMetricsHistograms(t *testing.T) {
	// A fake clock freezes isingd_uptime_seconds, so the HEAD render below
	// is byte-identical to the GET it must match.
	clock := newFakeClock()
	srv, _ := New(Config{Workers: 1, Version: "v9-test", Now: clock.Now})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, _ := postJob(t, ts, JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: 1})
	j, err := srv.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	for _, want := range []string{
		"# TYPE isingd_queue_wait_seconds histogram",
		"# TYPE isingd_run_seconds histogram",
		"# TYPE isingd_checkpoint_write_seconds histogram",
		"# TYPE isingd_stream_write_seconds histogram",
		`isingd_queue_wait_seconds_bucket{le="+Inf"} 1`,
		"isingd_queue_wait_seconds_count 1",
		"isingd_run_seconds_count 1",
		`isingd_build_info{version="v9-test",goversion="`,
		"# TYPE isingd_uptime_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}

	// HEAD answers the headers a scraper sizes the scrape by — the GET
	// body's exact length — without shipping the body.
	head, err := http.Head(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	headBody, err := io.ReadAll(head.Body)
	head.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if head.StatusCode != http.StatusOK || len(headBody) != 0 {
		t.Fatalf("HEAD /metrics: status %d, %d body bytes", head.StatusCode, len(headBody))
	}
	if cl := head.Header.Get("Content-Length"); cl != fmt.Sprint(len(blob)) {
		t.Fatalf("HEAD Content-Length %s, GET body is %d bytes", cl, len(blob))
	}
}

// TestHTTPTrace checks the trace endpoint's wire behavior: a completed job
// answers its full timeline, a never-issued ID is 404, and an evicted ID is
// 410 — the same taxonomy as every other per-job endpoint.
func TestHTTPTrace(t *testing.T) {
	srv, _ := New(Config{Workers: 1, JobHistory: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, _ := postJob(t, ts, JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: 1})
	j, err := srv.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	var tr JobTrace
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/trace", &tr); code != http.StatusOK {
		t.Fatalf("trace returned %d", code)
	}
	if tr.ID != st.ID || tr.State != StateDone {
		t.Fatalf("trace header: %+v", tr)
	}
	events := make([]string, len(tr.Events))
	for i, ev := range tr.Events {
		events[i] = ev.Event
	}
	want := []string{EventSubmitted, EventQueued, EventAdmitted, EventRunning, EventCompleted}
	if strings.Join(events, ",") != strings.Join(want, ",") {
		t.Fatalf("timeline %v, want %v", events, want)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/job-999999/trace", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job trace returned %d, want 404", code)
	}
	// Evict the first job by running two more through the history bound.
	for seed := uint64(2); seed <= 3; seed++ {
		more, _ := postJob(t, ts, JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: seed})
		mj, err := srv.Get(more.ID)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, mj)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/trace", nil); code != http.StatusGone {
		t.Fatalf("evicted job trace returned %d, want 410", code)
	}
}

// TestRequestLog checks the HTTP middleware: one structured line per request
// carrying method, path, status and the client identity header.
func TestRequestLog(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(RequestLog(logger, srv.Handler()))
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/job-999999", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := buf.String()
	for _, want := range []string{"method=GET", "path=/v1/jobs/job-999999", "status=404", "client=alice"} {
		if !strings.Contains(line, want) {
			t.Fatalf("request log missing %q:\n%s", want, line)
		}
	}
}
