package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"tpuising/internal/service/encode"
)

// Handler returns the server's REST API:
//
//	POST   /v1/jobs             submit a JobSpec; 200 with a done (cached)
//	                            job, 202 with a queued one
//	GET    /v1/jobs             list job statuses
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/result the encode.Result (202 + status until done)
//	GET    /v1/jobs/{id}/stream NDJSON encode.Sample lines while the job runs
//	GET    /v1/jobs/{id}/trace  the job's lifecycle timeline (JobTrace)
//	GET    /v1/stats            server counters (JSON)
//	GET    /metrics             counters, gauges and stage-latency histograms
//	                            in Prometheus text format
//
// Submissions may carry an X-Client-ID header: it fills JobSpec.Client when
// the spec leaves it empty, keying the per-client quotas. A submission over
// quota answers 429; a status poll for a job evicted by the history
// retention answers 410 (Gone, "expired") where an ID that never existed
// answers 404.
//
// cmd/isingd serves it over TCP; tests and examples mount it on
// net/http/httptest servers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad job spec: %w", err))
		return
	}
	if spec.Client == "" {
		spec.Client = r.Header.Get("X-Client-ID")
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrQuotaExceeded):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st := j.Status()
	if st.State == StateDone {
		writeJSON(w, http.StatusOK, st) // cache hit: the result is already here
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// getJob resolves the {id} path value, writing the error itself: 410 (Gone)
// for a job the history retention evicted — the client should resubmit the
// spec for a cache hit, not retry the poll — 410 with the distinct
// corruption message for a job whose checkpoint was quarantined at startup
// (resubmit to recompute; the ID itself is lost), and 404 for an ID this
// server never issued.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.Get(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrJobExpired) || errors.Is(err, ErrJobCorrupt):
		writeError(w, http.StatusGone, err)
		return nil, false
	case err != nil:
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownJob, r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.getJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	j, err := s.Cancel(j.ID())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, st.Result)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, errors.New(st.Error))
	case StateCanceled:
		writeError(w, http.StatusConflict, fmt.Errorf("service: job %s was canceled", st.ID))
	default:
		writeJSON(w, http.StatusAccepted, st) // not done yet: poll again
	}
}

// handleStream writes the job's samples as NDJSON while they arrive: first
// the retained history, then live samples until the job ends or the client
// goes away. The response is flushed line by line, so a client reads each
// observation as the chain produces it.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		// Every iteration is one subscriber wakeup; the counter feeds the
		// stats endpoint so load tests can measure wakeups per sweep. With
		// watch firing only on sample appends and terminal transitions, the
		// count scales with samples written, not sweeps run.
		s.streamWakeups.Add(1)
		samples, dropped, terminal, updated := j.watch()
		// A wakeup with new samples is one write batch: encode the lines and
		// flush them, observing the whole batch (encode through flush) in the
		// stream-write histogram. Empty wakeups observe nothing.
		batch := sent < len(samples)
		start := s.now()
		for ; sent < len(samples); sent++ {
			if err := encode.WriteLine(w, samples[sent]); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if batch {
			s.streamWriteH.Observe(s.now().Sub(start))
		}
		if terminal {
			if dropped > 0 {
				// The history bound was exceeded: say so instead of letting
				// the stream end looking complete.
				_ = encode.WriteLine(w, encode.Sample{Job: j.ID(), Truncated: dropped})
			}
			return
		}
		select {
		case <-updated:
		case <-s.closing:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves GET /v1/jobs/{id}/trace: the job's recorded lifecycle
// timeline with derived stage durations. The trace shares the job's
// retention: once the history evicts the job, its trace answers 410 with it.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.getJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.Trace())
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
