package service

import (
	"encoding/json"
	"fmt"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
)

// JobSpec is the JSON description of one simulation job: which engine, what
// lattice, how long, and how it is observed. It is the wire format of the
// POST /v1/jobs endpoint and the identity the result cache is keyed on.
//
// Two kinds of job share the type: a single chain at Temperature (the
// default), and a replica-exchange ensemble when Temperatures lists a ladder.
type JobSpec struct {
	// Backend is the engine's registry name or alias
	// (internal/ising/backend); errors list the registry.
	Backend string `json:"backend"`
	// Rows and Cols are the lattice dimensions (Cols 0 = square).
	Rows int `json:"rows"`
	Cols int `json:"cols,omitempty"`
	// Temperature is the single-chain temperature in J/kB (0 = the critical
	// temperature). Must be unset for tempering jobs.
	Temperature float64 `json:"temperature,omitempty"`
	// Sweeps is the number of measured whole-lattice updates; BurnIn the
	// discarded updates before them.
	Sweeps int `json:"sweeps"`
	BurnIn int `json:"burnin,omitempty"`
	// Seed seeds the run (tempering replicas derive per-slot seeds from it).
	Seed uint64 `json:"seed,omitempty"`
	// Hot starts from a random (infinite-temperature) configuration.
	Hot bool `json:"hot,omitempty"`
	// SampleInterval is the number of sweeps between streamed samples
	// (0 = every sweep). It shapes the measured means, so it is part of the
	// job's cache identity.
	SampleInterval int `json:"sample_interval,omitempty"`
	// Workers is the engine's worker-goroutine count (0 = GOMAXPROCS). Every
	// registered engine is bit-deterministic in it, so it is NOT part of the
	// cache identity.
	Workers int `json:"workers,omitempty"`
	// GridR and GridC select the shard grid of the sharded and
	// sharded-ensemble backends.
	GridR int `json:"grid_r,omitempty"`
	GridC int `json:"grid_c,omitempty"`
	// CheckpointInterval is the number of sweeps between checkpoints
	// (0 = the server default). It never changes any result, so it is NOT
	// part of the cache identity. Setting it for an engine that does not
	// implement ising.Snapshotter fails the job.
	CheckpointInterval int `json:"checkpoint_interval,omitempty"`
	// Temperatures, when non-empty, makes the job a replica-exchange
	// ensemble over the given ladder (strictly ascending, >= 2 rungs) with a
	// swap attempt every SwapInterval sweeps (0 = 10, the CLI default).
	Temperatures []float64 `json:"temperatures,omitempty"`
	SwapInterval int       `json:"swap_interval,omitempty"`
	// Replicas, when > 1, makes the job a batched ensemble: B independent
	// chains of the backend at the job's single temperature, lane L seeded
	// ising.LaneSeed(seed, L), advanced together in one worker slot
	// (lane-packed for the multispin and sharded-ensemble backends,
	// lane-parallel otherwise). The
	// result carries one row per lane and the stream one sample per lane per
	// interval. At most MaxReplicas; 0 and 1 both mean a single chain.
	// Mutually exclusive with Temperatures (a ladder already defines its
	// replica count) and with checkpointing (no batch snapshot support).
	Replicas int `json:"replicas,omitempty"`
	// Client identifies the submitting client for the server's per-client
	// quotas (Config.MaxQueuedPerClient / MaxRunningPerClient). Empty means
	// anonymous; all anonymous submissions share one quota bucket. The HTTP
	// layer fills it from the X-Client-ID header when the spec leaves it
	// empty. It never changes a result, so it is NOT part of the cache
	// identity — two clients submitting the same physics share one entry.
	Client string `json:"client,omitempty"`
	// Priority orders the queue: 0 (default) to MaxPriority, higher first,
	// FIFO within a priority. A stream of high-priority jobs can starve
	// lower priorities by design — per-client quotas bound the damage: the
	// dequeue skips clients at their MaxRunningPerClient cap, so one client
	// flooding priority-9 jobs cannot hold more workers than its cap while
	// a quiet client's priority-0 job runs on the rest (pinned by
	// TestQuotaFairnessUnderStarvationFlood). Like Client, it schedules the
	// job without changing its result, so it is NOT part of the cache
	// identity.
	Priority int `json:"priority,omitempty"`
}

// MaxReplicas bounds JobSpec.Replicas: the word width of the lane-packed
// ensemble engine, so a multispin batch job always fits one packed engine.
const MaxReplicas = 64

// MaxPriority bounds JobSpec.Priority (0..MaxPriority, higher runs sooner).
const MaxPriority = 9

// maxClientLen bounds JobSpec.Client: an identity, not a payload channel.
const maxClientLen = 64

// defaultSwapInterval mirrors the isingtpu -swapint default.
const defaultSwapInterval = 10

// Normalize validates the spec and fills the documented defaults, returning
// the canonical form the scheduler runs and the cache is keyed on. Backend
// errors come from the registry's own Canonical, so they list the valid
// engines exactly like the CLI's -backend flag error does.
func (s JobSpec) Normalize() (JobSpec, error) {
	out := s
	name, err := backend.Canonical(s.Backend)
	if err != nil {
		return out, err
	}
	out.Backend = name
	if out.Rows <= 0 {
		return out, fmt.Errorf("service: invalid rows %d", out.Rows)
	}
	if out.Cols == 0 {
		out.Cols = out.Rows
	}
	if out.Cols < 0 {
		return out, fmt.Errorf("service: invalid cols %d", out.Cols)
	}
	if out.Sweeps <= 0 {
		return out, fmt.Errorf("service: sweeps must be positive, got %d", out.Sweeps)
	}
	if out.BurnIn < 0 {
		return out, fmt.Errorf("service: burnin must not be negative, got %d", out.BurnIn)
	}
	if out.SampleInterval <= 0 {
		out.SampleInterval = 1
	}
	if out.CheckpointInterval < 0 {
		return out, fmt.Errorf("service: checkpoint_interval must not be negative, got %d", out.CheckpointInterval)
	}
	if out.Priority < 0 || out.Priority > MaxPriority {
		return out, fmt.Errorf("service: priority must be 0..%d, got %d", MaxPriority, out.Priority)
	}
	if len(out.Client) > maxClientLen {
		return out, fmt.Errorf("service: client ID longer than %d bytes", maxClientLen)
	}
	if out.Replicas < 0 {
		return out, fmt.Errorf("service: replicas must not be negative, got %d", out.Replicas)
	}
	if out.Replicas > MaxReplicas {
		return out, fmt.Errorf("service: at most %d replicas per batched job, got %d", MaxReplicas, out.Replicas)
	}
	if out.Replicas == 0 {
		out.Replicas = 1
	}
	if out.Replicas > 1 {
		if len(out.Temperatures) > 0 {
			return out, fmt.Errorf("service: replicas and temperatures are mutually exclusive (a tempering ladder already defines its replica count)")
		}
		if out.CheckpointInterval > 0 {
			return out, fmt.Errorf("service: batched jobs cannot checkpoint (no ensemble snapshot support)")
		}
	}
	if len(out.Temperatures) > 0 {
		if out.Temperature != 0 {
			return out, fmt.Errorf("service: temperature and temperatures are mutually exclusive (single chain vs tempering ladder)")
		}
		if len(out.Temperatures) < 2 {
			return out, fmt.Errorf("service: a tempering ladder needs at least 2 temperatures, got %d", len(out.Temperatures))
		}
		for i, t := range out.Temperatures {
			if t <= 0 {
				return out, fmt.Errorf("service: ladder temperature %d is %g, must be positive", i, t)
			}
			if i > 0 && t <= out.Temperatures[i-1] {
				return out, fmt.Errorf("service: ladder must be strictly ascending, got %g after %g", t, out.Temperatures[i-1])
			}
		}
		if out.SwapInterval <= 0 {
			out.SwapInterval = defaultSwapInterval
		}
		if out.CheckpointInterval > 0 {
			return out, fmt.Errorf("service: tempering jobs cannot checkpoint (no ensemble snapshot support)")
		}
	} else {
		if out.SwapInterval != 0 {
			return out, fmt.Errorf("service: swap_interval only applies to tempering jobs (set temperatures)")
		}
		if out.Temperature < 0 {
			return out, fmt.Errorf("service: invalid temperature %g", out.Temperature)
		}
		if out.Temperature == 0 {
			out.Temperature = ising.CriticalTemperature()
		}
	}
	return out, nil
}

// cacheIdentity is the subset of a normalized spec that determines the
// result. Workers, CheckpointInterval, Client and Priority are deliberately
// absent: every registered engine is bit-deterministic in its worker count,
// checkpointing never changes a chain (both asserted by tests), and client
// identity and queue priority only schedule a job, so specs differing only
// in them share one cache entry.
type cacheIdentity struct {
	Backend        string    `json:"backend"`
	Rows           int       `json:"rows"`
	Cols           int       `json:"cols"`
	Temperature    float64   `json:"temperature"`
	Sweeps         int       `json:"sweeps"`
	BurnIn         int       `json:"burnin"`
	Seed           uint64    `json:"seed"`
	Hot            bool      `json:"hot"`
	SampleInterval int       `json:"sample_interval"`
	GridR          int       `json:"grid_r"`
	GridC          int       `json:"grid_c"`
	Temperatures   []float64 `json:"temperatures"`
	SwapInterval   int       `json:"swap_interval"`
	// Replicas is part of the identity: a B=4 batch and a B=8 batch of one
	// spec are different simulations and must never share a cache entry.
	Replicas int `json:"replicas"`
}

// CacheKey returns the deduplication key of a normalized spec: two submitted
// specs with equal keys are the same simulation, and the second is served
// from the result cache without stepping any backend.
func (s JobSpec) CacheKey() string {
	blob, err := json.Marshal(cacheIdentity{
		Backend: s.Backend, Rows: s.Rows, Cols: s.Cols,
		Temperature: s.Temperature, Sweeps: s.Sweeps, BurnIn: s.BurnIn,
		Seed: s.Seed, Hot: s.Hot, SampleInterval: s.SampleInterval,
		GridR: s.GridR, GridC: s.GridC,
		Temperatures: s.Temperatures, SwapInterval: s.SwapInterval,
		Replicas: s.Replicas,
	})
	if err != nil {
		// cacheIdentity contains only marshalable fields; this cannot happen.
		panic(err)
	}
	return string(blob)
}

// totalSweeps is the whole-lattice updates a job performs end to end
// (per replica, for tempering jobs).
func (s JobSpec) totalSweeps() int {
	if len(s.Temperatures) > 0 {
		burnRounds := (s.BurnIn + s.SwapInterval - 1) / s.SwapInterval
		rounds := s.Sweeps / s.SwapInterval
		if rounds < 1 {
			rounds = 1
		}
		return (burnRounds + rounds) * s.SwapInterval
	}
	return s.BurnIn + s.Sweeps
}
