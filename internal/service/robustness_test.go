package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tpuising/internal/service/encode"
)

// waitRunning polls until the job leaves the queue (a worker picked it up)
// or the test times out.
func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running: %+v", j.ID(), j.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamWatchWakeupsScaleWithSamples is the wake-storm regression: a
// stream watcher of a job that runs many sweeps per sample must wake per
// sample, not per sweep. Before the fix, setSweepsDone broadcast to every
// watcher on every sweep, so this loop ran O(sweeps) iterations with nothing
// to read; now watch() fires only on sample appends and terminal
// transitions, so the iteration count is bounded by the sample count.
func TestStreamWatchWakeupsScaleWithSamples(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	const sweeps, interval = 2000, 500 // 4 samples, 2000 per-sweep updates
	j, err := srv.Submit(JobSpec{Backend: "checkerboard", Rows: 16, Sweeps: sweeps,
		Temperature: 2.5, Seed: 1, SampleInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	iterations, sent := 0, 0
	for {
		iterations++
		samples, _, terminal, updated := j.watch()
		sent = len(samples)
		if terminal {
			break
		}
		<-updated
	}
	wantSamples := sweeps / interval
	if sent != wantSamples {
		t.Fatalf("watched %d samples, want %d", sent, wantSamples)
	}
	// One iteration per sample append, one for the terminal transition, one
	// initial look, plus slack for coalescing races. Per-sweep broadcasts
	// would push this to ~sweeps.
	if limit := wantSamples + 4; iterations > limit {
		t.Fatalf("stream watcher woke %d times for %d samples over %d sweeps (want <= %d): per-sweep wake-storm is back",
			iterations, wantSamples, sweeps, limit)
	}
}

// TestCancelFreesQueueSlot is the queue-pinning regression: canceling queued
// jobs must release their queue slots immediately. Before the fix a canceled
// job sat in the queue channel until a worker drained it, so a full queue of
// canceled jobs kept rejecting fresh submissions while the workers were busy
// elsewhere.
func TestCancelFreesQueueSlot(t *testing.T) {
	srv, _ := New(Config{Workers: 1, QueueDepth: 2})
	defer srv.Close()
	long := JobSpec{Backend: "checkerboard", Rows: 64, Cols: 64, Sweeps: 500000,
		Temperature: 2.3, SampleInterval: 1000}

	// Occupy the single worker.
	running := long
	running.Seed = 1
	jr, err := srv.Submit(running)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, jr)

	// Fill every queue slot, then verify the queue is really full.
	var queued []*Job
	for seed := uint64(2); seed <= 3; seed++ {
		s := long
		s.Seed = seed
		j, err := srv.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	over := long
	over.Seed = 4
	if _, err := srv.Submit(over); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit to a full queue: %v, want ErrQueueFull", err)
	}

	// Cancel every queued job: their slots must free without any worker
	// becoming available.
	for _, j := range queued {
		if _, err := srv.Cancel(j.ID()); err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.State != StateCanceled {
			t.Fatalf("queued job %s after cancel: %+v", j.ID(), st)
		}
	}
	fresh := long
	fresh.Seed = 5
	jf, err := srv.Submit(fresh)
	if err != nil {
		t.Fatalf("submit after canceling all queued jobs: %v (canceled jobs still pin queue slots)", err)
	}
	// The canceled jobs must never reach a worker.
	if _, err := srv.Cancel(jf.ID()); err != nil {
		t.Fatal(err)
	}
	for _, j := range queued {
		if st := j.Status(); st.State != StateCanceled {
			t.Fatalf("canceled queued job %s changed state: %+v", j.ID(), st)
		}
	}
	if got := srv.Stats().JobsCanceled; got != 3 {
		t.Fatalf("jobs_canceled = %d, want 3", got)
	}
}

// TestStalledStreamSubscriberDoesNotBlock checks slow-subscriber isolation:
// a client that opens an NDJSON stream and never reads must not hold up the
// job, a well-behaved subscriber of the same job, or Server.Close.
func TestStalledStreamSubscriberDoesNotBlock(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())

	j, err := srv.Submit(JobSpec{Backend: "checkerboard", Rows: 32, Cols: 32,
		Sweeps: 6000, Temperature: 2.5, Seed: 1, SampleInterval: 200})
	if err != nil {
		t.Fatal(err)
	}

	// The stalled subscriber: sends the request, then never reads a byte.
	stalled, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(stalled, "GET /v1/jobs/%s/stream HTTP/1.1\r\nHost: stall\r\n\r\n", j.ID())

	// The well-behaved subscriber must still receive the whole stream.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		lines++
	}
	resp.Body.Close()
	if lines != 30 {
		t.Fatalf("good subscriber read %d lines next to a stalled one, want 30", lines)
	}
	if st := waitDone(t, j); st.State != StateDone {
		t.Fatalf("job next to a stalled subscriber: %+v", st)
	}
	if wakes := srv.Stats().StreamWakeups; wakes == 0 {
		t.Fatal("stream_wakeups counter never moved")
	}

	// Server.Close must return even though the stalled connection is open.
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Server.Close blocked on a stalled stream subscriber")
	}
	stalled.Close()
	ts.Close()
}

// TestStreamOfCanceledJobTerminates checks that canceling a job promptly
// ends its open NDJSON streams instead of leaving subscribers hanging.
func TestStreamOfCanceledJobTerminates(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	j, err := srv.Submit(JobSpec{Backend: "checkerboard", Rows: 64, Cols: 64,
		Sweeps: 500000, Temperature: 2.3, Seed: 1, SampleInterval: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	eof := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		eof <- err
	}()
	if _, err := srv.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-eof:
		if err != nil {
			t.Fatalf("stream of canceled job ended with %v, want clean EOF", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream of a canceled job never terminated")
	}
}

// TestTruncatedLineExactlyOnce checks the sample-history contract under a
// tiny Config.SampleHistory: a stream of a job that overran the bound ends
// with exactly one Truncated bookkeeping line carrying the drop count.
func TestTruncatedLineExactlyOnce(t *testing.T) {
	srv, _ := New(Config{Workers: 1, SampleHistory: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	j, err := srv.Submit(JobSpec{Backend: "checkerboard", Rows: 8, Sweeps: 10,
		Temperature: 2.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var observations, truncated int
	var last encode.Sample
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var sm encode.Sample
		if err := json.Unmarshal(scanner.Bytes(), &sm); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		last = sm
		if sm.Truncated > 0 {
			truncated++
		} else {
			observations++
		}
	}
	if observations != 4 {
		t.Fatalf("streamed %d retained samples, want 4", observations)
	}
	if truncated != 1 {
		t.Fatalf("stream carried %d Truncated lines, want exactly 1", truncated)
	}
	if last.Truncated != 6 {
		t.Fatalf("final line %+v, want the Truncated=6 bookkeeping line last", last)
	}
}
