// Package service is the long-running simulation layer over the backend
// registry: the first subsystem in the repository that owns *time* —
// queueing, cancellation, checkpoint/resume — rather than a single run.
//
// A Server accepts JSON job specs (backend name, lattice, temperature or
// tempering ladder, sweeps, seed, shard grid), schedules them on a bounded
// worker pool over internal/ising/backend, streams observables as NDJSON
// while jobs run, and serves a deduplicating result cache keyed by the
// physics-relevant part of the spec, so identical queries never re-simulate.
// Engines that implement ising.Snapshotter are checkpointed every K sweeps;
// a daemon restarted over the same checkpoint directory resumes interrupted
// jobs bit-identically (the chain state, the running observable
// accumulators and the sample emission schedule all continue exactly where
// they stopped — asserted by the determinism tests in this package). With a
// checkpoint directory, admission itself is durable: Submit parks each job
// behind a written intent record before any worker may pick it up, so even
// jobs without an engine snapshot (tempering ladders, batched ensembles)
// survive a restart by deterministically rerunning from sweep zero.
//
// The Server is bounded on every axis a long-lived daemon can grow along:
// the queue (Config.QueueDepth), per-client admissions
// (Config.MaxQueuedPerClient / MaxRunningPerClient, keyed by JobSpec.Client
// or the X-Client-ID header, with JobSpec.Priority ordering the dequeue),
// the result cache (Config.CacheSize entries, CacheBytes bytes, CacheTTL
// age — an LRU, not a map that grows forever) and the finished-job table
// (Config.JobHistory count, JobTTL age). Evicted job IDs answer
// ErrJobExpired (HTTP 410), distinct from never-issued IDs (404). Every
// bound has a counter in Stats, exposed as Prometheus text at GET /metrics.
//
// The data flow of one job:
//
//	POST /v1/jobs ─ Normalize ─ cache? ──hit── stored encode.Result
//	                              │miss
//	                           queue (bounded) ─ worker pool
//	                              │
//	                           backend.New ─ sweep.Stream chunks
//	                              ├─ samples → NDJSON /stream + accumulators
//	                              ├─ checkpoint every K sweeps (Snapshotter)
//	                              └─ encode.Result → cache + /result
//
// cmd/isingd exposes the Server over HTTP; examples/service drives it
// in-process. See ARCHITECTURE.md for how the service composes with the
// sharding and tempering layers, and internal/perf's checkpoint-traffic
// model for the modelled cost of the state dumps.
package service
