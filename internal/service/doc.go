// Package service is the long-running simulation layer over the backend
// registry: the first subsystem in the repository that owns *time* —
// queueing, cancellation, checkpoint/resume — rather than a single run.
//
// A Server accepts JSON job specs (backend name, lattice, temperature or
// tempering ladder, sweeps, seed, shard grid), schedules them on a bounded
// worker pool over internal/ising/backend, streams observables as NDJSON
// while jobs run, and serves a deduplicating result cache keyed by the
// physics-relevant part of the spec, so identical queries never re-simulate.
// Engines that implement ising.Snapshotter are checkpointed every K sweeps;
// a daemon restarted over the same checkpoint directory resumes interrupted
// jobs bit-identically (the chain state, the running observable
// accumulators and the sample emission schedule all continue exactly where
// they stopped — asserted by the determinism tests in this package).
//
// The data flow of one job:
//
//	POST /v1/jobs ─ Normalize ─ cache? ──hit── stored encode.Result
//	                              │miss
//	                           queue (bounded) ─ worker pool
//	                              │
//	                           backend.New ─ sweep.Stream chunks
//	                              ├─ samples → NDJSON /stream + accumulators
//	                              ├─ checkpoint every K sweeps (Snapshotter)
//	                              └─ encode.Result → cache + /result
//
// cmd/isingd exposes the Server over HTTP; examples/service drives it
// in-process. See ARCHITECTURE.md for how the service composes with the
// sharding and tempering layers, and internal/perf's checkpoint-traffic
// model for the modelled cost of the state dumps.
package service
