package service

import (
	"strings"
	"testing"

	"tpuising/internal/ising"
)

// TestReplicasValidation exercises the bounds and exclusions of the new
// Replicas field.
func TestReplicasValidation(t *testing.T) {
	base := JobSpec{Backend: "multispin", Rows: 8, Cols: 64, Sweeps: 4}
	for _, tc := range []struct {
		mutate  func(*JobSpec)
		wantErr string
	}{
		{func(s *JobSpec) { s.Replicas = -1 }, "must not be negative"},
		{func(s *JobSpec) { s.Replicas = MaxReplicas + 1 }, "at most"},
		{func(s *JobSpec) { s.Replicas = 4; s.Temperatures = []float64{2.0, 2.5} }, "mutually exclusive"},
		{func(s *JobSpec) { s.Replicas = 4; s.CheckpointInterval = 2 }, "cannot checkpoint"},
	} {
		spec := base
		tc.mutate(&spec)
		_, err := spec.Normalize()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("spec %+v: error %v, want it to mention %q", spec, err, tc.wantErr)
		}
	}
	// 0 and 1 both normalize to a single chain.
	for _, b := range []int{0, 1} {
		spec := base
		spec.Replicas = b
		norm, err := spec.Normalize()
		if err != nil || norm.Replicas != 1 {
			t.Errorf("Replicas=%d: normalized to %d (%v), want 1", b, norm.Replicas, err)
		}
	}
	spec := base
	spec.Replicas = MaxReplicas
	if _, err := spec.Normalize(); err != nil {
		t.Errorf("Replicas=%d rejected: %v", MaxReplicas, err)
	}
}

// TestReplicasCacheIdentity: the replica count is part of the cache key — a
// B=4 and a B=8 run of the same spec must never collide — while B=0 and B=1
// share the single-chain entry.
func TestReplicasCacheIdentity(t *testing.T) {
	norm := func(b int) JobSpec {
		s, err := JobSpec{Backend: "multispin", Rows: 8, Cols: 64, Sweeps: 4, Seed: 3, Replicas: b}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if norm(4).CacheKey() == norm(8).CacheKey() {
		t.Fatal("B=4 and B=8 share a cache key")
	}
	if norm(0).CacheKey() != norm(1).CacheKey() {
		t.Fatal("B=0 and B=1 are both single chains but have different cache keys")
	}
	if norm(1).CacheKey() == norm(2).CacheKey() {
		t.Fatal("single chain and B=2 share a cache key")
	}
}

// TestBatchJobFansOutLanes runs a batched job end to end and checks the
// per-lane fan-out: lane L of the batch must equal the single chain a
// separate job with seed ising.LaneSeed(seed, L) runs — the service-level
// form of the lane-equivalence contract — and the stream must carry one
// sample per lane per interval.
func TestBatchJobFansOutLanes(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	const lanes = 3
	spec := JobSpec{
		Backend: "multispin", Rows: 8, Cols: 64, Temperature: 2.4,
		Sweeps: 6, BurnIn: 2, Seed: 11, SampleInterval: 2, Replicas: lanes,
	}
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("batch job ended %s (%s)", st.State, st.Error)
	}
	if len(st.Result.Lanes) != lanes {
		t.Fatalf("result has %d lane rows, want %d", len(st.Result.Lanes), lanes)
	}
	samples, _, _, _ := j.watch()
	if want := lanes * (spec.Sweeps / spec.SampleInterval); len(samples) != want {
		t.Fatalf("job streamed %d samples, want %d (one per lane per interval)", len(samples), want)
	}
	perLane := map[int]int{}
	for _, smp := range samples {
		perLane[smp.Lane]++
	}
	for lane := 0; lane < lanes; lane++ {
		if perLane[lane] != spec.Sweeps/spec.SampleInterval {
			t.Fatalf("lane %d streamed %d samples, want %d", lane, perLane[lane], spec.Sweeps/spec.SampleInterval)
		}
	}
	// Fan-in check: each lane row equals a standalone single-chain job with
	// the lane's derived seed.
	for lane, row := range st.Result.Lanes {
		single := spec
		single.Replicas = 1
		single.Seed = ising.LaneSeed(spec.Seed, lane)
		sj, err := srv.Submit(single)
		if err != nil {
			t.Fatal(err)
		}
		sst := waitDone(t, sj)
		if sst.State != StateDone {
			t.Fatalf("lane-reference job ended %s (%s)", sst.State, sst.Error)
		}
		ref := sst.Result
		if row.Seed != single.Seed {
			t.Fatalf("lane %d row records seed %d, want %d", lane, row.Seed, single.Seed)
		}
		if row.Magnetization != ref.Magnetization || row.Energy != ref.Energy {
			t.Fatalf("lane %d final state (m=%v, e=%v) differs from standalone job (m=%v, e=%v)",
				lane, row.Magnetization, row.Energy, ref.Magnetization, ref.Energy)
		}
		if row.MeanAbsMagnetization != ref.MeanAbsMagnetization || row.MeanEnergy != ref.MeanEnergy {
			t.Fatalf("lane %d sample means differ from standalone job", lane)
		}
	}
	// A resubmission of the batch spec is a cache hit.
	dup, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, dup); !st.Cached {
		t.Fatal("identical batch spec was not served from the cache")
	}
}

// TestBatchJobAdapterBackend: a batched job over a non-multispin backend
// goes through the generic adapter and still fans out per-lane results.
func TestBatchJobAdapterBackend(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	j, err := srv.Submit(JobSpec{
		Backend: "checkerboard", Rows: 8, Sweeps: 3, Seed: 5, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("adapter batch job ended %s (%s)", st.State, st.Error)
	}
	if len(st.Result.Lanes) != 2 {
		t.Fatalf("result has %d lane rows, want 2", len(st.Result.Lanes))
	}
	if st.Result.Lanes[0].Magnetization == st.Result.Lanes[1].Magnetization &&
		st.Result.Lanes[0].Energy == st.Result.Lanes[1].Energy {
		t.Fatal("both lanes report identical observables — lane seeds did not diverge")
	}
}

// TestBatchJobShardedEnsemble: a batched sharded-ensemble job runs all lanes
// through one composed (lane-packed × mesh-sharded) engine, and each lane row
// still equals a standalone single-chain job with the lane's derived seed —
// the batch and shard axes compose without changing any chain.
func TestBatchJobShardedEnsemble(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	spec := JobSpec{
		Backend: "sharded-ensemble", Rows: 8, Cols: 128, GridR: 2, GridC: 2,
		Temperature: 2.4, Sweeps: 6, Seed: 11, Replicas: 3, Hot: true,
	}
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("sharded-ensemble batch job ended %s (%s)", st.State, st.Error)
	}
	if len(st.Result.Lanes) != spec.Replicas {
		t.Fatalf("result has %d lane rows, want %d", len(st.Result.Lanes), spec.Replicas)
	}
	for lane, row := range st.Result.Lanes {
		single := spec
		single.Replicas = 1
		single.Seed = ising.LaneSeed(spec.Seed, lane)
		sj, err := srv.Submit(single)
		if err != nil {
			t.Fatal(err)
		}
		sst := waitDone(t, sj)
		if sst.State != StateDone {
			t.Fatalf("lane-reference job ended %s (%s)", sst.State, sst.Error)
		}
		if row.Magnetization != sst.Result.Magnetization || row.Energy != sst.Result.Energy {
			t.Fatalf("lane %d final state (m=%v, e=%v) differs from standalone job (m=%v, e=%v)",
				lane, row.Magnetization, row.Energy, sst.Result.Magnetization, sst.Result.Energy)
		}
	}
}
