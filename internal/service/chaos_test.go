package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpuising/internal/service/encode"
)

// This file is the fault-injection suite: every test here breaks something —
// a worker, the checkpoint filesystem, the clock, the quota budget — and
// asserts the service degrades the documented way: loud failures, exact
// counters, no leaked temp files, no lost jobs.

// faultFS is a CheckpointFS that delegates to the real filesystem until a
// switch flips a primitive into failing — the injectable full disk (write
// side) or rotting disk (read side, for the recovery scan).
type faultFS struct {
	failWrite  atomic.Bool
	failRename atomic.Bool
	failRead   atomic.Bool
	// corruptRead, when set, serves the real file contents with one bit
	// flipped — a read path that silently returns rotten bytes.
	corruptRead atomic.Bool
}

func (f *faultFS) WriteFile(path string, data []byte) error {
	if f.failWrite.Load() {
		return errors.New("faultfs: disk full")
	}
	return osFS{}.WriteFile(path, data)
}

func (f *faultFS) ReadFile(path string) ([]byte, error) {
	if f.failRead.Load() {
		return nil, errors.New("faultfs: read error")
	}
	blob, err := osFS{}.ReadFile(path)
	if err == nil && f.corruptRead.Load() && len(blob) > 0 {
		blob[len(blob)/2] ^= 0x10
	}
	return blob, err
}

func (f *faultFS) Rename(oldPath, newPath string) error {
	if f.failRename.Load() {
		return errors.New("faultfs: rename denied")
	}
	return osFS{}.Rename(oldPath, newPath)
}

func (f *faultFS) ReadDir(dir string) ([]string, error) { return osFS{}.ReadDir(dir) }
func (f *faultFS) MkdirAll(dir string) error            { return osFS{}.MkdirAll(dir) }
func (f *faultFS) Remove(path string) error             { return osFS{}.Remove(path) }
func (f *faultFS) SyncDir(dir string) error             { return osFS{}.SyncDir(dir) }

// fakeClock is an injectable Config.Now for the TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Rewind moves the clock backwards — the NTP step / VM migration scenario
// the monotonic clock floor defends against.
func (c *fakeClock) Rewind(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(-d)
	c.mu.Unlock()
}

// Set jumps the clock to an absolute time, in either direction.
func (c *fakeClock) Set(t0 time.Time) {
	c.mu.Lock()
	c.t = t0
	c.mu.Unlock()
}

// tinySpec is a fast single-chain job for chaos scenarios.
func tinySpec(seed uint64) JobSpec {
	return JobSpec{Backend: "checkerboard", Rows: 4, Sweeps: 2, Seed: seed}
}

// TestWorkerPanicFailsJobLoudly induces a panic on the worker goroutine and
// asserts the blast radius: that one job fails with the panic value in its
// error, the panic is counted, and the worker survives to run the next job.
func TestWorkerPanicFailsJobLoudly(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	srv.testHookRun = func(j *Job) {
		if j.Spec().Seed == 13 {
			panic("induced chaos fault")
		}
	}
	bad, err := srv.Submit(tinySpec(13))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, bad); st.State != StateFailed || !strings.Contains(st.Error, "panicked") ||
		!strings.Contains(st.Error, "induced chaos fault") {
		t.Fatalf("panicked job should fail loudly, got %+v", st)
	}
	// The pool survived: the same (only) worker runs the next job.
	good, err := srv.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, good); st.State != StateDone {
		t.Fatalf("worker did not survive the panic: %+v", st)
	}
	st := srv.Stats()
	if st.WorkerPanics != 1 || st.JobsFailed != 1 {
		t.Fatalf("worker_panics = %d, jobs_failed = %d, want 1, 1", st.WorkerPanics, st.JobsFailed)
	}
}

// TestCheckpointWriteFailureAtSubmit checks the durable-admission contract: a
// server with a checkpoint directory that cannot record an accepted job's
// intent must fail the job loudly — never acknowledge a job it would lose in
// a restart.
func TestCheckpointWriteFailureAtSubmit(t *testing.T) {
	fs := &faultFS{}
	fs.failWrite.Store(true)
	srv, _ := New(Config{Workers: 1, CheckpointDir: t.TempDir(), CheckpointFS: fs})
	defer srv.Close()
	j, err := srv.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, j); st.State != StateFailed ||
		!strings.Contains(st.Error, "restart durability") || !strings.Contains(st.Error, "disk full") {
		t.Fatalf("job accepted without durable record should fail loudly, got %+v", st)
	}
	if got := srv.Stats().CheckpointFailures; got == 0 {
		t.Fatal("checkpoint_failures did not move")
	}
}

// TestCheckpointWriteFailureMidRun checks the periodic-checkpoint path: a
// disk that fills after admission fails the running job with the checkpoint
// error instead of silently continuing without resume data.
func TestCheckpointWriteFailureMidRun(t *testing.T) {
	fs := &faultFS{}
	srv, _ := New(Config{Workers: 1, CheckpointDir: t.TempDir(), CheckpointFS: fs})
	defer srv.Close()
	spec := JobSpec{Backend: "checkerboard", Rows: 8, Sweeps: 300, Seed: 7, CheckpointInterval: 64}
	// Admission succeeds (the intent record writes), then the disk "fills"
	// before the first periodic checkpoint at sweep 64.
	srv.testHookRun = func(*Job) { fs.failWrite.Store(true) }
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, j); st.State != StateFailed ||
		!strings.Contains(st.Error, "checkpointing job") || !strings.Contains(st.Error, "disk full") {
		t.Fatalf("checkpoint write failure should fail the job loudly, got %+v", st)
	}
	if got := srv.Stats().CheckpointFailures; got == 0 {
		t.Fatal("checkpoint_failures did not move")
	}
}

// TestCheckpointFailureCleansTempFile checks the atomic-write discipline
// under failure: when the rename step fails, the already-written temp file is
// removed — a failed write must not leave droppings for the next daemon's
// checkpoint scan to trip on.
func TestCheckpointFailureCleansTempFile(t *testing.T) {
	fs := &faultFS{}
	fs.failRename.Store(true)
	dir := t.TempDir()
	srv, _ := New(Config{Workers: 1, CheckpointDir: dir, CheckpointFS: fs})
	defer srv.Close()
	j, err := srv.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, j); st.State != StateFailed {
		t.Fatalf("job should fail on rename failure, got %+v", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("checkpoint dir not clean after failed write: %s", e.Name())
	}
}

// TestCacheBytesBounded is the unbounded-cache regression test: a long
// seed-cycling run — the workload that used to grow the old map without
// bound — must hold the cache's byte gauge under the configured cap at every
// step, evicting (and counting) LRU entries to do it.
func TestCacheBytesBounded(t *testing.T) {
	const capBytes = 4 << 10
	srv, _ := New(Config{Workers: 2, CacheSize: 1 << 20, CacheBytes: capBytes})
	defer srv.Close()
	for seed := uint64(1); seed <= 60; seed++ {
		j, err := srv.Submit(tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if st := srv.Stats(); st.CacheBytes > capBytes {
			t.Fatalf("after seed %d: cache_bytes %d exceeds the %d cap", seed, st.CacheBytes, capBytes)
		}
	}
	st := srv.Stats()
	if st.CacheEvictions == 0 {
		t.Fatalf("60 distinct results under a %d-byte cap should have evicted, stats %+v", capBytes, st)
	}
	if st.CacheEntries == 0 {
		t.Fatal("cache should retain the newest entries, not empty itself")
	}
}

// TestQuotaExhaustedPath checks the quota-rejection path end to end: a
// client at its budget is rejected with ErrQuotaExceeded (counted), other
// clients are unaffected, and draining a job restores admission.
func TestQuotaExhaustedPath(t *testing.T) {
	srv, _ := New(Config{Workers: 1, MaxQueuedPerClient: 2})
	defer srv.Close()
	release := make(chan struct{})
	srv.testHookRun = func(*Job) { <-release }
	spec := func(client string, seed uint64) JobSpec {
		s := tinySpec(seed)
		s.Client = client
		return s
	}
	var jobs []*Job
	for seed := uint64(1); seed <= 2; seed++ {
		j, err := srv.Submit(spec("alice", seed))
		if err != nil {
			t.Fatalf("submission %d within quota rejected: %v", seed, err)
		}
		jobs = append(jobs, j)
	}
	if _, err := srv.Submit(spec("alice", 3)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third job should exhaust alice's quota, got %v", err)
	}
	if _, err := srv.Submit(spec("bob", 4)); err != nil {
		t.Fatalf("alice's quota must not throttle bob: %v", err)
	}
	if got := srv.Stats().QuotaRejections; got != 1 {
		t.Fatalf("quota_rejections = %d, want 1", got)
	}
	close(release)
	for _, j := range jobs {
		waitDone(t, j)
	}
	if _, err := srv.Submit(spec("alice", 5)); err != nil {
		t.Fatalf("drained quota should admit again: %v", err)
	}
}

// TestQuotaAdmissionDeterministic is the quota determinism contract: the
// same submission mix produces the same per-client accept/reject decisions
// for ANY worker count, because admission counts a client's queued and
// running jobs together — the split between those two states is the only
// thing worker-drain timing can move.
func TestQuotaAdmissionDeterministic(t *testing.T) {
	mix := []string{"a", "a", "b", "a", "c", "b", "a", "c", "a", "b", "c", "a", "b", "c", "c"}
	var want []bool
	for _, workers := range []int{1, 2, 8} {
		srv, _ := New(Config{Workers: workers, MaxQueuedPerClient: 2, MaxRunningPerClient: 1})
		release := make(chan struct{})
		srv.testHookRun = func(*Job) { <-release }
		var got []bool
		for i, client := range mix {
			s := tinySpec(uint64(i + 1))
			s.Client = client
			_, err := srv.Submit(s)
			if err != nil && !errors.Is(err, ErrQuotaExceeded) {
				t.Fatalf("workers=%d submission %d: unexpected error %v", workers, i, err)
			}
			got = append(got, err == nil)
		}
		close(release)
		srv.Close()
		if want == nil {
			want = got
			continue
		}
		for i := range mix {
			if got[i] != want[i] {
				t.Fatalf("admission decisions depend on worker count: workers=%d decided %v, workers=1 decided %v",
					workers, got, want)
			}
		}
	}
	// Sanity: the mix actually exercised both outcomes.
	accepted := 0
	for _, ok := range want {
		if ok {
			accepted++
		}
	}
	if accepted == 0 || accepted == len(mix) {
		t.Fatalf("mix should mix accepts and rejects, got %d/%d accepted", accepted, len(mix))
	}
}

// TestPrioritySchedulingOrder checks the dequeue policy: with one worker
// pinned by a blocker, queued jobs run highest priority first, FIFO within a
// priority.
func TestPrioritySchedulingOrder(t *testing.T) {
	srv, _ := New(Config{Workers: 1})
	defer srv.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var ran []uint64
	srv.testHookRun = func(j *Job) {
		mu.Lock()
		ran = append(ran, j.Spec().Seed)
		mu.Unlock()
		if j.Spec().Seed == 999 {
			<-release
		}
	}
	blocker, err := srv.Submit(tinySpec(999))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to occupy the only worker, so the rest queue up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		started := len(ran) > 0
		mu.Unlock()
		if started {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	var jobs []*Job
	for _, sub := range []struct {
		seed     uint64
		priority int
	}{{10, 0}, {51, 5}, {90, 9}, {52, 5}} {
		s := tinySpec(sub.seed)
		s.Priority = sub.priority
		j, err := srv.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	waitDone(t, blocker)
	for _, j := range jobs {
		waitDone(t, j)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []uint64{999, 90, 51, 52, 10}
	if fmt.Sprint(ran) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v (highest priority first, FIFO within)", ran, want)
	}
}

// TestJobTTLEviction drives Config.JobTTL with a fake clock: a terminal job
// older than the TTL is evicted (counted, answering "expired") even though
// the history count bound is nowhere near.
func TestJobTTLEviction(t *testing.T) {
	clock := newFakeClock()
	srv, _ := New(Config{Workers: 1, JobTTL: time.Minute, Now: clock.Now})
	defer srv.Close()
	j, err := srv.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if _, err := srv.Get(j.ID()); err != nil {
		t.Fatalf("fresh terminal job should be retained: %v", err)
	}
	clock.Advance(2 * time.Minute)
	srv.pruneJobs()
	if _, err := srv.Get(j.ID()); !errors.Is(err, ErrJobExpired) {
		t.Fatalf("job past its TTL should answer expired, got %v", err)
	}
	if got := srv.Stats().JobsEvicted; got != 1 {
		t.Fatalf("jobs_evicted = %d, want 1", got)
	}
}

// TestCacheTTLExpiry drives Config.CacheTTL with a fake clock: an entry past
// its TTL is a miss (and a counted eviction), never a stale hit.
func TestCacheTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	srv, _ := New(Config{Workers: 1, CacheTTL: time.Minute, Now: clock.Now})
	defer srv.Close()
	spec := tinySpec(1)
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	j, _ = srv.Submit(spec)
	if st := waitDone(t, j); !st.Cached {
		t.Fatal("fresh entry should hit the cache")
	}
	clock.Advance(2 * time.Minute)
	j, _ = srv.Submit(spec)
	if st := waitDone(t, j); st.Cached {
		t.Fatal("expired entry must not be served")
	}
	if st := srv.Stats(); st.CacheEvictions == 0 {
		t.Fatalf("TTL expiry should count as an eviction, stats %+v", st)
	}
}

// TestExpiredVsUnknown pins the Get error taxonomy: an ID this server issued
// and then evicted answers ErrJobExpired; an ID it never issued — numeric or
// garbage — answers ErrUnknownJob.
func TestExpiredVsUnknown(t *testing.T) {
	srv, _ := New(Config{Workers: 1, JobHistory: 1})
	defer srv.Close()
	var first *Job
	for seed := uint64(1); seed <= 3; seed++ {
		j, err := srv.Submit(tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if first == nil {
			first = j
		}
	}
	if _, err := srv.Get(first.ID()); !errors.Is(err, ErrJobExpired) {
		t.Fatalf("evicted ID should answer expired, got %v", err)
	}
	for _, id := range []string{"job-999999", "nonsense", "job-abc", "5"} {
		if _, err := srv.Get(id); !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("Get(%q) = %v, want ErrUnknownJob", id, err)
		}
	}
}

// TestGracefulUpgradeByteIdentical is the in-process graceful-upgrade test:
// a server loaded with a mixed fleet of jobs — snapshotting singles, a
// tempering ladder and a batched ensemble, neither of which can snapshot —
// is shut down mid-flight and a fresh server over the same checkpoint
// directory finishes every job with results byte-identical to uninterrupted
// runs. Snapshot jobs resume mid-sweep; snapshotless jobs rerun from their
// durable intent records, which the deterministic engines turn into the
// same bytes. (cmd/isingd's TestGracefulUpgradeSIGTERM is the same contract
// through a real process and a real signal.)
func TestGracefulUpgradeByteIdentical(t *testing.T) {
	specs := []JobSpec{
		{Backend: "checkerboard", Rows: 32, Sweeps: 3000, BurnIn: 100, Temperature: 2.3, Seed: 1, SampleInterval: 100},
		{Backend: "checkerboard", Rows: 32, Sweeps: 3000, BurnIn: 100, Temperature: 2.5, Seed: 2, SampleInterval: 100},
		{Backend: "multispin", Rows: 32, Cols: 64, Sweeps: 6000, BurnIn: 200, Temperature: 2.3, Seed: 3, SampleInterval: 500, Workers: 1},
		{Backend: "checkerboard", Rows: 24, Sweeps: 2500, Temperature: 2.2, Seed: 4, SampleInterval: 100},
		{Backend: "checkerboard", Rows: 24, Sweeps: 2500, Temperature: 2.4, Seed: 5, SampleInterval: 100},
		{Backend: "checkerboard", Rows: 16, Sweeps: 2000, Temperatures: []float64{2.0, 2.3, 2.6}, Seed: 6, SampleInterval: 100, SwapInterval: 10},
		{Backend: "multispin", Rows: 16, Cols: 64, Sweeps: 2000, Temperature: 2.3, Seed: 7, SampleInterval: 200, Replicas: 4, Workers: 1},
		{Backend: "checkerboard", Rows: 32, Sweeps: 2800, Temperature: 2.35, Seed: 8, SampleInterval: 100},
	}
	canon := func(r *encode.Result) string {
		c := *r
		c.ElapsedSec, c.FlipsPerNs = 0, 0
		blob, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	// Reference: every spec run to completion, uninterrupted.
	ref, _ := New(Config{Workers: 4})
	want := make([]string, len(specs))
	for i, spec := range specs {
		j, err := ref.Submit(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		st := waitDone(t, j)
		if st.State != StateDone {
			t.Fatalf("reference job %d: %+v", i, st)
		}
		want[i] = canon(st.Result)
	}
	ref.Close()

	// The "old" daemon: all eight jobs in flight on two workers, then a
	// graceful shutdown mid-run.
	dir := t.TempDir()
	srvA, _ := New(Config{Workers: 2, CheckpointDir: dir, CheckpointInterval: 256})
	ids := make([]string, len(specs))
	for i, spec := range specs {
		j, err := srvA.Submit(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		ids[i] = j.ID()
	}
	time.Sleep(50 * time.Millisecond) // let some jobs make real progress
	srvA.Close()

	// The "new" daemon over the same checkpoint directory finishes them all.
	srvB, skipped := New(Config{Workers: 4, CheckpointDir: dir, CheckpointInterval: 256})
	defer srvB.Close()
	if len(skipped) != 0 {
		t.Fatalf("upgrade skipped checkpoints: %v", skipped)
	}
	for i, id := range ids {
		j, err := srvB.Get(id)
		if err != nil {
			// Jobs that finished before the shutdown live on the old server.
			var errA error
			j, errA = srvA.Get(id)
			if errA != nil {
				t.Fatalf("job %s lost in the upgrade: %v / %v", id, err, errA)
			}
		}
		st := waitDone(t, j)
		if st.State != StateDone {
			t.Fatalf("job %s after upgrade: %+v", id, st)
		}
		if got := canon(st.Result); got != want[i] {
			t.Fatalf("job %s (spec %d) result differs after upgrade:\n got %s\nwant %s", id, i, got, want[i])
		}
	}
	// Nothing left to resume: completion removed every checkpoint.
	leftovers, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("checkpoint dir not empty after all jobs finished: %v", leftovers)
	}
}
