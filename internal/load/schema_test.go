package load

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestCommittedBenchSnapshotsParse is the BENCH_*.json schema check: every
// perf snapshot committed at the repository root must parse with ReadSnapshot
// and satisfy the schema invariants the trajectory tooling relies on — the
// bench index matches the filename, the timestamp is RFC3339, the threshold
// verdict is recorded coherently, and any host section carries positive
// measurements. A snapshot this test rejects would silently corrupt every
// future before/after diff, so the schema is pinned here rather than trusted.
func TestCommittedBenchSnapshotsParse(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed BENCH_*.json found at the repository root")
	}
	nameRE := regexp.MustCompile(`^BENCH_(.+)\.json$`)
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			snap, err := ReadSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			m := nameRE.FindStringSubmatch(filepath.Base(path))
			if m == nil {
				t.Fatalf("unexpected snapshot filename %q", path)
			}
			if snap.Bench != m[1] {
				t.Errorf("bench index %q does not match filename index %q", snap.Bench, m[1])
			}
			if snap.CreatedAt != "" {
				if _, err := time.Parse(time.RFC3339, snap.CreatedAt); err != nil {
					t.Errorf("created_at %q is not RFC3339: %v", snap.CreatedAt, err)
				}
			}
			if snap.GoVersion != "" && !strings.HasPrefix(snap.GoVersion, "go") {
				t.Errorf("go_version %q does not look like a Go version", snap.GoVersion)
			}
			// The verdict must be coherent with the recorded checks: passed
			// means every check ok.
			allOK := true
			for _, c := range snap.Checks {
				if !c.OK {
					allOK = false
				}
			}
			if len(snap.Checks) > 0 && snap.Passed != allOK {
				t.Errorf("passed=%v contradicts the %d recorded checks", snap.Passed, len(snap.Checks))
			}
			if s := snap.Service; s != nil {
				if s.Requests <= 0 {
					t.Error("service section with no requests")
				}
				if s.ElapsedSec <= 0 {
					t.Error("service section with non-positive elapsed time")
				}
			}
			if h := snap.Host; h != nil {
				if h.Lattice <= 0 || h.Sweeps <= 0 {
					t.Errorf("host section with lattice=%d sweeps=%d", h.Lattice, h.Sweeps)
				}
				if len(h.FlipsPerNs) == 0 {
					t.Error("host section with no per-backend measurements")
				}
				for name, v := range h.FlipsPerNs {
					if v <= 0 {
						t.Errorf("host backend %s measured %g flips/ns", name, v)
					}
				}
				if h.EnsembleAggregate < 0 || h.ShardedEnsembleAggregate < 0 ||
					h.KernelRef < 0 || h.KernelOpt < 0 {
					t.Error("negative aggregate measurement in host section")
				}
				// The kernel delta is recorded as a pair or not at all.
				if (h.KernelRef == 0) != (h.KernelOpt == 0) {
					t.Error("kernel delta recorded with only one side of the pair")
				}
			}
		})
	}
}
