package load

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tpuising/internal/service"
)

func TestParsePromText(t *testing.T) {
	const text = `# HELP isingd_jobs_submitted_total Jobs accepted.
# TYPE isingd_jobs_submitted_total counter
isingd_jobs_submitted_total 42

# TYPE isingd_cache_bytes gauge
isingd_cache_bytes 1.5e+03
`
	m, err := parsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if m["isingd_jobs_submitted_total"] != 42 {
		t.Errorf("submitted = %g, want 42", m["isingd_jobs_submitted_total"])
	}
	if m["isingd_cache_bytes"] != 1500 {
		t.Errorf("cache_bytes = %g, want 1500", m["isingd_cache_bytes"])
	}
	// A malformed line must be an error, not a silently dropped metric: a
	// dropped counter would read as "it never moved" and pass a >= gate.
	for _, bad := range []string{"lonely_name\n", "a b c\n", "metric notanumber\n"} {
		if _, err := parsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("parsePromText(%q) passed, want error", bad)
		}
	}
}

func TestParsePromTextLabelled(t *testing.T) {
	const text = `# TYPE isingd_queue_wait_seconds histogram
isingd_queue_wait_seconds_bucket{le="0.25"} 3
isingd_queue_wait_seconds_bucket{le="+Inf"} 5
isingd_queue_wait_seconds_sum 1.5
isingd_queue_wait_seconds_count 5
isingd_build_info{version="dev",goversion="go1.24"} 1
`
	m, err := parsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// Labelled samples key verbatim — labels and all — which is what the
	// bucket-delta quantile math looks up.
	for key, want := range map[string]float64{
		`isingd_queue_wait_seconds_bucket{le="0.25"}`:         3,
		`isingd_queue_wait_seconds_bucket{le="+Inf"}`:         5,
		"isingd_queue_wait_seconds_count":                     5,
		`isingd_build_info{version="dev",goversion="go1.24"}`: 1,
	} {
		if m[key] != want {
			t.Errorf("m[%s] = %g, want %g", key, m[key], want)
		}
	}
	// An unknown # TYPE is an error — the CI smoke asserts the daemon's
	// exposition contains only types this parser interprets.
	if _, err := parsePromText(strings.NewReader("# TYPE foo summary\nfoo 1\n")); err == nil {
		t.Error("unknown TYPE parsed, want error")
	}
	// A labelled sample with trailing junk is malformed, not two samples.
	if _, err := parsePromText(strings.NewReader(`x_bucket{le="1"} 2 3` + "\n")); err == nil {
		t.Error("labelled line with trailing junk parsed, want error")
	}
}

func TestHistQuantileDelta(t *testing.T) {
	scrape := func(le1, le2, inf, count float64) map[string]float64 {
		return map[string]float64{
			`h_bucket{le="1"}`:    le1,
			`h_bucket{le="2"}`:    le2,
			`h_bucket{le="+Inf"}`: inf,
			"h_count":             count,
		}
	}
	// Only the interval between the scrapes counts: the 90 pre-existing
	// observations under le=1 subtract out, leaving 10 in (1, 2] whose
	// median interpolates to 1.5s.
	before := scrape(90, 90, 90, 90)
	after := scrape(90, 100, 100, 100)
	if got := histQuantileDelta(before, after, "h", 0.5); got != 1.5 {
		t.Errorf("p50 delta = %g, want 1.5", got)
	}
	// A histogram absent from the scrape, or one that recorded nothing
	// during the interval, reads 0 — thresholds over it stay evaluable.
	if got := histQuantileDelta(before, after, "absent", 0.5); got != 0 {
		t.Errorf("absent histogram = %g, want 0", got)
	}
	if got := histQuantileDelta(after, after, "h", 0.5); got != 0 {
		t.Errorf("idle interval = %g, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	// Log-bucketed quantiles are accurate to the ~12% bucket width.
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		lo := time.Duration(float64(tc.want) * 0.85)
		hi := time.Duration(float64(tc.want) * 1.15)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within 15%% of %v", tc.q, got, tc.want)
		}
	}
	s := h.Summary()
	if s.MaxMs != 1000 {
		t.Errorf("max = %vms, want exactly 1000 (true max is exact)", s.MaxMs)
	}
	// Non-strict: nearby quantiles may share a log bucket.
	if s.P50Ms > s.P95Ms || s.P95Ms > s.P99Ms {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if q := h.Quantile(0.95); q != 0 {
		t.Fatalf("empty histogram p95 = %v, want 0", q)
	}
	if s := h.Summary(); s.Count != 0 || s.P95Ms != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestParseThresholds(t *testing.T) {
	ts, err := ParseThresholds("submit_p95_ms<250, error_rate<=0.01,jobs_done>=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Threshold{
		{Metric: "submit_p95_ms", Op: "<", Value: 250},
		{Metric: "error_rate", Op: "<=", Value: 0.01},
		{Metric: "jobs_done", Op: ">=", Value: 1},
	}
	if len(ts) != len(want) {
		t.Fatalf("parsed %d thresholds, want %d", len(ts), len(want))
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("threshold %d = %+v, want %+v", i, ts[i], want[i])
		}
	}
	for _, bad := range []string{"p95<", "<5", "p95~5", "p95<abc"} {
		if _, err := ParseThreshold(bad); err == nil {
			t.Errorf("ParseThreshold(%q) passed, want error", bad)
		}
	}
}

func TestEvaluateThresholds(t *testing.T) {
	metrics := map[string]float64{"error_rate": 0.005, "submit_p95_ms": 300}
	checks, pass := EvaluateThresholds([]Threshold{
		{Metric: "error_rate", Op: "<", Value: 0.01},
		{Metric: "submit_p95_ms", Op: "<", Value: 250},
	}, metrics)
	if pass {
		t.Fatal("evaluation passed with a breached threshold")
	}
	if !checks[0].OK || checks[1].OK {
		t.Fatalf("checks: %+v", checks)
	}
	// A threshold over a metric the report does not export must fail loudly.
	checks, pass = EvaluateThresholds([]Threshold{{Metric: "no_such", Op: "<", Value: 1}}, metrics)
	if pass || !checks[0].Missing {
		t.Fatalf("missing metric: pass=%v checks=%+v", pass, checks)
	}
}

// startService boots an in-process service behind a real HTTP listener —
// the system under test for scenario runs.
func startService(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	srv, _ := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return srv, ts
}

// TestScenarioAgainstService runs a short mixed scenario against a live
// in-process daemon and checks the report is coherent: requests flowed,
// jobs completed, the seed window produced cache hits, streams saw samples,
// and the server delta matches the client view.
func TestScenarioAgainstService(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 2, QueueDepth: 64})
	sc := Scenario{
		BaseURL:     ts.URL,
		Submitters:  4,
		Subscribers: 2,
		Duration:    1500 * time.Millisecond,
		Seeds:       3,
		Spec: service.JobSpec{Backend: "checkerboard", Rows: 16,
			Temperature: 2.5, Sweeps: 50, SampleInterval: 10},
	}
	r, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests == 0 || r.JobsDone == 0 {
		t.Fatalf("no traffic: %+v", r)
	}
	if r.Errors != 0 {
		t.Fatalf("scenario saw %d errors against a healthy daemon:\n%s", r.Errors, r.Text())
	}
	if r.CacheHits == 0 {
		t.Fatalf("a 3-seed window never hit the cache over %d jobs", r.JobsDone)
	}
	if r.Server.SweepsRun == 0 {
		t.Fatal("server delta shows no sweeps")
	}
	if r.Server.JobsCached == 0 {
		t.Fatal("server delta shows no cache hits")
	}
	if r.Submit.Count == 0 || r.Submit.P95Ms <= 0 {
		t.Fatalf("submit latency summary empty: %+v", r.Submit)
	}
	m := r.Metrics()
	for _, name := range []string{"error_rate", "cache_hit_rate", "requests_per_sec",
		"submit_p95_ms", "stream_wakeups_per_sweep"} {
		if _, ok := m[name]; !ok {
			t.Errorf("metric %q missing from %v", name, MetricNames(m))
		}
	}
	if m["error_rate"] != 0 {
		t.Fatalf("error_rate = %g, want 0", m["error_rate"])
	}
	if r.Text() == "" {
		t.Fatal("empty text summary")
	}
}

// TestScenarioSubscribersSeeSamples focuses the stream path: subscribers
// consume NDJSON lines and the server-side wakeup counter stays in the
// per-sample regime, not the per-sweep one — the wake-storm regression seen
// from the outside.
func TestScenarioSubscribersSeeSamples(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 2})
	sc := Scenario{
		BaseURL:     ts.URL,
		Submitters:  2,
		Subscribers: 8,
		Duration:    1500 * time.Millisecond,
		Seeds:       1000, // effectively no cache hits: keep jobs sweeping
		Spec: service.JobSpec{Backend: "checkerboard", Rows: 32,
			Temperature: 2.5, Sweeps: 4000, SampleInterval: 400},
	}
	r, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.SamplesStreamed == 0 {
		t.Fatalf("subscribers consumed no samples:\n%s", r.Text())
	}
	if r.Server.SweepsRun == 0 {
		t.Fatal("no sweeps ran")
	}
	// 8 subscribers over jobs emitting 1 sample per 400 sweeps: per-sweep
	// broadcasts would put wakeups/sweep near the subscriber count; the
	// sample-only channel keeps it well below one.
	if w := r.Server.WakeupsPerSweep; w > 1 {
		t.Fatalf("stream wakeups per sweep = %.3f with %d subscribers (storm regression; report:\n%s)",
			w, sc.Subscribers, r.Text())
	}
}

// TestScenarioCancelHeavy drives the cancel path under a tiny queue: with
// canceled jobs freeing their slots, the run keeps completing jobs instead
// of drowning in queue-full rejections.
func TestScenarioCancelHeavy(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 1, QueueDepth: 2})
	sc := Scenario{
		BaseURL:     ts.URL,
		Submitters:  4,
		Subscribers: 0,
		Duration:    1500 * time.Millisecond,
		Seeds:       1000,
		CancelEvery: 2,
		Spec: service.JobSpec{Backend: "checkerboard", Rows: 16,
			Temperature: 2.5, Sweeps: 200, SampleInterval: 50},
	}
	r, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.JobsCanceled == 0 {
		t.Fatalf("cancel-heavy scenario canceled nothing:\n%s", r.Text())
	}
	if r.JobsDone == 0 {
		t.Fatalf("no job completed next to cancels (queue slots pinned?):\n%s", r.Text())
	}
	if r.Errors != 0 {
		t.Fatalf("cancel-heavy run errored %d times:\n%s", r.Errors, r.Text())
	}
}

// TestScenarioQuotasAndEvictions drives a quota-limited, cache-starved
// daemon with several client identities — the configuration the CI load
// smoke gates on. Quota rejections must show up on both sides of the wire
// (client 429 count, server counter delta), cache evictions must register,
// and none of it may count as an error.
func TestScenarioQuotasAndEvictions(t *testing.T) {
	// One worker and jobs a few hundred sweeps long: arrivals outrun the
	// drain, the queue backs up, and each client's 4 submitters contend for
	// a 1-queued + 1-running quota. Tiny instant jobs would drain before a
	// second same-client submission ever lands.
	_, ts := startService(t, service.Config{
		Workers:             1,
		QueueDepth:          64,
		CacheSize:           4,
		MaxQueuedPerClient:  1,
		MaxRunningPerClient: 1,
	})
	sc := Scenario{
		BaseURL:     ts.URL,
		Submitters:  8,
		Subscribers: 2,
		Clients:     2,
		Duration:    1500 * time.Millisecond,
		Seeds:       64, // far past CacheSize: storing results must evict
		Spec: service.JobSpec{Backend: "checkerboard", Rows: 32,
			Temperature: 2.5, Sweeps: 400, SampleInterval: 100},
	}
	r, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors != 0 {
		t.Fatalf("quota rejections counted as errors:\n%s", r.Text())
	}
	if r.QuotaRejected == 0 {
		t.Fatalf("8 submitters as 2 clients against a 1-queued/1-running quota never saw a 429:\n%s", r.Text())
	}
	if r.Server.QuotaRejections == 0 {
		t.Fatalf("server metrics delta shows no quota rejections:\n%s", r.Text())
	}
	if r.Server.CacheEvictions == 0 {
		t.Fatalf("64 seeds over a 4-entry cache evicted nothing:\n%s", r.Text())
	}
	if r.JobsDone == 0 {
		t.Fatalf("no job completed under quotas:\n%s", r.Text())
	}
	m := r.Metrics()
	for _, name := range []string{"quota_rejections", "cache_evictions", "cache_bytes", "worker_panics"} {
		if _, ok := m[name]; !ok {
			t.Errorf("metric %q missing from %v", name, MetricNames(m))
		}
	}
	if m["worker_panics"] != 0 {
		t.Fatalf("worker panics under plain load: %g", m["worker_panics"])
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	snap := &Snapshot{
		Bench:      "6",
		GoVersion:  "go-test",
		GOMAXPROCS: 8,
		Service:    &Report{Requests: 42, JobsDone: 7},
		Checks:     []Check{{Threshold: Threshold{Metric: "error_rate", Op: "<", Value: 0.01}, Actual: 0, OK: true}},
		Passed:     true,
		Host: &HostBench{Lattice: 256, Sweeps: 5,
			FlipsPerNs:    map[string]float64{"multispin": 3.2},
			EnsembleLanes: 64, EnsembleAggregate: 30.5},
	}
	if err := snap.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bench != "6" || got.Service.Requests != 42 || !got.Passed ||
		got.Host.FlipsPerNs["multispin"] != 3.2 || len(got.Checks) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
}
