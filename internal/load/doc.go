// Package load is the k6-style load harness of the isingd REST service: it
// drives a daemon with concurrent job submitters and NDJSON stream
// subscribers, records per-request latency histograms (p50/p95/p99),
// error/queue-full/cache-hit rates and server-side counter deltas
// (sweeps/s, stream wakeups per sweep), checks them against declared
// thresholds, and snapshots everything into a machine-readable BENCH_*.json
// so every PR's performance delta is visible in the repository history.
//
// The pieces compose the way k6's metrics/thresholds pipeline does:
//
//   - Histogram / LatencySummary: lock-cheap log-bucketed latency
//     recording with quantile extraction.
//   - Threshold / Check: declared pass/fail gates over the flat metric
//     names a Report exports ("submit_p95_ms<250", "error_rate<0.01").
//   - Scenario: the virtual-user mix — submitters that POST specs and await
//     results (a configurable fraction canceling instead, which is what
//     surfaced the queue-slot-pinning bug), and subscribers that follow
//     /stream NDJSON (which is what surfaced the wake-storm).
//   - Snapshot: the BENCH_*.json schema: the scenario Report, its threshold
//     Checks, and the host flips/ns tables measured by internal/harness.
//
// cmd/isingload is the CLI over this package; internal/service is the
// system under test.
package load
