package load

import (
	"encoding/json"
	"fmt"
	"os"
)

// Snapshot is the BENCH_*.json schema: one machine-readable record of the
// repository's measured performance at a PR, combining the service load
// Report (throughput, latency quantiles, rates, wakeups per sweep), its
// threshold verdicts, and the host engine throughput the harness measures
// (`benchtables -host` flips/ns plus the lane-packed ensemble aggregate).
// Later PRs write BENCH_<n+1>.json next to it, so diffing two snapshots is
// the repo's perf trajectory.
type Snapshot struct {
	// Bench is the trajectory index ("6" wrote BENCH_6.json).
	Bench string `json:"bench"`
	// CreatedAt is an RFC3339 stamp supplied by the writer.
	CreatedAt string `json:"created_at,omitempty"`
	// GoVersion, GOOS/GOARCH and GOMAXPROCS pin the measuring machine.
	GoVersion  string `json:"go_version,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`

	// Service is the load-scenario report (nil when only host tables were
	// measured).
	Service *Report `json:"service,omitempty"`
	// Checks are the evaluated thresholds and Passed their conjunction.
	Checks []Check `json:"checks,omitempty"`
	Passed bool    `json:"passed"`

	// Host is the measured host-engine throughput section.
	Host *HostBench `json:"host,omitempty"`
}

// HostBench is the snapshot's host-throughput section: the measured
// flips/ns of the registered CPU engines at one lattice size (the
// `benchtables -host` measurement) and the lane-packed ensemble engine's
// aggregate throughput — the numbers the Romero et al. GPU baselines are
// compared against.
type HostBench struct {
	// Lattice is the square lattice side; Sweeps the timed sweeps per cell.
	Lattice int `json:"lattice"`
	Sweeps  int `json:"sweeps"`
	// FlipsPerNs maps backend registry names to measured throughput.
	FlipsPerNs map[string]float64 `json:"flips_per_ns"`
	// EnsembleLanes and EnsembleAggregate record the lane-packed ensemble
	// engine: aggregate flips/ns over all lanes in shared-random mode.
	EnsembleLanes     int     `json:"ensemble_lanes,omitempty"`
	EnsembleAggregate float64 `json:"ensemble_aggregate_flips_per_ns,omitempty"`
	// AVX2 records whether this measuring binary ran the AVX2 rng batch
	// kernels (built with -tags avx2 on a CPU with OS-enabled AVX2). The
	// kernel-variant numbers below are only comparable across snapshots with
	// the same setting.
	AVX2 bool `json:"avx2,omitempty"`
	// KernelRef and KernelOpt are the per-site multispin row kernel measured
	// directly (no engine around it): the retained naive reference vs the
	// optimized batched+tiled loop — the kernel delta of the harness
	// host_kernel_variants table.
	KernelRef float64 `json:"kernel_ref_flips_per_ns,omitempty"`
	KernelOpt float64 `json:"kernel_opt_flips_per_ns,omitempty"`
	// ShardedEnsembleGrid and ShardedEnsembleAggregate record the composed
	// batched×sharded engine: aggregate flips/ns over all lanes of all shards
	// (per-lane random mode) on the recorded shard grid.
	ShardedEnsembleGrid      string  `json:"sharded_ensemble_grid,omitempty"`
	ShardedEnsembleAggregate float64 `json:"sharded_ensemble_aggregate_flips_per_ns,omitempty"`
}

// Write atomically writes the snapshot as indented JSON (temp file +
// rename), so a crash mid-write never leaves a truncated BENCH file.
func (s *Snapshot) Write(path string) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("load: encoding snapshot: %w", err)
	}
	blob = append(blob, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadSnapshot loads a BENCH_*.json written by Write.
func ReadSnapshot(path string) (*Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("load: decoding %s: %w", path, err)
	}
	return &s, nil
}
