package load

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Threshold is one declared pass/fail gate over a Report metric, k6 style:
// the metric's flat name (see Report.Metrics), a comparison operator and the
// bound — "submit_p95_ms<250" reads "the p95 submit latency must stay under
// 250 ms".
type Threshold struct {
	Metric string  `json:"metric"`
	Op     string  `json:"op"` // "<", "<=", ">", ">="
	Value  float64 `json:"value"`
}

// String renders the threshold back to its declaration form.
func (t Threshold) String() string {
	return fmt.Sprintf("%s%s%g", t.Metric, t.Op, t.Value)
}

// thresholdOps lists the operators in match order: two-character operators
// first, so "<=" is not split as "<" + "=...".
var thresholdOps = []string{"<=", ">=", "<", ">"}

// ParseThreshold parses one declaration like "error_rate<0.01".
func ParseThreshold(s string) (Threshold, error) {
	s = strings.TrimSpace(s)
	for _, op := range thresholdOps {
		i := strings.Index(s, op)
		if i <= 0 {
			continue
		}
		metric := strings.TrimSpace(s[:i])
		raw := strings.TrimSpace(s[i+len(op):])
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Threshold{}, fmt.Errorf("load: threshold %q: bad bound %q", s, raw)
		}
		return Threshold{Metric: metric, Op: op, Value: v}, nil
	}
	return Threshold{}, fmt.Errorf("load: threshold %q: want <metric><op><value> with op one of %v", s, thresholdOps)
}

// ParseThresholds parses a comma-separated declaration list, e.g. the
// isingload -thresholds flag ("submit_p95_ms<250,error_rate<0.01").
func ParseThresholds(csv string) ([]Threshold, error) {
	var out []Threshold
	for _, part := range strings.Split(csv, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		t, err := ParseThreshold(part)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Check is one evaluated threshold: the declaration, the measured value and
// the verdict. A threshold naming a metric the report does not export fails
// with Missing set — a typo in a CI gate must not silently pass.
type Check struct {
	Threshold
	Actual  float64 `json:"actual"`
	OK      bool    `json:"ok"`
	Missing bool    `json:"missing,omitempty"`
}

// EvaluateThresholds checks every threshold against the flat metric map,
// returning the per-threshold verdicts and whether all passed.
func EvaluateThresholds(thresholds []Threshold, metrics map[string]float64) ([]Check, bool) {
	checks := make([]Check, 0, len(thresholds))
	pass := true
	for _, t := range thresholds {
		c := Check{Threshold: t}
		v, ok := metrics[t.Metric]
		if !ok {
			c.Missing = true
		} else {
			c.Actual = v
			switch t.Op {
			case "<":
				c.OK = v < t.Value
			case "<=":
				c.OK = v <= t.Value
			case ">":
				c.OK = v > t.Value
			case ">=":
				c.OK = v >= t.Value
			}
		}
		if !c.OK {
			pass = false
		}
		checks = append(checks, c)
	}
	return checks, pass
}

// MetricNames returns the sorted metric names of a report's flat map — the
// vocabulary thresholds may gate on, for error messages and docs.
func MetricNames(metrics map[string]float64) []string {
	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
