package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tpuising/internal/service"
)

// Scenario describes one load run against an isingd REST endpoint: how many
// virtual users of each kind, for how long, submitting which job. The spec
// template's Seed is the base of a cycling seed window, so a run mixes
// fresh simulations with cache hits the way repeated real queries would.
type Scenario struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8765".
	BaseURL string
	// Submitters is the number of concurrent submit→poll→result loops
	// (default 4). Each loop POSTs a spec, then either cancels it
	// (CancelEvery) or polls its status until terminal and fetches the
	// result.
	Submitters int
	// Subscribers is the number of concurrent NDJSON stream readers
	// (default 2). Each picks a recently submitted job and consumes its
	// /stream until the job ends.
	Subscribers int
	// Duration is the wall-clock run length (default 2s). Virtual users
	// stop starting new work at the deadline; in-flight requests finish.
	Duration time.Duration
	// Spec is the job template. Seed is overwritten per submission with
	// Spec.Seed + (i mod Seeds).
	Spec service.JobSpec
	// Seeds is the size of the cycling seed window (default 2*Submitters):
	// submissions beyond the first Seeds distinct ones repeat earlier specs
	// and should come back as cache hits.
	Seeds int
	// CancelEvery, when > 0, cancels every Nth accepted job right after
	// submission instead of awaiting it — the cancel-heavy traffic that
	// pins queue slots when cancellation leaks them.
	CancelEvery int
	// Clients, when > 0, spreads the submitters over this many distinct
	// client identities (submitter i sends X-Client-ID "client-NN" with
	// NN = i mod Clients), exercising the daemon's per-client quotas; a 429
	// is counted as QuotaRejected and backed off, the declared backpressure,
	// never an error. 0 sends no header (one anonymous quota bucket).
	Clients int
	// PollInterval is the status-poll spacing of submitters (default 2ms).
	PollInterval time.Duration
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Submitters <= 0 {
		sc.Submitters = 4
	}
	if sc.Subscribers < 0 {
		sc.Subscribers = 0
	}
	if sc.Duration <= 0 {
		sc.Duration = 2 * time.Second
	}
	if sc.Seeds <= 0 {
		sc.Seeds = 2 * sc.Submitters
	}
	if sc.PollInterval <= 0 {
		sc.PollInterval = 2 * time.Millisecond
	}
	return sc
}

// Report is the measured outcome of a scenario run: client-side request
// metrics plus the server-side counter delta over the run. It is the
// "service" section of a BENCH snapshot and the source of the flat metric
// map thresholds gate on.
type Report struct {
	// Echo of the scenario shape.
	BaseURL     string          `json:"base_url"`
	Submitters  int             `json:"submitters"`
	Subscribers int             `json:"subscribers"`
	Spec        service.JobSpec `json:"spec"`
	Seeds       int             `json:"seeds"`
	CancelEvery int             `json:"cancel_every,omitempty"`
	ElapsedSec  float64         `json:"elapsed_sec"`

	// Request counters. Errors are transport failures and unexpected status
	// codes; queue-full rejections (503 on submit) and quota rejections (429)
	// are counted separately — they are the service's declared backpressure,
	// not a malfunction.
	Requests      int64 `json:"requests"`
	Errors        int64 `json:"errors"`
	QueueFull     int64 `json:"queue_full"`
	QuotaRejected int64 `json:"quota_rejected,omitempty"`

	// Job outcomes as the submitters observed them. JobsFailed counts jobs
	// the server accepted and then moved to the failed state — a bad spec
	// or a broken engine, invisible in Errors because every request around
	// it succeeded.
	JobsAccepted int64 `json:"jobs_accepted"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`
	CacheHits    int64 `json:"cache_hits"`

	// Stream outcomes. StreamsStale counts subscriptions that hit a job
	// already evicted by the server's JobHistory retention (410 Gone) —
	// expected under cache-hit churn, so separate from Errors.
	Streams         int64 `json:"streams"`
	StreamsStale    int64 `json:"streams_stale,omitempty"`
	SamplesStreamed int64 `json:"samples_streamed"`

	// Latency summaries per request kind.
	Submit      LatencySummary `json:"submit"`
	Status      LatencySummary `json:"status"`
	Result      LatencySummary `json:"result"`
	FirstSample LatencySummary `json:"first_sample"`

	// Server is the /v1/stats counter delta over the run.
	Server ServerDelta `json:"server"`
}

// ServerDelta is the server-side view of the run, scraped from the daemon's
// Prometheus /metrics exposition: counters after minus before, gauges at
// after, plus rates derived against the run's wall clock.
type ServerDelta struct {
	JobsSubmitted   int64   `json:"jobs_submitted"`
	JobsCompleted   int64   `json:"jobs_completed"`
	JobsCanceled    int64   `json:"jobs_canceled"`
	JobsCached      int64   `json:"jobs_cached"`
	SweepsRun       int64   `json:"sweeps_run"`
	StreamWakeups   int64   `json:"stream_wakeups"`
	CacheEvictions  int64   `json:"cache_evictions"`
	QuotaRejections int64   `json:"quota_rejections"`
	WorkerPanics    int64   `json:"worker_panics"`
	CacheBytes      int64   `json:"cache_bytes"` // gauge: bytes held after the run
	SweepsPerSec    float64 `json:"sweeps_per_sec"`
	FlipsPerNs      float64 `json:"flips_per_ns"`
	WakeupsPerSweep float64 `json:"wakeups_per_sweep"`

	// Stage-latency quantiles over the run, in milliseconds, reconstructed
	// from the daemon's Prometheus histogram bucket deltas (two scrapes,
	// PromQL histogram_quantile math): where server-side time went — queue
	// wait, worker occupancy, checkpoint fsyncs, stream write batches. Zero
	// when the stage recorded nothing during the run.
	QueueWaitP50Ms       float64 `json:"queue_wait_p50_ms,omitempty"`
	QueueWaitP95Ms       float64 `json:"queue_wait_p95_ms,omitempty"`
	QueueWaitP99Ms       float64 `json:"queue_wait_p99_ms,omitempty"`
	RunP95Ms             float64 `json:"run_p95_ms,omitempty"`
	CheckpointWriteP95Ms float64 `json:"checkpoint_write_p95_ms,omitempty"`
	StreamWriteP95Ms     float64 `json:"stream_write_p95_ms,omitempty"`
}

// Metrics flattens the report into the metric map thresholds evaluate
// against; MetricNames lists the vocabulary.
func (r *Report) Metrics() map[string]float64 {
	m := map[string]float64{
		"requests":                 float64(r.Requests),
		"errors":                   float64(r.Errors),
		"queue_full":               float64(r.QueueFull),
		"quota_rejected":           float64(r.QuotaRejected),
		"quota_rejections":         float64(r.Server.QuotaRejections),
		"cache_evictions":          float64(r.Server.CacheEvictions),
		"cache_bytes":              float64(r.Server.CacheBytes),
		"worker_panics":            float64(r.Server.WorkerPanics),
		"jobs_done":                float64(r.JobsDone),
		"jobs_failed":              float64(r.JobsFailed),
		"samples_streamed":         float64(r.SamplesStreamed),
		"submit_p50_ms":            r.Submit.P50Ms,
		"submit_p95_ms":            r.Submit.P95Ms,
		"submit_p99_ms":            r.Submit.P99Ms,
		"status_p95_ms":            r.Status.P95Ms,
		"result_p95_ms":            r.Result.P95Ms,
		"first_sample_p95_ms":      r.FirstSample.P95Ms,
		"sweeps_per_sec":           r.Server.SweepsPerSec,
		"service_flips_per_ns":     r.Server.FlipsPerNs,
		"stream_wakeups_per_sweep": r.Server.WakeupsPerSweep,
		// Server-side stage quantiles: always present (zero when the stage
		// recorded nothing) so a threshold on them can never be Missing.
		"queue_wait_p50_ms":       r.Server.QueueWaitP50Ms,
		"queue_wait_p95_ms":       r.Server.QueueWaitP95Ms,
		"queue_wait_p99_ms":       r.Server.QueueWaitP99Ms,
		"run_p95_ms":              r.Server.RunP95Ms,
		"checkpoint_write_p95_ms": r.Server.CheckpointWriteP95Ms,
		"stream_write_p95_ms":     r.Server.StreamWriteP95Ms,
	}
	if r.ElapsedSec > 0 {
		m["requests_per_sec"] = float64(r.Requests) / r.ElapsedSec
		m["jobs_per_sec"] = float64(r.JobsDone) / r.ElapsedSec
	}
	if r.Requests > 0 {
		m["error_rate"] = float64(r.Errors) / float64(r.Requests)
		m["queue_full_rate"] = float64(r.QueueFull) / float64(r.Requests)
		m["quota_rejection_rate"] = float64(r.QuotaRejected) / float64(r.Requests)
	} else {
		m["error_rate"] = 1 // a run that made no requests did not pass
	}
	if submits := r.JobsAccepted + r.CacheHits; submits > 0 {
		m["cache_hit_rate"] = float64(r.CacheHits) / float64(submits)
	}
	return m
}

// Text renders the report as the k6-style console summary.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %d submitters + %d subscribers for %.1fs against %s\n",
		r.Submitters, r.Subscribers, r.ElapsedSec, r.BaseURL)
	fmt.Fprintf(&b, "  spec: %s %dx%d sweeps=%d sample_interval=%d seeds=%d\n",
		r.Spec.Backend, r.Spec.Rows, r.Spec.Cols, r.Spec.Sweeps, r.Spec.SampleInterval, r.Seeds)
	fmt.Fprintf(&b, "requests.............: %d (%.1f/s), errors %d, queue_full %d, quota_rejected %d\n",
		r.Requests, float64(r.Requests)/r.ElapsedSec, r.Errors, r.QueueFull, r.QuotaRejected)
	fmt.Fprintf(&b, "jobs.................: accepted %d, done %d, failed %d, canceled %d, cache hits %d\n",
		r.JobsAccepted, r.JobsDone, r.JobsFailed, r.JobsCanceled, r.CacheHits)
	fmt.Fprintf(&b, "streams..............: %d (%d stale), samples %d\n",
		r.Streams, r.StreamsStale, r.SamplesStreamed)
	line := func(name string, s LatencySummary) {
		fmt.Fprintf(&b, "%s: n=%-6d p50=%8.2fms p95=%8.2fms p99=%8.2fms max=%8.2fms\n",
			name, s.Count, s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs)
	}
	line("submit latency.......", r.Submit)
	line("status latency.......", r.Status)
	line("result latency.......", r.Result)
	line("first sample latency.", r.FirstSample)
	fmt.Fprintf(&b, "server...............: %d sweeps (%.0f/s, %.4f flips/ns), %d stream wakeups (%.3f/sweep)\n",
		r.Server.SweepsRun, r.Server.SweepsPerSec, r.Server.FlipsPerNs,
		r.Server.StreamWakeups, r.Server.WakeupsPerSweep)
	fmt.Fprintf(&b, "server limits........: %d cache evictions, %d cache bytes held, %d quota rejections, %d worker panics\n",
		r.Server.CacheEvictions, r.Server.CacheBytes, r.Server.QuotaRejections, r.Server.WorkerPanics)
	fmt.Fprintf(&b, "server stages (p95)..: queue_wait=%.2fms run=%.2fms checkpoint_write=%.2fms stream_write=%.2fms\n",
		r.Server.QueueWaitP95Ms, r.Server.RunP95Ms, r.Server.CheckpointWriteP95Ms, r.Server.StreamWriteP95Ms)
	return b.String()
}

// runState is the shared mutable state of one scenario run.
type runState struct {
	sc       Scenario
	client   *http.Client
	deadline time.Time

	submitH, statusH, resultH, firstSampleH *Histogram

	requests, errors, queueFull, quotaRejected        atomic.Int64
	jobsAccepted, jobsDone, jobsFailed, jobsCanceled  atomic.Int64
	cacheHits, streams, streamsStale, samplesStreamed atomic.Int64
	seedCounter                                       atomic.Int64

	mu  sync.Mutex
	ids []string // ring of recently accepted job IDs for subscribers
}

// idRingCap bounds the subscriber job-ID ring.
const idRingCap = 256

func (rs *runState) pushID(id string) {
	rs.mu.Lock()
	rs.ids = append(rs.ids, id)
	if len(rs.ids) > idRingCap {
		rs.ids = rs.ids[len(rs.ids)-idRingCap:]
	}
	rs.mu.Unlock()
}

func (rs *runState) pickID(rnd *rand.Rand) (string, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.ids) == 0 {
		return "", false
	}
	return rs.ids[rnd.Intn(len(rs.ids))], true
}

// dropID removes a job ID the server no longer knows (evicted by its
// JobHistory retention), so subscribers stop re-picking it.
func (rs *runState) dropID(id string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i, have := range rs.ids {
		if have == id {
			rs.ids = append(rs.ids[:i], rs.ids[i+1:]...)
			return
		}
	}
}

// Run executes the scenario and assembles the report. The context bounds
// the whole run (on top of the scenario duration); transport-level failures
// of the stats endpoint — without which there is no report — are returned
// as errors, per-request failures are counted in the report.
func (sc Scenario) Run(ctx context.Context) (*Report, error) {
	sc = sc.withDefaults()
	rs := &runState{
		sc: sc,
		// One client for every virtual user; no global timeout because
		// streams legitimately live as long as jobs. Per-request bounds
		// come from the run deadline via request contexts.
		client:       &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: sc.Submitters + sc.Subscribers}},
		submitH:      NewHistogram(),
		statusH:      NewHistogram(),
		resultH:      NewHistogram(),
		firstSampleH: NewHistogram(),
	}
	before, err := rs.fetchMetrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: scraping %s/metrics before the run: %w", sc.BaseURL, err)
	}

	rs.deadline = time.Now().Add(sc.Duration)
	runCtx, cancel := context.WithDeadline(ctx, rs.deadline.Add(30*time.Second))
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < sc.Submitters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rs.submitter(runCtx, id)
		}(i)
	}
	for i := 0; i < sc.Subscribers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rs.subscriber(runCtx, id)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := rs.fetchMetrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: scraping %s/metrics after the run: %w", sc.BaseURL, err)
	}
	return rs.report(elapsed, before, after), nil
}

// report assembles the final Report from the run state and the scraped
// metrics delta.
func (rs *runState) report(elapsed time.Duration, before, after map[string]float64) *Report {
	r := &Report{
		BaseURL:     rs.sc.BaseURL,
		Submitters:  rs.sc.Submitters,
		Subscribers: rs.sc.Subscribers,
		Spec:        rs.sc.Spec,
		Seeds:       rs.sc.Seeds,
		CancelEvery: rs.sc.CancelEvery,
		ElapsedSec:  elapsed.Seconds(),

		Requests:      rs.requests.Load(),
		Errors:        rs.errors.Load(),
		QueueFull:     rs.queueFull.Load(),
		QuotaRejected: rs.quotaRejected.Load(),

		JobsAccepted: rs.jobsAccepted.Load(),
		JobsDone:     rs.jobsDone.Load(),
		JobsFailed:   rs.jobsFailed.Load(),
		JobsCanceled: rs.jobsCanceled.Load(),
		CacheHits:    rs.cacheHits.Load(),

		Streams:         rs.streams.Load(),
		StreamsStale:    rs.streamsStale.Load(),
		SamplesStreamed: rs.samplesStreamed.Load(),

		Submit:      rs.submitH.Summary(),
		Status:      rs.statusH.Summary(),
		Result:      rs.resultH.Summary(),
		FirstSample: rs.firstSampleH.Summary(),
	}
	delta := func(name string) int64 { return int64(after[name] - before[name]) }
	d := ServerDelta{
		JobsSubmitted:   delta("isingd_jobs_submitted_total"),
		JobsCompleted:   delta("isingd_jobs_completed_total"),
		JobsCanceled:    delta("isingd_jobs_canceled_total"),
		JobsCached:      delta("isingd_jobs_cached_total"),
		SweepsRun:       delta("isingd_sweeps_run_total"),
		StreamWakeups:   delta("isingd_stream_wakeups_total"),
		CacheEvictions:  delta("isingd_cache_evictions_total"),
		QuotaRejections: delta("isingd_quota_rejections_total"),
		WorkerPanics:    delta("isingd_worker_panics_total"),
		CacheBytes:      int64(after["isingd_cache_bytes"]),
	}
	if s := elapsed.Seconds(); s > 0 {
		d.SweepsPerSec = float64(d.SweepsRun) / s
		cols := rs.sc.Spec.Cols
		if cols == 0 {
			cols = rs.sc.Spec.Rows
		}
		// Spin flips the service executed for this spec shape, per
		// wall-clock nanosecond — comparable to the harness host tables.
		d.FlipsPerNs = float64(d.SweepsRun) * float64(rs.sc.Spec.Rows) * float64(cols) / (s * 1e9)
	}
	if d.SweepsRun > 0 {
		d.WakeupsPerSweep = float64(d.StreamWakeups) / float64(d.SweepsRun)
	}
	const toMs = 1e3 // histogram buckets are seconds; the report speaks ms
	d.QueueWaitP50Ms = toMs * histQuantileDelta(before, after, "isingd_queue_wait_seconds", 0.50)
	d.QueueWaitP95Ms = toMs * histQuantileDelta(before, after, "isingd_queue_wait_seconds", 0.95)
	d.QueueWaitP99Ms = toMs * histQuantileDelta(before, after, "isingd_queue_wait_seconds", 0.99)
	d.RunP95Ms = toMs * histQuantileDelta(before, after, "isingd_run_seconds", 0.95)
	d.CheckpointWriteP95Ms = toMs * histQuantileDelta(before, after, "isingd_checkpoint_write_seconds", 0.95)
	d.StreamWriteP95Ms = toMs * histQuantileDelta(before, after, "isingd_stream_write_seconds", 0.95)
	r.Server = d
	return r
}

// fetchMetrics scrapes the daemon's Prometheus /metrics exposition into a
// flat name → value map — the same scrape any monitoring stack would do.
func (rs *runState) fetchMetrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.sc.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rs.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics endpoint returned %d", resp.StatusCode)
	}
	return parsePromText(resp.Body)
}

// submitter is one virtual submitting user: until the deadline, POST a spec
// from the seed window, then cancel it or await its result.
func (rs *runState) submitter(ctx context.Context, id int) {
	client := ""
	if rs.sc.Clients > 0 {
		client = fmt.Sprintf("client-%02d", id%rs.sc.Clients)
	}
	submitted := 0
	for time.Now().Before(rs.deadline) && ctx.Err() == nil {
		spec := rs.sc.Spec
		spec.Seed = rs.sc.Spec.Seed + uint64(rs.seedCounter.Add(1)%int64(rs.sc.Seeds))
		st, code, err := rs.postJob(ctx, spec, client)
		if err != nil {
			rs.errors.Add(1)
			continue
		}
		switch code {
		case http.StatusOK: // cache hit: result came back inline
			rs.cacheHits.Add(1)
			rs.jobsDone.Add(1)
		case http.StatusAccepted:
			rs.jobsAccepted.Add(1)
			submitted++
			if rs.sc.CancelEvery > 0 && submitted%rs.sc.CancelEvery == 0 {
				rs.cancelJob(ctx, st.ID)
				continue
			}
			rs.pushID(st.ID)
			rs.awaitResult(ctx, st.ID)
		case http.StatusServiceUnavailable:
			rs.queueFull.Add(1)
			// Back off briefly: the queue is telling us it is full.
			sleepCtx(ctx, rs.sc.PollInterval)
		case http.StatusTooManyRequests:
			// The per-client quota said no: declared backpressure, like a
			// full queue. Back off until some of our jobs drain.
			rs.quotaRejected.Add(1)
			sleepCtx(ctx, rs.sc.PollInterval)
		default:
			rs.errors.Add(1)
		}
	}
}

// postJob submits one spec under a client identity, recording the request
// latency.
func (rs *runState) postJob(ctx context.Context, spec service.JobSpec, client string) (service.JobStatus, int, error) {
	var st service.JobStatus
	blob, err := json.Marshal(spec)
	if err != nil {
		return st, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rs.sc.BaseURL+"/v1/jobs", bytes.NewReader(blob))
	if err != nil {
		return st, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	start := time.Now()
	resp, err := rs.client.Do(req)
	rs.requests.Add(1)
	if err != nil {
		return st, 0, err
	}
	rs.submitH.Observe(time.Since(start))
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return st, resp.StatusCode, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode, nil
}

// cancelJob cancels one job, counting it.
func (rs *runState) cancelJob(ctx context.Context, id string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, rs.sc.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		rs.errors.Add(1)
		return
	}
	resp, err := rs.client.Do(req)
	rs.requests.Add(1)
	if err != nil {
		rs.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rs.errors.Add(1)
		return
	}
	rs.jobsCanceled.Add(1)
}

// awaitResult polls the job's status until terminal, then fetches the
// result, recording poll and result latencies. Jobs still running at the
// deadline are abandoned (their requests simply stop), like load-test users
// walking away.
func (rs *runState) awaitResult(ctx context.Context, id string) {
	for ctx.Err() == nil {
		start := time.Now()
		code, st, err := rs.getStatus(ctx, id)
		if err != nil {
			rs.errors.Add(1)
			return
		}
		rs.statusH.Observe(time.Since(start))
		if code == http.StatusGone {
			// The job finished and aged out of the history between polls —
			// retention doing its job under churn, not a malfunction.
			return
		}
		if code != http.StatusOK {
			rs.errors.Add(1)
			return
		}
		if st.State == service.StateDone {
			break
		}
		if st.State == service.StateFailed {
			rs.jobsFailed.Add(1)
			return
		}
		if st.State == service.StateCanceled {
			return
		}
		if time.Now().After(rs.deadline.Add(10 * time.Second)) {
			return // abandoned: the run is over and the job still going
		}
		sleepCtx(ctx, rs.sc.PollInterval)
	}
	if ctx.Err() != nil {
		return
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.sc.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		rs.errors.Add(1)
		return
	}
	resp, err := rs.client.Do(req)
	rs.requests.Add(1)
	if err != nil {
		rs.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return // evicted between the final poll and the fetch: retention churn
	}
	if resp.StatusCode != http.StatusOK {
		rs.errors.Add(1)
		return
	}
	rs.resultH.Observe(time.Since(start))
	rs.jobsDone.Add(1)
}

// getStatus reads one job status.
func (rs *runState) getStatus(ctx context.Context, id string) (int, service.JobStatus, error) {
	var st service.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.sc.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return 0, st, err
	}
	resp, err := rs.client.Do(req)
	rs.requests.Add(1)
	if err != nil {
		return 0, st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		err = json.NewDecoder(resp.Body).Decode(&st)
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, st, err
}

// subscriber is one virtual streaming user: until the deadline, pick a
// recently accepted job and consume its NDJSON stream to the end, recording
// the time to the first sample line.
func (rs *runState) subscriber(ctx context.Context, id int) {
	rnd := rand.New(rand.NewSource(int64(id) + 1))
	for time.Now().Before(rs.deadline) && ctx.Err() == nil {
		jobID, ok := rs.pickID(rnd)
		if !ok {
			sleepCtx(ctx, rs.sc.PollInterval)
			continue
		}
		rs.consumeStream(ctx, jobID)
	}
}

// consumeStream reads one /stream response to EOF.
func (rs *runState) consumeStream(ctx context.Context, jobID string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.sc.BaseURL+"/v1/jobs/"+jobID+"/stream", nil)
	if err != nil {
		rs.errors.Add(1)
		return
	}
	start := time.Now()
	resp, err := rs.client.Do(req)
	rs.requests.Add(1)
	if err != nil {
		rs.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone || resp.StatusCode == http.StatusNotFound {
		// The job aged out of the server's JobHistory retention (410; 404
		// from pre-retention daemons) between our picking its ID and
		// subscribing — expected under cache-hit churn.
		io.Copy(io.Discard, resp.Body)
		rs.streamsStale.Add(1)
		rs.dropID(jobID)
		return
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		rs.errors.Add(1)
		return
	}
	rs.streams.Add(1)
	scanner := bufio.NewScanner(resp.Body)
	first := true
	for scanner.Scan() {
		if first {
			rs.firstSampleH.Observe(time.Since(start))
			first = false
		}
		rs.samplesStreamed.Add(1)
	}
	// A stream cut by the run context expiring is expected shutdown, not a
	// service error.
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		rs.errors.Add(1)
	}
}

// sleepCtx sleeps for d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
