package load

import "tpuising/internal/hist"

// The log-bucketed latency histogram was born here measuring client-side
// request latencies; it moved to internal/hist when the service grew
// server-side stage histograms so both ends of the wire bucket latencies
// identically. These aliases keep the load API (and the BENCH snapshot
// schema, which embeds LatencySummary) unchanged.
type (
	// Histogram is a concurrency-safe log-bucketed latency histogram.
	Histogram = hist.Histogram
	// LatencySummary is the JSON quantile rendering of a histogram.
	LatencySummary = hist.LatencySummary
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return hist.New() }
