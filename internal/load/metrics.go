package load

import (
	"math"
	"sync"
	"time"
)

// Histogram bucket layout: geometric buckets from histMinUS microseconds
// growing by histGrowth per bucket, so every recorded latency lands in a
// bucket within ~6% of its true value (half the 12% bucket width) — the
// HDR-histogram trade k6's trend metrics make, without keeping every sample.
const (
	histMinUS  = 1.0  // lower edge of bucket 0, in microseconds
	histGrowth = 1.12 // relative bucket width
	histCount  = 192  // covers past 10 minutes
)

// Histogram is a concurrency-safe log-bucketed latency histogram.
// The zero value is not ready; use NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	counts [histCount]int64
	n      int64
	sum    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a latency to its bucket.
func bucketIndex(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us < histMinUS {
		return 0
	}
	i := int(math.Log(us/histMinUS) / math.Log(histGrowth))
	if i >= histCount {
		i = histCount - 1
	}
	return i
}

// bucketValue is the representative latency of a bucket: its log-space
// midpoint.
func bucketValue(i int) time.Duration {
	us := histMinUS * math.Pow(histGrowth, float64(i)+0.5)
	return time.Duration(us * float64(time.Microsecond))
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bucketIndex(d)
	h.mu.Lock()
	h.counts[i]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of recorded latencies.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantile returns the q-quantile (0 < q <= 1) of the recorded latencies,
// accurate to the bucket width; 0 when nothing was recorded. The true
// maximum is reported exactly.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}

// LatencySummary is the JSON rendering of a histogram: the fields every
// BENCH snapshot and threshold check consumes, in milliseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary extracts the snapshot quantiles.
func (h *Histogram) Summary() LatencySummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := LatencySummary{Count: h.n, MaxMs: ms(h.max)}
	if h.n > 0 {
		s.MeanMs = ms(h.sum / time.Duration(h.n))
		s.P50Ms = ms(h.quantileLocked(0.50))
		s.P95Ms = ms(h.quantileLocked(0.95))
		s.P99Ms = ms(h.quantileLocked(0.99))
	}
	return s
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
