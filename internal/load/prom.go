package load

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tpuising/internal/hist"
)

// promTypes is the vocabulary of # TYPE declarations the parser accepts —
// exactly what isingd emits. An unknown type is an error, not a skip: the
// scrape feeds the threshold gate, and a sample whose type we cannot
// interpret would silently fall out of the quantile math. The CI load smoke
// relies on this to assert the daemon's exposition contains zero
// unknown-type lines.
var promTypes = map[string]bool{"counter": true, "gauge": true, "histogram": true}

// parsePromText parses the subset of the Prometheus text exposition format
// isingd emits — `name value` and `name{labels} value` samples with
// # HELP/# TYPE comment lines — into a flat map. Labelled samples are keyed
// verbatim (`isingd_queue_wait_seconds_bucket{le="0.25"}`), which is all the
// delta and quantile math needs. A malformed sample line or an unknown # TYPE
// is an error: a silently dropped metric would read as "the counter never
// moved".
func parsePromText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) >= 4 && fields[1] == "TYPE" {
				if !promTypes[fields[3]] {
					return nil, fmt.Errorf("load: unknown metric type %q in line %q", fields[3], line)
				}
			}
			continue
		}
		key, val := line, ""
		if open := strings.IndexByte(line, '{'); open > 0 {
			// A labelled sample: the key runs through the matching final '}';
			// exactly one value field follows.
			end := strings.LastIndexByte(line, '}')
			if end < open {
				return nil, fmt.Errorf("load: malformed metrics line %q", line)
			}
			key, val = line[:end+1], strings.TrimSpace(line[end+1:])
			if strings.ContainsAny(val, " \t") {
				return nil, fmt.Errorf("load: malformed metrics line %q", line)
			}
		} else {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("load: malformed metrics line %q", line)
			}
			key, val = fields[0], fields[1]
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("load: metrics line %q: %w", line, err)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// histQuantileDelta reconstructs the q-quantile, in seconds, of a scraped
// Prometheus histogram over the interval between two scrapes: bucket counts
// after minus before, fed through hist.QuantileFromBuckets the way PromQL's
// histogram_quantile consumes a rate(). Returns 0 when the histogram is
// absent from the scrape or recorded nothing during the interval.
func histQuantileDelta(before, after map[string]float64, name string, q float64) float64 {
	prefix := name + `_bucket{le="`
	var bounds []float64
	for key := range after {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		le := strings.TrimSuffix(strings.TrimPrefix(key, prefix), `"}`)
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		bounds = append(bounds, b)
	}
	if len(bounds) == 0 {
		return 0
	}
	sort.Float64s(bounds)
	cumulative := make([]float64, len(bounds))
	for i, b := range bounds {
		// FormatFloat round-trips every bound the exposition printed,
		// including "+Inf".
		key := prefix + strconv.FormatFloat(b, 'g', -1, 64) + `"}`
		cumulative[i] = after[key] - before[key]
	}
	total := after[name+"_count"] - before[name+"_count"]
	return hist.QuantileFromBuckets(bounds, cumulative, total, q)
}
