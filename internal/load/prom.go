package load

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parsePromText parses the subset of the Prometheus text exposition format
// isingd emits — unlabelled `name value` samples with # HELP/# TYPE comment
// lines — into a flat name → value map. A malformed sample line is an error:
// the scrape feeds the threshold gate, and a silently dropped metric would
// read as "the counter never moved".
func parsePromText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("load: malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("load: metrics line %q: %w", line, err)
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
