// Package backend constructs the repository's Ising engines by name behind
// the ising.Backend interface: the serial checkerboard reference, the
// GPU-style parallel CPU baseline, the bit-packed multispin engine, its
// mesh-sharded pod decomposition and the simulated-TPU simulator. The CLI's -backend flag, the harness's host
// baseline table and the repository benchmarks all go through New, so adding
// an engine here makes it available everywhere at once.
package backend

import (
	"fmt"
	"sort"
	"strings"

	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/ising/ensemble"
	"tpuising/internal/ising/gpusim"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/ising/sharded"
	"tpuising/internal/ising/shardedensemble"
	"tpuising/internal/ising/tpu"
	"tpuising/internal/rng"
	"tpuising/internal/tensor"
)

// Config carries the union of the engine configuration parameters; each
// engine reads the fields it understands and ignores the rest.
type Config struct {
	// Rows and Cols are the lattice dimensions (the multispin engines need
	// even Rows and Cols a multiple of 64).
	Rows, Cols int
	// Temperature is in units of J/kB (0 = the critical temperature).
	Temperature float64
	// Seed seeds the engine's site-keyed random stream.
	Seed uint64
	// Workers is the goroutine count of the parallel host engines
	// (0 = GOMAXPROCS).
	Workers int
	// GridR and GridC are the shard grid dimensions of the sharded backend
	// (0 = 1): GridR shards along the rows, GridC along the columns, one
	// simulated mesh core per shard. The other engines ignore them.
	GridR, GridC int
	// TileSize is the simulated MXU tile edge of the tpu backend (0 picks the
	// largest power-of-two tile, up to 128, that divides half of both
	// dimensions).
	TileSize int
	// DType is the tpu backend's storage precision (default bfloat16).
	DType tensor.DType
	// Algorithm is the tpu backend's update kernel (default Algorithm 2).
	Algorithm tpu.Algorithm
	// Hot starts from a random (infinite-temperature) lattice instead of the
	// cold all-up start. The tpu backend ignores it.
	Hot bool
}

// builders maps canonical backend names to constructors.
var builders = map[string]func(Config) (ising.Backend, error){
	"checkerboard":     newCheckerboard,
	"gpusim":           newGPUSim,
	"multispin":        newMultispin(false),
	"multispin-shared": newMultispin(true),
	"sharded":          newSharded,
	"sharded-ensemble": newShardedEnsemble,
	"tpu":              newTPU,
}

// aliases maps accepted spellings to canonical names.
var aliases = map[string]string{
	"serial":   "checkerboard",
	"cpu":      "checkerboard",
	"parallel": "gpusim",
	"gpu":      "gpusim",
}

// Names returns the canonical backend names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List returns the canonical backend names joined as "a, b, c". It is the
// single source of the registry listing used by every user-facing error and
// usage string — the -backend flag help, the CLI's flag-validation fatals and
// the service's job-spec errors all print exactly this list.
func List() string { return strings.Join(Names(), ", ") }

// Canonical resolves a backend name or alias to its canonical form.
func Canonical(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if a, ok := aliases[n]; ok {
		n = a
	}
	if _, ok := builders[n]; !ok {
		return "", fmt.Errorf("backend: unknown engine %q (want one of %s)", name, List())
	}
	return n, nil
}

// New builds the named engine. Name matching is case-insensitive and accepts
// the aliases serial/cpu (checkerboard) and parallel/gpu (gpusim).
func New(name string, cfg Config) (ising.Backend, error) {
	n, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("backend: invalid lattice size %dx%d", cfg.Rows, cfg.Cols)
	}
	return builders[n](cfg)
}

// NewBatch builds a batched ensemble of `lanes` independent chains of the
// named engine, all at cfg.Temperature, with lane L seeded
// ising.LaneSeed(cfg.Seed, L). When the engine is the per-site multispin
// kernel (and the config fits its constraints), the lanes come back as one
// lane-packed internal/ising/ensemble engine — bit-identical chains, one
// word pass per site for all of them; every other registered engine is
// lifted through the generic adapter, so the batch axis works for the whole
// registry. Batching is an execution strategy, never a physics change: lane
// L's chain is the same chain either way.
func NewBatch(name string, cfg Config, lanes int) (ising.BatchBackend, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("backend: batch needs at least 1 lane, got %d", lanes)
	}
	temps := make([]float64, lanes)
	for i := range temps {
		temps[i] = temperature(cfg)
	}
	return NewBatchLadder(name, cfg, temps)
}

// NewBatchLadder is NewBatch with one temperature per lane: lane L runs at
// temps[L] (still seeded ising.LaneSeed(cfg.Seed, L), cfg.Temperature
// ignored). It is how the consumers hand a whole tempering ladder or
// temperature scan to one batched backend.
func NewBatchLadder(name string, cfg Config, temps []float64) (ising.BatchBackend, error) {
	n, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	if len(temps) == 0 {
		return nil, fmt.Errorf("backend: batch needs at least 1 lane temperature")
	}
	if packedBatchEligible(n, cfg, len(temps)) {
		return ensemble.New(ensemble.Config{
			Rows: cfg.Rows, Cols: cfg.Cols, Lanes: len(temps),
			Temperatures: temps, Seed: cfg.Seed,
			Workers: cfg.Workers, Hot: cfg.Hot,
		})
	}
	if shardedBatchEligible(n, cfg, len(temps)) {
		return shardedensemble.New(shardedensemble.Config{
			Rows: cfg.Rows, Cols: cfg.Cols, GridR: cfg.GridR, GridC: cfg.GridC,
			Lanes: len(temps), Temperatures: temps, Seed: cfg.Seed, Hot: cfg.Hot,
		})
	}
	backends := make([]ising.Backend, len(temps))
	for i, temp := range temps {
		c := cfg
		c.Temperature = temp
		c.Seed = ising.LaneSeed(cfg.Seed, i)
		if backends[i], err = New(n, c); err != nil {
			return nil, fmt.Errorf("backend: building batch lane %d: %w", i, err)
		}
	}
	return ising.NewBatchOf(backends, cfg.Workers)
}

// packedBatchEligible reports whether a batch of the named engine can run on
// the lane-packed ensemble engine: per-site multispin chains (the packed
// lanes are bit-identical to those), a lattice satisfying the multispin
// constraints, at most 64 lanes, and no shard grid.
func packedBatchEligible(name string, cfg Config, lanes int) bool {
	return name == "multispin" &&
		lanes <= ensemble.MaxLanes &&
		cfg.Rows >= 2 && cfg.Rows%2 == 0 &&
		cfg.Cols > 0 && cfg.Cols%multispin.WordBits == 0 &&
		cfg.GridR <= 1 && cfg.GridC <= 1
}

// shardedBatchEligible reports whether a batch of the sharded-ensemble
// backend can run as one composed engine — all lanes lane-packed across the
// whole pod grid at once instead of one grid per lane. The constraints are
// the engine's own (divisible grid, whole random groups per shard); a batch
// that violates them falls back to the generic adapter, one pod per lane.
func shardedBatchEligible(name string, cfg Config, lanes int) bool {
	gridR, gridC := cfg.GridR, cfg.GridC
	if gridR <= 0 {
		gridR = 1
	}
	if gridC <= 0 {
		gridC = 1
	}
	return name == "sharded-ensemble" &&
		lanes <= shardedensemble.MaxLanes &&
		cfg.Rows >= 2 && cfg.Rows%2 == 0 && cfg.Rows%gridR == 0 &&
		cfg.Cols > 0 && cfg.Cols%multispin.WordBits == 0 && cfg.Cols%(8*gridC) == 0
}

// hostLattice builds the starting configuration of the host engines.
func hostLattice(cfg Config) *ising.Lattice {
	if cfg.Hot {
		return ising.NewRandomLattice(cfg.Rows, cfg.Cols, rng.New(cfg.Seed))
	}
	return ising.NewLattice(cfg.Rows, cfg.Cols)
}

func newCheckerboard(cfg Config) (ising.Backend, error) {
	return checkerboard.NewSampler(hostLattice(cfg), temperature(cfg), cfg.Seed), nil
}

func newGPUSim(cfg Config) (ising.Backend, error) {
	// ParallelSweep's row-band parallelism relies on the checkerboard being
	// bipartite on the torus, which needs even dimensions: with an odd row
	// count the wrap-around neighbours share a colour and adjacent bands
	// would race on them.
	if cfg.Rows%2 != 0 || cfg.Cols%2 != 0 {
		return nil, fmt.Errorf("backend: gpusim needs even lattice dimensions, got %dx%d", cfg.Rows, cfg.Cols)
	}
	return gpusim.NewSampler(hostLattice(cfg), temperature(cfg), cfg.Seed, cfg.Workers), nil
}

func newMultispin(shared bool) func(Config) (ising.Backend, error) {
	return func(cfg Config) (ising.Backend, error) {
		mc := multispin.Config{
			Rows: cfg.Rows, Cols: cfg.Cols, Temperature: cfg.Temperature,
			Seed: cfg.Seed, SharedRandom: shared, Workers: cfg.Workers,
		}
		if cfg.Hot {
			mc.Initial = hostLattice(cfg)
		}
		return multispin.New(mc)
	}
}

func newSharded(cfg Config) (ising.Backend, error) {
	sc := sharded.Config{
		Rows: cfg.Rows, Cols: cfg.Cols, GridR: cfg.GridR, GridC: cfg.GridC,
		Temperature: cfg.Temperature, Seed: cfg.Seed,
	}
	if cfg.Hot {
		sc.Initial = hostLattice(cfg)
	}
	return sharded.New(sc)
}

func newShardedEnsemble(cfg Config) (ising.Backend, error) {
	return shardedensemble.NewSingle(shardedensemble.Config{
		Rows: cfg.Rows, Cols: cfg.Cols, GridR: cfg.GridR, GridC: cfg.GridC,
		Temperature: cfg.Temperature, Seed: cfg.Seed, Hot: cfg.Hot,
	})
}

func newTPU(cfg Config) (ising.Backend, error) {
	tile := cfg.TileSize
	if tile == 0 {
		tile = DefaultTile(cfg.Rows, cfg.Cols)
	}
	return tpu.NewSimulator(tpu.Config{
		Rows: cfg.Rows, Cols: cfg.Cols, Temperature: cfg.Temperature,
		TileSize: tile, DType: cfg.DType, Algorithm: cfg.Algorithm, Seed: cfg.Seed,
	}), nil
}

// temperature applies the shared zero-means-Tc default.
func temperature(cfg Config) float64 {
	if cfg.Temperature == 0 {
		return ising.CriticalTemperature()
	}
	return cfg.Temperature
}

// DefaultTile picks the largest power-of-two MXU tile (up to 128) that
// divides half of both lattice dimensions, so small demo lattices work out of
// the box on the tpu backend.
func DefaultTile(rows, cols int) int {
	for _, t := range []int{128, 64, 32, 16, 8, 4, 2} {
		if rows%(2*t) == 0 && cols%(2*t) == 0 {
			return t
		}
	}
	return 2
}
