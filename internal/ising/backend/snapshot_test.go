package backend

import (
	"bytes"
	"testing"

	"tpuising/internal/ising"
)

// snapshotBackends are the registry engines that implement ising.Snapshotter.
var snapshotBackends = []string{"checkerboard", "gpusim", "multispin", "multispin-shared", "sharded"}

// snapshotCases are the engine configurations of the resume test: every
// snapshottable engine on a lattice it accepts, with the sharded engine on a
// real 2x2 grid — and its resume target on a *different* grid, because the
// snapshot is in whole-lattice coordinates and the shard grid is an
// execution detail.
var snapshotCases = []struct {
	name         string
	cfg, resumed Config
}{
	{"checkerboard", Config{Rows: 16, Cols: 64}, Config{Rows: 16, Cols: 64}},
	{"gpusim", Config{Rows: 16, Cols: 64}, Config{Rows: 16, Cols: 64}},
	{"multispin", Config{Rows: 16, Cols: 64}, Config{Rows: 16, Cols: 64}},
	{"multispin-shared", Config{Rows: 16, Cols: 64}, Config{Rows: 16, Cols: 64}},
	{"sharded", Config{Rows: 16, Cols: 128, GridR: 2, GridC: 2}, Config{Rows: 16, Cols: 128}},
}

// TestSnapshotResumeBitIdentical checks the checkpoint/restore contract for
// every snapshottable engine: a chain snapshotted at sweep K and restored
// into a freshly constructed engine finishes the run bit-identically to an
// uninterrupted chain — same spins, same step counter, same observables.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	const total, cut = 40, 17
	for _, tc := range snapshotCases {
		name := tc.name
		cfg := tc.cfg
		cfg.Temperature, cfg.Seed, cfg.Hot = 2.4, 99, true
		full, err := New(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		part, err := New(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < total; i++ {
			full.Sweep()
		}
		for i := 0; i < cut; i++ {
			part.Sweep()
		}
		snap, err := part.(ising.Snapshotter).Snapshot()
		if err != nil {
			t.Fatalf("%s: Snapshot: %v", name, err)
		}
		// Round-trip through the wire format, as the service's checkpoint
		// files do, and restore into an engine built fresh from the registry
		// with a different seed and temperature: Restore must overwrite both.
		decoded, err := ising.DecodeSnapshot(ising.EncodeSnapshot(snap))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		rcfg := tc.resumed
		rcfg.Temperature, rcfg.Seed = 3.1, 7
		resumed, err := New(name, rcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := resumed.(ising.Snapshotter).Restore(decoded); err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		for i := cut; i < total; i++ {
			resumed.Sweep()
		}
		if resumed.Step() != full.Step() {
			t.Fatalf("%s: resumed step %d, uninterrupted %d", name, resumed.Step(), full.Step())
		}
		if resumed.Magnetization() != full.Magnetization() || resumed.Energy() != full.Energy() {
			t.Fatalf("%s: resumed observables (m=%v, e=%v) differ from uninterrupted (m=%v, e=%v)",
				name, resumed.Magnetization(), resumed.Energy(), full.Magnetization(), full.Energy())
		}
		snapFull, err := full.(ising.Snapshotter).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snapResumed, err := resumed.(ising.Snapshotter).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ising.EncodeSnapshot(snapFull), ising.EncodeSnapshot(snapResumed)) {
			t.Fatalf("%s: resumed chain state is not byte-identical to the uninterrupted chain", name)
		}
	}
}

// TestSnapshotRestoreRejectsMismatches checks the shared validation: wrong
// engine type and wrong lattice size must be refused.
func TestSnapshotRestoreRejectsMismatches(t *testing.T) {
	cb, _ := New("checkerboard", Config{Rows: 8, Cols: 8, Temperature: 2.0, Seed: 1})
	ms, _ := New("multispin", Config{Rows: 8, Cols: 64, Temperature: 2.0, Seed: 1})
	cbSnap, err := cb.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.(ising.Snapshotter).Restore(cbSnap); err == nil {
		t.Fatal("multispin must refuse a checkerboard snapshot")
	}
	small, _ := New("checkerboard", Config{Rows: 4, Cols: 4, Temperature: 2.0, Seed: 1})
	if err := small.(ising.Snapshotter).Restore(cbSnap); err == nil {
		t.Fatal("restore must refuse a snapshot of a different lattice size")
	}
	shared, _ := New("multispin-shared", Config{Rows: 8, Cols: 64, Temperature: 2.0, Seed: 1})
	msSnap, err := ms.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := shared.(ising.Snapshotter).Restore(msSnap); err == nil {
		t.Fatal("multispin-shared must refuse a per-site multispin snapshot")
	}
}

// TestShardedSnapshotMatchesMultispin: the sharded engine is bit-identical
// to multispin at the same seed, and its snapshot gathers the shards into
// whole-lattice word order — so the two engines' snapshots must carry
// identical spin bytes, step and RNG state (only the backend name differs).
func TestShardedSnapshotMatchesMultispin(t *testing.T) {
	cfg := Config{Rows: 8, Cols: 128, Temperature: 2.3, Seed: 31}
	scfg := cfg
	scfg.GridR, scfg.GridC = 2, 2
	ms, err := New("multispin", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New("sharded", scfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		ms.Sweep()
		sh.Sweep()
	}
	msSnap, err := ms.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	shSnap, err := sh.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msSnap.Spins, shSnap.Spins) {
		t.Fatal("sharded snapshot spins differ from the bit-identical multispin chain's")
	}
	if msSnap.Step != shSnap.Step || !bytes.Equal(msSnap.RNG, shSnap.RNG) {
		t.Fatal("sharded snapshot step/RNG differ from the multispin chain's")
	}
	if shSnap.Backend != "sharded" {
		t.Fatalf("sharded snapshot names backend %q", shSnap.Backend)
	}
}

// TestPackedLayoutsAgree checks the documented invariant that the multispin
// word dump and ising.Lattice.PackSpins produce the same bytes for the same
// configuration, so one snapshot spin format serves packed and unpacked
// engines alike.
func TestPackedLayoutsAgree(t *testing.T) {
	cfg := Config{Rows: 6, Cols: 128, Temperature: 2.3, Seed: 5, Hot: true}
	ms, err := New("multispin", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ms.Sweep()
	}
	snap, err := ms.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	type latticer interface{ Lattice() *ising.Lattice }
	unpacked := ms.(latticer).Lattice()
	if !bytes.Equal(snap.Spins, unpacked.PackSpins()) {
		t.Fatal("multispin snapshot bytes differ from Lattice.PackSpins of the same configuration")
	}
}
