package backend

import (
	"bytes"
	"testing"

	"tpuising/internal/ising"
)

// snapshotBackends are the registry engines that implement ising.Snapshotter.
var snapshotBackends = []string{"checkerboard", "gpusim", "multispin", "multispin-shared"}

// TestSnapshotResumeBitIdentical checks the checkpoint/restore contract for
// every snapshottable engine: a chain snapshotted at sweep K and restored
// into a freshly constructed engine finishes the run bit-identically to an
// uninterrupted chain — same spins, same step counter, same observables.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	const rows, cols, total, cut = 16, 64, 40, 17
	for _, name := range snapshotBackends {
		cfg := Config{Rows: rows, Cols: cols, Temperature: 2.4, Seed: 99, Hot: true}
		full, err := New(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		part, err := New(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < total; i++ {
			full.Sweep()
		}
		for i := 0; i < cut; i++ {
			part.Sweep()
		}
		snap, err := part.(ising.Snapshotter).Snapshot()
		if err != nil {
			t.Fatalf("%s: Snapshot: %v", name, err)
		}
		// Round-trip through the wire format, as the service's checkpoint
		// files do, and restore into an engine built fresh from the registry
		// with a different seed and temperature: Restore must overwrite both.
		decoded, err := ising.DecodeSnapshot(ising.EncodeSnapshot(snap))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		resumed, err := New(name, Config{Rows: rows, Cols: cols, Temperature: 3.1, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := resumed.(ising.Snapshotter).Restore(decoded); err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		for i := cut; i < total; i++ {
			resumed.Sweep()
		}
		if resumed.Step() != full.Step() {
			t.Fatalf("%s: resumed step %d, uninterrupted %d", name, resumed.Step(), full.Step())
		}
		if resumed.Magnetization() != full.Magnetization() || resumed.Energy() != full.Energy() {
			t.Fatalf("%s: resumed observables (m=%v, e=%v) differ from uninterrupted (m=%v, e=%v)",
				name, resumed.Magnetization(), resumed.Energy(), full.Magnetization(), full.Energy())
		}
		snapFull, err := full.(ising.Snapshotter).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snapResumed, err := resumed.(ising.Snapshotter).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ising.EncodeSnapshot(snapFull), ising.EncodeSnapshot(snapResumed)) {
			t.Fatalf("%s: resumed chain state is not byte-identical to the uninterrupted chain", name)
		}
	}
}

// TestSnapshotRestoreRejectsMismatches checks the shared validation: wrong
// engine type and wrong lattice size must be refused.
func TestSnapshotRestoreRejectsMismatches(t *testing.T) {
	cb, _ := New("checkerboard", Config{Rows: 8, Cols: 8, Temperature: 2.0, Seed: 1})
	ms, _ := New("multispin", Config{Rows: 8, Cols: 64, Temperature: 2.0, Seed: 1})
	cbSnap, err := cb.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.(ising.Snapshotter).Restore(cbSnap); err == nil {
		t.Fatal("multispin must refuse a checkerboard snapshot")
	}
	small, _ := New("checkerboard", Config{Rows: 4, Cols: 4, Temperature: 2.0, Seed: 1})
	if err := small.(ising.Snapshotter).Restore(cbSnap); err == nil {
		t.Fatal("restore must refuse a snapshot of a different lattice size")
	}
	shared, _ := New("multispin-shared", Config{Rows: 8, Cols: 64, Temperature: 2.0, Seed: 1})
	msSnap, err := ms.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := shared.(ising.Snapshotter).Restore(msSnap); err == nil {
		t.Fatal("multispin-shared must refuse a per-site multispin snapshot")
	}
}

// TestPackedLayoutsAgree checks the documented invariant that the multispin
// word dump and ising.Lattice.PackSpins produce the same bytes for the same
// configuration, so one snapshot spin format serves packed and unpacked
// engines alike.
func TestPackedLayoutsAgree(t *testing.T) {
	cfg := Config{Rows: 6, Cols: 128, Temperature: 2.3, Seed: 5, Hot: true}
	ms, err := New("multispin", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ms.Sweep()
	}
	snap, err := ms.(ising.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	type latticer interface{ Lattice() *ising.Lattice }
	unpacked := ms.(latticer).Lattice()
	if !bytes.Equal(snap.Spins, unpacked.PackSpins()) {
		t.Fatal("multispin snapshot bytes differ from Lattice.PackSpins of the same configuration")
	}
}
