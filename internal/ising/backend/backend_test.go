package backend_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/ising/gpusim"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/sweep"
)

// TestEveryBackendConstructs builds every registered engine on a lattice all
// of them accept and runs a few sweeps through the interface.
func TestEveryBackendConstructs(t *testing.T) {
	for _, name := range backend.Names() {
		eng, err := backend.New(name, backend.Config{Rows: 64, Cols: 64, Temperature: 2.5, Seed: 1})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got, err := backend.Canonical(eng.Name()); err != nil || got != name {
			t.Fatalf("New(%q).Name() = %q (canonical %q, %v)", name, eng.Name(), got, err)
		}
		eng.Sweep()
		eng.Sweep()
		if eng.Step() != 4 {
			t.Fatalf("%s: Step() = %d after 2 sweeps, want 4", name, eng.Step())
		}
		if m := eng.Magnetization(); m < -1 || m > 1 {
			t.Fatalf("%s: magnetisation %v out of range", name, m)
		}
		if e := eng.Energy(); e < -2 || e > 2 {
			t.Fatalf("%s: energy %v out of range", name, e)
		}
	}
}

// TestAliasesAndErrors exercises name resolution and the error paths.
func TestAliasesAndErrors(t *testing.T) {
	for alias, want := range map[string]string{
		"serial": "checkerboard", "cpu": "checkerboard",
		"parallel": "gpusim", "GPU": "gpusim",
		" MultiSpin ": "multispin", "tpu": "tpu",
	} {
		got, err := backend.Canonical(alias)
		if err != nil || got != want {
			t.Fatalf("Canonical(%q) = %q, %v; want %q", alias, got, err, want)
		}
	}
	if _, err := backend.New("warp-drive", backend.Config{Rows: 64, Cols: 64}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := backend.New("multispin", backend.Config{Rows: 63, Cols: 64}); err == nil {
		t.Fatal("multispin accepted odd rows")
	}
	if _, err := backend.New("gpusim", backend.Config{Rows: 63, Cols: 63}); err == nil {
		t.Fatal("gpusim accepted odd dimensions (row-band races on an odd torus)")
	}
	if _, err := backend.New("tpu", backend.Config{Rows: 0, Cols: 64}); err == nil {
		t.Fatal("zero rows accepted")
	}
}

// measureBackend equilibrates one engine and returns the sample means of |m|
// and the energy per spin.
func measureBackend(t *testing.T, name string, temp float64, burnIn, samples int) (absM, energy float64) {
	t.Helper()
	points := sweep.RunBackends(sweep.Config{
		Temperatures: []float64{temp},
		BurnIn:       burnIn,
		Samples:      samples,
	}, func(temperature float64) ising.Backend {
		eng, err := backend.New(name, backend.Config{
			Rows: 64, Cols: 64, Temperature: temperature, Seed: 2026,
		})
		if err != nil {
			// The closure runs on a sweep worker goroutine, where t.Fatalf
			// must not be called; a panic still fails the test loudly.
			panic(fmt.Sprintf("New(%q): %v", name, err))
		}
		return eng
	})
	return points[0].AbsMagnetization, points[0].Energy
}

// TestCrossBackendPhysicsAgreement is the cross-backend physics test: the
// serial checkerboard reference and the bit-packed multispin engine simulate
// a 64x64 lattice at T=2.0 (ordered phase) and T=3.5 (disordered phase) and
// must agree on mean |m| and mean energy per spin within statistical
// tolerance; at T=2.0 both must also sit near the exact Onsager values.
func TestCrossBackendPhysicsAgreement(t *testing.T) {
	const burnIn, samples = 400, 1600
	for _, tc := range []struct {
		temp       float64
		tolCross   float64 // allowed |serial - multispin| difference
		checkExact bool
		tolExact   float64 // allowed distance from the infinite-lattice values
	}{
		{temp: 2.0, tolCross: 0.02, checkExact: true, tolExact: 0.03},
		{temp: 3.5, tolCross: 0.03},
	} {
		mSerial, eSerial := measureBackend(t, "checkerboard", tc.temp, burnIn, samples)
		mMulti, eMulti := measureBackend(t, "multispin", tc.temp, burnIn, samples)
		if d := math.Abs(mSerial - mMulti); d > tc.tolCross {
			t.Errorf("T=%.1f: |m| disagrees: checkerboard %.4f vs multispin %.4f (diff %.4f > %.4f)",
				tc.temp, mSerial, mMulti, d, tc.tolCross)
		}
		if d := math.Abs(eSerial - eMulti); d > tc.tolCross {
			t.Errorf("T=%.1f: E/spin disagrees: checkerboard %.4f vs multispin %.4f (diff %.4f > %.4f)",
				tc.temp, eSerial, eMulti, d, tc.tolCross)
		}
		if tc.checkExact {
			exactE := ising.ExactEnergyPerSpin(tc.temp)
			exactM := ising.OnsagerMagnetization(tc.temp)
			for _, m := range []struct {
				name    string
				absM, e float64
			}{{"checkerboard", mSerial, eSerial}, {"multispin", mMulti, eMulti}} {
				if d := math.Abs(m.e - exactE); d > tc.tolExact {
					t.Errorf("T=%.1f: %s E/spin %.4f is %.4f from Onsager %.4f", tc.temp, m.name, m.e, d, exactE)
				}
				if d := math.Abs(m.absM - exactM); d > tc.tolExact {
					t.Errorf("T=%.1f: %s |m| %.4f is %.4f from Onsager %.4f", tc.temp, m.name, m.absM, d, exactM)
				}
			}
		}
	}
}

// latticeHash is an FNV-1a hash of a lattice's spins.
func latticeHash(l *ising.Lattice) uint64 {
	h := fnv.New64a()
	for _, s := range l.Spins {
		h.Write([]byte{byte(s)})
	}
	return h.Sum64()
}

// TestDeterminismGolden: a fixed seed and config must give an identical final
// lattice across repeated runs and across GOMAXPROCS values, for both the
// multispin engine and the ParallelSweep baseline (both are site-keyed, so
// scheduling must not leak into the physics).
func TestDeterminismGolden(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	const sweeps = 20
	run := func(name string) uint64 {
		switch name {
		case "multispin":
			e, err := multispin.New(multispin.Config{Rows: 64, Cols: 128, Temperature: 2.3, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			e.Run(sweeps)
			return e.Hash()
		case "gpusim":
			s := gpusim.NewSampler(ising.NewLattice(64, 128), 2.3, 11, 0)
			s.Run(sweeps)
			return latticeHash(s.Lattice)
		}
		panic("unknown engine")
	}
	for _, name := range []string{"multispin", "gpusim"} {
		var want uint64
		first := true
		for _, procs := range []int{1, 2, 4, 4} { // repeated value = repeated run
			runtime.GOMAXPROCS(procs)
			h := run(name)
			if first {
				want, first = h, false
			} else if h != want {
				t.Fatalf("%s: GOMAXPROCS=%d produced hash %x, want %x", name, procs, h, want)
			}
		}
	}
}

// TestQuenchOrdersLocally: the multispin chain is not bit-identical to the
// checkerboard chain (different random mapping), but a hot lattice quenched
// far below Tc must order locally in every backend -- the energy drops close
// to the ground state even though coarsening arrests in striped domains that
// keep |m| small. This pins the energy sign conventions through the Backend
// interface.
func TestQuenchOrdersLocally(t *testing.T) {
	for _, name := range []string{"checkerboard", "multispin", "multispin-shared"} {
		eng, err := backend.New(name, backend.Config{Rows: 64, Cols: 64, Temperature: 0.5, Seed: 3, Hot: true})
		if err != nil {
			t.Fatal(err)
		}
		if e := eng.Energy(); math.Abs(e) > 0.2 {
			t.Errorf("%s: hot start E/spin = %.3f, want ~0", name, e)
		}
		for i := 0; i < 300; i++ {
			eng.Sweep()
		}
		if e := eng.Energy(); e > -1.7 {
			t.Errorf("%s: E/spin = %.3f after quench to T=0.5, want near -2", name, e)
		}
	}
}
