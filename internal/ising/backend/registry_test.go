package backend_test

import (
	"strings"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
)

// registryClaims declares, for every registered engine, whether it claims
// ising.Snapshotter. A newly registered backend fails this test until it is
// added here — forcing its author to decide (and wire) checkpoint support —
// and a backend that gains or loses Snapshotter without this table noticing
// fails too.
var registryClaims = map[string]struct{ snapshotter bool }{
	"checkerboard":     {snapshotter: true},
	"gpusim":           {snapshotter: true},
	"multispin":        {snapshotter: true},
	"multispin-shared": {snapshotter: true},
	"sharded":          {snapshotter: true},
	"sharded-ensemble": {snapshotter: true},
	"tpu":              {snapshotter: false},
}

// TestRegistryContracts asserts the interface contracts of every registered
// name: it constructs, implements ising.Tempered (the replica-exchange layer
// and the batch adapter rely on every engine having N and SetTemperature),
// and implements ising.Snapshotter exactly where claimed. It also pins the
// claims table to the registry in both directions and checks List() names
// every engine, so the next backend someone forgets to wire is caught here.
func TestRegistryContracts(t *testing.T) {
	names := backend.Names()
	if len(names) != len(registryClaims) {
		t.Errorf("registry has %d names, claims table has %d — keep them in sync", len(names), len(registryClaims))
	}
	listing := backend.List()
	for _, name := range names {
		claim, ok := registryClaims[name]
		if !ok {
			t.Errorf("backend %q is registered but not in the claims table — declare whether it snapshots", name)
			continue
		}
		if !strings.Contains(listing, name) {
			t.Errorf("List() %q does not name backend %q", listing, name)
		}
		eng, err := backend.New(name, backend.Config{Rows: 16, Cols: 64, Temperature: 2.5, Seed: 1})
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if _, ok := eng.(ising.Tempered); !ok {
			t.Errorf("backend %q does not implement ising.Tempered (tempering and batching need it)", name)
		}
		_, snaps := eng.(ising.Snapshotter)
		if snaps != claim.snapshotter {
			t.Errorf("backend %q: implements ising.Snapshotter = %v, claims table says %v", name, snaps, claim.snapshotter)
		}
		// Every registered engine must batch through the generic adapter (the
		// multispin fast path is exercised by its own tests).
		if _, err := backend.NewBatch(name, backend.Config{Rows: 16, Cols: 64, Temperature: 2.5, Seed: 1}, 2); err != nil {
			t.Errorf("NewBatch(%q, 2): %v", name, err)
		}
	}
	for name := range registryClaims {
		if _, err := backend.Canonical(name); err != nil {
			t.Errorf("claims table names %q, which the registry does not know: %v", name, err)
		}
	}
}

// TestNewBatchSelectsPackedEngine: a multispin batch within the packed
// constraints comes back as the lane-packed ensemble engine; everything else
// comes back as the generic adapter under the backend's own name.
func TestNewBatchSelectsPackedEngine(t *testing.T) {
	cfg := backend.Config{Rows: 8, Cols: 64, Temperature: 2.4, Seed: 1}
	packed, err := backend.NewBatch("multispin", cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if packed.Name() != "ensemble" {
		t.Fatalf("multispin batch engine is %q, want the packed ensemble", packed.Name())
	}
	adapter, err := backend.NewBatch("checkerboard", cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if adapter.Name() != "checkerboard" {
		t.Fatalf("checkerboard batch engine is %q", adapter.Name())
	}
	// Beyond the packed word width, multispin batches fall back to the
	// adapter instead of failing.
	big, err := backend.NewBatch("multispin", cfg, 65)
	if err != nil {
		t.Fatal(err)
	}
	if big.Name() != "multispin" || big.Lanes() != 65 {
		t.Fatalf("65-lane multispin batch: name %q, lanes %d", big.Name(), big.Lanes())
	}
	if _, err := backend.NewBatch("multispin", cfg, 0); err == nil {
		t.Fatal("zero-lane batch accepted")
	}
	if _, err := backend.NewBatch("warp-drive", cfg, 2); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestNewBatchPackedMatchesAdapter: the packed fast path and the generic
// adapter over multispin backends are the same simulation — backend.NewBatch
// choosing one is invisible in every observable.
func TestNewBatchPackedMatchesAdapter(t *testing.T) {
	cfg := backend.Config{Rows: 8, Cols: 64, Temperature: 2.3, Seed: 9, Hot: true}
	packed, err := backend.NewBatch("multispin", cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]ising.Backend, 3)
	for i := range lanes {
		c := cfg
		c.Seed = ising.LaneSeed(cfg.Seed, i)
		if lanes[i], err = backend.New("multispin", c); err != nil {
			t.Fatal(err)
		}
	}
	adapter, err := ising.NewBatchOf(lanes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		packed.Sweep()
		adapter.Sweep()
	}
	pm, am := packed.Magnetizations(), adapter.Magnetizations()
	pe, ae := packed.Energies(), adapter.Energies()
	for i := range pm {
		if pm[i] != am[i] || pe[i] != ae[i] {
			t.Fatalf("lane %d: packed (m=%v, e=%v) differs from adapter (m=%v, e=%v)", i, pm[i], pe[i], am[i], ae[i])
		}
	}
}
