package ising_test

import (
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/rng"
)

// newSampler builds one checkerboard lane for the adapter tests.
func newSampler(rows, cols int, temp float64, seed uint64) ising.Backend {
	return checkerboard.NewSampler(ising.NewRandomLattice(rows, cols, rng.New(seed)), temp, seed)
}

// TestBatchAdapterMatchesLanes: the generic adapter must advance every lane
// exactly like the same backends run individually — batching is an execution
// strategy, never a physics change.
func TestBatchAdapterMatchesLanes(t *testing.T) {
	const lanes, sweeps = 3, 7
	batched := make([]ising.Backend, lanes)
	reference := make([]ising.Backend, lanes)
	for i := 0; i < lanes; i++ {
		seed := ising.LaneSeed(42, i)
		batched[i] = newSampler(8, 8, 2.4, seed)
		reference[i] = newSampler(8, 8, 2.4, seed)
	}
	b, err := ising.NewBatchOf(batched, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lanes() != lanes || b.N() != 64 || b.Name() != "checkerboard" {
		t.Fatalf("adapter identity: lanes=%d n=%d name=%q", b.Lanes(), b.N(), b.Name())
	}
	for i := 0; i < sweeps; i++ {
		b.Sweep()
		for _, r := range reference {
			r.Sweep()
		}
	}
	ms, es := b.Magnetizations(), b.Energies()
	for i, r := range reference {
		if ms[i] != r.Magnetization() || es[i] != r.Energy() {
			t.Fatalf("lane %d: batch (m=%v, e=%v) differs from individual run (m=%v, e=%v)",
				i, ms[i], es[i], r.Magnetization(), r.Energy())
		}
	}
	if b.Step() != reference[0].Step() {
		t.Fatalf("batch step %d, individual %d", b.Step(), reference[0].Step())
	}
	if got, want := b.Counts().Ops, lanes*int64(sweeps)*64; got != want {
		t.Fatalf("batch ops %d, want %d", got, want)
	}
}

// TestBatchAdapterSetLaneTemperature: per-lane temperature control reaches
// exactly one lane.
func TestBatchAdapterSetLaneTemperature(t *testing.T) {
	lanes := []ising.Backend{newSampler(8, 8, 2.4, 1), newSampler(8, 8, 2.4, 2)}
	ref := []ising.Backend{newSampler(8, 8, 2.4, 1), newSampler(8, 8, 3.0, 2)}
	b, err := ising.NewBatchOf(lanes, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.SetLaneTemperature(1, 3.0)
	for i := 0; i < 5; i++ {
		b.Sweep()
		ref[0].Sweep()
		ref[1].Sweep()
	}
	ms := b.Magnetizations()
	if ms[0] != ref[0].Magnetization() || ms[1] != ref[1].Magnetization() {
		t.Fatal("per-lane temperature did not reach exactly one lane")
	}
}

// TestBatchAdapterValidation: empty batches, mixed engine types and mixed
// lattice sizes are refused.
func TestBatchAdapterValidation(t *testing.T) {
	if _, err := ising.NewBatchOf(nil, 0); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := ising.NewBatchOf([]ising.Backend{newSampler(8, 8, 2.4, 1), newSampler(16, 16, 2.4, 2)}, 0); err == nil {
		t.Error("mixed lattice sizes accepted")
	}
}

// TestLaneView: the read-only Backend facade over one lane reads through and
// refuses to sweep.
func TestLaneView(t *testing.T) {
	b, err := ising.NewBatchOf([]ising.Backend{newSampler(8, 8, 2.4, 1), newSampler(8, 8, 2.4, 2)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.Sweep()
	v := ising.LaneView(b, 1)
	if v.Magnetization() != b.Magnetizations()[1] || v.Energy() != b.Energies()[1] {
		t.Fatal("lane view observables do not read through")
	}
	if v.Name() != "checkerboard" || v.Step() != b.Step() {
		t.Fatal("lane view identity does not read through")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("lane view Sweep did not panic")
		}
	}()
	v.Sweep()
}
