package sharded

import (
	"fmt"
	"hash/fnv"
	"math/bits"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/pod"
)

// WordBits is the number of lattice columns packed per machine word.
const WordBits = multispin.WordBits

// Config describes a sharded multispin engine.
type Config struct {
	// Rows and Cols are the global lattice dimensions. Rows must be even and
	// divisible by GridR; Cols must be divisible by GridC with every shard at
	// least one 64-column word wide.
	Rows, Cols int
	// GridR and GridC are the shard grid dimensions: GridR shards along the
	// row (north-south) axis, GridC along the column (east-west) axis,
	// GridR*GridC mesh cores in total (0 means 1).
	GridR, GridC int
	// Temperature is in units of J/kB (0 = the critical temperature).
	Temperature float64
	// Seed seeds the site-keyed Philox stream shared by all shards.
	Seed uint64
	// SharedRandom selects the cheap one-random-per-word multispin variant.
	SharedRandom bool
	// Initial is an optional starting configuration; cold (all +1) when nil.
	Initial *ising.Lattice
}

// shard is one core's sub-lattice plus its halo buffers.
type shard struct {
	spins   []uint64 // shardRows*shardWords, row-major, bit-packed like multispin
	rowOff  int      // global row index of local row 0
	wordOff int      // global word index of local word 0
	// north and south hold the neighbour rows received for the current
	// half-sweep; eastBits and westBits hold the received boundary bit
	// columns (bit r = the boundary spin of local row r).
	north, south       []uint64
	eastBits, westBits []uint64
	edge               []uint64          // scratch for building this shard's outgoing bit columns
	scratch            multispin.Scratch // per-shard random scratch for the batched kernel
}

// Engine is the mesh-sharded bit-packed sampler. It satisfies ising.Backend.
type Engine struct {
	rows, cols   int
	gridR, gridC int
	shardRows    int // rows per shard
	shardWords   int // 64-column words per shard row
	colWords     int // words of one packed boundary bit column
	pod          *pod.Pod
	shards       []*shard // indexed by core ID (row-major over the mesh grid)
	kern         multispin.Kernel
	temperature  float64
	step         uint64
	hostOps      int64                    // attempted spin updates (host work, not device-modelled)
	thresholds   multispin.ThresholdCache // memoized acceptance pairs for SetTemperature
}

// New builds an engine from the config.
func New(cfg Config) (*Engine, error) {
	gridR, gridC := cfg.GridR, cfg.GridC
	if gridR == 0 {
		gridR = 1
	}
	if gridC == 0 {
		gridC = 1
	}
	if gridR < 0 || gridC < 0 {
		return nil, fmt.Errorf("sharded: shard grid must be positive, got %dx%d", cfg.GridR, cfg.GridC)
	}
	if cfg.Rows < 2 || cfg.Rows%2 != 0 {
		return nil, fmt.Errorf("sharded: rows must be even and >= 2, got %d", cfg.Rows)
	}
	if cfg.Rows%gridR != 0 {
		return nil, fmt.Errorf("sharded: %d rows do not divide over %d shard rows (want rows %% gridR == 0)",
			cfg.Rows, gridR)
	}
	if cfg.Cols <= 0 || cfg.Cols%WordBits != 0 {
		return nil, fmt.Errorf("sharded: cols must be a positive multiple of %d, got %d", WordBits, cfg.Cols)
	}
	if cfg.Cols%(gridC*WordBits) != 0 {
		return nil, fmt.Errorf(
			"sharded: %d cols do not divide over %d shard columns into whole %d-column words (want cols %% (gridC*%d) == 0)",
			cfg.Cols, gridC, WordBits, WordBits)
	}
	temp := cfg.Temperature
	if temp == 0 {
		temp = ising.CriticalTemperature()
	}
	if temp <= 0 {
		return nil, fmt.Errorf("sharded: temperature must be positive, got %g", temp)
	}
	e := &Engine{
		rows: cfg.Rows, cols: cfg.Cols,
		gridR: gridR, gridC: gridC,
		shardRows:   cfg.Rows / gridR,
		shardWords:  cfg.Cols / WordBits / gridC,
		temperature: temp,
		kern:        multispin.NewKernel(temp, cfg.Seed, cfg.SharedRandom),
		// Mesh X axis = shard columns, Y axis = shard rows, matching the
		// paper's mapping of the lattice onto the pod grid.
		pod: pod.New(gridC, gridR),
	}
	e.colWords = (e.shardRows + WordBits - 1) / WordBits
	e.shards = make([]*shard, e.pod.NumCores())
	for id := range e.shards {
		x, y := e.pod.Mesh().Coord(id)
		sh := &shard{
			spins:   make([]uint64, e.shardRows*e.shardWords),
			rowOff:  y * e.shardRows,
			wordOff: x * e.shardWords,
			edge:    make([]uint64, e.colWords),
		}
		for i := range sh.spins {
			sh.spins[i] = ^uint64(0) // cold start: all spins +1
		}
		e.shards[id] = sh
	}
	if cfg.Initial != nil {
		if err := e.SetLattice(cfg.Initial); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Name identifies the engine ("sharded" or "sharded-shared").
func (e *Engine) Name() string {
	if e.kern.Shared {
		return "sharded-shared"
	}
	return "sharded"
}

// Rows returns the global row count.
func (e *Engine) Rows() int { return e.rows }

// Cols returns the global column count.
func (e *Engine) Cols() int { return e.cols }

// N returns the number of spins.
func (e *Engine) N() int { return e.rows * e.cols }

// Grid returns the shard grid dimensions (rows, cols of shards).
func (e *Engine) Grid() (gridR, gridC int) { return e.gridR, e.gridC }

// NumShards returns the number of shards (= simulated mesh cores).
func (e *Engine) NumShards() int { return len(e.shards) }

// Step returns the number of colour updates performed so far.
func (e *Engine) Step() uint64 { return e.step }

// Temperature returns the current temperature.
func (e *Engine) Temperature() float64 { return e.temperature }

// SetTemperature changes the simulation temperature; the chain continues from
// the current configuration.
func (e *Engine) SetTemperature(t float64) {
	if t <= 0 {
		panic("sharded: temperature must be positive")
	}
	e.kern.SetThresholds(e.thresholds.For(t))
	e.temperature = t
}

// rowWords returns the packed words of one local row of a shard.
func (e *Engine) rowWords(sh *shard, r int) []uint64 {
	return sh.spins[r*e.shardWords : (r+1)*e.shardWords]
}

// westEdge packs bit 0 of the first word of every local row (the shard's
// westernmost spin column) into sh.edge and returns it.
func (e *Engine) westEdge(sh *shard) []uint64 {
	for i := range sh.edge {
		sh.edge[i] = 0
	}
	for r := 0; r < e.shardRows; r++ {
		sh.edge[r/WordBits] |= (sh.spins[r*e.shardWords] & 1) << (uint(r) % WordBits)
	}
	return sh.edge
}

// eastEdge packs bit 63 of the last word of every local row (the shard's
// easternmost spin column) into sh.edge and returns it.
func (e *Engine) eastEdge(sh *shard) []uint64 {
	for i := range sh.edge {
		sh.edge[i] = 0
	}
	for r := 0; r < e.shardRows; r++ {
		sh.edge[r/WordBits] |= (sh.spins[r*e.shardWords+e.shardWords-1] >> 63) << (uint(r) % WordBits)
	}
	return sh.edge
}

// exchangeHalos trades the four boundary halos with the mesh neighbours
// through the interconnect fabric: full packed rows north and south, packed
// single-spin bit columns east and west. Each call is four lockstep
// collective permutes; the received buffers are pre-update snapshots, which
// is exact because the colour update only consumes opposite-colour bits.
func (e *Engine) exchangeHalos(r *pod.Replica, sh *shard) {
	// Send my last row south; receive my north neighbour's last row.
	sh.north = r.ShiftExchangeWords(e.rowWords(sh, e.shardRows-1), 0, 1)
	// Send my first row north; receive my south neighbour's first row.
	sh.south = r.ShiftExchangeWords(e.rowWords(sh, 0), 0, -1)
	// Send my west column west; receive my east neighbour's west column.
	sh.eastBits = r.ShiftExchangeWords(e.westEdge(sh), -1, 0)
	// Send my east column east; receive my west neighbour's east column.
	sh.westBits = r.ShiftExchangeWords(e.eastEdge(sh), 1, 0)
}

// updateColor performs one Metropolis update of every site of one colour on
// one shard, using the freshly exchanged halos at the boundaries and the
// shared multispin kernel (keyed by global coordinates) in the interior.
func (e *Engine) updateColor(sh *shard, parity int, step uint64) {
	for lr := 0; lr < e.shardRows; lr++ {
		row := e.rowWords(sh, lr)
		north := sh.north
		if lr > 0 {
			north = e.rowWords(sh, lr-1)
		}
		south := sh.south
		if lr < e.shardRows-1 {
			south = e.rowWords(sh, lr+1)
		}
		// The halo bit columns carry one spin per row; the kernel consumes
		// them as the wrap words' bit 0 (east) and bit 63 (west).
		eastWrap := (sh.eastBits[lr/WordBits] >> (uint(lr) % WordBits)) & 1
		westWrap := ((sh.westBits[lr/WordBits] >> (uint(lr) % WordBits)) & 1) << 63
		e.kern.UpdateRowScratch(row, north, south, westWrap, eastWrap,
			sh.rowOff+lr, sh.wordOff, parity, step, &sh.scratch)
	}
}

// Sweep performs one whole-lattice update: all shards exchange halos and
// update their black sites in lockstep, then exchange again and update the
// white sites, consuming two colour-step indices like the other engines.
func (e *Engine) Sweep() {
	step := e.step
	err := e.pod.Replicate(func(r *pod.Replica) error {
		sh := e.shards[r.ID]
		e.exchangeHalos(r, sh)
		e.updateColor(sh, 0, step)
		e.exchangeHalos(r, sh)
		e.updateColor(sh, 1, step+1)
		return nil
	})
	if err != nil {
		panic(err)
	}
	e.step += 2
	e.hostOps += int64(e.N())
}

// Run performs n sweeps.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Sweep()
	}
}

// Counts reports the attempted spin updates in Ops (host work, like the other
// host engines) plus the pod-total interconnect traffic of the halo
// exchanges: CommBytes/CommEvents/CommHops summed over all mesh cores, which
// the perf model's ShardTraffic mirrors analytically.
func (e *Engine) Counts() metrics.Counts {
	total := e.pod.TotalCounts()
	return metrics.Counts{
		Ops:        e.hostOps,
		CommBytes:  total.CommBytes,
		CommEvents: total.CommEvents,
		CommHops:   total.CommHops,
	}
}

// Pod exposes the underlying simulated pod (for profiling and tests).
func (e *Engine) Pod() *pod.Pod { return e.pod }

// SumSpins returns the total spin.
func (e *Engine) SumSpins() int64 {
	ones := 0
	for _, sh := range e.shards {
		for _, v := range sh.spins {
			ones += bits.OnesCount64(v)
		}
	}
	return int64(2*ones) - int64(e.N())
}

// Magnetization returns the magnetisation per spin.
func (e *Engine) Magnetization() float64 {
	return float64(e.SumSpins()) / float64(e.N())
}

// Energy returns the energy per spin: every site's east and south bonds are
// compared bitwise (popcount of the disagreement words counts the frustrated
// bonds), with the bonds that cross a shard boundary read directly from the
// neighbour shard on the host — Replicate has returned, so the shards are
// quiescent.
func (e *Engine) Energy() float64 {
	mesh := e.pod.Mesh()
	diff := 0
	for id, sh := range e.shards {
		x, y := mesh.Coord(id)
		eastSh := e.shards[mesh.ID(x+1, y)]
		southSh := e.shards[mesh.ID(x, y+1)]
		for r := 0; r < e.shardRows; r++ {
			row := e.rowWords(sh, r)
			south := e.rowWords(southSh, 0)
			if r < e.shardRows-1 {
				south = e.rowWords(sh, r+1)
			}
			for w := 0; w < e.shardWords; w++ {
				var eastSrc uint64
				if w+1 < e.shardWords {
					eastSrc = row[w+1]
				} else {
					eastSrc = e.rowWords(eastSh, r)[0]
				}
				east := (row[w] >> 1) | (eastSrc << 63)
				diff += bits.OnesCount64(row[w] ^ east)
				diff += bits.OnesCount64(row[w] ^ south[w])
			}
		}
	}
	n := e.N()
	return -ising.J * float64(2*n-2*diff) / float64(n)
}

// Lattice gathers the sharded configuration into one global ising.Lattice.
func (e *Engine) Lattice() *ising.Lattice {
	l := ising.NewLattice(e.rows, e.cols)
	for _, sh := range e.shards {
		for r := 0; r < e.shardRows; r++ {
			row := e.rowWords(sh, r)
			gr := sh.rowOff + r
			for c := 0; c < e.shardWords*WordBits; c++ {
				if row[c/WordBits]>>(uint(c)%WordBits)&1 == 0 {
					l.Spins[gr*e.cols+sh.wordOff*WordBits+c] = -1
				}
			}
		}
	}
	return l
}

// SetLattice scatters a global configuration over the shards.
func (e *Engine) SetLattice(l *ising.Lattice) error {
	if l.Rows != e.rows || l.Cols != e.cols {
		return fmt.Errorf("sharded: lattice is %dx%d, engine is %dx%d", l.Rows, l.Cols, e.rows, e.cols)
	}
	for _, sh := range e.shards {
		for r := 0; r < e.shardRows; r++ {
			row := e.rowWords(sh, r)
			gr := sh.rowOff + r
			for w := range row {
				row[w] = 0
			}
			for c := 0; c < e.shardWords*WordBits; c++ {
				if l.Spins[gr*e.cols+sh.wordOff*WordBits+c] == 1 {
					row[c/WordBits] |= 1 << (uint(c) % WordBits)
				}
			}
		}
	}
	return nil
}

// Spin returns the spin at global (row, col) as +-1 (no wrapping).
func (e *Engine) Spin(row, col int) int8 {
	y, x := row/e.shardRows, col/(e.shardWords*WordBits)
	sh := e.shards[e.pod.Mesh().ID(x, y)]
	lr, lc := row-sh.rowOff, col-sh.wordOff*WordBits
	if e.rowWords(sh, lr)[lc/WordBits]>>(uint(lc)%WordBits)&1 == 1 {
		return 1
	}
	return -1
}

// Hash returns an FNV-1a hash of the global packed configuration in
// whole-lattice word order, so it is directly comparable with the hash of a
// multispin.Engine holding the same configuration.
func (e *Engine) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	mesh := e.pod.Mesh()
	for gr := 0; gr < e.rows; gr++ {
		y := gr / e.shardRows
		for x := 0; x < e.gridC; x++ {
			sh := e.shards[mesh.ID(x, y)]
			for _, v := range e.rowWords(sh, gr-sh.rowOff) {
				for i := 0; i < 8; i++ {
					buf[i] = byte(v >> (8 * i))
				}
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}
