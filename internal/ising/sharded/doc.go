// Package sharded partitions a large 2-D Ising lattice into an R x C grid of
// shards mapped onto the simulated pod mesh (internal/pod), runs the
// bit-packed multispin kernel (internal/ising/multispin) on every shard in
// parallel, and exchanges packed halo rows and columns between mesh
// neighbours through the interconnect fabric each checkerboard half-sweep.
// This is the paper's pod decomposition (Figure 5, Tables 2-4) applied to the
// host engine family: sub-lattice per core, boundary spins traded with the
// four torus neighbours through collective permutes, periodic boundaries
// wrapping across the mesh torus.
//
// Each shard owns shardRows x shardCols spins stored 64 per uint64 word.
// Before a colour update every shard snapshots four halos from its
// neighbours: the packed row above (north) and below (south), and two packed
// *bit columns* — one boundary spin per row, 64 rows per word — carrying the
// east neighbour's first column and the west neighbour's last column. A halo
// is a pre-update snapshot, which is sufficient because every neighbour bit
// the checkerboard update consumes belongs to the colour that the half-sweep
// does not write. Row halos move shardCols/8 bytes per link, column halos
// shardRows/8 bytes — the 1 bit/spin packing the paper's bfloat16
// implementation cannot reach.
//
// The engine draws its randoms from the shared multispin.Kernel keyed by
// *global* (seed, step, row, column), so a sharded run is bit-identical to
// the whole-lattice multispin engine at the same seed, for every shard grid
// — the property the distributed correctness tests assert, mirroring how the
// paper validates the TPU pod against the single-core implementation.
package sharded
