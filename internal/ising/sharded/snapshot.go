package sharded

import (
	"encoding/binary"

	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// Snapshot captures the engine's chain state in whole-lattice coordinates:
// the shards' packed words are gathered in global row-major word order and
// dumped little-endian — byte-for-byte the layout a multispin engine holding
// the same configuration would dump, because the two engines are
// bit-identical at the same seed. The snapshot carries the sharded backend
// name, the site-keyed Philox key and the colour-step counter; the shard
// grid is deliberately absent, since the chain is a pure function of
// (seed, step, global site) and restores into any grid of the same lattice.
// With this, sharded isingd jobs checkpoint and resume like the other host
// engines. It satisfies ising.Snapshotter.
func (e *Engine) Snapshot() (*ising.Snapshot, error) {
	spins := make([]byte, ising.PackedSpinBytes(e.rows, e.cols))
	mesh := e.pod.Mesh()
	idx := 0
	for gr := 0; gr < e.rows; gr++ {
		y := gr / e.shardRows
		for x := 0; x < e.gridC; x++ {
			sh := e.shards[mesh.ID(x, y)]
			for _, v := range e.rowWords(sh, gr-sh.rowOff) {
				binary.LittleEndian.PutUint64(spins[idx:], v)
				idx += 8
			}
		}
	}
	return &ising.Snapshot{
		Backend:     e.Name(),
		Rows:        e.rows,
		Cols:        e.cols,
		Temperature: e.temperature,
		Step:        e.step,
		RNG:         rng.MarshalKey(e.kern.Key),
		Spins:       spins,
	}, nil
}

// Restore replaces the engine's chain state with a snapshot previously taken
// from the same sharded variant at the same lattice size (any shard grid):
// the global packed words are scattered back over the shards, and the host
// Ops counter is re-derived from the step so Counts stays consistent with an
// uninterrupted run. The interconnect counters restart from zero — they
// count this process's halo traffic, not the chain's history.
func (e *Engine) Restore(snap *ising.Snapshot) error {
	if err := snap.Check(e.Name(), e.rows, e.cols); err != nil {
		return err
	}
	key, err := rng.UnmarshalKey(snap.RNG)
	if err != nil {
		return err
	}
	e.kern.Key = key
	mesh := e.pod.Mesh()
	idx := 0
	for gr := 0; gr < e.rows; gr++ {
		y := gr / e.shardRows
		for x := 0; x < e.gridC; x++ {
			sh := e.shards[mesh.ID(x, y)]
			row := e.rowWords(sh, gr-sh.rowOff)
			for w := range row {
				row[w] = binary.LittleEndian.Uint64(snap.Spins[idx:])
				idx += 8
			}
		}
	}
	e.SetTemperature(snap.Temperature)
	e.step = snap.Step
	e.hostOps = int64(snap.Step) / 2 * int64(e.N())
	return nil
}
