package sharded

import (
	"math"
	"strings"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/perf"
	"tpuising/internal/rng"
)

// newPair builds a sharded engine and the whole-lattice multispin reference
// with identical physics configuration.
func newPair(t *testing.T, rows, cols, gridR, gridC int, temp float64, seed uint64, shared, hot bool) (*Engine, *multispin.Engine) {
	t.Helper()
	var initial *ising.Lattice
	if hot {
		initial = ising.NewRandomLattice(rows, cols, rng.New(seed))
	}
	sh, err := New(Config{
		Rows: rows, Cols: cols, GridR: gridR, GridC: gridC,
		Temperature: temp, Seed: seed, SharedRandom: shared, Initial: initial,
	})
	if err != nil {
		t.Fatalf("sharded.New(%dx%d grid %dx%d): %v", rows, cols, gridR, gridC, err)
	}
	ref, err := multispin.New(multispin.Config{
		Rows: rows, Cols: cols, Temperature: temp, Seed: seed,
		SharedRandom: shared, Workers: 1, Initial: initial,
	})
	if err != nil {
		t.Fatalf("multispin.New(%dx%d): %v", rows, cols, err)
	}
	return sh, ref
}

// TestBitIdenticalToMultispin is the distributed-correctness property the
// paper checks for its pod runs: at a fixed seed the sharded engine must
// produce exactly the configuration of the whole-lattice multispin engine,
// for every shard grid (including the 1x1 degenerate grid, non-square grids,
// single-word-wide shards and single-row shards).
func TestBitIdenticalToMultispin(t *testing.T) {
	cases := []struct {
		rows, cols   int
		gridR, gridC int
	}{
		{64, 128, 1, 1}, // degenerate: one shard, self-exchange over the torus
		{64, 128, 2, 2},
		{64, 128, 4, 1},
		{64, 128, 1, 2},  // shards one word wide: east and west wraps both halo
		{64, 128, 2, 1},  // hot start exercised below
		{2, 128, 2, 1},   // single-row shards: north and south both halo
		{128, 256, 2, 4}, // non-square grids on a larger lattice
		{128, 256, 4, 2},
	}
	for _, tc := range cases {
		for _, mode := range []struct {
			name        string
			shared, hot bool
		}{
			{"persite-cold", false, false},
			{"persite-hot", false, true},
			{"shared-hot", true, true},
		} {
			sh, ref := newPair(t, tc.rows, tc.cols, tc.gridR, tc.gridC, 2.4, 7, mode.shared, mode.hot)
			for sweep := 1; sweep <= 6; sweep++ {
				sh.Sweep()
				ref.Sweep()
				if sh.Hash() != ref.Hash() {
					t.Fatalf("%dx%d grid %dx%d %s: configurations diverge at sweep %d",
						tc.rows, tc.cols, tc.gridR, tc.gridC, mode.name, sweep)
				}
			}
			if sh.Magnetization() != ref.Magnetization() {
				t.Errorf("%dx%d grid %dx%d %s: magnetisation %v != %v",
					tc.rows, tc.cols, tc.gridR, tc.gridC, mode.name, sh.Magnetization(), ref.Magnetization())
			}
			if math.Abs(sh.Energy()-ref.Energy()) > 1e-12 {
				t.Errorf("%dx%d grid %dx%d %s: energy %v != %v",
					tc.rows, tc.cols, tc.gridR, tc.gridC, mode.name, sh.Energy(), ref.Energy())
			}
		}
	}
}

// TestDegenerateGridIsSingleShard: the 1x1 grid runs the plain multispin
// chain on one mesh core (all four halo exchanges are torus self-loops).
func TestDegenerateGridIsSingleShard(t *testing.T) {
	e, err := New(Config{Rows: 64, Cols: 128})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", e.NumShards())
	}
	if r, c := e.Grid(); r != 1 || c != 1 {
		t.Fatalf("Grid() = %dx%d, want 1x1", r, c)
	}
	e.Run(3)
	c := e.Counts()
	if c.CommHops != 0 {
		t.Errorf("single-shard self-exchanges should traverse 0 hops, got %d", c.CommHops)
	}
	if c.CommEvents != 3*8 {
		t.Errorf("CommEvents = %d, want %d", c.CommEvents, 3*8)
	}
}

// TestConfigValidation: indivisible lattices and bad grids must be rejected
// with errors that say what the constraint is.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string // substring of the expected error
	}{
		{Config{Rows: 63, Cols: 128}, "rows must be even"},
		{Config{Rows: 64, Cols: 100}, "multiple of 64"},
		{Config{Rows: 64, Cols: 128, GridR: 3}, "do not divide over 3 shard rows"},
		{Config{Rows: 64, Cols: 128, GridC: 3}, "do not divide over 3 shard columns"},
		{Config{Rows: 64, Cols: 128, GridC: 4}, "do not divide over 4 shard columns"}, // 2 words over 4 shards
		{Config{Rows: 64, Cols: 128, GridR: -2}, "shard grid must be positive"},
		{Config{Rows: 64, Cols: 128, Temperature: -1}, "temperature must be positive"},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if err == nil {
			t.Errorf("New(%+v) should fail", tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("New(%+v) error %q does not mention %q", tc.cfg, err, tc.want)
		}
	}
	if _, err := New(Config{Rows: 64, Cols: 128, Initial: ising.NewLattice(32, 128)}); err == nil {
		t.Error("mismatched initial lattice should fail")
	}
}

// TestOnsagerPhysics: the sharded chain must reproduce the exact
// infinite-lattice observables in the ordered phase (T=2.0) and be
// disordered above Tc (T=3.5) — the correctness check of the paper's
// Figure 4, run on a 2x2 shard grid.
func TestOnsagerPhysics(t *testing.T) {
	const burnIn, samples = 300, 600
	measure := func(temp float64) (absM, energy float64) {
		e, err := New(Config{Rows: 128, Cols: 128, GridR: 2, GridC: 2, Temperature: temp, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(burnIn)
		for i := 0; i < samples; i++ {
			e.Sweep()
			absM += math.Abs(e.Magnetization())
			energy += e.Energy()
		}
		return absM / samples, energy / samples
	}

	absM, energy := measure(2.0)
	if want := ising.OnsagerMagnetization(2.0); math.Abs(absM-want) > 0.03 {
		t.Errorf("T=2.0: |m| = %.4f, want Onsager %.4f +- 0.03", absM, want)
	}
	if want := ising.ExactEnergyPerSpin(2.0); math.Abs(energy-want) > 0.03 {
		t.Errorf("T=2.0: E/spin = %.4f, want exact %.4f +- 0.03", energy, want)
	}

	absM, _ = measure(3.5)
	if absM > 0.1 {
		t.Errorf("T=3.5: |m| = %.4f, want disordered (< 0.1)", absM)
	}
}

// TestCommCountsMatchShardTraffic: the engine's measured interconnect
// counters must reproduce the perf model's analytic per-sweep traffic
// exactly — the property that lets benchtables print modelled traffic next
// to measured throughput.
func TestCommCountsMatchShardTraffic(t *testing.T) {
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {2, 3}, {4, 1}} {
		e, err := New(Config{Rows: 96, Cols: 192 * grid[1], GridR: grid[0], GridC: grid[1], Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		const sweeps = 5
		e.Run(sweeps)
		rep := perf.ShardTraffic(perf.ShardSpec{
			Rows: e.Rows(), Cols: e.Cols(), GridR: grid[0], GridC: grid[1],
		}, e.Pod().Mesh().Link)
		c := e.Counts()
		if c.CommBytes != sweeps*rep.TotalBytes {
			t.Errorf("grid %v: measured CommBytes %d != modelled %d", grid, c.CommBytes, sweeps*rep.TotalBytes)
		}
		if c.CommEvents != sweeps*rep.Events {
			t.Errorf("grid %v: measured CommEvents %d != modelled %d", grid, c.CommEvents, sweeps*rep.Events)
		}
		if c.Ops != sweeps*int64(e.N()) {
			t.Errorf("grid %v: Ops = %d, want %d", grid, c.Ops, sweeps*int64(e.N()))
		}
		if rep.PermuteSec <= 0 {
			t.Errorf("grid %v: modelled permute time should be positive", grid)
		}
	}
}

// TestObservablesMatchGatheredLattice: the packed observables must agree with
// the scalar ones computed from the gathered global lattice.
func TestObservablesMatchGatheredLattice(t *testing.T) {
	e, err := New(Config{Rows: 64, Cols: 128, GridR: 2, GridC: 2, Temperature: 2.6, Seed: 5,
		Initial: ising.NewRandomLattice(64, 128, rng.New(5))})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(4)
	l := e.Lattice()
	if got, want := e.Magnetization(), l.Magnetization(); got != want {
		t.Errorf("Magnetization %v != lattice %v", got, want)
	}
	if got, want := e.Energy(), l.Energy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Energy %v != lattice %v", got, want)
	}
	for _, rc := range [][2]int{{0, 0}, {31, 63}, {32, 64}, {63, 127}} {
		if got, want := e.Spin(rc[0], rc[1]), l.At(rc[0], rc[1]); got != want {
			t.Errorf("Spin(%d,%d) = %d, lattice %d", rc[0], rc[1], got, want)
		}
	}
}
