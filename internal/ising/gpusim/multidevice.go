package gpusim

import (
	"fmt"
	"math"
	"sync"

	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/rng"
)

// accProb computes the Metropolis acceptance ratio with the same float32
// arithmetic as the serial reference and the tensor kernels.
func accProb(x float32) float32 { return float32(math.Exp(float64(x))) }

// MultiDevice is the runnable functional emulation of the multi-GPU algorithm
// of Block et al. [3]: the global lattice is decomposed into horizontal
// strips, one per device; within each colour update every device updates its
// strip with its own worker pool, and between colour updates the strip
// boundary rows are exchanged through the host (MPI-style).
//
// Because the emulation runs in one address space the exchange does not move
// data physically, but each device still stages its boundary rows into
// explicit host buffers and reads its halos back from them, so the exchanged
// byte count — the quantity the communication model needs — is accounted
// exactly, and the code path mirrors the real algorithm's structure.
type MultiDevice struct {
	// Lattice is the global spin configuration.
	Lattice *ising.Lattice
	// Beta is the inverse temperature.
	Beta float64
	// Devices is the number of emulated GPUs (strips).
	Devices int
	// WorkersPerDevice is the goroutine pool size per device.
	WorkersPerDevice int

	sk   *rng.SiteKeyed
	step uint64

	// hostBuffers[d] holds device d's staged boundary rows (top row first,
	// then bottom row), refreshed before every colour update.
	hostBuffers [][]int8
	// exchangedBytes accumulates the total host-mediated traffic.
	exchangedBytes int64
	// exchanges counts the exchange rounds performed.
	exchanges int64
}

// NewMultiDevice decomposes the lattice into devices strips. The row count
// must be divisible by the device count and each strip must hold at least two
// rows (so the two halo rows of a strip belong to different neighbours).
func NewMultiDevice(l *ising.Lattice, temperature float64, seed uint64, devices, workersPerDevice int) *MultiDevice {
	if devices <= 0 {
		panic("gpusim: need at least one device")
	}
	if l.Rows%devices != 0 {
		panic(fmt.Sprintf("gpusim: %d rows not divisible into %d strips", l.Rows, devices))
	}
	if l.Rows/devices < 2 {
		panic("gpusim: strips must hold at least two rows")
	}
	if workersPerDevice <= 0 {
		workersPerDevice = 1
	}
	m := &MultiDevice{
		Lattice: l, Beta: ising.Beta(temperature),
		Devices: devices, WorkersPerDevice: workersPerDevice,
		sk:          rng.NewSiteKeyed(seed),
		hostBuffers: make([][]int8, devices),
	}
	for d := range m.hostBuffers {
		m.hostBuffers[d] = make([]int8, 2*l.Cols)
	}
	return m
}

// stripRows returns the [r0, r1) row range of device d.
func (m *MultiDevice) stripRows(d int) (r0, r1 int) {
	per := m.Lattice.Rows / m.Devices
	return d * per, (d + 1) * per
}

// exchangeBoundaries stages every strip's first and last rows into the host
// buffers, emulating the device-to-host copies and MPI messages of the real
// algorithm, and accounts the traffic.
func (m *MultiDevice) exchangeBoundaries() {
	cols := m.Lattice.Cols
	for d := 0; d < m.Devices; d++ {
		r0, r1 := m.stripRows(d)
		buf := m.hostBuffers[d]
		for c := 0; c < cols; c++ {
			buf[c] = m.Lattice.At(r0, c)
			buf[cols+c] = m.Lattice.At(r1-1, c)
		}
	}
	// Each strip sends two rows up over PCIe and two MPI messages to its
	// neighbours (1 byte per spin, as in the packed representation).
	if m.Devices > 1 {
		m.exchangedBytes += int64(m.Devices) * int64(2*cols)
		m.exchanges++
	}
}

// Sweep performs one whole-lattice update (black then white), exchanging the
// strip boundaries before each colour update.
func (m *MultiDevice) Sweep() {
	for _, color := range []checkerboard.Color{checkerboard.Black, checkerboard.White} {
		m.exchangeBoundaries()
		var wg sync.WaitGroup
		for d := 0; d < m.Devices; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				r0, r1 := m.stripRows(d)
				m.updateStrip(color, r0, r1)
			}(d)
		}
		wg.Wait()
		m.step++
	}
}

// updateStrip updates the sites of one colour inside rows [r0, r1), splitting
// the rows across the device's worker pool.
func (m *MultiDevice) updateStrip(color checkerboard.Color, r0, r1 int) {
	workers := m.WorkersPerDevice
	rows := r1 - r0
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		checkerboardRows(m.Lattice, color, m.Beta, m.sk, m.step, r0, r1)
		return
	}
	var wg sync.WaitGroup
	per := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		a := r0 + w*per
		b := a + per
		if b > r1 {
			b = r1
		}
		if a >= b {
			break
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			checkerboardRows(m.Lattice, color, m.Beta, m.sk, m.step, a, b)
		}(a, b)
	}
	wg.Wait()
}

// checkerboardRows performs the colour update on rows [r0, r1) using the
// globally-keyed uniforms, so the chain matches the serial reference exactly.
func checkerboardRows(l *ising.Lattice, color checkerboard.Color, beta float64, sk *rng.SiteKeyed, step uint64, r0, r1 int) {
	// Delegate to the single-colour reference on a row window: UpdateColor
	// walks the whole lattice, so reimplement the row window here with the
	// same arithmetic (it is small and keeps the strip ownership explicit).
	factor := float32(-2 * beta * ising.J)
	for r := r0; r < r1; r++ {
		start := (int(color) - r%2 + 2) % 2
		for c := start; c < l.Cols; c += 2 {
			s := float32(l.At(r, c))
			nn := float32(l.NeighborSum(r, c))
			acc := accProb(nn * s * factor)
			if sk.Uniform(step, r, c) < acc {
				l.Flip(r, c)
			}
		}
	}
}

// Run performs n sweeps.
func (m *MultiDevice) Run(n int) {
	for i := 0; i < n; i++ {
		m.Sweep()
	}
}

// Step returns the number of colour updates performed so far.
func (m *MultiDevice) Step() uint64 { return m.step }

// Magnetization returns the magnetisation per spin.
func (m *MultiDevice) Magnetization() float64 { return m.Lattice.Magnetization() }

// ExchangedBytes returns the total host-mediated halo traffic and the number
// of exchange rounds, for the communication model and its tests.
func (m *MultiDevice) ExchangedBytes() (bytes, rounds int64) { return m.exchangedBytes, m.exchanges }
