// Package gpusim provides the GPU-style baselines the paper compares against
// (Section 4.2): the single-GPU checkerboard implementation of Preis et al.
// [23] / Block et al. [3] and its multi-GPU MPI variant, plus the published
// throughput constants for the external systems (Tesla V100, FPGA, DGX-2).
//
// Two things are provided:
//
//   - A runnable functional emulation (Sampler, MultiDevice) that executes the
//     same checkerboard Markov chain on the host CPU with a thread pool per
//     "device" and, for the multi-device case, explicit host-mediated halo
//     exchange accounting. It produces chains bit-identical to the serial
//     reference, so who-wins comparisons against the TPU path are made on
//     equal physics.
//   - A throughput/time model (DeviceModel, Cluster) whose single-device rates
//     are the published flips/ns numbers (exactly as the paper compares
//     against published numbers) and whose multi-device efficiency captures
//     the host-mediated (MPI through CPU) communication the paper contrasts
//     with the TPU pod's dedicated interconnect.
package gpusim

import (
	"fmt"
	"runtime"

	"tpuising/internal/device/metrics"
	"tpuising/internal/device/spec"
	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/rng"
)

// DeviceModel is the performance description of one GPU (or FPGA) device used
// by the analytic comparison model.
type DeviceModel struct {
	// Name identifies the device in tables.
	Name string
	// FlipsPerNs is the sustained single-device whole-lattice update
	// throughput in spin flips per nanosecond (published or measured).
	FlipsPerNs float64
	// PowerWatts is the board power upper bound used for nJ/flip estimates.
	PowerWatts float64
}

// PreisGPU returns the single-GPU baseline of Preis et al. / Block et al.
func PreisGPU() DeviceModel {
	return DeviceModel{Name: "GPU (Preis/Block)", FlipsPerNs: 7.9774, PowerWatts: 200}
}

// TeslaV100 returns the paper's own CUDA port measured on a Tesla V100.
func TeslaV100() DeviceModel {
	return DeviceModel{Name: "Tesla V100", FlipsPerNs: 11.3704, PowerWatts: spec.TeslaV100().PowerWatts}
}

// FPGA returns the FPGA implementation of Ortega-Zamorano et al.
func FPGA() DeviceModel {
	return DeviceModel{Name: "FPGA", FlipsPerNs: 614.4, PowerWatts: 25}
}

// DGX2 and DGX2H return the 16-GPU systems of Romero et al. (Figure 8).
func DGX2() DeviceModel  { return DeviceModel{Name: "DGX-2", FlipsPerNs: 1829, PowerWatts: 10000} }
func DGX2H() DeviceModel { return DeviceModel{Name: "DGX-2H", FlipsPerNs: 2114, PowerWatts: 10000} }

// EnergyPerFlip returns the upper-bound nJ/flip estimate for the device.
func (d DeviceModel) EnergyPerFlip() float64 {
	return spec.EnergyPerFlip(d.PowerWatts, d.FlipsPerNs)
}

// HostLinkParams models the host-mediated communication path of a multi-GPU
// cluster: device-to-host staging over PCIe, MPI messages over the datacentre
// network, and the per-sweep software synchronisation overhead. This is the
// path the paper contrasts with the TPU pod's dedicated inter-chip links.
type HostLinkParams struct {
	// PCIeBandwidthBytesPerSec is the device<->host staging bandwidth.
	PCIeBandwidthBytesPerSec float64
	// NetworkBandwidthBytesPerSec is the host<->host (MPI) bandwidth.
	NetworkBandwidthBytesPerSec float64
	// MPILatencySec is the per-message latency of one exchange round.
	MPILatencySec float64
	// HostSyncSec is the fixed per-sweep host-side synchronisation and kernel
	// relaunch overhead per device.
	HostSyncSec float64
}

// DefaultHostLink returns parameters calibrated against the multi-GPU result
// the paper quotes from Block et al. [3]: 64 GPUs sustaining 206 flips/ns
// (~3.2 flips/ns per GPU against ~8 on a single GPU, i.e. ~40% efficiency) on
// an 800,000^2 lattice with ~3 s whole-lattice updates.
func DefaultHostLink() HostLinkParams {
	return HostLinkParams{
		PCIeBandwidthBytesPerSec:    12e9,
		NetworkBandwidthBytesPerSec: 1.25e9, // ~10 Gb/s datacentre link
		MPILatencySec:               50e-6,
		HostSyncSec:                 1.85, // seconds per sweep at Block et al. scale
	}
}

// Cluster is the analytic model of a multi-GPU cluster running the
// checkerboard algorithm with MPI halo exchange through the hosts.
type Cluster struct {
	// Device is the per-device performance model.
	Device DeviceModel
	// Devices is the number of GPUs.
	Devices int
	// LatticeSide is the side of the global square lattice.
	LatticeSide int64
	// Link is the host-mediated communication model.
	Link HostLinkParams
}

// NewCluster returns a cluster with the default host link parameters.
func NewCluster(device DeviceModel, devices int, latticeSide int64) Cluster {
	if devices <= 0 {
		panic("gpusim: cluster needs at least one device")
	}
	if latticeSide <= 0 {
		panic("gpusim: lattice side must be positive")
	}
	return Cluster{Device: device, Devices: devices, LatticeSide: latticeSide, Link: DefaultHostLink()}
}

// SpinsPerDevice returns the number of lattice sites owned by each device
// (strip decomposition along rows).
func (c Cluster) SpinsPerDevice() float64 {
	return float64(c.LatticeSide) * float64(c.LatticeSide) / float64(c.Devices)
}

// ComputeTime returns the per-sweep pure compute time of one device.
func (c Cluster) ComputeTime() float64 {
	return c.SpinsPerDevice() / (c.Device.FlipsPerNs * 1e9)
}

// ExchangeTime returns the per-sweep host-mediated halo-exchange time of one
// device: two boundary rows (one byte per spin in the packed representation of
// Block et al.) staged over PCIe, sent over the network, plus MPI latency and
// the host synchronisation overhead.
func (c Cluster) ExchangeTime() float64 {
	if c.Devices == 1 {
		return 0
	}
	boundaryBytes := float64(2 * c.LatticeSide) // two halo rows, 1 byte/spin
	l := c.Link
	return 2*boundaryBytes/l.PCIeBandwidthBytesPerSec +
		boundaryBytes/l.NetworkBandwidthBytesPerSec +
		2*l.MPILatencySec +
		l.HostSyncSec
}

// StepTime returns the modelled whole-lattice update time in seconds.
func (c Cluster) StepTime() float64 { return c.ComputeTime() + c.ExchangeTime() }

// Throughput returns the modelled cluster throughput in flips/ns.
func (c Cluster) Throughput() float64 {
	n := float64(c.LatticeSide) * float64(c.LatticeSide)
	return n / c.StepTime() / 1e9
}

// Efficiency returns the parallel efficiency relative to perfect scaling of
// the single-device throughput.
func (c Cluster) Efficiency() float64 {
	return c.Throughput() / (c.Device.FlipsPerNs * float64(c.Devices))
}

// String summarises the cluster configuration.
func (c Cluster) String() string {
	return fmt.Sprintf("%d x %s on %d^2 lattice", c.Devices, c.Device.Name, c.LatticeSide)
}

// Sampler is the runnable single-"GPU" functional emulation: the checkerboard
// chain executed by a pool of worker goroutines standing in for the CUDA
// thread blocks. The chain is bit-identical to the serial reference.
type Sampler struct {
	// Lattice is the spin configuration being evolved.
	Lattice *ising.Lattice
	// Beta is the inverse temperature.
	Beta float64
	// Workers is the goroutine pool size (0 = GOMAXPROCS).
	Workers int

	temperature float64 // the T that Beta was derived from, kept for snapshots
	sk          *rng.SiteKeyed
	step        uint64
}

// NewSampler builds a sampler at the given temperature.
func NewSampler(l *ising.Lattice, temperature float64, seed uint64, workers int) *Sampler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Sampler{Lattice: l, Beta: ising.Beta(temperature), temperature: temperature,
		Workers: workers, sk: rng.NewSiteKeyed(seed)}
}

// Sweep performs one whole-lattice update.
func (s *Sampler) Sweep() {
	s.step = checkerboard.ParallelSweep(s.Lattice, s.Beta, s.sk, s.step, s.Workers)
}

// Run performs n sweeps.
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Sweep()
	}
}

// Step returns the number of colour updates performed so far.
func (s *Sampler) Step() uint64 { return s.step }

// N returns the number of spins.
func (s *Sampler) N() int { return s.Lattice.N() }

// SetTemperature changes the simulation temperature; the chain continues from
// the current configuration (used by the replica-exchange layer).
func (s *Sampler) SetTemperature(t float64) {
	s.Beta = ising.Beta(t)
	s.temperature = t
}

// Name identifies the engine; the Sampler is the GPU-style parallel baseline.
func (s *Sampler) Name() string { return "gpusim" }

// Magnetization returns the magnetisation per spin.
func (s *Sampler) Magnetization() float64 { return s.Lattice.Magnetization() }

// Energy returns the energy per spin.
func (s *Sampler) Energy() float64 { return s.Lattice.Energy() }

// Counts reports the attempted spin updates in Ops; the sampler runs on the
// host, so no device work is modelled.
func (s *Sampler) Counts() metrics.Counts {
	return metrics.Counts{Ops: int64(s.step) * int64(s.Lattice.N()) / 2}
}
