package gpusim

import (
	"math"
	"testing"
	"testing/quick"

	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/rng"
)

func referenceChain(rows, cols int, temperature float64, seed uint64, sweeps int) *ising.Lattice {
	l := ising.NewLattice(rows, cols)
	sk := rng.NewSiteKeyed(seed)
	beta := ising.Beta(temperature)
	var step uint64
	for i := 0; i < sweeps; i++ {
		step = checkerboard.Sweep(l, beta, sk, step)
	}
	return l
}

func TestSamplerMatchesSerialReference(t *testing.T) {
	const rows, cols = 16, 16
	const temperature = 2.3
	const seed = 4
	s := NewSampler(ising.NewLattice(rows, cols), temperature, seed, 3)
	s.Run(10)
	want := referenceChain(rows, cols, temperature, seed, 10)
	if !s.Lattice.Equal(want) {
		t.Fatal("parallel GPU-style sampler diverged from the serial reference")
	}
	if s.Step() != 20 {
		t.Fatalf("Step = %d", s.Step())
	}
}

func TestSamplerDefaultWorkers(t *testing.T) {
	s := NewSampler(ising.NewLattice(8, 8), 2.0, 1, 0)
	if s.Workers <= 0 {
		t.Fatalf("Workers = %d", s.Workers)
	}
	s.Run(3)
	if m := s.Magnetization(); m < 0.5 {
		t.Fatalf("cold start at T=2.0 lost order after 3 sweeps: m=%v", m)
	}
}

func TestMultiDeviceMatchesSerialReference(t *testing.T) {
	const rows, cols = 16, 16
	const temperature = 2.5
	const seed = 9
	for _, devices := range []int{1, 2, 4} {
		m := NewMultiDevice(ising.NewLattice(rows, cols), temperature, seed, devices, 2)
		m.Run(8)
		want := referenceChain(rows, cols, temperature, seed, 8)
		if !m.Lattice.Equal(want) {
			t.Fatalf("%d devices: chain diverged from the serial reference", devices)
		}
	}
}

func TestMultiDeviceDecompositionInvarianceQuick(t *testing.T) {
	f := func(seed uint16) bool {
		run := func(devices int) *ising.Lattice {
			m := NewMultiDevice(ising.NewLattice(8, 8), 2.269, uint64(seed), devices, 1)
			m.Run(4)
			return m.Lattice
		}
		return run(2).Equal(run(4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDeviceExchangeAccounting(t *testing.T) {
	const rows, cols, devices = 16, 32, 4
	m := NewMultiDevice(ising.NewLattice(rows, cols), 2.5, 1, devices, 1)
	m.Run(3)
	bytes, rounds := m.ExchangedBytes()
	// Two exchange rounds per sweep (one per colour), each moving 2 rows of 1
	// byte per spin per device.
	wantRounds := int64(2 * 3)
	wantBytes := wantRounds * int64(devices) * int64(2*cols)
	if rounds != wantRounds {
		t.Fatalf("rounds = %d, want %d", rounds, wantRounds)
	}
	if bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", bytes, wantBytes)
	}
}

func TestMultiDeviceSingleDeviceNoExchange(t *testing.T) {
	m := NewMultiDevice(ising.NewLattice(8, 8), 2.5, 1, 1, 1)
	m.Run(4)
	if bytes, rounds := m.ExchangedBytes(); bytes != 0 || rounds != 0 {
		t.Fatalf("single device exchanged %d bytes in %d rounds", bytes, rounds)
	}
	if m.Step() != 8 {
		t.Fatalf("Step = %d", m.Step())
	}
	if m.Magnetization() == 0 {
		t.Fatal("suspicious exactly-zero magnetization from a cold start")
	}
}

func TestMultiDevicePanics(t *testing.T) {
	cases := []func(){
		func() { NewMultiDevice(ising.NewLattice(8, 8), 2.0, 1, 0, 1) }, // no devices
		func() { NewMultiDevice(ising.NewLattice(9, 8), 2.0, 1, 2, 1) }, // indivisible
		func() { NewMultiDevice(ising.NewLattice(8, 8), 2.0, 1, 8, 1) }, // 1-row strips
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDeviceModels(t *testing.T) {
	models := []DeviceModel{PreisGPU(), TeslaV100(), FPGA(), DGX2(), DGX2H()}
	for _, m := range models {
		if m.Name == "" || m.FlipsPerNs <= 0 || m.PowerWatts <= 0 {
			t.Fatalf("bad device model %+v", m)
		}
		if m.EnergyPerFlip() <= 0 {
			t.Fatalf("%s: non-positive energy per flip", m.Name)
		}
	}
	// The ordering the paper reports: FPGA > V100 > Preis GPU on a single
	// device, DGX systems above all single devices.
	if !(FPGA().FlipsPerNs > TeslaV100().FlipsPerNs && TeslaV100().FlipsPerNs > PreisGPU().FlipsPerNs) {
		t.Fatal("single-device throughput ordering wrong")
	}
	if DGX2H().FlipsPerNs <= DGX2().FlipsPerNs {
		t.Fatal("DGX-2H should outperform DGX-2")
	}
}

func TestClusterSingleDevice(t *testing.T) {
	c := NewCluster(PreisGPU(), 1, 100000)
	if c.ExchangeTime() != 0 {
		t.Fatal("single device should not pay exchange time")
	}
	if math.Abs(c.Throughput()-PreisGPU().FlipsPerNs) > 1e-9 {
		t.Fatalf("single-device throughput %v, want %v", c.Throughput(), PreisGPU().FlipsPerNs)
	}
	if math.Abs(c.Efficiency()-1) > 1e-12 {
		t.Fatalf("single-device efficiency %v", c.Efficiency())
	}
}

func TestClusterReproducesBlockEtAl(t *testing.T) {
	// Block et al. [3]: 64 GPUs, 800,000^2 lattice, ~3 s per whole-lattice
	// update, 206 flips/ns. The model must land in the same regime (within
	// ~25%), showing the host-mediated exchange is what caps the efficiency.
	c := NewCluster(PreisGPU(), 64, 800000)
	step := c.StepTime()
	if step < 2.0 || step > 4.0 {
		t.Fatalf("modelled step time %.2f s, published ~3 s", step)
	}
	tput := c.Throughput()
	if tput < 150 || tput > 260 {
		t.Fatalf("modelled throughput %.1f flips/ns, published 206", tput)
	}
	if eff := c.Efficiency(); eff > 0.7 {
		t.Fatalf("efficiency %v too high: host-mediated exchange should hurt", eff)
	}
}

func TestClusterEfficiencyDropsWithDeviceCount(t *testing.T) {
	prev := 1.1
	for _, devices := range []int{1, 4, 16, 64} {
		c := NewCluster(PreisGPU(), devices, 800000)
		eff := c.Efficiency()
		if eff > prev+1e-12 {
			t.Fatalf("efficiency increased when adding devices: %v -> %v at %d", prev, eff, devices)
		}
		prev = eff
	}
}

func TestClusterThroughputGrowsWithLattice(t *testing.T) {
	// For a fixed device count the exchange overhead is amortised over more
	// spins, so throughput must be monotone in the lattice side.
	small := NewCluster(PreisGPU(), 16, 50000).Throughput()
	large := NewCluster(PreisGPU(), 16, 800000).Throughput()
	if large <= small {
		t.Fatalf("throughput did not grow with lattice: %v vs %v", small, large)
	}
}

func TestClusterStringAndPanics(t *testing.T) {
	if NewCluster(PreisGPU(), 2, 1000).String() == "" {
		t.Fatal("empty String")
	}
	for i, fn := range []func(){
		func() { NewCluster(PreisGPU(), 0, 1000) },
		func() { NewCluster(PreisGPU(), 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
