package tpu

import (
	"tpuising/internal/device/tensorcore"
	"tpuising/internal/pod"
	"tpuising/internal/tensor"
)

// BoundaryEnv supplies the values adjacent to each tile's boundary rows and
// columns of a rank-4 [m, n, T, U] plane. For a standalone core the adjacent
// values wrap around the plane itself (a torus); for a core inside a pod the
// wrap at the per-core boundary is replaced by the neighbouring core's edge,
// obtained through collective-permute (Figure 5 of the paper).
//
// Edge shapes: NorthEdge/SouthEdge return [m, n, 1, U]; WestEdge/EastEdge
// return [m, n, T, 1]. The edge element at (gm, gn, 0, c) of NorthEdge is the
// value of the site directly above tile (gm, gn)'s row 0, column c, in the
// global arrangement of the plane.
type BoundaryEnv interface {
	NorthEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor
	SouthEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor
	WestEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor
	EastEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor
}

// TorusEnv is the single-core boundary environment: the per-core lattice is
// itself a torus, so every edge comes from the plane's own opposite boundary.
// The edge is sliced out first and only the (small) edge tensor is rolled, so
// the data-formatting cost matches what XLA does for a wrapped pad rather
// than re-materialising the whole plane.
type TorusEnv struct{}

// NorthEdge returns, for every tile, the row above its first row.
func (TorusEnv) NorthEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor {
	checkCore(core)
	edge := core.Slice(plane, tensor.All(), tensor.All(), tensor.At(-1), tensor.All())
	return core.Roll(edge, 0, 1)
}

// SouthEdge returns, for every tile, the row below its last row.
func (TorusEnv) SouthEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor {
	checkCore(core)
	edge := core.Slice(plane, tensor.All(), tensor.All(), tensor.At(0), tensor.All())
	return core.Roll(edge, 0, -1)
}

// WestEdge returns, for every tile, the column left of its first column.
func (TorusEnv) WestEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor {
	checkCore(core)
	edge := core.Slice(plane, tensor.All(), tensor.All(), tensor.All(), tensor.At(-1))
	return core.Roll(edge, 1, 1)
}

// EastEdge returns, for every tile, the column right of its last column.
func (TorusEnv) EastEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor {
	checkCore(core)
	edge := core.Slice(plane, tensor.All(), tensor.All(), tensor.All(), tensor.At(0))
	return core.Roll(edge, 1, -1)
}

// PodEnv is the distributed boundary environment: edges interior to the core
// come from the core's own plane; edges at the per-core boundary come from
// the neighbouring core via collective-permute over the pod mesh. The pod's
// Y axis maps to lattice rows (Y+1 is "south") and the X axis to lattice
// columns (X+1 is "east").
type PodEnv struct {
	Replica *pod.Replica
}

// NorthEdge assembles the row above each tile's first row; the topmost grid
// row's edge is the southernmost row of the north neighbour core.
func (e PodEnv) NorthEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor {
	m := plane.Dim(0)
	// My southernmost row, sent to my south neighbour (so I receive the
	// north neighbour's southernmost row).
	mine := core.Slice(plane, tensor.At(-1), tensor.All(), tensor.At(-1), tensor.All())
	halo := e.Replica.ShiftExchange(mine, 0, 1)
	if m == 1 {
		return halo
	}
	interior := core.Slice(plane, tensor.Span(0, m-1), tensor.All(), tensor.At(-1), tensor.All())
	return core.Concat(0, halo, interior)
}

// SouthEdge assembles the row below each tile's last row; the bottom grid
// row's edge is the northernmost row of the south neighbour core.
func (e PodEnv) SouthEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor {
	m := plane.Dim(0)
	mine := core.Slice(plane, tensor.At(0), tensor.All(), tensor.At(0), tensor.All())
	halo := e.Replica.ShiftExchange(mine, 0, -1)
	if m == 1 {
		return halo
	}
	interior := core.Slice(plane, tensor.Span(1, m), tensor.All(), tensor.At(0), tensor.All())
	return core.Concat(0, interior, halo)
}

// WestEdge assembles the column left of each tile's first column; the
// leftmost grid column's edge is the easternmost column of the west
// neighbour core.
func (e PodEnv) WestEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor {
	n := plane.Dim(1)
	mine := core.Slice(plane, tensor.All(), tensor.At(-1), tensor.All(), tensor.At(-1))
	halo := e.Replica.ShiftExchange(mine, 1, 0)
	if n == 1 {
		return halo
	}
	interior := core.Slice(plane, tensor.All(), tensor.Span(0, n-1), tensor.All(), tensor.At(-1))
	return core.Concat(1, halo, interior)
}

// EastEdge assembles the column right of each tile's last column; the
// rightmost grid column's edge is the westernmost column of the east
// neighbour core.
func (e PodEnv) EastEdge(core *tensorcore.Core, plane *tensor.Tensor) *tensor.Tensor {
	n := plane.Dim(1)
	mine := core.Slice(plane, tensor.All(), tensor.At(0), tensor.All(), tensor.At(0))
	halo := e.Replica.ShiftExchange(mine, -1, 0)
	if n == 1 {
		return halo
	}
	interior := core.Slice(plane, tensor.All(), tensor.Span(1, n), tensor.All(), tensor.At(0))
	return core.Concat(1, interior, halo)
}
