// Package tpu implements the paper's contribution: the checkerboard
// Metropolis update for the 2-D Ising model expressed as dense tensor
// operations on the (simulated) TPU TensorCore, in the three variants the
// paper describes:
//
//   - Algorithm 1 ("UpdateNaive"): the full lattice in the rank-4
//     [m, n, T, T] grid-of-tiles layout, nearest-neighbour sums via two
//     matrix multiplications with the tridiagonal kernel K, and a mask to
//     freeze the colour that is not being updated.
//   - Algorithm 2 ("UpdateOptim"): the lattice reorganised into the four
//     compact colour planes σ̂00, σ̂01, σ̂10, σ̂11 with the bidiagonal kernel
//     K̂, eliminating the redundant work of Algorithm 1.
//   - The appendix "new implementation" ("UpdateConv"): nearest-neighbour
//     sums via a 2-D convolution.
//
// A single-core Simulator runs any of the three on one TensorCore; the
// DistSimulator domain-decomposes the lattice over a pod of TensorCores and
// exchanges sub-lattice boundaries with collective-permute, as in Section 5
// of the paper.  All variants draw their per-site uniforms from a counter
// (site)-keyed Philox generator, so every variant — and every domain
// decomposition — produces bit-identical Markov chains in float32, which is
// the basis of the cross-validation tests.
package tpu
