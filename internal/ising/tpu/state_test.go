package tpu

import (
	"testing"
	"testing/quick"

	"tpuising/internal/device/tensorcore"
	"tpuising/internal/tensor"
)

func TestCompactStateRoundTrip(t *testing.T) {
	init := randomLattice(1, 8, 12)
	s := NewCompactState(init, 2, tensor.Float32, 0, 0)
	if !latticesEqual(s.ToTensor(), init) {
		t.Fatal("compact decompose/reassemble is not the identity")
	}
	gr, gc := s.GridShape()
	if gr != 2 || gc != 3 {
		t.Fatalf("GridShape = %d,%d want 2,3", gr, gc)
	}
	if s.N() != 96 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestCompactStateRoundTripQuick(t *testing.T) {
	f := func(seed uint16) bool {
		init := randomLattice(uint64(seed), 8, 8)
		s := NewCompactState(init, 2, tensor.Float32, 0, 0)
		return latticesEqual(s.ToTensor(), init)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactStatePlanesHoldSingleColour(t *testing.T) {
	// Build a lattice whose value encodes the colour: +1 on black sites
	// ((r+c) even), -1 on white sites. Planes 00/11 must then be all +1 and
	// planes 01/10 all -1.
	const rows, cols = 8, 8
	lat := tensor.New(tensor.Float32, rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := float32(1)
			if (r+c)%2 == 1 {
				v = -1
			}
			lat.Set(v, r, c)
		}
	}
	s := NewCompactState(lat, 2, tensor.Float32, 0, 0)
	checkAll := func(p *tensor.Tensor, want float32) {
		t.Helper()
		for _, v := range p.Data() {
			if v != want {
				t.Fatalf("plane value %v, want %v", v, want)
			}
		}
	}
	checkAll(s.Plane(plane00), 1)
	checkAll(s.Plane(plane11), 1)
	checkAll(s.Plane(plane01), -1)
	checkAll(s.Plane(plane10), -1)
}

func TestCompactStateSumSpins(t *testing.T) {
	init := randomLattice(4, 8, 8)
	s := NewCompactState(init, 2, tensor.Float32, 0, 0)
	if got, want := s.SumSpins(), tensor.Sum(init); got != want {
		t.Fatalf("SumSpins %v want %v", got, want)
	}
}

func TestCompactStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible lattice")
		}
	}()
	NewCompactState(randomLattice(1, 6, 6), 2, tensor.Float32, 0, 0)
}

func TestCompactStateRejectsRank1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank-1 input")
		}
	}()
	NewCompactState(tensor.Full(tensor.Float32, 1, 16), 2, tensor.Float32, 0, 0)
}

func TestTiledStateRoundTrip(t *testing.T) {
	init := randomLattice(2, 8, 16)
	s := NewTiledState(init, 4, tensor.Float32, 0, 0)
	if !latticesEqual(s.ToTensor(), init) {
		t.Fatal("tiled decompose/reassemble is not the identity")
	}
	gr, gc := s.GridShape()
	if gr != 2 || gc != 4 {
		t.Fatalf("GridShape = %d,%d want 2,4", gr, gc)
	}
	if got, want := s.SumSpins(), tensor.Sum(init); got != want {
		t.Fatalf("SumSpins %v want %v", got, want)
	}
}

func TestTiledStatePanics(t *testing.T) {
	cases := []func(){
		func() { NewTiledState(randomLattice(1, 6, 6), 3, tensor.Float32, 0, 0) },            // odd tile
		func() { NewTiledState(randomLattice(1, 6, 6), 4, tensor.Float32, 0, 0) },            // indivisible
		func() { NewTiledState(randomLattice(1, 8, 8), 4, tensor.Float32, 1, 0) },            // parity-breaking offset
		func() { NewTiledState(tensor.Full(tensor.Float32, 1, 8), 4, tensor.Float32, 0, 0) }, // rank-1
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestConvStateRoundTrip(t *testing.T) {
	init := randomLattice(3, 6, 10)
	s := NewConvState(init, tensor.Float32, 0, 0)
	if !latticesEqual(s.ToTensor(), init) {
		t.Fatal("ToTensor is not the identity")
	}
	// ToTensor must be a copy, not an alias.
	s.ToTensor().Set(42, 0, 0)
	if s.Lattice().At(0, 0) == 42 {
		t.Fatal("ToTensor aliases the internal lattice")
	}
	if s.N() != 60 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestConvStatePanics(t *testing.T) {
	cases := []func(){
		func() { NewConvState(randomLattice(1, 5, 6), tensor.Float32, 0, 0) },
		func() { NewConvState(randomLattice(1, 6, 6), tensor.Float32, 0, 1) },
		func() { NewConvState(tensor.Full(tensor.Float32, 1, 8), tensor.Float32, 0, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestColdLattice(t *testing.T) {
	l := ColdLattice(tensor.BFloat16, 4, 6)
	if l.Dim(0) != 4 || l.Dim(1) != 6 {
		t.Fatalf("shape %v", l.Shape())
	}
	for _, v := range l.Data() {
		if v != 1 {
			t.Fatalf("cold lattice value %v", v)
		}
	}
}

func TestCheckCorePanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	checkCore(nil)
}

func TestTorusEnvEdges(t *testing.T) {
	// Build a rank-4 plane whose value encodes the global (row, col) of each
	// site, then check the torus edges wrap to the right values.
	const m, n, tile = 2, 3, 2
	plane := tensor.New(tensor.Float32, m, n, tile, tile)
	encode := func(r, c int) float32 { return float32(r*100 + c) }
	for gm := 0; gm < m; gm++ {
		for gn := 0; gn < n; gn++ {
			for i := 0; i < tile; i++ {
				for j := 0; j < tile; j++ {
					plane.Set(encode(gm*tile+i, gn*tile+j), gm, gn, i, j)
				}
			}
		}
	}
	core := tensorcore.New(0)
	env := TorusEnv{}
	rows, cols := m*tile, n*tile

	north := env.NorthEdge(core, plane)
	south := env.SouthEdge(core, plane)
	west := env.WestEdge(core, plane)
	east := env.EastEdge(core, plane)

	for gm := 0; gm < m; gm++ {
		for gn := 0; gn < n; gn++ {
			for j := 0; j < tile; j++ {
				wantN := encode(((gm*tile-1)+rows)%rows, gn*tile+j)
				if got := north.At(gm, gn, 0, j); got != wantN {
					t.Fatalf("north edge (%d,%d,%d) = %v want %v", gm, gn, j, got, wantN)
				}
				wantS := encode((gm*tile+tile)%rows, gn*tile+j)
				if got := south.At(gm, gn, 0, j); got != wantS {
					t.Fatalf("south edge (%d,%d,%d) = %v want %v", gm, gn, j, got, wantS)
				}
			}
			for i := 0; i < tile; i++ {
				wantW := encode(gm*tile+i, ((gn*tile-1)+cols)%cols)
				if got := west.At(gm, gn, i, 0); got != wantW {
					t.Fatalf("west edge (%d,%d,%d) = %v want %v", gm, gn, i, got, wantW)
				}
				wantE := encode(gm*tile+i, (gn*tile+tile)%cols)
				if got := east.At(gm, gn, i, 0); got != wantE {
					t.Fatalf("east edge (%d,%d,%d) = %v want %v", gm, gn, i, got, wantE)
				}
			}
		}
	}
}
