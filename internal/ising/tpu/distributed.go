package tpu

import (
	"fmt"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/pod"
	"tpuising/internal/rng"
	"tpuising/internal/tensor"
)

// DistConfig describes a pod-distributed simulation: the global lattice is
// split into a PodX x PodY grid of per-core sub-lattices, each updated with
// Algorithm 2 while boundary values are exchanged through collective-permute
// (the setup of Tables 2-4 of the paper).
type DistConfig struct {
	// PodX and PodY are the core-grid dimensions (PodX*PodY cores). PodX maps
	// to lattice columns, PodY to lattice rows.
	PodX, PodY int
	// CoreRows and CoreCols are the per-core sub-lattice dimensions; the
	// global lattice is (PodY*CoreRows) x (PodX*CoreCols).
	CoreRows, CoreCols int
	// Temperature in units of J/kB.
	Temperature float64
	// TileSize is the MXU tile edge (default 128).
	TileSize int
	// DType selects float32 or bfloat16 storage.
	DType tensor.DType
	// Seed seeds the shared site-keyed random stream.
	Seed uint64
	// Initial is an optional global rank-2 spin tensor; cold start when nil.
	Initial *tensor.Tensor
}

func (c *DistConfig) withDefaults() DistConfig {
	out := *c
	if out.TileSize == 0 {
		out.TileSize = 128
	}
	if out.Temperature == 0 {
		out.Temperature = ising.CriticalTemperature()
	}
	return out
}

// GlobalRows returns the global lattice row count.
func (c DistConfig) GlobalRows() int { return c.PodY * c.CoreRows }

// GlobalCols returns the global lattice column count.
func (c DistConfig) GlobalCols() int { return c.PodX * c.CoreCols }

// DistSimulator runs the checkerboard chain on a pod of simulated
// TensorCores with halo exchange over the toroidal mesh.
type DistSimulator struct {
	cfg  DistConfig
	pod  *pod.Pod
	beta float64
	sk   *rng.SiteKeyed
	step uint64

	states []*CompactState // indexed by core ID
}

// NewDistSimulator builds the pod, decomposes the (optional) initial lattice
// and uploads each core's sub-lattice.
func NewDistSimulator(cfg DistConfig) *DistSimulator {
	c := cfg.withDefaults()
	if c.PodX <= 0 || c.PodY <= 0 {
		panic("tpu: pod dimensions must be positive")
	}
	p := pod.New(c.PodX, c.PodY)
	global := c.Initial
	if global == nil {
		global = ColdLattice(c.DType, c.GlobalRows(), c.GlobalCols())
	}
	if global.Dim(0) != c.GlobalRows() || global.Dim(1) != c.GlobalCols() {
		panic(fmt.Sprintf("tpu: initial lattice %v does not match pod decomposition %dx%d",
			global.Shape(), c.GlobalRows(), c.GlobalCols()))
	}
	d := &DistSimulator{
		cfg:    c,
		pod:    p,
		beta:   ising.Beta(c.Temperature),
		sk:     rng.NewSiteKeyed(c.Seed),
		states: make([]*CompactState, p.NumCores()),
	}
	for id := 0; id < p.NumCores(); id++ {
		x, y := p.Mesh().Coord(id)
		rowOff, colOff := y*c.CoreRows, x*c.CoreCols
		sub := global.Slice(
			tensor.Span(rowOff, rowOff+c.CoreRows),
			tensor.Span(colOff, colOff+c.CoreCols),
		)
		d.states[id] = NewCompactState(sub, c.TileSize, c.DType, rowOff, colOff)
	}
	return d
}

// Pod exposes the underlying pod (for profiling).
func (d *DistSimulator) Pod() *pod.Pod { return d.pod }

// Config returns the (defaulted) configuration.
func (d *DistSimulator) Config() DistConfig { return d.cfg }

// NumCores returns the number of cores in the pod.
func (d *DistSimulator) NumCores() int { return d.pod.NumCores() }

// StepCount returns the number of colour updates performed.
func (d *DistSimulator) StepCount() uint64 { return d.step }

// Sweep performs one whole-lattice update: every core updates its black
// planes (exchanging halos), then its white planes, in lockstep.
func (d *DistSimulator) Sweep() {
	step := d.step
	err := d.pod.Replicate(func(r *pod.Replica) error {
		env := PodEnv{Replica: r}
		st := d.states[r.ID]
		UpdateOptim(r.Core, env, st, checkerboard.Black, d.beta, d.sk, step)
		r.Barrier()
		UpdateOptim(r.Core, env, st, checkerboard.White, d.beta, d.sk, step+1)
		return nil
	})
	if err != nil {
		panic(err)
	}
	d.step += 2
}

// Run performs n sweeps.
func (d *DistSimulator) Run(n int) {
	for i := 0; i < n; i++ {
		d.Sweep()
	}
}

// Magnetization returns the global magnetisation per spin, computed with an
// all-reduce across the pod (each core contributes its local spin sum).
func (d *DistSimulator) Magnetization() float64 {
	results := make([]float64, d.pod.NumCores())
	err := d.pod.Replicate(func(r *pod.Replica) error {
		results[r.ID] = r.AllReduceSum(d.states[r.ID].SumSpins())
		return nil
	})
	if err != nil {
		panic(err)
	}
	n := float64(d.cfg.GlobalRows() * d.cfg.GlobalCols())
	return results[0] / n
}

// Energy returns the global energy per spin (assembled on the host).
func (d *DistSimulator) Energy() float64 {
	return ising.EnergyOfTensor(d.GlobalLattice().AsType(tensor.Float32))
}

// GlobalLattice reassembles the full rank-2 lattice from all cores.
func (d *DistSimulator) GlobalLattice() *tensor.Tensor {
	out := tensor.New(d.cfg.DType, d.cfg.GlobalRows(), d.cfg.GlobalCols())
	for id, st := range d.states {
		x, y := d.pod.Mesh().Coord(id)
		rowOff, colOff := y*d.cfg.CoreRows, x*d.cfg.CoreCols
		out.SetSlice(st.ToTensor(),
			tensor.Span(rowOff, rowOff+d.cfg.CoreRows),
			tensor.Span(colOff, colOff+d.cfg.CoreCols))
	}
	return out
}

// State returns core id's compact state (for tests).
func (d *DistSimulator) State(id int) *CompactState { return d.states[id] }

// Counts returns the per-core maximum work counters (the lockstep step time
// is set by the slowest core) and the pod-wide totals.
func (d *DistSimulator) Counts() (perCoreMax, total metrics.Counts) {
	return d.pod.MaxCounts(), d.pod.TotalCounts()
}

// ResetCounts clears all cores' counters.
func (d *DistSimulator) ResetCounts() { d.pod.ResetCounts() }
