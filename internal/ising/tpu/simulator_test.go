package tpu

import (
	"math"
	"testing"
	"testing/quick"

	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/rng"
	"tpuising/internal/tensor"
)

// randomLattice builds a random +-1 rank-2 spin tensor from a Philox stream.
func randomLattice(seed uint64, rows, cols int) *tensor.Tensor {
	p := rng.New(seed)
	t := tensor.New(tensor.Float32, rows, cols)
	data := t.Data()
	for i := range data {
		if p.Float32() < 0.5 {
			data[i] = -1
		} else {
			data[i] = 1
		}
	}
	return t
}

// latticesEqual reports whether two rank-2 spin tensors hold the same spins.
func latticesEqual(a, b *tensor.Tensor) bool {
	if a.Dim(0) != b.Dim(0) || a.Dim(1) != b.Dim(1) {
		return false
	}
	da, db := a.Data(), b.Data()
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// cpuReference runs the bit-identical serial checkerboard chain on the same
// initial lattice, seed and temperature.
func cpuReference(init *tensor.Tensor, temperature float64, seed uint64, sweeps int) *ising.Lattice {
	l := ising.FromTensor(init)
	sk := rng.NewSiteKeyed(seed)
	beta := ising.Beta(temperature)
	var step uint64
	for i := 0; i < sweeps; i++ {
		step = checkerboard.Sweep(l, beta, sk, step)
	}
	return l
}

func TestOptimMatchesCPUReference(t *testing.T) {
	const rows, cols, tile = 8, 12, 2
	const temperature = 2.4
	const seed = 7
	init := randomLattice(3, rows, cols)

	sim := NewSimulator(Config{
		Rows: rows, Cols: cols, Temperature: temperature,
		TileSize: tile, DType: tensor.Float32, Algorithm: AlgOptim,
		Seed: seed, Initial: init,
	})
	ref := ising.FromTensor(init)
	sk := rng.NewSiteKeyed(seed)
	beta := ising.Beta(temperature)
	var step uint64
	for sweep := 0; sweep < 12; sweep++ {
		sim.Sweep()
		step = checkerboard.Sweep(ref, beta, sk, step)
		got := sim.LatticeTensor().AsType(tensor.Float32)
		want := ref.ToTensor(tensor.Float32)
		if !latticesEqual(got, want) {
			t.Fatalf("sweep %d: Algorithm 2 diverged from the CPU reference", sweep)
		}
	}
}

func TestNaiveMatchesCPUReference(t *testing.T) {
	const rows, cols, tile = 8, 8, 4
	const temperature = 2.1
	const seed = 11
	init := randomLattice(5, rows, cols)

	sim := NewSimulator(Config{
		Rows: rows, Cols: cols, Temperature: temperature,
		TileSize: tile, DType: tensor.Float32, Algorithm: AlgNaive,
		Seed: seed, Initial: init,
	})
	sim.Run(10)
	want := cpuReference(init, temperature, seed, 10).ToTensor(tensor.Float32)
	if !latticesEqual(sim.LatticeTensor().AsType(tensor.Float32), want) {
		t.Fatal("Algorithm 1 diverged from the CPU reference")
	}
}

func TestConvMatchesCPUReference(t *testing.T) {
	const rows, cols = 10, 6
	const temperature = 3.0
	const seed = 13
	init := randomLattice(9, rows, cols)

	sim := NewSimulator(Config{
		Rows: rows, Cols: cols, Temperature: temperature,
		DType: tensor.Float32, Algorithm: AlgConv,
		Seed: seed, Initial: init,
	})
	sim.Run(10)
	want := cpuReference(init, temperature, seed, 10).ToTensor(tensor.Float32)
	if !latticesEqual(sim.LatticeTensor().AsType(tensor.Float32), want) {
		t.Fatal("conv update diverged from the CPU reference")
	}
}

func TestAllAlgorithmsProduceIdenticalChains(t *testing.T) {
	// In float32 with the site-keyed generator the three update kernels are
	// exactly the same Markov chain.
	const rows, cols = 8, 8
	const seed = 21
	for _, temperature := range []float64{1.5, ising.CriticalTemperature(), 3.5} {
		init := randomLattice(17, rows, cols)
		var finals []*tensor.Tensor
		for _, alg := range []Algorithm{AlgOptim, AlgNaive, AlgConv} {
			sim := NewSimulator(Config{
				Rows: rows, Cols: cols, Temperature: temperature,
				TileSize: 2, DType: tensor.Float32, Algorithm: alg,
				Seed: seed, Initial: init,
			})
			sim.Run(8)
			finals = append(finals, sim.LatticeTensor().AsType(tensor.Float32))
		}
		if !latticesEqual(finals[0], finals[1]) || !latticesEqual(finals[0], finals[2]) {
			t.Fatalf("T=%v: algorithms disagree", temperature)
		}
	}
}

func TestTileSizeInvariance(t *testing.T) {
	// The chain must not depend on the MXU tile decomposition.
	const rows, cols = 16, 16
	const temperature = 2.2
	const seed = 5
	init := randomLattice(23, rows, cols)
	var prev *tensor.Tensor
	for _, tile := range []int{2, 4, 8} {
		sim := NewSimulator(Config{
			Rows: rows, Cols: cols, Temperature: temperature,
			TileSize: tile, DType: tensor.Float32, Algorithm: AlgOptim,
			Seed: seed, Initial: init,
		})
		sim.Run(6)
		cur := sim.LatticeTensor().AsType(tensor.Float32)
		if prev != nil && !latticesEqual(prev, cur) {
			t.Fatalf("tile size %d changed the chain", tile)
		}
		prev = cur
	}
}

func TestTileSizeInvarianceQuick(t *testing.T) {
	// Property: for any seed and any pair of valid tile sizes, Algorithm 2
	// produces the same chain.
	f := func(seed uint16, pick bool) bool {
		const rows, cols = 8, 8
		tileA, tileB := 2, 4
		if pick {
			tileA, tileB = 4, 2
		}
		init := randomLattice(uint64(seed)+100, rows, cols)
		run := func(tile int) *tensor.Tensor {
			sim := NewSimulator(Config{
				Rows: rows, Cols: cols, Temperature: 2.3,
				TileSize: tile, DType: tensor.Float32, Algorithm: AlgOptim,
				Seed: uint64(seed), Initial: init,
			})
			sim.Run(3)
			return sim.LatticeTensor().AsType(tensor.Float32)
		}
		return latticesEqual(run(tileA), run(tileB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestSpinsRemainPlusMinusOne(t *testing.T) {
	// Property: after any number of sweeps every spin is exactly +1 or -1, in
	// both precisions (bfloat16 represents +-1 exactly).
	for _, dtype := range []tensor.DType{tensor.Float32, tensor.BFloat16} {
		sim := NewSimulator(Config{
			Rows: 8, Cols: 8, Temperature: 2.269,
			TileSize: 2, DType: dtype, Algorithm: AlgOptim, Seed: 40,
		})
		sim.Run(20)
		lat := sim.LatticeTensor()
		for _, v := range lat.Data() {
			if v != 1 && v != -1 {
				t.Fatalf("dtype %v: spin value %v", dtype, v)
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func(seed uint64) *tensor.Tensor {
		sim := NewSimulator(Config{
			Rows: 8, Cols: 8, Temperature: 2.5,
			TileSize: 2, DType: tensor.Float32, Algorithm: AlgOptim, Seed: seed,
		})
		sim.Run(5)
		return sim.LatticeTensor().AsType(tensor.Float32)
	}
	if !latticesEqual(run(1), run(1)) {
		t.Fatal("same seed produced different chains")
	}
	if latticesEqual(run(1), run(2)) {
		t.Fatal("different seeds produced identical chains (suspicious)")
	}
}

func TestColdStartStaysOrderedBelowTc(t *testing.T) {
	// Deep in the ordered phase a cold start must keep |m| close to 1.
	sim := NewSimulator(Config{
		Rows: 32, Cols: 32, Temperature: 1.0,
		TileSize: 4, DType: tensor.Float32, Algorithm: AlgOptim, Seed: 3,
	})
	sim.Run(200)
	if m := sim.Magnetization(); m < 0.95 {
		t.Fatalf("magnetization %v at T=1.0, want near 1", m)
	}
}

func TestDisorderedAboveTc(t *testing.T) {
	// Far above Tc the magnetization must decay towards 0.
	sim := NewSimulator(Config{
		Rows: 32, Cols: 32, Temperature: 5.0,
		TileSize: 4, DType: tensor.Float32, Algorithm: AlgOptim, Seed: 3,
	})
	sim.Run(300)
	if m := math.Abs(sim.Magnetization()); m > 0.2 {
		t.Fatalf("|m| = %v at T=5.0, want near 0", m)
	}
}

func TestBF16MatchesF32Statistically(t *testing.T) {
	// The paper's precision claim: bfloat16 does not change the physics. The
	// chains are not bit-identical (the uniforms and acceptance ratios are
	// rounded), so compare the phase they settle into.
	run := func(dtype tensor.DType, temperature float64) float64 {
		sim := NewSimulator(Config{
			Rows: 32, Cols: 32, Temperature: temperature,
			TileSize: 4, DType: dtype, Algorithm: AlgOptim, Seed: 9,
		})
		sim.Run(300)
		// Average over some further sweeps to reduce noise.
		var acc float64
		const samples = 50
		for i := 0; i < samples; i++ {
			sim.Sweep()
			acc += math.Abs(sim.Magnetization())
		}
		return acc / samples
	}
	lowF32, lowBF16 := run(tensor.Float32, 1.5), run(tensor.BFloat16, 1.5)
	if math.Abs(lowF32-lowBF16) > 0.05 {
		t.Fatalf("ordered phase: f32 %v vs bf16 %v", lowF32, lowBF16)
	}
	highF32, highBF16 := run(tensor.Float32, 4.5), run(tensor.BFloat16, 4.5)
	if math.Abs(highF32-highBF16) > 0.15 {
		t.Fatalf("disordered phase: f32 %v vs bf16 %v", highF32, highBF16)
	}
}

func TestMagnetizationMatchesLatticeTensor(t *testing.T) {
	for _, alg := range []Algorithm{AlgOptim, AlgNaive, AlgConv} {
		sim := NewSimulator(Config{
			Rows: 8, Cols: 8, Temperature: 2.7,
			TileSize: 2, DType: tensor.Float32, Algorithm: alg, Seed: 31,
		})
		sim.Run(7)
		direct := sim.Magnetization()
		fromTensor := ising.MagnetizationOfTensor(sim.LatticeTensor().AsType(tensor.Float32))
		if math.Abs(direct-fromTensor) > 1e-9 {
			t.Fatalf("%v: Magnetization %v != tensor magnetization %v", alg, direct, fromTensor)
		}
	}
}

func TestEnergyMatchesCPUDefinition(t *testing.T) {
	sim := NewSimulator(Config{
		Rows: 8, Cols: 8, Temperature: 2.0,
		TileSize: 2, DType: tensor.Float32, Algorithm: AlgOptim, Seed: 77,
	})
	sim.Run(5)
	want := ising.FromTensor(sim.LatticeTensor().AsType(tensor.Float32)).Energy()
	if got := sim.Energy(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Energy %v != lattice energy %v", got, want)
	}
}

func TestSimulatorDefaults(t *testing.T) {
	sim := NewSimulator(Config{Rows: 256, Cols: 256})
	cfg := sim.Config()
	if cfg.TileSize != 128 {
		t.Fatalf("default tile size = %d, want 128", cfg.TileSize)
	}
	if math.Abs(cfg.Temperature-ising.CriticalTemperature()) > 1e-12 {
		t.Fatalf("default temperature = %v, want Tc", cfg.Temperature)
	}
	if sim.N() != 256*256 {
		t.Fatalf("N = %d", sim.N())
	}
}

func TestSimulatorCountsAccumulateAndReset(t *testing.T) {
	sim := NewSimulator(Config{
		Rows: 8, Cols: 8, Temperature: 2.5, TileSize: 2,
		DType: tensor.Float32, Algorithm: AlgOptim, Seed: 1,
	})
	sim.Sweep()
	first := sim.Counts()
	if first.MXUMacs == 0 || first.VPUOps == 0 || first.Ops == 0 {
		t.Fatalf("counts not recorded: %v", first)
	}
	sim.Sweep()
	second := sim.Counts()
	if second.MXUMacs != 2*first.MXUMacs {
		t.Fatalf("MXU MACs per sweep not constant: %d then %d", first.MXUMacs, second.MXUMacs-first.MXUMacs)
	}
	sim.ResetCounts()
	if sim.Counts().Ops != 0 {
		t.Fatal("ResetCounts did not clear counters")
	}
	if sim.StepCount() != 4 {
		t.Fatalf("StepCount = %d, want 4", sim.StepCount())
	}
}

func TestAlgorithmWorkOrdering(t *testing.T) {
	// The optimised algorithm must do strictly less matrix work per sweep than
	// the naive one (the point of Algorithm 2).
	counts := func(alg Algorithm) int64 {
		sim := NewSimulator(Config{
			Rows: 16, Cols: 16, Temperature: 2.5, TileSize: 4,
			DType: tensor.Float32, Algorithm: alg, Seed: 1,
		})
		sim.Sweep()
		return sim.Counts().MXUMacs
	}
	naive, optim := counts(AlgNaive), counts(AlgOptim)
	if optim >= naive {
		t.Fatalf("Algorithm 2 MACs %d >= Algorithm 1 MACs %d", optim, naive)
	}
}

func TestSetTemperatureChangesDynamics(t *testing.T) {
	sim := NewSimulator(Config{
		Rows: 32, Cols: 32, Temperature: 1.0,
		TileSize: 4, DType: tensor.Float32, Algorithm: AlgOptim, Seed: 12,
	})
	sim.Run(100)
	ordered := math.Abs(sim.Magnetization())
	sim.SetTemperature(6.0)
	sim.Run(300)
	disordered := math.Abs(sim.Magnetization())
	if ordered < 0.9 {
		t.Fatalf("ordered |m| = %v", ordered)
	}
	if disordered > 0.3 {
		t.Fatalf("after heating |m| = %v, want small", disordered)
	}
}

func TestAcceptFactor(t *testing.T) {
	if got, want := acceptFactor(0.5), float32(-1.0); got != want {
		t.Fatalf("acceptFactor(0.5) = %v, want %v", got, want)
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, alg := range []Algorithm{AlgOptim, AlgNaive, AlgConv, Algorithm(99)} {
		if alg.String() == "" {
			t.Fatalf("empty String for %d", int(alg))
		}
	}
}

func TestNewSimulatorPanicsOnBadConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"mismatched initial", Config{Rows: 8, Cols: 8, TileSize: 2, Initial: randomLattice(1, 4, 4)}},
		{"unknown algorithm", Config{Rows: 8, Cols: 8, TileSize: 2, Algorithm: Algorithm(42)}},
		{"indivisible lattice", Config{Rows: 6, Cols: 6, TileSize: 4}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			NewSimulator(tc.cfg)
		}()
	}
}
