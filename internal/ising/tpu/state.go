package tpu

import (
	"fmt"

	"tpuising/internal/device/tensorcore"
	"tpuising/internal/tensor"
)

// Plane indices of the compact representation (Figure 3-(2) of the paper):
// plane00 holds sites at (even row, even col), plane01 (even, odd),
// plane10 (odd, even), plane11 (odd, odd). Planes 00 and 11 are "black"
// ((row+col) even), planes 01 and 10 are "white".
const (
	plane00 = iota
	plane01
	plane10
	plane11
	numPlanes
)

// CompactState is the Algorithm 2 representation of a (per-core) lattice:
// four colour planes, each tiled into a [gridRows, gridCols, tile, tile]
// rank-4 tensor.
type CompactState struct {
	// Rows and Cols are the full per-core lattice dimensions.
	Rows, Cols int
	// Tile is the square tile (MXU) dimension; 128 on real hardware,
	// parameterised so tests can use small lattices.
	Tile int
	// RowOff and ColOff are the global coordinates of this lattice's (0,0)
	// site within the whole (possibly multi-core) lattice.
	RowOff, ColOff int
	// DType is the storage type of the planes (float32 or bfloat16).
	DType tensor.DType

	planes [numPlanes]*tensor.Tensor
	// kernels (K̂ and its transpose), built once per state.
	kHat, kHatT *tensor.Tensor
}

// NewCompactState builds the compact representation of the given rank-2 spin
// lattice (+-1 values).  rows and cols must be divisible by 2*tile.
func NewCompactState(lattice *tensor.Tensor, tile int, dtype tensor.DType, rowOff, colOff int) *CompactState {
	if lattice.Rank() != 2 {
		panic("tpu: NewCompactState needs a rank-2 lattice")
	}
	rows, cols := lattice.Dim(0), lattice.Dim(1)
	if rows%(2*tile) != 0 || cols%(2*tile) != 0 {
		panic(fmt.Sprintf("tpu: lattice %dx%d not divisible into 2*%d tiles", rows, cols, tile))
	}
	s := &CompactState{
		Rows: rows, Cols: cols, Tile: tile,
		RowOff: rowOff, ColOff: colOff, DType: dtype,
		kHat:  tensor.CompactKernel(dtype, tile),
		kHatT: tensor.Transpose(tensor.CompactKernel(dtype, tile)),
	}
	lat := lattice.AsType(dtype)
	a, b, c, d := tensor.CompactDecompose2D(lat)
	s.planes[plane00] = tensor.Tile4D(a, tile, tile)
	s.planes[plane01] = tensor.Tile4D(b, tile, tile)
	s.planes[plane10] = tensor.Tile4D(c, tile, tile)
	s.planes[plane11] = tensor.Tile4D(d, tile, tile)
	return s
}

// GridShape returns the [gridRows, gridCols] tiling of each compact plane.
func (s *CompactState) GridShape() (gridRows, gridCols int) {
	return s.Rows / (2 * s.Tile), s.Cols / (2 * s.Tile)
}

// Plane returns one of the four compact planes (for tests and halo logic).
func (s *CompactState) Plane(i int) *tensor.Tensor { return s.planes[i] }

// ToTensor reassembles the full rank-2 lattice from the compact planes.
func (s *CompactState) ToTensor() *tensor.Tensor {
	a := tensor.Untile4D(s.planes[plane00])
	b := tensor.Untile4D(s.planes[plane01])
	c := tensor.Untile4D(s.planes[plane10])
	d := tensor.Untile4D(s.planes[plane11])
	return tensor.Interleave2D(a, b, c, d)
}

// SumSpins returns the total spin of the per-core lattice.
func (s *CompactState) SumSpins() float64 {
	var total float64
	for _, p := range s.planes {
		total += tensor.Sum(p)
	}
	return total
}

// N returns the number of spins in the per-core lattice.
func (s *CompactState) N() int { return s.Rows * s.Cols }

// TiledState is the Algorithm 1 representation: the full lattice as a rank-4
// [gridRows, gridCols, tile, tile] tensor, colours interleaved.
type TiledState struct {
	Rows, Cols     int
	Tile           int
	RowOff, ColOff int
	DType          tensor.DType

	lattice *tensor.Tensor
	kernel  *tensor.Tensor // tridiagonal K
	maskB   *tensor.Tensor // rank-4 black mask
	maskW   *tensor.Tensor // rank-4 white mask
}

// NewTiledState builds the Algorithm 1 representation of a rank-2 lattice.
// rows and cols must be divisible by tile, and tile must be even so that the
// per-tile checkerboard mask has the global colour parity.
func NewTiledState(lattice *tensor.Tensor, tile int, dtype tensor.DType, rowOff, colOff int) *TiledState {
	if lattice.Rank() != 2 {
		panic("tpu: NewTiledState needs a rank-2 lattice")
	}
	if tile%2 != 0 {
		panic("tpu: tile size must be even")
	}
	if (rowOff+colOff)%2 != 0 {
		panic("tpu: lattice offset must preserve colour parity")
	}
	rows, cols := lattice.Dim(0), lattice.Dim(1)
	if rows%tile != 0 || cols%tile != 0 {
		panic(fmt.Sprintf("tpu: lattice %dx%d not divisible into %d tiles", rows, cols, tile))
	}
	s := &TiledState{
		Rows: rows, Cols: cols, Tile: tile,
		RowOff: rowOff, ColOff: colOff, DType: dtype,
		kernel: tensor.NeighbourKernel(dtype, tile),
	}
	s.lattice = tensor.Tile4D(lattice.AsType(dtype), tile, tile)
	m, n := rows/tile, cols/tile
	maskTile := tensor.CheckerboardMask(dtype, tile, tile)
	s.maskB = broadcastTile(maskTile, m, n)
	s.maskW = tensor.Sub(tensor.Full(dtype, 1, m, n, tile, tile), s.maskB)
	return s
}

// broadcastTile repeats a [T, T] tile into a [m, n, T, T] tensor.
func broadcastTile(tile *tensor.Tensor, m, n int) *tensor.Tensor {
	t := tile.Dim(0)
	u := tile.Dim(1)
	out := tensor.New(tile.DType(), m, n, t, u)
	src := tile.Data()
	dst := out.Data()
	block := t * u
	for g := 0; g < m*n; g++ {
		copy(dst[g*block:(g+1)*block], src)
	}
	return out
}

// GridShape returns the [gridRows, gridCols] tiling.
func (s *TiledState) GridShape() (gridRows, gridCols int) { return s.Rows / s.Tile, s.Cols / s.Tile }

// Lattice returns the rank-4 tiled lattice tensor.
func (s *TiledState) Lattice() *tensor.Tensor { return s.lattice }

// ToTensor returns the full rank-2 lattice.
func (s *TiledState) ToTensor() *tensor.Tensor { return tensor.Untile4D(s.lattice) }

// SumSpins returns the total spin.
func (s *TiledState) SumSpins() float64 { return tensor.Sum(s.lattice) }

// N returns the number of spins.
func (s *TiledState) N() int { return s.Rows * s.Cols }

// ConvState is the appendix representation: the full lattice as one rank-2
// tensor, with nearest-neighbour sums computed by 2-D convolution.
type ConvState struct {
	Rows, Cols     int
	RowOff, ColOff int
	DType          tensor.DType

	lattice *tensor.Tensor
	kernel  *tensor.Tensor
	maskB   *tensor.Tensor
	maskW   *tensor.Tensor
}

// NewConvState builds the convolution-based representation of a rank-2
// lattice. Rows and cols must be even (so the checkerboard wraps
// consistently on the torus).
func NewConvState(lattice *tensor.Tensor, dtype tensor.DType, rowOff, colOff int) *ConvState {
	if lattice.Rank() != 2 {
		panic("tpu: NewConvState needs a rank-2 lattice")
	}
	rows, cols := lattice.Dim(0), lattice.Dim(1)
	if rows%2 != 0 || cols%2 != 0 {
		panic("tpu: lattice dimensions must be even")
	}
	if (rowOff+colOff)%2 != 0 {
		panic("tpu: lattice offset must preserve colour parity")
	}
	s := &ConvState{
		Rows: rows, Cols: cols, RowOff: rowOff, ColOff: colOff, DType: dtype,
		kernel: tensor.NNConvKernel(dtype),
	}
	s.lattice = lattice.AsType(dtype)
	s.maskB = tensor.CheckerboardMask(dtype, rows, cols)
	s.maskW = tensor.Sub(tensor.Full(dtype, 1, rows, cols), s.maskB)
	return s
}

// Lattice returns the rank-2 lattice tensor.
func (s *ConvState) Lattice() *tensor.Tensor { return s.lattice }

// ToTensor returns a copy of the full rank-2 lattice.
func (s *ConvState) ToTensor() *tensor.Tensor { return s.lattice.Clone() }

// SumSpins returns the total spin.
func (s *ConvState) SumSpins() float64 { return tensor.Sum(s.lattice) }

// N returns the number of spins.
func (s *ConvState) N() int { return s.Rows * s.Cols }

// ColdLattice returns an all-up rank-2 spin lattice.
func ColdLattice(dtype tensor.DType, rows, cols int) *tensor.Tensor {
	return tensor.Full(dtype, 1, rows, cols)
}

// checkCore panics when the core is nil, producing a clearer error than a nil
// dereference inside a kernel.
func checkCore(core *tensorcore.Core) {
	if core == nil {
		panic("tpu: nil TensorCore")
	}
}
