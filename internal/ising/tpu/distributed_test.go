package tpu

import (
	"math"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/tensor"
)

func TestDistMatchesSingleCore(t *testing.T) {
	// The headline correctness property of the distributed simulator: the
	// site-keyed generator plus halo exchange make the 2x2-pod chain
	// bit-identical to the single-core chain on the same global lattice.
	const coreRows, coreCols, tile = 4, 4, 2
	const temperature = 2.3
	const seed = 6
	const sweeps = 8
	cfg := DistConfig{
		PodX: 2, PodY: 2, CoreRows: coreRows, CoreCols: coreCols,
		Temperature: temperature, TileSize: tile, DType: tensor.Float32, Seed: seed,
	}
	init := randomLattice(8, cfg.GlobalRows(), cfg.GlobalCols())
	cfg.Initial = init

	dist := NewDistSimulator(cfg)
	dist.Run(sweeps)

	single := NewSimulator(Config{
		Rows: cfg.GlobalRows(), Cols: cfg.GlobalCols(), Temperature: temperature,
		TileSize: tile, DType: tensor.Float32, Algorithm: AlgOptim,
		Seed: seed, Initial: init,
	})
	single.Run(sweeps)

	if !latticesEqual(dist.GlobalLattice().AsType(tensor.Float32),
		single.LatticeTensor().AsType(tensor.Float32)) {
		t.Fatal("distributed chain diverged from the single-core chain")
	}
}

func TestDistDecompositionInvariance(t *testing.T) {
	// Different pod shapes over the same global lattice must give identical
	// chains (the decomposition is purely a performance choice).
	const temperature = 2.6
	const seed = 15
	const sweeps = 6
	globalRows, globalCols := 8, 8
	init := randomLattice(30, globalRows, globalCols)

	run := func(podX, podY int) *tensor.Tensor {
		cfg := DistConfig{
			PodX: podX, PodY: podY,
			CoreRows: globalRows / podY, CoreCols: globalCols / podX,
			Temperature: temperature, TileSize: 2, DType: tensor.Float32,
			Seed: seed, Initial: init,
		}
		d := NewDistSimulator(cfg)
		d.Run(sweeps)
		return d.GlobalLattice().AsType(tensor.Float32)
	}

	ref := run(1, 1)
	for _, shape := range [][2]int{{2, 1}, {1, 2}, {2, 2}} {
		if !latticesEqual(ref, run(shape[0], shape[1])) {
			t.Fatalf("pod shape %dx%d changed the chain", shape[0], shape[1])
		}
	}
}

func TestDistMagnetizationMatchesGlobalLattice(t *testing.T) {
	cfg := DistConfig{
		PodX: 2, PodY: 2, CoreRows: 4, CoreCols: 4,
		Temperature: 2.0, TileSize: 2, DType: tensor.Float32, Seed: 44,
	}
	d := NewDistSimulator(cfg)
	d.Run(5)
	allReduce := d.Magnetization()
	host := ising.MagnetizationOfTensor(d.GlobalLattice().AsType(tensor.Float32))
	if math.Abs(allReduce-host) > 1e-9 {
		t.Fatalf("all-reduce magnetization %v != host magnetization %v", allReduce, host)
	}
	wantEnergy := ising.FromTensor(d.GlobalLattice().AsType(tensor.Float32)).Energy()
	if got := d.Energy(); math.Abs(got-wantEnergy) > 1e-9 {
		t.Fatalf("Energy %v != %v", got, wantEnergy)
	}
}

func TestDistColdStartOrderedPhase(t *testing.T) {
	cfg := DistConfig{
		PodX: 2, PodY: 2, CoreRows: 8, CoreCols: 8,
		Temperature: 1.2, TileSize: 2, DType: tensor.Float32, Seed: 2,
	}
	d := NewDistSimulator(cfg)
	d.Run(100)
	if m := d.Magnetization(); m < 0.9 {
		t.Fatalf("magnetization %v at T=1.2, want near 1", m)
	}
}

func TestDistBF16OrderedPhase(t *testing.T) {
	// The precision claim holds for the distributed path as well.
	cfg := DistConfig{
		PodX: 2, PodY: 1, CoreRows: 8, CoreCols: 8,
		Temperature: 1.2, TileSize: 2, DType: tensor.BFloat16, Seed: 2,
	}
	d := NewDistSimulator(cfg)
	d.Run(100)
	if m := d.Magnetization(); m < 0.9 {
		t.Fatalf("bf16 magnetization %v at T=1.2, want near 1", m)
	}
}

func TestDistConfigAccessors(t *testing.T) {
	cfg := DistConfig{PodX: 4, PodY: 2, CoreRows: 16, CoreCols: 8}
	if cfg.GlobalRows() != 32 || cfg.GlobalCols() != 32 {
		t.Fatalf("global size %dx%d", cfg.GlobalRows(), cfg.GlobalCols())
	}
	d := NewDistSimulator(DistConfig{
		PodX: 2, PodY: 2, CoreRows: 4, CoreCols: 4, TileSize: 2, DType: tensor.Float32,
	})
	if d.NumCores() != 4 {
		t.Fatalf("NumCores = %d", d.NumCores())
	}
	if d.Config().TileSize != 2 {
		t.Fatal("Config not preserved")
	}
	if d.Pod() == nil || d.State(0) == nil {
		t.Fatal("accessors returned nil")
	}
	if d.StepCount() != 0 {
		t.Fatal("fresh simulator has nonzero step count")
	}
	d.Sweep()
	if d.StepCount() != 2 {
		t.Fatalf("StepCount = %d after one sweep", d.StepCount())
	}
}

func TestDistCountsCommunicationRecorded(t *testing.T) {
	cfg := DistConfig{
		PodX: 2, PodY: 2, CoreRows: 4, CoreCols: 4,
		Temperature: 2.5, TileSize: 2, DType: tensor.Float32, Seed: 1,
	}
	d := NewDistSimulator(cfg)
	d.Sweep()
	perCore, total := d.Counts()
	if perCore.CommEvents == 0 || perCore.CommBytes == 0 {
		t.Fatalf("halo exchange not recorded: %v", perCore)
	}
	if total.CommEvents < perCore.CommEvents*int64(d.NumCores()) {
		t.Fatalf("total comm events %d < per-core %d * %d cores",
			total.CommEvents, perCore.CommEvents, d.NumCores())
	}
	if perCore.MXUMacs == 0 {
		t.Fatal("MXU work not recorded")
	}
	d.ResetCounts()
	_, total = d.Counts()
	if total.Ops != 0 {
		t.Fatal("ResetCounts did not clear counters")
	}
}

func TestDistPerCoreWorkMatchesSingleCoreOfSameSize(t *testing.T) {
	// Weak scaling premise: each core of a pod does the same per-sweep work as
	// a standalone core with the same per-core lattice (plus the halo traffic).
	const coreRows, coreCols, tile = 8, 8, 2
	dist := NewDistSimulator(DistConfig{
		PodX: 2, PodY: 2, CoreRows: coreRows, CoreCols: coreCols,
		Temperature: 2.4, TileSize: tile, DType: tensor.Float32, Seed: 3,
	})
	dist.Sweep()
	perCore, _ := dist.Counts()

	single := NewSimulator(Config{
		Rows: coreRows, Cols: coreCols, Temperature: 2.4,
		TileSize: tile, DType: tensor.Float32, Algorithm: AlgOptim, Seed: 3,
	})
	single.Sweep()
	alone := single.Counts()

	if perCore.MXUMacs != alone.MXUMacs {
		t.Fatalf("per-core MACs %d != standalone MACs %d", perCore.MXUMacs, alone.MXUMacs)
	}
	if perCore.VPUOps != alone.VPUOps {
		t.Fatalf("per-core VPU ops %d != standalone %d", perCore.VPUOps, alone.VPUOps)
	}
	if perCore.CommBytes == 0 {
		t.Fatal("pod core exchanged no halo bytes")
	}
	if alone.CommBytes != 0 {
		t.Fatal("standalone core should not communicate")
	}
}

func TestDistPanicsOnBadConfig(t *testing.T) {
	cases := []DistConfig{
		{PodX: 0, PodY: 2, CoreRows: 4, CoreCols: 4, TileSize: 2},
		{PodX: 2, PodY: 2, CoreRows: 4, CoreCols: 4, TileSize: 2,
			Initial: randomLattice(1, 4, 4)}, // wrong global size
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewDistSimulator(cfg)
		}()
	}
}

func TestPodEnvMatchesTorusEnvOnSingleCorePod(t *testing.T) {
	// A 1x1 pod's halo exchange is a self-exchange, so the pod environment
	// must reduce to the torus environment: the chain equals the single-core
	// chain (already covered by decomposition invariance) and, more directly,
	// the edge tensors agree.
	const rows, cols, tile = 8, 8, 2
	const seed = 19
	init := randomLattice(55, rows, cols)

	dist := NewDistSimulator(DistConfig{
		PodX: 1, PodY: 1, CoreRows: rows, CoreCols: cols,
		Temperature: 2.2, TileSize: tile, DType: tensor.Float32, Seed: seed, Initial: init,
	})
	single := NewSimulator(Config{
		Rows: rows, Cols: cols, Temperature: 2.2,
		TileSize: tile, DType: tensor.Float32, Algorithm: AlgOptim, Seed: seed, Initial: init,
	})
	dist.Run(4)
	single.Run(4)
	if !latticesEqual(dist.GlobalLattice().AsType(tensor.Float32),
		single.LatticeTensor().AsType(tensor.Float32)) {
		t.Fatal("1x1 pod diverged from single-core simulator")
	}
}
