package tpu

import (
	"tpuising/internal/device/tensorcore"
	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/rng"
	"tpuising/internal/tensor"
)

// acceptFactor returns the float32 constant -2*beta*J used in the acceptance
// ratio exp(-2*beta*J*sigma*nn); keeping the conversion in one place keeps
// the tensor kernels and the CPU reference bit-identical.
func acceptFactor(beta float64) float32 { return float32(-2 * beta * ising.J) }

// flipPlane applies the Metropolis acceptance to one plane: it returns
// sigma - 2*flips*sigma where flips = (probs < exp(factor*sigma*nn)).
func flipPlane(core *tensorcore.Core, plane, nn, probs *tensor.Tensor, factor float32) *tensor.Tensor {
	acc := core.Exp(core.Scale(core.Mul(nn, plane), factor))
	flips := core.Less(probs, acc)
	return core.Sub(plane, core.Scale(core.Mul(flips, plane), 2))
}

// UpdateOptim performs one colour update of Algorithm 2 on a compact state:
// it flips the two planes of the given colour (00 and 11 for black, 01 and
// 10 for white) and leaves the other two planes untouched. probs are drawn
// from the site-keyed generator at the given step using the planes' global
// lattice coordinates.
func UpdateOptim(core *tensorcore.Core, env BoundaryEnv, s *CompactState,
	color checkerboard.Color, beta float64, sk *rng.SiteKeyed, step uint64) {
	checkCore(core)
	factor := acceptFactor(beta)
	a, b, c, d := s.planes[plane00], s.planes[plane01], s.planes[plane10], s.planes[plane11]

	if color == checkerboard.Black {
		// Plane 00: sites (2i, 2j). Plane 11: sites (2i+1, 2j+1).
		probs0 := s.planeProbs(core, sk, step, 0, 0)
		probs1 := s.planeProbs(core, sk, step, 1, 1)

		// nn(σ̂00)[i][j] = b[i][j-1] + b[i][j] + c[i-1][j] + c[i][j]
		nn0 := core.Add(core.MatMul(b, s.kHat), core.MatMul(s.kHatT, c))
		core.AddSlice(nn0, env.WestEdge(core, b), tensor.All(), tensor.All(), tensor.All(), tensor.At(0))
		core.AddSlice(nn0, env.NorthEdge(core, c), tensor.All(), tensor.All(), tensor.At(0), tensor.All())

		// nn(σ̂11)[i][j] = b[i][j] + b[i+1][j] + c[i][j] + c[i][j+1]
		nn1 := core.Add(core.MatMul(s.kHat, b), core.MatMul(c, s.kHatT))
		core.AddSlice(nn1, env.SouthEdge(core, b), tensor.All(), tensor.All(), tensor.At(-1), tensor.All())
		core.AddSlice(nn1, env.EastEdge(core, c), tensor.All(), tensor.All(), tensor.All(), tensor.At(-1))

		s.planes[plane00] = flipPlane(core, a, nn0, probs0, factor)
		s.planes[plane11] = flipPlane(core, d, nn1, probs1, factor)
		return
	}

	// White: plane 01 sites (2i, 2j+1), plane 10 sites (2i+1, 2j).
	probs0 := s.planeProbs(core, sk, step, 0, 1)
	probs1 := s.planeProbs(core, sk, step, 1, 0)

	// nn(σ̂01)[i][j] = a[i][j] + a[i][j+1] + d[i-1][j] + d[i][j]
	nn0 := core.Add(core.MatMul(a, s.kHatT), core.MatMul(s.kHatT, d))
	core.AddSlice(nn0, env.EastEdge(core, a), tensor.All(), tensor.All(), tensor.All(), tensor.At(-1))
	core.AddSlice(nn0, env.NorthEdge(core, d), tensor.All(), tensor.All(), tensor.At(0), tensor.All())

	// nn(σ̂10)[i][j] = d[i][j-1] + d[i][j] + a[i][j] + a[i+1][j]
	nn1 := core.Add(core.MatMul(d, s.kHat), core.MatMul(s.kHat, a))
	core.AddSlice(nn1, env.WestEdge(core, d), tensor.All(), tensor.All(), tensor.All(), tensor.At(0))
	core.AddSlice(nn1, env.SouthEdge(core, a), tensor.All(), tensor.All(), tensor.At(-1), tensor.All())

	s.planes[plane01] = flipPlane(core, b, nn0, probs0, factor)
	s.planes[plane10] = flipPlane(core, c, nn1, probs1, factor)
}

// planeProbs generates the rank-4 tensor of site-keyed uniforms for the
// compact plane whose sites sit at (2i + parityRow, 2j + parityCol) in the
// per-core lattice, offset by the core's global position.
func (s *CompactState) planeProbs(core *tensorcore.Core, sk *rng.SiteKeyed, step uint64, parityRow, parityCol int) *tensor.Tensor {
	rows, cols := s.Rows/2, s.Cols/2
	flat := core.RandomUniformSites(s.DType, sk, step,
		s.RowOff+parityRow, s.ColOff+parityCol, rows, cols, 2, 2)
	return core.Tile4D(flat, s.Tile, s.Tile)
}

// UpdateNaive performs one colour update of Algorithm 1 on a tiled state:
// the nearest-neighbour sums are computed for every site, the acceptance is
// evaluated for every site, and the mask restricts the flips to the active
// colour.
func UpdateNaive(core *tensorcore.Core, env BoundaryEnv, s *TiledState,
	color checkerboard.Color, beta float64, sk *rng.SiteKeyed, step uint64) {
	checkCore(core)
	factor := acceptFactor(beta)
	sigma := s.lattice

	// Line 1: probabilities for every site (the redundancy Algorithm 2
	// eliminates).
	flat := core.RandomUniformSites(s.DType, sk, step, s.RowOff, s.ColOff, s.Rows, s.Cols, 1, 1)
	probs := core.Tile4D(flat, s.Tile, s.Tile)

	// Lines 2-6: nearest-neighbour sums with boundary compensation.
	nn := core.Add(core.MatMul(sigma, s.kernel), core.MatMul(s.kernel, sigma))
	core.AddSlice(nn, env.NorthEdge(core, sigma), tensor.All(), tensor.All(), tensor.At(0), tensor.All())
	core.AddSlice(nn, env.SouthEdge(core, sigma), tensor.All(), tensor.All(), tensor.At(-1), tensor.All())
	core.AddSlice(nn, env.WestEdge(core, sigma), tensor.All(), tensor.All(), tensor.All(), tensor.At(0))
	core.AddSlice(nn, env.EastEdge(core, sigma), tensor.All(), tensor.All(), tensor.All(), tensor.At(-1))

	// Lines 7-10: acceptance, mask, flips, update.
	acc := core.Exp(core.Scale(core.Mul(nn, sigma), factor))
	mask := s.maskB
	if color == checkerboard.White {
		mask = s.maskW
	}
	flips := core.Mul(core.Less(probs, acc), mask)
	s.lattice = core.Sub(sigma, core.Scale(core.Mul(flips, sigma), 2))
}

// UpdateConv performs one colour update of the appendix implementation: the
// nearest-neighbour sums come from a single periodic 2-D convolution. It
// supports the single-core (torus) case; the distributed benchmarks of the
// conv variant are reproduced through the performance model.
func UpdateConv(core *tensorcore.Core, s *ConvState,
	color checkerboard.Color, beta float64, sk *rng.SiteKeyed, step uint64) {
	checkCore(core)
	factor := acceptFactor(beta)
	sigma := s.lattice

	probs := core.RandomUniformSites(s.DType, sk, step, s.RowOff, s.ColOff, s.Rows, s.Cols, 1, 1)
	nn := core.Conv2DWrap(sigma, s.kernel)
	acc := core.Exp(core.Scale(core.Mul(nn, sigma), factor))
	mask := s.maskB
	if color == checkerboard.White {
		mask = s.maskW
	}
	flips := core.Mul(core.Less(probs, acc), mask)
	s.lattice = core.Sub(sigma, core.Scale(core.Mul(flips, sigma), 2))
}
