package tpu

import (
	"fmt"

	"tpuising/internal/device/metrics"
	"tpuising/internal/device/tensorcore"
	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/rng"
	"tpuising/internal/tensor"
)

// Algorithm selects which of the paper's update kernels the simulator runs.
type Algorithm int

const (
	// AlgOptim is Algorithm 2 (the compact representation); the default and
	// the variant used for the paper's headline benchmarks.
	AlgOptim Algorithm = iota
	// AlgNaive is Algorithm 1 (full lattice with mask).
	AlgNaive
	// AlgConv is the appendix convolution-based implementation.
	AlgConv
)

// String returns the algorithm's name as used in the benchmark tables.
func (a Algorithm) String() string {
	switch a {
	case AlgOptim:
		return "optim (Algorithm 2)"
	case AlgNaive:
		return "naive (Algorithm 1)"
	case AlgConv:
		return "conv (appendix)"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config describes a single-core simulation.
type Config struct {
	// Rows and Cols are the lattice dimensions.
	Rows, Cols int
	// Temperature is in units of J/kB.
	Temperature float64
	// TileSize is the MXU tile edge (128 on hardware; smaller in tests).
	// Defaults to 128 when zero.
	TileSize int
	// DType selects float32 or bfloat16 storage. Defaults to bfloat16, the
	// precision the paper's headline benchmarks use.
	DType tensor.DType
	// Algorithm selects the update kernel. Defaults to AlgOptim.
	Algorithm Algorithm
	// Seed seeds the site-keyed random stream.
	Seed uint64
	// Initial is an optional rank-2 +-1 spin tensor; a cold (all +1) lattice
	// is used when nil.
	Initial *tensor.Tensor
	// UseFloat32 forces float32 even though DType's zero value is Float32;
	// kept for clarity in callers that spell the precision out.
	UseFloat32 bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.TileSize == 0 {
		out.TileSize = 128
	}
	if out.Temperature == 0 {
		out.Temperature = ising.CriticalTemperature()
	}
	return out
}

// Simulator runs the checkerboard Markov chain on a single simulated
// TensorCore.
type Simulator struct {
	cfg  Config
	core *tensorcore.Core
	beta float64
	sk   *rng.SiteKeyed
	step uint64

	compact *CompactState
	tiled   *TiledState
	conv    *ConvState
}

// NewSimulator builds a single-core simulator from the config.
func NewSimulator(cfg Config) *Simulator {
	c := cfg.withDefaults()
	core := tensorcore.New(0)
	init := c.Initial
	if init == nil {
		init = ColdLattice(c.DType, c.Rows, c.Cols)
	}
	if init.Dim(0) != c.Rows || init.Dim(1) != c.Cols {
		panic(fmt.Sprintf("tpu: initial lattice %v does not match config %dx%d", init.Shape(), c.Rows, c.Cols))
	}
	s := &Simulator{
		cfg:  c,
		core: core,
		beta: ising.Beta(c.Temperature),
		sk:   rng.NewSiteKeyed(c.Seed),
	}
	switch c.Algorithm {
	case AlgOptim:
		s.compact = NewCompactState(init, c.TileSize, c.DType, 0, 0)
	case AlgNaive:
		s.tiled = NewTiledState(init, c.TileSize, c.DType, 0, 0)
	case AlgConv:
		s.conv = NewConvState(init, c.DType, 0, 0)
	default:
		panic("tpu: unknown algorithm")
	}
	return s
}

// Core exposes the simulated TensorCore (for profiling).
func (s *Simulator) Core() *tensorcore.Core { return s.core }

// Config returns the (defaulted) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// StepCount returns the number of colour updates performed so far.
func (s *Simulator) StepCount() uint64 { return s.step }

// Step is StepCount under the name the ising.Backend interface uses.
func (s *Simulator) Step() uint64 { return s.step }

// Name identifies the engine in tables and benchmark output.
func (s *Simulator) Name() string { return "tpu" }

// Sweep performs one whole-lattice update (black then white), the unit of
// Monte-Carlo time used in all the paper's throughput numbers.
func (s *Simulator) Sweep() {
	env := TorusEnv{}
	switch s.cfg.Algorithm {
	case AlgOptim:
		UpdateOptim(s.core, env, s.compact, checkerboard.Black, s.beta, s.sk, s.step)
		UpdateOptim(s.core, env, s.compact, checkerboard.White, s.beta, s.sk, s.step+1)
	case AlgNaive:
		UpdateNaive(s.core, env, s.tiled, checkerboard.Black, s.beta, s.sk, s.step)
		UpdateNaive(s.core, env, s.tiled, checkerboard.White, s.beta, s.sk, s.step+1)
	case AlgConv:
		UpdateConv(s.core, s.conv, checkerboard.Black, s.beta, s.sk, s.step)
		UpdateConv(s.core, s.conv, checkerboard.White, s.beta, s.sk, s.step+1)
	}
	s.step += 2
}

// Run performs n sweeps.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Sweep()
	}
}

// LatticeTensor returns the current spin configuration as a rank-2 tensor.
func (s *Simulator) LatticeTensor() *tensor.Tensor {
	switch s.cfg.Algorithm {
	case AlgOptim:
		return s.compact.ToTensor()
	case AlgNaive:
		return s.tiled.ToTensor()
	default:
		return s.conv.ToTensor()
	}
}

// Magnetization returns the magnetisation per spin of the current state.
func (s *Simulator) Magnetization() float64 {
	var sum float64
	var n int
	switch s.cfg.Algorithm {
	case AlgOptim:
		sum, n = s.compact.SumSpins(), s.compact.N()
	case AlgNaive:
		sum, n = s.tiled.SumSpins(), s.tiled.N()
	default:
		sum, n = s.conv.SumSpins(), s.conv.N()
	}
	return sum / float64(n)
}

// Energy returns the energy per spin of the current state.
func (s *Simulator) Energy() float64 {
	return ising.EnergyOfTensor(s.LatticeTensor().AsType(tensor.Float32))
}

// N returns the number of spins.
func (s *Simulator) N() int { return s.cfg.Rows * s.cfg.Cols }

// Counts returns the device work counters accumulated since the last reset.
func (s *Simulator) Counts() metrics.Counts { return s.core.Counts() }

// ResetCounts clears the device work counters (e.g. after burn-in).
func (s *Simulator) ResetCounts() { s.core.ResetCounts() }

// SetTemperature changes the simulation temperature (the chain continues
// from the current configuration, as in an annealing schedule).
func (s *Simulator) SetTemperature(t float64) {
	s.cfg.Temperature = t
	s.beta = ising.Beta(t)
}
