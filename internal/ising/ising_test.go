package ising

import (
	"math"
	"testing"
	"testing/quick"

	"tpuising/internal/rng"
	"tpuising/internal/tensor"
)

func TestCriticalTemperature(t *testing.T) {
	// Tc = 2/ln(1+sqrt(2)) = 2.269185...
	if math.Abs(CriticalTemperature()-2.269185314213022) > 1e-12 {
		t.Errorf("Tc = %v", CriticalTemperature())
	}
}

func TestBeta(t *testing.T) {
	if Beta(2) != 0.5 {
		t.Error("Beta(2)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Beta(0) should panic")
		}
	}()
	Beta(0)
}

func TestOnsagerMagnetization(t *testing.T) {
	// Zero at and above Tc.
	if OnsagerMagnetization(CriticalTemperature()) != 0 || OnsagerMagnetization(3.0) != 0 {
		t.Error("magnetisation above Tc must be 0")
	}
	// Close to 1 at very low temperature.
	if m := OnsagerMagnetization(0.5); m < 0.999 {
		t.Errorf("m(0.5) = %v", m)
	}
	// Known value: m(2.0) ~ 0.9113.
	if m := OnsagerMagnetization(2.0); math.Abs(m-0.9113) > 0.001 {
		t.Errorf("m(2.0) = %v, want ~0.9113", m)
	}
	// Monotonically decreasing in T.
	prev := 1.1
	for temp := 0.5; temp < CriticalTemperature(); temp += 0.1 {
		m := OnsagerMagnetization(temp)
		if m >= prev {
			t.Fatalf("m(T) not decreasing at T=%v", temp)
		}
		prev = m
	}
}

func TestExactEnergyPerSpin(t *testing.T) {
	// Ground state energy per spin is -2J as T -> 0.
	if e := ExactEnergyPerSpin(0.1); math.Abs(e+2) > 1e-6 {
		t.Errorf("E(0.1) = %v, want -2", e)
	}
	// Known value at Tc: E = -sqrt(2) J.
	if e := ExactEnergyPerSpin(CriticalTemperature()); math.Abs(e+math.Sqrt2) > 0.01 {
		t.Errorf("E(Tc) = %v, want %v", e, -math.Sqrt2)
	}
	// High temperature: energy approaches 0 from below.
	if e := ExactEnergyPerSpin(100); e > 0 || e < -0.1 {
		t.Errorf("E(100) = %v", e)
	}
}

func TestLatticeBasics(t *testing.T) {
	l := NewLattice(4, 6)
	if l.N() != 24 {
		t.Fatal("N")
	}
	if l.Magnetization() != 1 {
		t.Error("cold lattice magnetisation should be 1")
	}
	if l.Energy() != -2 {
		t.Errorf("cold lattice energy per spin = %v, want -2", l.Energy())
	}
	l.Set(1, 2, -1)
	if l.At(1, 2) != -1 {
		t.Error("Set/At")
	}
	l.Flip(1, 2)
	if l.At(1, 2) != 1 {
		t.Error("Flip")
	}
	// Torus wrapping of At.
	if l.At(-1, -1) != l.At(3, 5) || l.At(4, 6) != l.At(0, 0) {
		t.Error("wrapping")
	}
}

func TestLatticePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLattice(0, 5) },
		func() { NewLattice(5, 5).Set(0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNeighborSum(t *testing.T) {
	l := NewLattice(3, 3)
	if l.NeighborSum(1, 1) != 4 {
		t.Error("cold neighbour sum should be 4")
	}
	l.Set(0, 1, -1)
	if l.NeighborSum(1, 1) != 2 {
		t.Error("neighbour sum after one flip should be 2")
	}
	// Wrapping: the neighbours of (0,0) on a 3x3 torus include (2,0) and (0,2).
	l2 := NewLattice(3, 3)
	l2.Set(2, 0, -1)
	l2.Set(0, 2, -1)
	if l2.NeighborSum(0, 0) != 0 {
		t.Errorf("wrapped neighbour sum = %d, want 0", l2.NeighborSum(0, 0))
	}
}

func TestRandomLatticeRoughlyBalanced(t *testing.T) {
	l := NewRandomLattice(64, 64, rng.New(3))
	m := l.Magnetization()
	if math.Abs(m) > 0.1 {
		t.Errorf("hot lattice magnetisation = %v, expected ~0", m)
	}
	if math.Abs(l.Energy()) > 0.1 {
		t.Errorf("hot lattice energy per spin = %v, expected ~0", l.Energy())
	}
}

func TestEnergyBounds(t *testing.T) {
	f := func(seed uint64) bool {
		l := NewRandomLattice(8, 8, rng.New(seed))
		e := l.Energy()
		m := l.Magnetization()
		return e >= -2 && e <= 2 && m >= -1 && m <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFlipEnergyChange(t *testing.T) {
	// dE of a single flip equals 2*J*s*NeighborSum, the quantity the
	// Metropolis acceptance uses.
	l := NewRandomLattice(6, 6, rng.New(9))
	e0 := l.Energy() * float64(l.N())
	r, c := 2, 3
	s := float64(l.At(r, c))
	nn := float64(l.NeighborSum(r, c))
	l.Flip(r, c)
	e1 := l.Energy() * float64(l.N())
	want := 2 * J * s * nn
	if math.Abs((e1-e0)-want) > 1e-9 {
		t.Errorf("dE = %v, want %v", e1-e0, want)
	}
}

func TestCloneEqual(t *testing.T) {
	l := NewRandomLattice(5, 7, rng.New(1))
	c := l.Clone()
	if !l.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Flip(0, 0)
	if l.Equal(c) {
		t.Fatal("clone aliases original")
	}
	if l.Equal(NewLattice(5, 8)) {
		t.Fatal("different shapes compare equal")
	}
}

func TestTensorRoundTrip(t *testing.T) {
	l := NewRandomLattice(6, 10, rng.New(2))
	tt := l.ToTensor(tensor.Float32)
	back := FromTensor(tt)
	if !l.Equal(back) {
		t.Fatal("tensor round trip failed")
	}
	if math.Abs(MagnetizationOfTensor(tt)-l.Magnetization()) > 1e-12 {
		t.Error("MagnetizationOfTensor mismatch")
	}
	if math.Abs(EnergyOfTensor(tt)-l.Energy()) > 1e-9 {
		t.Errorf("EnergyOfTensor = %v, lattice = %v", EnergyOfTensor(tt), l.Energy())
	}
}

func TestFromTensorRejectsZeros(t *testing.T) {
	tt := tensor.Zeros(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero spins")
		}
	}()
	FromTensor(tt)
}

func TestMagnetizationEnergyConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		l := NewRandomLattice(10, 10, rng.New(seed))
		tt := l.ToTensor(tensor.Float32)
		return math.Abs(EnergyOfTensor(tt)-l.Energy()) < 1e-9 &&
			math.Abs(MagnetizationOfTensor(tt)-l.Magnetization()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
