package ising

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Snapshot is a point-in-time capture of one backend's chain state: the spin
// configuration, the serialized random-generator state, the colour-step
// counter and the simulation temperature. Because every engine in this
// repository draws its randoms as a pure function of (key, step, site), a
// snapshot plus the engine's deterministic update rule reproduce the rest of
// the chain bit-exactly — an engine restored from a snapshot in a fresh
// process continues exactly the run it was taken from (asserted by the
// checkpoint/resume determinism tests in internal/service).
type Snapshot struct {
	// Backend is the engine's registry name (ising.Backend.Name()); Restore
	// refuses a snapshot taken from a different engine type.
	Backend string
	// Rows and Cols are the lattice dimensions.
	Rows, Cols int
	// Temperature is the simulation temperature at capture time, in J/kB.
	Temperature float64
	// Step is the number of colour updates performed (Backend.Step()).
	Step uint64
	// RNG is the engine's serialized random-generator state (for the keyed
	// engines, the 8-byte Philox key).
	RNG []byte
	// Spins is the packed spin configuration: one bit per site in row-major
	// order, bit (i%8) of byte (i/8), set for spin +1. This is byte-for-byte
	// the multispin engine's word layout dumped little-endian, so the packed
	// engines snapshot without unpacking.
	Spins []byte
}

// Snapshotter is the optional extension of Backend implemented by engines
// that can checkpoint and restore their chain state. The simulation service
// (internal/service) checkpoints jobs through it every K sweeps, so a
// restarted daemon resumes bit-identically. The host engines implement it
// (checkerboard, gpusim, multispin, multispin-shared).
type Snapshotter interface {
	Backend
	// Snapshot captures the chain state.
	Snapshot() (*Snapshot, error)
	// Restore replaces the chain state with one previously captured from an
	// engine of the same type and lattice size.
	Restore(*Snapshot) error
}

// snapshotMagic versions the encoded form; bump the trailing digit on layout
// changes.
var snapshotMagic = [8]byte{'I', 'S', 'N', 'A', 'P', 'V', '1', '\n'}

// PackedSpinBytes returns the size of the packed spin configuration of a
// rows x cols lattice.
func PackedSpinBytes(rows, cols int) int { return (rows*cols + 7) / 8 }

// EncodedSnapshotBytes returns the exact size of EncodeSnapshot's output for
// a snapshot with the given backend-name length, RNG-state length and lattice
// dimensions. internal/perf's checkpoint-traffic model reproduces this
// formula (asserted equal by test), so keep the two in sync.
func EncodedSnapshotBytes(nameLen, rngLen, rows, cols int) int {
	return len(snapshotMagic) + 2 + nameLen + 4 + 4 + 8 + 8 + 4 + rngLen + 4 + PackedSpinBytes(rows, cols)
}

// EncodeSnapshot serializes a snapshot (little-endian, magic-prefixed):
//
//	magic[8] | u16 len(name) name | u32 rows | u32 cols |
//	f64 temperature | u64 step | u32 len(rng) rng | u32 len(spins) spins
func EncodeSnapshot(s *Snapshot) []byte {
	out := make([]byte, 0, EncodedSnapshotBytes(len(s.Backend), len(s.RNG), s.Rows, s.Cols))
	out = append(out, snapshotMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Backend)))
	out = append(out, s.Backend...)
	out = binary.LittleEndian.AppendUint32(out, uint32(s.Rows))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.Cols))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Temperature))
	out = binary.LittleEndian.AppendUint64(out, s.Step)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.RNG)))
	out = append(out, s.RNG...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Spins)))
	return append(out, s.Spins...)
}

// DecodeSnapshot parses a snapshot serialized by EncodeSnapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r := snapReader{data: data}
	var magic [8]byte
	copy(magic[:], r.bytes(8))
	if r.err == nil && magic != snapshotMagic {
		return nil, fmt.Errorf("ising: not a snapshot (bad magic %q)", magic[:])
	}
	s := &Snapshot{}
	s.Backend = string(r.bytes(int(r.u16())))
	s.Rows = int(r.u32())
	s.Cols = int(r.u32())
	s.Temperature = math.Float64frombits(r.u64())
	s.Step = r.u64()
	s.RNG = append([]byte(nil), r.bytes(int(r.u32()))...)
	s.Spins = append([]byte(nil), r.bytes(int(r.u32()))...)
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != r.off {
		return nil, fmt.Errorf("ising: %d trailing bytes after snapshot", len(r.data)-r.off)
	}
	if s.Rows <= 0 || s.Cols <= 0 {
		return nil, fmt.Errorf("ising: snapshot has invalid lattice size %dx%d", s.Rows, s.Cols)
	}
	// Dimensions are attacker-controlled u32s: guard the rows*cols product
	// against int overflow before any size arithmetic trusts it. (The spin
	// payload itself was already bounds-checked against the input length, so
	// a huge claimed size can never allocate — it just fails here.)
	if s.Rows > (math.MaxInt-7)/s.Cols {
		return nil, fmt.Errorf("ising: snapshot lattice size %dx%d overflows", s.Rows, s.Cols)
	}
	if want := PackedSpinBytes(s.Rows, s.Cols); len(s.Spins) != want {
		return nil, fmt.Errorf("ising: snapshot has %d spin bytes, want %d for %dx%d", len(s.Spins), want, s.Rows, s.Cols)
	}
	return s, nil
}

// Check verifies that a snapshot belongs to the named engine at the given
// lattice size (the shared validation of every Restore implementation).
func (s *Snapshot) Check(backend string, rows, cols int) error {
	if s.Backend != backend {
		return fmt.Errorf("ising: snapshot was taken from backend %q, restoring into %q", s.Backend, backend)
	}
	if s.Rows != rows || s.Cols != cols {
		return fmt.Errorf("ising: snapshot is %dx%d, engine is %dx%d", s.Rows, s.Cols, rows, cols)
	}
	if want := PackedSpinBytes(rows, cols); len(s.Spins) != want {
		return fmt.Errorf("ising: snapshot has %d spin bytes, want %d", len(s.Spins), want)
	}
	if s.Temperature <= 0 {
		return fmt.Errorf("ising: snapshot temperature %g is not positive", s.Temperature)
	}
	return nil
}

// PackSpins returns the lattice's packed spin configuration in the Snapshot
// bit layout (one bit per site, row-major, LSB-first, set for +1).
func (l *Lattice) PackSpins() []byte {
	out := make([]byte, PackedSpinBytes(l.Rows, l.Cols))
	for i, s := range l.Spins {
		if s == 1 {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// UnpackSpins overwrites the lattice's spins from a packed configuration
// produced by PackSpins (or by a packed engine's snapshot).
func (l *Lattice) UnpackSpins(data []byte) error {
	if len(data) != PackedSpinBytes(l.Rows, l.Cols) {
		return fmt.Errorf("ising: packed spins are %d bytes, want %d for %dx%d",
			len(data), PackedSpinBytes(l.Rows, l.Cols), l.Rows, l.Cols)
	}
	for i := range l.Spins {
		if data[i/8]>>(uint(i)%8)&1 == 1 {
			l.Spins[i] = 1
		} else {
			l.Spins[i] = -1
		}
	}
	return nil
}

// snapReader is a cursor over an encoded snapshot that records the first
// out-of-bounds read instead of panicking.
type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("ising: snapshot truncated at byte %d", r.off)
		return nil
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

func (r *snapReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *snapReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
