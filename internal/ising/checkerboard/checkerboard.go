// Package checkerboard implements the plain CPU checkerboard (red/black)
// Metropolis sweep for the 2-D Ising model, the algorithm of Section 3.1 of
// the paper.  Fixing all spins of one colour, the spins of the other colour
// do not interact and can be updated simultaneously; alternating the two
// colours gives a Markov chain with the Boltzmann stationary distribution.
//
// Two variants are provided:
//
//   - Sweep / UpdateColor: a serial reference whose floating-point arithmetic
//     and site-keyed random numbers are bit-identical to the TPU tensor
//     kernels in internal/ising/tpu, so the tensor implementations can be
//     validated spin-for-spin against it.
//   - ParallelSweep: a multi-goroutine version used as the "CPU baseline" in
//     the benchmark harness.
package checkerboard

import (
	"math"
	"runtime"
	"sync"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// Color selects which checkerboard colour is updated.
type Color int

const (
	// Black sites have even (row+col) parity.
	Black Color = iota
	// White sites have odd (row+col) parity.
	White
)

// String returns the colour name.
func (c Color) String() string {
	if c == Black {
		return "black"
	}
	return "white"
}

// Parity returns the (row+col) % 2 value of the colour.
func (c Color) Parity() int { return int(c) }

// UpdateColor performs one Metropolis update of every site of the given
// colour, using the site-keyed generator: the uniform for lattice site
// (r, c) at this update is sk.Uniform(step, rowOff+r, colOff+c).  The offsets
// give the lattice's position in a larger global lattice (0 for a standalone
// lattice), which is what makes a domain-decomposed run identical to a
// single-domain run.
//
// The arithmetic intentionally mirrors the tensor kernels: the acceptance
// ratio is computed as exp(float32(nn*s) * float32(-2*beta)) and compared in
// float32 against the uniform.
func UpdateColor(l *ising.Lattice, color Color, beta float64, sk *rng.SiteKeyed, step uint64, rowOff, colOff int) {
	factor := float32(-2 * beta * ising.J)
	for r := 0; r < l.Rows; r++ {
		// Within a row, sites of one colour occupy every other column.
		start := (int(color) - r%2 + 2) % 2
		for c := start; c < l.Cols; c += 2 {
			s := float32(l.At(r, c))
			nn := float32(l.NeighborSum(r, c))
			acc := float32(math.Exp(float64(nn * s * factor)))
			u := sk.Uniform(step, rowOff+r, colOff+c)
			if u < acc {
				l.Flip(r, c)
			}
		}
	}
}

// Sweep performs one whole-lattice update: all black sites, then all white
// sites, consuming two step indices (step for black, step+1 for white). It
// returns the next unused step index.
func Sweep(l *ising.Lattice, beta float64, sk *rng.SiteKeyed, step uint64) uint64 {
	UpdateColor(l, Black, beta, sk, step, 0, 0)
	UpdateColor(l, White, beta, sk, step+1, 0, 0)
	return step + 2
}

// Sampler wraps a lattice with the checkerboard chain state.
type Sampler struct {
	Lattice *ising.Lattice
	Beta    float64

	temperature float64 // the T that Beta was derived from, kept for snapshots
	sk          *rng.SiteKeyed
	step        uint64
}

// NewSampler returns a checkerboard sampler at temperature T.
func NewSampler(l *ising.Lattice, temperature float64, seed uint64) *Sampler {
	return &Sampler{Lattice: l, Beta: ising.Beta(temperature), temperature: temperature, sk: rng.NewSiteKeyed(seed)}
}

// Sweep advances the chain by one whole-lattice update.
func (s *Sampler) Sweep() {
	s.step = Sweep(s.Lattice, s.Beta, s.sk, s.step)
}

// Run performs n sweeps.
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Sweep()
	}
}

// Step returns the number of colour updates performed so far.
func (s *Sampler) Step() uint64 { return s.step }

// N returns the number of spins.
func (s *Sampler) N() int { return s.Lattice.N() }

// SetTemperature changes the simulation temperature; the chain continues from
// the current configuration (used by the replica-exchange layer).
func (s *Sampler) SetTemperature(t float64) {
	s.Beta = ising.Beta(t)
	s.temperature = t
}

// Name identifies the engine; the Sampler is the serial reference.
func (s *Sampler) Name() string { return "checkerboard" }

// Magnetization returns the magnetisation per spin.
func (s *Sampler) Magnetization() float64 { return s.Lattice.Magnetization() }

// Energy returns the energy per spin.
func (s *Sampler) Energy() float64 { return s.Lattice.Energy() }

// Counts reports the attempted spin updates in Ops; the sampler runs on the
// host, so no device work is modelled.
func (s *Sampler) Counts() metrics.Counts {
	return metrics.Counts{Ops: int64(s.step) * int64(s.Lattice.N()) / 2}
}

// ParallelSweep performs one whole-lattice update using worker goroutines
// that partition the rows; it is the multi-core CPU baseline. Within one
// colour update no two updated sites interact, so row partitioning is safe.
// It uses the same site-keyed random numbers as Sweep and therefore produces
// an identical chain.
func ParallelSweep(l *ising.Lattice, beta float64, sk *rng.SiteKeyed, step uint64, workers int) uint64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > l.Rows {
		workers = l.Rows
	}
	for _, color := range []Color{Black, White} {
		var wg sync.WaitGroup
		rowsPer := (l.Rows + workers - 1) / workers
		for w := 0; w < workers; w++ {
			r0 := w * rowsPer
			r1 := r0 + rowsPer
			if r1 > l.Rows {
				r1 = l.Rows
			}
			if r0 >= r1 {
				break
			}
			wg.Add(1)
			go func(r0, r1 int, step uint64) {
				defer wg.Done()
				updateColorRows(l, color, beta, sk, step, r0, r1)
			}(r0, r1, step)
		}
		wg.Wait()
		step++
	}
	return step
}

// updateColorRows updates the sites of one colour in rows [r0, r1).
func updateColorRows(l *ising.Lattice, color Color, beta float64, sk *rng.SiteKeyed, step uint64, r0, r1 int) {
	factor := float32(-2 * beta * ising.J)
	for r := r0; r < r1; r++ {
		start := (int(color) - r%2 + 2) % 2
		for c := start; c < l.Cols; c += 2 {
			s := float32(l.At(r, c))
			nn := float32(l.NeighborSum(r, c))
			acc := float32(math.Exp(float64(nn * s * factor)))
			if sk.Uniform(step, r, c) < acc {
				l.Flip(r, c)
			}
		}
	}
}
