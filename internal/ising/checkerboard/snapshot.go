package checkerboard

import (
	"tpuising/internal/ising"
)

// Snapshot captures the sampler's chain state: packed spins, the site-keyed
// generator key, the colour-step counter and the temperature. The sampler
// satisfies ising.Snapshotter, so the simulation service can checkpoint and
// resume checkerboard jobs bit-identically.
func (s *Sampler) Snapshot() (*ising.Snapshot, error) {
	rngState, err := s.sk.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &ising.Snapshot{
		Backend:     s.Name(),
		Rows:        s.Lattice.Rows,
		Cols:        s.Lattice.Cols,
		Temperature: s.temperature,
		Step:        s.step,
		RNG:         rngState,
		Spins:       s.Lattice.PackSpins(),
	}, nil
}

// Restore replaces the sampler's chain state with a snapshot previously taken
// from a checkerboard sampler of the same lattice size.
func (s *Sampler) Restore(snap *ising.Snapshot) error {
	if err := snap.Check(s.Name(), s.Lattice.Rows, s.Lattice.Cols); err != nil {
		return err
	}
	if err := s.sk.UnmarshalBinary(snap.RNG); err != nil {
		return err
	}
	if err := s.Lattice.UnpackSpins(snap.Spins); err != nil {
		return err
	}
	s.SetTemperature(snap.Temperature)
	s.step = snap.Step
	return nil
}
