package checkerboard

import (
	"math"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/metropolis"
	"tpuising/internal/rng"
	"tpuising/internal/stats"
)

func TestColorCoverageAndDisjointness(t *testing.T) {
	// One black update plus one white update must touch every site exactly
	// once: at infinite temperature (beta=0) every proposal is accepted
	// (exp(0)=1 > u), so a full sweep flips every spin exactly once.
	l := ising.NewLattice(6, 8)
	sk := rng.NewSiteKeyed(1)
	Sweep(l, 0.0001, sk, 0) // beta ~ 0: acceptance ~ 1 for every site
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			if l.At(r, c) != -1 {
				t.Fatalf("site (%d,%d) not flipped exactly once", r, c)
			}
		}
	}
}

func TestColorString(t *testing.T) {
	if Black.String() != "black" || White.String() != "white" || Black.Parity() != 0 || White.Parity() != 1 {
		t.Error("colour labels")
	}
}

func TestUpdateColorOnlyTouchesThatColor(t *testing.T) {
	l := ising.NewRandomLattice(8, 8, rng.New(2))
	before := l.Clone()
	UpdateColor(l, Black, 0.0001, rng.NewSiteKeyed(3), 0, 0, 0)
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			changed := l.At(r, c) != before.At(r, c)
			isBlack := (r+c)%2 == 0
			if changed && !isBlack {
				t.Fatalf("white site (%d,%d) changed during black update", r, c)
			}
			if !changed && isBlack {
				t.Fatalf("black site (%d,%d) not flipped at beta~0", r, c)
			}
		}
	}
}

func TestSamplerColdPhase(t *testing.T) {
	l := ising.NewLattice(32, 32)
	s := NewSampler(l, 1.5, 4)
	s.Run(300)
	if m := math.Abs(l.Magnetization()); m < 0.9 {
		t.Errorf("|m|(T=1.5) = %v", m)
	}
	if s.Step() != 600 {
		t.Errorf("step counter = %d, want 600", s.Step())
	}
}

func TestSamplerHotPhase(t *testing.T) {
	l := ising.NewLattice(32, 32)
	s := NewSampler(l, 6.0, 5)
	s.Run(200)
	ms := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		s.Run(1)
		ms = append(ms, l.Magnetization())
	}
	if m := stats.Mean(ms); math.Abs(m) > 0.1 {
		t.Errorf("<m>(T=6) = %v", m)
	}
}

func TestAgreesWithMetropolisStatistics(t *testing.T) {
	// The checkerboard chain and the single-flip Metropolis chain share the
	// same stationary distribution; their estimates of <|m|> and <E> at the
	// same temperature must agree within combined error bars.
	const temperature = 2.0
	const burn, samples = 400, 600

	lc := ising.NewLattice(32, 32)
	cs := NewSampler(lc, temperature, 6)
	cs.Run(burn)
	var cbM, cbE []float64
	for i := 0; i < samples; i++ {
		cs.Run(1)
		cbM = append(cbM, math.Abs(lc.Magnetization()))
		cbE = append(cbE, lc.Energy())
	}

	lm := ising.NewLattice(32, 32)
	ms := metropolis.New(lm, temperature, 7)
	ms.Run(burn)
	var mM, mE []float64
	for i := 0; i < samples; i++ {
		ms.Run(1)
		mM = append(mM, math.Abs(lm.Magnetization()))
		mE = append(mE, lm.Energy())
	}

	if d := math.Abs(stats.Mean(cbM) - stats.Mean(mM)); d > 0.02 {
		t.Errorf("<|m|> differs: checkerboard %v vs metropolis %v", stats.Mean(cbM), stats.Mean(mM))
	}
	if d := math.Abs(stats.Mean(cbE) - stats.Mean(mE)); d > 0.03 {
		t.Errorf("<E> differs: checkerboard %v vs metropolis %v", stats.Mean(cbE), stats.Mean(mE))
	}
}

func TestMatchesOnsagerBelowTc(t *testing.T) {
	l := ising.NewLattice(48, 48)
	s := NewSampler(l, 1.9, 8)
	s.Run(400)
	var sum float64
	const samples = 400
	for i := 0; i < samples; i++ {
		s.Run(1)
		sum += math.Abs(l.Magnetization())
	}
	got := sum / samples
	want := ising.OnsagerMagnetization(1.9)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("<|m|>(1.9) = %v, Onsager %v", got, want)
	}
}

func TestBoltzmannMomentsExact4x4(t *testing.T) {
	// Exact check of the stationary distribution on a 4x4 torus: enumerate
	// all 2^16 states, compute the Boltzmann expectations of |m|, E, m^2 and
	// m^4, and compare against long-chain averages of the checkerboard
	// sampler. (A 2x2 torus is deliberately avoided: with doubled bonds the
	// zero-energy-difference moves become deterministic and the chain is not
	// ergodic on that degenerate geometry.)
	const temperature = 3.0
	beta := ising.Beta(temperature)
	const n = 4
	l := ising.NewLattice(n, n)

	var z, exAbsM, exE, exM2, exM4 float64
	for state := 0; state < 1<<(n*n); state++ {
		setState(l, state, n)
		e := l.Energy() * float64(l.N())
		w := math.Exp(-beta * e)
		m := l.Magnetization()
		z += w
		exAbsM += w * math.Abs(m)
		exE += w * l.Energy()
		exM2 += w * m * m
		exM4 += w * m * m * m * m
	}
	exAbsM /= z
	exE /= z
	exM2 /= z
	exM4 /= z

	setState(l, 0, n)
	s := NewSampler(l, temperature, 9)
	s.Run(2000)
	var gotAbsM, gotE, gotM2, gotM4 float64
	const samples = 300000
	for i := 0; i < samples; i++ {
		s.Sweep()
		m := l.Magnetization()
		gotAbsM += math.Abs(m)
		gotE += l.Energy()
		gotM2 += m * m
		gotM4 += m * m * m * m
	}
	gotAbsM /= samples
	gotE /= samples
	gotM2 /= samples
	gotM4 /= samples

	if math.Abs(gotAbsM-exAbsM) > 0.01 {
		t.Errorf("<|m|> = %.4f, exact %.4f", gotAbsM, exAbsM)
	}
	if math.Abs(gotE-exE) > 0.015 {
		t.Errorf("<E> = %.4f, exact %.4f", gotE, exE)
	}
	if math.Abs(gotM2-exM2) > 0.01 {
		t.Errorf("<m^2> = %.4f, exact %.4f", gotM2, exM2)
	}
	if math.Abs(gotM4-exM4) > 0.01 {
		t.Errorf("<m^4> = %.4f, exact %.4f", gotM4, exM4)
	}
}

func setState(l *ising.Lattice, bits, n int) {
	for i := 0; i < n*n; i++ {
		s := int8(1)
		if bits&(1<<i) != 0 {
			s = -1
		}
		l.Set(i/n, i%n, s)
	}
}

func TestParallelSweepIdenticalToSerial(t *testing.T) {
	// The parallel sweep uses the same site-keyed uniforms, so the chain must
	// be bit-identical to the serial sweep regardless of the worker count.
	serial := ising.NewRandomLattice(24, 24, rng.New(10))
	parallel := serial.Clone()
	sk1 := rng.NewSiteKeyed(77)
	sk2 := rng.NewSiteKeyed(77)
	var s1, s2 uint64
	for i := 0; i < 20; i++ {
		s1 = Sweep(serial, 0.44, sk1, s1)
		s2 = ParallelSweep(parallel, 0.44, sk2, s2, 5)
	}
	if !serial.Equal(parallel) {
		t.Fatal("parallel sweep diverged from serial sweep")
	}
	if s1 != s2 {
		t.Fatal("step counters diverged")
	}
}

func TestParallelSweepWorkerEdgeCases(t *testing.T) {
	l := ising.NewRandomLattice(8, 8, rng.New(11))
	ref := l.Clone()
	skA, skB := rng.NewSiteKeyed(5), rng.NewSiteKeyed(5)
	Sweep(ref, 0.3, skA, 0)
	// More workers than rows, and workers <= 0 (auto).
	ParallelSweep(l, 0.3, skB, 0, 100)
	if !l.Equal(ref) {
		t.Fatal("many-workers parallel sweep wrong")
	}
	l2 := ising.NewRandomLattice(8, 8, rng.New(11))
	skC := rng.NewSiteKeyed(5)
	ParallelSweep(l2, 0.3, skC, 0, 0)
	if !l2.Equal(ref) {
		t.Fatal("auto-workers parallel sweep wrong")
	}
}

func TestDecompositionOffsetsChangeStream(t *testing.T) {
	// Updating with a non-zero global offset must use different random
	// numbers (it is a different part of the global lattice).
	a := ising.NewRandomLattice(8, 8, rng.New(12))
	b := a.Clone()
	sk := rng.NewSiteKeyed(13)
	UpdateColor(a, Black, 0.44, sk, 0, 0, 0)
	UpdateColor(b, Black, 0.44, sk, 0, 8, 0)
	if a.Equal(b) {
		t.Fatal("offset should change the consumed random stream")
	}
}

func BenchmarkCheckerboardSweep256(b *testing.B) {
	l := ising.NewLattice(256, 256)
	s := NewSampler(l, 2.269, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sweep()
	}
	b.ReportMetric(float64(l.N())/1e6, "Mspins/sweep")
}

func BenchmarkParallelSweep1024(b *testing.B) {
	l := ising.NewLattice(1024, 1024)
	sk := rng.NewSiteKeyed(1)
	var step uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step = ParallelSweep(l, 0.4407, sk, step, 0)
	}
}
