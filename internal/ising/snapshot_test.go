package ising

import (
	"bytes"
	"testing"

	"tpuising/internal/rng"
)

func TestSnapshotCodecRoundTrip(t *testing.T) {
	l := NewRandomLattice(6, 10, rng.New(3))
	s := &Snapshot{
		Backend:     "checkerboard",
		Rows:        6,
		Cols:        10,
		Temperature: 2.269185314213022,
		Step:        1234567890123,
		RNG:         []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Spins:       l.PackSpins(),
	}
	enc := EncodeSnapshot(s)
	if want := EncodedSnapshotBytes(len(s.Backend), len(s.RNG), s.Rows, s.Cols); len(enc) != want {
		t.Fatalf("encoded %d bytes, EncodedSnapshotBytes says %d", len(enc), want)
	}
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != s.Backend || got.Rows != s.Rows || got.Cols != s.Cols ||
		got.Temperature != s.Temperature || got.Step != s.Step ||
		!bytes.Equal(got.RNG, s.RNG) || !bytes.Equal(got.Spins, s.Spins) {
		t.Fatalf("decoded snapshot differs: %+v vs %+v", got, s)
	}
	// Re-encoding the decoded snapshot must be byte-identical.
	if !bytes.Equal(EncodeSnapshot(got), enc) {
		t.Fatal("re-encoded snapshot differs from original encoding")
	}
}

func TestSnapshotDecodeRejectsCorruptInput(t *testing.T) {
	good := EncodeSnapshot(&Snapshot{
		Backend: "gpusim", Rows: 4, Cols: 4, Temperature: 2.5, Step: 8,
		RNG: make([]byte, 8), Spins: make([]byte, PackedSpinBytes(4, 4)),
	})
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOTASNAP"), good[8:]...),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte(nil), good...), 0),
		"short magic": good[:4],
	}
	for name, data := range cases {
		if _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("%s: DecodeSnapshot should fail", name)
		}
	}
}

func TestPackUnpackSpins(t *testing.T) {
	for _, size := range [][2]int{{2, 2}, {3, 5}, {4, 64}, {6, 128}} {
		l := NewRandomLattice(size[0], size[1], rng.New(uint64(size[0]*1000+size[1])))
		packed := l.PackSpins()
		if len(packed) != PackedSpinBytes(size[0], size[1]) {
			t.Fatalf("%v: packed %d bytes, want %d", size, len(packed), PackedSpinBytes(size[0], size[1]))
		}
		other := NewLattice(size[0], size[1])
		if err := other.UnpackSpins(packed); err != nil {
			t.Fatal(err)
		}
		if !l.Equal(other) {
			t.Fatalf("%v: unpacked lattice differs", size)
		}
	}
	l := NewLattice(4, 4)
	if err := l.UnpackSpins(make([]byte, 1)); err == nil {
		t.Fatal("wrong-size packed spins should be rejected")
	}
}

func TestSnapshotCheck(t *testing.T) {
	s := &Snapshot{Backend: "multispin", Rows: 4, Cols: 64, Temperature: 2.0,
		Spins: make([]byte, PackedSpinBytes(4, 64))}
	if err := s.Check("multispin", 4, 64); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if err := s.Check("checkerboard", 4, 64); err == nil {
		t.Fatal("backend mismatch should be rejected")
	}
	if err := s.Check("multispin", 8, 64); err == nil {
		t.Fatal("size mismatch should be rejected")
	}
	s.Temperature = 0
	if err := s.Check("multispin", 4, 64); err == nil {
		t.Fatal("non-positive temperature should be rejected")
	}
}
