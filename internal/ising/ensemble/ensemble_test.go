package ensemble

import (
	"math"
	"runtime"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/rng"
)

// newStandalone builds the multispin chain lane L of an ensemble must match:
// same lattice, lane-derived seed, per-site randoms.
func newStandalone(t *testing.T, rows, cols int, temp float64, seed uint64, lane int, hot bool) *multispin.Engine {
	t.Helper()
	cfg := multispin.Config{
		Rows: rows, Cols: cols, Temperature: temp,
		Seed: ising.LaneSeed(seed, lane),
	}
	if hot {
		cfg.Initial = ising.NewRandomLattice(rows, cols, rng.New(ising.LaneSeed(seed, lane)))
	}
	ms, err := multispin.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// assertLaneEqual compares one lane of the ensemble against a standalone
// multispin chain: spins, magnetisation and energy must be identical.
func assertLaneEqual(t *testing.T, e *Engine, lane int, ms *multispin.Engine, label string) {
	t.Helper()
	lat := e.LaneLattice(lane)
	ref := ms.Lattice()
	for i := range lat.Spins {
		if lat.Spins[i] != ref.Spins[i] {
			t.Fatalf("%s: lane %d spin %d is %d, standalone multispin has %d",
				label, lane, i, lat.Spins[i], ref.Spins[i])
		}
	}
	if m := e.Magnetizations()[lane]; m != ms.Magnetization() {
		t.Fatalf("%s: lane %d magnetisation %v, standalone %v", label, lane, m, ms.Magnetization())
	}
	if en := e.Energies()[lane]; en != ms.Energy() {
		t.Fatalf("%s: lane %d energy %v, standalone %v", label, lane, en, ms.Energy())
	}
}

// TestLaneEquivalence is the determinism contract of the packed engine: lane
// L of a B-lane ensemble is bit-identical (spins and observables) to a
// standalone multispin chain seeded with ising.LaneSeed(seed, L), for several
// lane counts, lattice sizes, cold and hot starts.
func TestLaneEquivalence(t *testing.T) {
	const sweeps = 12
	for _, tc := range []struct {
		rows, cols, lanes int
		hot               bool
	}{
		{8, 64, 1, false},
		{8, 64, 5, false},
		{6, 128, 64, false},
		{8, 64, 64, true},
	} {
		e, err := New(Config{
			Rows: tc.rows, Cols: tc.cols, Lanes: tc.lanes,
			Temperature: 2.3, Seed: 7, Hot: tc.hot,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(sweeps)
		for _, lane := range []int{0, tc.lanes / 2, tc.lanes - 1} {
			ms := newStandalone(t, tc.rows, tc.cols, 2.3, 7, lane, tc.hot)
			ms.Run(sweeps)
			assertLaneEqual(t, e, lane, ms, "cold/hot equivalence")
			if e.Step() != ms.Step() {
				t.Fatalf("step %d vs standalone %d", e.Step(), ms.Step())
			}
		}
	}
}

// TestLaneTemperatures: with per-lane temperatures, every lane matches a
// standalone multispin chain at that lane's temperature and derived seed —
// the property that lets a whole temperature scan or tempering ladder run as
// one ensemble.
func TestLaneTemperatures(t *testing.T) {
	temps := []float64{2.0, 2.3, 3.1}
	e, err := New(Config{Rows: 8, Cols: 64, Lanes: 3, Temperatures: temps, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	for lane, temp := range temps {
		ms := newStandalone(t, 8, 64, temp, 11, lane, false)
		ms.Run(10)
		assertLaneEqual(t, e, lane, ms, "per-lane temperature")
		if got := e.LaneTemperature(lane); got != temp {
			t.Fatalf("lane %d temperature %v, want %v", lane, got, temp)
		}
	}
}

// TestSetLaneTemperatureContinuesChain mirrors a tempering swap: changing one
// lane's temperature mid-run must continue that lane exactly like a
// standalone chain whose SetTemperature was called at the same step.
func TestSetLaneTemperatureContinuesChain(t *testing.T) {
	e, err := New(Config{Rows: 8, Cols: 64, Lanes: 4, Temperature: 2.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ms := newStandalone(t, 8, 64, 2.4, 3, 2, false)
	e.Run(6)
	ms.Run(6)
	e.SetLaneTemperature(2, 3.0)
	ms.SetTemperature(3.0)
	e.Run(6)
	ms.Run(6)
	assertLaneEqual(t, e, 2, ms, "mid-run temperature change")
	// An untouched lane keeps its original temperature chain.
	ref := newStandalone(t, 8, 64, 2.4, 3, 1, false)
	ref.Run(12)
	assertLaneEqual(t, e, 1, ref, "untouched lane")
}

// TestWorkerDeterminism: the ensemble state must be bit-identical for every
// worker count, in both random modes (the row-band halo snapshots make the
// chain independent of the banding, exactly like multispin).
func TestWorkerDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, shared := range []bool{false, true} {
		var want uint64
		for i, workers := range []int{1, 2, 5, 5} {
			runtime.GOMAXPROCS(4)
			e, err := New(Config{
				Rows: 16, Cols: 64, Lanes: 64, Temperature: 2.3, Seed: 5,
				SharedRandom: shared, Workers: workers, Hot: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			e.Run(8)
			h := e.Hash()
			if i == 0 {
				want = h
			} else if h != want {
				t.Fatalf("shared=%v workers=%d: hash %x, want %x", shared, workers, h, want)
			}
		}
	}
}

// TestSharedModeQuenchOrders: the shared-random mode is not lane-equivalent
// to multispin, so pin its physics the way the backend tests pin
// multispin-shared: a hot ensemble quenched far below Tc must order locally
// in every lane.
func TestSharedModeQuenchOrders(t *testing.T) {
	e, err := New(Config{
		Rows: 32, Cols: 64, Lanes: 64, Temperature: 0.5, Seed: 9,
		SharedRandom: true, Hot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, en := range e.Energies() {
		if math.Abs(en) > 0.25 {
			t.Fatalf("hot start E/spin = %.3f, want ~0", en)
		}
	}
	e.Run(300)
	for lane, en := range e.Energies() {
		if en > -1.7 {
			t.Errorf("lane %d: E/spin = %.3f after quench to T=0.5, want near -2", lane, en)
		}
	}
}

// TestCrossLaneIndependence is the physics check documented in
// docs/PHYSICS.md: in per-lane mode the lanes draw through independent keyed
// streams, so the covariance of their magnetisation series must vanish
// within statistical error. (In shared mode the lanes share class draws and
// weak cross-lane correlations are expected; that mode is excluded here by
// design.)
func TestCrossLaneIndependence(t *testing.T) {
	const lanes, burnIn, samples = 6, 100, 400
	e, err := New(Config{Rows: 16, Cols: 64, Lanes: lanes, Temperature: 3.5, Seed: 13, Hot: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(burnIn)
	series := make([][]float64, lanes)
	for s := 0; s < samples; s++ {
		e.Sweep()
		for l, m := range e.Magnetizations() {
			series[l] = append(series[l], m)
		}
	}
	mean := func(xs []float64) float64 {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	for a := 0; a < lanes; a++ {
		for b := a + 1; b < lanes; b++ {
			ma, mb := mean(series[a]), mean(series[b])
			var cov, va, vb float64
			for i := range series[a] {
				da, db := series[a][i]-ma, series[b][i]-mb
				cov += da * db
				va += da * da
				vb += db * db
			}
			corr := cov / math.Sqrt(va*vb)
			if math.Abs(corr) > 0.25 {
				t.Errorf("lanes %d,%d: magnetisation correlation %.3f, want ~0", a, b, corr)
			}
		}
	}
}

// TestConfigErrors exercises the constructor's validation.
func TestConfigErrors(t *testing.T) {
	bad := []Config{
		{Rows: 7, Cols: 64, Lanes: 2},                                    // odd rows
		{Rows: 8, Cols: 60, Lanes: 2},                                    // cols not a multiple of 64
		{Rows: 8, Cols: 64, Lanes: 0},                                    // no lanes
		{Rows: 8, Cols: 64, Lanes: 65},                                   // too many lanes
		{Rows: 8, Cols: 64, Lanes: 3, Temperatures: []float64{2.0, 2.1}}, // len mismatch
		{Rows: 8, Cols: 64, Lanes: 2, Temperatures: []float64{2.0, -1}},  // bad temperature
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestObservableCache: repeated reads at one step agree, and a sweep or a
// lattice load invalidates the cache.
func TestObservableCache(t *testing.T) {
	e, err := New(Config{Rows: 8, Cols: 64, Lanes: 8, Temperature: 2.5, Seed: 1, Hot: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	m1, m2 := e.Magnetizations(), e.Magnetizations()
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("repeated Magnetizations reads disagree")
		}
	}
	e.Sweep()
	if err := e.SetLaneLattice(0, ising.NewLattice(8, 64)); err != nil {
		t.Fatal(err)
	}
	if m := e.Magnetizations()[0]; m != 1 {
		t.Fatalf("lane 0 loaded all-up, magnetisation %v", m)
	}
}
