package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"tpuising/internal/ising"
)

// TestUpdateRowGoldenEquivalence pins the optimized batched ΔE-class loop to
// the retained naive reference (updateRowRef) bit-for-bit, across random
// lane counts, modes, ladders and steps — the ensemble half of the PR-10
// golden-equivalence contract (the multispin half lives in
// multispin/kernel_equiv_test.go). CI runs it under -race with and without
// the avx2 tag.
func TestUpdateRowGoldenEquivalence(t *testing.T) {
	prng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		lanes := 1 + prng.Intn(MaxLanes)
		shared := prng.Intn(2) == 1
		rows := 2 + 2*prng.Intn(3)
		cols := 64 * (1 + prng.Intn(3))
		var temps []float64
		if prng.Intn(2) == 1 { // non-uniform ladder exercises the slow shared path
			temps = make([]float64, lanes)
			for i := range temps {
				temps[i] = 1.5 + 2*prng.Float64()
			}
		}
		cfg := Config{
			Rows: rows, Cols: cols, Lanes: lanes,
			Temperature: 2.3, Temperatures: temps,
			Seed: prng.Uint64(), SharedRandom: shared, Hot: true,
		}
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for sweep := 0; sweep < 3; sweep++ {
			opt.Sweep()
			// Reference sweep: the same colour updates through UpdateRowRef.
			for _, pc := range []struct {
				parity int
				step   uint64
			}{{0, ref.step}, {1, ref.step + 1}} {
				for r := 0; r < ref.rows; r++ {
					row := ref.rowWords(r)
					ref.kern.UpdateRowRef(row,
						ref.rowWords((r-1+ref.rows)%ref.rows),
						ref.rowWords((r+1)%ref.rows),
						row[ref.cols-1], row[0],
						r, 0, pc.parity, pc.step)
				}
			}
			ref.step += 2
		}
		if opt.Hash() != ref.Hash() {
			t.Fatalf("trial %d (lanes=%d shared=%v %dx%d ladder=%v): optimized loop diverged from reference",
				trial, lanes, shared, rows, cols, temps != nil)
		}
	}
}

// TestSetLaneTemperatureKeepsSoAInSync: the flat threshold mirrors the hot
// loop reads must follow every temperature change exactly.
func TestSetLaneTemperatureKeepsSoAInSync(t *testing.T) {
	e, err := New(Config{Rows: 4, Cols: 64, Lanes: 8, Temperature: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e.SetLaneTemperature(3, 3.7)
	e.SetLaneTemperature(5, 1.2)
	for l := 0; l < e.lanes; l++ {
		if e.kern.t4s[l] != e.kern.kerns[l].T4 || e.kern.t8s[l] != e.kern.kerns[l].T8 {
			t.Fatalf("lane %d: SoA thresholds (%d, %d) out of sync with kernel (%d, %d)",
				l, e.kern.t4s[l], e.kern.t8s[l], e.kern.kerns[l].T4, e.kern.kerns[l].T8)
		}
	}
	// The memo must return the exact pair a fresh computation gives.
	fresh, err := New(Config{Rows: 4, Cols: 64, Lanes: 8, Temperature: 3.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.kern.t4s[3] != fresh.kern.t4s[0] || e.kern.t8s[3] != fresh.kern.t8s[0] {
		t.Fatalf("memoized thresholds (%d, %d) differ from fresh (%d, %d)",
			e.kern.t4s[3], e.kern.t8s[3], fresh.kern.t4s[0], fresh.kern.t8s[0])
	}
	if math.Abs(e.LaneTemperature(3)-3.7) > 0 {
		t.Fatalf("lane temperature not recorded")
	}
}

// BenchmarkSetLaneTemperatureSwap is the satellite-1 micro-benchmark: a
// replica-exchange swap re-temperatures two lanes between the same ladder
// rungs. With the memoized thresholds this is two map lookups and no
// math.Exp; compare BenchmarkThresholdsUncached for what every swap paid
// before.
func BenchmarkSetLaneTemperatureSwap(b *testing.B) {
	ladder := []float64{2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7}
	e, err := New(Config{Rows: 4, Cols: 64, Lanes: len(ladder), Temperatures: ladder, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := i % (len(ladder) - 1)
		// One accepted swap: both lanes change rung.
		e.SetLaneTemperature(t, ladder[t+1])
		e.SetLaneTemperature(t+1, ladder[t])
		e.SetLaneTemperature(t, ladder[t])
		e.SetLaneTemperature(t+1, ladder[t+1])
	}
}

// BenchmarkThresholdsUncached is the before side of the satellite-1 pair: the
// two math.Exp calls every SetTemperature used to pay.
func BenchmarkThresholdsUncached(b *testing.B) {
	ladder := []float64{2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7}
	var sink uint64
	for i := 0; i < b.N; i++ {
		beta := ising.Beta(ladder[i%len(ladder)])
		sink += uint64(math.Exp(-4*beta*ising.J)*4294967296) + uint64(math.Exp(-8*beta*ising.J)*4294967296)
	}
	_ = sink
}

// BenchmarkEnsembleSweep measures the optimized 64-lane hot loop (per-lane
// randoms), the headline aggregate path of BENCH snapshots.
func BenchmarkEnsembleSweep(b *testing.B) {
	benchSweep(b, false)
}

// BenchmarkEnsembleSweepShared measures the shared-random mode.
func BenchmarkEnsembleSweepShared(b *testing.B) {
	benchSweep(b, true)
}

func benchSweep(b *testing.B, shared bool) {
	e, err := New(Config{Rows: 64, Cols: 64, Lanes: 64, Temperature: 2.4, Seed: 1, SharedRandom: shared, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(e.N()) * int64(e.lanes) / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Sweep()
	}
}
