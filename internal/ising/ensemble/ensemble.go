// Package ensemble implements a lane-packed many-replica Ising engine: up to
// 64 *independent chains* are stored per uint64 word, one bit-lane per chain,
// so every word holds the same lattice site of 64 different replicas (the
// multi-spin-coding-across-replicas technique of Block, Virnau & Preis,
// arXiv:1007.3726, and the per-device ensembles of Romero et al.,
// arXiv:1906.06297). Where internal/ising/multispin packs 64 *columns* of one
// chain per word, this engine packs 64 *chains* per word — the neighbour
// words of a site carry the neighbours of all lanes at once, so one pass of
// the shared bit-sliced classifier (multispin.DisagreeClasses) updates the
// whole ensemble with no cross-column shifting at all.
//
// Randomness comes in two modes, mirroring multispin's:
//
//   - Per-lane (the default): lane L draws through its own Philox key derived
//     from ising.LaneSeed(seed, L), consuming exactly the site randoms a
//     standalone multispin chain with that seed would. Lane L of the packed
//     engine is therefore bit-identical to that standalone chain — the
//     determinism contract the lane-equivalence tests assert — and each lane
//     can run at its own temperature, which is what lets a whole tempering
//     ladder or temperature scan run as one ensemble.
//
//   - Shared (Config.SharedRandom): one site-keyed draw per ΔE class per
//     site, shared by all 64 lanes — the trick of Block et al., who use the
//     same random number for all systems. The per-lane Metropolis accept
//     masks are synthesised from the two class draws (u < T4 for one
//     disagreeing neighbour, u < T8 for none), cutting the Philox work per
//     site from one draw per lane to two draws total (a 32x reduction at 64
//     lanes) at the cost of weak cross-lane correlations: two lanes in the
//     same ΔE class at the same site share an accept bit. Each lane is still
//     a valid Markov chain; only cross-lane covariances are affected.
//
// Both modes are site-keyed pure functions of (seed, step, site), so the
// chains are deterministic and independent of the worker count, exactly like
// the rest of the repository.
package ensemble

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"runtime"
	"sync"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/rng"
)

// MaxLanes is the number of replicas packed per uint64 word.
const MaxLanes = 64

// Config describes a lane-packed ensemble engine.
type Config struct {
	// Rows and Cols are the per-lane lattice dimensions, with the multispin
	// constraints (even Rows >= 2, Cols a positive multiple of 64) so every
	// lane is exactly a multispin chain.
	Rows, Cols int
	// Lanes is the number of independent replicas, 1 to 64.
	Lanes int
	// Temperature is the shared lane temperature in J/kB (0 = the critical
	// temperature). Ignored when Temperatures is set.
	Temperature float64
	// Temperatures, when non-empty, gives every lane its own temperature
	// (len == Lanes): lane L runs at Temperatures[L]. This is what lets a
	// tempering ladder or a whole temperature scan run as one ensemble.
	Temperatures []float64
	// Seed is the run seed; lane L's chain is seeded ising.LaneSeed(Seed, L).
	Seed uint64
	// SharedRandom selects the cheap mode that draws one random per ΔE class
	// per site, shared across all lanes, instead of one per lane.
	SharedRandom bool
	// Workers is the number of row-band goroutines per colour update
	// (0 = GOMAXPROCS). It never changes any result.
	Workers int
	// Hot starts every lane from its own random (infinite-temperature)
	// lattice, drawn from rng.New(ising.LaneSeed(Seed, L)) — the same initial
	// configuration the backend factory gives a standalone hot-start chain
	// with that seed.
	Hot bool
}

// Engine is the lane-packed sampler. It satisfies ising.BatchBackend and
// ising.BatchTempered.
type Engine struct {
	rows, cols int
	lanes      int
	laneMask   uint64 // bits 0..lanes-1
	words      []uint64
	kerns      []multispin.Kernel // per-lane key + thresholds
	temps      []float64
	sharedKey  rng.Key
	shared     bool
	uniform    bool // all lanes share one threshold pair (fast shared path)
	step       uint64
	workers    int
	seed       uint64
	halo       []uint64

	// Observable cache: Magnetizations/Energies are O(lanes * N) passes, so
	// consumers that read several observables per step (tempering, the
	// service's per-lane sampling) share one pass per step. A cache is valid
	// while its step stamp matches the engine's (stamps start at ^0 = never).
	magsStep, esStep uint64
	mags, es         []float64
}

// New builds an engine from the config.
func New(cfg Config) (*Engine, error) {
	if cfg.Rows < 2 || cfg.Rows%2 != 0 {
		return nil, fmt.Errorf("ensemble: rows must be even and >= 2, got %d", cfg.Rows)
	}
	if cfg.Cols <= 0 || cfg.Cols%multispin.WordBits != 0 {
		return nil, fmt.Errorf("ensemble: cols must be a positive multiple of %d, got %d", multispin.WordBits, cfg.Cols)
	}
	if cfg.Lanes < 1 || cfg.Lanes > MaxLanes {
		return nil, fmt.Errorf("ensemble: lanes must be 1..%d, got %d", MaxLanes, cfg.Lanes)
	}
	temps := cfg.Temperatures
	if len(temps) == 0 {
		t := cfg.Temperature
		if t == 0 {
			t = ising.CriticalTemperature()
		}
		temps = make([]float64, cfg.Lanes)
		for i := range temps {
			temps[i] = t
		}
	}
	if len(temps) != cfg.Lanes {
		return nil, fmt.Errorf("ensemble: %d temperatures for %d lanes", len(temps), cfg.Lanes)
	}
	e := &Engine{
		rows: cfg.Rows, cols: cfg.Cols, lanes: cfg.Lanes,
		laneMask:  laneMask(cfg.Lanes),
		words:     make([]uint64, cfg.Rows*cfg.Cols),
		kerns:     make([]multispin.Kernel, cfg.Lanes),
		temps:     append([]float64(nil), temps...),
		sharedKey: multispin.NewKernel(ising.CriticalTemperature(), cfg.Seed, true).Key,
		shared:    cfg.SharedRandom,
		workers:   cfg.Workers,
		seed:      cfg.Seed,
		magsStep:  ^uint64(0),
		esStep:    ^uint64(0),
	}
	for l := range e.kerns {
		if temps[l] <= 0 {
			return nil, fmt.Errorf("ensemble: lane %d temperature %g must be positive", l, temps[l])
		}
		e.kerns[l] = multispin.NewKernel(temps[l], ising.LaneSeed(cfg.Seed, l), false)
	}
	e.refreshUniform()
	for i := range e.words {
		e.words[i] = ^uint64(0) // cold start: all lanes all spins +1
	}
	if cfg.Hot {
		for l := 0; l < e.lanes; l++ {
			lat := ising.NewRandomLattice(cfg.Rows, cfg.Cols, rng.New(ising.LaneSeed(cfg.Seed, l)))
			if err := e.SetLaneLattice(l, lat); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// laneMask returns the word mask selecting the active lane bits.
func laneMask(lanes int) uint64 {
	if lanes >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(lanes)) - 1
}

// refreshUniform recomputes whether every lane shares one threshold pair.
func (e *Engine) refreshUniform() {
	e.uniform = true
	for l := 1; l < e.lanes; l++ {
		if e.kerns[l].T4 != e.kerns[0].T4 || e.kerns[l].T8 != e.kerns[0].T8 {
			e.uniform = false
			return
		}
	}
}

// Name identifies the engine ("ensemble" or "ensemble-shared").
func (e *Engine) Name() string {
	if e.shared {
		return "ensemble-shared"
	}
	return "ensemble"
}

// Rows returns the per-lane row count.
func (e *Engine) Rows() int { return e.rows }

// Cols returns the per-lane column count.
func (e *Engine) Cols() int { return e.cols }

// Lanes returns the number of replicas.
func (e *Engine) Lanes() int { return e.lanes }

// N returns the spins of one lane's lattice.
func (e *Engine) N() int { return e.rows * e.cols }

// Step returns the number of colour updates performed so far per lane.
func (e *Engine) Step() uint64 { return e.step }

// Seed returns the run seed (lane L's chain seed is ising.LaneSeed(Seed, L)).
func (e *Engine) Seed() uint64 { return e.seed }

// LaneTemperature returns one lane's current temperature.
func (e *Engine) LaneTemperature(lane int) float64 { return e.temps[lane] }

// SetLaneTemperature changes one lane's temperature; the lane's chain
// continues from its current configuration.
func (e *Engine) SetLaneTemperature(lane int, t float64) {
	if t <= 0 {
		panic("ensemble: temperature must be positive")
	}
	e.kerns[lane].SetTemperature(t)
	e.temps[lane] = t
	e.refreshUniform()
}

// Footprint returns the bytes of packed lattice state (one 64-lane word per
// site, whatever the active lane count). perf.EnsembleFootprint models this
// number; the equality is asserted by test.
func (e *Engine) Footprint() int64 { return int64(len(e.words)) * 8 }

// Counts reports the attempted spin updates across all lanes in Ops; the
// engine runs on the host, so no device work is modelled.
func (e *Engine) Counts() metrics.Counts {
	return metrics.Counts{Ops: int64(e.step) / 2 * int64(e.N()) * int64(e.lanes)}
}

// Sweep performs one whole-lattice update of every lane: all black sites
// (even row+col parity), then all white sites, consuming two colour-step
// indices like every engine in the repository.
func (e *Engine) Sweep() {
	e.updateColor(0, e.step)
	e.updateColor(1, e.step+1)
	e.step += 2
}

// Run performs n sweeps.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Sweep()
	}
}

// rowWords returns the packed words of one lattice row (cols words, one per
// site).
func (e *Engine) rowWords(r int) []uint64 {
	return e.words[r*e.cols : (r+1)*e.cols]
}

// updateColor performs one Metropolis update of every site of one colour in
// every lane, row-band parallel exactly like multispin: within one colour
// update no two updated sites interact, and a band's boundary rows read
// pre-update snapshots of the neighbouring bands' edge rows, so the chain is
// independent of the band count.
func (e *Engine) updateColor(parity int, step uint64) {
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > e.rows {
		workers = e.rows
	}
	if workers <= 1 {
		e.updateRows(parity, step, 0, e.rows, nil, nil)
		return
	}
	W := e.cols
	rowsPer := (e.rows + workers - 1) / workers
	bands := (e.rows + rowsPer - 1) / rowsPer
	if need := 2 * bands * W; cap(e.halo) < need {
		e.halo = make([]uint64, need)
	}
	type band struct {
		r0, r1       int
		north, south []uint64
	}
	plan := make([]band, 0, bands)
	for r0 := 0; r0 < e.rows; r0 += rowsPer {
		r1 := r0 + rowsPer
		if r1 > e.rows {
			r1 = e.rows
		}
		i := len(plan)
		north := e.halo[(2*i)*W : (2*i+1)*W]
		south := e.halo[(2*i+1)*W : (2*i+2)*W]
		copy(north, e.rowWords((r0-1+e.rows)%e.rows))
		copy(south, e.rowWords(r1%e.rows))
		plan = append(plan, band{r0: r0, r1: r1, north: north, south: south})
	}
	var wg sync.WaitGroup
	for _, b := range plan {
		wg.Add(1)
		go func(b band) {
			defer wg.Done()
			e.updateRows(parity, step, b.r0, b.r1, b.north, b.south)
		}(b)
	}
	wg.Wait()
}

// updateRows updates the active sites of rows [r0, r1), substituting the
// pre-update halo snapshots at the band boundaries (every neighbour bit
// consumed belongs to the inactive colour, so snapshots and live reads agree).
func (e *Engine) updateRows(parity int, step uint64, r0, r1 int, northHalo, southHalo []uint64) {
	for r := r0; r < r1; r++ {
		row := e.rowWords(r)
		north := e.rowWords((r - 1 + e.rows) % e.rows)
		if r == r0 && northHalo != nil {
			north = northHalo
		}
		south := e.rowWords((r + 1) % e.rows)
		if r == r1-1 && southHalo != nil {
			south = southHalo
		}
		e.updateRow(row, north, south, r, parity, step)
	}
}

// updateRow performs the colour update of the active sites of one row across
// all lanes. Active sites in row r have column parity p = (parity + r) & 1;
// their east/west neighbours are same-row words of the opposite colour (never
// written by this update), so all neighbour reads are plain word loads — the
// lane-sliced layout needs none of multispin's cross-column shifts.
//
// The site randoms reproduce multispin's mapping exactly: the site with
// same-colour ordinal j (= column/2) in row r draws component j&3 of the
// Philox block keyed by (step, r, j>>2) under the lane's key, which is the
// pure function multispin.Engine.siteRand evaluates — the root of the
// lane-equivalence contract.
func (e *Engine) updateRow(row, north, south []uint64, r, parity int, step uint64) {
	p := (parity + r) & 1
	s0, s1 := uint32(step), uint32(step>>32)
	rr := uint32(int64(r))
	half := e.cols / 2
	var a4, a8 [4]uint64
	for g := 0; g < half/4; g++ {
		// Accept masks of the group's four active sites: bit L of a4[k] (a8[k])
		// decides lane L's flip at the k-th site when it has one (zero)
		// disagreeing neighbours.
		if e.shared {
			// One draw per ΔE class per site, shared by every lane.
			ba, bb := rng.BlockPair(
				rng.Counter{s0, s1, rr, uint32(2 * g)},
				rng.Counter{s0, s1, rr, uint32(2*g + 1)},
				e.sharedKey)
			if e.uniform {
				t4, t8 := e.kerns[0].T4, e.kerns[0].T8
				for k := 0; k < 4; k++ {
					a4[k] = ^uint64(0) * ((uint64(ba[k]) - t4) >> 63)
					a8[k] = ^uint64(0) * ((uint64(bb[k]) - t8) >> 63)
				}
			} else {
				for k := 0; k < 4; k++ {
					a4[k], a8[k] = 0, 0
				}
				for l := 0; l < e.lanes; l++ {
					t4, t8 := e.kerns[l].T4, e.kerns[l].T8
					for k := 0; k < 4; k++ {
						a4[k] |= ((uint64(ba[k]) - t4) >> 63) << uint(l)
						a8[k] |= ((uint64(bb[k]) - t8) >> 63) << uint(l)
					}
				}
			}
		} else {
			// One draw per lane per site, through the lane's own key; two lanes
			// share each interleaved Philox evaluation.
			ctr := rng.Counter{s0, s1, rr, uint32(g)}
			for k := 0; k < 4; k++ {
				a4[k], a8[k] = 0, 0
			}
			l := 0
			for ; l+1 < e.lanes; l += 2 {
				ba, bb := rng.BlockPairKeys(ctr, e.kerns[l].Key, e.kerns[l+1].Key)
				t4a, t8a := e.kerns[l].T4, e.kerns[l].T8
				t4b, t8b := e.kerns[l+1].T4, e.kerns[l+1].T8
				for k := 0; k < 4; k++ {
					a4[k] |= ((uint64(ba[k]) - t4a) >> 63) << uint(l)
					a8[k] |= ((uint64(ba[k]) - t8a) >> 63) << uint(l)
					a4[k] |= ((uint64(bb[k]) - t4b) >> 63) << uint(l+1)
					a8[k] |= ((uint64(bb[k]) - t8b) >> 63) << uint(l+1)
				}
			}
			if l < e.lanes {
				blk := rng.Block(ctr, e.kerns[l].Key)
				t4, t8 := e.kerns[l].T4, e.kerns[l].T8
				for k := 0; k < 4; k++ {
					a4[k] |= ((uint64(blk[k]) - t4) >> 63) << uint(l)
					a8[k] |= ((uint64(blk[k]) - t8) >> 63) << uint(l)
				}
			}
		}
		for k := 0; k < 4; k++ {
			c := 2*(4*g+k) + p
			cur := row[c]
			ce := c + 1
			if ce == e.cols {
				ce = 0
			}
			cw := c - 1
			if cw < 0 {
				cw = e.cols - 1
			}
			ge2, one, zero := multispin.DisagreeClasses(
				cur^north[c], cur^south[c], cur^row[ce], cur^row[cw])
			row[c] = cur ^ ((ge2 | one&a4[k] | zero&a8[k]) & e.laneMask)
		}
	}
}

// refreshMags recomputes the per-lane magnetisations at the current step.
func (e *Engine) refreshMags() {
	if e.mags != nil && e.magsStep == e.step {
		return
	}
	if e.mags == nil {
		e.mags = make([]float64, e.lanes)
	}
	up := make([]int64, e.lanes)
	for _, w := range e.words {
		w &= e.laneMask
		for w != 0 {
			up[bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
	n := int64(e.N())
	for l := range e.mags {
		e.mags[l] = float64(2*up[l]-n) / float64(n)
	}
	e.magsStep = e.step
}

// Magnetizations returns the magnetisation per spin of every lane.
func (e *Engine) Magnetizations() []float64 {
	e.refreshMags()
	return append([]float64(nil), e.mags...)
}

// refreshEnergies recomputes the per-lane energies at the current step: each
// site's east and south bonds are compared bitwise and the per-lane
// disagreement bits accumulated.
func (e *Engine) refreshEnergies() {
	if e.es != nil && e.esStep == e.step {
		return
	}
	if e.es == nil {
		e.es = make([]float64, e.lanes)
	}
	diff := make([]int64, e.lanes)
	for r := 0; r < e.rows; r++ {
		row := e.rowWords(r)
		south := e.rowWords((r + 1) % e.rows)
		for c := 0; c < e.cols; c++ {
			ce := c + 1
			if ce == e.cols {
				ce = 0
			}
			de := (row[c] ^ row[ce]) & e.laneMask
			ds := (row[c] ^ south[c]) & e.laneMask
			for w := de; w != 0; w &= w - 1 {
				diff[bits.TrailingZeros64(w)]++
			}
			for w := ds; w != 0; w &= w - 1 {
				diff[bits.TrailingZeros64(w)]++
			}
		}
	}
	n := int64(e.N())
	for l := range e.es {
		e.es[l] = -ising.J * float64(2*n-2*diff[l]) / float64(n)
	}
	e.esStep = e.step
}

// Energies returns the energy per spin of every lane.
func (e *Engine) Energies() []float64 {
	e.refreshEnergies()
	return append([]float64(nil), e.es...)
}

// LaneSpin returns lane L's spin at (row, col) as +-1 (no wrapping).
func (e *Engine) LaneSpin(lane, row, col int) int8 {
	if e.words[row*e.cols+col]>>uint(lane)&1 == 1 {
		return 1
	}
	return -1
}

// LaneLattice extracts one lane's configuration as an ising.Lattice.
func (e *Engine) LaneLattice(lane int) *ising.Lattice {
	l := ising.NewLattice(e.rows, e.cols)
	for i, w := range e.words {
		if w>>uint(lane)&1 == 0 {
			l.Spins[i] = -1
		}
	}
	return l
}

// SetLaneLattice loads one lane's configuration from an ising.Lattice.
func (e *Engine) SetLaneLattice(lane int, l *ising.Lattice) error {
	if l.Rows != e.rows || l.Cols != e.cols {
		return fmt.Errorf("ensemble: lattice is %dx%d, engine is %dx%d", l.Rows, l.Cols, e.rows, e.cols)
	}
	if lane < 0 || lane >= e.lanes {
		return fmt.Errorf("ensemble: lane %d out of range (engine has %d)", lane, e.lanes)
	}
	bit := uint64(1) << uint(lane)
	for i, s := range l.Spins {
		if s == 1 {
			e.words[i] |= bit
		} else {
			e.words[i] &^= bit
		}
	}
	// The state changed without a step advance: drop the observable caches.
	e.mags, e.es = nil, nil
	return nil
}

// Hash returns an FNV-1a hash of the packed configuration (active lanes
// masked), used by the determinism tests to compare whole ensembles cheaply.
func (e *Engine) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range e.words {
		v &= e.laneMask
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
