// Package ensemble implements a lane-packed many-replica Ising engine: up to
// 64 *independent chains* are stored per uint64 word, one bit-lane per chain,
// so every word holds the same lattice site of 64 different replicas (the
// multi-spin-coding-across-replicas technique of Block, Virnau & Preis,
// arXiv:1007.3726, and the per-device ensembles of Romero et al.,
// arXiv:1906.06297). Where internal/ising/multispin packs 64 *columns* of one
// chain per word, this engine packs 64 *chains* per word — the neighbour
// words of a site carry the neighbours of all lanes at once, so one pass of
// the shared bit-sliced classifier (multispin.DisagreeClasses) updates the
// whole ensemble with no cross-column shifting at all.
//
// Randomness comes in two modes, mirroring multispin's:
//
//   - Per-lane (the default): lane L draws through its own Philox key derived
//     from ising.LaneSeed(seed, L), consuming exactly the site randoms a
//     standalone multispin chain with that seed would. Lane L of the packed
//     engine is therefore bit-identical to that standalone chain — the
//     determinism contract the lane-equivalence tests assert — and each lane
//     can run at its own temperature, which is what lets a whole tempering
//     ladder or temperature scan run as one ensemble.
//
//   - Shared (Config.SharedRandom): one site-keyed draw per ΔE class per
//     site, shared by all 64 lanes — the trick of Block et al., who use the
//     same random number for all systems. The per-lane Metropolis accept
//     masks are synthesised from the two class draws (u < T4 for one
//     disagreeing neighbour, u < T8 for none), cutting the Philox work per
//     site from one draw per lane to two draws total (a 32x reduction at 64
//     lanes) at the cost of weak cross-lane correlations: two lanes in the
//     same ΔE class at the same site share an accept bit. Each lane is still
//     a valid Markov chain; only cross-lane covariances are affected.
//
// Both modes are site-keyed pure functions of (seed, step, site), so the
// chains are deterministic and independent of the worker count, exactly like
// the rest of the repository.
package ensemble

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"runtime"
	"sync"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/rng"
)

// MaxLanes is the number of replicas packed per uint64 word.
const MaxLanes = 64

// Config describes a lane-packed ensemble engine.
type Config struct {
	// Rows and Cols are the per-lane lattice dimensions, with the multispin
	// constraints (even Rows >= 2, Cols a positive multiple of 64) so every
	// lane is exactly a multispin chain.
	Rows, Cols int
	// Lanes is the number of independent replicas, 1 to 64.
	Lanes int
	// Temperature is the shared lane temperature in J/kB (0 = the critical
	// temperature). Ignored when Temperatures is set.
	Temperature float64
	// Temperatures, when non-empty, gives every lane its own temperature
	// (len == Lanes): lane L runs at Temperatures[L]. This is what lets a
	// tempering ladder or a whole temperature scan run as one ensemble.
	Temperatures []float64
	// Seed is the run seed; lane L's chain is seeded ising.LaneSeed(Seed, L).
	Seed uint64
	// SharedRandom selects the cheap mode that draws one random per ΔE class
	// per site, shared across all lanes, instead of one per lane.
	SharedRandom bool
	// Workers is the number of row-band goroutines per colour update
	// (0 = GOMAXPROCS). It never changes any result.
	Workers int
	// Hot starts every lane from its own random (infinite-temperature)
	// lattice, drawn from rng.New(ising.LaneSeed(Seed, L)) — the same initial
	// configuration the backend factory gives a standalone hot-start chain
	// with that seed.
	Hot bool
}

// Engine is the lane-packed sampler. It satisfies ising.BatchBackend and
// ising.BatchTempered.
type Engine struct {
	rows, cols int
	lanes      int
	laneMask   uint64 // bits 0..lanes-1
	words      []uint64
	kern       *Kernel // per-lane keys, temperatures, thresholds + row update
	step       uint64
	workers    int
	seed       uint64
	halo       []uint64
	scratches  []Scratch // per-band random scratch buffers

	// Observable cache: Magnetizations/Energies are O(lanes * N) passes, so
	// consumers that read several observables per step (tempering, the
	// service's per-lane sampling) share one pass per step. A cache is valid
	// while its step stamp matches the engine's (stamps start at ^0 = never).
	magsStep, esStep uint64
	mags, es         []float64
}

// New builds an engine from the config.
func New(cfg Config) (*Engine, error) {
	if cfg.Rows < 2 || cfg.Rows%2 != 0 {
		return nil, fmt.Errorf("ensemble: rows must be even and >= 2, got %d", cfg.Rows)
	}
	if cfg.Cols <= 0 || cfg.Cols%multispin.WordBits != 0 {
		return nil, fmt.Errorf("ensemble: cols must be a positive multiple of %d, got %d", multispin.WordBits, cfg.Cols)
	}
	if cfg.Lanes < 1 || cfg.Lanes > MaxLanes {
		return nil, fmt.Errorf("ensemble: lanes must be 1..%d, got %d", MaxLanes, cfg.Lanes)
	}
	temps := cfg.Temperatures
	if len(temps) == 0 {
		t := cfg.Temperature
		if t == 0 {
			t = ising.CriticalTemperature()
		}
		temps = make([]float64, cfg.Lanes)
		for i := range temps {
			temps[i] = t
		}
	}
	if len(temps) != cfg.Lanes {
		return nil, fmt.Errorf("ensemble: %d temperatures for %d lanes", len(temps), cfg.Lanes)
	}
	kern, err := NewKernel(cfg.Seed, temps, cfg.SharedRandom)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		rows: cfg.Rows, cols: cfg.Cols, lanes: cfg.Lanes,
		laneMask: laneMask(cfg.Lanes),
		words:    make([]uint64, cfg.Rows*cfg.Cols),
		kern:     kern,
		workers:  cfg.Workers,
		seed:     cfg.Seed,
		magsStep: ^uint64(0),
		esStep:   ^uint64(0),
	}
	for i := range e.words {
		e.words[i] = ^uint64(0) // cold start: all lanes all spins +1
	}
	if cfg.Hot {
		for l := 0; l < e.lanes; l++ {
			lat := ising.NewRandomLattice(cfg.Rows, cfg.Cols, rng.New(ising.LaneSeed(cfg.Seed, l)))
			if err := e.SetLaneLattice(l, lat); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// laneMask returns the word mask selecting the active lane bits.
func laneMask(lanes int) uint64 {
	if lanes >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(lanes)) - 1
}

// Name identifies the engine ("ensemble" or "ensemble-shared").
func (e *Engine) Name() string {
	if e.kern.shared {
		return "ensemble-shared"
	}
	return "ensemble"
}

// Rows returns the per-lane row count.
func (e *Engine) Rows() int { return e.rows }

// Cols returns the per-lane column count.
func (e *Engine) Cols() int { return e.cols }

// Lanes returns the number of replicas.
func (e *Engine) Lanes() int { return e.lanes }

// N returns the spins of one lane's lattice.
func (e *Engine) N() int { return e.rows * e.cols }

// Step returns the number of colour updates performed so far per lane.
func (e *Engine) Step() uint64 { return e.step }

// Seed returns the run seed (lane L's chain seed is ising.LaneSeed(Seed, L)).
func (e *Engine) Seed() uint64 { return e.seed }

// LaneTemperature returns one lane's current temperature.
func (e *Engine) LaneTemperature(lane int) float64 { return e.kern.LaneTemperature(lane) }

// SetLaneTemperature changes one lane's temperature; the lane's chain
// continues from its current configuration. The kernel memoizes the
// acceptance thresholds per rung, so the tempering swap path pays no
// math.Exp after a rung's first visit.
func (e *Engine) SetLaneTemperature(lane int, t float64) {
	e.kern.SetLaneTemperature(lane, t)
}

// Footprint returns the bytes of packed lattice state (one 64-lane word per
// site, whatever the active lane count). perf.EnsembleFootprint models this
// number; the equality is asserted by test.
func (e *Engine) Footprint() int64 { return int64(len(e.words)) * 8 }

// Counts reports the attempted spin updates across all lanes in Ops; the
// engine runs on the host, so no device work is modelled.
func (e *Engine) Counts() metrics.Counts {
	return metrics.Counts{Ops: int64(e.step) / 2 * int64(e.N()) * int64(e.lanes)}
}

// Sweep performs one whole-lattice update of every lane: all black sites
// (even row+col parity), then all white sites, consuming two colour-step
// indices like every engine in the repository.
func (e *Engine) Sweep() {
	e.updateColor(0, e.step)
	e.updateColor(1, e.step+1)
	e.step += 2
}

// Run performs n sweeps.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Sweep()
	}
}

// rowWords returns the packed words of one lattice row (cols words, one per
// site).
func (e *Engine) rowWords(r int) []uint64 {
	return e.words[r*e.cols : (r+1)*e.cols]
}

// updateColor performs one Metropolis update of every site of one colour in
// every lane, row-band parallel exactly like multispin: within one colour
// update no two updated sites interact, and a band's boundary rows read
// pre-update snapshots of the neighbouring bands' edge rows, so the chain is
// independent of the band count.
func (e *Engine) updateColor(parity int, step uint64) {
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > e.rows {
		workers = e.rows
	}
	if workers <= 1 {
		if len(e.scratches) == 0 {
			e.scratches = make([]Scratch, 1)
		}
		e.updateRows(parity, step, 0, e.rows, nil, nil, &e.scratches[0])
		return
	}
	W := e.cols
	rowsPer := (e.rows + workers - 1) / workers
	bands := (e.rows + rowsPer - 1) / rowsPer
	if need := 2 * bands * W; cap(e.halo) < need {
		e.halo = make([]uint64, need)
	}
	type band struct {
		r0, r1       int
		north, south []uint64
	}
	plan := make([]band, 0, bands)
	for r0 := 0; r0 < e.rows; r0 += rowsPer {
		r1 := r0 + rowsPer
		if r1 > e.rows {
			r1 = e.rows
		}
		i := len(plan)
		north := e.halo[(2*i)*W : (2*i+1)*W]
		south := e.halo[(2*i+1)*W : (2*i+2)*W]
		copy(north, e.rowWords((r0-1+e.rows)%e.rows))
		copy(south, e.rowWords(r1%e.rows))
		plan = append(plan, band{r0: r0, r1: r1, north: north, south: south})
	}
	if len(e.scratches) < len(plan) {
		e.scratches = make([]Scratch, len(plan))
	}
	var wg sync.WaitGroup
	for i, b := range plan {
		wg.Add(1)
		go func(b band, sc *Scratch) {
			defer wg.Done()
			e.updateRows(parity, step, b.r0, b.r1, b.north, b.south, sc)
		}(b, &e.scratches[i])
	}
	wg.Wait()
}

// updateRows updates the active sites of rows [r0, r1), substituting the
// pre-update halo snapshots at the band boundaries (every neighbour bit
// consumed belongs to the inactive colour, so snapshots and live reads
// agree). The wrap words row[cols-1] and row[0] are snapshotted per row for
// the same reason: whichever of the two the active colour consumes is
// inactive and never written within the call.
func (e *Engine) updateRows(parity int, step uint64, r0, r1 int, northHalo, southHalo []uint64, sc *Scratch) {
	for r := r0; r < r1; r++ {
		row := e.rowWords(r)
		north := e.rowWords((r - 1 + e.rows) % e.rows)
		if r == r0 && northHalo != nil {
			north = northHalo
		}
		south := e.rowWords((r + 1) % e.rows)
		if r == r1-1 && southHalo != nil {
			south = southHalo
		}
		e.kern.UpdateRow(row, north, south, row[e.cols-1], row[0], r, 0, parity, step, sc)
	}
}

// refreshMags recomputes the per-lane magnetisations at the current step.
func (e *Engine) refreshMags() {
	if e.mags != nil && e.magsStep == e.step {
		return
	}
	if e.mags == nil {
		e.mags = make([]float64, e.lanes)
	}
	up := make([]int64, e.lanes)
	for _, w := range e.words {
		w &= e.laneMask
		for w != 0 {
			up[bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
	n := int64(e.N())
	for l := range e.mags {
		e.mags[l] = float64(2*up[l]-n) / float64(n)
	}
	e.magsStep = e.step
}

// Magnetizations returns the magnetisation per spin of every lane.
func (e *Engine) Magnetizations() []float64 {
	e.refreshMags()
	return append([]float64(nil), e.mags...)
}

// refreshEnergies recomputes the per-lane energies at the current step: each
// site's east and south bonds are compared bitwise and the per-lane
// disagreement bits accumulated.
func (e *Engine) refreshEnergies() {
	if e.es != nil && e.esStep == e.step {
		return
	}
	if e.es == nil {
		e.es = make([]float64, e.lanes)
	}
	diff := make([]int64, e.lanes)
	for r := 0; r < e.rows; r++ {
		row := e.rowWords(r)
		south := e.rowWords((r + 1) % e.rows)
		for c := 0; c < e.cols; c++ {
			ce := c + 1
			if ce == e.cols {
				ce = 0
			}
			de := (row[c] ^ row[ce]) & e.laneMask
			ds := (row[c] ^ south[c]) & e.laneMask
			for w := de; w != 0; w &= w - 1 {
				diff[bits.TrailingZeros64(w)]++
			}
			for w := ds; w != 0; w &= w - 1 {
				diff[bits.TrailingZeros64(w)]++
			}
		}
	}
	n := int64(e.N())
	for l := range e.es {
		e.es[l] = -ising.J * float64(2*n-2*diff[l]) / float64(n)
	}
	e.esStep = e.step
}

// Energies returns the energy per spin of every lane.
func (e *Engine) Energies() []float64 {
	e.refreshEnergies()
	return append([]float64(nil), e.es...)
}

// LaneSpin returns lane L's spin at (row, col) as +-1 (no wrapping).
func (e *Engine) LaneSpin(lane, row, col int) int8 {
	if e.words[row*e.cols+col]>>uint(lane)&1 == 1 {
		return 1
	}
	return -1
}

// LaneLattice extracts one lane's configuration as an ising.Lattice.
func (e *Engine) LaneLattice(lane int) *ising.Lattice {
	l := ising.NewLattice(e.rows, e.cols)
	for i, w := range e.words {
		if w>>uint(lane)&1 == 0 {
			l.Spins[i] = -1
		}
	}
	return l
}

// SetLaneLattice loads one lane's configuration from an ising.Lattice.
func (e *Engine) SetLaneLattice(lane int, l *ising.Lattice) error {
	if l.Rows != e.rows || l.Cols != e.cols {
		return fmt.Errorf("ensemble: lattice is %dx%d, engine is %dx%d", l.Rows, l.Cols, e.rows, e.cols)
	}
	if lane < 0 || lane >= e.lanes {
		return fmt.Errorf("ensemble: lane %d out of range (engine has %d)", lane, e.lanes)
	}
	bit := uint64(1) << uint(lane)
	for i, s := range l.Spins {
		if s == 1 {
			e.words[i] |= bit
		} else {
			e.words[i] &^= bit
		}
	}
	// The state changed without a step advance: drop the observable caches.
	e.mags, e.es = nil, nil
	return nil
}

// Hash returns an FNV-1a hash of the packed configuration (active lanes
// masked), used by the determinism tests to compare whole ensembles cheaply.
func (e *Engine) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range e.words {
		v &= e.laneMask
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
