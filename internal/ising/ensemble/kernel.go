package ensemble

import (
	"fmt"

	"tpuising/internal/ising"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/rng"
)

// Scratch is a reusable per-worker random buffer for Kernel.UpdateRow, the
// lane-packed analogue of multispin.Scratch: each row-band goroutine (or each
// shard) owns one, so the batched Philox draws allocate only on first use and
// on growth.
type Scratch struct {
	rand []uint32
}

func (s *Scratch) buf(n int) []uint32 {
	if cap(s.rand) < n {
		s.rand = make([]uint32, n)
	}
	return s.rand[:n]
}

// Kernel is the lane-packed row-update kernel shared by the ensemble engine
// and the sharded-ensemble composition, playing the role multispin.Kernel
// plays for the multispin and sharded engines: it owns the per-lane keys,
// temperatures and acceptance thresholds (plus their structure-of-arrays
// mirrors feeding the batched rng calls) and updates one row of lane-packed
// words at a time. Callers address rows by *global* coordinates — globalRow
// indexes the site-keyed Philox stream and the checkerboard parity, groupOff
// is the global index of the row slice's first four-site random group — so a
// shard updating its local slice of a larger lattice draws exactly the
// randoms the standalone engine draws for those sites. That identity is what
// makes every lane of a sharded ensemble bit-identical to the same lane of a
// standalone ensemble (and hence to a standalone multispin chain).
type Kernel struct {
	lanes     int
	laneMask  uint64 // bits 0..lanes-1
	shared    bool
	uniform   bool // all lanes share one threshold pair (fast shared path)
	sharedKey rng.Key
	kerns     []multispin.Kernel // per-lane key + thresholds
	temps     []float64

	// Structure-of-arrays mirrors of the per-lane kernels, kept in sync by
	// NewKernel and SetLaneTemperature: the hot loop reads thresholds from
	// flat slices and hands the key arrays straight to rng.BlockLanes.
	t4s, t8s   []uint64
	k0s, k1s   []uint32
	thresholds multispin.ThresholdCache // memoized acceptance pairs per rung
}

// NewKernel builds a kernel for len(temps) lanes: lane L runs at temps[L]
// with its Philox key derived from ising.LaneSeed(seed, L), exactly like a
// standalone multispin chain with that seed.
func NewKernel(seed uint64, temps []float64, shared bool) (*Kernel, error) {
	lanes := len(temps)
	if lanes < 1 || lanes > MaxLanes {
		return nil, fmt.Errorf("ensemble: lanes must be 1..%d, got %d", MaxLanes, lanes)
	}
	k := &Kernel{
		lanes:     lanes,
		laneMask:  laneMask(lanes),
		shared:    shared,
		sharedKey: multispin.NewKernel(ising.CriticalTemperature(), seed, true).Key,
		kerns:     make([]multispin.Kernel, lanes),
		temps:     append([]float64(nil), temps...),
		t4s:       make([]uint64, lanes),
		t8s:       make([]uint64, lanes),
		k0s:       make([]uint32, lanes),
		k1s:       make([]uint32, lanes),
	}
	for l := range k.kerns {
		if temps[l] <= 0 {
			return nil, fmt.Errorf("ensemble: lane %d temperature %g must be positive", l, temps[l])
		}
		k.kerns[l] = multispin.NewKernel(temps[l], ising.LaneSeed(seed, l), false)
		k.t4s[l], k.t8s[l] = k.kerns[l].T4, k.kerns[l].T8
		k.k0s[l], k.k1s[l] = k.kerns[l].Key[0], k.kerns[l].Key[1]
	}
	k.refreshUniform()
	return k, nil
}

// refreshUniform recomputes whether every lane shares one threshold pair.
func (k *Kernel) refreshUniform() {
	k.uniform = true
	for l := 1; l < k.lanes; l++ {
		if k.kerns[l].T4 != k.kerns[0].T4 || k.kerns[l].T8 != k.kerns[0].T8 {
			k.uniform = false
			return
		}
	}
}

// Lanes returns the number of packed replicas.
func (k *Kernel) Lanes() int { return k.lanes }

// LaneMask returns the word mask selecting the active lane bits.
func (k *Kernel) LaneMask() uint64 { return k.laneMask }

// SharedMode reports whether the kernel draws class-shared randoms.
func (k *Kernel) SharedMode() bool { return k.shared }

// LaneTemperature returns one lane's current temperature.
func (k *Kernel) LaneTemperature(lane int) float64 { return k.temps[lane] }

// SetLaneTemperature changes one lane's temperature. The thresholds are
// memoized per rung: the tempering swap loop toggles lanes between the same
// ladder temperatures for the whole run, so after each rung's first visit
// this is a map lookup — no math.Exp on the swap path (pinned by
// BenchmarkSetLaneTemperatureSwap).
func (k *Kernel) SetLaneTemperature(lane int, t float64) {
	if t <= 0 {
		panic("ensemble: temperature must be positive")
	}
	k.kerns[lane].SetThresholds(k.thresholds.For(t))
	k.t4s[lane], k.t8s[lane] = k.kerns[lane].T4, k.kerns[lane].T8
	k.temps[lane] = t
	k.refreshUniform()
}

// LaneKey returns one lane's Philox key (for snapshots).
func (k *Kernel) LaneKey(lane int) rng.Key { return k.kerns[lane].Key }

// SetLaneKey replaces one lane's Philox key (for snapshot restore), keeping
// the SoA mirrors in sync.
func (k *Kernel) SetLaneKey(lane int, key rng.Key) {
	k.kerns[lane].Key = key
	k.k0s[lane], k.k1s[lane] = key[0], key[1]
}

// UpdateRow performs the colour update of the active sites of one lane-packed
// row. row, north and south are slices of lane-packed words (one word per
// site); westWord and eastWord are the words the sites just outside the slice
// hold — the caller passes pre-call snapshots of row[len-1] and row[0] for a
// periodic standalone row, or the received halo words for a shard slice.
// Both are exact, because east/west neighbours of active sites carry the
// inactive colour and are never written by this update.
//
// Active sites in global row r have column parity p = (parity + r) & 1. The
// site randoms reproduce multispin's mapping exactly: the site with global
// same-colour ordinal j draws component j&3 of the Philox block keyed by
// (step, r, j>>2) under the lane's key. len(row) must be a multiple of 8 so
// four-site random groups never straddle the slice; groupOff is the global
// group index of the slice's first group (global first column / 8).
//
// This is the optimized ΔE-class loop: per-lane mode draws all lanes of a
// four-site group with one rng.BlockLanes call over the SoA key arrays (the
// AVX2 kernel does 8 lanes per vector iteration), shared mode batches the
// whole row's class draws with one rng.BlockRow call. Both consume exactly
// the blocks the retained reference loop (UpdateRowRef) draws inline, and
// the golden-equivalence test pins the two bit-for-bit.
func (k *Kernel) UpdateRow(row, north, south []uint64, westWord, eastWord uint64, globalRow, groupOff, parity int, step uint64, sc *Scratch) {
	p := (parity + globalRow) & 1
	s0, s1 := uint32(step), uint32(step>>32)
	rr := uint32(int64(globalRow))
	groups := len(row) / 8
	var a4, a8 [4]uint64
	if k.shared {
		// One block per ΔE class pair per group, batched for the whole row:
		// rnd[8g+j] is the d=1 class draw of the group's j-th site (counter
		// 2*(groupOff+g), component j), rnd[8g+4+j] the d=0 draw.
		rnd := sc.buf(8 * groups)
		rng.BlockRow(rnd, rng.Counter{s0, s1, rr, uint32(2 * groupOff)}, k.sharedKey)
		t4, t8 := k.t4s[0], k.t8s[0]
		for g := 0; g < groups; g++ {
			o := rnd[8*g : 8*g+8 : 8*g+8]
			if k.uniform {
				for j := 0; j < 4; j++ {
					a4[j] = ^uint64(0) * ((uint64(o[j]) - t4) >> 63)
					a8[j] = ^uint64(0) * ((uint64(o[4+j]) - t8) >> 63)
				}
			} else {
				for j := 0; j < 4; j++ {
					a4[j], a8[j] = 0, 0
				}
				for l := 0; l < k.lanes; l++ {
					lt4, lt8 := k.t4s[l], k.t8s[l]
					for j := 0; j < 4; j++ {
						a4[j] |= ((uint64(o[j]) - lt4) >> 63) << uint(l)
						a8[j] |= ((uint64(o[4+j]) - lt8) >> 63) << uint(l)
					}
				}
			}
			k.applyGroup(row, north, south, westWord, eastWord, g, p, &a4, &a8)
		}
	} else {
		// One draw per lane per site: all lanes of a group in one batched
		// call under the SoA key arrays.
		rnd := sc.buf(4 * k.lanes)
		for g := 0; g < groups; g++ {
			rng.BlockLanes(rnd, rng.Counter{s0, s1, rr, uint32(groupOff + g)}, k.k0s, k.k1s)
			a4[0], a4[1], a4[2], a4[3] = 0, 0, 0, 0
			a8[0], a8[1], a8[2], a8[3] = 0, 0, 0, 0
			for l := 0; l < k.lanes; l++ {
				t4, t8 := k.t4s[l], k.t8s[l]
				o := rnd[4*l : 4*l+4 : 4*l+4]
				a4[0] |= ((uint64(o[0]) - t4) >> 63) << uint(l)
				a8[0] |= ((uint64(o[0]) - t8) >> 63) << uint(l)
				a4[1] |= ((uint64(o[1]) - t4) >> 63) << uint(l)
				a8[1] |= ((uint64(o[1]) - t8) >> 63) << uint(l)
				a4[2] |= ((uint64(o[2]) - t4) >> 63) << uint(l)
				a8[2] |= ((uint64(o[2]) - t8) >> 63) << uint(l)
				a4[3] |= ((uint64(o[3]) - t4) >> 63) << uint(l)
				a8[3] |= ((uint64(o[3]) - t8) >> 63) << uint(l)
			}
			k.applyGroup(row, north, south, westWord, eastWord, g, p, &a4, &a8)
		}
	}
}

// applyGroup flips the four active sites of group g using the accumulated
// per-lane accept masks, substituting the boundary words outside the slice.
func (k *Kernel) applyGroup(row, north, south []uint64, westWord, eastWord uint64, g, p int, a4, a8 *[4]uint64) {
	W := len(row)
	for j := 0; j < 4; j++ {
		c := 2*(4*g+j) + p
		cur := row[c]
		east := eastWord
		if c+1 < W {
			east = row[c+1]
		}
		west := westWord
		if c > 0 {
			west = row[c-1]
		}
		ge2, one, zero := multispin.DisagreeClasses(
			cur^north[c], cur^south[c], cur^east, cur^west)
		row[c] = cur ^ ((ge2 | one&a4[j] | zero&a8[j]) & k.laneMask)
	}
}

// UpdateRowRef is the retained naive reference of UpdateRow — randoms drawn
// two blocks/keys at a time inline, thresholds read through the per-lane
// kernels. It is never called by the engines; the golden-equivalence tests
// pin the optimized loop to it bit-for-bit.
func (k *Kernel) UpdateRowRef(row, north, south []uint64, westWord, eastWord uint64, globalRow, groupOff, parity int, step uint64) {
	p := (parity + globalRow) & 1
	s0, s1 := uint32(step), uint32(step>>32)
	rr := uint32(int64(globalRow))
	groups := len(row) / 8
	var a4, a8 [4]uint64
	for g := 0; g < groups; g++ {
		// Accept masks of the group's four active sites: bit L of a4[j] (a8[j])
		// decides lane L's flip at the j-th site when it has one (zero)
		// disagreeing neighbours.
		if k.shared {
			// One draw per ΔE class per site, shared by every lane.
			ba, bb := rng.BlockPair(
				rng.Counter{s0, s1, rr, uint32(2 * (groupOff + g))},
				rng.Counter{s0, s1, rr, uint32(2*(groupOff+g) + 1)},
				k.sharedKey)
			if k.uniform {
				t4, t8 := k.kerns[0].T4, k.kerns[0].T8
				for j := 0; j < 4; j++ {
					a4[j] = ^uint64(0) * ((uint64(ba[j]) - t4) >> 63)
					a8[j] = ^uint64(0) * ((uint64(bb[j]) - t8) >> 63)
				}
			} else {
				for j := 0; j < 4; j++ {
					a4[j], a8[j] = 0, 0
				}
				for l := 0; l < k.lanes; l++ {
					t4, t8 := k.kerns[l].T4, k.kerns[l].T8
					for j := 0; j < 4; j++ {
						a4[j] |= ((uint64(ba[j]) - t4) >> 63) << uint(l)
						a8[j] |= ((uint64(bb[j]) - t8) >> 63) << uint(l)
					}
				}
			}
		} else {
			// One draw per lane per site, through the lane's own key; two lanes
			// share each interleaved Philox evaluation.
			ctr := rng.Counter{s0, s1, rr, uint32(groupOff + g)}
			for j := 0; j < 4; j++ {
				a4[j], a8[j] = 0, 0
			}
			l := 0
			for ; l+1 < k.lanes; l += 2 {
				ba, bb := rng.BlockPairKeys(ctr, k.kerns[l].Key, k.kerns[l+1].Key)
				t4a, t8a := k.kerns[l].T4, k.kerns[l].T8
				t4b, t8b := k.kerns[l+1].T4, k.kerns[l+1].T8
				for j := 0; j < 4; j++ {
					a4[j] |= ((uint64(ba[j]) - t4a) >> 63) << uint(l)
					a8[j] |= ((uint64(ba[j]) - t8a) >> 63) << uint(l)
					a4[j] |= ((uint64(bb[j]) - t4b) >> 63) << uint(l+1)
					a8[j] |= ((uint64(bb[j]) - t8b) >> 63) << uint(l+1)
				}
			}
			if l < k.lanes {
				blk := rng.Block(ctr, k.kerns[l].Key)
				t4, t8 := k.kerns[l].T4, k.kerns[l].T8
				for j := 0; j < 4; j++ {
					a4[j] |= ((uint64(blk[j]) - t4) >> 63) << uint(l)
					a8[j] |= ((uint64(blk[j]) - t8) >> 63) << uint(l)
				}
			}
		}
		k.applyGroup(row, north, south, westWord, eastWord, g, p, &a4, &a8)
	}
}
