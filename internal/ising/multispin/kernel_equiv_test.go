package multispin

import (
	"math/rand"
	"testing"

	"tpuising/internal/rng"
)

// TestUpdateRowGoldenEquivalence is the golden bit-equivalence property test
// of the kernel variants: for random (rows, cols, seed, parity, shared,
// temperature, step, wordOff) tuples, the optimized UpdateRow /
// UpdateRowScratch paths (tiled + batched Philox; the AVX2 kernel when the
// binary is built with -tags avx2 on an AVX2 machine) must produce exactly
// the spins of UpdateRowRef, the retained naive reference. CI runs it under
// -race and under both build-tag combinations; rng.HasAVX2 names the variant
// actually exercised.
func TestUpdateRowGoldenEquivalence(t *testing.T) {
	t.Logf("avx2 kernels active: %v", rng.HasAVX2())
	prng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		W := 1 + prng.Intn(tileWords*2+3) // 1..131 words: tails, tile boundaries, multi-tile
		shared := prng.Intn(2) == 1
		parity := prng.Intn(2)
		globalRow := prng.Intn(1 << 20)
		wordOff := prng.Intn(1 << 20)
		step := prng.Uint64() >> uint(prng.Intn(40))
		seed := prng.Uint64()
		temp := 0.5 + 4*prng.Float64()
		k := NewKernel(temp, seed, shared)

		rowRef := make([]uint64, W)
		north := make([]uint64, W)
		south := make([]uint64, W)
		for i := 0; i < W; i++ {
			rowRef[i] = prng.Uint64()
			north[i] = prng.Uint64()
			south[i] = prng.Uint64()
		}
		westWrap, eastWrap := prng.Uint64(), prng.Uint64()

		rowOpt := append([]uint64(nil), rowRef...)
		rowSc := append([]uint64(nil), rowRef...)

		k.UpdateRowRef(rowRef, north, south, westWrap, eastWrap, globalRow, wordOff, parity, step)
		k.UpdateRow(rowOpt, north, south, westWrap, eastWrap, globalRow, wordOff, parity, step)
		var sc Scratch
		k.UpdateRowScratch(rowSc, north, south, westWrap, eastWrap, globalRow, wordOff, parity, step, &sc)

		for i := 0; i < W; i++ {
			if rowOpt[i] != rowRef[i] {
				t.Fatalf("trial %d (W=%d shared=%v parity=%d row=%d wordOff=%d step=%d): UpdateRow word %d = %#x, reference %#x",
					trial, W, shared, parity, globalRow, wordOff, step, i, rowOpt[i], rowRef[i])
			}
			if rowSc[i] != rowRef[i] {
				t.Fatalf("trial %d (W=%d shared=%v parity=%d row=%d wordOff=%d step=%d): UpdateRowScratch word %d = %#x, reference %#x",
					trial, W, shared, parity, globalRow, wordOff, step, i, rowSc[i], rowRef[i])
			}
		}
	}
}

// TestEngineSweepMatchesReferenceKernel drives whole engine sweeps and
// replays them with the reference kernel row by row: the engine's optimized
// hot loop (including its rolling-west and halo-snapshot invariants) is
// bit-identical to the naive kernel applied to the same rows.
func TestEngineSweepMatchesReferenceKernel(t *testing.T) {
	for _, shared := range []bool{false, true} {
		eng, err := New(Config{Rows: 16, Cols: 192, Temperature: 2.4, Seed: 99, SharedRandom: shared})
		if err != nil {
			t.Fatal(err)
		}
		// Reference state: same geometry, updated with UpdateRowRef directly.
		ref := append([]uint64(nil), eng.spins...)
		k := eng.kern
		W := eng.words
		refRow := func(r int) []uint64 { return ref[r*W : (r+1)*W] }
		for sweep := 0; sweep < 5; sweep++ {
			step := eng.step
			eng.Sweep()
			for _, pc := range []struct {
				parity int
				step   uint64
			}{{0, step}, {1, step + 1}} {
				for r := 0; r < eng.rows; r++ {
					row := refRow(r)
					north := refRow((r - 1 + eng.rows) % eng.rows)
					south := refRow((r + 1) % eng.rows)
					k.UpdateRowRef(row, north, south, row[W-1], row[0], r, 0, pc.parity, pc.step)
				}
			}
		}
		for i := range ref {
			if eng.spins[i] != ref[i] {
				t.Fatalf("shared=%v: engine word %d = %#x, reference replay %#x", shared, i, eng.spins[i], ref[i])
			}
		}
	}
}

// BenchmarkUpdateRow benchmarks the optimized per-site row kernel against the
// retained reference on a 4096-column row (64 words), the before/after pair
// of the PR-10 vectorization. Flip throughput: 32 active sites per word.
func BenchmarkUpdateRow(b *testing.B) {
	benchRow(b, false, false)
}

func BenchmarkUpdateRowRef(b *testing.B) {
	benchRow(b, false, true)
}

func BenchmarkUpdateRowShared(b *testing.B) {
	benchRow(b, true, false)
}

func BenchmarkUpdateRowSharedRef(b *testing.B) {
	benchRow(b, true, true)
}

func benchRow(b *testing.B, shared, ref bool) {
	const W = 64
	k := NewKernel(2.4, 7, shared)
	row := make([]uint64, W)
	north := make([]uint64, W)
	south := make([]uint64, W)
	for i := range row {
		row[i] = 0xAAAA5555AAAA5555 * uint64(i+1)
		north[i] = ^row[i]
		south[i] = row[i] >> 3
	}
	var sc Scratch
	b.SetBytes(W * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ref {
			k.UpdateRowRef(row, north, south, row[W-1], row[0], 5, 0, 0, uint64(i))
		} else {
			k.UpdateRowScratch(row, north, south, row[W-1], row[0], 5, 0, 0, uint64(i), &sc)
		}
	}
}
