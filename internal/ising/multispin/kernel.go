package multispin

import (
	"math"

	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// Kernel is the reusable core of the bit-packed Metropolis update: the two
// integer acceptance thresholds, the Philox key and the random-sharing mode.
// It is deliberately free of any lattice geometry — UpdateRow is handed the
// packed words of one row plus its neighbours and the row's *global*
// coordinates, so the whole-lattice Engine and the mesh-sharded engine
// (internal/ising/sharded) evaluate exactly the same pure function of
// (seed, step, global site) and stay bit-identical to each other.
type Kernel struct {
	// T4 and T8 are the 33-bit integer acceptance thresholds for one and zero
	// disagreeing neighbours (see acceptThreshold).
	T4, T8 uint64
	// Key is the site-keyed Philox key derived from the seed.
	Key rng.Key
	// Shared selects one random per 64-column word instead of one per site.
	Shared bool
}

// NewKernel derives the kernel of a temperature/seed pair. The key derivation
// matches rng.NewSiteKeyed, making the kernel one more member of the
// repository's site-keyed family.
func NewKernel(temperature float64, seed uint64, shared bool) Kernel {
	k := Kernel{
		Key:    rng.Key{uint32(seed), uint32(seed>>32) ^ 0x1BD11BDA},
		Shared: shared,
	}
	k.SetTemperature(temperature)
	return k
}

// SetTemperature recomputes the acceptance thresholds for a new temperature,
// leaving the key and the sharing mode untouched.
func (k *Kernel) SetTemperature(temperature float64) {
	if temperature <= 0 {
		panic("multispin: temperature must be positive")
	}
	beta := ising.Beta(temperature)
	k.T4 = acceptThreshold(math.Exp(-4 * beta * ising.J))
	k.T8 = acceptThreshold(math.Exp(-8 * beta * ising.J))
}

// DisagreeClasses bit-slices the four neighbour-disagreement masks of 64
// sites (or, in the lane-packed ensemble engine, of 64 independent chains at
// one site) into the three Metropolis acceptance classes: ge2 marks sites
// with >= 2 disagreeing neighbours (always accept), one marks exactly one
// (accept with probability exp(-4 beta)) and zero marks none (accept with
// probability exp(-8 beta)). It is the shared core of every bit-packed
// engine's hot loop — the whole-lattice engine, the mesh-sharded engine and
// internal/ising/ensemble all classify through it.
func DisagreeClasses(d1, d2, d3, d4 uint64) (ge2, one, zero uint64) {
	// Bit-sliced sum of the four d-bits into a 3-bit count per site.
	h0, c0 := d1^d2, d1&d2
	h1, c1 := d3^d4, d3&d4
	low := h0 ^ h1
	ca := h0 & h1
	mid := c0 ^ c1 ^ ca
	hi := (c0 & c1) | (ca & (c0 ^ c1))
	ge2 = mid | hi
	one = low &^ mid &^ hi
	zero = ^(low | mid | hi)
	return ge2, one, zero
}

// UpdateRow performs the colour update of the active sites of one packed
// lattice row, in place. row holds the W words of the row; north and south
// are the rows above and below (pre-update snapshots are fine: every
// neighbour bit consumed belongs to the opposite colour, which this update
// does not write). westWrap is the word logically west of row[0] (only its
// bit 63 is consumed) and eastWrap the word logically east of row[W-1] (only
// its bit 0 is consumed); the whole-lattice engine passes the row's own end
// words for the torus wrap, a shard passes its neighbour's halo.
//
// globalRow and wordOff are the row's global row index and the global word
// index of row[0]: they key the site randoms and select the active-colour
// parity, so a shard updating a window of a larger lattice draws exactly the
// randoms the whole-lattice engine would.
func (k Kernel) UpdateRow(row, north, south []uint64, westWrap, eastWrap uint64, globalRow, wordOff, parity int, step uint64) {
	W := len(row)
	s0, s1 := uint32(step), uint32(step>>32)
	t4, t8 := k.T4, k.T8
	// Columns of the active colour in this row have parity p.
	p := (parity + globalRow) & 1
	cmask := uint64(evenMask)
	if p == 1 {
		cmask = ^cmask
	}
	for w := 0; w < W; w++ {
		cur := row[w]
		eastSrc, westSrc := eastWrap, westWrap
		if w+1 < W {
			eastSrc = row[w+1]
		}
		if w > 0 {
			westSrc = row[w-1]
		}
		east := (cur >> 1) | (eastSrc << 63)
		west := (cur << 1) | (westSrc >> 63)
		// d-bits: 1 where the site disagrees with that neighbour.
		d1, d2, d3, d4 := cur^north[w], cur^south[w], cur^east, cur^west
		ge2, one, zero := DisagreeClasses(d1, d2, d3, d4)
		var a4, a8 uint64
		gw := w + wordOff
		if k.Shared {
			// One random shared by the whole word.
			u := uint64(rng.Block(rng.Counter{s0, s1, uint32(int64(globalRow)), uint32(gw)}, k.Key)[0])
			a4 = ^uint64(0) * ((u - t4) >> 63)
			a8 = ^uint64(0) * ((u - t8) >> 63)
		} else {
			// One random per active site: lane j&3 of the Philox block keyed
			// by (step, row, j>>2), where j = column/2 is the site's ordinal
			// among same-colour sites in the row. The word's 32 active sites
			// consume 8 blocks with no waste, generated two at a time so the
			// multiplies of independent blocks overlap in the pipeline.
			base := uint32(gw * 8)
			rr := uint32(int64(globalRow))
			for j := 0; j < 32; j += 8 {
				ba, bb := rng.BlockPair(
					rng.Counter{s0, s1, rr, base + uint32(j>>2)},
					rng.Counter{s0, s1, rr, base + uint32(j>>2) + 1},
					k.Key)
				pos := uint(2*j + p)
				a4 |= ((uint64(ba[0]) - t4) >> 63) << pos
				a8 |= ((uint64(ba[0]) - t8) >> 63) << pos
				a4 |= ((uint64(ba[1]) - t4) >> 63) << (pos + 2)
				a8 |= ((uint64(ba[1]) - t8) >> 63) << (pos + 2)
				a4 |= ((uint64(ba[2]) - t4) >> 63) << (pos + 4)
				a8 |= ((uint64(ba[2]) - t8) >> 63) << (pos + 4)
				a4 |= ((uint64(ba[3]) - t4) >> 63) << (pos + 6)
				a8 |= ((uint64(ba[3]) - t8) >> 63) << (pos + 6)
				a4 |= ((uint64(bb[0]) - t4) >> 63) << (pos + 8)
				a8 |= ((uint64(bb[0]) - t8) >> 63) << (pos + 8)
				a4 |= ((uint64(bb[1]) - t4) >> 63) << (pos + 10)
				a8 |= ((uint64(bb[1]) - t8) >> 63) << (pos + 10)
				a4 |= ((uint64(bb[2]) - t4) >> 63) << (pos + 12)
				a8 |= ((uint64(bb[2]) - t8) >> 63) << (pos + 12)
				a4 |= ((uint64(bb[3]) - t4) >> 63) << (pos + 14)
				a8 |= ((uint64(bb[3]) - t8) >> 63) << (pos + 14)
			}
		}
		row[w] = cur ^ ((ge2 | (one & a4) | (zero & a8)) & cmask)
	}
}
