package multispin

import (
	"math"

	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// Kernel is the reusable core of the bit-packed Metropolis update: the two
// integer acceptance thresholds, the Philox key and the random-sharing mode.
// It is deliberately free of any lattice geometry — UpdateRow is handed the
// packed words of one row plus its neighbours and the row's *global*
// coordinates, so the whole-lattice Engine and the mesh-sharded engine
// (internal/ising/sharded) evaluate exactly the same pure function of
// (seed, step, global site) and stay bit-identical to each other.
type Kernel struct {
	// T4 and T8 are the 33-bit integer acceptance thresholds for one and zero
	// disagreeing neighbours (see acceptThreshold).
	T4, T8 uint64
	// Key is the site-keyed Philox key derived from the seed.
	Key rng.Key
	// Shared selects one random per 64-column word instead of one per site.
	Shared bool
}

// NewKernel derives the kernel of a temperature/seed pair. The key derivation
// matches rng.NewSiteKeyed, making the kernel one more member of the
// repository's site-keyed family.
func NewKernel(temperature float64, seed uint64, shared bool) Kernel {
	k := Kernel{
		Key:    rng.Key{uint32(seed), uint32(seed>>32) ^ 0x1BD11BDA},
		Shared: shared,
	}
	k.SetTemperature(temperature)
	return k
}

// Thresholds is the precomputed integer acceptance pair of one temperature:
// the only temperature-dependent state of a kernel, and the only place the
// engine ever touches math.Exp. Consumers that change temperatures often —
// the replica-exchange swap loop flips two lanes per accepted swap — derive
// one Thresholds per ladder rung through a ThresholdCache and install it with
// SetThresholds, paying the two exponentials once per distinct temperature
// instead of twice per swap.
type Thresholds struct {
	T4, T8 uint64
}

// ThresholdsFor computes the acceptance pair of a temperature (two math.Exp
// calls). It panics if temperature is not positive.
func ThresholdsFor(temperature float64) Thresholds {
	if temperature <= 0 {
		panic("multispin: temperature must be positive")
	}
	beta := ising.Beta(temperature)
	return Thresholds{
		T4: acceptThreshold(math.Exp(-4 * beta * ising.J)),
		T8: acceptThreshold(math.Exp(-8 * beta * ising.J)),
	}
}

// ThresholdCache memoizes ThresholdsFor by exact temperature value. A
// tempering ladder revisits the same few rungs for the whole run, so after
// the first visit every SetTemperature on the swap path is one map lookup and
// no floating point. The cache is not safe for concurrent mutation; engines
// own one each and mutate it only from their (single-threaded) control path.
type ThresholdCache struct {
	m map[float64]Thresholds
}

// thresholdCacheLimit bounds the memo so a pathological caller sweeping
// millions of distinct temperatures cannot grow it without limit; on overflow
// the cache resets rather than evicting (ladders are tiny, resets are free).
const thresholdCacheLimit = 1024

// For returns the memoized acceptance pair of a temperature, computing and
// caching it on first sight.
func (c *ThresholdCache) For(temperature float64) Thresholds {
	if th, ok := c.m[temperature]; ok {
		return th
	}
	th := ThresholdsFor(temperature)
	if c.m == nil || len(c.m) >= thresholdCacheLimit {
		c.m = make(map[float64]Thresholds, 8)
	}
	c.m[temperature] = th
	return th
}

// SetTemperature recomputes the acceptance thresholds for a new temperature,
// leaving the key and the sharing mode untouched.
func (k *Kernel) SetTemperature(temperature float64) {
	k.SetThresholds(ThresholdsFor(temperature))
}

// SetThresholds installs a precomputed acceptance pair (see ThresholdCache).
func (k *Kernel) SetThresholds(th Thresholds) {
	k.T4, k.T8 = th.T4, th.T8
}

// DisagreeClasses bit-slices the four neighbour-disagreement masks of 64
// sites (or, in the lane-packed ensemble engine, of 64 independent chains at
// one site) into the three Metropolis acceptance classes: ge2 marks sites
// with >= 2 disagreeing neighbours (always accept), one marks exactly one
// (accept with probability exp(-4 beta)) and zero marks none (accept with
// probability exp(-8 beta)). It is the shared core of every bit-packed
// engine's hot loop — the whole-lattice engine, the mesh-sharded engine and
// internal/ising/ensemble all classify through it.
func DisagreeClasses(d1, d2, d3, d4 uint64) (ge2, one, zero uint64) {
	// Bit-sliced sum of the four d-bits into a 3-bit count per site.
	h0, c0 := d1^d2, d1&d2
	h1, c1 := d3^d4, d3&d4
	low := h0 ^ h1
	ca := h0 & h1
	mid := c0 ^ c1 ^ ca
	hi := (c0 & c1) | (ca & (c0 ^ c1))
	ge2 = mid | hi
	one = low &^ mid &^ hi
	zero = ^(low | mid | hi)
	return ge2, one, zero
}

// tileWords is the column-blocking width of the optimized row kernel: randoms
// are generated tileWords words at a time, so the per-site scratch is
// tileWords*32 uint32s (8 KiB) — small enough that the tile's randoms, the
// row band and the neighbour rows stay cache-resident while the word loop
// consumes them.
const tileWords = 64

// Scratch is the reusable random buffer of the optimized row kernel. Engines
// keep one per worker goroutine and pass it to every UpdateRowScratch call;
// the zero value is ready to use and grows on first use. It carries no
// kernel state — only scratch memory — so any kernel may use any scratch.
type Scratch struct {
	rand []uint32
}

// buf returns an n-word view of the scratch, growing it if needed.
func (s *Scratch) buf(n int) []uint32 {
	if cap(s.rand) < n {
		s.rand = make([]uint32, n)
	}
	return s.rand[:n]
}

// UpdateRow performs the colour update of the active sites of one packed
// lattice row, in place. row holds the W words of the row; north and south
// are the rows above and below (pre-update snapshots are fine: every
// neighbour bit consumed belongs to the opposite colour, which this update
// does not write). westWrap is the word logically west of row[0] (only its
// bit 63 is consumed) and eastWrap the word logically east of row[W-1] (only
// its bit 0 is consumed); the whole-lattice engine passes the row's own end
// words for the torus wrap, a shard passes its neighbour's halo.
//
// globalRow and wordOff are the row's global row index and the global word
// index of row[0]: they key the site randoms and select the active-colour
// parity, so a shard updating a window of a larger lattice draws exactly the
// randoms the whole-lattice engine would.
//
// UpdateRow is the convenience form that brings its own scratch; the engines'
// hot loops call UpdateRowScratch with a persistent per-worker Scratch
// instead. Both run the optimized kernel — batched Philox rows, tiled column
// blocking, hoisted word-boundary handling — and are bit-identical to
// UpdateRowRef, the retained naive reference (pinned by the golden
// equivalence tests in kernel_equiv_test.go).
func (k Kernel) UpdateRow(row, north, south []uint64, westWrap, eastWrap uint64, globalRow, wordOff, parity int, step uint64) {
	var sc Scratch
	k.UpdateRowScratch(row, north, south, westWrap, eastWrap, globalRow, wordOff, parity, step, &sc)
}

// UpdateRowScratch is UpdateRow with a caller-owned scratch buffer, the form
// the engines' hot loops use. The randoms of a whole tile of words are
// generated into the scratch with one batched Philox call (rng.BlockRow — the
// AVX2 kernel when built with the avx2 tag, the 4-way portable loop
// otherwise), then the word loop consumes them with the wrap/select branches
// hoisted into explicit first/middle/last-word handling.
//
// Within one colour update the kernel writes only active-colour bits and
// consumes only inactive-colour neighbour bits, so the word loop may read
// row[w-1] after updating it: the one west bit it consumes (bit 63, an
// odd-parity column) is consumed only by even-parity updates and written only
// by odd-parity ones. That is what lets the loop roll the west neighbour
// through a local instead of re-selecting westWrap/row[w-1] per word, and it
// is the same invariant that makes the engines' pre-update halo snapshots
// exact.
func (k Kernel) UpdateRowScratch(row, north, south []uint64, westWrap, eastWrap uint64, globalRow, wordOff, parity int, step uint64, sc *Scratch) {
	W := len(row)
	if W == 0 {
		return
	}
	s0, s1 := uint32(step), uint32(step>>32)
	rr := uint32(int64(globalRow))
	p := uint((parity + globalRow) & 1)
	cmask := uint64(evenMask)
	if p == 1 {
		cmask = ^cmask
	}
	t4, t8 := k.T4, k.T8
	for w0 := 0; w0 < W; w0 += tileWords {
		w1 := w0 + tileWords
		if w1 > W {
			w1 = W
		}
		// Batch the tile's randoms: per-site mode consumes 8 blocks (32
		// uint32s) per word at consecutive counters starting at (wordOff+w0)*8;
		// shared mode one block per word starting at wordOff+w0. Both match
		// the reference's per-word counters exactly (mod-2^32 arithmetic
		// included), so the words drawn are Block-for-Block the same.
		var rnd []uint32
		if k.Shared {
			rnd = sc.buf(tileWords * 4)[:(w1-w0)*4]
			rng.BlockRow(rnd, rng.Counter{s0, s1, rr, uint32(wordOff + w0)}, k.Key)
		} else {
			rnd = sc.buf(tileWords * 32)[:(w1-w0)*32]
			rng.BlockRow(rnd, rng.Counter{s0, s1, rr, uint32((wordOff + w0) * 8)}, k.Key)
		}
		// Hoisted boundary handling: the west neighbour rolls through a
		// local (see above), the east select happens once, for the tile's
		// last word, instead of once per word.
		westSrc := westWrap
		if w0 > 0 {
			westSrc = row[w0-1]
		}
		last := w1 - 1
		if k.Shared {
			for w := w0; w < last; w++ {
				row[w] = sharedUpdateWord(row[w], north[w], south[w], row[w+1], westSrc,
					uint64(rnd[(w-w0)*4]), t4, t8, cmask)
				westSrc = row[w]
			}
			eastSrc := eastWrap
			if w1 < W {
				eastSrc = row[w1]
			}
			row[last] = sharedUpdateWord(row[last], north[last], south[last], eastSrc, westSrc,
				uint64(rnd[(last-w0)*4]), t4, t8, cmask)
		} else {
			for w := w0; w < last; w++ {
				row[w] = siteUpdateWord(row[w], north[w], south[w], row[w+1], westSrc,
					rnd[(w-w0)*32:(w-w0)*32+32], t4, t8, p, cmask)
				westSrc = row[w]
			}
			eastSrc := eastWrap
			if w1 < W {
				eastSrc = row[w1]
			}
			row[last] = siteUpdateWord(row[last], north[last], south[last], eastSrc, westSrc,
				rnd[(last-w0)*32:(last-w0)*32+32], t4, t8, p, cmask)
		}
	}
}

// siteUpdateWord updates one 64-column word in per-site mode: the 32 active
// sites consume rnd[0..31] (site with in-word same-colour ordinal j reads
// rnd[j], which the batched row generation laid out as component j&3 of block
// j>>2 — exactly the reference's draw).
func siteUpdateWord(cur, north, south, eastSrc, westSrc uint64, rnd []uint32, t4, t8 uint64, p uint, cmask uint64) uint64 {
	east := (cur >> 1) | (eastSrc << 63)
	west := (cur << 1) | (westSrc >> 63)
	ge2, one, zero := DisagreeClasses(cur^north, cur^south, cur^east, cur^west)
	var a4, a8 uint64
	rnd = rnd[:32]
	for j := 0; j < 32; j += 4 {
		pos := uint(2*j) + p
		a4 |= ((uint64(rnd[j]) - t4) >> 63) << pos
		a8 |= ((uint64(rnd[j]) - t8) >> 63) << pos
		a4 |= ((uint64(rnd[j+1]) - t4) >> 63) << (pos + 2)
		a8 |= ((uint64(rnd[j+1]) - t8) >> 63) << (pos + 2)
		a4 |= ((uint64(rnd[j+2]) - t4) >> 63) << (pos + 4)
		a8 |= ((uint64(rnd[j+2]) - t8) >> 63) << (pos + 4)
		a4 |= ((uint64(rnd[j+3]) - t4) >> 63) << (pos + 6)
		a8 |= ((uint64(rnd[j+3]) - t8) >> 63) << (pos + 6)
	}
	return cur ^ ((ge2 | one&a4 | zero&a8) & cmask)
}

// sharedUpdateWord updates one 64-column word in shared mode: one random u
// decides the whole word's class acceptances.
func sharedUpdateWord(cur, north, south, eastSrc, westSrc, u uint64, t4, t8, cmask uint64) uint64 {
	east := (cur >> 1) | (eastSrc << 63)
	west := (cur << 1) | (westSrc >> 63)
	ge2, one, zero := DisagreeClasses(cur^north, cur^south, cur^east, cur^west)
	a4 := ^uint64(0) * ((u - t4) >> 63)
	a8 := ^uint64(0) * ((u - t8) >> 63)
	return cur ^ ((ge2 | one&a4 | zero&a8) & cmask)
}

// UpdateRowRef is the retained naive reference implementation of UpdateRow:
// word-at-a-time, branching wrap selection, randoms drawn two blocks at a
// time inline. It is never called by the engines — it exists so the golden
// equivalence property test can pin every optimized variant (portable tiled,
// AVX2 when built) to the exact spins this loop produces at any
// (seed, step, geometry).
func (k Kernel) UpdateRowRef(row, north, south []uint64, westWrap, eastWrap uint64, globalRow, wordOff, parity int, step uint64) {
	W := len(row)
	s0, s1 := uint32(step), uint32(step>>32)
	t4, t8 := k.T4, k.T8
	// Columns of the active colour in this row have parity p.
	p := (parity + globalRow) & 1
	cmask := uint64(evenMask)
	if p == 1 {
		cmask = ^cmask
	}
	for w := 0; w < W; w++ {
		cur := row[w]
		eastSrc, westSrc := eastWrap, westWrap
		if w+1 < W {
			eastSrc = row[w+1]
		}
		if w > 0 {
			westSrc = row[w-1]
		}
		east := (cur >> 1) | (eastSrc << 63)
		west := (cur << 1) | (westSrc >> 63)
		// d-bits: 1 where the site disagrees with that neighbour.
		d1, d2, d3, d4 := cur^north[w], cur^south[w], cur^east, cur^west
		ge2, one, zero := DisagreeClasses(d1, d2, d3, d4)
		var a4, a8 uint64
		gw := w + wordOff
		if k.Shared {
			// One random shared by the whole word.
			u := uint64(rng.Block(rng.Counter{s0, s1, uint32(int64(globalRow)), uint32(gw)}, k.Key)[0])
			a4 = ^uint64(0) * ((u - t4) >> 63)
			a8 = ^uint64(0) * ((u - t8) >> 63)
		} else {
			// One random per active site: lane j&3 of the Philox block keyed
			// by (step, row, j>>2), where j = column/2 is the site's ordinal
			// among same-colour sites in the row. The word's 32 active sites
			// consume 8 blocks with no waste, generated two at a time so the
			// multiplies of independent blocks overlap in the pipeline.
			base := uint32(gw * 8)
			rr := uint32(int64(globalRow))
			for j := 0; j < 32; j += 8 {
				ba, bb := rng.BlockPair(
					rng.Counter{s0, s1, rr, base + uint32(j>>2)},
					rng.Counter{s0, s1, rr, base + uint32(j>>2) + 1},
					k.Key)
				pos := uint(2*j + p)
				a4 |= ((uint64(ba[0]) - t4) >> 63) << pos
				a8 |= ((uint64(ba[0]) - t8) >> 63) << pos
				a4 |= ((uint64(ba[1]) - t4) >> 63) << (pos + 2)
				a8 |= ((uint64(ba[1]) - t8) >> 63) << (pos + 2)
				a4 |= ((uint64(ba[2]) - t4) >> 63) << (pos + 4)
				a8 |= ((uint64(ba[2]) - t8) >> 63) << (pos + 4)
				a4 |= ((uint64(ba[3]) - t4) >> 63) << (pos + 6)
				a8 |= ((uint64(ba[3]) - t8) >> 63) << (pos + 6)
				a4 |= ((uint64(bb[0]) - t4) >> 63) << (pos + 8)
				a8 |= ((uint64(bb[0]) - t8) >> 63) << (pos + 8)
				a4 |= ((uint64(bb[1]) - t4) >> 63) << (pos + 10)
				a8 |= ((uint64(bb[1]) - t8) >> 63) << (pos + 10)
				a4 |= ((uint64(bb[2]) - t4) >> 63) << (pos + 12)
				a8 |= ((uint64(bb[2]) - t8) >> 63) << (pos + 12)
				a4 |= ((uint64(bb[3]) - t4) >> 63) << (pos + 14)
				a8 |= ((uint64(bb[3]) - t8) >> 63) << (pos + 14)
			}
		}
		row[w] = cur ^ ((ge2 | (one & a4) | (zero & a8)) & cmask)
	}
}
