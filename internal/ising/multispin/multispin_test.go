package multispin

import (
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// randomLattice fills a lattice with spins drawn from the given stream.
func randomLattice(rows, cols int, p *rng.Philox) *ising.Lattice {
	l := ising.NewLattice(rows, cols)
	for i := range l.Spins {
		if p.Float32() < 0.5 {
			l.Spins[i] = -1
		}
	}
	return l
}

// referenceUpdateColor is the scalar reference of one colour update: it
// recomputes every accept/reject decision with plain lattice arithmetic and
// the engine's own per-site randoms and thresholds.
func referenceUpdateColor(e *Engine, l *ising.Lattice, parity int, step uint64) {
	before := l.Clone()
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			if (r+c)%2 != parity {
				continue
			}
			d := 0
			s := before.At(r, c)
			for _, nb := range [][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
				if before.At(nb[0], nb[1]) != s {
					d++
				}
			}
			var u uint64
			if e.kern.Shared {
				u = uint64(e.wordRand(step, r, c/WordBits))
			} else {
				u = uint64(e.siteRand(step, r, c))
			}
			flip := false
			switch d {
			case 0:
				flip = u < e.kern.T8
			case 1:
				flip = u < e.kern.T4
			default:
				flip = true
			}
			if flip {
				l.Flip(r, c)
			}
		}
	}
}

// TestBitLevelEquivalence is the bit-level property test: for random small
// lattices, temperatures and steps, one bulk colour update must produce
// exactly the accept/reject decisions of the scalar reference given the same
// per-site randoms.
func TestBitLevelEquivalence(t *testing.T) {
	p := rng.New(7)
	for _, shared := range []bool{false, true} {
		for trial := 0; trial < 20; trial++ {
			rows := 2 * (1 + p.Intn(4))        // 2..8
			cols := WordBits * (1 + p.Intn(3)) // 64..192
			temp := 1.5 + 2.5*p.Float64()
			e, err := New(Config{
				Rows: rows, Cols: cols, Temperature: temp,
				Seed: uint64(trial)*13 + 1, SharedRandom: shared, Workers: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			start := randomLattice(rows, cols, p)
			if err := e.SetLattice(start); err != nil {
				t.Fatal(err)
			}
			want := start.Clone()
			step := uint64(p.Intn(1000))
			for parity := 0; parity < 2; parity++ {
				e.updateColor(parity, step+uint64(parity))
				referenceUpdateColor(e, want, parity, step+uint64(parity))
				if got := e.Lattice(); !got.Equal(want) {
					t.Fatalf("shared=%v trial %d: %dx%d at T=%.3f parity %d: bulk and scalar decisions differ",
						shared, trial, rows, cols, temp, parity)
				}
			}
		}
	}
}

// TestObservablesMatchLattice checks the bitwise magnetisation and energy
// against the int8 reference on random configurations (exact integers, so
// exact equality is required).
func TestObservablesMatchLattice(t *testing.T) {
	p := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		rows, cols := 2*(1+p.Intn(5)), WordBits*(1+p.Intn(3))
		l := randomLattice(rows, cols, p)
		e, err := New(Config{Rows: rows, Cols: cols, Temperature: 2.5, Initial: l})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := e.SumSpins(), l.SumSpins(); got != want {
			t.Fatalf("SumSpins = %d, lattice says %d", got, want)
		}
		if got, want := e.Energy(), l.Energy(); got != want {
			t.Fatalf("Energy = %v, lattice says %v", got, want)
		}
		if !e.Lattice().Equal(l) {
			t.Fatal("Lattice round-trip changed the configuration")
		}
	}
}

// TestDeterminismAcrossWorkers: fixed seed + fixed config must give the same
// final lattice hash regardless of the worker count, in both random modes.
func TestDeterminismAcrossWorkers(t *testing.T) {
	for _, shared := range []bool{false, true} {
		var want uint64
		for i, workers := range []int{1, 2, 3, 7, 16} {
			e, err := New(Config{
				Rows: 48, Cols: 128, Temperature: 2.2, Seed: 99,
				SharedRandom: shared, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			e.Run(25)
			h := e.Hash()
			if i == 0 {
				want = h
			} else if h != want {
				t.Fatalf("shared=%v: workers=%d hash %x, workers=1 hash %x", shared, workers, h, want)
			}
		}
	}
}

// TestHotPhaseDecorrelates is a sanity check that the dynamics actually move:
// a cold lattice at very high temperature must lose nearly all magnetisation.
func TestHotPhaseDecorrelates(t *testing.T) {
	e, err := New(Config{Rows: 64, Cols: 64, Temperature: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(50)
	if m := e.Magnetization(); m > 0.2 || m < -0.2 {
		t.Fatalf("magnetisation %v did not decay at T=50", m)
	}
	if e.Step() != 100 {
		t.Fatalf("Step() = %d after 50 sweeps, want 100", e.Step())
	}
}

// TestColdPhaseStaysOrdered: far below Tc a cold lattice must stay close to
// fully magnetised.
func TestColdPhaseStaysOrdered(t *testing.T) {
	e, err := New(Config{Rows: 64, Cols: 64, Temperature: 1.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(50)
	if m := e.Magnetization(); m < 0.95 {
		t.Fatalf("magnetisation %v decayed at T=1.0", m)
	}
}

// TestConfigValidation exercises the constructor's error paths.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rows: 3, Cols: 64, Temperature: 2},
		{Rows: 0, Cols: 64, Temperature: 2},
		{Rows: 4, Cols: 60, Temperature: 2},
		{Rows: 4, Cols: 0, Temperature: 2},
		{Rows: 4, Cols: 64, Temperature: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
	e, err := New(Config{Rows: 4, Cols: 64})
	if err != nil {
		t.Fatal(err)
	}
	if e.Temperature() != ising.CriticalTemperature() {
		t.Fatalf("zero temperature did not default to Tc")
	}
	if e.Name() != "multispin" {
		t.Fatalf("Name() = %q", e.Name())
	}
	if (&Engine{kern: Kernel{Shared: true}}).Name() != "multispin-shared" {
		t.Fatal("shared Name() wrong")
	}
}

// TestCountsTrackAttempts checks the host work counter.
func TestCountsTrackAttempts(t *testing.T) {
	e, err := New(Config{Rows: 8, Cols: 64, Temperature: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(4)
	if got, want := e.Counts().Ops, int64(4*8*64); got != want {
		t.Fatalf("Counts().Ops = %d, want %d", got, want)
	}
}
