// Package multispin implements a bit-packed multi-spin-coded checkerboard
// Metropolis engine for the 2-D Ising model: 64 spins are stored per uint64
// word (bit 1 = spin up) and the four-neighbour interaction of all 64 lattice
// columns of a word is evaluated at once with shifts, XORs and a bit-sliced
// population count, the standard multi-spin coding technique of the
// GPU implementations the paper compares against (Preis et al., Block et
// al., Romero & Fatica).
//
// Because a spin and its neighbour agree exactly when their bits are equal,
// the local field enters only through the number of disagreeing neighbours
// d in 0..4: the Metropolis acceptance probability exp(-2*beta*s*nn) with
// s*nn = 4 - 2d is 1 for d >= 2 and exp(-4*beta), exp(-8*beta) for d = 1, 0.
// The two non-trivial probabilities are precomputed as 32-bit integer
// thresholds, so the accept/reject of a site is a single unsigned compare of
// a Philox random word -- no floating point in the hot loop.
//
// Randomness is site-keyed like the rest of the repository: the random for
// lattice site (r, c) at colour-step t is a pure function of (seed, t, r, c),
// so the chain is deterministic and independent of the number of worker
// goroutines. One Philox block yields the randoms of four neighbouring
// same-colour sites, amortising the generator fourfold over the scalar
// engines. A cheaper shared-random variant (one random per 64-column word,
// Config.SharedRandom) trades per-site independence for another large factor,
// at the cost of weak intra-word correlations.
package multispin

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"runtime"
	"sync"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// WordBits is the number of lattice columns packed per machine word.
const WordBits = 64

// evenMask selects the even bit positions (even lattice columns) of a word.
const evenMask = 0x5555555555555555

// Config describes a multispin engine.
type Config struct {
	// Rows and Cols are the lattice dimensions. Rows must be even and at
	// least 2; Cols must be a positive multiple of 64 (the word width).
	Rows, Cols int
	// Temperature is in units of J/kB.
	Temperature float64
	// Seed seeds the site-keyed Philox stream.
	Seed uint64
	// SharedRandom selects the cheap variant that draws one random per
	// 64-column word instead of one per site.
	SharedRandom bool
	// Workers is the number of row-band goroutines per colour update
	// (0 = GOMAXPROCS).
	Workers int
	// Initial is an optional starting configuration; a cold (all +1) lattice
	// is used when nil.
	Initial *ising.Lattice
}

// Engine is the bit-packed sampler. It satisfies ising.Backend.
type Engine struct {
	rows, cols, words int
	spins             []uint64 // rows*words, row-major; bit i of word (r,w) = spin (r, w*64+i)
	temperature       float64
	kern              Kernel // thresholds, Philox key and random-sharing mode
	step              uint64
	workers           int
	halo              []uint64       // scratch for the per-band boundary-row snapshots
	scratches         []Scratch      // per-band random scratch buffers for the batched kernel
	thresholds        ThresholdCache // memoized acceptance pairs for SetTemperature
}

// New builds an engine from the config.
func New(cfg Config) (*Engine, error) {
	if cfg.Rows < 2 || cfg.Rows%2 != 0 {
		return nil, fmt.Errorf("multispin: rows must be even and >= 2, got %d", cfg.Rows)
	}
	if cfg.Cols <= 0 || cfg.Cols%WordBits != 0 {
		return nil, fmt.Errorf("multispin: cols must be a positive multiple of %d, got %d", WordBits, cfg.Cols)
	}
	temp := cfg.Temperature
	if temp == 0 {
		temp = ising.CriticalTemperature()
	}
	if temp <= 0 {
		return nil, fmt.Errorf("multispin: temperature must be positive, got %g", temp)
	}
	e := &Engine{
		rows:        cfg.Rows,
		cols:        cfg.Cols,
		words:       cfg.Cols / WordBits,
		workers:     cfg.Workers,
		temperature: temp,
		kern:        NewKernel(temp, cfg.Seed, cfg.SharedRandom),
		spins:       make([]uint64, cfg.Rows*cfg.Cols/WordBits),
	}
	if cfg.Initial != nil {
		if err := e.SetLattice(cfg.Initial); err != nil {
			return nil, err
		}
	} else {
		for i := range e.spins {
			e.spins[i] = ^uint64(0) // cold start: all spins +1
		}
	}
	return e, nil
}

// SetTemperature changes the simulation temperature; the chain continues from
// the current configuration.
func (e *Engine) SetTemperature(t float64) {
	if t <= 0 {
		panic("multispin: temperature must be positive")
	}
	e.temperature = t
	// Memoized: a tempering ladder toggles a replica between the same few
	// rungs for the whole run, so the swap path pays math.Exp once per rung.
	e.kern.SetThresholds(e.thresholds.For(t))
}

// acceptThreshold maps an acceptance probability to the 33-bit integer
// threshold t such that a 32-bit uniform u accepts exactly when u < t.
func acceptThreshold(p float64) uint64 {
	if p >= 1 {
		return 1 << 32
	}
	if p <= 0 {
		return 0
	}
	return uint64(p * (1 << 32))
}

// Name identifies the engine ("multispin" or "multispin-shared").
func (e *Engine) Name() string {
	if e.kern.Shared {
		return "multispin-shared"
	}
	return "multispin"
}

// Rows returns the number of lattice rows.
func (e *Engine) Rows() int { return e.rows }

// Cols returns the number of lattice columns.
func (e *Engine) Cols() int { return e.cols }

// N returns the number of spins.
func (e *Engine) N() int { return e.rows * e.cols }

// Step returns the number of colour updates performed so far.
func (e *Engine) Step() uint64 { return e.step }

// Temperature returns the current temperature.
func (e *Engine) Temperature() float64 { return e.temperature }

// Sweep performs one whole-lattice update: all black sites (even row+col
// parity), then all white sites, consuming two colour-step indices.
func (e *Engine) Sweep() {
	e.updateColor(0, e.step)
	e.updateColor(1, e.step+1)
	e.step += 2
}

// Run performs n sweeps.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Sweep()
	}
}

// Counts reports the attempted spin updates (one per site per sweep) in Ops;
// the engine runs on the host, so no device work is modelled.
func (e *Engine) Counts() metrics.Counts {
	return metrics.Counts{Ops: int64(e.step) * int64(e.N()) / 2}
}

// updateColor performs one Metropolis update of every site of one colour
// (parity 0 = black, 1 = white) at the given colour-step index.
func (e *Engine) updateColor(parity int, step uint64) {
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > e.rows {
		workers = e.rows
	}
	if workers <= 1 {
		if len(e.scratches) == 0 {
			e.scratches = make([]Scratch, 1)
		}
		e.updateColorRows(parity, step, 0, e.rows, nil, nil, &e.scratches[0])
		return
	}

	// Row-band parallelism: within one colour update no two updated sites
	// interact, so bands of rows are independent. A band's first and last
	// rows read neighbour rows owned by adjacent bands; those rows share
	// words with concurrently written same-colour bits, so each band gets a
	// pre-update snapshot of its two boundary neighbour rows (a host-side
	// halo exchange). All snapshots are taken before any band starts
	// writing, which also keeps the chain independent of the band count.
	W := e.words
	rowsPer := (e.rows + workers - 1) / workers
	bands := (e.rows + rowsPer - 1) / rowsPer
	if need := 2 * bands * W; cap(e.halo) < need {
		e.halo = make([]uint64, need)
	}
	type band struct {
		r0, r1       int
		north, south []uint64
	}
	plan := make([]band, 0, bands)
	for r0 := 0; r0 < e.rows; r0 += rowsPer {
		r1 := r0 + rowsPer
		if r1 > e.rows {
			r1 = e.rows
		}
		i := len(plan)
		north := e.halo[(2*i)*W : (2*i+1)*W]
		south := e.halo[(2*i+1)*W : (2*i+2)*W]
		copy(north, e.rowWords((r0-1+e.rows)%e.rows))
		copy(south, e.rowWords(r1%e.rows))
		plan = append(plan, band{r0: r0, r1: r1, north: north, south: south})
	}
	// One persistent random scratch per band: the batched kernel reuses its
	// buffer across rows and sweeps, and bands never share one (they run
	// concurrently).
	if len(e.scratches) < len(plan) {
		e.scratches = make([]Scratch, len(plan))
	}
	var wg sync.WaitGroup
	for i, b := range plan {
		wg.Add(1)
		go func(b band, sc *Scratch) {
			defer wg.Done()
			e.updateColorRows(parity, step, b.r0, b.r1, b.north, b.south, sc)
		}(b, &e.scratches[i])
	}
	wg.Wait()
}

// rowWords returns the packed words of one lattice row.
func (e *Engine) rowWords(r int) []uint64 {
	return e.spins[r*e.words : (r+1)*e.words]
}

// updateColorRows updates the sites of one colour in rows [r0, r1). When
// northHalo/southHalo are non-nil they are pre-update snapshots of rows
// r0-1 and r1 (mod rows), used instead of the live lattice at the band
// boundary. All neighbour bits consumed by the update belong to the other
// colour, so live interior reads and snapshot boundary reads see the same
// values and the result is independent of the banding.
func (e *Engine) updateColorRows(parity int, step uint64, r0, r1 int, northHalo, southHalo []uint64, sc *Scratch) {
	W := e.words
	for r := r0; r < r1; r++ {
		row := e.rowWords(r)
		north := e.rowWords((r - 1 + e.rows) % e.rows)
		if r == r0 && northHalo != nil {
			north = northHalo
		}
		south := e.rowWords((r + 1) % e.rows)
		if r == r1-1 && southHalo != nil {
			south = southHalo
		}
		// The torus wraps east of the last word onto the row's first word and
		// west of the first word onto its last (only one bit of each is
		// consumed, and it always belongs to the inactive colour).
		e.kern.UpdateRowScratch(row, north, south, row[W-1], row[0], r, 0, parity, step, sc)
	}
}

// siteRand returns the 32-bit random consumed by site (r, c) at the given
// colour-step in per-site mode; it is the pure function the bulk kernel
// evaluates four lanes at a time (the scalar reference of the equivalence
// tests recomputes decisions from it).
func (e *Engine) siteRand(step uint64, r, c int) uint32 {
	j := c >> 1
	ctr := rng.Counter{uint32(step), uint32(step >> 32), uint32(int64(r)), uint32(j >> 2)}
	return rng.Block(ctr, e.kern.Key)[j&3]
}

// wordRand returns the shared random of word w of row r in shared mode.
func (e *Engine) wordRand(step uint64, r, w int) uint32 {
	return rng.Block(rng.Counter{uint32(step), uint32(step >> 32), uint32(int64(r)), uint32(w)}, e.kern.Key)[0]
}

// Spin returns the spin at (row, col) as +-1 (no wrapping).
func (e *Engine) Spin(row, col int) int8 {
	if e.spins[row*e.words+col/WordBits]>>(uint(col)%WordBits)&1 == 1 {
		return 1
	}
	return -1
}

// SumSpins returns the total spin.
func (e *Engine) SumSpins() int64 {
	ones := 0
	for _, v := range e.spins {
		ones += bits.OnesCount64(v)
	}
	return int64(2*ones) - int64(e.N())
}

// Magnetization returns the magnetisation per spin.
func (e *Engine) Magnetization() float64 {
	return float64(e.SumSpins()) / float64(e.N())
}

// Energy returns the energy per spin: each site's east and south bonds are
// compared bitwise, so a popcount of the disagreement words counts the
// frustrated bonds.
func (e *Engine) Energy() float64 {
	W := e.words
	diff := 0
	for r := 0; r < e.rows; r++ {
		row := e.rowWords(r)
		south := e.rowWords((r + 1) % e.rows)
		for w := 0; w < W; w++ {
			wE := w + 1
			if wE == W {
				wE = 0
			}
			east := (row[w] >> 1) | (row[wE] << 63)
			diff += bits.OnesCount64(row[w] ^ east)
			diff += bits.OnesCount64(row[w] ^ south[w])
		}
	}
	n := e.N()
	return -ising.J * float64(2*n-2*diff) / float64(n)
}

// Lattice returns the current configuration as an ising.Lattice.
func (e *Engine) Lattice() *ising.Lattice {
	l := ising.NewLattice(e.rows, e.cols)
	for r := 0; r < e.rows; r++ {
		row := e.rowWords(r)
		for c := 0; c < e.cols; c++ {
			if row[c/WordBits]>>(uint(c)%WordBits)&1 == 0 {
				l.Spins[r*e.cols+c] = -1
			}
		}
	}
	return l
}

// SetLattice loads a configuration from an ising.Lattice.
func (e *Engine) SetLattice(l *ising.Lattice) error {
	if l.Rows != e.rows || l.Cols != e.cols {
		return fmt.Errorf("multispin: lattice is %dx%d, engine is %dx%d", l.Rows, l.Cols, e.rows, e.cols)
	}
	for i := range e.spins {
		e.spins[i] = 0
	}
	for r := 0; r < e.rows; r++ {
		row := e.rowWords(r)
		for c := 0; c < e.cols; c++ {
			if l.Spins[r*e.cols+c] == 1 {
				row[c/WordBits] |= 1 << (uint(c) % WordBits)
			}
		}
	}
	return nil
}

// Hash returns an FNV-1a hash of the packed configuration, used by the
// determinism tests to compare whole lattices cheaply.
func (e *Engine) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range e.spins {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
