package multispin

import (
	"encoding/binary"

	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// Snapshot captures the engine's chain state: the packed spin words (dumped
// little-endian, which is exactly the ising.Snapshot bit layout), the
// site-keyed Philox key and the colour-step counter. Both variants satisfy
// ising.Snapshotter — the snapshot's backend name distinguishes "multispin"
// from "multispin-shared", so a shared-random snapshot cannot silently
// restore into a per-site engine.
func (e *Engine) Snapshot() (*ising.Snapshot, error) {
	spins := make([]byte, len(e.spins)*8)
	for i, w := range e.spins {
		binary.LittleEndian.PutUint64(spins[i*8:], w)
	}
	return &ising.Snapshot{
		Backend:     e.Name(),
		Rows:        e.rows,
		Cols:        e.cols,
		Temperature: e.temperature,
		Step:        e.step,
		RNG:         rng.MarshalKey(e.kern.Key),
		Spins:       spins,
	}, nil
}

// Restore replaces the engine's chain state with a snapshot previously taken
// from the same multispin variant at the same lattice size.
func (e *Engine) Restore(snap *ising.Snapshot) error {
	if err := snap.Check(e.Name(), e.rows, e.cols); err != nil {
		return err
	}
	key, err := rng.UnmarshalKey(snap.RNG)
	if err != nil {
		return err
	}
	e.kern.Key = key
	for i := range e.spins {
		e.spins[i] = binary.LittleEndian.Uint64(snap.Spins[i*8:])
	}
	e.SetTemperature(snap.Temperature)
	e.step = snap.Step
	return nil
}
