package shardedensemble

import (
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/ensemble"
	"tpuising/internal/perf"
)

// TestLaneBitIdenticalToStandaloneEnsemble is the composition's central
// contract: every lane of a sharded ensemble is bit-identical to the same
// lane of a standalone ensemble with the same seed, for non-trivial grids
// including non-square ones and both random modes. The comparison is on the
// full packed configuration (Hash covers every lane bit of every site), plus
// the per-lane observables.
func TestLaneBitIdenticalToStandaloneEnsemble(t *testing.T) {
	cases := []struct {
		rows, cols   int
		gridR, gridC int
		lanes        int
		shared       bool
		ladder       bool
	}{
		{rows: 8, cols: 64, gridR: 2, gridC: 2, lanes: 5, shared: false, ladder: false},
		{rows: 12, cols: 128, gridR: 3, gridC: 4, lanes: 64, shared: false, ladder: true},
		{rows: 6, cols: 192, gridR: 2, gridC: 8, lanes: 17, shared: true, ladder: false},
		{rows: 16, cols: 64, gridR: 4, gridC: 1, lanes: 3, shared: true, ladder: true},
		{rows: 4, cols: 128, gridR: 1, gridC: 16, lanes: 33, shared: false, ladder: false},
	}
	for _, tc := range cases {
		var temps []float64
		if tc.ladder {
			temps = make([]float64, tc.lanes)
			for i := range temps {
				temps[i] = 1.8 + 0.05*float64(i)
			}
		}
		sharded, err := New(Config{
			Rows: tc.rows, Cols: tc.cols, GridR: tc.gridR, GridC: tc.gridC,
			Lanes: tc.lanes, Temperature: 2.3, Temperatures: temps,
			Seed: 77, SharedRandom: tc.shared, Hot: true,
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		plain, err := ensemble.New(ensemble.Config{
			Rows: tc.rows, Cols: tc.cols, Lanes: tc.lanes,
			Temperature: 2.3, Temperatures: temps,
			Seed: 77, SharedRandom: tc.shared, Hot: true, Workers: 1,
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if sharded.Hash() != plain.Hash() {
			t.Fatalf("%+v: initial configurations differ", tc)
		}
		for sweep := 0; sweep < 4; sweep++ {
			// Mid-run lane re-temperatures must stay identical too (the
			// tempering swap path).
			if sweep == 2 {
				sharded.SetLaneTemperature(0, 2.9)
				plain.SetLaneTemperature(0, 2.9)
			}
			sharded.Sweep()
			plain.Sweep()
			if sharded.Hash() != plain.Hash() {
				t.Fatalf("%+v: configurations diverged at sweep %d", tc, sweep)
			}
		}
		sm, pm := sharded.Magnetizations(), plain.Magnetizations()
		se, pe := sharded.Energies(), plain.Energies()
		for l := 0; l < tc.lanes; l++ {
			if sm[l] != pm[l] || se[l] != pe[l] {
				t.Fatalf("%+v lane %d: observables (m=%v e=%v) differ from standalone (m=%v e=%v)",
					tc, l, sm[l], se[l], pm[l], pe[l])
			}
		}
		if sharded.Step() != plain.Step() {
			t.Fatalf("%+v: steps diverged", tc)
		}
	}
}

// TestGridInvariance: the same run over different shard grids (including
// 1x1) is one chain — the decomposition is invisible in the configuration.
func TestGridInvariance(t *testing.T) {
	var ref *Engine
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {4, 2}, {1, 8}} {
		e, err := New(Config{
			Rows: 8, Cols: 128, GridR: grid[0], GridC: grid[1],
			Lanes: 9, Temperature: 2.2, Seed: 5, Hot: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(3)
		if ref == nil {
			ref = e
			continue
		}
		if e.Hash() != ref.Hash() {
			t.Fatalf("grid %v configuration differs from grid 1x1", grid)
		}
	}
}

// TestConfigValidation: the documented constraints reject with errors, not
// panics.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rows: 7, Cols: 64, Lanes: 1},                              // odd rows
		{Rows: 8, Cols: 60, Lanes: 1},                              // cols not a multiple of 64
		{Rows: 8, Cols: 64, Lanes: 0},                              // no lanes
		{Rows: 8, Cols: 64, Lanes: 65},                             // too many lanes
		{Rows: 8, Cols: 64, Lanes: 1, GridR: 3},                    // rows do not divide
		{Rows: 8, Cols: 64, Lanes: 1, GridC: 16},                   // shard narrower than a group
		{Rows: 8, Cols: 64, Lanes: 2, Temperatures: []float64{2}},  // ladder length mismatch
		{Rows: 8, Cols: 64, Lanes: 1, Temperatures: []float64{-1}}, // non-positive rung
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := New(Config{Rows: 8, Cols: 64, Lanes: 1, GridC: 8}); err != nil {
		t.Errorf("8-column shards rejected: %v", err)
	}
}

// TestSingleMatchesMultispin: the registry-facing single-chain wrapper is
// bit-identical to a standalone multispin chain with the same seed (lane 0's
// contract riding through the whole composition).
func TestSingleMatchesMultispin(t *testing.T) {
	s, err := NewSingle(Config{Rows: 8, Cols: 128, GridR: 2, GridC: 4, Temperature: 2.4, Seed: 11, Hot: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "sharded-ensemble" {
		t.Fatalf("single wrapper name %q", s.Name())
	}
	plain, err := ensemble.New(ensemble.Config{Rows: 8, Cols: 128, Lanes: 1, Temperature: 2.4, Seed: 11, Hot: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Sweep()
		plain.Sweep()
	}
	if s.Magnetization() != plain.Magnetizations()[0] || s.Energy() != plain.Energies()[0] {
		t.Fatalf("single wrapper (m=%v e=%v) differs from standalone lane (m=%v e=%v)",
			s.Magnetization(), s.Energy(), plain.Magnetizations()[0], plain.Energies()[0])
	}
}

// TestSingleSnapshotRoundTrip: snapshot, restore into a *different* shard
// grid, and the resumed chain matches the uninterrupted one sweep for sweep.
func TestSingleSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Rows: 8, Cols: 128, GridR: 2, GridC: 4, Temperature: 2.1, Seed: 23, Hot: true}
	orig, err := NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		orig.Sweep()
	}
	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob := ising.EncodeSnapshot(snap)
	decoded, err := ising.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewSingle(Config{Rows: 8, Cols: 128, GridR: 4, GridC: 2, Temperature: 2.1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if resumed.Step() != orig.Step() {
		t.Fatalf("restored step %d, want %d", resumed.Step(), orig.Step())
	}
	for i := 0; i < 4; i++ {
		orig.Sweep()
		resumed.Sweep()
		if orig.Engine().Hash() != resumed.Engine().Hash() {
			t.Fatalf("resumed chain diverged %d sweeps after restore", i+1)
		}
	}
	// Restores must be validated.
	wrong := *decoded
	wrong.Backend = "multispin"
	if err := resumed.Restore(&wrong); err == nil {
		t.Fatal("snapshot from another backend accepted")
	}
}

// TestCommCountsMatchShardedEnsembleTraffic: the engine's measured
// interconnect counters must reproduce the perf model's analytic per-sweep
// traffic exactly — the property that lets the harness print modelled traffic
// next to measured aggregate throughput.
func TestCommCountsMatchShardedEnsembleTraffic(t *testing.T) {
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {3, 4}, {4, 1}} {
		e, err := New(Config{
			Rows: 24, Cols: 64 * grid[1], GridR: grid[0], GridC: grid[1],
			Lanes: 48, Temperature: 2.5, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		const sweeps = 5
		e.Run(sweeps)
		rep := perf.ShardedEnsembleTraffic(perf.ShardedEnsembleSpec{
			Rows: e.Rows(), Cols: e.Cols(), GridR: grid[0], GridC: grid[1], Lanes: e.Lanes(),
		}, e.Pod().Mesh().Link)
		c := e.Counts()
		if c.CommBytes != sweeps*rep.TotalBytes {
			t.Errorf("grid %v: measured CommBytes %d != modelled %d", grid, c.CommBytes, sweeps*rep.TotalBytes)
		}
		if c.CommEvents != sweeps*rep.Events {
			t.Errorf("grid %v: measured CommEvents %d != modelled %d", grid, c.CommEvents, sweeps*rep.Events)
		}
		if c.Ops != sweeps*int64(e.N())*int64(e.Lanes()) {
			t.Errorf("grid %v: Ops = %d, want %d", grid, c.Ops, sweeps*int64(e.N())*int64(e.Lanes()))
		}
		if rep.PermuteSec <= 0 {
			t.Errorf("grid %v: modelled permute time should be positive", grid)
		}
	}
}

// BenchmarkShardedEnsembleSweep measures the composed engine: a 2x2 pod grid,
// each shard advancing 64 lane-packed lattices (per-lane randoms).
func BenchmarkShardedEnsembleSweep(b *testing.B) {
	benchSweep(b, 2, 2, false)
}

// BenchmarkShardedEnsembleSweepShared is the class-shared random mode.
func BenchmarkShardedEnsembleSweepShared(b *testing.B) {
	benchSweep(b, 2, 2, true)
}

// BenchmarkShardedEnsembleSweep1x1 is the no-decomposition baseline: the same
// ensemble through one shard, isolating the halo-exchange overhead.
func BenchmarkShardedEnsembleSweep1x1(b *testing.B) {
	benchSweep(b, 1, 1, false)
}

func benchSweep(b *testing.B, gridR, gridC int, shared bool) {
	e, err := New(Config{
		Rows: 64, Cols: 64, GridR: gridR, GridC: gridC,
		Lanes: 64, Temperature: 2.4, Seed: 1, SharedRandom: shared,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(e.N()) * int64(e.Lanes()) / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Sweep()
	}
}
