// Package shardedensemble composes the repository's two scaling axes into
// the paper's full execution shape: a GridR x GridC pod mesh of shards
// (internal/ising/sharded's spatial decomposition) where every shard advances
// up to 64 lane-packed replica lattices at once (internal/ising/ensemble's
// batch axis). Each shard owns a contiguous block of the per-lane lattice
// stored as lane-packed words — one uint64 per site, one bit-lane per
// replica — and each checkerboard half-sweep exchanges four halos of
// lane-packed words with its mesh neighbours over the simulated interconnect
// (pod.Replica.ShiftExchangeWords): its boundary rows north and south, its
// boundary site-word columns east and west. A word moved over a link carries
// that boundary site for all 64 replicas at once, which is exactly how the
// paper amortises halo latency over its per-core batch dimension.
//
// The composition is an execution strategy, never a physics change. Shards
// call the shared ensemble.Kernel with global row indices and global random-
// group offsets, so every site of every lane draws exactly the randoms the
// standalone ensemble engine draws — lane L of a sharded ensemble is
// bit-identical to lane L of a standalone ensemble with the same seed (and
// hence to a standalone multispin chain seeded ising.LaneSeed(seed, L)),
// whatever the shard grid. The lane-equivalence tests assert this per lane
// for multiple grids.
package shardedensemble

import (
	"fmt"
	"hash/fnv"
	"math/bits"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/ising/ensemble"
	"tpuising/internal/pod"
	"tpuising/internal/rng"
)

// MaxLanes is the number of replicas packed per uint64 word.
const MaxLanes = ensemble.MaxLanes

// groupCols is the column span of one four-site random group of a
// checkerboard colour (four active sites, stride two). Shard widths must be
// multiples of it so groups never straddle a shard boundary — the constraint
// that lets a shard draw its randoms with whole-group batched Philox calls
// at a global group offset.
const groupCols = 8

// Config describes a sharded lane-packed ensemble.
type Config struct {
	// Rows and Cols are the per-lane lattice dimensions, with the ensemble
	// constraints (even Rows >= 2, Cols a positive multiple of 64). Rows must
	// divide over GridR; Cols over GridC with every shard a multiple of 8
	// columns wide (so four-site random groups never straddle shards).
	Rows, Cols int
	// GridR and GridC are the shard grid dimensions: GridR shards along the
	// row (north-south) axis, GridC along the column (east-west) axis, one
	// simulated mesh core per shard (0 means 1).
	GridR, GridC int
	// Lanes is the number of independent replicas, 1 to 64.
	Lanes int
	// Temperature is the shared lane temperature in J/kB (0 = the critical
	// temperature). Ignored when Temperatures is set.
	Temperature float64
	// Temperatures, when non-empty, gives every lane its own temperature
	// (len == Lanes), like ensemble.Config.Temperatures.
	Temperatures []float64
	// Seed is the run seed; lane L's chain is seeded ising.LaneSeed(Seed, L).
	Seed uint64
	// SharedRandom selects the class-shared random mode (one draw per ΔE
	// class per site, shared across lanes).
	SharedRandom bool
	// Hot starts every lane from its own random (infinite-temperature)
	// lattice, exactly like ensemble.Config.Hot.
	Hot bool
}

// shard is one core's block of the lane-packed lattice plus its halo buffers.
type shard struct {
	words  []uint64 // shardRows*shardCols lane-packed site words, row-major
	rowOff int      // global row index of local row 0
	colOff int      // global column index of local column 0
	// north and south hold the neighbour boundary rows received for the
	// current half-sweep (shardCols words); east and west the neighbour
	// boundary site-word columns (shardRows words, one per local row).
	north, south []uint64
	east, west   []uint64
	edge         []uint64         // scratch for building outgoing word columns
	scratch      ensemble.Scratch // per-shard random scratch for the batched kernel
}

// Engine is the mesh-sharded lane-packed sampler. It satisfies
// ising.BatchBackend and ising.BatchTempered.
type Engine struct {
	rows, cols   int
	lanes        int
	gridR, gridC int
	shardRows    int // rows per shard
	shardCols    int // site words per shard row
	pod          *pod.Pod
	shards       []*shard // indexed by core ID (row-major over the mesh grid)
	kern         *ensemble.Kernel
	step         uint64
	seed         uint64

	// Observable caches, stamped like ensemble's (^0 = never).
	magsStep, esStep uint64
	mags, es         []float64
}

// New builds an engine from the config.
func New(cfg Config) (*Engine, error) {
	gridR, gridC := cfg.GridR, cfg.GridC
	if gridR == 0 {
		gridR = 1
	}
	if gridC == 0 {
		gridC = 1
	}
	if gridR < 0 || gridC < 0 {
		return nil, fmt.Errorf("shardedensemble: shard grid must be positive, got %dx%d", cfg.GridR, cfg.GridC)
	}
	if cfg.Rows < 2 || cfg.Rows%2 != 0 {
		return nil, fmt.Errorf("shardedensemble: rows must be even and >= 2, got %d", cfg.Rows)
	}
	if cfg.Rows%gridR != 0 {
		return nil, fmt.Errorf("shardedensemble: %d rows do not divide over %d shard rows (want rows %% gridR == 0)",
			cfg.Rows, gridR)
	}
	if cfg.Cols <= 0 || cfg.Cols%ensemble.MaxLanes != 0 {
		return nil, fmt.Errorf("shardedensemble: cols must be a positive multiple of %d, got %d",
			ensemble.MaxLanes, cfg.Cols)
	}
	if cfg.Cols%(gridC*groupCols) != 0 {
		return nil, fmt.Errorf(
			"shardedensemble: %d cols do not divide over %d shard columns into whole %d-column random groups (want cols %% (gridC*%d) == 0)",
			cfg.Cols, gridC, groupCols, groupCols)
	}
	if cfg.Lanes < 1 || cfg.Lanes > MaxLanes {
		return nil, fmt.Errorf("shardedensemble: lanes must be 1..%d, got %d", MaxLanes, cfg.Lanes)
	}
	temps := cfg.Temperatures
	if len(temps) == 0 {
		t := cfg.Temperature
		if t == 0 {
			t = ising.CriticalTemperature()
		}
		temps = make([]float64, cfg.Lanes)
		for i := range temps {
			temps[i] = t
		}
	}
	if len(temps) != cfg.Lanes {
		return nil, fmt.Errorf("shardedensemble: %d temperatures for %d lanes", len(temps), cfg.Lanes)
	}
	kern, err := ensemble.NewKernel(cfg.Seed, temps, cfg.SharedRandom)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		rows: cfg.Rows, cols: cfg.Cols, lanes: cfg.Lanes,
		gridR: gridR, gridC: gridC,
		shardRows: cfg.Rows / gridR,
		shardCols: cfg.Cols / gridC,
		kern:      kern,
		seed:      cfg.Seed,
		// Mesh X axis = shard columns, Y axis = shard rows, matching the
		// sharded engine's mapping of the lattice onto the pod grid.
		pod:      pod.New(gridC, gridR),
		magsStep: ^uint64(0),
		esStep:   ^uint64(0),
	}
	e.shards = make([]*shard, e.pod.NumCores())
	for id := range e.shards {
		x, y := e.pod.Mesh().Coord(id)
		sh := &shard{
			words:  make([]uint64, e.shardRows*e.shardCols),
			rowOff: y * e.shardRows,
			colOff: x * e.shardCols,
			edge:   make([]uint64, e.shardRows),
		}
		for i := range sh.words {
			sh.words[i] = ^uint64(0) // cold start: all lanes all spins +1
		}
		e.shards[id] = sh
	}
	if cfg.Hot {
		for l := 0; l < e.lanes; l++ {
			lat := ising.NewRandomLattice(cfg.Rows, cfg.Cols, rng.New(ising.LaneSeed(cfg.Seed, l)))
			if err := e.SetLaneLattice(l, lat); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// Name identifies the engine ("sharded-ensemble" or
// "sharded-ensemble-shared").
func (e *Engine) Name() string {
	if e.kern.SharedMode() {
		return "sharded-ensemble-shared"
	}
	return "sharded-ensemble"
}

// Rows returns the per-lane row count.
func (e *Engine) Rows() int { return e.rows }

// Cols returns the per-lane column count.
func (e *Engine) Cols() int { return e.cols }

// Lanes returns the number of replicas.
func (e *Engine) Lanes() int { return e.lanes }

// N returns the spins of one lane's lattice.
func (e *Engine) N() int { return e.rows * e.cols }

// Grid returns the shard grid dimensions (rows, cols of shards).
func (e *Engine) Grid() (gridR, gridC int) { return e.gridR, e.gridC }

// NumShards returns the number of shards (= simulated mesh cores).
func (e *Engine) NumShards() int { return len(e.shards) }

// Step returns the number of colour updates performed so far per lane.
func (e *Engine) Step() uint64 { return e.step }

// Seed returns the run seed.
func (e *Engine) Seed() uint64 { return e.seed }

// LaneTemperature returns one lane's current temperature.
func (e *Engine) LaneTemperature(lane int) float64 { return e.kern.LaneTemperature(lane) }

// SetLaneTemperature changes one lane's temperature; the lane's chain
// continues from its current configuration (thresholds memoized per rung,
// like the standalone ensemble).
func (e *Engine) SetLaneTemperature(lane int, t float64) {
	e.kern.SetLaneTemperature(lane, t)
}

// Footprint returns the bytes of lane-packed lattice state across all shards
// (one 64-lane word per site, whatever the active lane count).
// perf.ShardedEnsembleTraffic models this number.
func (e *Engine) Footprint() int64 { return int64(e.rows) * int64(e.cols) * 8 }

// Counts reports the attempted spin updates across all lanes in Ops (host
// work, like the other host engines) plus the pod-total interconnect traffic
// of the halo exchanges, which perf.ShardedEnsembleTraffic mirrors
// analytically (asserted equal by test).
func (e *Engine) Counts() metrics.Counts {
	total := e.pod.TotalCounts()
	return metrics.Counts{
		Ops:        int64(e.step) / 2 * int64(e.N()) * int64(e.lanes),
		CommBytes:  total.CommBytes,
		CommEvents: total.CommEvents,
		CommHops:   total.CommHops,
	}
}

// Pod exposes the underlying simulated pod (for profiling and tests).
func (e *Engine) Pod() *pod.Pod { return e.pod }

// rowWords returns the lane-packed words of one local row of a shard.
func (e *Engine) rowWords(sh *shard, r int) []uint64 {
	return sh.words[r*e.shardCols : (r+1)*e.shardCols]
}

// westColumn gathers the first word of every local row (the shard's
// westernmost site column, all lanes) into sh.edge and returns it.
func (e *Engine) westColumn(sh *shard) []uint64 {
	for r := 0; r < e.shardRows; r++ {
		sh.edge[r] = sh.words[r*e.shardCols]
	}
	return sh.edge
}

// eastColumn gathers the last word of every local row (the shard's
// easternmost site column, all lanes) into sh.edge and returns it.
func (e *Engine) eastColumn(sh *shard) []uint64 {
	for r := 0; r < e.shardRows; r++ {
		sh.edge[r] = sh.words[r*e.shardCols+e.shardCols-1]
	}
	return sh.edge
}

// exchangeHalos trades the four boundary halos with the mesh neighbours
// through the interconnect fabric: full lane-packed boundary rows north and
// south, lane-packed site-word columns east and west. Each call is four
// lockstep collective permutes; the received buffers are pre-update
// snapshots, which is exact because the colour update only consumes
// opposite-colour words.
func (e *Engine) exchangeHalos(r *pod.Replica, sh *shard) {
	// Send my last row south; receive my north neighbour's last row.
	sh.north = r.ShiftExchangeWords(e.rowWords(sh, e.shardRows-1), 0, 1)
	// Send my first row north; receive my south neighbour's first row.
	sh.south = r.ShiftExchangeWords(e.rowWords(sh, 0), 0, -1)
	// Send my west column west; receive my east neighbour's west column.
	sh.east = r.ShiftExchangeWords(e.westColumn(sh), -1, 0)
	// Send my east column east; receive my west neighbour's east column.
	sh.west = r.ShiftExchangeWords(e.eastColumn(sh), 1, 0)
}

// updateColor performs one Metropolis update of every active site of every
// lane on one shard, handing the shared lane-packed kernel global row indices
// and the shard's global random-group offset so the randoms match the
// standalone ensemble site for site.
func (e *Engine) updateColor(sh *shard, parity int, step uint64) {
	groupOff := sh.colOff / groupCols
	for lr := 0; lr < e.shardRows; lr++ {
		row := e.rowWords(sh, lr)
		north := sh.north
		if lr > 0 {
			north = e.rowWords(sh, lr-1)
		}
		south := sh.south
		if lr < e.shardRows-1 {
			south = e.rowWords(sh, lr+1)
		}
		e.kern.UpdateRow(row, north, south, sh.west[lr], sh.east[lr],
			sh.rowOff+lr, groupOff, parity, step, &sh.scratch)
	}
}

// Sweep performs one whole-lattice update of every lane: all shards exchange
// halos and update their black sites in lockstep, then exchange again and
// update the white sites, consuming two colour-step indices like every engine
// in the repository.
func (e *Engine) Sweep() {
	step := e.step
	err := e.pod.Replicate(func(r *pod.Replica) error {
		sh := e.shards[r.ID]
		e.exchangeHalos(r, sh)
		e.updateColor(sh, 0, step)
		e.exchangeHalos(r, sh)
		e.updateColor(sh, 1, step+1)
		return nil
	})
	if err != nil {
		panic(err)
	}
	e.step += 2
}

// Run performs n sweeps.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Sweep()
	}
}

// refreshMags recomputes the per-lane magnetisations at the current step.
func (e *Engine) refreshMags() {
	if e.mags != nil && e.magsStep == e.step {
		return
	}
	if e.mags == nil {
		e.mags = make([]float64, e.lanes)
	}
	mask := e.kern.LaneMask()
	up := make([]int64, e.lanes)
	for _, sh := range e.shards {
		for _, w := range sh.words {
			w &= mask
			for w != 0 {
				up[bits.TrailingZeros64(w)]++
				w &= w - 1
			}
		}
	}
	n := int64(e.N())
	for l := range e.mags {
		e.mags[l] = float64(2*up[l]-n) / float64(n)
	}
	e.magsStep = e.step
}

// Magnetizations returns the magnetisation per spin of every lane.
func (e *Engine) Magnetizations() []float64 {
	e.refreshMags()
	return append([]float64(nil), e.mags...)
}

// refreshEnergies recomputes the per-lane energies: each site's east and
// south bonds are compared wordwise and the per-lane disagreement bits
// accumulated, with the bonds that cross a shard boundary read directly from
// the neighbour shard on the host — Replicate has returned, so the shards are
// quiescent.
func (e *Engine) refreshEnergies() {
	if e.es != nil && e.esStep == e.step {
		return
	}
	if e.es == nil {
		e.es = make([]float64, e.lanes)
	}
	mask := e.kern.LaneMask()
	diff := make([]int64, e.lanes)
	mesh := e.pod.Mesh()
	for id, sh := range e.shards {
		x, y := mesh.Coord(id)
		eastSh := e.shards[mesh.ID(x+1, y)]
		southSh := e.shards[mesh.ID(x, y+1)]
		for r := 0; r < e.shardRows; r++ {
			row := e.rowWords(sh, r)
			south := e.rowWords(southSh, 0)
			if r < e.shardRows-1 {
				south = e.rowWords(sh, r+1)
			}
			for c := 0; c < e.shardCols; c++ {
				var east uint64
				if c+1 < e.shardCols {
					east = row[c+1]
				} else {
					east = e.rowWords(eastSh, r)[0]
				}
				de := (row[c] ^ east) & mask
				ds := (row[c] ^ south[c]) & mask
				for w := de; w != 0; w &= w - 1 {
					diff[bits.TrailingZeros64(w)]++
				}
				for w := ds; w != 0; w &= w - 1 {
					diff[bits.TrailingZeros64(w)]++
				}
			}
		}
	}
	n := int64(e.N())
	for l := range e.es {
		e.es[l] = -ising.J * float64(2*n-2*diff[l]) / float64(n)
	}
	e.esStep = e.step
}

// Energies returns the energy per spin of every lane.
func (e *Engine) Energies() []float64 {
	e.refreshEnergies()
	return append([]float64(nil), e.es...)
}

// shardAt returns the shard holding global site (row, col) and the site's
// local word index.
func (e *Engine) shardAt(row, col int) (*shard, int) {
	y, x := row/e.shardRows, col/e.shardCols
	sh := e.shards[e.pod.Mesh().ID(x, y)]
	return sh, (row-sh.rowOff)*e.shardCols + (col - sh.colOff)
}

// LaneSpin returns lane L's spin at global (row, col) as +-1 (no wrapping).
func (e *Engine) LaneSpin(lane, row, col int) int8 {
	sh, i := e.shardAt(row, col)
	if sh.words[i]>>uint(lane)&1 == 1 {
		return 1
	}
	return -1
}

// LaneLattice gathers one lane's configuration as an ising.Lattice.
func (e *Engine) LaneLattice(lane int) *ising.Lattice {
	l := ising.NewLattice(e.rows, e.cols)
	for _, sh := range e.shards {
		for r := 0; r < e.shardRows; r++ {
			row := e.rowWords(sh, r)
			base := (sh.rowOff+r)*e.cols + sh.colOff
			for c, w := range row {
				if w>>uint(lane)&1 == 0 {
					l.Spins[base+c] = -1
				}
			}
		}
	}
	return l
}

// SetLaneLattice scatters one lane's configuration over the shards.
func (e *Engine) SetLaneLattice(lane int, l *ising.Lattice) error {
	if l.Rows != e.rows || l.Cols != e.cols {
		return fmt.Errorf("shardedensemble: lattice is %dx%d, engine is %dx%d", l.Rows, l.Cols, e.rows, e.cols)
	}
	if lane < 0 || lane >= e.lanes {
		return fmt.Errorf("shardedensemble: lane %d out of range (engine has %d)", lane, e.lanes)
	}
	bit := uint64(1) << uint(lane)
	for _, sh := range e.shards {
		for r := 0; r < e.shardRows; r++ {
			row := e.rowWords(sh, r)
			base := (sh.rowOff+r)*e.cols + sh.colOff
			for c := range row {
				if l.Spins[base+c] == 1 {
					row[c] |= bit
				} else {
					row[c] &^= bit
				}
			}
		}
	}
	// The state changed without a step advance: drop the observable caches.
	e.mags, e.es = nil, nil
	return nil
}

// Hash returns an FNV-1a hash of the lane-packed configuration in global
// row-major site order (active lanes masked) — directly comparable with the
// hash of a standalone ensemble.Engine holding the same configuration.
func (e *Engine) Hash() uint64 {
	h := fnv.New64a()
	mask := e.kern.LaneMask()
	var buf [8]byte
	mesh := e.pod.Mesh()
	for gr := 0; gr < e.rows; gr++ {
		y := gr / e.shardRows
		for x := 0; x < e.gridC; x++ {
			sh := e.shards[mesh.ID(x, y)]
			for _, v := range e.rowWords(sh, gr-sh.rowOff) {
				v &= mask
				for i := 0; i < 8; i++ {
					buf[i] = byte(v >> (8 * i))
				}
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}
