package shardedensemble

import (
	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// Single adapts a one-lane sharded ensemble into a plain single-chain
// ising.Backend — the form the registry serves under the name
// "sharded-ensemble", so the CLI, the service and the harness can run the
// composed engine like any other backend. It satisfies ising.Backend,
// ising.Tempered and ising.Snapshotter. The chain is bit-identical to a
// standalone multispin chain with the same seed (lane 0's contract),
// whatever the shard grid.
type Single struct {
	e *Engine
}

// NewSingle builds a one-lane sharded ensemble from the config (Lanes and
// Temperatures are overridden: one lane at cfg.Temperature).
func NewSingle(cfg Config) (*Single, error) {
	cfg.Lanes = 1
	cfg.Temperatures = nil
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Single{e: e}, nil
}

// Engine exposes the underlying batch engine (for tests and profiling).
func (s *Single) Engine() *Engine { return s.e }

// Name identifies the engine ("sharded-ensemble").
func (s *Single) Name() string { return s.e.Name() }

// Sweep advances the chain by one whole-lattice update.
func (s *Single) Sweep() { s.e.Sweep() }

// Step returns the number of colour updates performed so far.
func (s *Single) Step() uint64 { return s.e.Step() }

// N returns the number of spins.
func (s *Single) N() int { return s.e.N() }

// Magnetization returns the magnetisation per spin.
func (s *Single) Magnetization() float64 { return s.e.Magnetizations()[0] }

// Energy returns the energy per spin.
func (s *Single) Energy() float64 { return s.e.Energies()[0] }

// Temperature returns the current temperature.
func (s *Single) Temperature() float64 { return s.e.LaneTemperature(0) }

// SetTemperature changes the simulation temperature; the chain continues
// from the current configuration.
func (s *Single) SetTemperature(t float64) { s.e.SetLaneTemperature(0, t) }

// Counts reports the chain's host work and the pod's interconnect traffic.
func (s *Single) Counts() metrics.Counts { return s.e.Counts() }

// Snapshot captures the chain state in whole-lattice coordinates: lane 0's
// spins gathered in global row-major order, the lane's Philox key and the
// colour-step counter. The shard grid is deliberately absent — the chain is
// a pure function of (seed, step, global site) and restores into any grid of
// the same lattice, exactly like the sharded backend's snapshots. It
// satisfies ising.Snapshotter.
func (s *Single) Snapshot() (*ising.Snapshot, error) {
	return &ising.Snapshot{
		Backend:     s.Name(),
		Rows:        s.e.rows,
		Cols:        s.e.cols,
		Temperature: s.Temperature(),
		Step:        s.e.step,
		RNG:         rng.MarshalKey(s.e.kern.LaneKey(0)),
		Spins:       s.e.LaneLattice(0).PackSpins(),
	}, nil
}

// Restore replaces the chain state with a snapshot previously taken from a
// sharded-ensemble engine at the same lattice size (any shard grid).
func (s *Single) Restore(snap *ising.Snapshot) error {
	if err := snap.Check(s.Name(), s.e.rows, s.e.cols); err != nil {
		return err
	}
	key, err := rng.UnmarshalKey(snap.RNG)
	if err != nil {
		return err
	}
	lat := ising.NewLattice(s.e.rows, s.e.cols)
	if err := lat.UnpackSpins(snap.Spins); err != nil {
		return err
	}
	s.e.kern.SetLaneKey(0, key)
	if err := s.e.SetLaneLattice(0, lat); err != nil {
		return err
	}
	s.SetTemperature(snap.Temperature)
	s.e.step = snap.Step
	return nil
}
