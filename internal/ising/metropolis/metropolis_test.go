package metropolis

import (
	"math"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

func TestColdPhaseStaysMagnetized(t *testing.T) {
	// Well below Tc a cold lattice must stay strongly magnetised.
	l := ising.NewLattice(32, 32)
	s := New(l, 1.5, 1)
	s.Run(200)
	if m := math.Abs(s.Magnetization()); m < 0.9 {
		t.Errorf("|m| at T=1.5 = %v, want > 0.9 (Onsager: %v)", m, ising.OnsagerMagnetization(1.5))
	}
}

func TestHotPhaseDisorders(t *testing.T) {
	// Well above Tc the magnetisation must vanish even from a cold start.
	l := ising.NewLattice(32, 32)
	s := New(l, 5.0, 2)
	s.Run(400)
	ms := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		s.Run(2)
		ms = append(ms, s.Magnetization())
	}
	var mean float64
	for _, m := range ms {
		mean += m
	}
	mean /= float64(len(ms))
	if math.Abs(mean) > 0.1 {
		t.Errorf("mean m at T=5 = %v, want ~0", mean)
	}
}

func TestMagnetizationMatchesOnsager(t *testing.T) {
	// At T = 1.8 (well below Tc) the finite-size |m| should be close to the
	// exact infinite-lattice value 0.9465.
	l := ising.NewLattice(48, 48)
	s := New(l, 1.8, 3)
	s.Run(500) // burn-in
	var sum float64
	const samples = 300
	for i := 0; i < samples; i++ {
		s.Run(2)
		sum += math.Abs(s.Magnetization())
	}
	got := sum / samples
	want := ising.OnsagerMagnetization(1.8)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("<|m|>(T=1.8) = %v, Onsager = %v", got, want)
	}
}

func TestEnergyMatchesExactSolution(t *testing.T) {
	l := ising.NewLattice(48, 48)
	s := New(l, 2.0, 4)
	s.Run(500)
	var sum float64
	const samples = 300
	for i := 0; i < samples; i++ {
		s.Run(2)
		sum += s.Energy()
	}
	got := sum / samples
	want := ising.ExactEnergyPerSpin(2.0)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("<E>(T=2.0) = %v, exact = %v", got, want)
	}
}

func TestAcceptanceRateBehaviour(t *testing.T) {
	// At very high temperature almost every proposal is accepted; at very low
	// temperature almost none are (from an ordered start).
	hot := New(ising.NewLattice(16, 16), 100, 5)
	hot.Run(50)
	if hot.AcceptanceRate() < 0.9 {
		t.Errorf("hot acceptance = %v", hot.AcceptanceRate())
	}
	cold := New(ising.NewLattice(16, 16), 0.5, 6)
	cold.Run(50)
	if cold.AcceptanceRate() > 0.05 {
		t.Errorf("cold acceptance = %v", cold.AcceptanceRate())
	}
	empty := New(ising.NewLattice(4, 4), 1, 7)
	if empty.AcceptanceRate() != 0 {
		t.Error("acceptance before any step should be 0")
	}
}

func TestSetTemperatureRebuildsTable(t *testing.T) {
	s := New(ising.NewLattice(8, 8), 0.5, 8)
	s.Run(20)
	before := s.AcceptanceRate()
	s.SetTemperature(50)
	s.Run(200)
	if s.AcceptanceRate() <= before {
		t.Error("raising temperature should raise the acceptance rate")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := New(ising.NewRandomLattice(16, 16, rng.New(9)), 2.2, 42)
	b := New(ising.NewRandomLattice(16, 16, rng.New(9)), 2.2, 42)
	a.Run(10)
	b.Run(10)
	if !a.Lattice.Equal(b.Lattice) {
		t.Fatal("same seed should give identical chains")
	}
	c := New(ising.NewRandomLattice(16, 16, rng.New(9)), 2.2, 43)
	c.Run(10)
	if a.Lattice.Equal(c.Lattice) {
		t.Fatal("different seeds should diverge")
	}
}

func TestSequentialSweepPreservesPhysics(t *testing.T) {
	l := ising.NewLattice(32, 32)
	s := New(l, 1.5, 10)
	for i := 0; i < 200; i++ {
		s.SequentialSweep()
	}
	if m := math.Abs(s.Magnetization()); m < 0.9 {
		t.Errorf("sequential sweep |m| = %v", m)
	}
}

func TestBoltzmannDistributionExact2x2(t *testing.T) {
	// Exact check of the stationary distribution on a 2x2 torus (16 states):
	// empirical visit frequencies must match the Boltzmann weights of the
	// same Hamiltonian the sampler uses.
	const temperature = 2.5
	beta := ising.Beta(temperature)
	l := ising.NewLattice(2, 2)

	// Exact distribution.
	exact := make([]float64, 16)
	var z float64
	for state := 0; state < 16; state++ {
		setState(l, state)
		e := l.Energy() * float64(l.N())
		exact[state] = math.Exp(-beta * e)
		z += exact[state]
	}
	for i := range exact {
		exact[i] /= z
	}

	// Empirical distribution from the chain.
	setState(l, 0)
	s := New(l, temperature, 11)
	counts := make([]float64, 16)
	const samples = 400000
	for i := 0; i < samples; i++ {
		s.Sweep()
		counts[stateOf(l)]++
	}
	for state := 0; state < 16; state++ {
		got := counts[state] / samples
		if math.Abs(got-exact[state]) > 0.01 {
			t.Errorf("state %04b: empirical %.4f vs exact %.4f", state, got, exact[state])
		}
	}
}

func setState(l *ising.Lattice, bits int) {
	for i := 0; i < 4; i++ {
		s := int8(1)
		if bits&(1<<i) != 0 {
			s = -1
		}
		l.Set(i/2, i%2, s)
	}
}

func stateOf(l *ising.Lattice) int {
	bits := 0
	for i := 0; i < 4; i++ {
		if l.At(i/2, i%2) == -1 {
			bits |= 1 << i
		}
	}
	return bits
}

func BenchmarkMetropolisSweep64(b *testing.B) {
	l := ising.NewLattice(64, 64)
	s := New(l, 2.269, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sweep()
	}
	b.ReportMetric(float64(l.N()), "spins/sweep")
}
