// Package metropolis implements the standard single-spin-flip
// Metropolis-Hastings sampler for the 2-D Ising model.  It is the textbook
// baseline the checkerboard algorithm is derived from (Section 3.1 of the
// paper) and serves as the statistical ground truth the parallel samplers
// are validated against on small lattices.
package metropolis

import (
	"math"

	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// Sampler performs single-spin-flip Metropolis updates on a lattice.
type Sampler struct {
	Lattice *ising.Lattice
	Beta    float64

	rng *rng.Philox
	// acceptance lookup: exp(-2*beta*s*nn) depends only on s*nn in
	// {-4,...,4}; precomputing it keeps the hot loop free of math.Exp.
	accept [9]float64
	flips  int64
	tries  int64
}

// New returns a sampler for the given lattice at temperature T with its own
// random stream.
func New(lat *ising.Lattice, temperature float64, seed uint64) *Sampler {
	s := &Sampler{Lattice: lat, Beta: ising.Beta(temperature), rng: rng.New(seed)}
	s.rebuildTable()
	return s
}

// SetTemperature changes the sampling temperature.
func (s *Sampler) SetTemperature(temperature float64) {
	s.Beta = ising.Beta(temperature)
	s.rebuildTable()
}

func (s *Sampler) rebuildTable() {
	for k := -4; k <= 4; k++ {
		s.accept[k+4] = math.Exp(-2 * s.Beta * ising.J * float64(k))
	}
}

// Step proposes a single random-site spin flip and accepts it with the
// Metropolis probability min(1, exp(-beta*dE)).
func (s *Sampler) Step() {
	l := s.Lattice
	r := s.rng.Intn(l.Rows)
	c := s.rng.Intn(l.Cols)
	s.tries++
	k := int(l.At(r, c)) * l.NeighborSum(r, c)
	// dE = 2*J*s*nn; accept if uniform < exp(-beta*dE).
	if a := s.accept[k+4]; a >= 1 || s.rng.Float64() < a {
		l.Flip(r, c)
		s.flips++
	}
}

// Sweep performs N single-site update attempts (N = number of spins), the
// conventional unit of Monte-Carlo time.
func (s *Sampler) Sweep() {
	for i := 0; i < s.Lattice.N(); i++ {
		s.Step()
	}
}

// SequentialSweep visits every site once in row-major order (a valid variant
// with the same stationary distribution; useful for deterministic tests).
func (s *Sampler) SequentialSweep() {
	l := s.Lattice
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			s.tries++
			k := int(l.At(r, c)) * l.NeighborSum(r, c)
			if a := s.accept[k+4]; a >= 1 || s.rng.Float64() < a {
				l.Flip(r, c)
				s.flips++
			}
		}
	}
}

// Run performs n sweeps.
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Sweep()
	}
}

// AcceptanceRate returns the fraction of proposed flips that were accepted.
func (s *Sampler) AcceptanceRate() float64 {
	if s.tries == 0 {
		return 0
	}
	return float64(s.flips) / float64(s.tries)
}

// Magnetization returns the current magnetisation per spin.
func (s *Sampler) Magnetization() float64 { return s.Lattice.Magnetization() }

// Energy returns the current energy per spin.
func (s *Sampler) Energy() float64 { return s.Lattice.Energy() }
