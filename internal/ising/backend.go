package ising

import "tpuising/internal/device/metrics"

// Backend is the interface every Ising engine in this repository satisfies:
// the serial checkerboard reference, the GPU-style parallel baseline, the
// bit-packed multispin engine and the simulated-TPU simulator. The harness,
// the temperature-sweep driver, the CLI and the benchmarks all select engines
// through it (see internal/ising/backend for the name-based factory).
type Backend interface {
	// Name identifies the engine in tables, flags and benchmark output.
	Name() string
	// Sweep advances the chain by one whole-lattice update (both colours).
	Sweep()
	// Step returns the number of colour updates performed so far (two per
	// sweep, matching the checkerboard step-index convention).
	Step() uint64
	// Magnetization returns the magnetisation per spin of the current state.
	Magnetization() float64
	// Energy returns the energy per spin of the current state.
	Energy() float64
	// Counts returns the work counters accumulated since construction (or the
	// last reset). Device-simulator backends report modelled device work;
	// host backends report the attempted spin updates in Counts.Ops.
	Counts() metrics.Counts
}
