package ising

import "tpuising/internal/device/metrics"

// Backend is the interface every Ising engine in this repository satisfies:
// the serial checkerboard reference, the GPU-style parallel baseline, the
// bit-packed multispin engine and the simulated-TPU simulator. The harness,
// the temperature-sweep driver, the CLI and the benchmarks all select engines
// through it (see internal/ising/backend for the name-based factory).
type Backend interface {
	// Name identifies the engine in tables, flags and benchmark output.
	Name() string
	// Sweep advances the chain by one whole-lattice update (both colours).
	Sweep()
	// Step returns the number of colour updates performed so far (two per
	// sweep, matching the checkerboard step-index convention).
	Step() uint64
	// Magnetization returns the magnetisation per spin of the current state.
	Magnetization() float64
	// Energy returns the energy per spin of the current state.
	Energy() float64
	// Counts returns the work counters accumulated since construction (or the
	// last reset). Device-simulator backends report modelled device work;
	// host backends report the attempted spin updates in Counts.Ops.
	Counts() metrics.Counts
}

// Tempered is the optional extension of Backend that the replica-exchange
// layer (internal/tempering) requires of its replicas: the engine must expose
// its spin count, so swap decisions can use the extensive (total) energy, and
// it must be able to continue its chain at a new temperature after an
// accepted swap re-labels the replica. Every registered engine implements it
// — the host engines recompute their acceptance thresholds, and the tpu
// simulator re-derives beta as in an annealing schedule.
type Tempered interface {
	Backend
	// N returns the number of spins of the lattice.
	N() int
	// SetTemperature changes the simulation temperature; the chain continues
	// from the current configuration.
	SetTemperature(t float64)
}
