package ising

import (
	"fmt"
	"runtime"
	"sync"

	"tpuising/internal/device/metrics"
)

// BatchBackend is the batched counterpart of Backend: B independent Markov
// chains ("lanes") over lattices of one size, advanced together by a single
// Sweep. It is the ensemble axis of the repository — the paper's headline
// throughput comes not only from bit-packing one lattice but from each core
// simulating a batch of independent lattices at once, and every layer that
// consumes backends (tempering ladders, temperature sweeps, the simulation
// service, the CLI) can run B chains for roughly the price of one through
// this interface. Two implementations exist: the generic adapter returned by
// NewBatchOf, which lifts any registered Backend into a lane-parallel
// ensemble, and the lane-packed engine of internal/ising/ensemble, which
// stores one bit per chain in each uint64 word.
type BatchBackend interface {
	// Name identifies the engine in tables, flags and benchmark output.
	Name() string
	// Lanes returns the number of independent chains B.
	Lanes() int
	// N returns the number of spins of one lane's lattice.
	N() int
	// Sweep advances every lane by one whole-lattice update (both colours).
	Sweep()
	// Step returns the number of colour updates performed so far per lane
	// (two per sweep, like Backend.Step).
	Step() uint64
	// Magnetizations returns the magnetisation per spin of every lane, in
	// lane order. The returned slice is the caller's to keep.
	Magnetizations() []float64
	// Energies returns the energy per spin of every lane, in lane order.
	Energies() []float64
	// Counts returns the work counters accumulated over all lanes.
	Counts() metrics.Counts
}

// BatchTempered is the optional extension of BatchBackend that the
// replica-exchange layer requires when it runs its ladder as one ensemble
// (one lane per rung): each lane's temperature must be changeable
// independently, so an accepted swap can re-label two lanes in place.
type BatchTempered interface {
	BatchBackend
	// SetLaneTemperature changes one lane's simulation temperature; the
	// lane's chain continues from its current configuration.
	SetLaneTemperature(lane int, t float64)
}

// LaneSeed derives the chain seed of one ensemble lane from the run seed (a
// splitmix-style odd-constant hop), so lanes never share site-keyed streams.
// It is the single seed-derivation rule of the batch axis: the generic
// adapter, the lane-packed engine, the tempering ladder
// (tempering.ReplicaSeed delegates here) and the service's replicated jobs
// all seed lane L with LaneSeed(seed, L), which is what makes lane L of a
// packed ensemble bit-identical to a standalone chain run with the same
// derived seed.
func LaneSeed(seed uint64, lane int) uint64 {
	return seed + uint64(lane)*0x9E3779B97F4A7C15
}

// Batch is the generic batch adapter: B independently constructed Backends
// behind one BatchBackend, swept lane-parallel. Every lane must implement
// Tempered (all registered engines do), which supplies the spin count and
// per-lane temperature control. It satisfies BatchTempered.
type Batch struct {
	name    string
	lanes   []Tempered
	workers int
	spins   int
}

// NewBatchOf lifts a slice of independently constructed backends into a
// BatchBackend. All lanes must implement Tempered, share one engine type
// (Name) and one lattice size. workers bounds how many lanes sweep
// concurrently (0 = GOMAXPROCS); like every worker knob in this repository
// it changes wall-clock time only, never a result — the lanes are
// independent chains.
func NewBatchOf(lanes []Backend, workers int) (*Batch, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("ising: a batch needs at least one lane")
	}
	b := &Batch{workers: workers, lanes: make([]Tempered, len(lanes))}
	for i, l := range lanes {
		rep, ok := l.(Tempered)
		if !ok {
			return nil, fmt.Errorf("ising: batch lane %d (%s) does not implement ising.Tempered", i, l.Name())
		}
		if i == 0 {
			b.name = l.Name()
			b.spins = rep.N()
		} else {
			if l.Name() != b.name {
				return nil, fmt.Errorf("ising: batch lane %d is %s, lane 0 is %s (all lanes must share one engine type)",
					i, l.Name(), b.name)
			}
			if rep.N() != b.spins {
				return nil, fmt.Errorf("ising: batch lane %d has %d spins, lane 0 has %d (all lanes must share one lattice size)",
					i, rep.N(), b.spins)
			}
		}
		b.lanes[i] = rep
	}
	return b, nil
}

// Name returns the underlying engine's name (the batch is visible through
// Lanes, not the name, so tables and results stay comparable with
// single-chain runs of the same engine).
func (b *Batch) Name() string { return b.name }

// Lanes returns the number of chains.
func (b *Batch) Lanes() int { return len(b.lanes) }

// N returns the spins of one lane's lattice.
func (b *Batch) N() int { return b.spins }

// Step returns lane 0's colour-update counter (all lanes advance together).
func (b *Batch) Step() uint64 { return b.lanes[0].Step() }

// Lane returns one lane's backend (for reporting and tests).
func (b *Batch) Lane(i int) Backend { return b.lanes[i] }

// Sweep advances every lane by one whole-lattice update, up to workers lanes
// concurrently.
func (b *Batch) Sweep() {
	workers := b.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(b.lanes) {
		workers = len(b.lanes)
	}
	if workers <= 1 {
		for _, l := range b.lanes {
			l.Sweep()
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, l := range b.lanes {
		wg.Add(1)
		go func(l Tempered) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			l.Sweep()
		}(l)
	}
	wg.Wait()
}

// Magnetizations returns every lane's magnetisation per spin.
func (b *Batch) Magnetizations() []float64 {
	out := make([]float64, len(b.lanes))
	for i, l := range b.lanes {
		out[i] = l.Magnetization()
	}
	return out
}

// Energies returns every lane's energy per spin.
func (b *Batch) Energies() []float64 {
	out := make([]float64, len(b.lanes))
	for i, l := range b.lanes {
		out[i] = l.Energy()
	}
	return out
}

// SetLaneTemperature changes one lane's temperature.
func (b *Batch) SetLaneTemperature(lane int, t float64) {
	b.lanes[lane].SetTemperature(t)
}

// Counts aggregates the work counters of every lane.
func (b *Batch) Counts() metrics.Counts {
	var total metrics.Counts
	for _, l := range b.lanes {
		total.Add(l.Counts())
	}
	return total
}

// LaneView adapts one lane of a batch into a read-only ising.Backend for
// reporting: observables, name, step and counts read through; Sweep panics,
// because a single lane of a batch cannot advance alone — callers that need
// to sweep must drive the batch itself.
func LaneView(b BatchBackend, lane int) Backend { return laneView{b: b, lane: lane} }

type laneView struct {
	b    BatchBackend
	lane int
}

func (v laneView) Name() string { return v.b.Name() }
func (v laneView) Sweep() {
	panic("ising: a lane view is read-only; sweep the batch backend, not a single lane")
}
func (v laneView) Step() uint64           { return v.b.Step() }
func (v laneView) Magnetization() float64 { return v.b.Magnetizations()[v.lane] }
func (v laneView) Energy() float64        { return v.b.Energies()[v.lane] }
func (v laneView) Counts() metrics.Counts { return v.b.Counts() }
