// Package ising contains the physics of the two-dimensional ferromagnetic
// Ising model on a square lattice with periodic (torus) boundary conditions:
// the spin configuration type used by the CPU reference samplers, the
// observables the paper uses to validate correctness (magnetisation per spin,
// energy per spin, Binder parameter), and the exact results they are checked
// against (the Onsager critical temperature and spontaneous magnetisation).
//
// Conventions follow the paper: coupling J = 1, no external field (mu = 0),
// Boltzmann constant kB = 1, spins take values +-1.
package ising

import (
	"fmt"
	"math"

	"tpuising/internal/rng"
	"tpuising/internal/tensor"
)

// J is the nearest-neighbour coupling constant (ferromagnetic).
const J = 1.0

// CriticalTemperature returns the exact critical temperature of the
// two-dimensional square-lattice Ising model, Tc = 2 / ln(1 + sqrt(2))
// (Onsager 1944), in units of J/kB.
func CriticalTemperature() float64 {
	return 2.0 / math.Log(1.0+math.Sqrt2)
}

// Beta returns the inverse temperature 1/(kB T) for kB = 1.
func Beta(temperature float64) float64 {
	if temperature <= 0 {
		panic("ising: temperature must be positive")
	}
	return 1.0 / temperature
}

// OnsagerMagnetization returns the exact spontaneous magnetisation per spin
// of the infinite lattice: (1 - sinh(2 beta J)^-4)^(1/8) below Tc, and 0 at
// or above Tc.
func OnsagerMagnetization(temperature float64) float64 {
	if temperature >= CriticalTemperature() {
		return 0
	}
	s := math.Sinh(2.0 * Beta(temperature) * J)
	return math.Pow(1.0-math.Pow(s, -4), 1.0/8.0)
}

// Lattice is a spin configuration on a Rows x Cols torus, stored as +-1
// int8 values in row-major order. It is the representation used by the CPU
// reference samplers (single-spin Metropolis and the plain checkerboard).
type Lattice struct {
	Rows, Cols int
	Spins      []int8
}

// NewLattice returns a cold (all spins +1) lattice.
func NewLattice(rows, cols int) *Lattice {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("ising: invalid lattice size %dx%d", rows, cols))
	}
	l := &Lattice{Rows: rows, Cols: cols, Spins: make([]int8, rows*cols)}
	for i := range l.Spins {
		l.Spins[i] = 1
	}
	return l
}

// NewRandomLattice returns a hot (infinite temperature) lattice with spins
// drawn independently and uniformly from {-1, +1}.
func NewRandomLattice(rows, cols int, p *rng.Philox) *Lattice {
	l := NewLattice(rows, cols)
	for i := range l.Spins {
		if p.Float32() < 0.5 {
			l.Spins[i] = -1
		}
	}
	return l
}

// At returns the spin at (row, col) with torus wrapping.
func (l *Lattice) At(row, col int) int8 {
	row = mod(row, l.Rows)
	col = mod(col, l.Cols)
	return l.Spins[row*l.Cols+col]
}

// Set assigns the spin at (row, col) (no wrapping; indices must be in range).
func (l *Lattice) Set(row, col int, s int8) {
	if s != 1 && s != -1 {
		panic("ising: spin must be +1 or -1")
	}
	l.Spins[row*l.Cols+col] = s
}

// Flip negates the spin at (row, col).
func (l *Lattice) Flip(row, col int) {
	l.Spins[row*l.Cols+col] = -l.Spins[row*l.Cols+col]
}

func mod(a, n int) int { return ((a % n) + n) % n }

// N returns the number of spins.
func (l *Lattice) N() int { return l.Rows * l.Cols }

// NeighborSum returns the sum of the four nearest-neighbour spins of (row,
// col) on the torus.
func (l *Lattice) NeighborSum(row, col int) int {
	return int(l.At(row-1, col)) + int(l.At(row+1, col)) +
		int(l.At(row, col-1)) + int(l.At(row, col+1))
}

// SumSpins returns the total spin.
func (l *Lattice) SumSpins() int64 {
	var s int64
	for _, v := range l.Spins {
		s += int64(v)
	}
	return s
}

// Magnetization returns the magnetisation per spin, m = (1/N) sum_i sigma_i.
func (l *Lattice) Magnetization() float64 {
	return float64(l.SumSpins()) / float64(l.N())
}

// AbsMagnetization returns |m|; on finite lattices the symmetry is not
// spontaneously broken, so |m| is the quantity compared against the Onsager
// result.
func (l *Lattice) AbsMagnetization() float64 { return math.Abs(l.Magnetization()) }

// Energy returns the energy per spin, E/N = -(J/N) sum_<ij> sigma_i sigma_j,
// counting each bond once.
func (l *Lattice) Energy() float64 {
	var e int64
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			s := int64(l.At(r, c))
			// Count only the east and south bonds so each bond is counted once.
			e += s * int64(l.At(r, c+1))
			e += s * int64(l.At(r+1, c))
		}
	}
	return -J * float64(e) / float64(l.N())
}

// Clone returns a deep copy of the lattice.
func (l *Lattice) Clone() *Lattice {
	return &Lattice{Rows: l.Rows, Cols: l.Cols, Spins: append([]int8(nil), l.Spins...)}
}

// Equal reports whether two lattices have the same size and identical spins.
func (l *Lattice) Equal(o *Lattice) bool {
	if l.Rows != o.Rows || l.Cols != o.Cols {
		return false
	}
	for i := range l.Spins {
		if l.Spins[i] != o.Spins[i] {
			return false
		}
	}
	return true
}

// ToTensor converts the lattice into a rank-2 tensor of +-1 values.
func (l *Lattice) ToTensor(dtype tensor.DType) *tensor.Tensor {
	t := tensor.New(dtype, l.Rows, l.Cols)
	data := t.Data()
	for i, s := range l.Spins {
		data[i] = float32(s)
	}
	return t
}

// FromTensor converts a rank-2 tensor of +-1 values into a Lattice.
func FromTensor(t *tensor.Tensor) *Lattice {
	if t.Rank() != 2 {
		panic("ising: FromTensor needs a rank-2 tensor")
	}
	l := NewLattice(t.Dim(0), t.Dim(1))
	data := t.Data()
	for i, v := range data {
		switch {
		case v > 0:
			l.Spins[i] = 1
		case v < 0:
			l.Spins[i] = -1
		default:
			panic("ising: FromTensor found a zero spin value")
		}
	}
	return l
}

// MagnetizationOfTensor returns the magnetisation per spin of a rank-2 spin
// tensor.
func MagnetizationOfTensor(t *tensor.Tensor) float64 {
	return tensor.Sum(t) / float64(t.NumElements())
}

// EnergyOfTensor returns the energy per spin of a rank-2 spin tensor on the
// torus.
func EnergyOfTensor(t *tensor.Tensor) float64 {
	if t.Rank() != 2 {
		panic("ising: EnergyOfTensor needs a rank-2 tensor")
	}
	east := t.Roll(1, -1)
	south := t.Roll(0, -1)
	var e float64
	d, de, ds := t.Data(), east.Data(), south.Data()
	for i := range d {
		e += float64(d[i]) * (float64(de[i]) + float64(ds[i]))
	}
	return -J * e / float64(t.NumElements())
}

// ExactEnergyPerSpin returns the exact internal energy per spin of the
// infinite 2-D Ising lattice at the given temperature (Onsager's solution),
// used as an additional correctness reference away from Tc.
func ExactEnergyPerSpin(temperature float64) float64 {
	beta := Beta(temperature)
	k := 2 * math.Sinh(2*beta*J) / (math.Cosh(2*beta*J) * math.Cosh(2*beta*J))
	k1 := completeEllipticK(k)
	c := math.Cosh(2*beta*J) / math.Sinh(2*beta*J) // coth
	kp := 2*math.Tanh(2*beta*J)*math.Tanh(2*beta*J) - 1
	return -J * c * (1 + (2/math.Pi)*kp*k1)
}

// completeEllipticK evaluates the complete elliptic integral of the first
// kind K(k) with modulus k via the arithmetic-geometric mean.
func completeEllipticK(k float64) float64 {
	a, b := 1.0, math.Sqrt(1-k*k)
	for i := 0; i < 64 && math.Abs(a-b) > 1e-15; i++ {
		a, b = (a+b)/2, math.Sqrt(a*b)
	}
	return math.Pi / (2 * a)
}
