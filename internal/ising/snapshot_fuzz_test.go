package ising

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// fuzzSeedSnapshot is a small, fully populated snapshot for the decode
// hardening tests and the fuzz seed corpus.
func fuzzSeedSnapshot() *Snapshot {
	return &Snapshot{
		Backend: "checkerboard", Rows: 4, Cols: 6, Temperature: 2.3, Step: 17,
		RNG:   []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Spins: []byte{0xAA, 0x55, 0xF0},
	}
}

// TestDecodeSnapshotTruncated slices a valid encoding at every byte boundary
// and asserts the decoder returns an error for each proper prefix — never a
// panic, never a silent success on torn input.
func TestDecodeSnapshotTruncated(t *testing.T) {
	full := EncodeSnapshot(fuzzSeedSnapshot())
	if _, err := DecodeSnapshot(full); err != nil {
		t.Fatalf("full encoding must decode: %v", err)
	}
	for n := 0; n < len(full); n++ {
		if _, err := DecodeSnapshot(full[:n]); err == nil {
			t.Errorf("truncation to %d of %d bytes decoded without error", n, len(full))
		}
	}
	// Trailing garbage is as torn as a truncation: the byte count no longer
	// matches the structure.
	if _, err := DecodeSnapshot(append(append([]byte(nil), full...), 0x00)); err == nil {
		t.Error("trailing byte decoded without error")
	}
}

// TestDecodeSnapshotOversizedLengths forges length fields far beyond the
// actual payload — the classic alloc-bomb shape — and asserts the decoder
// errors without allocating for the claimed size (the bounds check runs
// before any copy).
func TestDecodeSnapshotOversizedLengths(t *testing.T) {
	craft := func(mutate func([]byte) []byte) []byte {
		return mutate(EncodeSnapshot(fuzzSeedSnapshot()))
	}
	cases := map[string][]byte{
		// Name length u16 maxed: claims a 65535-byte backend name.
		"name-length": craft(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[8:10], 0xFFFF)
			return b
		}),
		// RNG length u32 maxed: claims a 4 GiB generator state.
		"rng-length": craft(func(b []byte) []byte {
			off := 8 + 2 + len("checkerboard") + 4 + 4 + 8 + 8
			binary.LittleEndian.PutUint32(b[off:off+4], 0xFFFFFFFF)
			return b
		}),
		// Spin length u32 maxed: claims a 4 GiB lattice.
		"spin-length": craft(func(b []byte) []byte {
			off := 8 + 2 + len("checkerboard") + 4 + 4 + 8 + 8 + 4 + 8
			binary.LittleEndian.PutUint32(b[off:off+4], 0xFFFFFFFF)
			return b
		}),
		// Rows and cols both u32-maxed: rows*cols would overflow int64.
		"dimension-overflow": craft(func(b []byte) []byte {
			off := 8 + 2 + len("checkerboard")
			binary.LittleEndian.PutUint32(b[off:off+4], 0xFFFFFFFF)
			binary.LittleEndian.PutUint32(b[off+4:off+8], 0xFFFFFFFF)
			return b
		}),
	}
	for name, data := range cases {
		s, err := DecodeSnapshot(data)
		if err == nil {
			t.Errorf("%s: forged input decoded to %+v, want error", name, s)
		}
	}
	// The allocation guard is structural: bytes() bounds-checks the claimed
	// length against the remaining input before any slice is taken, so the
	// only allocations on these paths are the error values themselves. Assert
	// the error mentions what went wrong rather than a generic failure.
	if _, err := DecodeSnapshot(cases["dimension-overflow"]); err == nil ||
		!strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "overflow") {
		t.Errorf("dimension overflow error unhelpful: %v", err)
	}
}

// fuzzDecodeSnapshotSeeds is the committed seed corpus for FuzzDecodeSnapshot
// (mirrored into testdata/fuzz by TestWriteFuzzCorpus): a valid encoding, its
// truncations, bare magic, and a forged oversized spin-length field.
func fuzzDecodeSnapshotSeeds() [][]byte {
	valid := EncodeSnapshot(fuzzSeedSnapshot())
	oversized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(oversized[len(oversized)-4-len(fuzzSeedSnapshot().Spins):], 0xFFFFFFFF)
	return [][]byte{
		valid,
		valid[:len(valid)/2],
		valid[:9],
		{},
		[]byte("ISNAPV1\n"),
		oversized,
	}
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz when run with WRITE_FUZZ_CORPUS=1; otherwise it verifies the
// committed files are exactly the in-code seeds, so the two can never drift.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSnapshot")
	write := os.Getenv("WRITE_FUZZ_CORPUS") != ""
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range fuzzDecodeSnapshotSeeds() {
		path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if write {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing committed corpus entry (regenerate with WRITE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("%s drifted from the in-code seed (regenerate with WRITE_FUZZ_CORPUS=1)", path)
		}
	}
}

// FuzzDecodeSnapshot holds the snapshot decoder to "error or valid, never
// panic": any input either fails cleanly or decodes to a snapshot whose
// canonical re-encoding reproduces the input byte-for-byte (the codec admits
// exactly one encoding per snapshot — no malleability).
func FuzzDecodeSnapshot(f *testing.F) {
	for _, seed := range fuzzDecodeSnapshotSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re := EncodeSnapshot(s)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
		s2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("decode(encode(s)) != s: %+v vs %+v", s, s2)
		}
	})
}
