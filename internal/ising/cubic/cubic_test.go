package cubic

import (
	"math"
	"testing"
	"testing/quick"

	"tpuising/internal/rng"
)

func TestLatticeBasics(t *testing.T) {
	l := NewLattice(4)
	if l.N() != 64 {
		t.Fatalf("N = %d", l.N())
	}
	if l.Magnetization() != 1 {
		t.Fatal("cold lattice should have m = 1")
	}
	if e := l.Energy(); e != -3 {
		t.Fatalf("cold-lattice energy per spin = %v, want -3 (three bonds per site)", e)
	}
	l.Set(1, 2, 3, -1)
	if l.At(1, 2, 3) != -1 {
		t.Fatal("Set/At")
	}
	l.Flip(1, 2, 3)
	if l.At(1, 2, 3) != 1 {
		t.Fatal("Flip")
	}
	if got := l.NeighborSum(0, 0, 0); got != 6 {
		t.Fatalf("NeighborSum on cold lattice = %d, want 6", got)
	}
	clone := l.Clone()
	clone.Flip(0, 0, 0)
	if l.Equal(clone) {
		t.Fatal("Clone must be independent")
	}
	if !l.Equal(l.Clone()) {
		t.Fatal("identical lattices must compare equal")
	}
}

func TestLatticePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewLattice(1) },
		func() { NewLattice(4).Set(0, 0, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNeighborSumPeriodicBoundaries(t *testing.T) {
	l := NewLattice(3)
	// Flip every neighbour of the corner site (0,0,0), including the wrapped
	// ones; its neighbour sum must then be -6.
	for _, nb := range [][3]int{{1, 0, 0}, {2, 0, 0}, {0, 1, 0}, {0, 2, 0}, {0, 0, 1}, {0, 0, 2}} {
		l.Set(nb[0], nb[1], nb[2], -1)
	}
	if got := l.NeighborSum(0, 0, 0); got != -6 {
		t.Fatalf("wrapped neighbour sum = %d, want -6", got)
	}
}

func TestEnergyMagnetizationBounds(t *testing.T) {
	f := func(seed uint16) bool {
		l := NewRandomLattice(4, rng.New(uint64(seed)))
		m := l.Magnetization()
		e := l.Energy()
		return m >= -1 && m <= 1 && e >= -3 && e <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	const size = 8
	const temperature = 4.0
	const seed = 11
	serial := NewRandomLattice(size, rng.New(3))
	parallel := serial.Clone()

	skA, skB := rng.NewSiteKeyed(seed), rng.NewSiteKeyed(seed)
	var stepA, stepB uint64
	for i := 0; i < 6; i++ {
		stepA = Sweep(serial, 1/temperature, skA, stepA)
		stepB = ParallelSweep(parallel, 1/temperature, skB, stepB, 4)
	}
	if !serial.Equal(parallel) {
		t.Fatal("parallel 3-D sweep diverged from the serial sweep")
	}
	if stepA != stepB {
		t.Fatal("step counters diverged")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	run := func() *Lattice {
		s := NewSampler(NewLattice(6), 4.2, 5, 0)
		s.Run(10)
		return s.Lattice
	}
	if !run().Equal(run()) {
		t.Fatal("same seed should give the same chain")
	}
	s := NewSampler(NewLattice(6), 4.2, 5, 2)
	s.Run(3)
	if s.Step() != 6 {
		t.Fatalf("Step = %d", s.Step())
	}
	if s.Energy() >= 0 {
		t.Fatal("energy at T below 2*Tc should be negative")
	}
}

func TestSpinsRemainPlusMinusOne(t *testing.T) {
	s := NewSampler(NewRandomLattice(6, rng.New(1)), CriticalTemperature3D, 2, 2)
	s.Run(20)
	for _, v := range s.Lattice.spins {
		if v != 1 && v != -1 {
			t.Fatalf("spin value %d", v)
		}
	}
}

func TestPhaseTransitionBracketsTc(t *testing.T) {
	// Below the 3-D critical temperature a cold start stays ordered; well
	// above it the magnetisation decays towards zero. This brackets the known
	// Tc ≈ 4.51 without requiring a long finite-size-scaling study.
	ordered := NewSampler(NewLattice(10), 3.5, 7, 4)
	ordered.Run(300)
	if m := math.Abs(ordered.Magnetization()); m < 0.85 {
		t.Fatalf("|m| = %.3f at T=3.5, want ordered", m)
	}
	disordered := NewSampler(NewLattice(10), 6.0, 7, 4)
	disordered.Run(300)
	if m := math.Abs(disordered.Magnetization()); m > 0.25 {
		t.Fatalf("|m| = %.3f at T=6.0, want disordered", m)
	}
	if CriticalTemperature3D < 3.5 || CriticalTemperature3D > 6.0 {
		t.Fatal("the test temperatures should bracket Tc")
	}
}

func TestEnergyDecreasesOnCooling(t *testing.T) {
	hot := NewSampler(NewRandomLattice(8, rng.New(4)), 8.0, 9, 2)
	hot.Run(200)
	cold := NewSampler(NewRandomLattice(8, rng.New(4)), 2.0, 9, 2)
	cold.Run(200)
	if cold.Energy() >= hot.Energy() {
		t.Fatalf("cooling should lower the energy: %.3f (T=2) vs %.3f (T=8)", cold.Energy(), hot.Energy())
	}
}
