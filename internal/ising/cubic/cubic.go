// Package cubic extends the checkerboard Monte-Carlo simulation to the
// three-dimensional Ising model — the generalisation the paper's conclusion
// points to ("The algorithm used in this work can be generalized for
// three-dimensional Ising model", citing Ferrenberg, Xu and Landau's 3-D
// studies).
//
// The same two ingredients carry over unchanged: the red/black (checkerboard)
// colouring by (x+y+z) parity makes all same-colour sites non-interacting, so
// they update in parallel, and the site-keyed Philox stream keyed by
// (step, x, y, z) makes the chain independent of how the lattice is
// decomposed or parallelised. The 3-D model has no exact solution; its
// critical temperature is known numerically (Tc ≈ 4.5115 J/kB), which the
// tests use to check the ordered and disordered phases land on the right
// sides of the transition.
package cubic

import (
	"math"
	"runtime"
	"sync"

	"tpuising/internal/ising"
	"tpuising/internal/rng"
)

// CriticalTemperature3D is the accepted numerical estimate of the 3-D Ising
// critical temperature (Ferrenberg, Xu & Landau 2018: 1/beta_c with
// beta_c ≈ 0.22165463).
const CriticalTemperature3D = 4.511528

// Lattice is an L x L x L cube of +-1 spins with periodic boundaries.
type Lattice struct {
	// L is the cube edge length.
	L int
	// spins is indexed [x*L*L + y*L + z].
	spins []int8
}

// NewLattice returns a cold (all +1) cubic lattice.
func NewLattice(l int) *Lattice {
	if l <= 1 {
		panic("cubic: lattice edge must be at least 2")
	}
	s := make([]int8, l*l*l)
	for i := range s {
		s[i] = 1
	}
	return &Lattice{L: l, spins: s}
}

// NewRandomLattice returns a lattice with independently random spins.
func NewRandomLattice(l int, p *rng.Philox) *Lattice {
	lat := NewLattice(l)
	for i := range lat.spins {
		if p.Float32() < 0.5 {
			lat.spins[i] = -1
		}
	}
	return lat
}

// N returns the number of spins.
func (l *Lattice) N() int { return l.L * l.L * l.L }

func (l *Lattice) idx(x, y, z int) int { return (x*l.L+y)*l.L + z }

// At returns the spin at (x, y, z).
func (l *Lattice) At(x, y, z int) int8 { return l.spins[l.idx(x, y, z)] }

// Set assigns the spin at (x, y, z).
func (l *Lattice) Set(x, y, z int, s int8) {
	if s != 1 && s != -1 {
		panic("cubic: spins must be +1 or -1")
	}
	l.spins[l.idx(x, y, z)] = s
}

// Flip negates the spin at (x, y, z).
func (l *Lattice) Flip(x, y, z int) { l.spins[l.idx(x, y, z)] *= -1 }

func mod(a, n int) int { return ((a % n) + n) % n }

// NeighborSum returns the sum of the six nearest-neighbour spins.
func (l *Lattice) NeighborSum(x, y, z int) int {
	n := l.L
	return int(l.spins[l.idx(mod(x+1, n), y, z)]) +
		int(l.spins[l.idx(mod(x-1, n), y, z)]) +
		int(l.spins[l.idx(x, mod(y+1, n), z)]) +
		int(l.spins[l.idx(x, mod(y-1, n), z)]) +
		int(l.spins[l.idx(x, y, mod(z+1, n))]) +
		int(l.spins[l.idx(x, y, mod(z-1, n))])
}

// SumSpins returns the total spin.
func (l *Lattice) SumSpins() int64 {
	var total int64
	for _, s := range l.spins {
		total += int64(s)
	}
	return total
}

// Magnetization returns the magnetisation per spin.
func (l *Lattice) Magnetization() float64 {
	return float64(l.SumSpins()) / float64(l.N())
}

// Energy returns the energy per spin (J = 1, no external field): each of the
// three positive-direction bonds is counted once.
func (l *Lattice) Energy() float64 {
	n := l.L
	var e int64
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				s := int64(l.spins[l.idx(x, y, z)])
				e -= s * int64(l.spins[l.idx(mod(x+1, n), y, z)])
				e -= s * int64(l.spins[l.idx(x, mod(y+1, n), z)])
				e -= s * int64(l.spins[l.idx(x, y, mod(z+1, n))])
			}
		}
	}
	return float64(e) / float64(l.N())
}

// Clone returns a deep copy.
func (l *Lattice) Clone() *Lattice {
	out := &Lattice{L: l.L, spins: make([]int8, len(l.spins))}
	copy(out.spins, l.spins)
	return out
}

// Equal reports whether two lattices hold identical spins.
func (l *Lattice) Equal(o *Lattice) bool {
	if l.L != o.L {
		return false
	}
	for i := range l.spins {
		if l.spins[i] != o.spins[i] {
			return false
		}
	}
	return true
}

// Color selects one of the two checkerboard colours by (x+y+z) parity.
type Color int

// Black sites have even (x+y+z) parity, White sites odd.
const (
	Black Color = iota
	White
)

// siteUniform returns the site-keyed uniform for (step, x, y, z). The three
// coordinates are packed into the two spatial keys of the 2-D generator so
// that every (step, site) pair maps to a distinct Philox counter.
func siteUniform(sk *rng.SiteKeyed, step uint64, l, x, y, z int) float32 {
	return sk.Uniform(step, x*l+y, z)
}

// UpdateColor performs one Metropolis update of every site of the given
// colour. Fixing the opposite colour, the updated sites do not interact, so
// the update order is irrelevant and the loop can be parallelised freely.
func UpdateColor(l *Lattice, color Color, beta float64, sk *rng.SiteKeyed, step uint64) {
	updateColorRange(l, color, beta, sk, step, 0, l.L)
}

// updateColorRange updates the colour's sites with x in [x0, x1).
func updateColorRange(l *Lattice, color Color, beta float64, sk *rng.SiteKeyed, step uint64, x0, x1 int) {
	factor := float32(-2 * beta * ising.J)
	n := l.L
	for x := x0; x < x1; x++ {
		for y := 0; y < n; y++ {
			start := (int(color) - (x+y)%2 + 2) % 2
			for z := start; z < n; z += 2 {
				s := float32(l.At(x, y, z))
				nn := float32(l.NeighborSum(x, y, z))
				acc := float32(math.Exp(float64(nn * s * factor)))
				if siteUniform(sk, step, n, x, y, z) < acc {
					l.Flip(x, y, z)
				}
			}
		}
	}
}

// Sweep performs one whole-lattice update (black then white) and returns the
// next unused step index.
func Sweep(l *Lattice, beta float64, sk *rng.SiteKeyed, step uint64) uint64 {
	UpdateColor(l, Black, beta, sk, step)
	UpdateColor(l, White, beta, sk, step+1)
	return step + 2
}

// ParallelSweep performs one whole-lattice update with the colour updates
// partitioned over worker goroutines along the x axis; it produces exactly
// the same chain as Sweep.
func ParallelSweep(l *Lattice, beta float64, sk *rng.SiteKeyed, step uint64, workers int) uint64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > l.L {
		workers = l.L
	}
	for _, color := range []Color{Black, White} {
		var wg sync.WaitGroup
		per := (l.L + workers - 1) / workers
		for w := 0; w < workers; w++ {
			x0, x1 := w*per, (w+1)*per
			if x1 > l.L {
				x1 = l.L
			}
			if x0 >= x1 {
				break
			}
			wg.Add(1)
			go func(x0, x1 int, step uint64) {
				defer wg.Done()
				updateColorRange(l, color, beta, sk, step, x0, x1)
			}(x0, x1, step)
		}
		wg.Wait()
		step++
	}
	return step
}

// Sampler wraps a cubic lattice with its chain state.
type Sampler struct {
	// Lattice is the configuration being evolved.
	Lattice *Lattice
	// Beta is the inverse temperature.
	Beta float64
	// Workers is the goroutine pool size (0 = serial).
	Workers int

	sk   *rng.SiteKeyed
	step uint64
}

// NewSampler returns a 3-D checkerboard sampler at temperature T.
func NewSampler(l *Lattice, temperature float64, seed uint64, workers int) *Sampler {
	return &Sampler{Lattice: l, Beta: ising.Beta(temperature), Workers: workers, sk: rng.NewSiteKeyed(seed)}
}

// Sweep advances the chain by one whole-lattice update.
func (s *Sampler) Sweep() {
	if s.Workers > 1 {
		s.step = ParallelSweep(s.Lattice, s.Beta, s.sk, s.step, s.Workers)
		return
	}
	s.step = Sweep(s.Lattice, s.Beta, s.sk, s.step)
}

// Run performs n sweeps.
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Sweep()
	}
}

// Step returns the number of colour updates performed so far.
func (s *Sampler) Step() uint64 { return s.step }

// Magnetization returns the magnetisation per spin.
func (s *Sampler) Magnetization() float64 { return s.Lattice.Magnetization() }

// Energy returns the energy per spin.
func (s *Sampler) Energy() float64 { return s.Lattice.Energy() }
