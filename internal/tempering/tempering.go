package tempering

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"tpuising/internal/device/metrics"
	"tpuising/internal/ising"
	"tpuising/internal/perf"
	"tpuising/internal/rng"
	"tpuising/internal/stats"
)

// ReplicaSeed derives the chain seed of one ladder slot from the run seed,
// so replicas never share site-keyed streams. It is ising.LaneSeed — the one
// seed-derivation rule of the batch axis — which is what makes a ladder run
// as a lane-packed ensemble (NewBatch over internal/ising/ensemble)
// bit-identical to the same ladder run as separate backends: lane L and
// replica L are the same chain. The swap-decision stream uses the run seed
// itself through rng.PairKeyed, whose key derivation is independent of every
// site-keyed stream.
func ReplicaSeed(seed uint64, slot int) uint64 {
	return ising.LaneSeed(seed, slot)
}

// DefaultWindow returns the default half-width of the temperature ladder
// around Tc, as a fraction of Tc, for a lattice of `spins` sites and
// `replicas` ladder rungs.
//
// Swap acceptance between adjacent temperatures is healthy when the energy
// histograms of the two rungs overlap: delta_beta * sigma_E ~ 1, where
// sigma_E = T*sqrt(N*c) is the extensive energy fluctuation (c the specific
// heat per spin, ~1.5 near but not at Tc). With an evenly spaced ladder of n
// rungs across Tc*(1 +- w), delta_beta ~ 2*w*Tc / ((n-1)*T^2), so the
// widest window keeping the overlap condition is w ~ (n-1)/(2*sqrt(N*c)) ~
// 0.4*(n-1)/sqrt(N). The result is capped at 0.1 so tiny demo lattices do
// not stretch past the paper's T/Tc plotting window.
func DefaultWindow(spins, replicas int) float64 {
	if spins <= 0 || replicas < 2 {
		return 0.1
	}
	w := 0.4 * float64(replicas-1) / math.Sqrt(float64(spins))
	if w > 0.1 {
		w = 0.1
	}
	return w
}

// Config describes a parallel-tempering run.
type Config struct {
	// Temperatures is the ladder, strictly ascending, at least two entries.
	Temperatures []float64
	// SwapInterval is the number of sweeps every replica performs between
	// swap phases (default 1).
	SwapInterval int
	// Seed seeds the pair/round-keyed swap-decision stream (the replicas'
	// own streams are seeded by their constructors).
	Seed uint64
	// Workers is the number of replicas swept concurrently (0 = GOMAXPROCS).
	// It only changes wall-clock time, never any result.
	Workers int
}

func (c Config) withDefaults() Config {
	out := c
	if out.SwapInterval <= 0 {
		out.SwapInterval = 1
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Ensemble is a running parallel-tempering simulation: one replica per
// ladder temperature, a slot permutation tracking which replica currently
// holds which temperature, and the accumulated samples and swap statistics.
type Ensemble struct {
	cfg   Config
	betas []float64

	// Exactly one execution strategy is set. replicas[i] is the i-th
	// configuration walker as its own backend (New); batch is one
	// ising.BatchTempered whose lane i is walker i (NewBatch) — the ladder
	// then runs as a single batched ensemble, one Sweep advancing every rung.
	// Either way a walker's lattice stays put for the whole run while its
	// temperature label moves.
	replicas []ising.Tempered
	batch    ising.BatchTempered
	spins    int
	// slot[t] is the replica currently at temperature index t; tempOf is the
	// inverse permutation.
	slot, tempOf []int
	// dir[i] tracks walker i's ladder traversal with exactly the state
	// machine of stats.RoundTrips (asserted equivalent by test): 0 before
	// touching either end, +1 after touching the bottom (heading up), -1
	// after touching the top on the way back down.
	dir        []int8
	roundTrips int

	prng  *rng.PairKeyed
	round uint64 // swap phases performed

	pairAttempts, pairAccepts []int64 // indexed by the lower temperature of the pair
	swapComm                  metrics.Counts

	// Per temperature slot: the measured magnetisation, |m| and energy
	// series (whatever replica held the slot at measurement time).
	ms, abs, energies [][]float64
}

// newEnsemble validates the ladder and builds the walker bookkeeping shared
// by both execution strategies.
func newEnsemble(c Config) (*Ensemble, error) {
	n := len(c.Temperatures)
	if n < 2 {
		return nil, fmt.Errorf("tempering: need at least 2 temperatures, got %d", n)
	}
	e := &Ensemble{
		cfg:          c,
		betas:        make([]float64, n),
		slot:         make([]int, n),
		tempOf:       make([]int, n),
		dir:          make([]int8, n),
		prng:         rng.NewPairKeyed(c.Seed),
		pairAttempts: make([]int64, n-1),
		pairAccepts:  make([]int64, n-1),
		ms:           make([][]float64, n),
		abs:          make([][]float64, n),
		energies:     make([][]float64, n),
	}
	for t, temp := range c.Temperatures {
		if temp <= 0 {
			return nil, fmt.Errorf("tempering: temperature %d is %g, must be positive", t, temp)
		}
		if t > 0 && temp <= c.Temperatures[t-1] {
			return nil, fmt.Errorf("tempering: ladder must be strictly ascending, got %g after %g",
				temp, c.Temperatures[t-1])
		}
		e.betas[t] = ising.Beta(temp)
		e.slot[t] = t
		e.tempOf[t] = t
	}
	// Walker 0 starts at the bottom rung, so it is already "heading up";
	// every other walker (the top one included) has touched neither end yet
	// — matching stats.RoundTrips, which counts a trip only after a walker
	// has gone bottom -> top -> bottom.
	e.dir[e.slot[0]] = +1
	return e, nil
}

// New builds an ensemble of separate backends. newBackend is called once per
// ladder slot, in ascending temperature order, and must return an engine
// equilibrated from scratch at that temperature; every returned engine must
// implement ising.Tempered (all host backends do) and all must share one
// lattice size.
func New(cfg Config, newBackend func(slot int, temperature float64) (ising.Backend, error)) (*Ensemble, error) {
	e, err := newEnsemble(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	e.replicas = make([]ising.Tempered, len(e.betas))
	for t, temp := range e.cfg.Temperatures {
		b, err := newBackend(t, temp)
		if err != nil {
			return nil, fmt.Errorf("tempering: building replica %d (T=%g): %w", t, temp, err)
		}
		rep, ok := b.(ising.Tempered)
		if !ok {
			return nil, fmt.Errorf("tempering: backend %s cannot change temperature (does not implement ising.Tempered)",
				b.Name())
		}
		if t == 0 {
			e.spins = rep.N()
		} else if rep.N() != e.spins {
			return nil, fmt.Errorf("tempering: replica %d has %d spins, replica 0 has %d (all replicas must share one lattice size)",
				t, rep.N(), e.spins)
		}
		e.replicas[t] = rep
	}
	return e, nil
}

// NewBatch builds an ensemble over one batched backend: lane t of the batch
// is the walker starting at ladder slot t. The batch must implement
// ising.BatchTempered (so an accepted swap can re-label two lanes in place),
// have exactly one lane per rung, and be freshly constructed — NewBatch sets
// every lane's temperature to its rung, which on an unswept batch is the
// same as constructing the lane at that temperature.
//
// Because the batch axis and the ladder share one seed-derivation rule
// (ReplicaSeed == ising.LaneSeed), a ladder over the lane-packed engine of
// internal/ising/ensemble is bit-identical — same swap decisions, same
// per-rung observables, same swap counters — to the same ladder over
// separate multispin replicas, which the equivalence tests assert. The win
// is execution: one Sweep advances every rung through one pass of the packed
// kernel instead of N separate engine sweeps.
func NewBatch(cfg Config, batch ising.BatchBackend) (*Ensemble, error) {
	e, err := newEnsemble(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	bt, ok := batch.(ising.BatchTempered)
	if !ok {
		return nil, fmt.Errorf("tempering: batch backend %s cannot change lane temperatures (does not implement ising.BatchTempered)",
			batch.Name())
	}
	if batch.Lanes() != len(e.betas) {
		return nil, fmt.Errorf("tempering: batch backend has %d lanes for a %d-rung ladder",
			batch.Lanes(), len(e.betas))
	}
	if batch.Step() != 0 {
		return nil, fmt.Errorf("tempering: batch backend already swept (step %d); NewBatch needs a fresh one", batch.Step())
	}
	e.spins = batch.N()
	if e.spins <= 0 {
		return nil, fmt.Errorf("tempering: batch backend reports %d spins", e.spins)
	}
	for t, temp := range e.cfg.Temperatures {
		bt.SetLaneTemperature(t, temp)
	}
	e.batch = bt
	return e, nil
}

// Replicas returns the number of temperature replicas.
func (e *Ensemble) Replicas() int { return len(e.betas) }

// Spins returns the per-replica spin count.
func (e *Ensemble) Spins() int { return e.spins }

// Temperatures returns the ladder (ascending; it never changes — swaps move
// replicas between slots, not slot temperatures).
func (e *Ensemble) Temperatures() []float64 {
	return append([]float64(nil), e.cfg.Temperatures...)
}

// Rounds returns the number of swap phases performed so far.
func (e *Ensemble) Rounds() uint64 { return e.round }

// Permutation returns slot -> replica: element t is the index of the walker
// currently holding temperature t.
func (e *Ensemble) Permutation() []int { return append([]int(nil), e.slot...) }

// Backend returns the engine currently holding temperature slot t. For a
// batched ensemble it is a read-only lane view (observables and identity
// read through; it cannot sweep a single rung).
func (e *Ensemble) Backend(t int) ising.Backend {
	if e.batch != nil {
		return ising.LaneView(e.batch, e.slot[t])
	}
	return e.replicas[e.slot[t]]
}

// SweepReplicas advances every replica by k sweeps — for a batched ensemble
// one batch Sweep per step advances all rungs, otherwise up to Config.Workers
// separate replicas run concurrently. The chains are independent between
// swap phases, so the concurrency never changes any result.
func (e *Ensemble) SweepReplicas(k int) {
	if k <= 0 {
		return
	}
	if e.batch != nil {
		for i := 0; i < k; i++ {
			e.batch.Sweep()
		}
		return
	}
	workers := e.cfg.Workers
	if workers > len(e.replicas) {
		workers = len(e.replicas)
	}
	if workers <= 1 {
		for _, r := range e.replicas {
			for i := 0; i < k; i++ {
				r.Sweep()
			}
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, r := range e.replicas {
		wg.Add(1)
		go func(r ising.Tempered) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for i := 0; i < k; i++ {
				r.Sweep()
			}
		}(r)
	}
	wg.Wait()
}

// AttemptSwaps performs one swap phase: every active adjacent pair (even
// pairs on even rounds, odd pairs on odd rounds) attempts a Metropolis swap,
// serially and in ascending pair order. The uniform deciding pair t at round
// r is rng.PairKeyed's value for (r, t), so the outcome is a pure function
// of (seed, round, pair) — independent of workers and timing.
func (e *Ensemble) AttemptSwaps() {
	n := len(e.betas)
	// For a batched ensemble one pass yields every walker's energy (the
	// packed engine computes all lanes in one sweep over the words).
	var laneEnergies []float64
	if e.batch != nil {
		laneEnergies = e.batch.Energies()
	}
	walkerEnergy := func(w int) float64 {
		if laneEnergies != nil {
			return laneEnergies[w]
		}
		return e.replicas[w].Energy()
	}
	parity := int(e.round & 1)
	for t := parity; t+1 < n; t += 2 {
		a, b := e.slot[t], e.slot[t+1]
		ea := walkerEnergy(a) * float64(e.spins)
		eb := walkerEnergy(b) * float64(e.spins)
		// The two replicas exchange their extensive energies; the decision is
		// then a shared pure function, needing no further communication.
		e.swapComm.CommBytes += 2 * perf.EnergyMessageBytes
		e.swapComm.CommEvents += 2
		e.swapComm.CommHops += 2
		delta := (e.betas[t] - e.betas[t+1]) * (ea - eb)
		u := e.prng.Uniform(e.round, t)
		e.pairAttempts[t]++
		if delta >= 0 || u < math.Exp(delta) {
			e.pairAccepts[t]++
			e.slot[t], e.slot[t+1] = b, a
			e.tempOf[a], e.tempOf[b] = t+1, t
			if e.batch != nil {
				e.batch.SetLaneTemperature(a, e.cfg.Temperatures[t+1])
				e.batch.SetLaneTemperature(b, e.cfg.Temperatures[t])
			} else {
				e.replicas[a].SetTemperature(e.cfg.Temperatures[t+1])
				e.replicas[b].SetTemperature(e.cfg.Temperatures[t])
			}
		}
	}
	e.round++
	// Walker diffusion bookkeeping: a walker back at the bottom after
	// touching the top has completed one round trip. This is the O(1)
	// incremental form of stats.RoundTrips over the walker's trajectory; a
	// test records the trajectories and asserts the two agree.
	for i := 0; i < n; i++ {
		switch e.tempOf[i] {
		case 0:
			if e.dir[i] == -1 {
				e.roundTrips++
			}
			e.dir[i] = +1
		case n - 1:
			if e.dir[i] == +1 {
				e.dir[i] = -1
			}
		}
	}
}

// Round performs one full tempering round: SwapInterval sweeps on every
// replica, then one swap phase.
func (e *Ensemble) Round() {
	e.SweepReplicas(e.cfg.SwapInterval)
	e.AttemptSwaps()
}

// RunRounds performs n rounds without measuring (burn-in).
func (e *Ensemble) RunRounds(n int) {
	for i := 0; i < n; i++ {
		e.Round()
	}
}

// Measure records one sample per temperature slot from whichever replica
// currently holds it.
func (e *Ensemble) Measure() {
	if e.batch != nil {
		ms, es := e.batch.Magnetizations(), e.batch.Energies()
		for t := range e.betas {
			m := ms[e.slot[t]]
			e.ms[t] = append(e.ms[t], m)
			e.abs[t] = append(e.abs[t], math.Abs(m))
			e.energies[t] = append(e.energies[t], es[e.slot[t]])
		}
		return
	}
	for t := range e.betas {
		r := e.replicas[e.slot[t]]
		m := r.Magnetization()
		e.ms[t] = append(e.ms[t], m)
		e.abs[t] = append(e.abs[t], math.Abs(m))
		e.energies[t] = append(e.energies[t], r.Energy())
	}
}

// Sample performs n rounds, measuring after each one.
func (e *Ensemble) Sample(n int) {
	for i := 0; i < n; i++ {
		e.Round()
		e.Measure()
	}
}

// SwapCounts returns the interconnect counters of the exchange layer alone:
// the energy messages of every attempted swap (perf.ExchangeTraffic
// reproduces them analytically — asserted by tests).
func (e *Ensemble) SwapCounts() metrics.Counts { return e.swapComm }

// Counts aggregates the work counters of every replica plus the exchange
// layer's swap traffic.
func (e *Ensemble) Counts() metrics.Counts {
	total := e.swapComm
	if e.batch != nil {
		total.Add(e.batch.Counts())
		return total
	}
	for _, r := range e.replicas {
		total.Add(r.Counts())
	}
	return total
}

// ReplicaReport is the per-temperature row of a tempering report.
type ReplicaReport struct {
	// Temperature is the slot's ladder temperature.
	Temperature float64
	// AbsMagnetization is the sample mean of |m|, with a binned standard
	// error that accounts for autocorrelation.
	AbsMagnetization, AbsMagnetizationErr float64
	// Binder is the Binder cumulant U4 of the magnetisation samples.
	Binder float64
	// Energy is the sample mean energy per spin.
	Energy float64
	// AutocorrTime is the integrated autocorrelation time of the |m| series,
	// in measurement rounds; EffectiveSamples is Samples / AutocorrTime.
	AutocorrTime, EffectiveSamples float64
	// PairAttempts / PairAccepts count the swaps attempted / accepted with
	// the next-higher temperature (zero for the last slot); PairAcceptance
	// is their ratio.
	PairAttempts, PairAccepts int64
	PairAcceptance            float64
	// Samples is the number of measurements behind the row.
	Samples int
}

// Report bundles the ensemble's observables.
type Report struct {
	// Replicas holds one row per temperature slot, ascending.
	Replicas []ReplicaReport
	// RoundTrips is the total number of completed walker round trips
	// (bottom -> top -> bottom of the ladder).
	RoundTrips int
	// SwapRounds, SwapAttempts and SwapAccepts aggregate the swap phases.
	SwapRounds   uint64
	SwapAttempts int64
	SwapAccepts  int64
	// Samples is the number of measurement rounds.
	Samples int
}

// Acceptance returns the overall swap-acceptance ratio.
func (r Report) Acceptance() float64 { return stats.AcceptanceRatio(r.SwapAccepts, r.SwapAttempts) }

// Report computes the observables accumulated so far.
func (e *Ensemble) Report() Report {
	rep := Report{
		Replicas:   make([]ReplicaReport, len(e.betas)),
		RoundTrips: e.roundTrips,
		SwapRounds: e.round,
	}
	for t := range e.betas {
		rr := ReplicaReport{
			Temperature:         e.cfg.Temperatures[t],
			AbsMagnetization:    stats.Mean(e.abs[t]),
			AbsMagnetizationErr: stats.BinnedError(e.abs[t], 20),
			Binder:              stats.Binder(e.ms[t]),
			Energy:              stats.Mean(e.energies[t]),
			AutocorrTime:        stats.IntegratedAutocorrTime(e.abs[t]),
			EffectiveSamples:    stats.EffectiveSampleSize(e.abs[t]),
			Samples:             len(e.abs[t]),
		}
		if t < len(e.pairAttempts) {
			rr.PairAttempts = e.pairAttempts[t]
			rr.PairAccepts = e.pairAccepts[t]
			rr.PairAcceptance = stats.AcceptanceRatio(e.pairAccepts[t], e.pairAttempts[t])
			rep.SwapAttempts += e.pairAttempts[t]
			rep.SwapAccepts += e.pairAccepts[t]
		}
		rep.Replicas[t] = rr
		if rr.Samples > rep.Samples {
			rep.Samples = rr.Samples
		}
	}
	return rep
}
