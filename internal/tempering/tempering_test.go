package tempering

import (
	"math"
	"reflect"
	"testing"

	"tpuising/internal/interconnect"
	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/ising/multispin"
	"tpuising/internal/perf"
	"tpuising/internal/stats"
)

// multispinLadder returns a newBackend callback building multispin replicas
// of one lattice size with per-slot seeds and the given worker count.
func multispinLadder(t *testing.T, rows, cols int, seed uint64, workers int) func(int, float64) (ising.Backend, error) {
	t.Helper()
	return func(slot int, temperature float64) (ising.Backend, error) {
		return backend.New("multispin", backend.Config{
			Rows: rows, Cols: cols, Temperature: temperature,
			Seed: ReplicaSeed(seed, slot), Workers: workers,
		})
	}
}

// ladder returns n evenly spaced temperatures across the default critical
// window of a rows x cols lattice (sweep.CriticalWindow cannot be used here:
// sweep imports tempering).
func ladder(rows, cols, n int) []float64 {
	tc := ising.CriticalTemperature()
	w := DefaultWindow(rows*cols, n)
	lo, hi := tc*(1-w), tc*(1+w)
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + float64(i)*(hi-lo)/float64(n-1)
	}
	return out
}

// TestSwapAcceptanceMatchesAnalyticProbability freezes two replicas (no
// sweeps between swap phases, so their configurations and energies never
// change) and measures the empirical acceptance of the very first swap
// attempt over many seeds against the exact two-replica Metropolis
// probability min(1, exp((beta0-beta1)*(E0-E1))).
func TestSwapAcceptanceMatchesAnalyticProbability(t *testing.T) {
	const trials = 5000
	t0, t1 := 2.0, 2.5
	rows, cols := 2, 64

	// Slot 0 holds the ground state; slot 1 holds the ground state with one
	// spin flipped, so E0 < E1 and the swap is accepted with p < 1.
	flipped := ising.NewLattice(rows, cols)
	flipped.Flip(0, 0)
	newBackend := func(initial *ising.Lattice) func(int, float64) (ising.Backend, error) {
		return func(slot int, temperature float64) (ising.Backend, error) {
			cfg := multispin.Config{Rows: rows, Cols: cols, Temperature: temperature, Seed: uint64(slot)}
			if slot == 1 {
				cfg.Initial = initial
			}
			return multispin.New(cfg)
		}
	}

	accepted := 0
	var want float64
	for seed := uint64(0); seed < trials; seed++ {
		ens, err := New(Config{Temperatures: []float64{t0, t1}, Seed: seed},
			newBackend(flipped))
		if err != nil {
			t.Fatal(err)
		}
		if seed == 0 {
			n := float64(ens.Spins())
			e0 := ens.Backend(0).Energy() * n
			e1 := ens.Backend(1).Energy() * n
			delta := (ising.Beta(t0) - ising.Beta(t1)) * (e0 - e1)
			if delta >= 0 {
				t.Fatalf("test setup broken: delta = %g, want a rejected-sometimes swap", delta)
			}
			want = math.Exp(delta)
		}
		ens.AttemptSwaps() // no sweeps first: energies are exactly the constructed ones
		if ens.Permutation()[0] != 0 {
			accepted++
		}
	}
	got := float64(accepted) / trials
	sigma := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 4*sigma {
		t.Fatalf("empirical acceptance %.4f, analytic %.4f (|diff| > 4 sigma = %.4f)", got, want, 4*sigma)
	}
}

// TestDeterminismAcrossWorkers runs the same ensemble with 1 and 8 workers
// (both the orchestrator's pool and the replicas' band parallelism) and
// requires bit-identical reports, permutations and final configurations.
func TestDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) (Report, []int, []float64) {
		ens, err := New(Config{
			Temperatures: ladder(64, 64, 4),
			SwapInterval: 2,
			Seed:         7,
			Workers:      workers,
		}, multispinLadder(t, 64, 64, 7, workers))
		if err != nil {
			t.Fatal(err)
		}
		ens.Sample(25)
		mags := make([]float64, ens.Replicas())
		for i := range mags {
			mags[i] = ens.Backend(i).Magnetization()
		}
		return ens.Report(), ens.Permutation(), mags
	}
	rep1, perm1, mag1 := run(1)
	rep8, perm8, mag8 := run(8)
	if !reflect.DeepEqual(rep1, rep8) {
		t.Errorf("reports differ between 1 and 8 workers:\n%+v\n%+v", rep1, rep8)
	}
	if !reflect.DeepEqual(perm1, perm8) {
		t.Errorf("slot permutations differ: %v vs %v", perm1, perm8)
	}
	if !reflect.DeepEqual(mag1, mag8) {
		t.Errorf("final magnetisations differ: %v vs %v", mag1, mag8)
	}
}

// TestSwapCountsMatchExchangeTraffic runs an odd replica count (so even and
// odd rounds attempt different pair counts) and requires the orchestrator's
// measured swap counters to equal perf.ExchangeTraffic's analytic model.
func TestSwapCountsMatchExchangeTraffic(t *testing.T) {
	const replicas, rounds = 5, 7
	ens, err := New(Config{
		Temperatures: ladder(16, 64, replicas),
		SwapInterval: 1,
		Seed:         3,
	}, multispinLadder(t, 16, 64, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	ens.RunRounds(rounds)
	got := ens.SwapCounts()
	model := perf.ExchangeTraffic(perf.ExchangeSpec{Replicas: replicas, Rounds: rounds},
		interconnect.DefaultLinkParams())
	if got.CommBytes != model.TotalBytes {
		t.Errorf("swap bytes: measured %d, modelled %d", got.CommBytes, model.TotalBytes)
	}
	if got.CommEvents != model.Events {
		t.Errorf("swap events: measured %d, modelled %d", got.CommEvents, model.Events)
	}
	if got.CommHops != model.Hops {
		t.Errorf("swap hops: measured %d, modelled %d", got.CommHops, model.Hops)
	}
	rep := ens.Report()
	if rep.SwapAttempts != model.Attempts {
		t.Errorf("swap attempts: measured %d, modelled %d", rep.SwapAttempts, model.Attempts)
	}
	// The aggregate counters must carry the swap traffic on top of the
	// replicas' own work.
	if total := ens.Counts(); total.CommBytes < got.CommBytes || total.Ops == 0 {
		t.Errorf("aggregate counts %+v do not include swap traffic and replica work", total)
	}
}

// TestPhysicsAcrossTheLadder checks that a tempered run keeps the ordering
// physics demands — |m| falls and energy rises with temperature — and that
// the exchange layer actually moves: healthy acceptance and, on a long
// two-replica run, completed round trips.
func TestPhysicsAcrossTheLadder(t *testing.T) {
	ens, err := New(Config{
		Temperatures: ladder(64, 64, 4),
		SwapInterval: 2,
		Seed:         1,
	}, multispinLadder(t, 64, 64, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	ens.RunRounds(50) // burn in
	ens.Sample(150)
	rep := ens.Report()
	n := len(rep.Replicas)
	if rep.Replicas[0].AbsMagnetization <= rep.Replicas[n-1].AbsMagnetization {
		t.Errorf("|m| should fall across the ladder: %.4f (T=%.3f) vs %.4f (T=%.3f)",
			rep.Replicas[0].AbsMagnetization, rep.Replicas[0].Temperature,
			rep.Replicas[n-1].AbsMagnetization, rep.Replicas[n-1].Temperature)
	}
	if rep.Replicas[0].Energy >= rep.Replicas[n-1].Energy {
		t.Errorf("energy should rise across the ladder: %.4f vs %.4f",
			rep.Replicas[0].Energy, rep.Replicas[n-1].Energy)
	}
	if acc := rep.Acceptance(); acc < 0.1 {
		t.Errorf("swap acceptance %.3f too low for the default window", acc)
	}
	for i, rr := range rep.Replicas {
		if rr.Samples != 150 {
			t.Errorf("replica %d has %d samples, want 150", i, rr.Samples)
		}
		if rr.AutocorrTime < 1 {
			t.Errorf("replica %d tau = %g < 1", i, rr.AutocorrTime)
		}
		if rr.EffectiveSamples <= 0 || rr.EffectiveSamples > float64(rr.Samples) {
			t.Errorf("replica %d effective samples %g out of range", i, rr.EffectiveSamples)
		}
	}
}

// TestRoundTripsAccumulate: two close temperatures on a tiny lattice swap
// constantly, so walkers must complete bottom->top->bottom round trips.
func TestRoundTripsAccumulate(t *testing.T) {
	ens, err := New(Config{
		Temperatures: []float64{2.26, 2.28},
		SwapInterval: 1,
		Seed:         2,
	}, multispinLadder(t, 4, 64, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	ens.RunRounds(200)
	rep := ens.Report()
	if rep.RoundTrips == 0 {
		t.Fatalf("no round trips after 200 rounds at acceptance %.3f", rep.Acceptance())
	}
}

// TestRoundTripsMatchStatsRoundTrips records every walker's temperature
// trajectory alongside the ensemble's incremental counter and requires the
// total to equal stats.RoundTrips over the recorded paths — the two
// implementations must share one definition of a round trip. Four replicas
// of a tiny lattice at tight spacing give plenty of diffusion, including
// walkers that start away from the bottom.
func TestRoundTripsMatchStatsRoundTrips(t *testing.T) {
	const replicas, rounds = 4, 300
	ens, err := New(Config{
		Temperatures: []float64{2.25, 2.26, 2.27, 2.28},
		SwapInterval: 1,
		Seed:         4,
	}, multispinLadder(t, 2, 64, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	paths := make([][]int, replicas)
	record := func() {
		perm := ens.Permutation() // slot -> walker
		for slot, walker := range perm {
			paths[walker] = append(paths[walker], slot)
		}
	}
	record() // initial positions
	for i := 0; i < rounds; i++ {
		ens.Round()
		record()
	}
	want := 0
	for _, p := range paths {
		want += stats.RoundTrips(p, 0, replicas-1)
	}
	got := ens.Report().RoundTrips
	if got != want {
		t.Fatalf("incremental counter reports %d round trips, stats.RoundTrips over the trajectories reports %d", got, want)
	}
	if want == 0 {
		t.Fatal("no round trips in 300 tight-ladder rounds; the scenario is not exercising the counter")
	}
}

func TestNewValidation(t *testing.T) {
	mk := multispinLadder(t, 4, 64, 1, 0)
	if _, err := New(Config{Temperatures: []float64{2.0}}, mk); err == nil {
		t.Error("single-temperature ladder should fail")
	}
	if _, err := New(Config{Temperatures: []float64{2.5, 2.0}}, mk); err == nil {
		t.Error("descending ladder should fail")
	}
	if _, err := New(Config{Temperatures: []float64{-1, 2.0}}, mk); err == nil {
		t.Error("non-positive temperature should fail")
	}
	// Mismatched lattice sizes across replicas.
	_, err := New(Config{Temperatures: []float64{2.0, 2.5}},
		func(slot int, temperature float64) (ising.Backend, error) {
			return backend.New("multispin", backend.Config{
				Rows: 2 + 2*slot, Cols: 64, Temperature: temperature,
			})
		})
	if err == nil {
		t.Error("mismatched replica sizes should fail")
	}
}

func TestDefaultWindow(t *testing.T) {
	if w := DefaultWindow(64*64, 8); w <= 0 || w > 0.1 {
		t.Errorf("DefaultWindow(4096, 8) = %g out of (0, 0.1]", w)
	}
	if w := DefaultWindow(4, 2); w != 0.1 {
		t.Errorf("tiny lattices should cap at 0.1, got %g", w)
	}
	if w8, w2 := DefaultWindow(1<<20, 8), DefaultWindow(1<<20, 2); w8 <= w2 {
		t.Errorf("more replicas should widen the window: %g vs %g", w8, w2)
	}
	big, small := DefaultWindow(1<<10, 4), DefaultWindow(1<<20, 4)
	if small >= big {
		t.Errorf("bigger lattices should narrow the window: %g vs %g", small, big)
	}
}

// TestEveryBackendTempers builds a two-rung ladder on every registry
// backend, runs a few rounds and checks the ensemble accepts it — the
// tempering layer's contract is "any registered Backend".
func TestEveryBackendTempers(t *testing.T) {
	for _, name := range backend.Names() {
		ens, err := New(Config{Temperatures: []float64{2.2, 2.4}, Seed: 1},
			func(slot int, temperature float64) (ising.Backend, error) {
				return backend.New(name, backend.Config{
					Rows: 4, Cols: 64, Temperature: temperature,
					Seed: ReplicaSeed(1, slot),
				})
			})
		if err != nil {
			t.Errorf("backend %s cannot temper: %v", name, err)
			continue
		}
		ens.Sample(3)
		if rep := ens.Report(); rep.Samples != 3 {
			t.Errorf("backend %s: %d samples, want 3", name, rep.Samples)
		}
	}
}
