// Package tempering implements replica exchange (parallel tempering) over
// the repository's Ising engines: N replicas of the same lattice run
// concurrently, one per temperature of a ladder, and every K sweeps adjacent
// temperatures attempt a Metropolis swap. Near the critical point a single
// chain's autocorrelation time diverges; letting configurations random-walk
// up the ladder to hot, fast-mixing temperatures and back down again cuts it
// dramatically, which is why multi-GPU Ising studies (Romero et al., Bisson
// et al.) use exactly this replica/ensemble layer as the scaling axis beyond
// a single lattice.
//
// # Composition, not selection
//
// This is the first subsystem that composes backends instead of selecting
// one: each replica is any ising.Backend that implements ising.Tempered —
// every registered engine does (checkerboard, gpusim, multispin,
// multispin-shared, sharded, tpu) — and different replicas may even use
// different engines. The orchestrator drives the replicas' sweeps through a
// worker pool and runs the swap phases serially between them.
//
// # The swap move
//
// An attempted swap of adjacent temperatures T_t < T_{t+1} holding replicas
// with total (extensive) energies E_t and E_{t+1} accepts with probability
// min(1, exp((beta_t - beta_{t+1}) (E_t - E_{t+1}))), which preserves
// detailed balance of the product ensemble. On acceptance the two replicas
// swap temperature labels in place — SetTemperature on each — rather than
// exchanging lattice configurations, so the exchange layer moves two 8-byte
// energies per attempted pair regardless of lattice size
// (perf.ExchangeTraffic models this; the orchestrator's SwapCounts mirror it
// exactly). Pairings alternate: even rounds attempt (0,1), (2,3), ...; odd
// rounds attempt (1,2), (3,4), ...
//
// # Determinism contract
//
// The uniform deciding the swap of pair t at round r is a pure function of
// (seed, r, t) via rng.PairKeyed, and every replica's own chain is
// site-keyed, so a run is bit-reproducible at fixed seed and independent of
// Config.Workers, of GOMAXPROCS and of the replicas' internal worker counts
// (asserted by this package's determinism tests).
//
// # Observables
//
// Report returns, per temperature: mean |m| with a binned error bar, the
// Binder cumulant U4, the mean energy per spin, the integrated
// autocorrelation time of the |m| series with the effective sample size it
// implies, and the swap-acceptance ratio with the next-higher temperature;
// plus the total walker round trips (bottom -> top -> bottom of the ladder),
// the standard diffusion diagnostic of a tempering ladder. docs/PHYSICS.md
// describes how each observable is validated.
package tempering
