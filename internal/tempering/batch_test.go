package tempering

import (
	"reflect"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/ising/ensemble"
)

// ladderOf returns a small ascending ladder for the batch tests.
func ladderOf(n int) []float64 {
	temps := make([]float64, n)
	for i := range temps {
		temps[i] = 2.0 + 0.2*float64(i)
	}
	return temps
}

// runBoth drives two ensembles through the same schedule and returns their
// reports.
func runBoth(a, b *Ensemble, burn, sample int) (Report, Report) {
	a.RunRounds(burn)
	b.RunRounds(burn)
	a.Sample(sample)
	b.Sample(sample)
	return a.Report(), b.Report()
}

// TestBatchLadderBitIdenticalToClassic is the acceptance check of the
// batched tempering path: a ladder over the lane-packed ensemble engine must
// reproduce the classic ladder of separate multispin replicas exactly — the
// same swap decisions, permutation, per-rung observables, swap counters and
// work counters — because lane L and replica L are the same chain
// (ReplicaSeed == ising.LaneSeed) and the swap stream is keyed by (seed,
// round, pair) either way.
func TestBatchLadderBitIdenticalToClassic(t *testing.T) {
	const rows, cols, seed = 8, 64, 21
	temps := ladderOf(4)
	cfg := Config{Temperatures: temps, SwapInterval: 2, Seed: seed}
	classic, err := New(cfg, func(slot int, temperature float64) (ising.Backend, error) {
		return backend.New("multispin", backend.Config{
			Rows: rows, Cols: cols, Temperature: temperature, Seed: ReplicaSeed(seed, slot),
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := ensemble.New(ensemble.Config{
		Rows: rows, Cols: cols, Lanes: len(temps), Temperatures: temps, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewBatch(cfg, packed)
	if err != nil {
		t.Fatal(err)
	}
	repA, repB := runBoth(classic, batched, 3, 8)
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("batched ladder report differs from classic:\nclassic: %+v\nbatched: %+v", repA, repB)
	}
	if !reflect.DeepEqual(classic.Permutation(), batched.Permutation()) {
		t.Fatalf("permutation differs: %v vs %v", classic.Permutation(), batched.Permutation())
	}
	if classic.SwapCounts() != batched.SwapCounts() {
		t.Fatalf("swap counters differ: %+v vs %+v", classic.SwapCounts(), batched.SwapCounts())
	}
	if classic.Counts() != batched.Counts() {
		t.Fatalf("work counters differ: %+v vs %+v", classic.Counts(), batched.Counts())
	}
	// The lane views must report the slot observables the classic backends do.
	for slot := range temps {
		if batched.Backend(slot).Magnetization() != classic.Backend(slot).Magnetization() {
			t.Fatalf("slot %d lane view magnetisation differs", slot)
		}
	}
}

// TestBatchLadderOverAdapter: the generic batch adapter (separate backends
// behind the BatchBackend interface) must also reproduce the classic ladder
// exactly — batching is an execution strategy at every layer.
func TestBatchLadderOverAdapter(t *testing.T) {
	const rows, cols, seed = 8, 8, 5
	temps := ladderOf(3)
	cfg := Config{Temperatures: temps, SwapInterval: 1, Seed: seed}
	build := func(slot int, temperature float64) (ising.Backend, error) {
		return backend.New("checkerboard", backend.Config{
			Rows: rows, Cols: cols, Temperature: temperature, Seed: ReplicaSeed(seed, slot),
		})
	}
	classic, err := New(cfg, build)
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]ising.Backend, len(temps))
	for slot, temp := range temps {
		if lanes[slot], err = build(slot, temp); err != nil {
			t.Fatal(err)
		}
	}
	adapter, err := ising.NewBatchOf(lanes, 0)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewBatch(cfg, adapter)
	if err != nil {
		t.Fatal(err)
	}
	repA, repB := runBoth(classic, batched, 2, 6)
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("adapter ladder report differs from classic:\nclassic: %+v\nbatched: %+v", repA, repB)
	}
}

// TestNewBatchValidation: lane-count mismatches and already-swept batches
// are refused.
func TestNewBatchValidation(t *testing.T) {
	temps := ladderOf(3)
	cfg := Config{Temperatures: temps, Seed: 1}
	wrong, err := ensemble.New(ensemble.Config{Rows: 8, Cols: 64, Lanes: 2, Temperature: 2.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatch(cfg, wrong); err == nil {
		t.Error("lane/rung mismatch accepted")
	}
	swept, err := ensemble.New(ensemble.Config{Rows: 8, Cols: 64, Lanes: 3, Temperature: 2.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	swept.Sweep()
	if _, err := NewBatch(cfg, swept); err == nil {
		t.Error("already-swept batch accepted")
	}
}
