package perf_test

import (
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/perf"
)

// TestCheckpointModelMatchesRealSnapshots pins the model to the
// implementation: for every snapshottable registry engine, the modelled
// SnapshotBytes equals the length of an actual encoded ising.Snapshot.
func TestCheckpointModelMatchesRealSnapshots(t *testing.T) {
	for _, name := range []string{"checkerboard", "gpusim", "multispin", "multispin-shared"} {
		eng, err := backend.New(name, backend.Config{Rows: 16, Cols: 64, Temperature: 2.3, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eng.Sweep()
		snap, err := eng.(ising.Snapshotter).Snapshot()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		encoded := ising.EncodeSnapshot(snap)
		rep := perf.CheckpointTraffic(perf.CheckpointSpec{
			Rows: 16, Cols: 64, Backend: eng.Name(), Sweeps: 100, Interval: 10,
		}, perf.DefaultDiskParams())
		if rep.SnapshotBytes != int64(len(encoded)) {
			t.Fatalf("%s: modelled %d snapshot bytes, real encoding is %d",
				name, rep.SnapshotBytes, len(encoded))
		}
		if want := int64(ising.EncodedSnapshotBytes(len(eng.Name()), len(snap.RNG), 16, 64)); rep.SnapshotBytes != want {
			t.Fatalf("%s: modelled %d bytes, ising.EncodedSnapshotBytes says %d", name, rep.SnapshotBytes, want)
		}
	}
}

func TestCheckpointTrafficCounts(t *testing.T) {
	disk := perf.DiskParams{BandwidthBytesPerSec: 1e6, LatencySec: 1e-3}
	rep := perf.CheckpointTraffic(perf.CheckpointSpec{
		Rows: 8, Cols: 8, Backend: "checkerboard", Sweeps: 100, Interval: 10,
	}, disk)
	// Multiples of 10 strictly before sweep 100: 10, 20, ..., 90.
	if rep.Count != 9 {
		t.Fatalf("Count = %d, want 9", rep.Count)
	}
	if rep.TotalBytes != 9*rep.SnapshotBytes {
		t.Fatalf("TotalBytes = %d, want %d", rep.TotalBytes, 9*rep.SnapshotBytes)
	}
	wantSec := float64(rep.TotalBytes)/1e6 + 9*1e-3
	if diff := rep.WriteSec - wantSec; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("WriteSec = %g, want %g", rep.WriteSec, wantSec)
	}
	// A run shorter than one interval writes no checkpoints.
	none := perf.CheckpointTraffic(perf.CheckpointSpec{
		Rows: 8, Cols: 8, Backend: "checkerboard", Sweeps: 9, Interval: 10,
	}, disk)
	if none.Count != 0 || none.TotalBytes != 0 || none.WriteSec != 0 {
		t.Fatalf("short run: %+v", none)
	}
	// The packed state is a small constant over the 1-bit spin field.
	if rep.SweepFraction < 1 || rep.SweepFraction > 10 {
		t.Fatalf("SweepFraction = %g, expected a small multiple of the raw field", rep.SweepFraction)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec should panic")
		}
	}()
	perf.CheckpointTraffic(perf.CheckpointSpec{Rows: 0, Cols: 8, Sweeps: 1, Interval: 1}, disk)
}
