package perf

import (
	"testing"

	"tpuising/internal/interconnect"
)

func TestExchangeTrafficCounts(t *testing.T) {
	link := interconnect.DefaultLinkParams()
	cases := []struct {
		replicas, rounds            int
		wantEven, wantOdd, attempts int64
	}{
		// Even count: 8 replicas -> 4 even pairs, 3 odd pairs. 5 rounds run
		// even, odd, even, odd, even = 3 even + 2 odd phases.
		{8, 5, 4, 3, 3*4 + 2*3},
		// Odd count: 5 replicas -> 2 even pairs, 2 odd pairs.
		{5, 7, 2, 2, 4*2 + 3*2},
		// Two replicas: odd rounds attempt nothing.
		{2, 4, 1, 0, 2},
		{3, 0, 1, 1, 0},
	}
	for _, c := range cases {
		rep := ExchangeTraffic(ExchangeSpec{Replicas: c.replicas, Rounds: c.rounds}, link)
		if rep.EvenPairs != c.wantEven || rep.OddPairs != c.wantOdd {
			t.Errorf("%d replicas: pairs = %d/%d, want %d/%d",
				c.replicas, rep.EvenPairs, rep.OddPairs, c.wantEven, c.wantOdd)
		}
		if rep.Attempts != c.attempts {
			t.Errorf("%d replicas x %d rounds: attempts = %d, want %d",
				c.replicas, c.rounds, rep.Attempts, c.attempts)
		}
		if rep.PairBytes != 2*EnergyMessageBytes {
			t.Errorf("PairBytes = %d, want %d", rep.PairBytes, 2*EnergyMessageBytes)
		}
		if rep.TotalBytes != rep.Attempts*rep.PairBytes {
			t.Errorf("TotalBytes = %d, want attempts*pairBytes = %d", rep.TotalBytes, rep.Attempts*rep.PairBytes)
		}
		if rep.Events != 2*rep.Attempts || rep.Hops != 2*rep.Attempts {
			t.Errorf("Events/Hops = %d/%d, want %d each", rep.Events, rep.Hops, 2*rep.Attempts)
		}
		if c.rounds > 0 && rep.ExchangeSec <= 0 {
			t.Errorf("%d rounds: ExchangeSec = %g, want > 0", c.rounds, rep.ExchangeSec)
		}
	}
}

// TestExchangeTrafficIndependentOfLatticeSize documents the point of
// label-swapping: the spec has no lattice dimensions at all, and the per-pair
// payload is two fixed-size energies.
func TestExchangeTrafficScaling(t *testing.T) {
	link := interconnect.DefaultLinkParams()
	small := ExchangeTraffic(ExchangeSpec{Replicas: 4, Rounds: 10}, link)
	big := ExchangeTraffic(ExchangeSpec{Replicas: 4, Rounds: 20}, link)
	if big.TotalBytes != 2*small.TotalBytes {
		t.Errorf("doubling rounds should double traffic: %d vs %d", small.TotalBytes, big.TotalBytes)
	}
	if big.ExchangeSec <= small.ExchangeSec {
		t.Errorf("more rounds must cost more time: %g vs %g", small.ExchangeSec, big.ExchangeSec)
	}
}

func TestExchangeTrafficPanics(t *testing.T) {
	for _, spec := range []ExchangeSpec{{Replicas: 1, Rounds: 5}, {Replicas: 4, Rounds: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExchangeTraffic(%+v) should panic", spec)
				}
			}()
			ExchangeTraffic(spec, interconnect.DefaultLinkParams())
		}()
	}
}
