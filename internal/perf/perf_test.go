package perf

import (
	"math"
	"testing"

	"tpuising/internal/device/metrics"
	"tpuising/internal/tensor"
)

func anchorCounts() metrics.Counts {
	return EstimateSweepCounts(SweepSpec{
		Rows: anchorRows, Cols: anchorCols, Tile: 128,
		DType: tensor.BFloat16, Algorithm: AlgOptim, Halo: true, PodX: 4, PodY: 8,
	})
}

func TestDefaultModelReproducesAnchorStepTime(t *testing.T) {
	m := DefaultModel()
	b := m.StepBreakdown(anchorCounts(), 32)
	if got := b.StepSec(); math.Abs(got-anchorStepSec) > 0.005 {
		t.Fatalf("anchor step time %.4f s, want %.3f s", got, anchorStepSec)
	}
	mxu, vpu, format, comm := b.Fractions()
	if math.Abs(mxu-anchorMXUFrac) > 0.01 {
		t.Errorf("MXU fraction %.3f, want %.3f", mxu, anchorMXUFrac)
	}
	if math.Abs(vpu-anchorVPUFrac) > 0.01 {
		t.Errorf("VPU fraction %.3f, want %.3f", vpu, anchorVPUFrac)
	}
	if math.Abs(format-anchorFormatFrac) > 0.01 {
		t.Errorf("format fraction %.3f, want %.3f", format, anchorFormatFrac)
	}
	// Collective permute must be a negligible fraction (Table 3: < 0.11%).
	if comm > 0.002 {
		t.Errorf("comm fraction %.5f, want < 0.002", comm)
	}
}

func TestAnchorThroughputAndEnergy(t *testing.T) {
	m := DefaultModel()
	b := m.StepBreakdown(anchorCounts(), 32)
	spins := float64(anchorRows) * float64(anchorCols)
	perCore := Throughput(spins, b.StepSec())
	// Table 2: ~11.43 flips/ns per core.
	if perCore < 11.0 || perCore < 0 || perCore > 12.0 {
		t.Fatalf("per-core throughput %.2f flips/ns, paper reports ~11.43", perCore)
	}
	// Table 2: ~8.74 nJ/flip.
	if e := m.EnergyPerFlip(perCore); e < 8.3 || e > 9.2 {
		t.Fatalf("energy %.2f nJ/flip, paper reports ~8.74", e)
	}
}

func TestThroughputRisesWithLatticeSize(t *testing.T) {
	// Table 1's shape: single-core throughput grows with the lattice and
	// saturates, because the per-step dispatch overhead is amortised.
	m := DefaultModel()
	prev := 0.0
	sizes := []int{20 * 128, 80 * 128, 320 * 128, 640 * 128}
	var last float64
	for _, side := range sizes {
		c := EstimateSweepCounts(SweepSpec{
			Rows: side, Cols: side, Tile: 128, DType: tensor.BFloat16, Algorithm: AlgOptim,
		})
		b := m.StepBreakdown(c, 1)
		tput := Throughput(float64(side)*float64(side), b.StepSec())
		if tput <= prev {
			t.Fatalf("throughput not increasing: %.2f after %.2f at side %d", tput, prev, side)
		}
		prev = tput
		last = tput
	}
	// The first size should be well below saturation, the last close to the
	// single-core saturated rate.
	first := prev * 0 // silence linters; recompute below
	_ = first
	cSmall := EstimateSweepCounts(SweepSpec{Rows: 20 * 128, Cols: 20 * 128, Tile: 128, DType: tensor.BFloat16, Algorithm: AlgOptim})
	small := Throughput(float64(20*128)*float64(20*128), m.StepBreakdown(cSmall, 1).StepSec())
	if small > 0.85*last {
		t.Fatalf("small lattice %.2f flips/ns is too close to saturated %.2f: Table 1 shape lost", small, last)
	}
	// Saturated single-core throughput must beat the published V100 (11.37)
	// and Preis GPU (7.98) baselines, the paper's headline comparison.
	if last <= 11.37 {
		t.Fatalf("saturated single-core throughput %.2f does not beat the V100 baseline", last)
	}
}

func TestWeakScalingIsLinear(t *testing.T) {
	// Table 2: the per-core step time (and hence whole-pod throughput per
	// core) is essentially independent of the pod size.
	m := DefaultModel()
	c := anchorCounts()
	var step2, step512 float64
	for _, cores := range []int{2, 8, 32, 128, 512} {
		b := m.StepBreakdown(c, cores)
		if cores == 2 {
			step2 = b.StepSec()
		}
		if cores == 512 {
			step512 = b.StepSec()
		}
	}
	if step512 < step2 {
		t.Fatalf("step time decreased with pod size: %.4f -> %.4f", step2, step512)
	}
	if (step512-step2)/step2 > 0.005 {
		t.Fatalf("weak scaling not linear: step %.4f s at 2 cores vs %.4f s at 512", step2, step512)
	}
}

func TestCommTimeMatchesTable4Regime(t *testing.T) {
	// Table 4: collective-permute time per sweep is a few tenths of a
	// millisecond, grows with core count, and is never more than ~1% of the
	// step time.
	m := DefaultModel()
	c := anchorCounts()
	prev := 0.0
	for _, cores := range []int{32, 128, 512} {
		b := m.StepBreakdown(c, cores)
		if b.CommSec < 0.1e-3 || b.CommSec > 1.5e-3 {
			t.Fatalf("comm time %.3g s at %d cores, Table 4 reports 0.2-0.7 ms", b.CommSec, cores)
		}
		if b.CommSec <= prev {
			t.Fatalf("comm time should grow with core count")
		}
		if b.CommSec/b.StepSec() > 0.01 {
			t.Fatalf("comm fraction %.4f too large at %d cores", b.CommSec/b.StepSec(), cores)
		}
		prev = b.CommSec
	}
}

func TestConvModelFasterThanOptim(t *testing.T) {
	// Table 6 vs Table 2: the conv-based implementation is ~70-80% faster at
	// the same per-core lattice.
	m := DefaultModel()
	optim := m.StepBreakdown(anchorCounts(), 32).StepSec()
	convCounts := EstimateSweepCounts(SweepSpec{
		Rows: anchorRows, Cols: anchorCols, Tile: 128,
		DType: tensor.BFloat16, Algorithm: AlgConv, Halo: true, PodX: 4, PodY: 8,
	})
	conv := m.ForConv().StepBreakdown(convCounts, 32).StepSec()
	if conv >= optim {
		t.Fatalf("conv step %.3f s not faster than optim %.3f s", conv, optim)
	}
	speedup := optim / conv
	if speedup < 1.4 || speedup > 2.2 {
		t.Fatalf("conv speedup %.2fx, paper reports ~1.7x", speedup)
	}
	// Absolute anchor: Table 6 superdense row is ~332 ms.
	if conv < 0.30 || conv > 0.37 {
		t.Fatalf("conv anchor step %.3f s, Table 6 reports ~0.332 s", conv)
	}
}

func TestRooflineMatchesTable5(t *testing.T) {
	m := DefaultModel()
	c := anchorCounts()
	b := m.StepBreakdown(c, 32)
	r := m.RooflineAnalysis(c, b.StepSec())
	if !r.MemoryBound {
		t.Fatal("the nearest-neighbour computation should be memory bound")
	}
	// Table 5: ~76% of roofline, ~9.3% of peak, ~5.9 TFLOPS achieved.
	if r.PctOfRoofline < 60 || r.PctOfRoofline > 95 {
		t.Fatalf("%% of roofline = %.1f, paper reports ~76", r.PctOfRoofline)
	}
	if r.PctOfPeak < 8 || r.PctOfPeak > 11 {
		t.Fatalf("%% of peak = %.1f, paper reports ~9.3", r.PctOfPeak)
	}
	if r.AchievedFLOPS < 5.0e12 || r.AchievedFLOPS > 7.0e12 {
		t.Fatalf("achieved FLOPS %.3g, paper reports ~5.9e12", r.AchievedFLOPS)
	}
	// Degenerate inputs.
	if z := m.RooflineAnalysis(metrics.Counts{}, 1); z.AchievedFLOPS != 0 {
		t.Fatal("empty counts should give a zero roofline")
	}
}

func TestStrongScalingShape(t *testing.T) {
	// Table 7 / Figure 9: strong scaling of the conv implementation on the
	// (128x1792)^2 lattice is near-linear for small pods and departs from
	// linear beyond ~1000 cores as communication dominates.
	m := DefaultModel().ForConv()
	const side = 1792 * 128
	type point struct {
		cores int
		rows  int
		cols  int
	}
	points := []point{
		{8, 896 * 128, 448 * 128},
		{64, 224 * 128, 224 * 128},
		{512, 112 * 128, 56 * 128},
		{2048, 56 * 128, 28 * 128},
	}
	base := 0.0
	var effAtMid, effAtEnd float64
	for i, p := range points {
		c := EstimateSweepCounts(SweepSpec{
			Rows: p.rows, Cols: p.cols, Tile: 128,
			DType: tensor.BFloat16, Algorithm: AlgConv, Halo: true, PodX: 2, PodY: 2,
		})
		b := m.StepBreakdown(c, p.cores)
		tput := Throughput(float64(side)*float64(side), b.StepSec())
		perCore := tput / float64(p.cores)
		if i == 0 {
			base = perCore
		}
		eff := perCore / base
		if p.cores == 512 {
			effAtMid = eff
		}
		if p.cores == 2048 {
			effAtEnd = eff
		}
	}
	if effAtMid < 0.75 {
		t.Fatalf("efficiency at 512 cores = %.2f, should still be near-linear", effAtMid)
	}
	if effAtEnd > 0.9*effAtMid {
		t.Fatalf("efficiency at 2048 cores (%.2f) should drop below 512-core efficiency (%.2f)",
			effAtEnd, effAtMid)
	}
	if effAtEnd < 0.2 {
		t.Fatalf("efficiency at 2048 cores collapsed to %.2f", effAtEnd)
	}
}

func TestHBMFootprintAndMaxLattice(t *testing.T) {
	m := DefaultModel()
	// Footprint grows with the lattice.
	small := HBMFootprintBytes(256, 256, 128, tensor.BFloat16)
	big := HBMFootprintBytes(512, 512, 128, tensor.BFloat16)
	if big <= small {
		t.Fatal("footprint must grow with the lattice")
	}
	// bfloat16 halves the footprint relative to float32 (the paper's stated
	// reason for using it).
	f32 := HBMFootprintBytes(512, 512, 128, tensor.Float32)
	if f32 <= big {
		t.Fatal("float32 should need more memory than bfloat16")
	}
	// The largest single-core bfloat16 lattice should be within ~15% of the
	// paper's (656*128)^2 claim, and the float32 maximum must be smaller.
	side := m.MaxSquareLattice(128, tensor.BFloat16)
	if side < 70000 || side > 95000 {
		t.Fatalf("max bf16 lattice side %d, paper reports 83968", side)
	}
	if f32side := m.MaxSquareLattice(128, tensor.Float32); f32side >= side {
		t.Fatalf("float32 max side %d should be below bf16 max %d", f32side, side)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	var zero Breakdown
	a, b, c, d := zero.Fractions()
	if a != 0 || b != 0 || c != 0 || d != 0 {
		t.Fatal("zero breakdown should give zero fractions")
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("zero step time should give zero throughput")
	}
	m := DefaultModel()
	if m.StepBreakdown(metrics.Counts{}, 0).StepSec() != 0 {
		t.Fatal("empty counts should give zero step time")
	}
}
