package perf

import (
	"math"

	"tpuising/internal/device/metrics"
	"tpuising/internal/device/spec"
	"tpuising/internal/interconnect"
	"tpuising/internal/tensor"
)

// Anchor configuration: the Table 2 per-core lattice and its published step
// time and Table 3 breakdown, used to calibrate the effective rates.
const (
	anchorStepSec    = 0.575
	anchorMXUFrac    = 0.596
	anchorVPUFrac    = 0.120
	anchorFormatFrac = 0.282

	// anchorConvStepSec is the Table 6 step time of the conv-based
	// implementation at the same per-core lattice, used to calibrate the
	// effective MXU rate of the convolution lowering (which leaves most of
	// the systolic array idle and is therefore far less efficient per MAC).
	anchorConvStepSec = 0.3324

	// opOverheadSec is the per-dispatched-operation launch overhead. It is
	// what makes small lattices slower per spin (Table 1's throughput rising
	// with lattice size): the number of operations per sweep is independent
	// of the lattice size, so the overhead is amortised as the lattice grows.
	opOverheadSec = 3.2e-6
)

// anchorRows and anchorCols are the Table 2 per-core lattice dimensions.
const (
	anchorRows = 896 * 128
	anchorCols = 448 * 128
)

// Model holds the calibrated effective rates of one TPU v3 TensorCore plus
// the interconnect link parameters.
type Model struct {
	// Chip is the hardware spec used for peak/roofline/energy numbers.
	Chip spec.Chip
	// MXUMacsPerSec is the sustained matrix-unit MAC rate for the batched
	// tile multiplications of Algorithms 1 and 2.
	MXUMacsPerSec float64
	// ConvMacsPerSec is the sustained MAC rate of the convolution lowering
	// used by the appendix implementation.
	ConvMacsPerSec float64
	// VPUOpsPerSec is the sustained weighted vector-lane operation rate.
	VPUOpsPerSec float64
	// FormatBytesPerSec is the sustained on-core data-movement bandwidth.
	FormatBytesPerSec float64
	// OpOverheadSec is the per-operation dispatch overhead.
	OpOverheadSec float64
	// Link is the interconnect cost model for collective permutes.
	Link interconnect.LinkParams
}

// DefaultModel returns the TPU v3 model calibrated against the paper's anchor
// configuration. The calibration divides the anchor's analytically estimated
// work counters by the published step-time fractions, so the anchor row of
// Table 2/3 is reproduced exactly and everything else follows.
func DefaultModel() Model {
	anchor := EstimateSweepCounts(SweepSpec{
		Rows: anchorRows, Cols: anchorCols, Tile: 128,
		DType: tensor.BFloat16, Algorithm: AlgOptim,
		Halo: true, PodX: 2, PodY: 1,
	})
	m := Model{
		Chip:              spec.TPUv3Core(),
		MXUMacsPerSec:     float64(anchor.MXUMacs) / (anchorMXUFrac * anchorStepSec),
		VPUOpsPerSec:      float64(anchor.VPUOps) / (anchorVPUFrac * anchorStepSec),
		FormatBytesPerSec: float64(anchor.FormatBytes) / (anchorFormatFrac * anchorStepSec),
		OpOverheadSec:     opOverheadSec,
		Link:              interconnect.DefaultLinkParams(),
	}
	// Conv calibration: at the anchor per-core lattice the conv variant has
	// essentially no data-formatting work, so its MXU rate is whatever makes
	// the Table 6 anchor step time come out after the (shared) VPU and
	// dispatch components are accounted for.
	conv := EstimateSweepCounts(SweepSpec{
		Rows: anchorRows, Cols: anchorCols, Tile: 128,
		DType: tensor.BFloat16, Algorithm: AlgConv,
		Halo: true, PodX: 2, PodY: 1,
	})
	remaining := anchorConvStepSec -
		float64(conv.VPUOps)/m.VPUOpsPerSec -
		float64(conv.FormatBytes)/m.FormatBytesPerSec -
		float64(conv.Ops)*m.OpOverheadSec
	m.ConvMacsPerSec = float64(conv.MXUMacs) / remaining
	return m
}

// ForConv returns a copy of the model whose matrix-unit rate is the
// convolution-lowering rate, for estimating the appendix implementation.
func (m Model) ForConv() Model {
	out := m
	out.MXUMacsPerSec = m.ConvMacsPerSec
	return out
}

// Breakdown is the modelled composition of one step (whole-lattice update),
// mirroring the categories of the paper's Table 3.
type Breakdown struct {
	// MXUSec is the matrix-unit time.
	MXUSec float64
	// VPUSec is the vector-unit time (dominated by random-number generation).
	VPUSec float64
	// FormatSec is the data-formatting time (slicing, rolling, reshaping,
	// plus the per-operation dispatch overhead).
	FormatSec float64
	// CommSec is the collective-permute time.
	CommSec float64
}

// StepSec returns the total modelled step time.
func (b Breakdown) StepSec() float64 { return b.MXUSec + b.VPUSec + b.FormatSec + b.CommSec }

// Fractions returns the four components as fractions of the step time, in
// the order MXU, VPU, data formatting, collective permute.
func (b Breakdown) Fractions() (mxu, vpu, format, comm float64) {
	s := b.StepSec()
	if s == 0 {
		return 0, 0, 0, 0
	}
	return b.MXUSec / s, b.VPUSec / s, b.FormatSec / s, b.CommSec / s
}

// StepBreakdown converts one core's per-sweep work counters into the modelled
// step time composition. numCores is the pod size (1 for a standalone core);
// it enters only through the synchronisation term of the collective permutes.
func (m Model) StepBreakdown(c metrics.Counts, numCores int) Breakdown {
	if numCores < 1 {
		numCores = 1
	}
	b := Breakdown{
		MXUSec:    float64(c.MXUMacs) / m.MXUMacsPerSec,
		VPUSec:    float64(c.VPUOps) / m.VPUOpsPerSec,
		FormatSec: float64(c.FormatBytes)/m.FormatBytesPerSec + float64(c.Ops)*m.OpOverheadSec,
	}
	if c.CommEvents > 0 {
		l := m.Link
		b.CommSec = float64(c.CommEvents)*(l.SyncLatencySec+l.SyncPerSqrtCoreSec*math.Sqrt(float64(numCores))) +
			float64(c.CommHops)*l.HopLatencySec +
			float64(c.CommBytes)/l.BandwidthBytesPerSec
	}
	return b
}

// Throughput converts a step time into the paper's flips/ns metric for a
// system holding the given total number of spins.
func Throughput(totalSpins float64, stepSec float64) float64 {
	if stepSec <= 0 {
		return 0
	}
	return totalSpins / (stepSec * 1e9)
}

// EnergyPerFlip returns the upper-bound energy estimate in nJ/flip for the
// given per-core throughput, as in Tables 1 and 2 (powerWatts is per core).
func (m Model) EnergyPerFlip(flipsPerNsPerCore float64) float64 {
	return spec.EnergyPerFlip(m.Chip.PowerWatts, flipsPerNsPerCore)
}

// Roofline is the Table 5 analysis of one configuration.
type Roofline struct {
	// AchievedFLOPS is the program FLOP rate (2 FLOPs per MAC plus the
	// vector-unit work).
	AchievedFLOPS float64
	// ArithmeticIntensity is FLOPs per byte of HBM traffic.
	ArithmeticIntensity float64
	// RooflineFLOPS is the attainable rate at this intensity:
	// min(peak, intensity * HBM bandwidth).
	RooflineFLOPS float64
	// PctOfRoofline is AchievedFLOPS / RooflineFLOPS in percent.
	PctOfRoofline float64
	// PctOfPeak is AchievedFLOPS / hardware peak in percent.
	PctOfPeak float64
	// MemoryBound reports whether the roofline at this intensity is the
	// memory-bandwidth slope rather than the compute peak.
	MemoryBound bool
}

// RooflineAnalysis computes the Table 5 quantities from one core's per-sweep
// counters and the modelled (or measured) step time.
func (m Model) RooflineAnalysis(c metrics.Counts, stepSec float64) Roofline {
	r := Roofline{}
	if stepSec <= 0 || c.HBMBytes == 0 {
		return r
	}
	flops := float64(c.FLOPs())
	r.AchievedFLOPS = flops / stepSec
	r.ArithmeticIntensity = flops / float64(c.HBMBytes)
	r.RooflineFLOPS = math.Min(m.Chip.PeakFLOPS, r.ArithmeticIntensity*m.Chip.HBMBandwidth)
	r.MemoryBound = r.RooflineFLOPS < m.Chip.PeakFLOPS
	r.PctOfRoofline = 100 * r.AchievedFLOPS / r.RooflineFLOPS
	r.PctOfPeak = 100 * r.AchievedFLOPS / m.Chip.PeakFLOPS
	return r
}

// HBMFootprintBytes returns the device memory needed to hold the Algorithm 2
// state for a per-core lattice: the four persistent compact colour planes
// plus the working set of one colour update (the probability tensors of the
// two planes being updated; the acceptance/flip chain is assumed fused, as
// XLA does). This backs the paper's claim that a single core holds a lattice
// of order (656x128)^2 in bfloat16 — our slightly more conservative working
// set gives (590x128)^2, recorded as a deviation in EXPERIMENTS.md.
func HBMFootprintBytes(rows, cols, tile int, dtype tensor.DType) int64 {
	mp, np := rows/(2*tile), cols/(2*tile)
	plane := tb(dtype, mp, np, tile, tile)
	kernel := tb(dtype, tile, tile)
	// 4 persistent planes + 2 probability tensors for the colour being
	// updated + the kernel and its transpose.
	return 4*plane + 2*plane + 2*kernel
}

// MaxSquareLattice returns the largest multiple-of-(2*tile) square lattice
// side whose Algorithm 2 footprint fits in the core's HBM.
func (m Model) MaxSquareLattice(tile int, dtype tensor.DType) int {
	side := 2 * tile
	for HBMFootprintBytes(side+2*tile, side+2*tile, tile, dtype) <= m.Chip.HBMBytes {
		side += 2 * tile
	}
	return side
}
