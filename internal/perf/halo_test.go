package perf

import (
	"testing"

	"tpuising/internal/interconnect"
)

// TestShardTrafficBytes checks the analytic halo-traffic counts on a grid
// whose numbers are easy to verify by hand: a 128x128 lattice on 2x2 shards
// has 64x64-spin shards, so a row halo is one 64-bit word (8 bytes) and a
// column halo packs 64 boundary spins into one word (8 bytes).
func TestShardTrafficBytes(t *testing.T) {
	rep := ShardTraffic(ShardSpec{Rows: 128, Cols: 128, GridR: 2, GridC: 2},
		interconnect.DefaultLinkParams())
	if rep.RowHaloBytes != 8 || rep.ColHaloBytes != 8 {
		t.Fatalf("halo bytes = %d/%d, want 8/8", rep.RowHaloBytes, rep.ColHaloBytes)
	}
	if rep.RowLinkBytes != 32 || rep.ColLinkBytes != 32 {
		t.Fatalf("link bytes = %d/%d, want 32/32", rep.RowLinkBytes, rep.ColLinkBytes)
	}
	if want := int64(4 * (4*8 + 4*8)); rep.TotalBytes != want {
		t.Fatalf("TotalBytes = %d, want %d", rep.TotalBytes, want)
	}
	if rep.Events != 32 {
		t.Fatalf("Events = %d, want 32", rep.Events)
	}
	if rep.PermuteSec <= 0 {
		t.Fatal("PermuteSec should be positive")
	}
}

// TestShardTrafficSyncGrowth: the modelled permute time must grow with the
// core grid (the paper's Table 4 observation that the collective time rises
// slowly with pod size even though the per-link payload shrinks).
func TestShardTrafficSyncGrowth(t *testing.T) {
	link := interconnect.DefaultLinkParams()
	small := ShardTraffic(ShardSpec{Rows: 512, Cols: 512, GridR: 2, GridC: 2}, link)
	large := ShardTraffic(ShardSpec{Rows: 512, Cols: 512, GridR: 8, GridC: 8}, link)
	if large.PermuteSec <= small.PermuteSec {
		t.Fatalf("permute time should grow with the grid: 8x8 %.3gs <= 2x2 %.3gs",
			large.PermuteSec, small.PermuteSec)
	}
	if large.RowHaloBytes >= small.RowHaloBytes {
		t.Fatalf("per-message payload should shrink with the grid")
	}
}

// TestShardTrafficRejectsIndivisible: a lattice that does not decompose over
// the grid must panic (the engine reports the same condition as an error).
func TestShardTrafficRejectsIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible decomposition")
		}
	}()
	ShardTraffic(ShardSpec{Rows: 100, Cols: 128, GridR: 3, GridC: 1},
		interconnect.DefaultLinkParams())
}
