package perf

import (
	"testing"

	"tpuising/internal/ising/tpu"
	"tpuising/internal/tensor"
)

func algOf(a tpu.Algorithm) Algorithm {
	switch a {
	case tpu.AlgOptim:
		return AlgOptim
	case tpu.AlgNaive:
		return AlgNaive
	default:
		return AlgConv
	}
}

func TestEstimateMatchesInstrumentedSingleCore(t *testing.T) {
	cases := []struct {
		name       string
		alg        tpu.Algorithm
		rows, cols int
		tile       int
		dtype      tensor.DType
	}{
		{"optim 16x16 t4 f32", tpu.AlgOptim, 16, 16, 4, tensor.Float32},
		{"optim 16x24 t4 bf16", tpu.AlgOptim, 16, 24, 4, tensor.BFloat16},
		{"optim 32x16 t8 f32", tpu.AlgOptim, 32, 16, 8, tensor.Float32},
		{"naive 16x16 t4 f32", tpu.AlgNaive, 16, 16, 4, tensor.Float32},
		{"naive 24x16 t8 bf16", tpu.AlgNaive, 24, 16, 8, tensor.BFloat16},
		{"conv 16x16 f32", tpu.AlgConv, 16, 16, 0, tensor.Float32},
		{"conv 10x14 bf16", tpu.AlgConv, 10, 14, 0, tensor.BFloat16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := tpu.NewSimulator(tpu.Config{
				Rows: tc.rows, Cols: tc.cols, Temperature: 2.5, TileSize: tc.tile,
				DType: tc.dtype, Algorithm: tc.alg, Seed: 1,
			})
			sim.Sweep()
			got := sim.Counts()

			tile := tc.tile
			if tile == 0 {
				tile = 128
			}
			want := EstimateSweepCounts(SweepSpec{
				Rows: tc.rows, Cols: tc.cols, Tile: tile,
				DType: tc.dtype, Algorithm: algOf(tc.alg),
			})
			if got.MXUMacs != want.MXUMacs {
				t.Errorf("MXUMacs: instrumented %d, estimated %d", got.MXUMacs, want.MXUMacs)
			}
			if got.VPUOps != want.VPUOps {
				t.Errorf("VPUOps: instrumented %d, estimated %d", got.VPUOps, want.VPUOps)
			}
			if got.FormatBytes != want.FormatBytes {
				t.Errorf("FormatBytes: instrumented %d, estimated %d", got.FormatBytes, want.FormatBytes)
			}
			if got.HBMBytes != want.HBMBytes {
				t.Errorf("HBMBytes: instrumented %d, estimated %d", got.HBMBytes, want.HBMBytes)
			}
			if got.Ops != want.Ops {
				t.Errorf("Ops: instrumented %d, estimated %d", got.Ops, want.Ops)
			}
			if got.CommEvents != 0 || want.CommEvents != 0 {
				t.Errorf("single-core runs must not communicate: instrumented %d, estimated %d",
					got.CommEvents, want.CommEvents)
			}
		})
	}
}

func TestEstimateMatchesInstrumentedPod(t *testing.T) {
	cases := []struct {
		name               string
		podX, podY         int
		coreRows, coreCols int
		tile               int
		dtype              tensor.DType
	}{
		{"2x2 pod 8x8 cores t2 f32", 2, 2, 8, 8, 2, tensor.Float32},
		{"2x1 pod 8x16 cores t4 bf16", 2, 1, 8, 16, 4, tensor.BFloat16},
		{"1x2 pod 16x8 cores t4 f32", 1, 2, 16, 8, 4, tensor.Float32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tpu.NewDistSimulator(tpu.DistConfig{
				PodX: tc.podX, PodY: tc.podY,
				CoreRows: tc.coreRows, CoreCols: tc.coreCols,
				Temperature: 2.5, TileSize: tc.tile, DType: tc.dtype, Seed: 1,
			})
			d.Sweep()
			got, _ := d.Counts()

			want := EstimateSweepCounts(SweepSpec{
				Rows: tc.coreRows, Cols: tc.coreCols, Tile: tc.tile,
				DType: tc.dtype, Algorithm: AlgOptim,
				Halo: true, PodX: tc.podX, PodY: tc.podY,
			})
			if got.MXUMacs != want.MXUMacs {
				t.Errorf("MXUMacs: instrumented %d, estimated %d", got.MXUMacs, want.MXUMacs)
			}
			if got.VPUOps != want.VPUOps {
				t.Errorf("VPUOps: instrumented %d, estimated %d", got.VPUOps, want.VPUOps)
			}
			if got.FormatBytes != want.FormatBytes {
				t.Errorf("FormatBytes: instrumented %d, estimated %d", got.FormatBytes, want.FormatBytes)
			}
			if got.HBMBytes != want.HBMBytes {
				t.Errorf("HBMBytes: instrumented %d, estimated %d", got.HBMBytes, want.HBMBytes)
			}
			if got.CommEvents != want.CommEvents {
				t.Errorf("CommEvents: instrumented %d, estimated %d", got.CommEvents, want.CommEvents)
			}
			if got.CommBytes != want.CommBytes {
				t.Errorf("CommBytes: instrumented %d, estimated %d", got.CommBytes, want.CommBytes)
			}
			if got.CommHops != want.CommHops {
				t.Errorf("CommHops: instrumented %d, estimated %d", got.CommHops, want.CommHops)
			}
			if got.Ops != want.Ops {
				t.Errorf("Ops: instrumented %d, estimated %d", got.Ops, want.Ops)
			}
		})
	}
}

func TestEstimateScalesWithArea(t *testing.T) {
	// For a fixed tile, quadrupling the per-core lattice must quadruple the
	// extensive counters (MACs, VPU ops) exactly.
	small := EstimateSweepCounts(SweepSpec{Rows: 256, Cols: 256, Tile: 128, DType: tensor.BFloat16, Algorithm: AlgOptim})
	large := EstimateSweepCounts(SweepSpec{Rows: 512, Cols: 512, Tile: 128, DType: tensor.BFloat16, Algorithm: AlgOptim})
	if large.MXUMacs != 4*small.MXUMacs {
		t.Errorf("MXUMacs did not scale by 4: %d -> %d", small.MXUMacs, large.MXUMacs)
	}
	if large.VPUOps != 4*small.VPUOps {
		t.Errorf("VPUOps did not scale by 4: %d -> %d", small.VPUOps, large.VPUOps)
	}
	if large.Ops != small.Ops {
		t.Errorf("op count should be size-independent: %d -> %d", small.Ops, large.Ops)
	}
}

func TestEstimateOptimBeatsNaive(t *testing.T) {
	optim := EstimateSweepCounts(SweepSpec{Rows: 512, Cols: 512, Tile: 128, DType: tensor.BFloat16, Algorithm: AlgOptim})
	naive := EstimateSweepCounts(SweepSpec{Rows: 512, Cols: 512, Tile: 128, DType: tensor.BFloat16, Algorithm: AlgNaive})
	if optim.MXUMacs >= naive.MXUMacs {
		t.Errorf("Algorithm 2 should do less matrix work: %d vs %d", optim.MXUMacs, naive.MXUMacs)
	}
	if optim.VPUOps >= naive.VPUOps {
		t.Errorf("Algorithm 2 should do less vector work: %d vs %d", optim.VPUOps, naive.VPUOps)
	}
}

func TestEstimateAnchorMatchesPaperArithmetic(t *testing.T) {
	// Section 5.2 of the paper estimates the per-sweep matrix work at the
	// per-core lattice [896x128, 448x128] and measures ~5.8 TFLOPS over the
	// ~580 ms step. Our count is 2 * 896*448*128^3 MACs per sweep (each of
	// the four compact planes needs two 128^3 multiplications per tile per
	// colour), which reproduces exactly that measured FLOP rate:
	// 2 MACs -> 2 FLOPs, so 4*896*448*128^3 / 0.575 s = 5.86 TFLOPS.
	c := EstimateSweepCounts(SweepSpec{
		Rows: 896 * 128, Cols: 448 * 128, Tile: 128,
		DType: tensor.BFloat16, Algorithm: AlgOptim, Halo: true, PodX: 2, PodY: 2,
	})
	want := 2 * int64(896) * 448 * 128 * 128 * 128
	if c.MXUMacs != want {
		t.Errorf("anchor MACs = %d, want %d", c.MXUMacs, want)
	}
	flops := 2 * float64(c.MXUMacs) / 0.575
	if flops < 5.5e12 || flops > 6.2e12 {
		t.Errorf("anchor matrix FLOPS = %.3g, paper measures ~5.8e12", flops)
	}
	// One uniform per site per sweep.
	wantRandomOps := int64(896*128) * int64(448*128) * 6
	if c.VPUOps < wantRandomOps {
		t.Errorf("VPU ops %d below the random-generation floor %d", c.VPUOps, wantRandomOps)
	}
	// Halo traffic: the paper quotes 896*128*2 = 229,376 bytes per edge in one
	// direction and 448*128*2 = 114,688 in the other, per core per colour
	// update. Our compact planes exchange the same total per sweep.
	wantComm := int64(2 * (896*128*2 + 448*128*2))
	if c.CommBytes != wantComm {
		t.Errorf("CommBytes = %d, want %d", c.CommBytes, wantComm)
	}
}

func TestEstimatePanicsOnBadSpec(t *testing.T) {
	cases := []SweepSpec{
		{Rows: 0, Cols: 8, Tile: 2, Algorithm: AlgOptim},
		{Rows: 8, Cols: 8, Tile: 0, Algorithm: AlgOptim},
		{Rows: 6, Cols: 8, Tile: 2, Algorithm: AlgOptim},
		{Rows: 8, Cols: 8, Tile: 2, Algorithm: AlgOptim, Halo: true},
		{Rows: 8, Cols: 8, Tile: 2, Algorithm: Algorithm(9)},
	}
	for i, spec := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			EstimateSweepCounts(spec)
		}()
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range []Algorithm{AlgOptim, AlgNaive, AlgConv, Algorithm(7)} {
		if a.String() == "" {
			t.Errorf("empty name for %d", int(a))
		}
	}
}
