package perf

import (
	"testing"

	"tpuising/internal/interconnect"
)

// TestShardedEnsembleTrafficBytes checks the analytic counts on a grid whose
// numbers verify by hand: a 64x64 per-lane lattice on 2x2 shards has 32x32
// shards, so a boundary row is 32 lane-packed words (256 bytes) and a
// boundary column 32 words too.
func TestShardedEnsembleTrafficBytes(t *testing.T) {
	rep := ShardedEnsembleTraffic(ShardedEnsembleSpec{
		Rows: 64, Cols: 64, GridR: 2, GridC: 2, Lanes: 64,
	}, interconnect.DefaultLinkParams())
	if rep.RowHaloBytes != 256 || rep.ColHaloBytes != 256 {
		t.Fatalf("halo bytes = %d/%d, want 256/256", rep.RowHaloBytes, rep.ColHaloBytes)
	}
	if want := int64(4 * (4*256 + 4*256)); rep.TotalBytes != want {
		t.Fatalf("TotalBytes = %d, want %d", rep.TotalBytes, want)
	}
	if rep.Events != 32 {
		t.Fatalf("Events = %d, want 32", rep.Events)
	}
	if want := float64(rep.TotalBytes) / 64; rep.BytesPerLaneSweep != want {
		t.Fatalf("BytesPerLaneSweep = %g, want %g", rep.BytesPerLaneSweep, want)
	}
	if rep.PackedBytes != 64*64*8 {
		t.Fatalf("PackedBytes = %d, want %d", rep.PackedBytes, 64*64*8)
	}
	if rep.PermuteSec <= 0 {
		t.Fatal("PermuteSec should be positive")
	}
}

// TestShardedEnsembleLaneAmortisation: the traffic is independent of the lane
// count (halo words carry all lanes), so the per-lane cost falls linearly —
// the composition's reason to exist.
func TestShardedEnsembleLaneAmortisation(t *testing.T) {
	link := interconnect.DefaultLinkParams()
	one := ShardedEnsembleTraffic(ShardedEnsembleSpec{Rows: 128, Cols: 128, GridR: 2, GridC: 2, Lanes: 1}, link)
	full := ShardedEnsembleTraffic(ShardedEnsembleSpec{Rows: 128, Cols: 128, GridR: 2, GridC: 2, Lanes: 64}, link)
	if one.TotalBytes != full.TotalBytes {
		t.Fatalf("total traffic should not depend on lanes: %d vs %d", one.TotalBytes, full.TotalBytes)
	}
	if full.BytesPerLaneSweep*64 != one.BytesPerLaneSweep {
		t.Fatalf("per-lane traffic should fall 64x: %g vs %g", full.BytesPerLaneSweep, one.BytesPerLaneSweep)
	}
}

// TestShardedEnsembleTrafficRejectsIndivisible: a shard narrower than one
// 8-column random group must panic (the engine reports the same condition as
// an error).
func TestShardedEnsembleTrafficRejectsIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible decomposition")
		}
	}()
	ShardedEnsembleTraffic(ShardedEnsembleSpec{Rows: 64, Cols: 64, GridR: 1, GridC: 16, Lanes: 8},
		interconnect.DefaultLinkParams())
}
