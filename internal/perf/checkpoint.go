package perf

import "fmt"

// Checkpoint-traffic model: the cost of the periodic state dumps the
// simulation service (internal/service) performs through ising.Snapshotter.
// It sits next to ShardTraffic and ExchangeTraffic as the third traffic
// model — halo bytes cross the interconnect every sweep, energy messages
// cross it every swap round, and snapshot bytes leave the accelerator every
// checkpoint interval. Long-running multi-GPU Ising studies (Romero et al.,
// PAPERS.md) treat exactly this periodic-dump pattern as the operating mode.

// snapshotRNGBytes is the serialized generator state of the keyed engines:
// one 8-byte Philox key (rng.KeyBytes). Every registered snapshottable
// engine carries exactly this much RNG state, because the stream position
// lives in the step counter, not in the generator.
const snapshotRNGBytes = 8

// snapshotHeaderBytes is the fixed part of the ising snapshot codec: the
// 8-byte magic, the u16 name length, u32 rows, u32 cols, f64 temperature,
// u64 step, and the two u32 section lengths (RNG, spins). Keep in sync with
// ising.EncodeSnapshot (equality is asserted against real engine snapshots
// by TestCheckpointModelMatchesRealSnapshots).
const snapshotHeaderBytes = 8 + 2 + 4 + 4 + 8 + 8 + 4 + 4

// CheckpointSpec describes the periodic checkpointing of one long-running
// job for traffic modelling.
type CheckpointSpec struct {
	// Rows and Cols are the lattice dimensions.
	Rows, Cols int
	// Backend is the engine's registry name (its length enters the snapshot
	// header).
	Backend string
	// RNGBytes is the serialized generator state (0 = the keyed engines'
	// 8-byte Philox key).
	RNGBytes int
	// Sweeps is the length of the run and Interval the sweeps between
	// checkpoints.
	Sweeps, Interval int
}

// DiskParams is the cost model of the checkpoint sink: sustained write
// bandwidth plus a fixed per-file latency (open, fsync, rename).
type DiskParams struct {
	// BandwidthBytesPerSec is the sustained write bandwidth.
	BandwidthBytesPerSec float64
	// LatencySec is the fixed per-checkpoint overhead.
	LatencySec float64
}

// DefaultDiskParams returns an NVMe-class sink: 2 GB/s sustained writes and
// 100 us of per-file overhead.
func DefaultDiskParams() DiskParams {
	return DiskParams{BandwidthBytesPerSec: 2e9, LatencySec: 100e-6}
}

// CheckpointReport is the modelled checkpoint traffic of one job.
type CheckpointReport struct {
	// SnapshotBytes is the exact encoded size of one ising.Snapshot: header,
	// backend name, RNG state and the bit-packed spins (one bit per site).
	SnapshotBytes int64
	// Count is the number of periodic checkpoints over the run
	// (floor(Sweeps/Interval), excluding a dump at the final sweep — a
	// completed job deletes its checkpoint instead of writing one).
	Count int64
	// TotalBytes is Count * SnapshotBytes.
	TotalBytes int64
	// WriteSec is the modelled wall time of all checkpoint writes under the
	// disk parameters.
	WriteSec float64
	// SweepFraction is the checkpointed state's size relative to the raw
	// spin field (1 bit/spin): how much of one lattice leaves per dump.
	SweepFraction float64
}

// CheckpointTraffic models the checkpoint traffic of a job. It panics on a
// spec the service itself would reject.
func CheckpointTraffic(s CheckpointSpec, disk DiskParams) CheckpointReport {
	if s.Rows <= 0 || s.Cols <= 0 || s.Sweeps < 0 || s.Interval <= 0 {
		panic(fmt.Sprintf("perf: invalid checkpoint spec %+v", s))
	}
	rngBytes := s.RNGBytes
	if rngBytes == 0 {
		rngBytes = snapshotRNGBytes
	}
	spinBytes := int64((s.Rows*s.Cols + 7) / 8)
	rep := CheckpointReport{
		SnapshotBytes: int64(snapshotHeaderBytes+len(s.Backend)+rngBytes) + spinBytes,
	}
	// A checkpoint lands at every multiple of Interval strictly before the
	// end of the run (the final state becomes the result, not a checkpoint).
	rep.Count = int64(s.Sweeps / s.Interval)
	if s.Sweeps%s.Interval == 0 && rep.Count > 0 {
		rep.Count--
	}
	rep.TotalBytes = rep.Count * rep.SnapshotBytes
	if disk.BandwidthBytesPerSec > 0 {
		rep.WriteSec = float64(rep.TotalBytes)/disk.BandwidthBytesPerSec + float64(rep.Count)*disk.LatencySec
	}
	if spinBytes > 0 {
		rep.SweepFraction = float64(rep.SnapshotBytes) / float64(spinBytes)
	}
	return rep
}
