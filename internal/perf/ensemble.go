package perf

import "fmt"

// EnsembleSpec describes a lane-packed replica ensemble
// (internal/ising/ensemble) for throughput and memory modelling: Lanes
// independent Rows x Cols chains, one bit-lane per chain, with either
// per-lane randoms (the exact mode, one 32-bit Philox word per lane per site
// update) or class-shared randoms (Shared, two words per site update shared
// by every lane — the Block/Virnau/Preis trick).
type EnsembleSpec struct {
	// Rows and Cols are the per-lane lattice dimensions.
	Rows, Cols int
	// Lanes is the number of packed replicas (1..64).
	Lanes int
	// Shared selects the class-shared random mode.
	Shared bool
}

// EnsembleReport is the modelled footprint and random-stream cost of a
// lane-packed ensemble against the same replicas run as separate multispin
// chains. The byte counts are exact — the packed engine's Footprint method
// reproduces PackedBytes (asserted by test) — and the random-word counts
// follow from the engines' documented draw schedules, so the report reads
// like ShardTraffic/ExchangeTraffic but for the ensemble axis: what opening
// the batch dimension costs (memory) and saves (random generation, the hot
// loop's dominant term).
type EnsembleReport struct {
	// PackedBytes is the lattice state of the packed engine: one 64-lane
	// uint64 word per site, whatever the active lane count.
	PackedBytes int64
	// SeparateBytes is the same replicas as separate multispin chains: one
	// bit per spin per chain.
	SeparateBytes int64
	// RandomWords is the 32-bit Philox words the packed engine consumes per
	// whole-lattice sweep of all lanes: Lanes words per site in exact mode
	// (one per lane), 2 per site in shared mode (one per ΔE class).
	RandomWords int64
	// SeparateRandomWords is what Lanes separate per-site multispin chains
	// consume per sweep (one word per site per chain).
	SeparateRandomWords int64
	// RNGSavings is SeparateRandomWords / RandomWords — 1 in exact mode,
	// Lanes/2 in shared mode.
	RNGSavings float64
}

// EnsembleFootprint models a lane-packed ensemble. It panics on a spec the
// engine itself would reject.
func EnsembleFootprint(s EnsembleSpec) EnsembleReport {
	if s.Rows <= 0 || s.Cols <= 0 || s.Lanes < 1 || s.Lanes > 64 {
		panic(fmt.Sprintf("perf: invalid ensemble spec %+v", s))
	}
	n := int64(s.Rows) * int64(s.Cols)
	rep := EnsembleReport{
		PackedBytes:         n * 8,
		SeparateBytes:       int64(s.Lanes) * ((n + 7) / 8),
		SeparateRandomWords: int64(s.Lanes) * n,
	}
	if s.Shared {
		rep.RandomWords = 2 * n
	} else {
		rep.RandomWords = int64(s.Lanes) * n
	}
	rep.RNGSavings = float64(rep.SeparateRandomWords) / float64(rep.RandomWords)
	return rep
}
