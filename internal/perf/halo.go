package perf

import (
	"fmt"

	"tpuising/internal/interconnect"
)

// ShardSpec describes the host sharded-multispin decomposition (see
// internal/ising/sharded) for interconnect-traffic modelling: a Rows x Cols
// global lattice split into a GridR x GridC grid of shards, one per mesh
// core, exchanging bit-packed halos each checkerboard half-sweep.
type ShardSpec struct {
	// Rows and Cols are the global lattice dimensions.
	Rows, Cols int
	// GridR and GridC are the shard grid dimensions.
	GridR, GridC int
}

// ShardTrafficReport is the modelled interconnect traffic of one sweep of the
// sharded multispin engine. The byte counts are exact mirrors of what the
// engine's halo exchanges move through the fabric (the engine's measured
// Counts().CommBytes reproduces TotalBytes), and the permute time applies the
// same link cost model that prices the paper's collective-permute column.
type ShardTrafficReport struct {
	// RowHaloBytes is the payload of one packed row-halo message: the shard's
	// boundary row at 1 bit per spin (shard cols / 8).
	RowHaloBytes int64
	// ColHaloBytes is the payload of one packed column-halo message: one
	// boundary spin per shard row, packed 64 per word.
	ColHaloBytes int64
	// RowLinkBytes is the traffic crossing one vertical (north-south) link
	// per sweep, both directions: two row-halo messages each way.
	RowLinkBytes int64
	// ColLinkBytes is the traffic crossing one horizontal (east-west) link
	// per sweep, both directions.
	ColLinkBytes int64
	// TotalBytes is the pod-wide bytes moved per sweep (what the engine's
	// comm counters accumulate).
	TotalBytes int64
	// Events is the pod-wide number of collective operations per sweep
	// (eight per core: four halos, two colours).
	Events int64
	// PermuteSec is the modelled wall time of one sweep's eight lockstep
	// collective permutes under the given link parameters.
	PermuteSec float64
}

// ShardTraffic models the per-sweep halo-exchange traffic of the sharded
// multispin engine on a GridC x GridR torus mesh. It panics if the lattice
// does not decompose over the grid (the engine itself rejects such configs
// with an error).
func ShardTraffic(s ShardSpec, link interconnect.LinkParams) ShardTrafficReport {
	if s.GridR <= 0 || s.GridC <= 0 || s.Rows <= 0 || s.Cols <= 0 {
		panic(fmt.Sprintf("perf: invalid shard spec %+v", s))
	}
	if s.Rows%s.GridR != 0 || s.Cols%(s.GridC*64) != 0 {
		panic(fmt.Sprintf("perf: %dx%d lattice does not decompose over a %dx%d shard grid",
			s.Rows, s.Cols, s.GridR, s.GridC))
	}
	shardRows := s.Rows / s.GridR
	shardWords := s.Cols / 64 / s.GridC
	colWords := (shardRows + 63) / 64
	cores := int64(s.GridR * s.GridC)

	rep := ShardTrafficReport{
		RowHaloBytes: int64(shardWords) * 8,
		ColHaloBytes: int64(colWords) * 8,
	}
	// Per half-sweep each core sends one row halo each way (north, south) and
	// one column halo each way (east, west); a sweep is two half-sweeps.
	rep.RowLinkBytes = 4 * rep.RowHaloBytes
	rep.ColLinkBytes = 4 * rep.ColHaloBytes
	rep.TotalBytes = cores * (4*rep.RowHaloBytes + 4*rep.ColHaloBytes)
	rep.Events = cores * 8

	mesh := interconnect.NewMesh(s.GridC, s.GridR)
	mesh.Link = link
	for _, x := range []struct {
		dx, dy int
		bytes  int64
	}{
		{0, 1, rep.RowHaloBytes}, {0, -1, rep.RowHaloBytes},
		{-1, 0, rep.ColHaloBytes}, {1, 0, rep.ColHaloBytes},
	} {
		sec, _ := mesh.PermuteCost(mesh.ShiftPairs(x.dx, x.dy), x.bytes)
		rep.PermuteSec += 2 * sec // two colour updates per sweep
	}
	return rep
}
