package perf

import (
	"fmt"

	"tpuising/internal/interconnect"
)

// EnergyMessageBytes is the payload of one replica-exchange message: the
// extensive (total) energy of one replica as a float64.
const EnergyMessageBytes = 8

// ExchangeSpec describes a parallel-tempering run (see internal/tempering)
// for swap-traffic modelling: Replicas temperature replicas attempting
// Metropolis swaps between adjacent pairs every swap round, with the pairing
// alternating between even pairs ((0,1),(2,3),...) on even rounds and odd
// pairs ((1,2),(3,4),...) on odd rounds, starting from round 0.
type ExchangeSpec struct {
	// Replicas is the number of temperature replicas (>= 2).
	Replicas int
	// Rounds is the number of swap rounds, starting with the even pairing.
	Rounds int
}

// ExchangeTrafficReport is the modelled interconnect traffic of the swap
// phases of a parallel-tempering run. The counts are exact mirrors of what
// the tempering orchestrator accumulates in its swap counters (its
// SwapCounts().CommBytes reproduces TotalBytes), and the exchange time
// applies the same link cost model that prices the paper's
// collective-permute column. Between swap rounds no replica data crosses the
// fabric at all: an accepted swap re-labels the two replicas' temperatures
// in place instead of moving lattice configurations, so the entire exchange
// layer costs two tiny energy messages per attempted pair, independent of
// lattice size.
type ExchangeTrafficReport struct {
	// PairBytes is the traffic of one attempted pair swap: each replica sends
	// its 8-byte total energy to the other (the accept/reject decision is a
	// pure function of the two energies and the shared pair/round-keyed
	// random, so both sides reach it without further messages).
	PairBytes int64
	// EvenPairs and OddPairs are the attempted pairs per even / odd round.
	EvenPairs, OddPairs int64
	// Attempts is the total attempted pair swaps over Rounds rounds.
	Attempts int64
	// TotalBytes is the total bytes moved by all swap phases (what the
	// orchestrator's swap comm counters accumulate).
	TotalBytes int64
	// Events is the total messages (two per attempted pair).
	Events int64
	// Hops is the total link hops (adjacent replicas are one hop apart).
	Hops int64
	// ExchangeSec is the modelled wall time of all swap phases: each round is
	// one lockstep exchange of the active pairs' energy messages on a
	// Replicas x 1 chain under the given link parameters.
	ExchangeSec float64
}

// ExchangeTraffic models the swap traffic of a parallel-tempering run. It
// panics on a spec the tempering orchestrator itself would reject.
func ExchangeTraffic(s ExchangeSpec, link interconnect.LinkParams) ExchangeTrafficReport {
	if s.Replicas < 2 || s.Rounds < 0 {
		panic(fmt.Sprintf("perf: invalid exchange spec %+v", s))
	}
	rep := ExchangeTrafficReport{
		PairBytes: 2 * EnergyMessageBytes,
		EvenPairs: int64(s.Replicas / 2),
		OddPairs:  int64((s.Replicas - 1) / 2),
	}
	evenRounds := int64((s.Rounds + 1) / 2)
	oddRounds := int64(s.Rounds / 2)
	rep.Attempts = evenRounds*rep.EvenPairs + oddRounds*rep.OddPairs
	rep.TotalBytes = rep.Attempts * rep.PairBytes
	rep.Events = 2 * rep.Attempts
	rep.Hops = 2 * rep.Attempts

	// Wall time: all active pairs of a round exchange concurrently, so one
	// round costs one lockstep permute of an 8-byte message on the replica
	// chain (mapped onto a Replicas x 1 mesh).
	mesh := interconnect.NewMesh(s.Replicas, 1)
	mesh.Link = link
	for _, n := range []struct {
		rounds int64
		pairs  int64
		parity int
	}{{evenRounds, rep.EvenPairs, 0}, {oddRounds, rep.OddPairs, 1}} {
		if n.rounds == 0 || n.pairs == 0 {
			continue
		}
		sec, _ := mesh.PermuteCost(exchangePairs(s.Replicas, n.parity), EnergyMessageBytes)
		rep.ExchangeSec += float64(n.rounds) * sec
	}
	return rep
}

// exchangePairs returns the source->destination pairs of one swap round's
// energy exchange: both directions of every active adjacent pair.
func exchangePairs(replicas, parity int) [][2]int {
	var pairs [][2]int
	for t := parity; t+1 < replicas; t += 2 {
		pairs = append(pairs, [2]int{t, t + 1}, [2]int{t + 1, t})
	}
	return pairs
}
