package perf_test

import (
	"testing"

	"tpuising/internal/ising/ensemble"
	"tpuising/internal/perf"
)

// TestEnsembleFootprintMatchesEngine: the model's packed-state bytes are the
// real engine's allocation, for several lattice sizes and lane counts — the
// same model==reality contract the checkpoint-traffic model keeps with the
// snapshot codec.
func TestEnsembleFootprintMatchesEngine(t *testing.T) {
	for _, tc := range []struct{ rows, cols, lanes int }{
		{8, 64, 1}, {8, 64, 64}, {16, 128, 7},
	} {
		e, err := ensemble.New(ensemble.Config{
			Rows: tc.rows, Cols: tc.cols, Lanes: tc.lanes, Temperature: 2.5, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := perf.EnsembleFootprint(perf.EnsembleSpec{Rows: tc.rows, Cols: tc.cols, Lanes: tc.lanes})
		if rep.PackedBytes != e.Footprint() {
			t.Errorf("%dx%d x%d: model PackedBytes %d, engine Footprint %d",
				tc.rows, tc.cols, tc.lanes, rep.PackedBytes, e.Footprint())
		}
	}
}

// TestEnsembleFootprintArithmetic pins the draw-schedule arithmetic: exact
// mode saves nothing (one word per lane per site either way), shared mode
// consumes two words per site whatever the lane count.
func TestEnsembleFootprintArithmetic(t *testing.T) {
	exact := perf.EnsembleFootprint(perf.EnsembleSpec{Rows: 256, Cols: 256, Lanes: 64})
	if exact.RandomWords != exact.SeparateRandomWords || exact.RNGSavings != 1 {
		t.Errorf("exact mode: %+v, want parity with separate chains", exact)
	}
	if exact.SeparateBytes != exact.PackedBytes {
		t.Errorf("at full width the packed words hold exactly the 64 separate chains' bits: %+v", exact)
	}
	partial := perf.EnsembleFootprint(perf.EnsembleSpec{Rows: 256, Cols: 256, Lanes: 8})
	if partial.PackedBytes != 8*partial.SeparateBytes {
		t.Errorf("an 8-lane ensemble still pays full 64-lane words: %+v", partial)
	}
	shared := perf.EnsembleFootprint(perf.EnsembleSpec{Rows: 256, Cols: 256, Lanes: 64, Shared: true})
	if shared.RandomWords != 2*256*256 {
		t.Errorf("shared mode draws two words per site: %+v", shared)
	}
	if shared.RNGSavings != 32 {
		t.Errorf("shared mode at 64 lanes saves 32x on randoms, got %v", shared.RNGSavings)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	perf.EnsembleFootprint(perf.EnsembleSpec{Rows: 8, Cols: 64, Lanes: 65})
}
