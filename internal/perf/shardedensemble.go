package perf

import (
	"fmt"

	"tpuising/internal/interconnect"
)

// ShardedEnsembleSpec describes the composed batched×sharded engine
// (internal/ising/shardedensemble) for traffic and footprint modelling: a
// Rows x Cols per-lane lattice split into a GridR x GridC grid of shards,
// each advancing Lanes lane-packed replicas and exchanging lane-packed halo
// words each checkerboard half-sweep.
type ShardedEnsembleSpec struct {
	// Rows and Cols are the per-lane lattice dimensions.
	Rows, Cols int
	// GridR and GridC are the shard grid dimensions.
	GridR, GridC int
	// Lanes is the number of packed replicas (1..64).
	Lanes int
}

// ShardedEnsembleTrafficReport is the modelled per-sweep interconnect traffic
// of the composed engine. The byte counts are exact mirrors of what the
// engine's halo exchanges move through the fabric (the engine's measured
// Counts().CommBytes reproduces TotalBytes per sweep, asserted by test).
// Because every halo word carries all 64 bit-lanes, the traffic is the same
// whatever the active lane count — which is the composition's headline
// amortisation: per replica, halo bytes shrink by the lane count.
type ShardedEnsembleTrafficReport struct {
	// RowHaloBytes is the payload of one boundary-row message: one lane-packed
	// word (8 bytes) per site of the shard's boundary row.
	RowHaloBytes int64
	// ColHaloBytes is the payload of one boundary-column message: one
	// lane-packed word per shard row.
	ColHaloBytes int64
	// RowLinkBytes is the traffic crossing one vertical (north-south) link per
	// sweep, both directions; ColLinkBytes the horizontal analogue.
	RowLinkBytes int64
	ColLinkBytes int64
	// TotalBytes is the pod-wide bytes moved per sweep (what the engine's comm
	// counters accumulate).
	TotalBytes int64
	// Events is the pod-wide number of collective operations per sweep (eight
	// per core: four halos, two colours).
	Events int64
	// BytesPerLaneSweep is TotalBytes divided by the active lanes: the halo
	// cost of advancing one replica by one sweep, the number the batch axis
	// amortises.
	BytesPerLaneSweep float64
	// PackedBytes is the lane-packed lattice state across all shards (one
	// 64-lane word per site; the engine's Footprint).
	PackedBytes int64
	// PermuteSec is the modelled wall time of one sweep's eight lockstep
	// collective permutes under the given link parameters.
	PermuteSec float64
}

// ShardedEnsembleTraffic models the per-sweep halo traffic of the composed
// batched×sharded engine on a GridC x GridR torus mesh. It panics if the
// lattice does not decompose over the grid into whole 8-column random groups
// (the engine itself rejects such configs with an error).
func ShardedEnsembleTraffic(s ShardedEnsembleSpec, link interconnect.LinkParams) ShardedEnsembleTrafficReport {
	if s.GridR <= 0 || s.GridC <= 0 || s.Rows <= 0 || s.Cols <= 0 || s.Lanes < 1 || s.Lanes > 64 {
		panic(fmt.Sprintf("perf: invalid sharded-ensemble spec %+v", s))
	}
	if s.Rows%s.GridR != 0 || s.Cols%(s.GridC*8) != 0 {
		panic(fmt.Sprintf("perf: %dx%d lattice does not decompose over a %dx%d shard grid",
			s.Rows, s.Cols, s.GridR, s.GridC))
	}
	shardRows := s.Rows / s.GridR
	shardCols := s.Cols / s.GridC
	cores := int64(s.GridR * s.GridC)

	rep := ShardedEnsembleTrafficReport{
		RowHaloBytes: int64(shardCols) * 8,
		ColHaloBytes: int64(shardRows) * 8,
		PackedBytes:  int64(s.Rows) * int64(s.Cols) * 8,
	}
	// Per half-sweep each core sends one boundary row each way (north, south)
	// and one boundary column each way (east, west); a sweep is two
	// half-sweeps.
	rep.RowLinkBytes = 4 * rep.RowHaloBytes
	rep.ColLinkBytes = 4 * rep.ColHaloBytes
	rep.TotalBytes = cores * (4*rep.RowHaloBytes + 4*rep.ColHaloBytes)
	rep.Events = cores * 8
	rep.BytesPerLaneSweep = float64(rep.TotalBytes) / float64(s.Lanes)

	mesh := interconnect.NewMesh(s.GridC, s.GridR)
	mesh.Link = link
	for _, x := range []struct {
		dx, dy int
		bytes  int64
	}{
		{0, 1, rep.RowHaloBytes}, {0, -1, rep.RowHaloBytes},
		{-1, 0, rep.ColHaloBytes}, {1, 0, rep.ColHaloBytes},
	} {
		sec, _ := mesh.PermuteCost(mesh.ShiftPairs(x.dx, x.dy), x.bytes)
		rep.PermuteSec += 2 * sec // two colour updates per sweep
	}
	return rep
}
