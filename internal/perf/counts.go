package perf

import (
	"fmt"

	"tpuising/internal/device/hbm"
	"tpuising/internal/device/metrics"
	"tpuising/internal/tensor"
)

// Algorithm mirrors the update-kernel choice of internal/ising/tpu without
// importing it (perf is a leaf package used by the harness and the tests of
// both).
type Algorithm int

const (
	// AlgOptim is the paper's Algorithm 2 (compact colour planes).
	AlgOptim Algorithm = iota
	// AlgNaive is the paper's Algorithm 1 (full lattice with mask).
	AlgNaive
	// AlgConv is the appendix convolution-based implementation.
	AlgConv
)

// String names the algorithm as used in the benchmark tables.
func (a Algorithm) String() string {
	switch a {
	case AlgOptim:
		return "optim"
	case AlgNaive:
		return "naive"
	case AlgConv:
		return "conv"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// SweepSpec describes one core's share of a checkerboard sweep for the
// purpose of estimating its device work without materialising any tensors.
// This is the "estimate mode" that lets the harness regenerate the paper's
// pod-scale tables (up to 2048 cores and (128x28672)^2 lattices) on a laptop.
type SweepSpec struct {
	// Rows and Cols are the per-core lattice dimensions.
	Rows, Cols int
	// Tile is the MXU tile edge (128 on hardware).
	Tile int
	// DType is the storage precision.
	DType tensor.DType
	// Algorithm selects the update kernel.
	Algorithm Algorithm
	// Halo selects the distributed boundary environment (collective-permute
	// halo exchange) instead of the single-core torus wrap.
	Halo bool
	// PodX and PodY are the core-grid dimensions when Halo is set; they only
	// affect the hop count of the exchanges (1 hop unless the axis is
	// degenerate).
	PodX, PodY int
}

func (s SweepSpec) validate() {
	if s.Rows <= 0 || s.Cols <= 0 {
		panic("perf: lattice dimensions must be positive")
	}
	if s.Algorithm != AlgConv {
		if s.Tile <= 0 {
			panic("perf: tile size must be positive")
		}
		div := s.Tile
		if s.Algorithm == AlgOptim {
			div = 2 * s.Tile
		}
		if s.Rows%div != 0 || s.Cols%div != 0 {
			panic(fmt.Sprintf("perf: %dx%d lattice not divisible for %v with tile %d",
				s.Rows, s.Cols, s.Algorithm, s.Tile))
		}
	}
	if s.Halo && (s.PodX <= 0 || s.PodY <= 0) {
		panic("perf: halo estimates need pod dimensions")
	}
}

// tb is a shorthand for the HBM-tiled footprint of a logical shape.
func tb(dtype tensor.DType, shape ...int) int64 { return hbm.TiledBytes(shape, dtype) }

func roundUp(x, to int64) int64 { return (x + to - 1) / to * to }

// EstimateSweepCounts returns the per-core device work of ONE whole-lattice
// sweep (black update + white update), mirroring the exact operation sequence
// of the update kernels in internal/ising/tpu and the accounting rules of the
// TensorCore simulator. The estimator is validated against instrumented
// execution on small shapes (see counts_test.go); at paper scale it is the
// only practical way to obtain the counts.
func EstimateSweepCounts(s SweepSpec) metrics.Counts {
	s.validate()
	var c metrics.Counts
	switch s.Algorithm {
	case AlgOptim:
		c = optimColorCounts(s)
	case AlgNaive:
		c = naiveColorCounts(s)
	case AlgConv:
		c = convColorCounts(s)
	default:
		panic("perf: unknown algorithm")
	}
	// A sweep is two colour updates with identical shape structure.
	return c.Scale(2)
}

// optimColorCounts returns the work of one colour update of Algorithm 2.
func optimColorCounts(s SweepSpec) metrics.Counts {
	var c metrics.Counts
	d := s.DType
	T := s.Tile
	mp, np := int64(s.Rows/(2*T)), int64(s.Cols/(2*T)) // plane grid
	planeElems := int64(s.Rows) * int64(s.Cols) / 4
	tiles := mp * np
	padT := roundUp(int64(T), 128)

	tb4 := tb(d, int(mp), int(np), T, T)   // one compact plane
	tbK := tb(d, T, T)                     // kernel
	tbFlat := tb(d, s.Rows/2, s.Cols/2)    // flat probability tensor
	tbRow := tb(d, int(mp), int(np), 1, T) // row edge
	tbCol := tb(d, int(mp), int(np), T, 1) // column edge

	// --- Random numbers and their tiling (2 planes per colour). -------------
	c.VPUOps += 2 * planeElems * 6 // RandomWeight
	c.HBMBytes += 2 * tbFlat
	c.Ops += 2
	c.FormatBytes += 2 * 2 * tb4 // Tile4D
	c.HBMBytes += 2 * 2 * tb4
	c.Ops += 2

	// --- Nearest-neighbour sums: 2 nn tensors, 2 matmuls + 1 add each. ------
	c.MXUMacs += 4 * tiles * padT * padT * padT
	c.HBMBytes += 4 * (2*tb4 + tbK)
	c.Ops += 4
	c.VPUOps += 2 * planeElems * 1 // the two adds
	c.HBMBytes += 2 * 3 * tb4
	c.Ops += 2

	// --- Boundary compensation: 2 row edges + 2 column edges per colour. ----
	edge := func(edgeTB, mineTB, interiorTB int64, interiorNeeded bool, commElems int64, hops int64) {
		if s.Halo {
			// mine slice + collective permute (+ interior slice + concat).
			c.FormatBytes += 2 * mineTB
			c.HBMBytes += 2 * mineTB
			c.Ops++
			c.CommBytes += commElems * int64(d.Bytes())
			c.CommHops += hops
			c.CommEvents++
			c.Ops++
			if interiorNeeded {
				c.FormatBytes += 2*interiorTB + 2*edgeTB
				c.HBMBytes += 2*interiorTB + 2*edgeTB
				c.Ops += 2
			}
		} else {
			// Slice the opposite boundary, roll it into place.
			c.FormatBytes += 2*edgeTB + 2*edgeTB
			c.HBMBytes += 2*edgeTB + 2*edgeTB
			c.Ops += 2
		}
		// AddSlice of the edge into nn.
		c.FormatBytes += 3 * edgeTB
		c.HBMBytes += 3 * edgeTB
		c.Ops++
	}
	hopX, hopY := int64(1), int64(1)
	if s.Halo && s.PodX == 1 {
		hopX = 0
	}
	if s.Halo && s.PodY == 1 {
		hopY = 0
	}
	tbRowMine := tb(d, 1, int(np), 1, T)
	tbRowInterior := tb(d, int(mp)-1, int(np), 1, T)
	tbColMine := tb(d, int(mp), 1, T, 1)
	tbColInterior := tb(d, int(mp), int(np)-1, T, 1)
	// Column edges (west for nn0, east for nn1): exchanged along the pod X axis.
	for i := 0; i < 2; i++ {
		edge(tbCol, tbColMine, tbColInterior, np > 1, mp*int64(T), hopX)
	}
	// Row edges (north for nn0, south for nn1): exchanged along the pod Y axis.
	for i := 0; i < 2; i++ {
		edge(tbRow, tbRowMine, tbRowInterior, mp > 1, np*int64(T), hopY)
	}

	// --- Acceptance, comparison and flip for the 2 planes. ------------------
	c.VPUOps += 2 * planeElems * 10 // mul, scale, exp(4), less, mul, scale, sub
	c.HBMBytes += 2 * 18 * tb4
	c.Ops += 2 * 7

	return c
}

// naiveColorCounts returns the work of one colour update of Algorithm 1
// (single-core torus environment; the distributed runs of the paper all use
// Algorithm 2).
func naiveColorCounts(s SweepSpec) metrics.Counts {
	var c metrics.Counts
	d := s.DType
	T := s.Tile
	m, n := int64(s.Rows/T), int64(s.Cols/T)
	elems := int64(s.Rows) * int64(s.Cols)
	tiles := m * n
	padT := roundUp(int64(T), 128)

	tbL := tb(d, int(m), int(n), T, T)
	tbK := tb(d, T, T)
	tbFlat := tb(d, s.Rows, s.Cols)
	tbRow := tb(d, int(m), int(n), 1, T)
	tbCol := tb(d, int(m), int(n), T, 1)

	// Random numbers for every site and their tiling.
	c.VPUOps += elems * 6
	c.HBMBytes += tbFlat
	c.Ops++
	c.FormatBytes += 2 * tbL
	c.HBMBytes += 2 * tbL
	c.Ops++

	// Nearest-neighbour sums: 2 matmuls + 1 add.
	c.MXUMacs += 2 * tiles * padT * padT * padT
	c.HBMBytes += 2 * (2*tbL + tbK)
	c.Ops += 2
	c.VPUOps += elems
	c.HBMBytes += 3 * tbL
	c.Ops++

	// Boundary compensation: 2 row edges + 2 column edges (torus).
	for _, e := range []int64{tbRow, tbRow, tbCol, tbCol} {
		c.FormatBytes += 7 * e // slice + roll + add-slice
		c.HBMBytes += 7 * e
		c.Ops += 3
	}

	// Acceptance, mask and flip on the full lattice:
	// mul, scale, exp(4), less, mul(mask), mul, scale, sub.
	c.VPUOps += elems * (1 + 1 + 4 + 1 + 1 + 1 + 1 + 1)
	c.HBMBytes += (3 + 2 + 2 + 3 + 3 + 3 + 2 + 3) * tbL
	c.Ops += 8

	return c
}

// convColorCounts returns the work of one colour update of the appendix
// convolution-based implementation. When Halo is set the halo-exchange work
// is added with the same communication pattern as Algorithm 2 (four edge
// exchanges per colour); this path is model-only, matching how the paper's
// distributed conv results are reproduced.
func convColorCounts(s SweepSpec) metrics.Counts {
	var c metrics.Counts
	d := s.DType
	elems := int64(s.Rows) * int64(s.Cols)
	tbRC := tb(d, s.Rows, s.Cols)

	// Random numbers.
	c.VPUOps += elems * 6
	c.HBMBytes += tbRC
	c.Ops++
	// Convolution (4-tap nearest-neighbour kernel).
	c.MXUMacs += 4 * elems
	c.HBMBytes += 2 * tbRC
	c.Ops++
	// Acceptance, mask and flip: mul, scale, exp(4), less, mul, mul, scale, sub.
	c.VPUOps += elems * (1 + 1 + 4 + 1 + 1 + 1 + 1 + 1)
	c.HBMBytes += (3 + 2 + 2 + 3 + 3 + 3 + 2 + 3) * tbRC
	c.Ops += 8

	if s.Halo {
		hopX, hopY := int64(1), int64(1)
		if s.PodX == 1 {
			hopX = 0
		}
		if s.PodY == 1 {
			hopY = 0
		}
		// Two row-edge and two column-edge exchanges per colour.
		c.CommBytes += 2*int64(s.Cols)*int64(d.Bytes()) + 2*int64(s.Rows)*int64(d.Bytes())
		c.CommHops += 2*hopY + 2*hopX
		c.CommEvents += 4
		c.Ops += 4
	}
	return c
}
