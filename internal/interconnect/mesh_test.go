package interconnect

import (
	"sync"
	"testing"

	"tpuising/internal/tensor"
)

func TestCoordIDRoundTrip(t *testing.T) {
	m := NewMesh(4, 3)
	if m.NumCores() != 12 {
		t.Fatal("NumCores")
	}
	for id := 0; id < m.NumCores(); id++ {
		x, y := m.Coord(id)
		if m.ID(x, y) != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, m.ID(x, y))
		}
	}
	// Torus wrap.
	if m.ID(-1, 0) != m.ID(3, 0) || m.ID(4, 5) != m.ID(0, 2) {
		t.Error("torus wrap wrong")
	}
}

func TestCoordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMesh(2, 2).Coord(4)
}

func TestHopsTorusDistance(t *testing.T) {
	m := NewMesh(8, 8)
	if m.Hops(0, 0) != 0 {
		t.Error("self distance")
	}
	if m.Hops(m.ID(0, 0), m.ID(1, 0)) != 1 {
		t.Error("adjacent distance")
	}
	// Wrap-around is shorter than going the long way.
	if m.Hops(m.ID(0, 0), m.ID(7, 0)) != 1 {
		t.Error("wrap distance")
	}
	if m.Hops(m.ID(0, 0), m.ID(4, 4)) != 8 {
		t.Error("max distance on 8x8 torus should be 8")
	}
	// Symmetry.
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if m.Hops(a, b) != m.Hops(b, a) {
				t.Fatal("hops not symmetric")
			}
		}
	}
}

func TestShiftPairs(t *testing.T) {
	m := NewMesh(3, 2)
	pairs := m.ShiftPairs(1, 0)
	if len(pairs) != 6 {
		t.Fatal("pair count")
	}
	srcSeen := map[int]bool{}
	dstSeen := map[int]bool{}
	for _, p := range pairs {
		if srcSeen[p[0]] || dstSeen[p[1]] {
			t.Fatal("shift must be a permutation")
		}
		srcSeen[p[0]] = true
		dstSeen[p[1]] = true
		// Destination is one step east on the torus.
		x, y := m.Coord(p[0])
		if p[1] != m.ID(x+1, y) {
			t.Fatal("wrong destination")
		}
	}
}

func TestPermuteCostModel(t *testing.T) {
	m := NewMesh(16, 16)
	pairs := m.ShiftPairs(0, 1)
	secSmall, hops := m.PermuteCost(pairs, 1<<10)
	if hops != 1 {
		t.Errorf("shift by one should be 1 hop, got %d", hops)
	}
	secBig, _ := m.PermuteCost(pairs, 1<<30)
	if secBig <= secSmall {
		t.Error("more bytes should cost more")
	}
	// Small messages should be latency dominated: per the paper the largest
	// halo (229 KB) takes well under a millisecond.
	sec, _ := m.PermuteCost(pairs, 229376)
	if sec > 1e-3 {
		t.Errorf("halo exchange cost %v s, expected sub-millisecond", sec)
	}
	// Larger meshes have larger synchronisation cost.
	m2 := NewMesh(32, 32)
	sec2, _ := m2.PermuteCost(m2.ShiftPairs(0, 1), 229376)
	if sec2 <= sec {
		t.Error("bigger pod should have larger collective cost")
	}
}

func TestFabricCollectivePermuteRing(t *testing.T) {
	// Reproduce Figure 5: three cores in a ring exchange their boundaries.
	m := NewMesh(3, 1)
	f := NewFabric(m)
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	results := make([]*tensor.Tensor, 3)
	var wg sync.WaitGroup
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			data := tensor.Full(tensor.Float32, float32(id+1), 2, 2)
			results[id] = f.CollectivePermute(id, data, pairs)
		}(id)
	}
	wg.Wait()
	// Core 1 receives core 0's tensor, core 2 receives core 1's, core 0
	// receives core 2's.
	if results[1].At(0, 0) != 1 || results[2].At(0, 0) != 2 || results[0].At(0, 0) != 3 {
		t.Fatalf("permute results wrong: %v %v %v", results[0].At(0, 0), results[1].At(0, 0), results[2].At(0, 0))
	}
}

func TestFabricCollectivePermuteUntargetedGetsZeros(t *testing.T) {
	m := NewMesh(2, 1)
	f := NewFabric(m)
	// Only core 0 sends, to core 1; core 0 receives nothing.
	pairs := [][2]int{{0, 1}}
	var r0, r1 *tensor.Tensor
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r0 = f.CollectivePermute(0, tensor.Full(tensor.Float32, 5, 2), pairs) }()
	go func() { defer wg.Done(); r1 = f.CollectivePermute(1, tensor.Full(tensor.Float32, 7, 2), pairs) }()
	wg.Wait()
	if r1.At(0) != 5 {
		t.Error("core 1 should receive core 0's data")
	}
	if r0.At(0) != 0 {
		t.Error("untargeted core should receive zeros")
	}
}

func TestFabricPermuteDoesNotAliasSenderData(t *testing.T) {
	m := NewMesh(2, 1)
	f := NewFabric(m)
	pairs := [][2]int{{0, 1}, {1, 0}}
	var r0, r1 *tensor.Tensor
	sent0 := tensor.Full(tensor.Float32, 1, 4)
	sent1 := tensor.Full(tensor.Float32, 2, 4)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r0 = f.CollectivePermute(0, sent0, pairs) }()
	go func() { defer wg.Done(); r1 = f.CollectivePermute(1, sent1, pairs) }()
	wg.Wait()
	// Mutating the sender's tensor afterwards must not change the receiver's
	// copy (the fabric clones on send).
	sent0.Set(99, 0)
	if r1.At(0) != 1 {
		t.Error("received tensor aliases sender storage")
	}
	if r0.At(0) != 2 {
		t.Error("wrong exchange")
	}
}

func TestAllReduceSumAndBarrier(t *testing.T) {
	m := NewMesh(4, 2)
	f := NewFabric(m)
	n := m.NumCores()
	results := make([]float64, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = f.AllReduceSum(id, float64(id))
		}(id)
	}
	wg.Wait()
	want := float64(n*(n-1)) / 2
	for id, r := range results {
		if r != want {
			t.Fatalf("core %d got %v, want %v", id, r, want)
		}
	}
}

func TestAllReduceRepeatedRounds(t *testing.T) {
	// The barrier must be reusable across many rounds without deadlock.
	m := NewMesh(2, 2)
	f := NewFabric(m)
	n := m.NumCores()
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got := f.AllReduceSum(id, float64(r))
				if got != float64(r*n) {
					errs <- "wrong sum"
					return
				}
				f.Barrier()
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestNewMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMesh(0, 4)
}

func TestDefaultLinkParamsSane(t *testing.T) {
	l := DefaultLinkParams()
	// The bandwidth is the *effective* small-message edge bandwidth calibrated
	// against the paper's Table 4, well below the raw ICI link rate but still
	// in the multi-GB/s range.
	if l.BandwidthBytesPerSec < 1e9 {
		t.Error("effective edge bandwidth implausibly low")
	}
	if l.SyncLatencySec <= 0 || l.HopLatencySec <= 0 || l.SyncPerSqrtCoreSec <= 0 {
		t.Error("latencies must be positive")
	}
	// The synchronisation overhead must dominate the data term for a typical
	// halo edge (a few hundred kilobytes), which is what the paper observes.
	edgeBytes := 229376.0
	if edgeBytes/l.BandwidthBytesPerSec > l.SyncLatencySec+10*l.SyncPerSqrtCoreSec {
		t.Error("halo exchange should be latency/synchronisation bound, not bandwidth bound")
	}
}
