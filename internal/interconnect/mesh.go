package interconnect

import (
	"fmt"
	"sync"

	"tpuising/internal/tensor"
)

// LinkParams captures the cost model of the inter-chip network.
type LinkParams struct {
	// BandwidthBytesPerSec is the per-link bandwidth.
	BandwidthBytesPerSec float64
	// HopLatencySec is the per-hop propagation + switching latency.
	HopLatencySec float64
	// SyncLatencySec is the fixed software/synchronisation overhead of one
	// collective operation (all participating cores block until their sends
	// and receives complete).
	SyncLatencySec float64
	// SyncPerSqrtCoreSec models the growth of the lockstep synchronisation
	// cost with the width of the core grid (the paper observes the
	// collective-permute time growing slowly with core count even though the
	// exchanged data is tiny).
	SyncPerSqrtCoreSec float64
}

// DefaultLinkParams returns the TPU v3 pod interconnect parameters used by
// the performance model. They are calibrated against the collective-permute
// times of the paper's Table 4 (see internal/perf): the bandwidth is the
// *effective* small-message bandwidth of one halo edge, well below the raw
// ICI link rate, because the paper observes the exchange time is dominated by
// synchronisation and latency rather than data propagation.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		BandwidthBytesPerSec: 7e9,     // effective small-message edge bandwidth
		HopLatencySec:        1e-6,    // per-hop latency
		SyncLatencySec:       21e-6,   // fixed collective overhead
		SyncPerSqrtCoreSec:   2.06e-6, // growth with grid width
	}
}

// Mesh is a 2-D toroidal mesh of cores, NX x NY, with two cores per chip
// mapped onto consecutive IDs (the paper's "n x n x 2" topologies).
type Mesh struct {
	NX, NY int
	Link   LinkParams
}

// NewMesh returns a toroidal mesh with the given dimensions.
func NewMesh(nx, ny int) *Mesh {
	if nx <= 0 || ny <= 0 {
		panic("interconnect: mesh dimensions must be positive")
	}
	return &Mesh{NX: nx, NY: ny, Link: DefaultLinkParams()}
}

// NumCores returns the number of cores in the mesh.
func (m *Mesh) NumCores() int { return m.NX * m.NY }

// Coord returns the (x, y) grid coordinate of a core ID (row-major).
func (m *Mesh) Coord(id int) (x, y int) {
	if id < 0 || id >= m.NumCores() {
		panic(fmt.Sprintf("interconnect: core id %d out of range", id))
	}
	return id % m.NX, id / m.NX
}

// ID returns the core ID at grid coordinate (x, y), wrapping around the
// torus.
func (m *Mesh) ID(x, y int) int {
	x = ((x % m.NX) + m.NX) % m.NX
	y = ((y % m.NY) + m.NY) % m.NY
	return y*m.NX + x
}

// Hops returns the minimal number of torus hops between two cores.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	hx := absInt(sx - dx)
	if m.NX-hx < hx {
		hx = m.NX - hx
	}
	hy := absInt(sy - dy)
	if m.NY-hy < hy {
		hy = m.NY - hy
	}
	return hx + hy
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ShiftPairs returns the global source->destination pairs that shift data by
// (dx, dy) on the torus: every core sends to the core at (+dx, +dy). This is
// the pattern used for halo exchange (Figure 5 of the paper).
func (m *Mesh) ShiftPairs(dx, dy int) [][2]int {
	pairs := make([][2]int, 0, m.NumCores())
	for id := 0; id < m.NumCores(); id++ {
		x, y := m.Coord(id)
		pairs = append(pairs, [2]int{id, m.ID(x+dx, y+dy)})
	}
	return pairs
}

// PermuteCost returns the modelled wall time and the maximum hop count of one
// CollectivePermute in which every core exchanges `bytes` bytes according to
// pairs. All cores block until the slowest transfer completes, so the cost is
// the maximum over the pairs plus the synchronisation overhead.
func (m *Mesh) PermuteCost(pairs [][2]int, bytes int64) (seconds float64, maxHops int) {
	for _, p := range pairs {
		if h := m.Hops(p[0], p[1]); h > maxHops {
			maxHops = h
		}
	}
	l := m.Link
	seconds = l.SyncLatencySec +
		l.SyncPerSqrtCoreSec*sqrtf(float64(m.NumCores())) +
		float64(maxHops)*l.HopLatencySec +
		float64(bytes)/l.BandwidthBytesPerSec
	return seconds, maxHops
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iteration is plenty here and avoids importing math for one call.
	z := x
	for i := 0; i < 20; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// Fabric is the runtime data plane of the mesh: it actually moves tensors
// (and packed bit words, for the host multispin engines) between the
// goroutines that model the cores.
type Fabric struct {
	mesh      *Mesh
	boxes     []chan *tensor.Tensor
	wordBoxes []chan []uint64

	mu        sync.Mutex
	reduceBuf []float64
	barrier   *cyclicBarrier
}

// NewFabric returns a data plane for the given mesh.
func NewFabric(m *Mesh) *Fabric {
	n := m.NumCores()
	f := &Fabric{
		mesh:      m,
		boxes:     make([]chan *tensor.Tensor, n),
		wordBoxes: make([]chan []uint64, n),
		reduceBuf: make([]float64, n),
		barrier:   newCyclicBarrier(n),
	}
	for i := range f.boxes {
		f.boxes[i] = make(chan *tensor.Tensor, 1)
		f.wordBoxes[i] = make(chan []uint64, 1)
	}
	return f
}

// Mesh returns the topology the fabric runs on.
func (f *Fabric) Mesh() *Mesh { return f.mesh }

// CollectivePermute is called by every core (from its own goroutine) with the
// same globally-identical pairs specification, mirroring the semantics of
// tpu_ops.collective_permute: core `self` contributes `data`, and receives
// the tensor sent by the core that lists `self` as its destination (or a
// zero tensor of the same shape if no core targets it). The call blocks
// until every core's sends and receives have completed — the collective is a
// lockstep phase, exactly as on the real pod, so back-to-back collectives
// with different communication patterns cannot interleave their deliveries.
func (f *Fabric) CollectivePermute(self int, data *tensor.Tensor, pairs [][2]int) *tensor.Tensor {
	// Send phase: deliver our tensor to every destination we appear as a
	// source for (XLA permits a source to appear at most once; we allow it
	// and take the first).
	for _, p := range pairs {
		if p[0] == self {
			f.boxes[p[1]] <- data.Clone()
		}
	}
	// Receive phase: if anyone targets us, take the delivery; otherwise the
	// result is zeros.
	var out *tensor.Tensor
	for _, p := range pairs {
		if p[1] == self {
			out = <-f.boxes[self]
			break
		}
	}
	if out == nil {
		out = tensor.New(data.DType(), data.Shape()...)
	}
	// Closing barrier: no core may start the next collective (and reuse the
	// mailboxes) until every core has drained its delivery from this one.
	f.barrier.Await()
	return out
}

// CollectivePermuteWords is CollectivePermute for packed bit payloads: the
// bit-packed multispin engines exchange their halo rows and columns as raw
// uint64 words (64 spins per word), which a float tensor cannot carry
// exactly. Semantics are identical to CollectivePermute — every core calls it
// with the same pairs, contributes data, receives the payload of the core
// that lists it as destination (or a zero slice of the same length), and no
// core leaves until all deliveries of the collective have drained.
func (f *Fabric) CollectivePermuteWords(self int, data []uint64, pairs [][2]int) []uint64 {
	for _, p := range pairs {
		if p[0] == self {
			f.wordBoxes[p[1]] <- append([]uint64(nil), data...)
		}
	}
	var out []uint64
	for _, p := range pairs {
		if p[1] == self {
			out = <-f.wordBoxes[self]
			break
		}
	}
	if out == nil {
		out = make([]uint64, len(data))
	}
	f.barrier.Await()
	return out
}

// AllReduceSum performs a global sum of one float64 per core and returns the
// total to every caller. It doubles as a barrier.
func (f *Fabric) AllReduceSum(self int, v float64) float64 {
	f.mu.Lock()
	f.reduceBuf[self] = v
	f.mu.Unlock()
	f.barrier.Await()
	var total float64
	for _, x := range f.reduceBuf {
		total += x
	}
	f.barrier.Await()
	return total
}

// Barrier blocks until every core has reached it.
func (f *Fabric) Barrier() { f.barrier.Await() }

// cyclicBarrier is a reusable barrier for a fixed number of participants.
type cyclicBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until n participants have called it, then releases them all.
func (b *cyclicBarrier) Await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
