// Package interconnect models the TPU Pod's dedicated 2-D toroidal mesh
// network between TensorCores and implements the XLA communication
// primitives the paper relies on: CollectivePermute (used for halo exchange
// of sub-lattice boundaries) and all-reduce (used for global observables).
//
// The data movement is real (goroutine-to-goroutine through channels, so the
// distributed simulator genuinely exchanges boundary tensors), while the
// *time* of each collective comes from a per-hop latency + link bandwidth
// cost model, which is what reproduces the "collective permute" column of
// Tables 3 and 4.
//
// The fabric carries two payload kinds: tensors (the TPU simulator's halo
// planes) and raw bit-packed uint64 words (the sharded multispin engine's
// halos, which a float tensor cannot carry exactly); both share the same
// lockstep collective semantics and the same cost model.
package interconnect
