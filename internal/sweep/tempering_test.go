package sweep

import (
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/tempering"
)

// TestRunTemperingPreservesGridOrder passes a descending grid and checks the
// points come back in the caller's order while the ladder itself ran
// ascending.
func TestRunTemperingPreservesGridOrder(t *testing.T) {
	temps := []float64{3.5, 2.6, 1.8} // deliberately descending
	points, rep := RunTempering(Config{
		Temperatures: temps,
		BurnIn:       10,
		Samples:      20,
	}, 2, 1, func(temperature float64) ising.Backend {
		b, err := backend.New("multispin", backend.Config{
			Rows: 16, Cols: 64, Temperature: temperature, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
	if len(points) != len(temps) {
		t.Fatalf("got %d points, want %d", len(points), len(temps))
	}
	for i, p := range points {
		if p.Temperature != temps[i] {
			t.Errorf("point %d at T=%g, want the caller's grid order %g", i, p.Temperature, temps[i])
		}
		if p.Samples != 20 {
			t.Errorf("point %d has %d samples, want 20", i, p.Samples)
		}
	}
	// Physics: far below Tc the chain magnetises, far above it does not.
	if points[2].AbsMagnetization < 0.9 {
		t.Errorf("|m| at T=1.8 is %.4f, want > 0.9", points[2].AbsMagnetization)
	}
	if points[0].AbsMagnetization > 0.4 {
		t.Errorf("|m| at T=3.5 is %.4f, want < 0.4", points[0].AbsMagnetization)
	}
	// The report's rows are in ladder (ascending) order.
	if rep.Replicas[0].Temperature != 1.8 || rep.Replicas[2].Temperature != 3.5 {
		t.Errorf("report ladder order wrong: %+v", rep.Replicas)
	}
	if rep.Samples != 20 || rep.SwapRounds == 0 {
		t.Errorf("report totals wrong: samples %d, rounds %d", rep.Samples, rep.SwapRounds)
	}
}

// TestRunTemperingMatchesRunAwayFromTc: far from the critical point replica
// exchange must agree with independent chains within error bars (the swap
// move preserves each temperature's stationary distribution).
func TestRunTemperingMatchesRunAwayFromTc(t *testing.T) {
	temps := []float64{1.9, 3.4}
	newBackend := func(temperature float64) ising.Backend {
		b, err := backend.New("multispin", backend.Config{
			Rows: 32, Cols: 64, Temperature: temperature, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cfg := Config{Temperatures: temps, BurnIn: 60, Samples: 120}
	indep := Run(cfg, func(temperature float64) Chain { return newBackend(temperature) })
	tempered, _ := RunTempering(cfg, 3, 5, newBackend)
	for i := range temps {
		diff := indep[i].AbsMagnetization - tempered[i].AbsMagnetization
		if diff < 0 {
			diff = -diff
		}
		tol := 5*(indep[i].AbsMagnetizationErr+tempered[i].AbsMagnetizationErr) + 0.02
		if diff > tol {
			t.Errorf("T=%g: independent |m|=%.4f vs tempered |m|=%.4f (diff %.4f > tol %.4f)",
				temps[i], indep[i].AbsMagnetization, tempered[i].AbsMagnetization, diff, tol)
		}
	}
}

func TestRunTemperingPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunTempering with one temperature should panic")
		}
	}()
	RunTempering(Config{Temperatures: []float64{2.0}, Samples: 1}, 1, 1,
		func(temperature float64) ising.Backend {
			b, _ := backend.New("multispin", backend.Config{Rows: 2, Cols: 64, Temperature: temperature})
			return b
		})
}

// TestReplicaSeedDistinct guards the per-slot seed derivation the CLI and
// harness share.
func TestReplicaSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for slot := 0; slot < 64; slot++ {
		s := tempering.ReplicaSeed(9, slot)
		if seen[s] {
			t.Fatalf("slot %d reuses seed %d", slot, s)
		}
		seen[s] = true
	}
}
