package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tpuising/internal/ising"
	"tpuising/internal/stats"
)

// Chain is one Markov chain at a fixed temperature. All the samplers in this
// repository (the TPU simulators, the CPU checkerboard and Metropolis
// baselines, the GPU-style baseline and the multispin engine) satisfy it;
// every ising.Backend is a Chain (and an EnergyChain).
type Chain interface {
	// Sweep advances the chain by one whole-lattice update.
	Sweep()
	// Magnetization returns the current magnetisation per spin.
	Magnetization() float64
}

// EnergyChain is optionally implemented by chains that can also report the
// energy per spin.
type EnergyChain interface {
	Chain
	Energy() float64
}

// Config describes one temperature sweep.
type Config struct {
	// Temperatures is the grid of temperatures (in units of J/kB) to sample.
	Temperatures []float64
	// BurnIn is the number of sweeps discarded before measuring.
	BurnIn int
	// Samples is the number of measurements taken per temperature.
	Samples int
	// Interval is the number of sweeps between successive measurements
	// (defaults to 1).
	Interval int
	// Parallel is the number of temperatures simulated concurrently
	// (defaults to GOMAXPROCS). Each temperature runs its own independent
	// chain, so parallelism does not change any result.
	Parallel int
}

func (c Config) withDefaults() Config {
	out := c
	if out.Interval <= 0 {
		out.Interval = 1
	}
	if out.Parallel <= 0 {
		out.Parallel = runtime.GOMAXPROCS(0)
	}
	return out
}

// Point is the measurement at one temperature.
type Point struct {
	// Temperature is the simulated temperature.
	Temperature float64
	// AbsMagnetization is the sample mean of |m|.
	AbsMagnetization float64
	// AbsMagnetizationErr is the standard error of |m|.
	AbsMagnetizationErr float64
	// Binder is the Binder parameter U4 = 1 - <m^4>/(3<m^2>^2).
	Binder float64
	// Energy is the sample mean energy per spin (0 if the chain cannot
	// report it).
	Energy float64
	// Samples is the number of measurements behind the point.
	Samples int
}

// Run sweeps the temperature grid. newChain must return an independent chain
// equilibrated-from-scratch for the given temperature; it is called once per
// temperature, possibly from different goroutines.
func Run(cfg Config, newChain func(temperature float64) Chain) []Point {
	c := cfg.withDefaults()
	if len(c.Temperatures) == 0 {
		return nil
	}
	if c.Samples <= 0 {
		panic("sweep: Samples must be positive")
	}
	points := make([]Point, len(c.Temperatures))
	sem := make(chan struct{}, c.Parallel)
	var wg sync.WaitGroup
	for i, temp := range c.Temperatures {
		wg.Add(1)
		go func(i int, temp float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			points[i] = measure(c, temp, newChain(temp))
		}(i, temp)
	}
	wg.Wait()
	return points
}

// RunBackends is Run for engines selected through the ising.Backend
// interface (every Backend reports energy, so the points always carry the
// mean energy per spin). newBackend must return an independent engine for
// the given temperature; it is called once per temperature, possibly from
// different goroutines.
func RunBackends(cfg Config, newBackend func(temperature float64) ising.Backend) []Point {
	return Run(cfg, func(temperature float64) Chain { return newBackend(temperature) })
}

// measure runs one chain and collects its observables.
func measure(c Config, temp float64, chain Chain) Point {
	for i := 0; i < c.BurnIn; i++ {
		chain.Sweep()
	}
	ms := make([]float64, 0, c.Samples)
	abs := make([]float64, 0, c.Samples)
	var energy float64
	energyChain, hasEnergy := chain.(EnergyChain)
	for i := 0; i < c.Samples; i++ {
		for j := 0; j < c.Interval; j++ {
			chain.Sweep()
		}
		m := chain.Magnetization()
		ms = append(ms, m)
		if m < 0 {
			abs = append(abs, -m)
		} else {
			abs = append(abs, m)
		}
		if hasEnergy {
			energy += energyChain.Energy()
		}
	}
	p := Point{
		Temperature:         temp,
		AbsMagnetization:    stats.Mean(abs),
		AbsMagnetizationErr: stats.StdErr(abs),
		Binder:              stats.Binder(ms),
		Samples:             c.Samples,
	}
	if hasEnergy {
		p.Energy = energy / float64(c.Samples)
	}
	return p
}

// TemperatureGrid returns n evenly spaced temperatures in [lo, hi].
func TemperatureGrid(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// CriticalWindow returns a grid of n temperatures spanning the given
// half-width around the exact critical temperature, expressed as a fraction
// of Tc (the x-axis of Figures 4 and 7 is T/Tc in [0.5, 1.5]).
func CriticalWindow(halfWidthFraction float64, n int) []float64 {
	tc := ising.CriticalTemperature()
	return TemperatureGrid(tc*(1-halfWidthFraction), tc*(1+halfWidthFraction), n)
}

// BinderCrossing estimates the temperature at which the Binder-parameter
// curves of two lattice sizes cross, by scanning for a sign change of their
// difference and interpolating linearly. Both point sets must cover the same
// (sorted) temperature grid. It returns an error when the curves do not
// cross inside the grid.
func BinderCrossing(a, b []Point) (float64, error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, fmt.Errorf("sweep: need two equal-length curves, got %d and %d points", len(a), len(b))
	}
	as := append([]Point(nil), a...)
	bs := append([]Point(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].Temperature < as[j].Temperature })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Temperature < bs[j].Temperature })
	prev := as[0].Binder - bs[0].Binder
	for i := 1; i < len(as); i++ {
		if as[i].Temperature != bs[i].Temperature {
			return 0, fmt.Errorf("sweep: temperature grids differ at index %d", i)
		}
		cur := as[i].Binder - bs[i].Binder
		if prev == 0 {
			return as[i-1].Temperature, nil
		}
		if (prev < 0) != (cur < 0) {
			// Linear interpolation of the zero of the difference.
			t0, t1 := as[i-1].Temperature, as[i].Temperature
			frac := prev / (prev - cur)
			return t0 + frac*(t1-t0), nil
		}
		prev = cur
	}
	return 0, fmt.Errorf("sweep: Binder curves do not cross within the grid")
}
