package sweep

// Sample is one incremental observation of a running chain, emitted by
// Stream while the chain advances. It is the in-library form of the NDJSON
// sample lines the simulation service streams to clients
// (internal/service/encode converts it to the wire type).
type Sample struct {
	// Sweep is the number of whole-lattice updates completed when the sample
	// was taken, counted in Stream's `done` coordinates.
	Sweep int
	// Magnetization and Energy are the per-spin observables at that sweep.
	Magnetization float64
	// Energy is the energy per spin.
	Energy float64
}

// Stream advances the chain by n whole-lattice updates, emitting a Sample
// every interval sweeps (interval <= 0 means every sweep), and returns the
// updated completion count. done is the number of sweeps the chain has
// already performed in this measurement phase: emission happens when the
// running count is a multiple of interval, so a run resumed from a
// checkpoint (done > 0) keeps exactly the emission schedule of an
// uninterrupted run — the service's resume tests assert the two sample
// streams are identical.
//
// emit may be nil (advance without measuring, e.g. burn-in in checkpointable
// chunks).
func Stream(chain EnergyChain, done, n, interval int, emit func(Sample)) int {
	if interval <= 0 {
		interval = 1
	}
	for i := 0; i < n; i++ {
		chain.Sweep()
		done++
		if emit != nil && done%interval == 0 {
			emit(Sample{Sweep: done, Magnetization: chain.Magnetization(), Energy: chain.Energy()})
		}
	}
	return done
}
