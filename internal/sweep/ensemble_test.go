package sweep_test

import (
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/backend"
	"tpuising/internal/sweep"
)

// TestRunEnsembleMatchesRun: a whole temperature scan run as one batched
// backend (lane i at temperature i, seeded ising.LaneSeed(seed, i)) must
// produce exactly the points of Run over standalone chains with the same
// seeds and schedule — batching a scan is an execution strategy, never a
// physics change.
func TestRunEnsembleMatchesRun(t *testing.T) {
	const rows, cols, seed = 8, 64, 17
	temps := []float64{2.0, 2.3, 2.6, 3.0}
	cfg := sweep.Config{Temperatures: temps, BurnIn: 4, Samples: 6, Interval: 2}

	laneOf := make(map[float64]int, len(temps))
	for i, temp := range temps {
		laneOf[temp] = i
	}
	want := sweep.RunBackends(cfg, func(temperature float64) ising.Backend {
		eng, err := backend.New("multispin", backend.Config{
			Rows: rows, Cols: cols, Temperature: temperature,
			Seed: ising.LaneSeed(seed, laneOf[temperature]),
		})
		if err != nil {
			panic(err)
		}
		return eng
	})

	got, err := sweep.RunEnsemble(cfg, func(temperatures []float64) (ising.BatchBackend, error) {
		return backend.NewBatchLadder("multispin", backend.Config{Rows: rows, Cols: cols, Seed: seed}, temperatures)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("RunEnsemble returned %d points, Run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs:\nensemble: %+v\nchains:   %+v", i, got[i], want[i])
		}
	}
}

// TestRunEnsembleLaneMismatch: a batch with the wrong lane count is refused.
func TestRunEnsembleLaneMismatch(t *testing.T) {
	_, err := sweep.RunEnsemble(sweep.Config{Temperatures: []float64{2.0, 2.5}, Samples: 1},
		func(temperatures []float64) (ising.BatchBackend, error) {
			return backend.NewBatch("multispin", backend.Config{Rows: 8, Cols: 64, Seed: 1}, 3)
		})
	if err == nil {
		t.Fatal("lane/temperature mismatch accepted")
	}
}
