package sweep

import (
	"math"
	"testing"

	"tpuising/internal/ising"
	"tpuising/internal/ising/checkerboard"
	"tpuising/internal/ising/sharded"
)

// cpuChain adapts the CPU checkerboard sampler to the Chain interface.
type cpuChain struct {
	s *checkerboard.Sampler
}

func (c cpuChain) Sweep()                 { c.s.Sweep() }
func (c cpuChain) Magnetization() float64 { return c.s.Lattice.Magnetization() }
func (c cpuChain) Energy() float64        { return c.s.Lattice.Energy() }

func newCPUChain(l int, seed uint64) func(float64) Chain {
	return func(temperature float64) Chain {
		return cpuChain{checkerboard.NewSampler(ising.NewLattice(l, l), temperature, seed)}
	}
}

func TestTemperatureGrid(t *testing.T) {
	g := TemperatureGrid(1, 3, 5)
	want := []float64{1, 1.5, 2, 2.5, 3}
	if len(g) != len(want) {
		t.Fatalf("len = %d", len(g))
	}
	for i := range g {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("grid[%d] = %v, want %v", i, g[i], want[i])
		}
	}
	if got := TemperatureGrid(2, 4, 1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("single-point grid = %v", got)
	}
	if TemperatureGrid(1, 2, 0) != nil {
		t.Fatal("empty grid should be nil")
	}
}

func TestCriticalWindowBracketsTc(t *testing.T) {
	g := CriticalWindow(0.2, 11)
	tc := ising.CriticalTemperature()
	if g[0] >= tc || g[len(g)-1] <= tc {
		t.Fatalf("window [%v, %v] does not bracket Tc=%v", g[0], g[len(g)-1], tc)
	}
	if math.Abs(g[5]-tc) > 1e-9 {
		t.Fatalf("middle of an odd window should be Tc, got %v", g[5])
	}
}

func TestRunPhaseTransitionShape(t *testing.T) {
	// A small lattice swept across Tc must show ordered behaviour below and
	// disordered behaviour above, with the Binder parameter decreasing.
	tc := ising.CriticalTemperature()
	cfg := Config{
		Temperatures: []float64{0.6 * tc, 1.6 * tc},
		BurnIn:       300,
		Samples:      200,
	}
	points := Run(cfg, newCPUChain(16, 11))
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	low, high := points[0], points[1]
	if low.AbsMagnetization < 0.9 {
		t.Fatalf("|m| = %.3f at T=0.6Tc, want near 1", low.AbsMagnetization)
	}
	if high.AbsMagnetization > 0.35 {
		t.Fatalf("|m| = %.3f at T=1.6Tc, want small", high.AbsMagnetization)
	}
	if low.Binder < high.Binder {
		t.Fatalf("Binder should decrease across Tc: %.3f -> %.3f", low.Binder, high.Binder)
	}
	if low.Binder < 0.55 || low.Binder > 0.67 {
		t.Fatalf("ordered-phase Binder %.3f, want near 2/3", low.Binder)
	}
	if low.Energy >= high.Energy {
		t.Fatalf("energy should increase with temperature: %.3f -> %.3f", low.Energy, high.Energy)
	}
	if low.Samples != 200 || low.AbsMagnetizationErr <= 0 {
		t.Fatal("sample bookkeeping wrong")
	}
}

func TestRunMatchesOnsagerBelowTc(t *testing.T) {
	// Deep in the ordered phase the measured magnetisation must match the
	// exact Onsager spontaneous magnetisation closely even on a small lattice.
	temp := 1.5
	cfg := Config{Temperatures: []float64{temp}, BurnIn: 400, Samples: 300}
	p := Run(cfg, newCPUChain(24, 3))[0]
	exact := ising.OnsagerMagnetization(temp)
	if math.Abs(p.AbsMagnetization-exact) > 0.02 {
		t.Fatalf("|m|=%.4f at T=%.2f, Onsager gives %.4f", p.AbsMagnetization, temp, exact)
	}
}

func TestRunParallelEqualsSerial(t *testing.T) {
	temps := CriticalWindow(0.3, 4)
	run := func(parallel int) []Point {
		return Run(Config{
			Temperatures: temps, BurnIn: 20, Samples: 30, Parallel: parallel,
		}, newCPUChain(8, 7))
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d differs between serial and parallel runs:\n%+v\n%+v",
				i, serial[i], parallel[i])
		}
	}
}

func TestRunDeterministicAndOrderPreserving(t *testing.T) {
	temps := []float64{3.0, 1.5, 2.2}
	a := Run(Config{Temperatures: temps, BurnIn: 10, Samples: 20}, newCPUChain(8, 5))
	b := Run(Config{Temperatures: temps, BurnIn: 10, Samples: 20}, newCPUChain(8, 5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seeds should give identical sweeps")
		}
		if a[i].Temperature != temps[i] {
			t.Fatal("points must preserve the input temperature order")
		}
	}
}

func TestRunEdgeCases(t *testing.T) {
	if out := Run(Config{Samples: 5}, newCPUChain(8, 1)); out != nil {
		t.Fatal("no temperatures should give nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero samples")
		}
	}()
	Run(Config{Temperatures: []float64{2.0}}, newCPUChain(8, 1))
}

// TestRunBackendsSharded drives the mesh-sharded multispin engine through
// RunBackends across the phase transition: the sweep layer must see it as
// just another Backend, and its physics must order below Tc and disorder
// above (each temperature runs its own independent pod).
func TestRunBackendsSharded(t *testing.T) {
	points := RunBackends(Config{
		Temperatures: []float64{1.8, 3.6},
		BurnIn:       150,
		Samples:      150,
	}, func(temperature float64) ising.Backend {
		e, err := sharded.New(sharded.Config{
			Rows: 64, Cols: 64, GridR: 2, GridC: 1, Temperature: temperature, Seed: 9,
		})
		if err != nil {
			panic(err)
		}
		return e
	})
	if points[0].AbsMagnetization < 0.9 {
		t.Errorf("sharded |m| at T=1.8 = %.3f, want ordered (> 0.9)", points[0].AbsMagnetization)
	}
	if points[1].AbsMagnetization > 0.2 {
		t.Errorf("sharded |m| at T=3.6 = %.3f, want disordered (< 0.2)", points[1].AbsMagnetization)
	}
	if points[0].Energy >= points[1].Energy {
		t.Errorf("energy should rise with temperature: %.3f >= %.3f", points[0].Energy, points[1].Energy)
	}
}

func TestBinderCrossingNearTc(t *testing.T) {
	// The Binder curves of two lattice sizes must cross close to the exact
	// critical temperature — the paper's Figure 4 correctness check.
	tc := ising.CriticalTemperature()
	temps := TemperatureGrid(0.85*tc, 1.15*tc, 7)
	cfg := Config{Temperatures: temps, BurnIn: 400, Samples: 400}
	small := Run(cfg, newCPUChain(8, 21))
	large := Run(cfg, newCPUChain(24, 22))
	cross, err := BinderCrossing(small, large)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cross-tc)/tc > 0.06 {
		t.Fatalf("Binder crossing at %.4f, exact Tc %.4f (%.1f%% off)",
			cross, tc, 100*math.Abs(cross-tc)/tc)
	}
}

func TestBinderCrossingErrors(t *testing.T) {
	a := []Point{{Temperature: 1, Binder: 0.6}, {Temperature: 2, Binder: 0.5}}
	if _, err := BinderCrossing(a, a[:1]); err == nil {
		t.Fatal("length mismatch should error")
	}
	b := []Point{{Temperature: 1, Binder: 0.5}, {Temperature: 3, Binder: 0.4}}
	if _, err := BinderCrossing(a, b); err == nil {
		t.Fatal("grid mismatch should error")
	}
	c := []Point{{Temperature: 1, Binder: 0.5}, {Temperature: 2, Binder: 0.4}}
	if _, err := BinderCrossing(a, c); err == nil {
		t.Fatal("non-crossing curves should error")
	}
	// An exact touch at a grid point is a crossing.
	d := []Point{{Temperature: 1, Binder: 0.6}, {Temperature: 2, Binder: 0.55}}
	e := []Point{{Temperature: 1, Binder: 0.6}, {Temperature: 2, Binder: 0.5}}
	if cross, err := BinderCrossing(d, e); err != nil || cross != 1 {
		t.Fatalf("touching curves: cross=%v err=%v", cross, err)
	}
}
