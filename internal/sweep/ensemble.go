package sweep

import (
	"fmt"

	"tpuising/internal/ising"
	"tpuising/internal/stats"
)

// RunEnsemble is Run with the whole temperature grid simulated as one
// batched backend: lane i of the batch runs at cfg.Temperatures[i], and a
// single Sweep advances every temperature at once. With the lane-packed
// engine of internal/ising/ensemble behind the batch (one bit-lane per
// chain), an entire scan costs one pass of the packed kernel per sweep
// instead of len(Temperatures) separate chains — and because the batch axis
// seeds lane i with ising.LaneSeed(seed, i), the returned points are
// identical to Run over standalone chains with those seeds (asserted by
// test). Config fields keep their meaning (BurnIn sweeps, then Samples
// measurements every Interval sweeps); Parallel is unused — the batch
// backend's own worker configuration governs concurrency.
//
// newBatch receives a copy of the (unsorted) temperature grid and must
// return a batch with exactly one lane per temperature.
func RunEnsemble(cfg Config, newBatch func(temperatures []float64) (ising.BatchBackend, error)) ([]Point, error) {
	c := cfg.withDefaults()
	if len(c.Temperatures) == 0 {
		return nil, nil
	}
	if c.Samples <= 0 {
		panic("sweep: Samples must be positive")
	}
	b, err := newBatch(append([]float64(nil), c.Temperatures...))
	if err != nil {
		return nil, err
	}
	if b.Lanes() != len(c.Temperatures) {
		return nil, fmt.Errorf("sweep: batch backend has %d lanes for %d temperatures", b.Lanes(), len(c.Temperatures))
	}
	for i := 0; i < c.BurnIn; i++ {
		b.Sweep()
	}
	lanes := b.Lanes()
	ms := make([][]float64, lanes)
	abs := make([][]float64, lanes)
	energy := make([]float64, lanes)
	for i := range ms {
		ms[i] = make([]float64, 0, c.Samples)
		abs[i] = make([]float64, 0, c.Samples)
	}
	for s := 0; s < c.Samples; s++ {
		for j := 0; j < c.Interval; j++ {
			b.Sweep()
		}
		mags, es := b.Magnetizations(), b.Energies()
		for i := 0; i < lanes; i++ {
			m := mags[i]
			ms[i] = append(ms[i], m)
			if m < 0 {
				abs[i] = append(abs[i], -m)
			} else {
				abs[i] = append(abs[i], m)
			}
			energy[i] += es[i]
		}
	}
	points := make([]Point, lanes)
	for i := range points {
		points[i] = Point{
			Temperature:         c.Temperatures[i],
			AbsMagnetization:    stats.Mean(abs[i]),
			AbsMagnetizationErr: stats.StdErr(abs[i]),
			Binder:              stats.Binder(ms[i]),
			Energy:              energy[i] / float64(c.Samples),
			Samples:             c.Samples,
		}
	}
	return points, nil
}
