package sweep

import (
	"sort"

	"tpuising/internal/ising"
	"tpuising/internal/tempering"
)

// RunTempering is Run with the temperatures coupled by replica exchange: the
// grid becomes a parallel-tempering ladder (internal/tempering) whose
// replicas attempt Metropolis swaps between adjacent temperatures every
// swapInterval sweeps, which near Tc decorrelates the chains far faster than
// the independent chains of Run. Config fields keep their meaning, with
// rounds as the clock: BurnIn is converted to whole tempering rounds,
// Interval is the number of rounds between measurements, and Parallel bounds
// how many replicas sweep concurrently (never affecting any result). seed
// drives only the swap decisions; newBackend seeds the replicas' own chains
// and must return an engine implementing ising.Tempered (every host backend
// does — the tpu simulator does not).
//
// The returned points follow the order of cfg.Temperatures like Run's; the
// accompanying report carries the exchange-layer observables (per-pair swap
// acceptance, round trips, autocorrelation times). It panics on a config the
// tempering orchestrator rejects, mirroring Run's handling of bad configs.
func RunTempering(cfg Config, swapInterval int, seed uint64,
	newBackend func(temperature float64) ising.Backend) ([]Point, tempering.Report) {
	c := cfg.withDefaults()
	if c.Samples <= 0 {
		panic("sweep: Samples must be positive")
	}
	// The ladder must ascend; remember where each ladder slot came from so
	// the points can be returned in the caller's grid order.
	order := make([]int, len(c.Temperatures))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return c.Temperatures[order[a]] < c.Temperatures[order[b]]
	})
	ladder := make([]float64, len(order))
	for t, idx := range order {
		ladder[t] = c.Temperatures[idx]
	}

	ens, err := tempering.New(tempering.Config{
		Temperatures: ladder,
		SwapInterval: swapInterval,
		Seed:         seed,
		Workers:      c.Parallel,
	}, func(_ int, temperature float64) (ising.Backend, error) {
		return newBackend(temperature), nil
	})
	if err != nil {
		panic("sweep: " + err.Error())
	}
	if c.BurnIn > 0 {
		si := swapInterval
		if si <= 0 {
			si = 1
		}
		ens.RunRounds((c.BurnIn + si - 1) / si)
	}
	for i := 0; i < c.Samples; i++ {
		ens.RunRounds(c.Interval)
		ens.Measure()
	}

	rep := ens.Report()
	points := make([]Point, len(c.Temperatures))
	for t, rr := range rep.Replicas {
		points[order[t]] = Point{
			Temperature:         rr.Temperature,
			AbsMagnetization:    rr.AbsMagnetization,
			AbsMagnetizationErr: rr.AbsMagnetizationErr,
			Binder:              rr.Binder,
			Energy:              rr.Energy,
			Samples:             rr.Samples,
		}
	}
	return points, rep
}
