// Package sweep drives temperature sweeps of the Ising simulators and
// collects the observables the paper uses for its correctness study (Figures
// 4 and 7): the average magnetisation m(T) and the Binder parameter U4(T)
// over a grid of temperatures around the critical point, for several lattice
// sizes and both precisions.
//
// Two drivers are provided. Run simulates every temperature as an
// independent chain (one engine per grid point, embarrassingly parallel).
// RunTempering couples the same grid into one parallel-tempering ensemble
// (internal/tempering), whose replica-exchange swaps decorrelate the chains
// near Tc far faster than independent sampling; both return the same Point
// rows, so a caller can switch drivers without touching its analysis.
// BinderCrossing locates the Tc estimate where two lattice sizes' U4(T)
// curves intersect — the validation described in docs/PHYSICS.md.
package sweep
